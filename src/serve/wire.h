// Versioned binary wire format for the serve daemon: scenarios and query
// results as little-endian byte strings with a 4-byte magic and a u16
// format version. The result codec is load-bearing, not decorative — the
// serve result cache stores *encoded* results and every cache hit decodes
// before rendering its reply, so hit and miss replies are byte-identical
// only because encode/decode round-trips doubles exactly (bit_cast, never
// text). The scenario codec is the compact interchange form of the same
// struct the text format carries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/scenario.h"

namespace hpn::serve {

/// One evaluated query: per-flow steady-state rates (base flows in
/// materialization order, then any add-job probe flows), optional
/// time-domain FCTs (the `run` verb), and the summary the reply footer
/// prints. Stalled = allocated zero rate (a down link on the flow's path);
/// an incomplete FCT entry is a flow still unfinished at drain time.
struct QueryResult {
  struct Flow {
    double gbps = 0.0;
    bool stalled = false;
    bool operator==(const Flow&) const = default;
  };
  struct Fct {
    double seconds = 0.0;
    bool completed = false;
    bool operator==(const Fct&) const = default;
  };
  std::vector<Flow> base_flows;
  std::vector<Flow> job_flows;
  std::vector<Fct> fcts;
  std::uint32_t stalled = 0;    ///< across base + job flows
  double total_gbps = 0.0;      ///< sum across base + job flows
  double min_gbps = 0.0;        ///< min across non-stalled flows (0 if none)

  bool operator==(const QueryResult&) const = default;
};

namespace wire {

inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::string_view kScenarioMagic = "HPNS";
inline constexpr std::string_view kResultMagic = "HPNR";

// Little-endian primitive writers (append to `out`).
void put_u8(std::string& out, std::uint8_t v);
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_i64(std::string& out, std::int64_t v);
/// Exact bit-pattern round-trip (bit_cast to u64) — no text, no rounding.
void put_f64(std::string& out, double v);
/// u32 length prefix + raw bytes.
void put_string(std::string& out, std::string_view v);

/// Cursor-based readers: false on truncation (cursor unspecified after).
bool get_u8(std::string_view in, std::size_t& pos, std::uint8_t& v);
bool get_u16(std::string_view in, std::size_t& pos, std::uint16_t& v);
bool get_u32(std::string_view in, std::size_t& pos, std::uint32_t& v);
bool get_u64(std::string_view in, std::size_t& pos, std::uint64_t& v);
bool get_i64(std::string_view in, std::size_t& pos, std::int64_t& v);
bool get_f64(std::string_view in, std::size_t& pos, double& v);
bool get_string(std::string_view in, std::size_t& pos, std::string& v);

}  // namespace wire

std::string encode_scenario(const fuzz::Scenario& s);
/// nullopt on bad magic, unsupported version, truncation, or out-of-range
/// enum values; `*error` explains which.
std::optional<fuzz::Scenario> decode_scenario(std::string_view bytes,
                                              std::string* error = nullptr);

std::string encode_result(const QueryResult& r);
std::optional<QueryResult> decode_result(std::string_view bytes,
                                         std::string* error = nullptr);

}  // namespace hpn::serve
