#include "serve/serve.h"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <istream>
#include <limits>
#include <list>
#include <memory>
#include <ostream>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "exec/runner_pool.h"
#include "flowsim/maxmin.h"
#include "flowsim/session.h"
#include "sim/simulator.h"

namespace hpn::serve {

namespace {

/// Content-address hash for the result/base caches: FNV-1a folded over
/// 8-byte words (same keying properties as the byte-at-a-time fuzz::fnv1a64,
/// ~8x the throughput — Pod scenarios wire-encode to hundreds of KB and the
/// hash runs on every query).
std::uint64_t content_hash(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, 8);
    h = (h ^ w) * 1099511628211ull;
  }
  for (; i < bytes.size(); ++i) {
    h = (h ^ static_cast<unsigned char>(bytes[i])) * 1099511628211ull;
  }
  return h;
}

/// Shortest-round-trip double formatting for the reply text. 17 significant
/// digits: two doubles render identically iff they are the same bits, which
/// is what makes "byte-identical replies" equivalent to "bit-identical
/// answers".
std::string fmt_g(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string hex16(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

void finalize_summary(QueryResult& r) {
  r.stalled = 0;
  r.total_gbps = 0.0;
  double min_live = std::numeric_limits<double>::infinity();
  bool any_live = false;
  const auto account = [&](const std::vector<QueryResult::Flow>& flows) {
    for (const QueryResult::Flow& f : flows) {
      r.total_gbps += f.gbps;
      if (f.stalled) {
        ++r.stalled;
      } else {
        min_live = std::min(min_live, f.gbps);
        any_live = true;
      }
    }
  };
  account(r.base_flows);
  account(r.job_flows);
  r.min_gbps = any_live ? min_live : 0.0;
}

}  // namespace

/// One warm-cached base scenario: the materialized cluster (which owns the
/// topology every solver below points into), the resolved per-flow base
/// solver, a reusable scratch solver that deltas are copy-assigned onto,
/// and — lazily, first `run` query — a Simulator/FlowSession pair whose
/// quiescent snapshots let time-domain re-runs rewind to t=0 with
/// byte-identical event ordering.
///
/// Invariant between evaluations: the topology is in *planning* state
/// (every link up except `planning_dead`). Evaluations may flip links but
/// must restore this state before returning — base and scratch solvers
/// cache link state and would otherwise drift from the topology.
struct QueryEngine::BaseState {
  fuzz::Scenario scenario;  ///< canonical (parse of canonical bytes)
  std::uint64_t hash = 0;
  fuzz::Materialized mat;
  std::vector<LinkId> planning_dead;
  flowsim::IncrementalMaxMin solver;
  flowsim::IncrementalMaxMin scratch;
  /// True while scratch holds the exact base-solver bits (possibly with a
  /// rolled-back delta pending re-rate — see sync_scratch below).
  bool scratch_synced = false;
  std::vector<flowsim::IncrementalMaxMin::Handle> handles;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<flowsim::FlowSession> session;
  sim::Simulator::Snapshot sim_snap;
  flowsim::FlowSession::Snapshot sess_snap;

  BaseState(fuzz::Scenario s, std::uint64_t h)
      : scenario(std::move(s)),
        hash(h),
        mat(fuzz::materialize(scenario)),
        solver(mat.cluster.topo, flowsim::Aggregation::kPerFlow),
        scratch(mat.cluster.topo, flowsim::Aggregation::kPerFlow) {
    topo::Topology& topo = mat.cluster.topo;
    // Permanent faults (down_for == 0) are *planning* state: steady-state
    // allocations answer "after every unrepaired failure has landed".
    // Flaps are transient by definition and only matter to `run`.
    std::unordered_set<LinkId> seen;
    for (const fuzz::Materialized::Fault& f : mat.faults) {
      if (f.down_for > Duration::zero()) continue;
      if (f.kind == fuzz::ScenarioFault::Kind::kLinkFail) {
        if (seen.insert(f.cable).second) planning_dead.push_back(f.cable);
      } else if (f.kind == fuzz::ScenarioFault::Kind::kTorCrash) {
        for (const LinkId l : topo.out_links(f.tor)) {
          if (seen.insert(l).second) planning_dead.push_back(l);
        }
      }
    }
    for (const LinkId l : planning_dead) topo.set_duplex_up(l, false);
    solver.notify_topology_changed();
    // Base flows install in materialization order — the deterministic
    // ordering both the cold and warm paths share. Paths were BFS-routed
    // all-up by materialize(); flows crossing a planning-dead link stall.
    handles.reserve(mat.flows.size());
    for (const fuzz::Materialized::Flow& flow : mat.flows) {
      handles.push_back(solver.add_flow(flow.path, flow.cap.as_bits_per_sec()));
    }
    solver.resolve();
  }
};

namespace {

using BaseState = QueryEngine::BaseState;

/// Bring scratch to the exact base-solver bits. The first use pays a full
/// copy-assign; kill-link evals then keep scratch synced by *rolling back*
/// their delta (restore the planning topology, mark the cable's component
/// dirty) instead of re-copying O(flows) solver state per query. The
/// rolled-back component re-rates lazily inside the next eval's resolve(),
/// and a component re-rate is a pure function of (member flows, caps, link
/// state) — the incremental-vs-dense differential battery pins that
/// property — so the restored rates are bit-equal to the base. Verbs whose
/// rollback would churn handle/class free lists (add-job's probe flows)
/// clear the flag instead and the next eval re-copies.
void sync_scratch(BaseState& b) {
  if (!b.scratch_synced) {
    b.scratch = b.solver;
    b.scratch_synced = true;
  }
}

QueryResult base_alloc(const BaseState& b) {
  QueryResult r;
  r.base_flows.reserve(b.handles.size());
  for (const auto h : b.handles) {
    const double bps = b.solver.rate(h);
    r.base_flows.push_back({bps / 1e9, bps <= 0.0});
  }
  finalize_summary(r);
  return r;
}

QueryResult eval_kill_link(BaseState& b, std::uint32_t cable_idx) {
  if (b.mat.cables.empty()) throw ConfigError{"kill-link: scenario has no cables"};
  topo::Topology& topo = b.mat.cluster.topo;
  const LinkId fwd = b.mat.cables[cable_idx % b.mat.cables.size()];
  const LinkId rev = topo.link(fwd).reverse;
  const bool was_fwd = topo.is_up(fwd);
  const bool was_rev = topo.is_up(rev);
  // The warm delta: re-solve only the component(s) the dead cable touches
  // on the synced scratch solver. Base paths are kept — a flow routed over
  // the cable stalls, exactly what an operator asking "which jobs does
  // this failure hit" wants to see.
  sync_scratch(b);
  topo.set_duplex_up(fwd, false);
  b.scratch.notify_link_changed(fwd);
  b.scratch.notify_link_changed(rev);
  b.scratch.resolve();
  QueryResult r;
  r.base_flows.reserve(b.handles.size());
  for (const auto h : b.handles) {
    const double bps = b.scratch.rate(h);
    r.base_flows.push_back({bps / 1e9, bps <= 0.0});
  }
  // Roll the delta back instead of re-copying the base solver next query:
  // restore the planning topology and mark the cable dirty again. Nothing
  // reads scratch between evals, so the re-rate is deferred to the next
  // eval's resolve() (see sync_scratch), which restores the base bits.
  topo.set_link_up(fwd, was_fwd);
  topo.set_link_up(rev, was_rev);
  b.scratch.notify_link_changed(fwd);
  b.scratch.notify_link_changed(rev);
  finalize_summary(r);
  return r;
}

QueryResult eval_add_job(BaseState& b, std::uint32_t hosts, double gbps) {
  const std::vector<NodeId>& eps = b.mat.endpoints;
  const auto n = static_cast<std::uint32_t>(
      std::min<std::size_t>(hosts, eps.size()));
  if (n < 2) throw ConfigError{"add-job: need >= 2 placeable endpoints"};
  const topo::Topology& topo = b.mat.cluster.topo;
  sync_scratch(b);
  // Probe workload: a ring over the first n endpoints, routed by the same
  // BFS policy as base flows — but over the *planning* topology, the way a
  // newly placed job would actually be routed today.
  std::vector<flowsim::IncrementalMaxMin::Handle> job_handles;
  job_handles.reserve(n);
  const double cap_bps = Bandwidth::gbps(gbps).as_bits_per_sec();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::vector<LinkId> path =
        fuzz::shortest_path(topo, eps[i], eps[(i + 1) % n]);
    if (path.empty()) {
      job_handles.push_back(flowsim::IncrementalMaxMin::kInvalidHandle);
    } else {
      job_handles.push_back(b.scratch.add_flow(path, cap_bps));
    }
  }
  b.scratch.resolve();
  QueryResult r;
  r.base_flows.reserve(b.handles.size());
  for (const auto h : b.handles) {
    const double bps = b.scratch.rate(h);
    r.base_flows.push_back({bps / 1e9, bps <= 0.0});
  }
  r.job_flows.reserve(n);
  for (const auto h : job_handles) {
    if (h == flowsim::IncrementalMaxMin::kInvalidHandle) {
      r.job_flows.push_back({0.0, true});  // unroutable probe
    } else {
      const double bps = b.scratch.rate(h);
      r.job_flows.push_back({bps / 1e9, bps <= 0.0});
    }
  }
  // Removing the probes would churn handle/class free lists relative to a
  // fresh copy; re-copy on the next eval instead of rolling back.
  b.scratch_synced = false;
  finalize_summary(r);
  return r;
}

QueryResult eval_run(BaseState& b) {
  QueryResult r = base_alloc(b);
  if (b.sim == nullptr) {
    b.sim = std::make_unique<sim::Simulator>();
    b.session = std::make_unique<flowsim::FlowSession>(
        b.mat.cluster.topo, *b.sim, flowsim::Aggregation::kPerFlow);
    b.sim_snap = b.sim->snapshot();
    b.sess_snap = b.session->snapshot();
  }
  topo::Topology& topo = b.mat.cluster.topo;
  sim::Simulator& sim = *b.sim;
  flowsim::FlowSession& session = *b.session;
  // The time-domain run starts all-up: the fault schedule itself replays
  // every failure (including the permanent ones planning mode pre-applies).
  for (const LinkId l : b.planning_dead) topo.set_duplex_up(l, true);

  std::vector<double> fct(b.mat.flows.size(), -1.0);
  std::vector<FlowId> started;
  started.reserve(b.mat.flows.size());
  sim::Simulator* simp = &sim;
  std::vector<double>* fcts = &fct;
  for (std::size_t i = 0; i < b.mat.flows.size(); ++i) {
    const fuzz::Materialized::Flow& f = b.mat.flows[i];
    started.push_back(session.start_flow(f.path, f.size, f.cap, [simp, fcts, i](
                                                                    FlowId) {
      (*fcts)[i] = simp->now().since_origin().as_seconds();
    }));
  }
  topo::Topology* topop = &topo;
  flowsim::FlowSession* sess = &session;
  for (const fuzz::Materialized::Fault& fault : b.mat.faults) {
    if (fault.kind == fuzz::ScenarioFault::Kind::kTorCrash) {
      const NodeId tor = fault.tor;
      sim.schedule_at(fault.at, [topop, sess, tor] {
        for (const LinkId l : topop->out_links(tor)) topop->set_duplex_up(l, false);
        sess->refresh();
      });
      if (fault.down_for > Duration::zero()) {
        sim.schedule_at(fault.at + fault.down_for, [topop, sess, tor] {
          for (const LinkId l : topop->out_links(tor)) topop->set_duplex_up(l, true);
          sess->refresh();
        });
      }
    } else {
      const LinkId cable = fault.cable;
      sim.schedule_at(fault.at, [topop, sess, cable] {
        topop->set_duplex_up(cable, false);
        sess->refresh();
      });
      if (fault.down_for > Duration::zero()) {
        sim.schedule_at(fault.at + fault.down_for, [topop, sess, cable] {
          topop->set_duplex_up(cable, true);
          sess->refresh();
        });
      }
    }
  }
  sim.run();
  // Flows stalled by permanent faults never complete; abort them so the
  // session can rewind (aborts batch one recompute event — drain it too).
  for (const FlowId id : started) session.abort_flow(id);
  sim.run();
  // Restore the planning-state invariant exactly: the schedule may have
  // left any subset of cables down.
  for (const LinkId c : b.mat.cables) topo.set_duplex_up(c, true);
  for (const LinkId l : b.planning_dead) topo.set_duplex_up(l, false);
  session.restore(b.sess_snap);
  sim.restore(b.sim_snap);

  r.fcts.reserve(fct.size());
  for (const double s : fct) {
    r.fcts.push_back(s >= 0.0 ? QueryResult::Fct{s, true} : QueryResult::Fct{0.0, false});
  }
  return r;
}

}  // namespace

struct QueryEngine::CacheEntry {
  std::string bytes;
  std::list<std::string>::iterator lru;
};

struct QueryEngine::Impl {
  struct BaseSlot {
    std::unique_ptr<BaseState> state;
    std::list<std::uint64_t>::iterator lru;
  };
  std::unordered_map<std::uint64_t, BaseSlot> bases;
  std::list<std::uint64_t> base_lru;  ///< front = most recently used
  std::unordered_map<std::string, CacheEntry> cache;
  std::list<std::string> cache_lru;   ///< front = most recently used
};

QueryEngine::QueryEngine(EngineOptions options)
    : options_{options}, impl_{std::make_unique<Impl>()} {
  if (options_.jobs < 1) options_.jobs = 1;
  if (options_.max_bases < 1) options_.max_bases = 1;
}

QueryEngine::~QueryEngine() = default;

std::string QueryEngine::cache_key(std::uint64_t base_hash,
                                   const QueryRequest& q) const {
  std::ostringstream os;
  os << hex16(base_hash) << '|';
  switch (q.verb) {
    case QueryRequest::Verb::kRun: os << "run"; break;
    case QueryRequest::Verb::kKillLink: os << "kill-link|" << q.arg0; break;
    case QueryRequest::Verb::kAddJob:
      os << "add-job|" << q.arg0 << '|' << fmt_g(q.arg1);
      break;
    case QueryRequest::Verb::kResize: os << "resize|" << q.arg0; break;
  }
  return os.str();
}

QueryEngine::BaseState* QueryEngine::find_base(std::uint64_t hash) {
  const auto it = impl_->bases.find(hash);
  if (it == impl_->bases.end()) return nullptr;
  impl_->base_lru.splice(impl_->base_lru.begin(), impl_->base_lru, it->second.lru);
  return it->second.state.get();
}

void QueryEngine::adopt_base(std::unique_ptr<BaseState> base) {
  const std::uint64_t hash = base->hash;
  if (impl_->bases.count(hash) != 0) return;  // lost a (benign) build race
  impl_->base_lru.push_front(hash);
  impl_->bases.emplace(hash, Impl::BaseSlot{std::move(base), impl_->base_lru.begin()});
  while (impl_->bases.size() > options_.max_bases) {
    const std::uint64_t victim = impl_->base_lru.back();
    impl_->base_lru.pop_back();
    impl_->bases.erase(victim);
  }
  stats_.bases = impl_->bases.size();
}

void QueryEngine::cache_insert(const std::string& key, std::string bytes) {
  if (impl_->cache.count(key) != 0) return;
  const std::size_t cost = key.size() + bytes.size();
  if (cost > options_.cache_bytes) return;  // larger than the whole cache
  impl_->cache_lru.push_front(key);
  impl_->cache.emplace(key, CacheEntry{std::move(bytes), impl_->cache_lru.begin()});
  stats_.cache_bytes += cost;
  while (stats_.cache_bytes > options_.cache_bytes && impl_->cache.size() > 1) {
    const std::string victim = impl_->cache_lru.back();
    impl_->cache_lru.pop_back();
    const auto it = impl_->cache.find(victim);
    stats_.cache_bytes -= victim.size() + it->second.bytes.size();
    impl_->cache.erase(it);
    ++stats_.evictions;
  }
}

std::vector<Answer> QueryEngine::answer(const std::vector<QueryRequest>& batch) {
  stats_.queries += batch.size();
  std::vector<Answer> answers(batch.size());

  // Phase 1 (serial): canonicalize, hash, probe the result cache, dedupe.
  // The content address is the *binary* canonical form (wire encoding of
  // the parsed scenario): same collision property as hashing to_text() —
  // parsing already erased every formatting difference — without paying
  // ostream double-formatting on every query.
  std::vector<std::string> keys(batch.size());
  std::vector<std::uint64_t> hashes(batch.size());
  std::unordered_map<std::string, std::size_t> first_for_key;
  std::vector<std::pair<std::size_t, std::size_t>> dupes;  // (dup, compute)
  std::vector<std::size_t> to_compute;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    hashes[i] = content_hash(encode_scenario(batch[i].scenario));
    keys[i] = cache_key(hashes[i], batch[i]);
    answers[i].base_hash = hashes[i];
    const auto it = impl_->cache.find(keys[i]);
    if (it != impl_->cache.end()) {
      std::string decode_error;
      if (auto r = decode_result(it->second.bytes, &decode_error)) {
        impl_->cache_lru.splice(impl_->cache_lru.begin(), impl_->cache_lru,
                                it->second.lru);
        answers[i].ok = true;
        answers[i].result = std::move(*r);
        answers[i].source = Answer::Source::kHit;
        ++stats_.cache_hits;
        continue;
      }
      HPN_CHECK_MSG(false, "result cache held undecodable bytes: " << decode_error);
    }
    ++stats_.cache_misses;
    const auto [fit, inserted] = first_for_key.emplace(keys[i], i);
    if (inserted) {
      to_compute.push_back(i);
    } else {
      dupes.emplace_back(i, fit->second);
    }
  }

  // Phase 2 (serial): group unique computes by base scenario. Queries that
  // share a base must stay sequential (they share BaseState); distinct
  // bases are independent and fan out onto the pool.
  struct GroupTask {
    std::uint64_t hash = 0;
    std::vector<std::size_t> items;
    BaseState* base = nullptr;           // pre-existing => warm
    std::unique_ptr<BaseState> built;    // created by the worker => cold
    std::vector<Answer> answers;
    std::uint64_t warm = 0;
    std::uint64_t cold = 0;
  };
  std::vector<GroupTask> groups;
  std::unordered_map<std::uint64_t, std::size_t> group_of;
  for (const std::size_t i : to_compute) {
    const auto [git, inserted] = group_of.emplace(hashes[i], groups.size());
    if (inserted) {
      GroupTask g;
      g.hash = hashes[i];
      g.base = find_base(hashes[i]);
      groups.push_back(std::move(g));
    }
    groups[git->second].items.push_back(i);
  }

  // Phase 3 (parallel): evaluate the groups. Workers touch only their own
  // GroupTask (plus its private/pre-owned BaseState); all shared-map
  // mutation stays on this thread, so replies are deterministic at any
  // jobs count.
  const auto run_group = [&batch, &hashes](GroupTask& g) {
    g.answers.resize(g.items.size());
    for (std::size_t k = 0; k < g.items.size(); ++k) {
      const std::size_t idx = g.items[k];
      const QueryRequest& q = batch[idx];
      Answer& a = g.answers[k];
      a.base_hash = hashes[idx];
      try {
        if (q.verb == QueryRequest::Verb::kResize) {
          // A resize answers a *different* base scenario. Evaluate it as a
          // private ephemeral base: sharing the engine's base map from a
          // worker would race with groups keyed on the resized hash.
          fuzz::Scenario resized = q.scenario;
          resized.size_knob = q.arg0;
          BaseState local{std::move(resized), 0};
          local.hash = content_hash(encode_scenario(local.scenario));
          a.result = base_alloc(local);
          a.source = Answer::Source::kCold;
          ++g.cold;
        } else {
          BaseState* b = g.base;
          bool warm = b != nullptr;
          if (b == nullptr) {
            if (g.built == nullptr) {
              g.built = std::make_unique<BaseState>(batch[idx].scenario, g.hash);
            } else {
              warm = true;  // built earlier in this same group
            }
            b = g.built.get();
          }
          switch (q.verb) {
            case QueryRequest::Verb::kRun: a.result = eval_run(*b); break;
            case QueryRequest::Verb::kKillLink:
              a.result = eval_kill_link(*b, q.arg0);
              break;
            case QueryRequest::Verb::kAddJob:
              a.result = eval_add_job(*b, q.arg0, q.arg1);
              break;
            case QueryRequest::Verb::kResize: break;  // handled above
          }
          a.source = warm ? Answer::Source::kWarm : Answer::Source::kCold;
          ++(warm ? g.warm : g.cold);
        }
        a.ok = true;
      } catch (const std::exception& e) {
        a.ok = false;
        a.error = e.what();
      }
    }
  };
  if (!groups.empty()) {
    exec::RunnerPool pool{options_.jobs};
    pool.map(groups.size(), [&](std::size_t gi) {
      run_group(groups[gi]);
      return 0;
    });
  }

  // Phase 4 (serial): adopt built bases, publish results, fill duplicates.
  for (GroupTask& g : groups) {
    stats_.computes += g.items.size();
    stats_.warm_evals += g.warm;
    stats_.cold_evals += g.cold;
    if (g.built != nullptr) {
      ++stats_.bases_built;
      adopt_base(std::move(g.built));
    }
    for (std::size_t k = 0; k < g.items.size(); ++k) {
      const std::size_t idx = g.items[k];
      answers[idx] = std::move(g.answers[k]);
      if (answers[idx].ok) {
        cache_insert(keys[idx], encode_result(answers[idx].result));
      }
    }
  }
  for (const auto& [dup, src] : dupes) {
    const std::uint64_t keep_hash = answers[dup].base_hash;
    answers[dup] = answers[src];
    answers[dup].base_hash = keep_hash;
    // Deduped within the batch: one compute, two replies; the duplicate
    // reads as a hit (its payload came from the first computation).
    if (answers[dup].ok) answers[dup].source = Answer::Source::kHit;
  }
  stats_.bases = impl_->bases.size();
  return answers;
}

// ---------------------------------------------------------------------------
// Line-framed protocol loop.

namespace {

struct PendingQuery {
  std::string verb_name;
  std::string error;  ///< poisoned at read time; answered at flush
  bool valid = false;
  QueryRequest req;
};

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

/// Parse "<verb> [args]" into `p.req`, or poison `p` with a pinned message.
void parse_verb(std::istringstream& ls, PendingQuery& p) {
  std::string verb;
  if (!(ls >> verb)) {
    p.error = "query needs a verb (run | kill-link | add-job | resize)";
    return;
  }
  p.verb_name = verb;
  std::string junk;
  if (verb == "run") {
    p.req.verb = QueryRequest::Verb::kRun;
    if (ls >> junk) p.error = "run takes no arguments";
  } else if (verb == "kill-link") {
    p.req.verb = QueryRequest::Verb::kKillLink;
    if (!(ls >> p.req.arg0) || (ls >> junk)) {
      p.error = "kill-link takes one cable index";
    }
  } else if (verb == "add-job") {
    p.req.verb = QueryRequest::Verb::kAddJob;
    if (!(ls >> p.req.arg0 >> p.req.arg1) || (ls >> junk)) {
      p.error = "add-job takes <hosts> <gbps>";
    } else if (p.req.arg0 < 2) {
      p.error = "add-job needs >= 2 hosts";
    } else if (!(p.req.arg1 > 0.0) || !(p.req.arg1 <= 10'000.0)) {
      p.error = "add-job gbps out of range (0, 10000]";
    }
  } else if (verb == "resize") {
    p.req.verb = QueryRequest::Verb::kResize;
    if (!(ls >> p.req.arg0) || (ls >> junk)) {
      p.error = "resize takes one size knob";
    } else if (p.req.arg0 == 0) {
      p.error = "resize size must be >= 1";
    }
  } else {
    p.error = "unknown verb '" + verb + "'";
  }
}

void emit_reply(std::ostream& out, std::size_t index, const PendingQuery& p,
                const Answer* a) {
  if (!p.error.empty()) {
    out << "reply " << index << " error " << p.error << "\n";
    return;
  }
  HPN_CHECK(a != nullptr);
  if (!a->ok) {
    out << "reply " << index << " error " << a->error << "\n";
    return;
  }
  const char* source = a->source == Answer::Source::kCold   ? "cold"
                       : a->source == Answer::Source::kWarm ? "warm"
                                                            : "hit";
  const QueryResult& r = a->result;
  out << "reply " << index << " ok " << p.verb_name << ' ' << source << " base="
      << hex16(a->base_hash) << "\n";
  out << "alloc " << r.base_flows.size() << "\n";
  for (std::size_t j = 0; j < r.base_flows.size(); ++j) {
    out << "f " << j << ' ' << fmt_g(r.base_flows[j].gbps) << ' '
        << (r.base_flows[j].stalled ? "stalled" : "ok") << "\n";
  }
  if (!r.job_flows.empty()) {
    out << "job " << r.job_flows.size() << "\n";
    for (std::size_t j = 0; j < r.job_flows.size(); ++j) {
      out << "j " << j << ' ' << fmt_g(r.job_flows[j].gbps) << ' '
          << (r.job_flows[j].stalled ? "stalled" : "ok") << "\n";
    }
  }
  if (!r.fcts.empty()) {
    out << "fct " << r.fcts.size() << "\n";
    for (std::size_t j = 0; j < r.fcts.size(); ++j) {
      out << "t " << j << ' ' << fmt_g(r.fcts[j].seconds) << ' '
          << (r.fcts[j].completed ? "done" : "aborted") << "\n";
    }
  }
  out << "summary flows=" << r.base_flows.size() + r.job_flows.size()
      << " stalled=" << r.stalled << " total_gbps=" << fmt_g(r.total_gbps)
      << " min_gbps=" << fmt_g(r.min_gbps) << "\n";
  out << "end\n";
}

}  // namespace

int serve_loop(std::istream& in, std::ostream& out, const ServeOptions& options) {
  QueryEngine engine{options.engine};
  out << "hpnsim-serve v1\n";
  std::vector<PendingQuery> pending;

  const auto flush = [&] {
    if (pending.empty()) return;
    std::vector<QueryRequest> valid;
    std::vector<int> slot(pending.size(), -1);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].valid && pending[i].error.empty()) {
        slot[i] = static_cast<int>(valid.size());
        valid.push_back(pending[i].req);
      }
    }
    const std::vector<Answer> answers = engine.answer(valid);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      emit_reply(out, i, pending[i],
                 slot[i] >= 0 ? &answers[static_cast<std::size_t>(slot[i])] : nullptr);
    }
    out.flush();
    pending.clear();
  };

  std::string line;
  bool disconnected = false;
  while (!disconnected && std::getline(in, line)) {
    strip_cr(line);
    std::istringstream ls{line};
    std::string cmd;
    if (!(ls >> cmd)) continue;       // blank line between requests
    if (cmd[0] == '#') continue;      // full-line comment
    if (cmd == "query") {
      PendingQuery p;
      parse_verb(ls, p);
      // The inline scenario follows immediately, terminated by its own
      // `end` line. It is consumed even when the verb was bad, so one bad
      // query cannot desynchronize the framing of everything after it.
      std::string text;
      bool oversized = false;
      bool terminated = false;
      while (std::getline(in, line)) {
        strip_cr(line);
        if (!oversized &&
            text.size() + line.size() + 1 > options.max_query_bytes) {
          oversized = true;
        }
        if (!oversized) {
          text += line;
          text += '\n';
        }
        std::istringstream ts{line};
        std::string tok;
        ts >> tok;
        if (tok == "end") {
          terminated = true;
          break;
        }
      }
      if (!terminated) {
        p.error = "disconnected mid-scenario";
        pending.push_back(std::move(p));
        disconnected = true;  // EOF: fall through to the implicit flush
        continue;
      }
      if (p.error.empty() && oversized) {
        p.error = "oversized query (limit " +
                  std::to_string(options.max_query_bytes) + " bytes)";
      }
      if (p.error.empty()) {
        std::string parse_error;
        const auto s = fuzz::Scenario::from_text(text, &parse_error);
        if (!s) {
          p.error = "scenario parse error: " + parse_error;
        } else {
          p.req.scenario = *s;
          p.valid = true;
        }
      }
      pending.push_back(std::move(p));
    } else if (cmd == "go") {
      flush();
    } else if (cmd == "stats") {
      flush();
      const EngineStats& s = engine.stats();
      out << "stats queries=" << s.queries << " hits=" << s.cache_hits
          << " misses=" << s.cache_misses << " computes=" << s.computes
          << " warm=" << s.warm_evals << " cold=" << s.cold_evals
          << " evictions=" << s.evictions << " cache_bytes=" << s.cache_bytes
          << " bases=" << s.bases << "\n";
      out.flush();
    } else if (cmd == "quit") {
      flush();
      out << "bye\n";
      out.flush();
      return 0;
    } else {
      out << "protocol-error unknown command '" << cmd << "'\n";
      out.flush();
    }
  }
  flush();  // EOF is an implicit `go` + `quit`
  return 0;
}

}  // namespace hpn::serve
