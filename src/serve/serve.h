// `hpnsim serve`: the capacity-planning query daemon (ROADMAP item 4).
//
// Operators ask continuous what-if questions of a fabric — which link
// failure stalls which jobs, where the next job fits, what a resized Pod
// allocates — and a cold simulation per question throws away almost all of
// its work: consecutive questions share the same base scenario. The engine
// answers through two reuse layers:
//
//  1. A content-addressed result cache keyed on the *canonically
//     re-serialized* scenario bytes plus the normalized query, so any
//     textual variant of the same scenario (whitespace, comments, CRLF,
//     section interleaving) hits the same entry. Entries store the
//     versioned binary wire encoding (serve/wire.h); hits decode before
//     replying, which keeps hit and miss replies byte-identical.
//
//  2. A warm-start base cache: the first query against a scenario builds a
//     BaseState — materialized cluster, a resolved per-flow
//     IncrementalMaxMin over the base workload, and (lazily) a
//     Simulator/FlowSession pair with quiescent snapshots for time-domain
//     re-runs. Single-mutation queries run against a scratch engine that
//     is copy-assigned from the base solver once and then kept in sync by
//     rolling each delta back (kill-link) or re-copying (add-job); every
//     delta goes through the incremental path (notify_link_changed /
//     add_flow), re-solving only the affected flow components instead of
//     re-simulating.
//
// Warm answers are byte-identical to cold ones *by construction*: the
// scratch solver holds the exact base-solver bits (a memberwise copy, or
// a rolled-back delta whose component re-rate — a pure function of member
// flows, caps and link state — restores them), and the cold path builds
// that same solver state from the same canonical scenario with the same
// deterministic ordering — same bits in, same water-filling arithmetic,
// same bits out. The serve equivalence battery pins this across every
// fabric kind.
//
// Query verbs (steady-state allocations answer over the planning topology:
// every permanent fault — down_for == 0 link_fail/tor_crash — applied):
//   run                  base allocation + time-domain FCTs with the full
//                        fault schedule replayed (links all-up at t=0)
//   kill-link <cable>    allocation with cable (index mod cable count)
//                        additionally down; base paths are kept, flows
//                        crossing the dead cable stall
//   add-job <n> <gbps>   allocation with a ring of n probe flows (over the
//                        first n endpoints, BFS-routed like base flows)
//                        added at the given source cap
//   resize <size>        base allocation of the scenario with its size
//                        knob replaced (evaluated as its own base)
//
// Batching: independent queries in one `go` batch are grouped by base
// scenario and the groups run in parallel on a RunnerPool; queries sharing
// a base stay sequential within their group (they share BaseState).
// Replies are assembled in query order — transcripts are byte-stable at
// any --jobs. Duplicate queries in a batch compute once and reply twice.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "serve/wire.h"

namespace hpn::serve {

/// A parsed, validated query: a verb plus its scenario (already strictly
/// parsed from canonical or variant text).
struct QueryRequest {
  enum class Verb : std::uint8_t { kRun, kKillLink, kAddJob, kResize };
  Verb verb = Verb::kRun;
  std::uint32_t arg0 = 0;   ///< kill-link cable / add-job hosts / resize size
  double arg1 = 0.0;        ///< add-job source cap (Gbps)
  fuzz::Scenario scenario;
};

struct Answer {
  enum class Source : std::uint8_t { kCold, kWarm, kHit };
  bool ok = false;
  std::string error;        ///< set when !ok
  QueryResult result;       ///< valid when ok
  Source source = Source::kCold;
  std::uint64_t base_hash = 0;  ///< fnv1a64 of the canonical (wire) scenario bytes
};

struct EngineOptions {
  std::size_t cache_bytes = 64u << 20;  ///< result-cache memory cap
  std::size_t max_bases = 8;            ///< warm BaseStates kept (LRU)
  int jobs = 1;                         ///< RunnerPool width per batch
};

struct EngineStats {
  std::uint64_t queries = 0;      ///< requests answered (incl. errors)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t computes = 0;     ///< unique evaluations (dedup'd misses)
  std::uint64_t warm_evals = 0;   ///< computes served off an existing base
  std::uint64_t cold_evals = 0;   ///< computes that had to build their base
  std::uint64_t bases_built = 0;
  std::uint64_t evictions = 0;    ///< result-cache LRU evictions
  std::size_t cache_bytes = 0;    ///< current result-cache footprint
  std::size_t bases = 0;          ///< current warm bases held
};

class QueryEngine {
 public:
  /// Opaque warm-start state for one base scenario (defined in serve.cpp;
  /// public so the evaluation functions there can be plain free functions).
  struct BaseState;

  explicit QueryEngine(EngineOptions options = {});
  ~QueryEngine();
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Answer a batch. Answers come back in request order and are
  /// byte-deterministic for a given (engine state, batch) at any jobs.
  std::vector<Answer> answer(const std::vector<QueryRequest>& batch);

  [[nodiscard]] const EngineStats& stats() const { return stats_; }

 private:
  struct CacheEntry;

  std::string cache_key(std::uint64_t base_hash, const QueryRequest& q) const;
  BaseState* find_base(std::uint64_t hash);
  void adopt_base(std::unique_ptr<BaseState> base);
  void cache_insert(const std::string& key, std::string bytes);

  EngineOptions options_;
  EngineStats stats_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Line-framed protocol options (see README "Query service" for grammar).
struct ServeOptions {
  EngineOptions engine;
  std::size_t max_query_bytes = 1u << 20;  ///< inline scenario size cap
};

/// Run the daemon loop over a stream pair until EOF or `quit`. Testable
/// with stringstreams; `hpnsim_cli serve` binds it to stdin/stdout (wrap
/// with socat/nc for a socket). Returns the process exit code.
int serve_loop(std::istream& in, std::ostream& out, const ServeOptions& options = {});

}  // namespace hpn::serve
