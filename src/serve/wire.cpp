#include "serve/wire.h"

#include <bit>
#include <cstring>

namespace hpn::serve {

namespace wire {

namespace {

template <typename T>
void put_le(std::string& out, T v) {
  static_assert(std::endian::native == std::endian::little ||
                std::endian::native == std::endian::big);
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    for (std::size_t i = 0; i < sizeof(T) / 2; ++i) {
      std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
    }
  }
  out.append(reinterpret_cast<const char*>(bytes), sizeof(T));
}

template <typename T>
bool get_le(std::string_view in, std::size_t& pos, T& v) {
  if (in.size() - pos < sizeof(T) || pos > in.size()) return false;
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, in.data() + pos, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    for (std::size_t i = 0; i < sizeof(T) / 2; ++i) {
      std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
    }
  }
  std::memcpy(&v, bytes, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

void put_u8(std::string& out, std::uint8_t v) { put_le(out, v); }
void put_u16(std::string& out, std::uint16_t v) { put_le(out, v); }
void put_u32(std::string& out, std::uint32_t v) { put_le(out, v); }
void put_u64(std::string& out, std::uint64_t v) { put_le(out, v); }
void put_i64(std::string& out, std::int64_t v) { put_le(out, v); }
void put_f64(std::string& out, double v) { put_le(out, std::bit_cast<std::uint64_t>(v)); }
void put_string(std::string& out, std::string_view v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  out.append(v.data(), v.size());
}

bool get_u8(std::string_view in, std::size_t& pos, std::uint8_t& v) {
  return get_le(in, pos, v);
}
bool get_u16(std::string_view in, std::size_t& pos, std::uint16_t& v) {
  return get_le(in, pos, v);
}
bool get_u32(std::string_view in, std::size_t& pos, std::uint32_t& v) {
  return get_le(in, pos, v);
}
bool get_u64(std::string_view in, std::size_t& pos, std::uint64_t& v) {
  return get_le(in, pos, v);
}
bool get_i64(std::string_view in, std::size_t& pos, std::int64_t& v) {
  return get_le(in, pos, v);
}
bool get_f64(std::string_view in, std::size_t& pos, double& v) {
  std::uint64_t bits = 0;
  if (!get_le(in, pos, bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}
bool get_string(std::string_view in, std::size_t& pos, std::string& v) {
  std::uint32_t len = 0;
  if (!get_u32(in, pos, len)) return false;
  if (in.size() - pos < len) return false;
  v.assign(in.data() + pos, len);
  pos += len;
  return true;
}

}  // namespace wire

namespace {

using namespace wire;

void set_err(std::string* error, std::string_view msg) {
  if (error != nullptr) *error = msg;
}

/// Shared envelope check: 4-byte magic + u16 version.
bool check_envelope(std::string_view bytes, std::size_t& pos, std::string_view magic,
                    std::string* error) {
  if (bytes.size() < magic.size() || bytes.substr(0, magic.size()) != magic) {
    set_err(error, "bad magic");
    return false;
  }
  pos = magic.size();
  std::uint16_t version = 0;
  if (!get_u16(bytes, pos, version)) {
    set_err(error, "truncated header");
    return false;
  }
  if (version != kVersion) {
    set_err(error, "unsupported version " + std::to_string(version));
    return false;
  }
  return true;
}

}  // namespace

std::string encode_scenario(const fuzz::Scenario& s) {
  std::string out;
  out.append(kScenarioMagic);
  put_u16(out, kVersion);
  put_u64(out, s.seed);
  put_u8(out, static_cast<std::uint8_t>(s.topology));
  put_u32(out, s.size_knob);
  put_u32(out, s.wiring);
  put_u32(out, static_cast<std::uint32_t>(s.flows.size()));
  for (const fuzz::ScenarioFlow& f : s.flows) {
    put_u32(out, f.src);
    put_u32(out, f.dst);
    put_i64(out, f.size_bytes);
    put_f64(out, f.cap_gbps);
  }
  put_u32(out, static_cast<std::uint32_t>(s.faults.size()));
  for (const fuzz::ScenarioFault& f : s.faults) {
    put_u8(out, static_cast<std::uint8_t>(f.kind));
    put_i64(out, f.at_ns);
    put_u32(out, f.target);
    put_i64(out, f.down_for_ns);
  }
  put_u32(out, static_cast<std::uint32_t>(s.jobs.size()));
  for (const fuzz::ScenarioJob& j : s.jobs) {
    put_i64(out, j.arrival_ns);
    put_u32(out, j.hosts);
    put_u32(out, j.iters);
  }
  return out;
}

std::optional<fuzz::Scenario> decode_scenario(std::string_view bytes,
                                              std::string* error) {
  std::size_t pos = 0;
  if (!check_envelope(bytes, pos, kScenarioMagic, error)) return std::nullopt;
  fuzz::Scenario s;
  std::uint8_t topology = 0;
  std::uint32_t flow_count = 0;
  if (!get_u64(bytes, pos, s.seed) || !get_u8(bytes, pos, topology) ||
      !get_u32(bytes, pos, s.size_knob) || !get_u32(bytes, pos, s.wiring) ||
      !get_u32(bytes, pos, flow_count)) {
    set_err(error, "truncated scenario");
    return std::nullopt;
  }
  if (topology > static_cast<std::uint8_t>(fuzz::TopologyKind::kHpnPod)) {
    set_err(error, "unknown topology id " + std::to_string(topology));
    return std::nullopt;
  }
  s.topology = static_cast<fuzz::TopologyKind>(topology);
  s.flows.reserve(std::min<std::uint32_t>(flow_count, 4096));
  for (std::uint32_t i = 0; i < flow_count; ++i) {
    fuzz::ScenarioFlow f;
    if (!get_u32(bytes, pos, f.src) || !get_u32(bytes, pos, f.dst) ||
        !get_i64(bytes, pos, f.size_bytes) || !get_f64(bytes, pos, f.cap_gbps)) {
      set_err(error, "truncated scenario");
      return std::nullopt;
    }
    s.flows.push_back(f);
  }
  std::uint32_t fault_count = 0;
  if (!get_u32(bytes, pos, fault_count)) {
    set_err(error, "truncated scenario");
    return std::nullopt;
  }
  s.faults.reserve(std::min<std::uint32_t>(fault_count, 4096));
  for (std::uint32_t i = 0; i < fault_count; ++i) {
    fuzz::ScenarioFault f;
    std::uint8_t kind = 0;
    if (!get_u8(bytes, pos, kind) || !get_i64(bytes, pos, f.at_ns) ||
        !get_u32(bytes, pos, f.target) || !get_i64(bytes, pos, f.down_for_ns)) {
      set_err(error, "truncated scenario");
      return std::nullopt;
    }
    if (kind > static_cast<std::uint8_t>(fuzz::ScenarioFault::Kind::kTorCrash)) {
      set_err(error, "unknown fault kind id " + std::to_string(kind));
      return std::nullopt;
    }
    f.kind = static_cast<fuzz::ScenarioFault::Kind>(kind);
    s.faults.push_back(f);
  }
  std::uint32_t job_count = 0;
  if (!get_u32(bytes, pos, job_count)) {
    set_err(error, "truncated scenario");
    return std::nullopt;
  }
  s.jobs.reserve(std::min<std::uint32_t>(job_count, 4096));
  for (std::uint32_t i = 0; i < job_count; ++i) {
    fuzz::ScenarioJob j;
    if (!get_i64(bytes, pos, j.arrival_ns) || !get_u32(bytes, pos, j.hosts) ||
        !get_u32(bytes, pos, j.iters)) {
      set_err(error, "truncated scenario");
      return std::nullopt;
    }
    s.jobs.push_back(j);
  }
  if (pos != bytes.size()) {
    set_err(error, "trailing bytes after scenario");
    return std::nullopt;
  }
  return s;
}

std::string encode_result(const QueryResult& r) {
  std::string out;
  out.append(kResultMagic);
  put_u16(out, kVersion);
  const auto put_flows = [&out](const std::vector<QueryResult::Flow>& flows) {
    put_u32(out, static_cast<std::uint32_t>(flows.size()));
    for (const QueryResult::Flow& f : flows) {
      put_f64(out, f.gbps);
      put_u8(out, f.stalled ? 1 : 0);
    }
  };
  put_flows(r.base_flows);
  put_flows(r.job_flows);
  put_u32(out, static_cast<std::uint32_t>(r.fcts.size()));
  for (const QueryResult::Fct& f : r.fcts) {
    put_f64(out, f.seconds);
    put_u8(out, f.completed ? 1 : 0);
  }
  put_u32(out, r.stalled);
  put_f64(out, r.total_gbps);
  put_f64(out, r.min_gbps);
  return out;
}

std::optional<QueryResult> decode_result(std::string_view bytes, std::string* error) {
  std::size_t pos = 0;
  if (!check_envelope(bytes, pos, kResultMagic, error)) return std::nullopt;
  QueryResult r;
  const auto get_flows = [&](std::vector<QueryResult::Flow>& flows) -> bool {
    std::uint32_t count = 0;
    if (!get_u32(bytes, pos, count)) return false;
    flows.reserve(std::min<std::uint32_t>(count, 1u << 20));
    for (std::uint32_t i = 0; i < count; ++i) {
      QueryResult::Flow f;
      std::uint8_t stalled = 0;
      if (!get_f64(bytes, pos, f.gbps) || !get_u8(bytes, pos, stalled)) return false;
      f.stalled = stalled != 0;
      flows.push_back(f);
    }
    return true;
  };
  const auto fail = [&]() -> std::optional<QueryResult> {
    set_err(error, "truncated result");
    return std::nullopt;
  };
  if (!get_flows(r.base_flows) || !get_flows(r.job_flows)) return fail();
  std::uint32_t fct_count = 0;
  if (!get_u32(bytes, pos, fct_count)) return fail();
  r.fcts.reserve(std::min<std::uint32_t>(fct_count, 1u << 20));
  for (std::uint32_t i = 0; i < fct_count; ++i) {
    QueryResult::Fct f;
    std::uint8_t completed = 0;
    if (!get_f64(bytes, pos, f.seconds) || !get_u8(bytes, pos, completed)) {
      return fail();
    }
    f.completed = completed != 0;
    r.fcts.push_back(f);
  }
  if (!get_u32(bytes, pos, r.stalled) || !get_f64(bytes, pos, r.total_gbps) ||
      !get_f64(bytes, pos, r.min_gbps)) {
    return fail();
  }
  if (pos != bytes.size()) {
    set_err(error, "trailing bytes after result");
    return std::nullopt;
  }
  return r;
}

}  // namespace hpn::serve
