#include "workload/inference.h"

#include "common/check.h"

namespace hpn::workload {

InferenceService::InferenceService(const topo::Cluster& cluster, sim::Simulator& simulator,
                                   flowsim::FlowSession& session, routing::Router& router,
                                   std::vector<int> serving_hosts,
                                   std::vector<NodeId> gateways, InferenceConfig config)
    : cluster_{&cluster},
      sim_{&simulator},
      session_{&session},
      router_{&router},
      hosts_{std::move(serving_hosts)},
      gateways_{std::move(gateways)},
      config_{config},
      rng_{config.seed} {
  HPN_CHECK(!hosts_.empty());
  HPN_CHECK(!gateways_.empty());
  HPN_CHECK(config_.requests_per_sec > 0.0);
  for (const int h : hosts_) {
    HPN_CHECK_MSG(cluster.hosts.at(static_cast<std::size_t>(h)).frontend_nic.is_valid(),
                  "serving hosts need a frontend NIC (attach_frontend first)");
  }
}

InferenceService::~InferenceService() {
  stop();
  // Requests may still be in flight (flow completions / compute delays hold
  // lambdas that point back here); disarm them rather than racing them.
  *alive_ = false;
}

void InferenceService::start() {
  HPN_CHECK(!running_);
  running_ = true;
  schedule_next_arrival();
}

void InferenceService::stop() {
  running_ = false;
  if (next_arrival_ != sim::kInvalidEvent) {
    sim_->cancel(next_arrival_);
    next_arrival_ = sim::kInvalidEvent;
  }
}

void InferenceService::schedule_next_arrival() {
  if (!running_) return;
  const double gap_s = rng_.exponential(1.0 / config_.requests_per_sec);
  next_arrival_ = sim_->schedule_after(Duration::seconds(gap_s), [this] {
    next_arrival_ = sim::kInvalidEvent;
    handle_request();
    schedule_next_arrival();
  });
}

void InferenceService::handle_request() {
  const int host_idx = hosts_[rr_ % hosts_.size()];
  const NodeId gateway = gateways_[rr_ % gateways_.size()];
  ++rr_;
  const topo::Host& host = cluster_->hosts.at(static_cast<std::size_t>(host_idx));
  const TimePoint accepted = sim_->now();

  // Request: gateway -> host NIC0.
  const routing::FiveTuple req_ft{.src_ip = gateway.value(),
                                  .dst_ip = host.frontend_nic.value(),
                                  .src_port = static_cast<std::uint16_t>(rng_.next_u64())};
  const routing::Path req_path = router_->trace(gateway, host.frontend_nic, req_ft);
  if (!req_path.valid()) {
    ++dropped_;
    return;
  }
  const Duration compute =
      Duration::seconds(rng_.exponential(config_.compute_mean.as_seconds()));
  session_->start_flow(
      req_path.links, config_.request_size, Bandwidth::gbps(200),
      [this, alive = alive_, accepted, host_idx, gateway, compute](FlowId) {
        if (!*alive) return;
        // GPU produces the response after `compute`, then streams it back.
        sim_->schedule_after(compute, [this, alive, accepted, host_idx, gateway] {
          if (!*alive) return;
          const topo::Host& h = cluster_->hosts.at(static_cast<std::size_t>(host_idx));
          const routing::FiveTuple resp_ft{
              .src_ip = h.frontend_nic.value(),
              .dst_ip = gateway.value(),
              .src_port = static_cast<std::uint16_t>(rng_.next_u64())};
          const routing::Path resp_path = router_->trace(h.frontend_nic, gateway, resp_ft);
          if (!resp_path.valid()) {
            ++dropped_;
            return;
          }
          session_->start_flow(resp_path.links, config_.response_size,
                               Bandwidth::gbps(200), [this, alive, accepted](FlowId) {
                                 if (!*alive) return;
                                 ++completed_;
                                 latencies_.add((sim_->now() - accepted).as_seconds());
                               });
        });
      });
}

}  // namespace hpn::workload
