#include "workload/storage.h"

#include <memory>

#include "common/check.h"

namespace hpn::workload {

std::vector<NodeId> StorageTraffic::host_endpoints(const topo::Host& host,
                                                   bool backend_storage) const {
  std::vector<NodeId> out;
  if (backend_storage) {
    // Backend-attached storage shares the training fabric: traffic leaves
    // through the rail NICs (and contends with collective traffic there).
    for (const topo::NicAttachment& att : host.nics) out.push_back(att.nic);
  } else {
    HPN_CHECK_MSG(host.frontend_nic.is_valid(),
                  "frontend storage requires attach_frontend() first");
    out.push_back(host.frontend_nic);
  }
  return out;
}

void StorageTraffic::transfer(const std::vector<int>& hosts,
                              const std::vector<topo::StorageHost>& storage,
                              DataSize per_host, bool to_storage, DoneFn done) {
  HPN_CHECK(!hosts.empty() && !storage.empty());
  const bool backend = storage.front().on_backend;
  auto remaining = std::make_shared<int>(0);
  auto shared_done = std::make_shared<DoneFn>(std::move(done));
  const auto arrive = [remaining, shared_done] {
    if (--*remaining == 0 && *shared_done) (*shared_done)();
  };

  std::size_t rr = 0;
  for (const int h : hosts) {
    const topo::Host& host = cluster_->hosts.at(static_cast<std::size_t>(h));
    const auto endpoints = host_endpoints(host, backend);
    const DataSize per_flow = per_host / static_cast<double>(endpoints.size());
    for (const NodeId ep : endpoints) {
      const topo::StorageHost& target = storage[rr++ % storage.size()];
      const NodeId src = to_storage ? ep : target.host;
      const NodeId dst = to_storage ? target.host : ep;
      const routing::FiveTuple ft{.src_ip = src.value(),
                                  .dst_ip = dst.value(),
                                  .src_port = static_cast<std::uint16_t>(20'000 + rr)};
      const routing::Path path = router_->trace(src, dst, ft);
      if (!path.valid()) {
        ++unroutable_;
        continue;
      }
      ++*remaining;
      // One NIC port carries a flow; the 2x200G pair gives 400G per NIC
      // via the two-port hash, approximated with a 400G source cap here.
      session_->start_flow(path.links, per_flow, Bandwidth::gbps(400),
                           [arrive](FlowId) { arrive(); });
    }
  }
  HPN_CHECK_MSG(*remaining > 0, "no storage flow was routable");
}

void StorageTraffic::checkpoint_write(const std::vector<int>& hosts,
                                      const std::vector<topo::StorageHost>& storage,
                                      DataSize per_host, DoneFn done) {
  transfer(hosts, storage, per_host, /*to_storage=*/true, std::move(done));
}

void StorageTraffic::dataset_load(const std::vector<int>& hosts,
                                  const std::vector<topo::StorageHost>& storage,
                                  DataSize per_host, DoneFn done) {
  transfer(hosts, storage, per_host, /*to_storage=*/false, std::move(done));
}

Duration StorageTraffic::run_checkpoint_write(const std::vector<int>& hosts,
                                              const std::vector<topo::StorageHost>& storage,
                                              DataSize per_host) {
  const TimePoint start = sim_->now();
  bool finished = false;
  checkpoint_write(hosts, storage, per_host, [&finished] { finished = true; });
  while (!finished && sim_->step()) {
  }
  HPN_CHECK(finished);
  return sim_->now() - start;
}

}  // namespace hpn::workload
