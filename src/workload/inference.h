// Inference serving over the frontend network (§8).
//
// The trend the paper designs for: training-class GPUs increasingly serve
// inference, and customers co-locate training and inference on one rented
// cluster. The frontend's 2x200G per host and 1:1 oversubscription exist so
// that serving traffic (requests in, token streams / KV transfers out)
// gets predictable latency even while the same hosts train. This module
// generates an open-loop Poisson request stream against a set of serving
// hosts and records end-to-end response latencies.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "flowsim/session.h"
#include "metrics/stats.h"
#include "routing/router.h"
#include "topo/frontend.h"

namespace hpn::workload {

struct InferenceConfig {
  /// Aggregate request arrival rate across the cluster.
  double requests_per_sec = 2'000.0;
  DataSize request_size = DataSize::kilobytes(8);     ///< Prompt upload.
  DataSize response_size = DataSize::megabytes(2);    ///< Streamed tokens.
  /// GPU time to produce the response (prefill + decode), exponential mean.
  Duration compute_mean = Duration::millis(150);
  std::uint64_t seed = 1;
};

class InferenceService {
 public:
  /// `serving_hosts` are compute-host indexes; traffic enters/leaves via
  /// their frontend NICs. `gateways` are frontend edge nodes clients talk
  /// through (requests rotate across them).
  InferenceService(const topo::Cluster& cluster, sim::Simulator& simulator,
                   flowsim::FlowSession& session, routing::Router& router,
                   std::vector<int> serving_hosts, std::vector<NodeId> gateways,
                   InferenceConfig config = {});
  ~InferenceService();
  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Begin the open-loop arrival process.
  void start();
  void stop();

  [[nodiscard]] int completed() const { return completed_; }
  [[nodiscard]] int dropped() const { return dropped_; }
  /// End-to-end latency samples (seconds).
  [[nodiscard]] const metrics::SampleSet& latencies() const { return latencies_; }

 private:
  void schedule_next_arrival();
  void handle_request();

  const topo::Cluster* cluster_;
  sim::Simulator* sim_;
  flowsim::FlowSession* session_;
  routing::Router* router_;
  std::vector<int> hosts_;
  std::vector<NodeId> gateways_;
  InferenceConfig config_;
  Rng rng_;
  sim::EventId next_arrival_ = sim::kInvalidEvent;
  bool running_ = false;
  int completed_ = 0;
  int dropped_ = 0;
  std::size_t rr_ = 0;
  metrics::SampleSet latencies_;
  /// Disarms in-flight request continuations (request flow -> compute ->
  /// response flow) when the service is destroyed mid-request.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace hpn::workload
