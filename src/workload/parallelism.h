// Megatron-style hybrid parallelism planning (§2.1, §7).
//
// A job of G GPUs factors into TP x PP x DP. Placement follows the paper's
// rules: TP groups live inside one host (NVLink); DP replicas of the same
// pipeline stage sit on *adjacent* hosts so their heavy AllReduce stays
// low-tier; PP stage boundaries carry the least traffic and are the ones
// allowed to cross segments/Pods (§7 assigns cross-Pod links to PP).
#pragma once

#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "topo/cluster.h"

namespace hpn::workload {

/// Per-iteration traffic volumes of each parallelism flavor (Table 3).
struct IterationTraffic {
  DataSize dp_all_reduce = DataSize::gigabytes(5.5);  ///< Per GPU, AllReduce.
  DataSize pp_send = DataSize::megabytes(6);          ///< Per stage boundary.
  DataSize tp_all_reduce = DataSize::megabytes(560);  ///< Per GPU, intra-host.
  /// MoE expert routing: per-GPU AllToAll volume per iteration (zero for
  /// dense models). §10: "training the increasingly popular MoE models
  /// involves substantial all-to-all traffic towards different Experts".
  DataSize moe_all_to_all = DataSize::zero();
};

/// Model presets used in the evaluation (§9.1). Traffic scales roughly with
/// parameter count; compute per iteration is calibrated per model.
struct ModelPreset {
  const char* name;
  IterationTraffic traffic;
  Duration compute_per_iteration;
  int samples_per_iteration_per_gpu;
  /// Gradient-sync rounds per iteration. Table 3 quotes the volume of one
  /// DP AllReduce; production iterations sync bucket-by-bucket, producing
  /// the seconds-long 400G bursts of Fig 2. Calibrated per model so the
  /// exposed communication share matches the paper's burst duty cycle.
  int dp_rounds_per_iteration = 1;
};

ModelPreset gpt3_175b();
ModelPreset llama_7b();
ModelPreset llama_13b();
/// Mixtral-class sparse model: light dense gradients, heavy expert
/// all-to-all — the workload that rules out rail-only tier2 (§10).
ModelPreset moe_8x7b();

struct PlacementPlan {
  int tp = 8;
  int pp = 1;
  int dp = 1;
  /// Host indexes used, in assignment order: host(stage s, replica r) =
  /// hosts[s * dp + r] (replica-adjacent for DP locality).
  std::vector<int> hosts;
  /// Global GPU ranks per TP group (= one host each when tp == rails).
  std::vector<std::vector<int>> tp_groups;
  /// DP groups: for each pipeline stage, the ranks holding the same model
  /// shard across replicas — these run Multi-AllReduce together. One group
  /// per (stage); members are whole hosts (all rails).
  std::vector<std::vector<int>> dp_groups;
  /// PP boundaries: (src rank, dst rank) per consecutive-stage pair per
  /// replica (rail 0 carries the p2p in our model).
  std::vector<std::pair<int, int>> pp_pairs;

  [[nodiscard]] int world_size() const { return tp * pp * dp; }
};

/// Plans a job on `cluster`: takes the first `pp*dp` non-backup hosts (or a
/// caller-provided host list), stage-major so DP replicas are adjacent.
class ParallelismPlanner {
 public:
  explicit ParallelismPlanner(const topo::Cluster& cluster) : cluster_{&cluster} {}

  /// tp must equal gpus_per_host (TP stays on NVLink).
  [[nodiscard]] PlacementPlan plan(int tp, int pp, int dp) const;
  [[nodiscard]] PlacementPlan plan_on_hosts(int tp, int pp, int dp,
                                            const std::vector<int>& hosts) const;

  /// Non-backup hosts in index order.
  [[nodiscard]] std::vector<int> active_hosts() const;

 private:
  const topo::Cluster* cluster_;
};

}  // namespace hpn::workload
