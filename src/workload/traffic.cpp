#include "workload/traffic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hpn::workload {

CloudTrafficSample CloudTrafficModel::at_hour(double hour) {
  // Smooth diurnal curve peaking mid-day, plus small jitter.
  const double phase = std::sin((hour - 6.0) / 24.0 * 2.0 * 3.14159265358979);
  const double base = 1.1 + 0.5 * phase;  // ~0.6 .. 1.6 Gbps
  CloudTrafficSample s;
  s.in_gbps = std::max(0.1, base + rng_.normal(0.0, 0.05));
  s.out_gbps = std::max(0.1, base * 0.85 + rng_.normal(0.0, 0.05));
  s.connections =
      static_cast<int>(std::max(50.0, 140'000.0 + 40'000.0 * phase + rng_.normal(0.0, 4'000.0)));
  return s;
}

std::vector<metrics::TimeSeries> generate_nic_bursts(const NicBurstConfig& config,
                                                     Duration total, std::uint64_t seed) {
  HPN_CHECK(config.sample_every > Duration::zero());
  Rng rng{seed};
  std::vector<metrics::TimeSeries> out;
  // All NICs burst in the same window: gradient sync engages every rail at
  // once (Fig 2 shows 8 overlapping traces).
  const double period_s = config.iteration.as_seconds();
  const double burst_s = config.burst.as_seconds();
  for (int nic = 0; nic < config.nics; ++nic) {
    metrics::TimeSeries ts{"NIC-" + std::to_string(nic + 1)};
    Rng nic_rng = rng.fork(static_cast<std::uint64_t>(nic));
    for (TimePoint t = TimePoint::origin(); t.since_origin() <= total;
         t += config.sample_every) {
      const double in_period = std::fmod(t.as_seconds(), period_s);
      double gbps;
      if (in_period < burst_s) {
        // Bursts instantly fill the NIC; slight per-sample ripple.
        gbps = config.line_rate.as_gbps() * nic_rng.uniform_real(0.96, 1.0);
      } else {
        gbps = nic_rng.uniform_real(0.0, 2.0);  // background chatter
      }
      ts.record(t, gbps);
    }
    out.push_back(std::move(ts));
  }
  return out;
}

int ConnectionCountModel::sample_llm_host() {
  // Dozens to hundreds: log-normal with median ~60, long right tail.
  return std::clamp(static_cast<int>(rng_.lognormal(60.0, 0.8)), 8, 2'000);
}

int ConnectionCountModel::sample_cloud_host() {
  return std::clamp(static_cast<int>(rng_.lognormal(120'000.0, 0.35)), 10'000, 600'000);
}

std::vector<CheckpointProfile> representative_checkpoint_profiles() {
  return {
      {"LLM1", 2.0, Duration::seconds(100.0), DataSize::gigabytes(30)},
      {"LLM2", 2.5, Duration::seconds(100.0), DataSize::gigabytes(30)},
      {"LLM3", 3.0, Duration::seconds(110.0), DataSize::gigabytes(30)},
      {"LLM4", 4.0, Duration::seconds(95.0), DataSize::gigabytes(30)},
  };
}

double FailureStatsModel::sample_monthly_link_failure_ratio(int links) {
  HPN_CHECK(links > 0);
  int failures = 0;
  for (int i = 0; i < links; ++i) {
    failures += rng_.bernoulli(rates_.nic_tor_link_monthly);
  }
  return static_cast<double>(failures) / links;
}

double FailureStatsModel::expected_monthly_crashes(int links, int tors) const {
  return links * rates_.nic_tor_link_monthly + tors * rates_.tor_critical_monthly;
}

int JobSizeModel::sample_gpus() {
  // Mixture calibrated to Fig 6: most jobs are small-to-mid; 96.3% < 1K;
  // the tail reaches ~2.3-3K (the largest production job).
  const double u = rng_.uniform_real();
  double gpus;
  if (u < 0.45) {
    gpus = rng_.lognormal(64.0, 0.7);           // experiments, small FT jobs
  } else if (u < 0.80) {
    gpus = rng_.lognormal(256.0, 0.5);          // mid-size training
  } else if (u < 0.963) {
    gpus = rng_.uniform_real(512.0, 1000.0);    // large, still one segment
  } else {
    gpus = rng_.uniform_real(1000.0, 3000.0);   // the >1K tail (3.7%)
  }
  // Jobs allocate whole hosts.
  const int hosts = std::max(1, static_cast<int>(std::lround(gpus / 8.0)));
  return std::min(hosts * 8, 3'072);
}

}  // namespace hpn::workload
