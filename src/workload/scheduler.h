// Segment-aware job scheduler (§3, Fig 6).
//
// HPN's tier1 segment holds 1,024 GPUs precisely so that "96.3% of
// in-production LLM training jobs ... can be put in one segment, achieving
// the utmost network performance". This scheduler allocates whole hosts to
// jobs with segment affinity: fit the job inside one segment if possible,
// else pack it into the fewest adjacent segments. Comparing placements on
// HPN (1K-GPU segments) vs DCN+ (128-GPU segments) turns the Fig 6 CDF
// into the paper's locality claim.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/check.h"
#include "topo/cluster.h"

namespace hpn::workload {

struct JobPlacement {
  JobId id = JobId::invalid();
  std::vector<int> hosts;
  int segments_spanned = 0;

  [[nodiscard]] int gpus(int gpus_per_host) const {
    return static_cast<int>(hosts.size()) * gpus_per_host;
  }
};

class ClusterScheduler {
 public:
  explicit ClusterScheduler(const topo::Cluster& cluster);

  /// Allocate `gpus` (whole hosts). Returns nullopt when the cluster cannot
  /// fit the job. Placement policy: single segment first (best network),
  /// then the minimal set of segments with the most free capacity.
  std::optional<JobPlacement> allocate(int gpus);

  /// Return a job's hosts to the free pool.
  void release(JobId id);

  [[nodiscard]] int free_hosts() const;
  [[nodiscard]] int free_hosts_in_segment(int pod, int segment) const;
  [[nodiscard]] std::size_t running_jobs() const { return placements_.size(); }

 private:
  struct Segment {
    int pod = 0;
    int segment = 0;
    std::vector<int> free;  ///< Free host indexes, ascending.
  };

  const topo::Cluster* cluster_;
  std::vector<Segment> segments_;
  std::map<JobId, JobPlacement> placements_;
  JobId::underlying next_id_ = 1;
};

}  // namespace hpn::workload
