#include "workload/parallelism.h"

namespace hpn::workload {

ModelPreset gpt3_175b() {
  return ModelPreset{
      .name = "GPT3-175B",
      .traffic = IterationTraffic{},  // Table 3 defaults
      .compute_per_iteration = Duration::seconds(18.0),
      .samples_per_iteration_per_gpu = 1,
      .dp_rounds_per_iteration = 12,
  };
}

ModelPreset llama_7b() {
  // ~25x fewer parameters than GPT-3 175B: gradients and TP activations
  // shrink proportionally; iterations are much shorter.
  return ModelPreset{
      .name = "LLaMa-7B",
      .traffic =
          IterationTraffic{
              .dp_all_reduce = DataSize::megabytes(220),
              .pp_send = DataSize::megabytes(6),
              .tp_all_reduce = DataSize::megabytes(96),
          },
      .compute_per_iteration = Duration::seconds(0.55),
      .samples_per_iteration_per_gpu = 1,
      .dp_rounds_per_iteration = 12,
  };
}

ModelPreset llama_13b() {
  return ModelPreset{
      .name = "LLaMa-13B",
      .traffic =
          IterationTraffic{
              .dp_all_reduce = DataSize::megabytes(410),
              .pp_send = DataSize::megabytes(6),
              .tp_all_reduce = DataSize::megabytes(170),
          },
      .compute_per_iteration = Duration::seconds(1.0),
      .samples_per_iteration_per_gpu = 1,
      .dp_rounds_per_iteration = 20,
  };
}

ModelPreset moe_8x7b() {
  return ModelPreset{
      .name = "MoE-8x7B",
      .traffic =
          IterationTraffic{
              .dp_all_reduce = DataSize::megabytes(300),
              .pp_send = DataSize::megabytes(6),
              .tp_all_reduce = DataSize::megabytes(120),
              .moe_all_to_all = DataSize::megabytes(256),
          },
      .compute_per_iteration = Duration::seconds(0.8),
      .samples_per_iteration_per_gpu = 1,
      .dp_rounds_per_iteration = 8,
  };
}

std::vector<int> ParallelismPlanner::active_hosts() const {
  std::vector<int> out;
  for (const topo::Host& h : cluster_->hosts) {
    if (!h.backup) out.push_back(h.index);
  }
  return out;
}

PlacementPlan ParallelismPlanner::plan(int tp, int pp, int dp) const {
  return plan_on_hosts(tp, pp, dp, active_hosts());
}

PlacementPlan ParallelismPlanner::plan_on_hosts(int tp, int pp, int dp,
                                                const std::vector<int>& hosts) const {
  HPN_CHECK_MSG(tp == cluster_->gpus_per_host,
                "TP must fit the NVLink domain (tp == gpus_per_host)");
  HPN_CHECK(pp >= 1 && dp >= 1);
  const int hosts_needed = pp * dp;
  HPN_CHECK_MSG(static_cast<int>(hosts.size()) >= hosts_needed,
                "job needs " << hosts_needed << " hosts, cluster offers " << hosts.size());

  PlacementPlan plan;
  plan.tp = tp;
  plan.pp = pp;
  plan.dp = dp;
  plan.hosts.assign(hosts.begin(), hosts.begin() + hosts_needed);

  const int rails = tp;
  auto host_of = [&](int stage, int replica) {
    return plan.hosts[static_cast<std::size_t>(stage * dp + replica)];
  };

  // TP groups: one per host.
  for (const int h : plan.hosts) {
    std::vector<int> group;
    for (int r = 0; r < rails; ++r) group.push_back(h * rails + r);
    plan.tp_groups.push_back(std::move(group));
  }

  // DP groups: per stage, all replicas' hosts (whole hosts; Multi-AllReduce
  // runs per rail inside the communicator).
  for (int s = 0; s < pp; ++s) {
    std::vector<int> group;
    for (int r = 0; r < dp; ++r) {
      const int h = host_of(s, r);
      for (int rail = 0; rail < rails; ++rail) group.push_back(h * rails + rail);
    }
    plan.dp_groups.push_back(std::move(group));
  }

  // PP boundaries: per replica, consecutive stages, carried on rail 0.
  for (int r = 0; r < dp; ++r) {
    for (int s = 0; s + 1 < pp; ++s) {
      plan.pp_pairs.emplace_back(host_of(s, r) * rails, host_of(s + 1, r) * rails);
    }
  }
  return plan;
}

}  // namespace hpn::workload
