#include "workload/scheduler.h"

#include <algorithm>

namespace hpn::workload {

ClusterScheduler::ClusterScheduler(const topo::Cluster& cluster) : cluster_{&cluster} {
  std::map<std::pair<int, int>, Segment> by_key;
  for (const topo::Host& h : cluster.hosts) {
    if (h.backup) continue;  // backups are hot spares, not schedulable (§5.1)
    Segment& s = by_key[{h.pod, h.segment}];
    s.pod = h.pod;
    s.segment = h.segment;
    s.free.push_back(h.index);
  }
  for (auto& [key, seg] : by_key) segments_.push_back(std::move(seg));
}

std::optional<JobPlacement> ClusterScheduler::allocate(int gpus) {
  HPN_CHECK(gpus > 0);
  const int per_host = cluster_->gpus_per_host;
  const int hosts_needed = (gpus + per_host - 1) / per_host;

  JobPlacement placement;
  placement.id = JobId{next_id_++};

  // Pass 1: the emptiest single segment that still fits the whole job —
  // best-fit keeps large contiguous holes for future big jobs.
  Segment* best = nullptr;
  for (Segment& s : segments_) {
    if (static_cast<int>(s.free.size()) < hosts_needed) continue;
    if (best == nullptr || s.free.size() < best->free.size()) best = &s;
  }
  if (best != nullptr) {
    placement.hosts.assign(best->free.begin(), best->free.begin() + hosts_needed);
    best->free.erase(best->free.begin(), best->free.begin() + hosts_needed);
    placement.segments_spanned = 1;
    placements_[placement.id] = placement;
    return placement;
  }

  // Pass 2: spill across segments, fullest-first to minimize the span.
  std::vector<Segment*> order;
  for (Segment& s : segments_) {
    if (!s.free.empty()) order.push_back(&s);
  }
  std::sort(order.begin(), order.end(),
            [](const Segment* a, const Segment* b) { return a->free.size() > b->free.size(); });
  int remaining = hosts_needed;
  std::vector<std::pair<Segment*, int>> takes;
  for (Segment* s : order) {
    if (remaining == 0) break;
    const int take = std::min<int>(remaining, static_cast<int>(s->free.size()));
    takes.emplace_back(s, take);
    remaining -= take;
  }
  if (remaining > 0) return std::nullopt;  // cluster full

  for (auto& [s, take] : takes) {
    placement.hosts.insert(placement.hosts.end(), s->free.begin(), s->free.begin() + take);
    s->free.erase(s->free.begin(), s->free.begin() + take);
  }
  std::sort(placement.hosts.begin(), placement.hosts.end());
  placement.segments_spanned = static_cast<int>(takes.size());
  placements_[placement.id] = placement;
  return placement;
}

void ClusterScheduler::release(JobId id) {
  const auto it = placements_.find(id);
  HPN_CHECK_MSG(it != placements_.end(), "unknown job");
  for (const int h : it->second.hosts) {
    const topo::Host& host = cluster_->hosts.at(static_cast<std::size_t>(h));
    for (Segment& s : segments_) {
      if (s.pod == host.pod && s.segment == host.segment) {
        s.free.insert(std::lower_bound(s.free.begin(), s.free.end(), h), h);
        break;
      }
    }
  }
  placements_.erase(it);
}

int ClusterScheduler::free_hosts() const {
  int total = 0;
  for (const Segment& s : segments_) total += static_cast<int>(s.free.size());
  return total;
}

int ClusterScheduler::free_hosts_in_segment(int pod, int segment) const {
  for (const Segment& s : segments_) {
    if (s.pod == pod && s.segment == segment) return static_cast<int>(s.free.size());
  }
  return 0;
}

}  // namespace hpn::workload
