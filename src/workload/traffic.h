// Workload characterization models behind §2's motivation figures.
//
// Each model regenerates one of the paper's measured distributions from its
// quoted parameters, and doubles as an input generator for the simulators:
// Fig 1 (cloud traffic), Fig 2 (NIC bursts during training), Fig 3
// (connections per host), Fig 4 (checkpoint intervals), Fig 5 (link failure
// ratios), Fig 6 (job sizes).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "metrics/timeseries.h"

namespace hpn::workload {

// ---- Fig 1: general cloud computing traffic --------------------------------
struct CloudTrafficSample {
  double in_gbps = 0.0;
  double out_gbps = 0.0;
  int connections = 0;
};

/// Diurnal, low-utilization, high-connection-count traffic: ~1-2 Gbps on a
/// 400G-capable host (<20% NIC utilization even at peak aggregate),
/// 100K-200K concurrent connections, changing on the hourly scale.
class CloudTrafficModel {
 public:
  explicit CloudTrafficModel(std::uint64_t seed) : rng_{seed} {}
  CloudTrafficSample at_hour(double hour);

 private:
  Rng rng_;
};

// ---- Fig 2: NIC egress bursts during LLM training ---------------------------
struct NicBurstConfig {
  Duration iteration = Duration::seconds(20.0);
  Duration burst = Duration::seconds(6.0);  ///< Gradient-sync window.
  Bandwidth line_rate = Bandwidth::gbps(400);
  Duration sample_every = Duration::millis(500);
  int nics = 8;
};

/// Per-NIC egress throughput: near-zero during compute, slamming to the
/// full 400G line rate during the backward-phase AllReduce of every
/// iteration, on all 8 NICs simultaneously.
std::vector<metrics::TimeSeries> generate_nic_bursts(const NicBurstConfig& config,
                                                     Duration total, std::uint64_t seed);

// ---- Fig 3: connections per host --------------------------------------------
/// LLM hosts hold a few dozen to a few hundred connections; cloud hosts
/// hold ~1e5. Samples are per-host connection counts.
class ConnectionCountModel {
 public:
  explicit ConnectionCountModel(std::uint64_t seed) : rng_{seed} {}
  int sample_llm_host();
  int sample_cloud_host();

 private:
  Rng rng_;
};

// ---- Fig 4: checkpoint intervals ---------------------------------------------
struct CheckpointProfile {
  const char* job;
  double interval_hours;      ///< 2-4h in production (Fig 4).
  Duration write_time;        ///< ~100s (§2.3).
  DataSize per_gpu;           ///< ~30GB per GPU (§2.3).
};

/// The four representative production LLM jobs of Fig 4.
std::vector<CheckpointProfile> representative_checkpoint_profiles();

// ---- Fig 5: link failure statistics --------------------------------------------
struct FailureRates {
  double nic_tor_link_monthly = 0.00057;  ///< 0.057% of links fail per month.
  double tor_critical_monthly = 0.00051;  ///< 0.051% of ToRs crash per month.
  double daily_flaps_min = 5'000;         ///< Fleet-wide link flapping per day.
  double daily_flaps_max = 60'000;
};

class FailureStatsModel {
 public:
  explicit FailureStatsModel(std::uint64_t seed, FailureRates rates = {})
      : rng_{seed}, rates_{rates} {}

  /// Fraction of `links` failing in one simulated month (binomial draw).
  double sample_monthly_link_failure_ratio(int links);
  /// Expected crashes per month for a job occupying `links` access links
  /// and `tors` ToR switches — the "1-2 crashes per month" arithmetic of
  /// §2.3.
  [[nodiscard]] double expected_monthly_crashes(int links, int tors) const;

  [[nodiscard]] const FailureRates& rates() const { return rates_; }

 private:
  Rng rng_;
  FailureRates rates_;
};

// ---- Fig 6: GPUs per training job ------------------------------------------------
/// 96.3% of production jobs use < 1K GPUs; none exceed ~3K (Fig 6, §2.4).
class JobSizeModel {
 public:
  explicit JobSizeModel(std::uint64_t seed) : rng_{seed} {}
  int sample_gpus();

 private:
  Rng rng_;
};

}  // namespace hpn::workload
