// Storage traffic over the simulated fabric (§8, §10).
//
// Checkpoint saves are the bandwidth-heavy storage operation: every compute
// host flushes ~30GB x 8 GPUs to the CPFS/OSS cluster. Dataset/image loads
// are reads in the opposite direction. Traffic can ride the frontend
// network (the deployed design) or the backend (the §10-rejected
// alternative), which is exactly what the storage-placement ablation
// compares.
#pragma once

#include <functional>
#include <vector>

#include "flowsim/session.h"
#include "routing/router.h"
#include "topo/frontend.h"

namespace hpn::workload {

class StorageTraffic {
 public:
  using DoneFn = std::function<void()>;

  StorageTraffic(const topo::Cluster& cluster, sim::Simulator& simulator,
                 flowsim::FlowSession& session, routing::Router& router)
      : cluster_{&cluster}, sim_{&simulator}, session_{&session}, router_{&router} {}

  /// Write `per_host` of checkpoint data from each listed host to the
  /// storage cluster (striped across storage hosts). Frontend-attached
  /// storage is reached via the host's NIC0; backend-attached storage via
  /// the host's rail NICs (sharing the training fabric).
  void checkpoint_write(const std::vector<int>& hosts,
                        const std::vector<topo::StorageHost>& storage, DataSize per_host,
                        DoneFn done);

  /// Dataset/image load: storage -> hosts.
  void dataset_load(const std::vector<int>& hosts,
                    const std::vector<topo::StorageHost>& storage, DataSize per_host,
                    DoneFn done);

  /// Blocking helper; returns elapsed simulated time.
  Duration run_checkpoint_write(const std::vector<int>& hosts,
                                const std::vector<topo::StorageHost>& storage,
                                DataSize per_host);

  [[nodiscard]] int unroutable() const { return unroutable_; }

 private:
  void transfer(const std::vector<int>& hosts, const std::vector<topo::StorageHost>& storage,
                DataSize per_host, bool to_storage, DoneFn done);
  /// Endpoints a host uses toward storage living on `backend`.
  [[nodiscard]] std::vector<NodeId> host_endpoints(const topo::Host& host,
                                                   bool backend_storage) const;

  const topo::Cluster* cluster_;
  sim::Simulator* sim_;
  flowsim::FlowSession* session_;
  routing::Router* router_;
  int unroutable_ = 0;
};

}  // namespace hpn::workload
