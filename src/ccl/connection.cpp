#include "ccl/connection.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace hpn::ccl {
namespace {

std::uint64_t pair_key(int src, int dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

}  // namespace

ConnectionManager::ConnectionManager(const topo::Cluster& cluster, routing::Router& router,
                                     ConnectionConfig config)
    : cluster_{&cluster}, router_{&router}, config_{config} {
  HPN_CHECK(config_.conns_per_pair >= 1);
}

routing::FiveTuple ConnectionManager::tuple_for(int src_rank, int dst_rank,
                                                std::uint16_t sport) const {
  return routing::FiveTuple{.src_ip = cluster_->nic_of(src_rank).nic.value(),
                            .dst_ip = cluster_->nic_of(dst_rank).nic.value(),
                            .src_port = sport};
}

std::vector<LinkId> ConnectionManager::fabric_links(const routing::Path& path) const {
  std::vector<LinkId> out;
  for (const LinkId l : path.links) {
    if (cluster_->topo.link(l).kind == topo::LinkKind::kFabric) out.push_back(l);
  }
  return out;
}

routing::Path ConnectionManager::trace_conn(const Connection& conn) const {
  const auto& att = cluster_->nic_of(conn.src_rank);
  const NodeId dst_nic = cluster_->nic_of(conn.dst_rank).nic;
  return router_->trace_via(att.access.at(static_cast<std::size_t>(conn.src_port_index)),
                            dst_nic, conn.tuple);
}

bool ConnectionManager::routable(int src_rank, int dst_rank) const {
  const auto& att = cluster_->nic_of(src_rank);
  const NodeId dst_nic = cluster_->nic_of(dst_rank).nic;
  const routing::FiveTuple probe = tuple_for(src_rank, dst_rank, config_.sport_base);
  for (int p = 0; p < att.ports; ++p) {
    if (router_->trace_via(att.access.at(static_cast<std::size_t>(p)), dst_nic, probe)
            .valid()) {
      return true;
    }
  }
  return false;
}

const std::vector<ConnId>& ConnectionManager::establish(int src_rank, int dst_rank) {
  HPN_CHECK_MSG(src_rank != dst_rank, "self-connection requested");
  const std::uint64_t key = pair_key(src_rank, dst_rank);
  auto it = by_pair_.find(key);
  if (it != by_pair_.end()) return it->second;

  const auto& att = cluster_->nic_of(src_rank);
  const NodeId dst_nic = cluster_->nic_of(dst_rank).nic;
  std::vector<ConnId> ids;
  std::set<LinkId> pair_fabric;  // links already used by this pair's conns

  // Spread connections across the NIC's ports (planes) first, then across
  // disjoint fabric paths within each plane. Disjoint mode scores each
  // candidate by fabric-link occupancy — both this pair's own links and the
  // cluster-wide usage counters (the host-switch collaborating system of
  // §6.1 keeps all hosts' planners coordinated) — and takes the emptiest.
  const int per_slot_budget =
      std::max(1, config_.sport_search_budget / std::max(1, config_.conns_per_pair));
  std::uint16_t sport = config_.sport_base;
  for (int slot = 0; slot < config_.conns_per_pair; ++slot) {
    const int port = slot % att.ports;

    Connection best;
    best.src_rank = src_rank;
    best.dst_rank = dst_rank;
    best.planned_port = port;
    best.src_port_index = port;
    long best_score = -1;

    for (int tries = 0; tries < per_slot_budget; ++tries) {
      const routing::FiveTuple tuple = tuple_for(src_rank, dst_rank, sport++);
      const routing::Path p = router_->trace_via(
          att.access.at(static_cast<std::size_t>(port)), dst_nic, tuple);
      if (!p.valid()) break;  // port/plane unreachable, try next slot
      long score = 0;
      if (config_.disjoint_paths) {
        for (const LinkId l : fabric_links(p)) {
          long use = pair_fabric.count(l) ? 1'000 : 0;  // within-pair overlap is worst
          const auto uit = fabric_usage_.find(l);
          if (uit != fabric_usage_.end()) use += uit->second;
          score = std::max(score, use);
        }
      }
      if (best_score < 0 || score < best_score) {
        best_score = score;
        best.tuple = tuple;
        best.path = p;
        best.path_epoch = router_->epoch();
      }
      if (!config_.disjoint_paths || best_score == 0) break;  // good enough
    }
    if (best_score < 0) continue;  // nothing routable on this port

    for (const LinkId l : fabric_links(best.path)) {
      pair_fabric.insert(l);
      fabric_usage_[l] += 1;
    }
    best.id = ConnId{static_cast<ConnId::underlying>(conns_.size())};
    ids.push_back(best.id);
    conns_.push_back(std::move(best));
  }
  if (ids.empty() && config_.allow_unreachable_establish) {
    // Destination fully isolated right now (e.g. a fault took both ports of
    // the rail NIC). Park one dark connection: its path is invalid and its
    // epoch is current, so senders spin on their unreachable-retry loop and
    // the first epoch bump after repair makes path_of() re-trace it live.
    Connection dark;
    dark.src_rank = src_rank;
    dark.dst_rank = dst_rank;
    dark.tuple = tuple_for(src_rank, dst_rank, config_.sport_base);
    dark.path_epoch = router_->epoch();
    dark.id = ConnId{static_cast<ConnId::underlying>(conns_.size())};
    ids.push_back(dark.id);
    conns_.push_back(std::move(dark));
  }
  HPN_CHECK_MSG(!ids.empty(), "no path between rank " << src_rank << " and " << dst_rank);
  return by_pair_.emplace(key, std::move(ids)).first->second;
}

ConnId ConnectionManager::pick(const std::vector<ConnId>& conns) {
  HPN_CHECK(!conns.empty());
  if (!config_.wqe_load_balance) {
    return conns[rr_counter_++ % conns.size()];
  }
  // Algorithm 2: least outstanding WQE bytes.
  ConnId best = conns.front();
  std::int64_t best_load = conns_.at(best.index()).outstanding_wqe_bits;
  for (std::size_t i = 1; i < conns.size(); ++i) {
    const std::int64_t load = conns_.at(conns[i].index()).outstanding_wqe_bits;
    if (load < best_load) {
      best = conns[i];
      best_load = load;
    }
  }
  return best;
}

void ConnectionManager::post_wqe(ConnId conn, DataSize bytes) {
  conns_.at(conn.index()).outstanding_wqe_bits += bytes.as_bits();
}

void ConnectionManager::complete_wqe(ConnId conn, DataSize bytes) {
  std::int64_t& counter = conns_.at(conn.index()).outstanding_wqe_bits;
  counter -= bytes.as_bits();
  HPN_CHECK_MSG(counter >= 0, "WQE counter went negative");
}

const Connection& ConnectionManager::connection(ConnId id) const {
  return conns_.at(id.index());
}

const routing::Path& ConnectionManager::path_of(ConnId id) {
  Connection& c = conns_.at(id.index());
  if (c.path_epoch != router_->epoch()) {
    // Fabric changed (failure/repair): the host recalculates disjoint paths
    // from the ToR's new ECMP group (§6.1). Prefer the planner's port (so
    // repaired links get their traffic back); if it is dead, fail over to
    // any live port — QP contexts are shared across ports (§4), so the
    // flow moves without re-establishing.
    c.src_port_index = c.planned_port;
    routing::Path p = trace_conn(c);
    if (!p.valid()) {
      const auto& att = cluster_->nic_of(c.src_rank);
      for (int port = 0; port < att.ports && !p.valid(); ++port) {
        if (port == c.planned_port) continue;
        Connection alt = c;
        alt.src_port_index = port;
        p = trace_conn(alt);
        if (p.valid()) c.src_port_index = port;
      }
    }
    c.path = std::move(p);
    c.path_epoch = router_->epoch();
  }
  return c.path;
}

std::size_t ConnectionManager::distinct_fabric_links(const std::vector<ConnId>& conns) const {
  std::set<LinkId> links;
  for (const ConnId id : conns) {
    for (const LinkId l : conns_.at(id.index()).path.links) {
      if (cluster_->topo.link(l).kind == topo::LinkKind::kFabric) links.insert(l);
    }
  }
  return links.size();
}

}  // namespace hpn::ccl
