// Chunked stage pipeline: runs C chunks through S stages with per-stage
// FIFO serialization (stage s processes one chunk at a time, chunks in
// order). This is how collectives overlap their intra-host and inter-host
// phases: total time ~ fill + max-stage x chunks, instead of the sum of all
// phases.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"

namespace hpn::ccl {

class StagePipeline : public std::enable_shared_from_this<StagePipeline> {
 public:
  /// A stage processes `chunk` and must call `done` exactly once (possibly
  /// later, from a simulator event).
  using StageFn = std::function<void(int chunk, std::function<void()> done)>;

  static std::shared_ptr<StagePipeline> create(std::vector<StageFn> stages, int chunks,
                                               std::function<void()> all_done);

  void start();

 private:
  StagePipeline(std::vector<StageFn> stages, int chunks, std::function<void()> all_done);

  void try_advance();
  void stage_finished(int stage, int chunk);

  std::vector<StageFn> stages_;
  int chunks_;
  std::function<void()> all_done_;
  /// Next chunk each stage should run (chunks pass stages in order).
  std::vector<int> next_chunk_;
  /// Whether each stage is currently busy.
  std::vector<bool> busy_;
  /// Highest chunk that has completed each stage (-1 = none).
  std::vector<int> completed_;
  int finished_chunks_ = 0;
  bool started_ = false;
};

}  // namespace hpn::ccl
