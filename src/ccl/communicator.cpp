#include "ccl/communicator.h"

#include <algorithm>
#include <set>

#include "ccl/pipeline.h"
#include "common/check.h"

namespace hpn::ccl {

Communicator::Communicator(const topo::Cluster& cluster, sim::Simulator& simulator,
                           flowsim::FlowSession& session, ConnectionManager& connections,
                           std::vector<int> ranks, CclConfig config)
    : cluster_{&cluster},
      sim_{&simulator},
      session_{&session},
      conns_{&connections},
      config_{config},
      ranks_{std::move(ranks)},
      rails_{cluster.gpus_per_host} {
  HPN_CHECK_MSG(!ranks_.empty(), "empty communicator");
  // Group ranks by host and demand whole hosts, in first-seen order.
  std::set<int> seen;
  for (const int r : ranks_) {
    HPN_CHECK_MSG(r >= 0 && r < cluster.gpu_count(), "rank out of range: " << r);
    const int host = r / rails_;
    if (seen.insert(host).second) hosts_.push_back(host);
  }
  HPN_CHECK_MSG(ranks_.size() == hosts_.size() * static_cast<std::size_t>(rails_),
                "communicator must cover whole hosts (" << ranks_.size() << " ranks over "
                                                        << hosts_.size() << " hosts)");
  const auto& att = cluster.nic_of(ranks_.front());
  port_rate_ = cluster.topo.link(att.access[0]).capacity;
}

Communicator::~Communicator() { *alive_ = false; }

int Communicator::global_rank(int host_pos, int rail) const {
  return hosts_[static_cast<std::size_t>(host_pos)] * rails_ + rail;
}

int Communicator::chunks_for(DataSize total) const {
  const auto by_min = static_cast<int>(total.as_bits() / config_.min_chunk.as_bits());
  return std::clamp(by_min, 1, config_.pipeline_chunks);
}

Communicator::DoneFn Communicator::traced(const char* op, DataSize per_gpu, DoneFn done) {
  metrics::Tracer& tracer = sim_->tracer();
  if (!tracer.enabled()) return done;
  const std::uint32_t span = tracer.begin_span();
  sim_->trace(metrics::TraceEventKind::kCollectiveBegin, span,
              static_cast<std::uint32_t>(world_size()),
              static_cast<double>(per_gpu.as_bytes()), op);
  // The end record captures the Simulator (which outlives the Communicator)
  // rather than `this`, so a span can close after the communicator is gone.
  return [sim = sim_, span, op, done = std::move(done)] {
    sim->trace(metrics::TraceEventKind::kCollectiveEnd, span, metrics::kTraceNoId, 0.0, op);
    if (done) done();
  };
}

void Communicator::send_message(int src_rank, int dst_rank, DataSize size, DoneFn done) {
  const auto& conn_ids = conns_->establish(src_rank, dst_rank);
  const ConnId conn = conns_->pick(conn_ids);
  const routing::Path& path = conns_->path_of(conn);
  if (!path.valid()) {
    // Destination unreachable right now (e.g. both dst ports down). RDMA
    // keeps retrying; the message goes out once a path exists again.
    sim_->schedule_after(config_.unreachable_retry,
                         [this, alive = alive_, src_rank, dst_rank, size,
                          done = std::move(done)]() mutable {
                           if (!*alive) return;
                           send_message(src_rank, dst_rank, size, std::move(done));
                         });
    return;
  }
  conns_->post_wqe(conn, size);
  if (conn.index() >= conn_paths_.size()) conn_paths_.resize(conn.index() + 1);
  CachedPath& cached = conn_paths_[conn.index()];
  const std::uint64_t epoch = conns_->connection(conn).path_epoch;
  if (!cached.valid || cached.epoch != epoch) {
    cached.path = session_->paths().intern(path.links);
    cached.epoch = epoch;
    cached.valid = true;
  }
  const FlowId flow = session_->start_flow(
      cached.path, size, port_rate_,
      [this, alive = alive_, cm = conns_, conn, size, done = std::move(done)](FlowId id) {
        cm->complete_wqe(conn, size);  // the manager outlives communicators
        if (!*alive) return;
        inflight_.erase(id);
        if (done) done();
      });
  inflight_.emplace(flow, InFlight{conn, size});
}

void Communicator::on_fabric_change() {
  // Shared QP contexts let in-flight messages move ports (§4); re-trace
  // every active connection and hand the session the new path.
  for (const auto& [flow, info] : inflight_) {
    const routing::Path& path = conns_->path_of(info.conn);
    if (path.valid()) session_->reroute_flow(flow, path.links);
  }
  session_->refresh();
}

void Communicator::intra_host_flow(int rank, bool up, DataSize size, DoneFn done) {
  const topo::Host& h = cluster_->host_of(rank);
  const LinkId up_link = h.gpu_nvlink.at(static_cast<std::size_t>(cluster_->rail_of(rank)));
  const LinkId link = up ? up_link : cluster_->topo.link(up_link).reverse;
  const Bandwidth cap = cluster_->topo.link(link).capacity;
  // Intern the single-hop path directly — no per-flow vector materialized.
  session_->start_flow(session_->paths().intern(&link, 1), size, cap,
                       [done = std::move(done)](FlowId) {
                         if (done) done();
                       });
}

void Communicator::intra_phase(DataSize bytes, bool up, DoneFn done) {
  if (rails_ == 1 || bytes == DataSize::zero()) {
    // Single-GPU hosts (fat tree) have no intra-host exchange.
    sim_->schedule_now([done = std::move(done)] { done(); });
    return;
  }
  auto remaining = std::make_shared<int>(static_cast<int>(ranks_.size()));
  auto shared_done = std::make_shared<DoneFn>(std::move(done));
  for (const int rank : ranks_) {
    intra_host_flow(rank, up, bytes, [remaining, shared_done] {
      if (--*remaining == 0) (*shared_done)();
    });
  }
}

void Communicator::rail_rings(int steps, DataSize step_bytes, DoneFn done) {
  const int hosts = static_cast<int>(hosts_.size());
  if (hosts <= 1 || steps <= 0) {
    sim_->schedule_now([done = std::move(done)] { done(); });
    return;
  }
  auto rings_left = std::make_shared<int>(rails_);
  auto shared_done = std::make_shared<DoneFn>(std::move(done));

  if (config_.bulk_rings) {
    // One flow per ring edge carrying all steps' bytes; the ring completes
    // when its slowest edge drains, plus the per-step synchronization
    // overhead the barriers would have cost.
    const DataSize edge_bytes = step_bytes * static_cast<double>(steps);
    const Duration sync_cost = config_.step_overhead * static_cast<double>(steps);
    const int channels = std::max(1, config_.channels_per_edge);
    const DataSize channel_bytes = edge_bytes / static_cast<double>(channels);
    for (int rail = 0; rail < rails_; ++rail) {
      auto flows_left = std::make_shared<int>(hosts * channels);
      for (int i = 0; i < hosts; ++i) {
        const int src = global_rank(i, rail);
        const int dst = global_rank((i + 1) % hosts, rail);
        for (int ch = 0; ch < channels; ++ch) {
          send_message(src, dst, channel_bytes,
                       [this, alive = alive_, flows_left, sync_cost, rings_left,
                        shared_done] {
                         if (!*alive || --*flows_left > 0) return;
                         // `alive` rides along: shared_done may re-enter a
                         // pipeline whose next stage touches this object.
                         sim_->schedule_after(sync_cost, [alive, rings_left, shared_done] {
                           if (!*alive) return;
                           if (--*rings_left == 0) (*shared_done)();
                         });
                       });
        }
      }
    }
    return;
  }

  for (int rail = 0; rail < rails_; ++rail) {
    // One ring per rail over the member hosts; steps serialized, each step
    // is `hosts` concurrent neighbor transfers.
    struct RingState {
      int step = 0;
    };
    auto state = std::make_shared<RingState>();
    auto run_step = std::make_shared<std::function<void()>>();
    *run_step = [this, alive = alive_, rail, hosts, steps, step_bytes, state, run_step,
                 rings_left, shared_done] {
      if (!*alive) return;
      if (state->step++ >= steps) {
        if (--*rings_left == 0) (*shared_done)();
        return;
      }
      auto flows_left = std::make_shared<int>(hosts);
      for (int i = 0; i < hosts; ++i) {
        const int src = global_rank(i, rail);
        const int dst = global_rank((i + 1) % hosts, rail);
        send_message(src, dst, step_bytes, [this, alive = alive_, flows_left, run_step] {
          if (!*alive) return;
          if (--*flows_left == 0) {
            sim_->schedule_after(config_.step_overhead, [run_step] { (*run_step)(); });
          }
        });
      }
    };
    (*run_step)();
  }
}

int Communicator::tree_depth() const {
  int depth = 0;
  for (std::size_t span = 1; span < hosts_.size(); span *= 2) ++depth;
  return depth;
}

bool Communicator::use_tree(DataSize per_gpu) const {
  if (hosts_.size() <= 2) return false;
  switch (config_.algorithm) {
    case RingAlgorithm::kRing: return false;
    case RingAlgorithm::kTree: return true;
    case RingAlgorithm::kAuto: return per_gpu < config_.tree_threshold;
  }
  return false;
}

void Communicator::tree_wave_level(int level, bool up, DataSize bytes, DoneFn done) {
  // Binary tree over hosts_ positions: parent(i) = (i-1)/2. Level L holds
  // positions [2^L - 1, 2^(L+1) - 1); an upward wave moves level L+1 ->
  // level L, a downward wave the reverse.
  const int hosts = static_cast<int>(hosts_.size());
  const int child_lo = (1 << (level + 1)) - 1;
  const int child_hi = std::min(hosts, (1 << (level + 2)) - 1);
  if (child_lo >= hosts) {
    sim_->schedule_now([done = std::move(done)] { done(); });
    return;
  }
  auto remaining = std::make_shared<int>((child_hi - child_lo) * rails_);
  auto shared_done = std::make_shared<DoneFn>(std::move(done));
  // Each level is a synchronization point and pays the same fixed cost a
  // ring step does (propagation + kernel launch + doorbell).
  const auto arrive = [this, remaining, shared_done] {
    if (--*remaining == 0) {
      sim_->schedule_after(config_.step_overhead, [shared_done] { (*shared_done)(); });
    }
  };
  for (int child = child_lo; child < child_hi; ++child) {
    const int parent = (child - 1) / 2;
    for (int rail = 0; rail < rails_; ++rail) {
      const int a = global_rank(up ? child : parent, rail);
      const int b = global_rank(up ? parent : child, rail);
      send_message(a, b, bytes, arrive);
    }
  }
}

void Communicator::all_reduce_tree(DataSize per_gpu, DoneFn done) {
  // Tree allreduce: reduce wave to the root, broadcast wave back. Each
  // level is a pipeline stage, so large payloads stream at ~edge bandwidth
  // while small ones pay only 2 x depth x overhead — NCCL's reason for
  // switching algorithms by size.
  const int chunks = chunks_for(per_gpu);
  const DataSize chunk = per_gpu / static_cast<double>(chunks);
  const double gain = config_.nvls ? config_.nvls_gain : 1.0;
  const DataSize intra_bytes =
      chunk * (static_cast<double>(rails_ - 1) / rails_ / gain);
  const DataSize edge_bytes = chunk / static_cast<double>(rails_);
  const int depth = tree_depth();

  std::vector<StagePipeline::StageFn> stages;
  stages.push_back([this, alive = alive_, intra_bytes](int, std::function<void()> next) {
    if (!*alive) return;
    intra_phase(intra_bytes, /*up=*/true, std::move(next));
  });
  for (int level = depth - 1; level >= 0; --level) {  // reduce: deepest first
    stages.push_back([this, alive = alive_, level, edge_bytes](int, std::function<void()> next) {
      if (!*alive) return;
      tree_wave_level(level, /*up=*/true, edge_bytes, std::move(next));
    });
  }
  for (int level = 0; level < depth; ++level) {  // broadcast: root outward
    stages.push_back([this, alive = alive_, level, edge_bytes](int, std::function<void()> next) {
      if (!*alive) return;
      tree_wave_level(level, /*up=*/false, edge_bytes, std::move(next));
    });
  }
  stages.push_back([this, alive = alive_, intra_bytes](int, std::function<void()> next) {
    if (!*alive) return;
    intra_phase(intra_bytes, /*up=*/false, std::move(next));
  });
  StagePipeline::create(std::move(stages), chunks, std::move(done))->start();
}

void Communicator::broadcast(DataSize payload, DoneFn done) {
  done = traced("broadcast", payload, std::move(done));
  const int chunks = chunks_for(payload);
  const DataSize chunk = payload / static_cast<double>(chunks);
  const DataSize intra_bytes = chunk * (static_cast<double>(rails_ - 1) / rails_);
  const DataSize edge_bytes = chunk / static_cast<double>(rails_);
  const int depth = tree_depth();

  std::vector<StagePipeline::StageFn> stages;
  for (int level = 0; level < depth; ++level) {
    stages.push_back([this, alive = alive_, level, edge_bytes](int, std::function<void()> next) {
      if (!*alive) return;
      tree_wave_level(level, /*up=*/false, edge_bytes, std::move(next));
    });
  }
  // Rails each carried 1/8 of the payload; hosts re-assemble over NVLink.
  stages.push_back([this, alive = alive_, intra_bytes](int, std::function<void()> next) {
    if (!*alive) return;
    intra_phase(intra_bytes, /*up=*/false, std::move(next));
  });
  StagePipeline::create(std::move(stages), chunks, std::move(done))->start();
}

void Communicator::reduce(DataSize payload, DoneFn done) {
  done = traced("reduce", payload, std::move(done));
  const int chunks = chunks_for(payload);
  const DataSize chunk = payload / static_cast<double>(chunks);
  const double gain = config_.nvls ? config_.nvls_gain : 1.0;
  const DataSize intra_bytes =
      chunk * (static_cast<double>(rails_ - 1) / rails_ / gain);
  const DataSize edge_bytes = chunk / static_cast<double>(rails_);
  const int depth = tree_depth();

  std::vector<StagePipeline::StageFn> stages;
  stages.push_back([this, alive = alive_, intra_bytes](int, std::function<void()> next) {
    if (!*alive) return;
    intra_phase(intra_bytes, /*up=*/true, std::move(next));
  });
  for (int level = depth - 1; level >= 0; --level) {
    stages.push_back([this, alive = alive_, level, edge_bytes](int, std::function<void()> next) {
      if (!*alive) return;
      tree_wave_level(level, /*up=*/true, edge_bytes, std::move(next));
    });
  }
  StagePipeline::create(std::move(stages), chunks, std::move(done))->start();
}

void Communicator::barrier(DoneFn done) {
  // Minimal reduce + broadcast: one cache line's worth per edge.
  auto shared_done = std::make_shared<DoneFn>(std::move(done));
  reduce(DataSize::bytes(64), [this, alive = alive_, shared_done] {
    if (!*alive) return;
    broadcast(DataSize::bytes(64), [shared_done] { (*shared_done)(); });
  });
}

void Communicator::all_reduce(DataSize per_gpu, DoneFn done) {
  done = traced("all_reduce", per_gpu, std::move(done));
  if (use_tree(per_gpu)) {
    all_reduce_tree(per_gpu, std::move(done));
    return;
  }
  const int chunks = chunks_for(per_gpu);
  const DataSize chunk = per_gpu / static_cast<double>(chunks);
  const int hosts = static_cast<int>(hosts_.size());
  const double intra_fraction = static_cast<double>(rails_ - 1) / rails_;
  const double gain = config_.nvls ? config_.nvls_gain : 1.0;
  const DataSize intra_bytes = chunk * (intra_fraction / gain);
  const DataSize step_bytes = chunk / static_cast<double>(rails_ * hosts);

  auto pipeline = StagePipeline::create(
      {
          [this, alive = alive_, intra_bytes](int, std::function<void()> next) {
            if (!*alive) return;
            intra_phase(intra_bytes, /*up=*/true, std::move(next));
          },
          [this, alive = alive_, hosts, step_bytes](int, std::function<void()> next) {
            if (!*alive) return;
            rail_rings(2 * (hosts - 1), step_bytes, std::move(next));
          },
          [this, alive = alive_, intra_bytes](int, std::function<void()> next) {
            if (!*alive) return;
            intra_phase(intra_bytes, /*up=*/false, std::move(next));
          },
      },
      chunks, std::move(done));
  pipeline->start();
}

void Communicator::reduce_scatter(DataSize per_gpu, DoneFn done) {
  done = traced("reduce_scatter", per_gpu, std::move(done));
  const int chunks = chunks_for(per_gpu);
  const DataSize chunk = per_gpu / static_cast<double>(chunks);
  const int hosts = static_cast<int>(hosts_.size());
  const double intra_fraction = static_cast<double>(rails_ - 1) / rails_;
  const double gain = config_.nvls ? config_.nvls_gain : 1.0;
  const DataSize intra_bytes = chunk * (intra_fraction / gain);
  const DataSize step_bytes = chunk / static_cast<double>(rails_ * hosts);

  auto pipeline = StagePipeline::create(
      {
          [this, alive = alive_, intra_bytes](int, std::function<void()> next) {
            if (!*alive) return;
            intra_phase(intra_bytes, /*up=*/true, std::move(next));
          },
          [this, alive = alive_, hosts, step_bytes](int, std::function<void()> next) {
            if (!*alive) return;
            rail_rings(hosts - 1, step_bytes, std::move(next));
          },
      },
      chunks, std::move(done));
  pipeline->start();
}

void Communicator::all_gather(DataSize gathered, DoneFn done) {
  done = traced("all_gather", gathered, std::move(done));
  const int chunks = chunks_for(gathered);
  const DataSize chunk = gathered / static_cast<double>(chunks);
  const int hosts = static_cast<int>(hosts_.size());
  // NVLS cannot accelerate AllGather (§9.2): every GPU unicasts its column
  // to 7 peers *and* receives 7 columns through the NVSwitch — both
  // directions carry (rails-1)/rails of the chunk, which is what makes
  // AllGather NVSwitch-bound on either fabric.
  const DataSize intra_bytes = chunk * (static_cast<double>(rails_ - 1) / rails_);
  const DataSize step_bytes = chunk / static_cast<double>(rails_ * hosts);

  auto pipeline = StagePipeline::create(
      {
          [this, alive = alive_, hosts, step_bytes](int, std::function<void()> next) {
            if (!*alive) return;
            rail_rings(hosts - 1, step_bytes, std::move(next));
          },
          [this, alive = alive_, intra_bytes](int, std::function<void()> next) {
            if (!*alive) return;
            auto remaining = std::make_shared<int>(2);
            auto shared = std::make_shared<std::function<void()>>(std::move(next));
            const auto arrive = [remaining, shared] {
              if (--*remaining == 0) (*shared)();
            };
            // Send side: each GPU unicasts its column 7 ways (no multicast
            // without NVLS). Receive side additionally pays the switch's
            // store-and-forward of 7 serialized columns: 2x the bytes.
            intra_phase(intra_bytes, /*up=*/true, arrive);
            intra_phase(intra_bytes * 2.0, /*up=*/false, arrive);
          },
      },
      chunks, std::move(done));
  pipeline->start();
}

void Communicator::multi_all_reduce(DataSize per_gpu, DoneFn done) {
  // Fig 17c: every rail ring all-reduces the *full* per-GPU buffer; no
  // NVLink participation at all.
  done = traced("multi_all_reduce", per_gpu, std::move(done));
  const int chunks = chunks_for(per_gpu);
  const DataSize chunk = per_gpu / static_cast<double>(chunks);
  const int hosts = static_cast<int>(hosts_.size());
  const DataSize step_bytes = chunk / static_cast<double>(hosts);

  auto pipeline = StagePipeline::create(
      {
          [this, alive = alive_, hosts, step_bytes](int, std::function<void()> next) {
            if (!*alive) return;
            rail_rings(2 * (hosts - 1), step_bytes, std::move(next));
          },
      },
      chunks, std::move(done));
  pipeline->start();
}

int Communicator::all_to_all(DataSize per_gpu, bool allow_host_relay, DoneFn done) {
  done = traced("all_to_all", per_gpu, std::move(done));
  const int hosts = static_cast<int>(hosts_.size());
  const int world = world_size();
  if (world <= 1) {
    sim_->schedule_now([done = std::move(done)] { done(); });
    return 0;
  }
  const double per_peer = per_gpu.as_bytes() / (world - 1);
  auto remaining = std::make_shared<int>(0);
  auto shared_done = std::make_shared<DoneFn>(std::move(done));
  const auto arrive = [remaining, shared_done] {
    if (--*remaining == 0 && *shared_done) (*shared_done)();
  };
  int unroutable = 0;

  // Intra-host exchange (same-host peers) + relay staging share the
  // NVSwitch: each GPU moves bytes up, and receives bytes down. With PXN,
  // relay adds the cross-rail remote share in both directions.
  const double intra_share = per_peer * (rails_ - 1);
  const double cross_share = per_peer * static_cast<double>((hosts - 1) * (rails_ - 1));
  const double up_bytes = intra_share + (allow_host_relay ? cross_share : 0.0);
  if (rails_ > 1 && up_bytes > 0.0) {
    for (const int rank : ranks_) {
      ++*remaining;
      intra_host_flow(rank, /*up=*/true, DataSize::bytes(static_cast<std::int64_t>(up_bytes)),
                      arrive);
      ++*remaining;
      intra_host_flow(rank, /*up=*/false,
                      DataSize::bytes(static_cast<std::int64_t>(up_bytes)), arrive);
    }
  }

  if (allow_host_relay) {
    // PXN: the network only carries rail-aligned host-pair flows. Rail q of
    // host i aggregates all 8 local GPUs' bytes destined to (host j, rail q).
    const DataSize flow_bytes =
        DataSize::bytes(static_cast<std::int64_t>(per_peer * rails_));
    for (int i = 0; i < hosts; ++i) {
      for (int j = 0; j < hosts; ++j) {
        if (i == j) continue;
        for (int rail = 0; rail < rails_; ++rail) {
          ++*remaining;
          send_message(global_rank(i, rail), global_rank(j, rail), flow_bytes, arrive);
        }
      }
    }
  } else {
    // Serverless mode: every (src rail, dst rail) host pair is a direct
    // network message; cross-rail ones need a fabric route.
    const DataSize flow_bytes = DataSize::bytes(static_cast<std::int64_t>(per_peer));
    for (int i = 0; i < hosts; ++i) {
      for (int j = 0; j < hosts; ++j) {
        if (i == j) continue;
        for (int r = 0; r < rails_; ++r) {
          for (int q = 0; q < rails_; ++q) {
            const int src = global_rank(i, r);
            const int dst = global_rank(j, q);
            // Probe routability up front: a permanently-unroutable message
            // would retry forever and hang the collective.
            if (!conns_->routable(src, dst)) {
              ++unroutable;
              continue;
            }
            ++*remaining;
            send_message(src, dst, flow_bytes, arrive);
          }
        }
      }
    }
  }
  if (*remaining == 0) {
    sim_->schedule_now([shared_done] {
      if (*shared_done) (*shared_done)();
    });
  }
  return unroutable;
}

void Communicator::send_recv(int src_index, int dst_index, DataSize size, DoneFn done) {
  const int src = ranks_.at(static_cast<std::size_t>(src_index));
  const int dst = ranks_.at(static_cast<std::size_t>(dst_index));
  send_message(src, dst, size, std::move(done));
}

namespace {

Duration run_blocking(sim::Simulator& sim, const std::function<void(std::function<void()>)>& op) {
  const TimePoint start = sim.now();
  bool finished = false;
  op([&finished] { finished = true; });
  while (!finished && sim.step()) {
  }
  HPN_CHECK_MSG(finished, "collective did not complete (no more events)");
  return sim.now() - start;
}

}  // namespace

Duration Communicator::run_all_reduce(DataSize per_gpu) {
  return run_blocking(*sim_, [&](std::function<void()> done) {
    all_reduce(per_gpu, std::move(done));
  });
}

Duration Communicator::run_reduce_scatter(DataSize per_gpu) {
  return run_blocking(*sim_, [&](std::function<void()> done) {
    reduce_scatter(per_gpu, std::move(done));
  });
}

Duration Communicator::run_all_gather(DataSize gathered) {
  return run_blocking(*sim_, [&](std::function<void()> done) {
    all_gather(gathered, std::move(done));
  });
}

Duration Communicator::run_multi_all_reduce(DataSize per_gpu) {
  return run_blocking(*sim_, [&](std::function<void()> done) {
    multi_all_reduce(per_gpu, std::move(done));
  });
}

Duration Communicator::run_all_to_all(DataSize per_gpu, bool allow_host_relay) {
  return run_blocking(*sim_, [&](std::function<void()> done) {
    all_to_all(per_gpu, allow_host_relay, std::move(done));
  });
}

Duration Communicator::run_broadcast(DataSize payload) {
  return run_blocking(*sim_, [&](std::function<void()> done) {
    broadcast(payload, std::move(done));
  });
}

Duration Communicator::run_barrier() {
  return run_blocking(*sim_, [&](std::function<void()> done) { barrier(std::move(done)); });
}

double Communicator::bus_bw_all_reduce(int n, DataSize per_gpu, Duration t) {
  return 2.0 * (n - 1) / n * per_gpu.as_bytes() / t.as_seconds();
}

double Communicator::bus_bw_all_gather(int n, DataSize gathered, Duration t) {
  return static_cast<double>(n - 1) / n * gathered.as_bytes() / t.as_seconds();
}

double Communicator::bus_bw_reduce_scatter(int n, DataSize per_gpu, Duration t) {
  return static_cast<double>(n - 1) / n * per_gpu.as_bytes() / t.as_seconds();
}

}  // namespace hpn::ccl
