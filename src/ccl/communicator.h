// Collective communication over the simulated fabric — the NCCL stand-in.
//
// Collectives are *schedules of flows*, not formulas: every inter-host
// message is routed through the ConnectionManager's planned paths and
// contends inside the FlowSession, so hash collisions, dual-plane pinning
// and failures shape the results instead of being assumed.
//
// Algorithm shapes (Megatron/NCCL-style on 8-GPU NVLink hosts):
//  * AllReduce      — hierarchical: intra-host reduce-scatter (NVLS-
//                     accelerated), 8 parallel rail rings across hosts
//                     (2(H-1) steps), intra-host all-gather; phases overlap
//                     through a chunked pipeline.
//  * ReduceScatter  — intra RS + rail rings with (H-1) steps.
//  * AllGather      — rail rings (H-1 steps) + intra all-gather; NVLS does
//                     not apply (§9.2), so it is NVSwitch-bound.
//  * Multi-AllReduce— Fig 17c: per-rail flat rings over the *full* per-GPU
//                     payload, all data inter-host, no NVLink phases.
//  * send/recv      — PP point-to-point.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ccl/connection.h"
#include "flowsim/session.h"
#include "sim/simulator.h"

namespace hpn::ccl {

enum class RingAlgorithm : std::uint8_t {
  kRing,  ///< Bandwidth-optimal: 2(H-1)/H x payload per edge.
  kTree,  ///< Latency-optimal: log2(H) rounds, 2x payload per edge.
  kAuto,  ///< Tree below tree_threshold, ring above.
};

struct CclConfig {
  /// NVLS in-switch reduction speeds intra-host AllReduce phases (§9.2).
  bool nvls = true;
  double nvls_gain = 1.5;
  /// Chunked pipelining across phases.
  int pipeline_chunks = 8;
  DataSize min_chunk = DataSize::megabytes(1);
  /// Fixed per-ring-step overhead (propagation + kernel launch + QP doorbell).
  Duration step_overhead = Duration::micros(20);
  /// Bulk rings: collapse a ring's steps into one steady-state flow per
  /// edge (size = steps x step_bytes) plus the accumulated step overhead.
  /// Exact for bandwidth-bound rings (all edges are concurrently active in
  /// steady state anyway) and orders of magnitude fewer simulator events;
  /// turn off to simulate every step barrier explicitly.
  bool bulk_rings = true;
  /// NCCL channels per ring edge (bulk mode): each edge splits into this
  /// many concurrent messages, which the connection picker spreads over the
  /// NIC's two ports/planes — engaging the full 2x200G of the rail.
  int channels_per_edge = 2;
  /// Retry interval when a message's destination is currently unreachable.
  Duration unreachable_retry = Duration::millis(10);
  /// Inter-host AllReduce algorithm; NCCL switches ring->tree by size.
  RingAlgorithm algorithm = RingAlgorithm::kRing;
  DataSize tree_threshold = DataSize::megabytes(8);
};

class Communicator {
 public:
  using DoneFn = std::function<void()>;

  /// `ranks` are global GPU ranks (cluster.gpu order); they must cover
  /// whole hosts (the paper's jobs always use all 8 GPUs of a host).
  Communicator(const topo::Cluster& cluster, sim::Simulator& simulator,
               flowsim::FlowSession& session, ConnectionManager& connections,
               std::vector<int> ranks, CclConfig config = {});
  /// Safe to destroy with collectives in flight: pending callbacks are
  /// disarmed (they check a shared liveness flag) and in-flight flows keep
  /// draining in the session without touching this object.
  ~Communicator();
  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;
  Communicator(Communicator&&) = default;

  [[nodiscard]] int world_size() const { return static_cast<int>(ranks_.size()); }
  [[nodiscard]] int host_count() const { return static_cast<int>(hosts_.size()); }
  [[nodiscard]] const CclConfig& config() const { return config_; }

  // ---- Asynchronous collectives -------------------------------------------
  /// `per_gpu` is the buffer size on every GPU.
  void all_reduce(DataSize per_gpu, DoneFn done);
  void reduce_scatter(DataSize per_gpu, DoneFn done);
  /// `gathered` is the output size (each GPU contributes gathered / N).
  void all_gather(DataSize gathered, DoneFn done);
  void multi_all_reduce(DataSize per_gpu, DoneFn done);

  /// MoE-style AllToAll (§10): every GPU scatters `per_gpu` evenly over all
  /// other ranks. With `allow_host_relay` (NCCL PXN), cross-rail traffic
  /// hops the NVSwitch to the destination rail first, so the network only
  /// ever carries rail-aligned flows — this is what makes AllToAll work at
  /// all on a rail-only tier2. Without relay (multi-tenant serverless,
  /// where a host's NICs belong to different tenants), cross-rail messages
  /// must route through the fabric; on a rail-only tier2 no such route
  /// exists. Returns the number of *unroutable* message groups (skipped);
  /// non-zero means the collective cannot actually complete on this fabric.
  int all_to_all(DataSize per_gpu, bool allow_host_relay, DoneFn done);

  /// Broadcast from member-host 0 along the binary tree (dataset/weights
  /// distribution); `payload` is what every GPU ends up holding.
  void broadcast(DataSize payload, DoneFn done);
  /// Reduce to member-host 0 along the binary tree.
  void reduce(DataSize payload, DoneFn done);
  /// Synchronization barrier: a minimal tree reduce + broadcast.
  void barrier(DoneFn done);

  /// Point-to-point between two member ranks (local indexes into `ranks`).
  void send_recv(int src_index, int dst_index, DataSize size, DoneFn done);

  /// Point-to-point between two *global* GPU ranks (need not be members) —
  /// PP stage boundaries use this directly.
  void point_to_point(int src_rank, int dst_rank, DataSize size, DoneFn done) {
    send_message(src_rank, dst_rank, size, std::move(done));
  }

  // ---- Blocking helpers (drive the simulator until the op completes) ------
  Duration run_all_reduce(DataSize per_gpu);
  Duration run_reduce_scatter(DataSize per_gpu);
  Duration run_all_gather(DataSize gathered);
  Duration run_multi_all_reduce(DataSize per_gpu);
  Duration run_all_to_all(DataSize per_gpu, bool allow_host_relay = true);
  Duration run_broadcast(DataSize payload);
  Duration run_barrier();

  /// Re-steer in-flight inter-host messages after a fabric change (port
  /// failover via shared QP contexts, §4).
  void on_fabric_change();

  // ---- NCCL-convention bus bandwidth (bytes/sec) ---------------------------
  static double bus_bw_all_reduce(int n, DataSize per_gpu, Duration t);
  static double bus_bw_all_gather(int n, DataSize gathered, Duration t);
  static double bus_bw_reduce_scatter(int n, DataSize per_gpu, Duration t);

 private:
  struct InFlight {
    ConnId conn;
    DataSize size;
  };

  /// ConnId -> interned path, keyed by the connection's path epoch.
  /// Collectives send many messages per connection (channels x pipeline
  /// chunks x ring steps), so after the first send a message reuses the
  /// PathId and skips the per-send path-vector hash entirely; a fabric
  /// change bumps the epoch and re-interns on the next send.
  struct CachedPath {
    std::uint64_t epoch = 0;
    PathId path;
    bool valid = false;
  };

  /// One message src -> dst (global ranks) over planned connections;
  /// retries while unreachable.
  void send_message(int src_rank, int dst_rank, DataSize size, DoneFn done);

  /// Intra-host transfer for `rank` (up: GPU->NVSwitch, down: reverse).
  void intra_host_flow(int rank, bool up, DataSize size, DoneFn done);

  /// Run an intra-host phase (one flow per member GPU); calls done when all
  /// flows finish. `bytes` is per-GPU.
  void intra_phase(DataSize bytes, bool up, DoneFn done);

  /// Run rail rings across hosts_: `steps` ring steps of `step_bytes` per
  /// host per rail. Calls done when every rail's ring finishes.
  void rail_rings(int steps, DataSize step_bytes, DoneFn done);

  /// One binary-tree wave per rail: level-by-level edge transfers of
  /// `bytes`, upward (children -> parents) or downward. Chunk-pipelined by
  /// the caller via StagePipeline stages (one per level).
  void tree_wave_level(int level, bool up, DataSize bytes, DoneFn done);
  [[nodiscard]] int tree_depth() const;
  /// Dispatch ring vs tree for this payload per config.algorithm.
  [[nodiscard]] bool use_tree(DataSize per_gpu) const;
  void all_reduce_tree(DataSize per_gpu, DoneFn done);

  [[nodiscard]] int chunks_for(DataSize total) const;
  [[nodiscard]] int global_rank(int host_pos, int rail) const;

  /// Opens a tracer collective span and returns `done` wrapped to close it.
  /// No-op passthrough while the tracer is disabled.
  DoneFn traced(const char* op, DataSize per_gpu, DoneFn done);

  const topo::Cluster* cluster_;
  sim::Simulator* sim_;
  flowsim::FlowSession* session_;
  ConnectionManager* conns_;
  CclConfig config_;
  std::vector<int> ranks_;
  std::vector<int> hosts_;  ///< Host indexes, ring order.
  int rails_ = 0;
  Bandwidth port_rate_;
  std::unordered_map<FlowId, InFlight> inflight_;
  std::vector<CachedPath> conn_paths_;  ///< ConnId-indexed.
  /// Cleared on destruction; every async continuation checks it first.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace hpn::ccl
