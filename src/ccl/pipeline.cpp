#include "ccl/pipeline.h"

namespace hpn::ccl {

std::shared_ptr<StagePipeline> StagePipeline::create(std::vector<StageFn> stages, int chunks,
                                                     std::function<void()> all_done) {
  HPN_CHECK(!stages.empty());
  HPN_CHECK(chunks >= 1);
  return std::shared_ptr<StagePipeline>{
      new StagePipeline{std::move(stages), chunks, std::move(all_done)}};
}

StagePipeline::StagePipeline(std::vector<StageFn> stages, int chunks,
                             std::function<void()> all_done)
    : stages_{std::move(stages)},
      chunks_{chunks},
      all_done_{std::move(all_done)},
      next_chunk_(stages_.size(), 0),
      busy_(stages_.size(), false),
      completed_(stages_.size(), -1) {}

void StagePipeline::start() {
  HPN_CHECK_MSG(!started_, "pipeline started twice");
  started_ = true;
  try_advance();
}

void StagePipeline::try_advance() {
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    if (busy_[s]) continue;
    const int chunk = next_chunk_[s];
    if (chunk >= chunks_) continue;
    // A chunk may enter stage s once it has completed stage s-1.
    if (s > 0 && completed_[s - 1] < chunk) continue;
    busy_[s] = true;
    next_chunk_[s] = chunk + 1;
    // Keep the pipeline alive while stages are in flight.
    auto self = shared_from_this();
    const auto stage_idx = static_cast<int>(s);
    stages_[s](chunk, [self, stage_idx, chunk] { self->stage_finished(stage_idx, chunk); });
  }
}

void StagePipeline::stage_finished(int stage, int chunk) {
  const auto s = static_cast<std::size_t>(stage);
  HPN_CHECK(busy_[s]);
  busy_[s] = false;
  HPN_CHECK_MSG(chunk == completed_[s] + 1, "stage completed chunks out of order");
  completed_[s] = chunk;
  if (s + 1 == stages_.size()) {
    if (++finished_chunks_ == chunks_) {
      if (all_done_) all_done_();
      return;
    }
  }
  try_advance();
}

}  // namespace hpn::ccl
