// RDMA connection management with exact path control (§6.1, Appendix B).
//
// Algorithm 1 (EstablishConns): for each peer pair, search UDP source ports
// whose hash-traced paths are pairwise link-disjoint and open one RDMA
// connection per disjoint path. The paper uses RePaC to "reprint the exact
// hash results in each switch"; we own the switch hash functions, so the
// planner predicts paths exactly the same way. Thanks to dual-plane, the
// search only enumerates the ToR's uplinks — O(60) (Table 1).
//
// Algorithm 2 (PathSelection): every connection carries a counter of bytes
// in its outstanding Work Queue Elements; each message goes to the
// least-loaded connection — a congested path drains its WQEs slower and
// naturally sheds load.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "routing/router.h"
#include "topo/cluster.h"

namespace hpn::ccl {

struct Connection {
  ConnId id = ConnId::invalid();
  int src_rank = -1;
  int dst_rank = -1;
  int planned_port = 0;    ///< The planner's port (plane) choice.
  int src_port_index = 0;  ///< Port currently carrying it (failover moves it).
  routing::FiveTuple tuple;
  routing::Path path;               ///< Cached; re-traced on router epoch change.
  std::uint64_t path_epoch = 0;
  std::int64_t outstanding_wqe_bits = 0;  ///< Algorithm 2's counter.
};

struct ConnectionConfig {
  /// Connections per (src, dst) pair. HPN default: one per plane.
  int conns_per_pair = 2;
  /// Require pairwise fabric-link-disjoint paths (Algorithm 1). When off,
  /// source ports are chosen blindly (the traditional-DCN baseline).
  bool disjoint_paths = true;
  /// Pick the least-loaded connection per message (Algorithm 2). When off,
  /// messages hash round-robin-blind onto connections.
  bool wqe_load_balance = true;
  /// Source-port search budget per pair.
  int sport_search_budget = 256;
  std::uint16_t sport_base = 49152;
  /// Tolerate establish() while the destination is fully isolated (every
  /// source port dark, e.g. both ports of a rail NIC failed): instead of
  /// failing loudly, park one invalid-path connection that path_of()'s
  /// epoch refresh revives once the fabric heals — senders ride their
  /// unreachable-retry loop meanwhile. Off by default so permanently
  /// unroutable pairs (rail-only cross-rail) still fail fast instead of
  /// retrying forever.
  bool allow_unreachable_establish = false;
};

class ConnectionManager {
 public:
  ConnectionManager(const topo::Cluster& cluster, routing::Router& router,
                    ConnectionConfig config = {});

  /// Algorithm 1. Establishes (or returns cached) connections src -> dst.
  /// Returns at least one connection as long as the pair is reachable.
  const std::vector<ConnId>& establish(int src_rank, int dst_rank);

  /// Does any network path currently exist between the pair's NICs (on any
  /// source port)? Cheap probe used before establish() for fabrics where a
  /// pair may be permanently unreachable (rail-only tier2, §10).
  [[nodiscard]] bool routable(int src_rank, int dst_rank) const;

  /// Algorithm 2. Chooses the connection for the next message.
  ConnId pick(const std::vector<ConnId>& conns);

  /// WQE accounting around each message.
  void post_wqe(ConnId conn, DataSize bytes);
  void complete_wqe(ConnId conn, DataSize bytes);

  [[nodiscard]] const Connection& connection(ConnId id) const;

  /// Current path of the connection, re-traced if the fabric changed.
  const routing::Path& path_of(ConnId id);

  /// Number of distinct fabric links across a pair's connections — the
  /// observable for disjointness tests.
  [[nodiscard]] std::size_t distinct_fabric_links(const std::vector<ConnId>& conns) const;

  [[nodiscard]] const ConnectionConfig& config() const { return config_; }

 private:
  routing::FiveTuple tuple_for(int src_rank, int dst_rank, std::uint16_t sport) const;
  routing::Path trace_conn(const Connection& conn) const;
  [[nodiscard]] std::vector<LinkId> fabric_links(const routing::Path& path) const;

  const topo::Cluster* cluster_;
  routing::Router* router_;
  ConnectionConfig config_;
  std::vector<Connection> conns_;
  std::unordered_map<std::uint64_t, std::vector<ConnId>> by_pair_;
  /// Cluster-wide fabric-link occupancy, shared by all planners using this
  /// manager (the §6.1 host-switch collaborating system's link state).
  std::unordered_map<LinkId, int> fabric_usage_;
  std::uint32_t rr_counter_ = 0;
};

}  // namespace hpn::ccl
