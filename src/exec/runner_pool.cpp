#include "exec/runner_pool.h"

#include <algorithm>
#include <limits>

namespace hpn::exec {

RunnerPool::RunnerPool(int jobs) : jobs_(std::max(1, jobs)) {
  queues_.reserve(static_cast<std::size_t>(jobs_));
  for (int w = 0; w < jobs_; ++w) queues_.push_back(std::make_unique<WorkQueue>());
  threads_.reserve(static_cast<std::size_t>(jobs_));
  for (int w = 0; w < jobs_; ++w) threads_.emplace_back(&RunnerPool::worker_loop, this, w);
}

RunnerPool::~RunnerPool() {
  {
    const std::lock_guard<std::mutex> lk(batch_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool RunnerPool::for_each(std::size_t count,
                          const std::function<void(std::size_t)>& fn) {
  const std::lock_guard<std::mutex> run_lock(run_mu_);
  if (count == 0) return true;

  {
    const std::lock_guard<std::mutex> lk(batch_mu_);
    first_error_index_ = std::numeric_limits<std::size_t>::max();
    first_error_ = nullptr;
    skipped_.store(0, std::memory_order_relaxed);
    cancel_.store(false, std::memory_order_relaxed);
    unfinished_.store(count, std::memory_order_relaxed);
    // Release-publish the callable before any task becomes acquirable.
    batch_fn_.store(&fn, std::memory_order_release);
    ++batch_gen_;
  }

  // Seed the queues round-robin *after* the batch state is live: a worker
  // tailing out of the previous batch may legitimately acquire and run
  // these tasks before the notify below.
  for (int w = 0; w < jobs_; ++w) {
    WorkQueue& q = *queues_[w];
    const std::lock_guard<std::mutex> lk(q.mu);
    for (std::size_t i = static_cast<std::size_t>(w); i < count;
         i += static_cast<std::size_t>(jobs_)) {
      q.tasks.push_back(i);
    }
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lk(batch_mu_);
    done_cv_.wait(lk, [&] { return unfinished_.load(std::memory_order_acquire) == 0; });
    batch_fn_.store(nullptr, std::memory_order_release);
  }

  if (first_error_) std::rethrow_exception(first_error_);
  return skipped_.load(std::memory_order_relaxed) == 0;
}

bool RunnerPool::acquire(int self, std::size_t& out) {
  {
    WorkQueue& own = *queues_[static_cast<std::size_t>(self)];
    const std::lock_guard<std::mutex> lk(own.mu);
    if (!own.tasks.empty()) {
      out = own.tasks.front();
      own.tasks.pop_front();
      return true;
    }
  }
  for (int k = 1; k < jobs_; ++k) {
    WorkQueue& victim = *queues_[static_cast<std::size_t>((self + k) % jobs_)];
    const std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.tasks.empty()) {
      out = victim.tasks.back();
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void RunnerPool::finish_one() {
  if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Take the lock so the notify cannot slip between the waiter's
    // predicate check and its wait.
    const std::lock_guard<std::mutex> lk(batch_mu_);
    done_cv_.notify_all();
  }
}

void RunnerPool::worker_loop(int self) {
  std::uint64_t seen_gen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(batch_mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || batch_gen_ != seen_gen; });
      if (shutdown_) return;
      seen_gen = batch_gen_;
    }
    std::size_t task = 0;
    while (acquire(self, task)) {
      // Load per task: a worker that drained into the *next* batch must use
      // that batch's callable, not a stale pointer.
      const auto* fn = batch_fn_.load(std::memory_order_acquire);
      if (fn == nullptr || cancel_.load(std::memory_order_relaxed)) {
        skipped_.fetch_add(1, std::memory_order_relaxed);
        finish_one();
        continue;
      }
      try {
        (*fn)(task);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lk(err_mu_);
          if (task < first_error_index_) {
            first_error_index_ = task;
            first_error_ = std::current_exception();
          }
        }
        cancel_.store(true, std::memory_order_relaxed);
      }
      finish_one();
    }
  }
}

}  // namespace hpn::exec
