// Parallel execution of independent simulation runs.
//
// The paper's evaluation aggregates hundreds of independent experiments —
// Fig 13-19 parameter sweeps, reliability soaks over months of simulated
// time, 500-run fuzz batches — and every one of them is a self-contained
// (topology, Simulator, workload) triple with no shared mutable state.
// RunnerPool exploits exactly that shape: a work-stealing thread pool that
// executes N indexed tasks ("run simulation i") across `jobs` workers and
// hands results back *by index*, so aggregation order — table rows, CSV
// bytes, failure reports — is a function of the task list alone, never of
// thread interleaving. `--jobs 8` must be byte-identical to `--jobs 1`.
//
// Scheduling: each worker owns a deque seeded round-robin at batch start;
// owners pop their lowest index from the front, idle workers steal from the
// back of a victim's deque. Tasks here are whole simulations (micro- to
// multi-second scale), so a mutex per deque costs nothing measurable and
// keeps the pool trivially ThreadSanitizer-clean.
//
// Error handling: a task that throws cancels the not-yet-started remainder
// of the batch, and for_each() rethrows the recorded exception with the
// LOWEST task index once the batch settles — again independent of which
// worker saw it first. cancel() skips un-started tasks cooperatively;
// running tasks always finish (a Simulator cannot be interrupted midway
// without losing determinism).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace hpn::exec {

class RunnerPool {
 public:
  /// Spawns `jobs` worker threads (clamped to >= 1). The pool is reusable:
  /// batches submitted through for_each()/map() run back to back.
  explicit RunnerPool(int jobs);
  ~RunnerPool();
  RunnerPool(const RunnerPool&) = delete;
  RunnerPool& operator=(const RunnerPool&) = delete;

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Run `fn(0) .. fn(count-1)`, blocking until every task has either run
  /// or been skipped by cancel(). Returns true when all `count` tasks ran.
  /// If any task threw, the exception from the lowest-indexed failing task
  /// is rethrown here after the batch settles. Concurrent calls serialize.
  bool for_each(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// for_each() collecting `fn(i)` into a vector ordered by task index —
  /// the deterministic-aggregation primitive sweeps are built on. Throws
  /// if the batch was cancelled before every slot was filled.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<std::optional<R>> slots(count);
    const bool complete =
        for_each(count, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    if (!complete) {
      throw std::runtime_error{"RunnerPool::map: batch cancelled before completion"};
    }
    std::vector<R> out;
    out.reserve(count);
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// Cooperatively skip tasks that have not started yet. In-flight tasks
  /// run to completion. Cleared at the start of the next batch.
  void cancel() { cancel_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

 private:
  /// One per worker. Owner pops front (ascending index); thieves pop back.
  struct WorkQueue {
    std::mutex mu;
    std::deque<std::size_t> tasks;
  };

  void worker_loop(int self);
  bool acquire(int self, std::size_t& out);
  void finish_one();

  const int jobs_;
  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex run_mu_;  ///< Serializes whole batches (for_each callers).

  std::mutex batch_mu_;
  std::condition_variable work_cv_;  ///< Workers wait here between batches.
  std::condition_variable done_cv_;  ///< for_each() waits here for settle.
  std::uint64_t batch_gen_ = 0;      ///< Bumped per batch (guarded by batch_mu_).
  bool shutdown_ = false;

  /// Published with release ordering before queues are seeded; workers load
  /// it per task, so a worker that tails into the next batch still calls
  /// the right function.
  std::atomic<const std::function<void(std::size_t)>*> batch_fn_{nullptr};
  std::atomic<std::size_t> unfinished_{0};
  std::atomic<std::size_t> skipped_{0};
  std::atomic<bool> cancel_{false};

  std::mutex err_mu_;
  std::size_t first_error_index_ = 0;
  std::exception_ptr first_error_;
};

/// One-shot convenience: pool, map, join. `jobs == 1` is the reference
/// serial order every other job count must reproduce.
template <typename Fn>
auto parallel_map(int jobs, std::size_t count, Fn&& fn) {
  RunnerPool pool{jobs};
  return pool.map(count, std::forward<Fn>(fn));
}

}  // namespace hpn::exec
