// Serializable fuzz scenarios: a topology recipe, a flow workload, and a
// fault-injector schedule, with a deterministic text round-trip so every
// fuzz failure is a self-contained `.scenario` repro file. The same format
// is the canonical query payload of the `hpnsim serve` daemon (src/serve),
// which is why it lives in src/ (tests/support/scenario.h forwards here).
//
// Scenario fields are *recipes*, not materialized ids: flow endpoints,
// fault cables, and ToR indices are mapped modulo the eligible set when
// the scenario is materialized. That closure property is what makes the
// greedy shrinker sound — dropping links, nodes, flows, or faults can
// never turn a valid scenario into an out-of-range one, so every shrink
// candidate parses and runs.
//
// The parser is strict about *content* and lenient about *formatting*:
// comments (`#` to end of line), CRLF line endings, blank lines, extra
// whitespace, and section interleaving are accepted (and erased by the
// canonical re-serialization `to_text()`); truncated files, duplicate
// scalar sections, trailing junk, overflowing numbers, and out-of-range
// values fail with a pinned, line-numbered error message instead of being
// silently clamped at materialization time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "topo/cluster.h"

namespace hpn::fuzz {

/// What to build. kTinyClos is the shrinker's terminal: a hand-built
/// dual-ToR Clos (hosts as bare NICs, 2 ToRs, 1-2 Aggs) that keeps BGP
/// origination and dual-ToR failover meaningful at 4-8 nodes.
enum class TopologyKind : std::uint8_t {
  kTinyClos,
  kHpnSegment,  ///< build_hpn: dual-ToR dual-plane segment with tier2.
  kDcnPlus,     ///< build_dcn_plus: previous-gen Clos.
  kFatTree,     ///< build_fat_tree: k-ary fat tree.
  kRailOnly,    ///< fabric "rail-only": per-rail ToRs, no Agg tier.
  kRailX,       ///< fabric "railx-lite": grouped rails + circuit ring.
  kUbMesh,      ///< fabric "ubmesh-lite": 2D full-mesh switch grid.
  kRandom,      ///< random_scenarios.h-style connected multigraph.
  /// build_hpn at honest scale: size = hosts per segment (1-128), wiring =
  /// segments per pod (1-16). The serve daemon and bench_serve use this for
  /// Pod-sized capacity-planning queries; random_scenario() never draws it,
  /// so fuzz sweeps and the committed corpus are unchanged.
  kHpnPod,
};

std::string_view to_string(TopologyKind kind);
std::optional<TopologyKind> topology_kind_from(std::string_view name);

struct ScenarioFlow {
  std::uint32_t src = 0;  ///< Endpoint index (mod eligible endpoint count).
  std::uint32_t dst = 0;
  std::int64_t size_bytes = 0;
  double cap_gbps = 0.0;

  bool operator==(const ScenarioFlow&) const = default;
};

struct ScenarioFault {
  enum class Kind : std::uint8_t { kLinkFail, kLinkFlap, kTorCrash };
  Kind kind = Kind::kLinkFail;
  std::int64_t at_ns = 0;
  /// Cable index (mod cable count) for link faults; ToR index (mod ToR
  /// count) for crashes.
  std::uint32_t target = 0;
  /// Repair delay; 0 = never repaired (kLinkFail only).
  std::int64_t down_for_ns = 0;

  bool operator==(const ScenarioFault&) const = default;
};

std::string_view to_string(ScenarioFault::Kind kind);

/// One training job for the cluster-scheduler (jobsmix) phase. Like flow
/// endpoints, `hosts` is a recipe: it is clamped to the schedulable pool
/// when the phase builds its cluster, so any value is valid — dropping or
/// shrinking jobs can never produce an out-of-range scenario.
struct ScenarioJob {
  std::int64_t arrival_ns = 0;
  std::uint32_t hosts = 1;
  std::uint32_t iters = 1;

  bool operator==(const ScenarioJob&) const = default;
};

struct Scenario {
  std::uint64_t seed = 0;  ///< Master seed (labels the repro; not re-drawn).
  TopologyKind topology = TopologyKind::kTinyClos;
  /// Scale knob: node count (kRandom), hosts (kTinyClos / per-segment for
  /// kHpnSegment & kDcnPlus & kHpnPod / total for kRailOnly), grid columns
  /// (kUbMesh), hosts per group (kRailX), or ignored (kFatTree, fixed k=4).
  std::uint32_t size_knob = 2;
  /// Wiring knob: extra duplex links (kRandom), Agg count (kTinyClos),
  /// group count (kRailX), or segments per pod (kHpnPod).
  std::uint32_t wiring = 1;
  std::vector<ScenarioFlow> flows;
  std::vector<ScenarioFault> faults;
  /// Non-empty arms the jobsmix phase: the jobs replay through the
  /// multi-tenant cluster scheduler under every placement policy.
  std::vector<ScenarioJob> jobs;

  bool operator==(const Scenario&) const = default;

  /// Deterministic text form (same scenario -> byte-identical text). This
  /// is the *canonical* serialization: from_text(to_text(s)) == s, and
  /// to_text(parse(variant)) erases every formatting difference, so two
  /// textual variants of one scenario share canonical bytes (the property
  /// the serve cache keys on).
  [[nodiscard]] std::string to_text() const;
  /// Strict parse; nullopt on any malformed input.
  static std::optional<Scenario> from_text(std::string_view text);
  /// Same, reporting *why* it failed: `*error` gets a pinned, line-numbered
  /// message ("line 4: duplicate 'seed'", "truncated scenario: missing
  /// 'end'", ...) that tools surface verbatim (tests pin the exact text).
  static std::optional<Scenario> from_text(std::string_view text, std::string* error);
};

/// FNV-1a 64-bit over arbitrary bytes. Applied to canonical `to_text()`
/// output it is the content hash the serve result cache keys on.
std::uint64_t fnv1a64(std::string_view bytes);

/// Draw a random scenario from a seed (topology kind, workload, faults).
Scenario random_scenario(std::uint64_t seed);

/// Deterministically add a job mix drawn from `scenario.seed` (no-op when
/// jobs are already present). `hpnsim_fuzz --jobsmix` applies this to every
/// drawn scenario so the whole sweep exercises the cluster scheduler.
void ensure_jobs(Scenario& scenario);

/// A scenario bound to a concrete cluster: resolved paths, cables, faults.
struct Materialized {
  topo::Cluster cluster;
  /// Eligible flow endpoints (NIC nodes; every node for kRandom).
  std::vector<NodeId> endpoints;
  /// Forward direction of every access/fabric cable, in link-id order.
  std::vector<LinkId> cables;

  struct Flow {
    NodeId src = NodeId::invalid();
    NodeId dst = NodeId::invalid();
    std::vector<LinkId> path;  ///< BFS shortest path at build time (all-up).
    DataSize size = DataSize::zero();
    Bandwidth cap = Bandwidth::zero();
  };
  std::vector<Flow> flows;  ///< Flows with no path are dropped here.

  struct Fault {
    ScenarioFault::Kind kind = ScenarioFault::Kind::kLinkFail;
    TimePoint at;
    LinkId cable = LinkId::invalid();  ///< Forward direction (link faults).
    NodeId tor = NodeId::invalid();    ///< Crash target (kTorCrash).
    Duration down_for = Duration::zero();
  };
  std::vector<Fault> faults;

  /// Clos-shaped topologies route up-down, so PFC lossless mode cannot
  /// form a cyclic buffer dependency; random multigraphs can (a *real*
  /// deadlock, not a bug), so the harness runs them lossy.
  bool lossless_safe = false;
};

/// Build the scenario's cluster and resolve flows/faults against it.
/// Deterministic: same scenario -> identical cluster and resolutions.
Materialized materialize(const Scenario& scenario);

/// The path policy materialize() resolves flows with: BFS shortest path
/// over *up* access/fabric links, switch-transit only, deterministic
/// (adjacency in link-id order). Exposed so the serve daemon routes
/// add-job probe flows exactly like base flows.
std::vector<LinkId> shortest_path(const topo::Topology& topo, NodeId src, NodeId dst);

/// Greedy shrink candidates, most aggressive first: drop flow/fault
/// subsets, halve sizes, shrink the topology, and cross-kind simplification
/// toward kTinyClos. Every candidate is strictly "smaller" than the input,
/// so repeated shrinking terminates.
std::vector<Scenario> shrink_candidates(const Scenario& scenario);

/// Total ordering used by the shrinker to define "smaller".
std::uint64_t scenario_weight(const Scenario& scenario);

}  // namespace hpn::fuzz
