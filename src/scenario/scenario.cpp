#include "scenario/scenario.h"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "fabric/fabric.h"
#include "topo/builders.h"

namespace hpn::fuzz {

namespace {

constexpr std::string_view kHeader = "hpnsim-scenario v1";

bool is_switch(topo::NodeKind kind) {
  return kind == topo::NodeKind::kTor || kind == topo::NodeKind::kAgg ||
         kind == topo::NodeKind::kCore;
}

/// Shortest path src -> dst over up access/fabric links, traversing only
/// switch nodes in between (a path through another NIC is physically
/// meaningless and, under PFC, can manufacture buffer cycles). BFS visits
/// adjacency in link-id order, so the result is deterministic.
std::vector<LinkId> bfs_path(const topo::Topology& t, NodeId src, NodeId dst) {
  if (src == dst) return {};
  std::vector<LinkId> via(t.node_count(), LinkId::invalid());
  std::vector<char> seen(t.node_count(), 0);
  std::vector<NodeId> queue{src};
  seen[src.index()] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId at = queue[head];
    for (const LinkId lid : t.out_links(at)) {
      const topo::Link& l = t.link(lid);
      if (!l.up || !t.is_up(l.reverse)) continue;
      if (l.kind != topo::LinkKind::kAccess && l.kind != topo::LinkKind::kFabric) {
        continue;
      }
      if (seen[l.dst.index()] != 0) continue;
      if (l.dst != dst && !is_switch(t.node(l.dst).kind)) continue;
      seen[l.dst.index()] = 1;
      via[l.dst.index()] = lid;
      if (l.dst == dst) {
        std::vector<LinkId> path;
        for (NodeId n = dst; n != src;) {
          const LinkId step = via[n.index()];
          path.push_back(step);
          n = t.link(step).src;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(l.dst);
    }
  }
  return {};
}

/// The shrinker's terminal topology: hosts as bare NICs, two ToRs, one or
/// two Aggs. Keeps dual-ToR origination and tier2 transit meaningful at
/// 4-8 nodes (1 host + 2 ToRs + 1 Agg = 4).
topo::Cluster build_tiny_clos(std::uint32_t hosts_knob, std::uint32_t aggs_knob) {
  const int hosts = static_cast<int>(std::clamp<std::uint32_t>(hosts_knob, 1, 4));
  const int aggs = static_cast<int>(std::clamp<std::uint32_t>(aggs_knob, 1, 2));
  topo::Cluster c;
  c.arch = topo::Arch::kHpn;
  c.gpus_per_host = 0;  // NIC-only hosts; nothing here navigates GPUs.
  c.pods = 1;
  c.segments_per_pod = 1;

  topo::Location sloc;
  sloc.pod = 0;
  sloc.segment = 0;
  const NodeId tor0 = c.topo.add_node(topo::NodeKind::kTor, "tor0", sloc);
  const NodeId tor1 = c.topo.add_node(topo::NodeKind::kTor, "tor1", sloc);
  c.tors = {tor0, tor1};
  for (int a = 0; a < aggs; ++a) {
    topo::Location aloc;
    aloc.pod = 0;
    aloc.local = a;
    const NodeId agg =
        c.topo.add_node(topo::NodeKind::kAgg, "agg" + std::to_string(a), aloc);
    c.aggs.push_back(agg);
    c.topo.add_duplex_link(tor0, agg, topo::LinkKind::kFabric, Bandwidth::gbps(400),
                           Duration::micros(1));
    c.topo.add_duplex_link(tor1, agg, topo::LinkKind::kFabric, Bandwidth::gbps(400),
                           Duration::micros(1));
  }
  for (int h = 0; h < hosts; ++h) {
    topo::Location hloc;
    hloc.pod = 0;
    hloc.segment = 0;
    hloc.host = h;
    const NodeId nic =
        c.topo.add_node(topo::NodeKind::kNic, "h" + std::to_string(h) + ".nic", hloc);
    topo::Host host;
    host.index = h;
    topo::NicAttachment att;
    att.nic = nic;
    att.ports = 2;
    att.tor[0] = tor0;
    att.tor[1] = tor1;
    att.access[0] = c.topo
                        .add_duplex_link(nic, tor0, topo::LinkKind::kAccess,
                                         Bandwidth::gbps(200), Duration::micros(1))
                        .forward;
    att.access[1] = c.topo
                        .add_duplex_link(nic, tor1, topo::LinkKind::kAccess,
                                         Bandwidth::gbps(200), Duration::micros(1))
                        .forward;
    host.nics.push_back(att);
    c.hosts.push_back(std::move(host));
  }
  c.rebuild_gpu_index();
  return c;
}

/// random_scenarios.h-style connected multigraph, rebuilt deterministically
/// from (seed, size_knob, wiring) so a shrunk recipe reproduces its wiring.
topo::Cluster build_random_net(std::uint64_t seed, std::uint32_t nodes_knob,
                               std::uint32_t extra_knob) {
  const int nodes = static_cast<int>(std::clamp<std::uint32_t>(nodes_knob, 2, 32));
  const int extra = static_cast<int>(std::min<std::uint32_t>(extra_knob, 64));
  Rng rng{seed ^ 0xC2B2AE3D27D4EB4FULL};
  topo::Cluster c;
  c.arch = topo::Arch::kFatTree;  // closest "generic graph" label
  c.gpus_per_host = 0;
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    ids.push_back(c.topo.add_node(topo::NodeKind::kTor, "n" + std::to_string(i)));
  }
  c.tors = ids;
  static constexpr double kPaletteGbps[] = {10, 25, 40, 100, 200, 400};
  const auto random_capacity = [&rng] {
    if (rng.bernoulli(0.6)) return Bandwidth::gbps(kPaletteGbps[rng.uniform_index(6)]);
    return Bandwidth::gbps(rng.uniform_real(5.0, 500.0));
  };
  const auto wire = [&](NodeId a, NodeId b) {
    c.topo.add_duplex_link(a, b, topo::LinkKind::kFabric, random_capacity(),
                           Duration::micros(1));
  };
  for (int i = 1; i < nodes; ++i) {
    wire(ids[static_cast<std::size_t>(i - 1)], ids[static_cast<std::size_t>(i)]);
  }
  for (int e = 0; e < extra; ++e) {
    const auto a = rng.uniform_index(static_cast<std::uint64_t>(nodes));
    auto b = rng.uniform_index(static_cast<std::uint64_t>(nodes));
    if (a == b) b = (b + 1) % static_cast<std::uint64_t>(nodes);
    wire(ids[a], ids[b]);
  }
  c.rebuild_gpu_index();
  return c;
}

enum class NumParse : std::uint8_t { kOk, kMalformed, kOverflow };

NumParse parse_u64_checked(std::string_view token, std::uint64_t& value) {
  value = 0;
  if (token.empty()) return NumParse::kMalformed;
  for (const char ch : token) {
    if (ch < '0' || ch > '9') return NumParse::kMalformed;
    const auto digit = static_cast<std::uint64_t>(ch - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return NumParse::kOverflow;
    }
    value = value * 10 + digit;
  }
  return NumParse::kOk;
}

int topology_rank(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kTinyClos: return 0;
    case TopologyKind::kFatTree: return 1;
    case TopologyKind::kDcnPlus: return 2;
    case TopologyKind::kHpnSegment: return 3;
    case TopologyKind::kRailOnly: return 4;
    case TopologyKind::kRailX: return 5;
    case TopologyKind::kUbMesh: return 6;
    case TopologyKind::kRandom: return 7;
    case TopologyKind::kHpnPod: return 8;
  }
  return 0;
}

}  // namespace

std::string_view to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kTinyClos: return "tiny_clos";
    case TopologyKind::kHpnSegment: return "hpn_segment";
    case TopologyKind::kDcnPlus: return "dcn_plus";
    case TopologyKind::kFatTree: return "fat_tree";
    case TopologyKind::kRailOnly: return "rail_only";
    case TopologyKind::kRailX: return "railx_lite";
    case TopologyKind::kUbMesh: return "ubmesh_lite";
    case TopologyKind::kRandom: return "random";
    case TopologyKind::kHpnPod: return "hpn_pod";
  }
  return "unknown";
}

std::optional<TopologyKind> topology_kind_from(std::string_view name) {
  for (const TopologyKind k :
       {TopologyKind::kTinyClos, TopologyKind::kHpnSegment, TopologyKind::kDcnPlus,
        TopologyKind::kFatTree, TopologyKind::kRailOnly, TopologyKind::kRailX,
        TopologyKind::kUbMesh, TopologyKind::kRandom, TopologyKind::kHpnPod}) {
    if (to_string(k) == name) return k;
  }
  return std::nullopt;
}

std::string_view to_string(ScenarioFault::Kind kind) {
  switch (kind) {
    case ScenarioFault::Kind::kLinkFail: return "link_fail";
    case ScenarioFault::Kind::kLinkFlap: return "link_flap";
    case ScenarioFault::Kind::kTorCrash: return "tor_crash";
  }
  return "unknown";
}

std::string Scenario::to_text() const {
  std::ostringstream os;
  os << kHeader << '\n';
  os << "seed " << seed << '\n';
  os << "topology " << to_string(topology) << '\n';
  os << "size " << size_knob << '\n';
  os << "wiring " << wiring << '\n';
  for (const ScenarioFlow& f : flows) {
    os << "flow " << f.src << ' ' << f.dst << ' ' << f.size_bytes << ' '
       << std::setprecision(17) << f.cap_gbps << '\n';
  }
  for (const ScenarioFault& f : faults) {
    os << "fault " << to_string(f.kind) << ' ' << f.at_ns << ' ' << f.target << ' '
       << f.down_for_ns << '\n';
  }
  for (const ScenarioJob& j : jobs) {
    os << "job " << j.arrival_ns << ' ' << j.hosts << ' ' << j.iters << '\n';
  }
  os << "end\n";
  return os.str();
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x00000100000001B3ULL;
  }
  return h;
}

std::optional<Scenario> Scenario::from_text(std::string_view text) {
  return from_text(text, nullptr);
}

std::optional<Scenario> Scenario::from_text(std::string_view text, std::string* error) {
  const auto set_error = [&](std::string msg) {
    if (error) *error = std::move(msg);
  };
  std::istringstream is{std::string{text}};
  std::string line;
  int line_no = 0;
  // Next meaningful line: strips the CR of CRLF endings and '#'-to-EOL
  // comments, skips blank lines. Formatting leniency lives entirely here;
  // everything below is strict.
  const auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
        line.resize(hash);
      }
      if (line.find_first_not_of(" \t") != std::string::npos) return true;
    }
    return false;
  };
  const auto fail_at = [&](int at, std::string msg) -> std::optional<Scenario> {
    set_error("line " + std::to_string(at) + ": " + std::move(msg));
    return std::nullopt;
  };

  if (!next_line()) {
    set_error("truncated scenario: missing header");
    return std::nullopt;
  }
  {
    std::istringstream hs{line};
    std::string magic, version, junk;
    hs >> magic >> version;
    if (magic != "hpnsim-scenario" || version != "v1" || (hs >> junk)) {
      return fail_at(line_no, "bad header (want 'hpnsim-scenario v1')");
    }
  }

  Scenario s;
  bool saw_seed = false;
  bool saw_topology = false;
  bool saw_size = false;
  bool saw_wiring = false;
  bool saw_end = false;
  while (next_line()) {
    std::istringstream ls{line};
    std::string key;
    ls >> key;
    // True when the line has no tokens left (trailing junk is an error on
    // every entry: it usually means a truncated/merged line, and silently
    // ignoring it is how corrupted scenarios replay "clean").
    const auto line_done = [&ls]() -> bool {
      std::string junk;
      return !(ls >> junk);
    };
    // One base-10 token as u32 (recipe indices/knobs are all u32).
    const auto read_u32 = [&ls](std::uint32_t& out, const char* what,
                                std::string& msg) -> bool {
      std::string tok;
      std::uint64_t v = 0;
      if (!(ls >> tok) || parse_u64_checked(tok, v) == NumParse::kMalformed) {
        msg = std::string("malformed '") + what + "' entry";
        return false;
      }
      if (v > std::numeric_limits<std::uint32_t>::max()) {
        msg = std::string("'") + what + "' value out of range";
        return false;
      }
      out = static_cast<std::uint32_t>(v);
      return true;
    };
    std::string msg;

    if (key == "end") {
      if (!line_done()) return fail_at(line_no, "trailing junk after 'end'");
      saw_end = true;
      break;
    }
    if (key == "seed") {
      if (saw_seed) return fail_at(line_no, "duplicate 'seed'");
      saw_seed = true;
      std::string tok;
      if (!(ls >> tok)) return fail_at(line_no, "malformed 'seed' entry");
      switch (parse_u64_checked(tok, s.seed)) {
        case NumParse::kMalformed: return fail_at(line_no, "malformed 'seed' entry");
        case NumParse::kOverflow:
          return fail_at(line_no, "'seed' does not fit in 64 bits");
        case NumParse::kOk: break;
      }
      if (!line_done()) return fail_at(line_no, "trailing junk after 'seed'");
    } else if (key == "topology") {
      if (saw_topology) return fail_at(line_no, "duplicate 'topology'");
      saw_topology = true;
      std::string name;
      if (!(ls >> name)) return fail_at(line_no, "malformed 'topology' entry");
      const auto kind = topology_kind_from(name);
      if (!kind) return fail_at(line_no, "unknown topology '" + name + "'");
      s.topology = *kind;
      if (!line_done()) return fail_at(line_no, "trailing junk after 'topology'");
    } else if (key == "size") {
      if (saw_size) return fail_at(line_no, "duplicate 'size'");
      saw_size = true;
      if (!read_u32(s.size_knob, "size", msg)) return fail_at(line_no, msg);
      if (s.size_knob == 0) return fail_at(line_no, "'size' must be >= 1");
      if (!line_done()) return fail_at(line_no, "trailing junk after 'size'");
    } else if (key == "wiring") {
      if (saw_wiring) return fail_at(line_no, "duplicate 'wiring'");
      saw_wiring = true;
      if (!read_u32(s.wiring, "wiring", msg)) return fail_at(line_no, msg);
      if (!line_done()) return fail_at(line_no, "trailing junk after 'wiring'");
    } else if (key == "flow") {
      ScenarioFlow f;
      if (!read_u32(f.src, "flow", msg) || !read_u32(f.dst, "flow", msg)) {
        return fail_at(line_no, msg);
      }
      if (!(ls >> f.size_bytes >> f.cap_gbps)) {
        return fail_at(line_no, "malformed 'flow' entry");
      }
      if (f.size_bytes < 0) return fail_at(line_no, "'flow' size_bytes must be >= 0");
      if (!(f.cap_gbps > 0.0) || !(f.cap_gbps <= 10'000.0)) {
        return fail_at(line_no, "'flow' cap_gbps out of range (0, 10000]");
      }
      if (!line_done()) return fail_at(line_no, "trailing junk after 'flow'");
      s.flows.push_back(f);
    } else if (key == "fault") {
      ScenarioFault f;
      std::string kind_name;
      if (!(ls >> kind_name)) return fail_at(line_no, "malformed 'fault' entry");
      if (kind_name == "link_fail") {
        f.kind = ScenarioFault::Kind::kLinkFail;
      } else if (kind_name == "link_flap") {
        f.kind = ScenarioFault::Kind::kLinkFlap;
      } else if (kind_name == "tor_crash") {
        f.kind = ScenarioFault::Kind::kTorCrash;
      } else {
        return fail_at(line_no, "unknown fault kind '" + kind_name + "'");
      }
      if (!(ls >> f.at_ns)) return fail_at(line_no, "malformed 'fault' entry");
      if (!read_u32(f.target, "fault", msg)) return fail_at(line_no, msg);
      if (!(ls >> f.down_for_ns)) return fail_at(line_no, "malformed 'fault' entry");
      if (f.at_ns < 0 || f.down_for_ns < 0) {
        return fail_at(line_no, "'fault' times must be >= 0");
      }
      if (!line_done()) return fail_at(line_no, "trailing junk after 'fault'");
      s.faults.push_back(f);
    } else if (key == "job") {
      ScenarioJob j;
      if (!(ls >> j.arrival_ns)) return fail_at(line_no, "malformed 'job' entry");
      if (!read_u32(j.hosts, "job", msg) || !read_u32(j.iters, "job", msg)) {
        return fail_at(line_no, msg);
      }
      if (j.arrival_ns < 0) return fail_at(line_no, "'job' arrival_ns must be >= 0");
      if (j.hosts == 0 || j.iters == 0) {
        return fail_at(line_no, "'job' hosts and iters must be >= 1");
      }
      if (!line_done()) return fail_at(line_no, "trailing junk after 'job'");
      s.jobs.push_back(j);
    } else {
      return fail_at(line_no, "unknown key '" + key + "'");
    }
  }
  if (!saw_end) {
    set_error("truncated scenario: missing 'end'");
    return std::nullopt;
  }
  // Only blank/comment lines may follow 'end' — real content after it means
  // two scenarios were concatenated or the file was corrupted mid-write.
  if (next_line()) return fail_at(line_no, "content after 'end'");
  return s;
}

Scenario random_scenario(std::uint64_t seed) {
  Rng rng{seed};
  Scenario s;
  s.seed = seed;

  const double pick = rng.uniform_real();
  if (pick < 0.40) {
    s.topology = TopologyKind::kRandom;
    s.size_knob = static_cast<std::uint32_t>(rng.uniform_int(4, 14));
    s.wiring = static_cast<std::uint32_t>(rng.uniform_int(0, 2 * s.size_knob));
  } else if (pick < 0.58) {
    s.topology = TopologyKind::kTinyClos;
    s.size_knob = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    s.wiring = static_cast<std::uint32_t>(rng.uniform_int(1, 2));
  } else if (pick < 0.74) {
    s.topology = TopologyKind::kHpnSegment;
    s.size_knob = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
    s.wiring = 0;
  } else if (pick < 0.82) {
    s.topology = TopologyKind::kDcnPlus;
    s.size_knob = static_cast<std::uint32_t>(rng.uniform_int(1, 2));
    s.wiring = 0;
  } else if (pick < 0.88) {
    s.topology = TopologyKind::kFatTree;
    s.size_knob = 4;
    s.wiring = 0;
  } else if (pick < 0.92) {
    s.topology = TopologyKind::kRailOnly;
    s.size_knob = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    s.wiring = 0;
  } else if (pick < 0.96) {
    s.topology = TopologyKind::kRailX;
    s.size_knob = static_cast<std::uint32_t>(rng.uniform_int(1, 2));
    s.wiring = static_cast<std::uint32_t>(rng.uniform_int(2, 5));
  } else {
    s.topology = TopologyKind::kUbMesh;
    s.size_knob = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
    s.wiring = 0;
  }

  static constexpr std::int64_t kSizePalette[] = {2'048, 65'536, 262'144, 1'048'576};
  static constexpr double kCapPalette[] = {25.0, 50.0, 100.0, 200.0};
  const int flow_count = static_cast<int>(rng.uniform_int(2, 10));
  for (int i = 0; i < flow_count; ++i) {
    ScenarioFlow f;
    f.src = static_cast<std::uint32_t>(rng.next_u64() & 0xFFFFu);
    f.dst = static_cast<std::uint32_t>(rng.next_u64() & 0xFFFFu);
    f.size_bytes = rng.bernoulli(0.7) ? kSizePalette[rng.uniform_index(4)]
                                      : rng.uniform_int(1'024, 2'097'152);
    f.cap_gbps = rng.bernoulli(0.7) ? kCapPalette[rng.uniform_index(4)]
                                    : rng.uniform_real(5.0, 300.0);
    s.flows.push_back(f);
  }

  if (rng.bernoulli(0.45)) {
    const int fault_count = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < fault_count; ++i) {
      ScenarioFault f;
      const double kind = rng.uniform_real();
      f.kind = kind < 0.45   ? ScenarioFault::Kind::kLinkFail
               : kind < 0.85 ? ScenarioFault::Kind::kLinkFlap
                             : ScenarioFault::Kind::kTorCrash;
      f.at_ns = rng.uniform_int(0, 3'000'000);  // within the first 3 ms
      f.target = static_cast<std::uint32_t>(rng.next_u64() & 0xFFFFu);
      if (f.kind == ScenarioFault::Kind::kLinkFlap) {
        f.down_for_ns = rng.uniform_int(50'000, 1'000'000);
      } else if (f.kind == ScenarioFault::Kind::kLinkFail && rng.bernoulli(0.5)) {
        f.down_for_ns = rng.uniform_int(500'000, 3'000'000);
      } else if (f.kind == ScenarioFault::Kind::kTorCrash) {
        f.down_for_ns = rng.bernoulli(0.5) ? rng.uniform_int(1'000'000, 5'000'000) : 0;
      }
      s.faults.push_back(f);
    }
  }
  // Drawn AFTER every pre-existing field so adding the jobsmix phase left
  // all earlier sweeps' scenarios (and the committed corpus) bit-identical.
  if (rng.bernoulli(0.30)) ensure_jobs(s);
  return s;
}

void ensure_jobs(Scenario& scenario) {
  if (!scenario.jobs.empty()) return;
  Rng rng{scenario.seed ^ 0x0B5F2A6CD1E94B73ULL};
  const int count = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < count; ++i) {
    ScenarioJob j;
    j.arrival_ns = rng.uniform_int(0, 200'000'000);  // first 200 ms
    j.hosts = static_cast<std::uint32_t>(rng.uniform_int(1, 24));
    j.iters = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    scenario.jobs.push_back(j);
  }
}

Materialized materialize(const Scenario& scenario) {
  Materialized m;
  switch (scenario.topology) {
    case TopologyKind::kTinyClos:
      m.cluster = build_tiny_clos(scenario.size_knob, scenario.wiring);
      break;
    case TopologyKind::kHpnSegment: {
      topo::HpnConfig cfg;
      cfg.pods = 1;
      cfg.segments_per_pod = 2;  // >1 so tier2 exists and BGP has transit
      cfg.hosts_per_segment =
          static_cast<int>(std::clamp<std::uint32_t>(scenario.size_knob, 1, 3));
      cfg.gpus_per_host = 2;
      cfg.tor_uplinks = 2;
      cfg.aggs_per_plane = 2;
      cfg.agg_core_uplinks = 1;
      m.cluster = topo::build_hpn(cfg);
      break;
    }
    case TopologyKind::kHpnPod: {
      // Honest Pod scale for the serve daemon / bench_serve: tens of
      // segments, up to thousands of NICs. Fuzz sweeps never draw it, so
      // only serve-scale callers pay for the build.
      topo::HpnConfig cfg;
      cfg.pods = 1;
      cfg.segments_per_pod =
          static_cast<int>(std::clamp<std::uint32_t>(scenario.wiring, 1, 16));
      cfg.hosts_per_segment =
          static_cast<int>(std::clamp<std::uint32_t>(scenario.size_knob, 1, 128));
      cfg.gpus_per_host = 2;
      cfg.tor_uplinks = 2;
      cfg.aggs_per_plane = 2;
      cfg.agg_core_uplinks = 1;
      m.cluster = topo::build_hpn(cfg);
      break;
    }
    case TopologyKind::kDcnPlus: {
      topo::DcnPlusConfig cfg;
      cfg.pods = 1;
      cfg.segments_per_pod = 2;
      cfg.hosts_per_segment =
          static_cast<int>(std::clamp<std::uint32_t>(scenario.size_knob, 1, 2));
      cfg.gpus_per_host = 2;
      cfg.aggs_per_pod = 2;
      cfg.links_per_tor_agg = 1;
      m.cluster = topo::build_dcn_plus(cfg);
      break;
    }
    case TopologyKind::kFatTree: {
      topo::FatTreeConfig cfg;
      cfg.k = 4;
      m.cluster = topo::build_fat_tree(cfg);
      break;
    }
    case TopologyKind::kRailOnly: {
      // Through the strategy registry, so fuzzing also exercises the
      // Fabric build path. Rail-only: one "segment" of size_knob hosts.
      fabric::FabricScale scale;
      scale.segments_per_pod = 1;
      scale.hosts_per_segment =
          static_cast<int>(std::clamp<std::uint32_t>(scenario.size_knob, 1, 4));
      scale.gpus_per_host = 2;
      m.cluster = fabric::fabric_or_throw("rail-only").build(scale);
      break;
    }
    case TopologyKind::kRailX: {
      fabric::FabricScale scale;
      scale.segments_per_pod =
          static_cast<int>(std::clamp<std::uint32_t>(scenario.wiring, 2, 5));
      scale.hosts_per_segment =
          static_cast<int>(std::clamp<std::uint32_t>(scenario.size_knob, 1, 2));
      scale.gpus_per_host = 2;
      m.cluster = fabric::fabric_or_throw("railx-lite").build(scale);
      break;
    }
    case TopologyKind::kUbMesh: {
      fabric::FabricScale scale;
      scale.segments_per_pod =
          static_cast<int>(std::clamp<std::uint32_t>(scenario.size_knob, 1, 3));
      scale.hosts_per_segment = 1;
      scale.gpus_per_host = 2;
      m.cluster = fabric::fabric_or_throw("ubmesh-lite").build(scale);
      break;
    }
    case TopologyKind::kRandom:
      m.cluster = build_random_net(scenario.seed, scenario.size_knob, scenario.wiring);
      break;
  }
  // PFC-lossless is only safe where up-down routing precludes cyclic buffer
  // dependencies. The RailX circuit ring and the UB-Mesh row/column meshes
  // route switch-to-switch laterally, so they run lossy like kRandom.
  m.lossless_safe = scenario.topology != TopologyKind::kRandom &&
                    scenario.topology != TopologyKind::kRailX &&
                    scenario.topology != TopologyKind::kUbMesh;

  // Eligible endpoints: every NIC for built clusters, every node for the
  // random multigraph (whose nodes are all generic switches).
  if (scenario.topology == TopologyKind::kRandom) {
    for (const topo::Node& n : m.cluster.topo.nodes()) m.endpoints.push_back(n.id);
  } else {
    for (const topo::Host& h : m.cluster.hosts) {
      for (const topo::NicAttachment& att : h.nics) m.endpoints.push_back(att.nic);
    }
  }
  HPN_CHECK_MSG(!m.endpoints.empty(), "scenario topology produced no endpoints");

  for (const topo::Link& l : m.cluster.topo.links()) {
    if (l.kind != topo::LinkKind::kAccess && l.kind != topo::LinkKind::kFabric) continue;
    if (l.id.index() < l.reverse.index()) m.cables.push_back(l.id);
  }

  const auto n = static_cast<std::uint32_t>(m.endpoints.size());
  for (const ScenarioFlow& f : scenario.flows) {
    const std::uint32_t src_idx = f.src % n;
    std::uint32_t dst_idx = f.dst % n;
    if (dst_idx == src_idx) dst_idx = (dst_idx + 1) % n;
    if (dst_idx == src_idx) continue;  // single-endpoint topology
    Materialized::Flow flow;
    flow.src = m.endpoints[src_idx];
    flow.dst = m.endpoints[dst_idx];
    flow.path = bfs_path(m.cluster.topo, flow.src, flow.dst);
    if (flow.path.empty()) continue;  // unreachable pair: drop
    flow.size = DataSize::bytes(std::max<std::int64_t>(1, f.size_bytes));
    flow.cap = Bandwidth::gbps(std::clamp(f.cap_gbps, 0.5, 400.0));
    m.flows.push_back(std::move(flow));
  }

  for (const ScenarioFault& f : scenario.faults) {
    Materialized::Fault fault;
    fault.kind = f.kind;
    fault.at = TimePoint::origin() + Duration::nanos(std::max<std::int64_t>(0, f.at_ns));
    fault.down_for = Duration::nanos(std::max<std::int64_t>(0, f.down_for_ns));
    if (f.kind == ScenarioFault::Kind::kTorCrash) {
      if (m.cluster.tors.empty()) continue;
      fault.tor = m.cluster.tors[f.target % m.cluster.tors.size()];
    } else {
      if (m.cables.empty()) continue;
      fault.cable = m.cables[f.target % m.cables.size()];
    }
    m.faults.push_back(fault);
  }
  // Apply in time order regardless of textual order (stable: equal times
  // keep file order, which the engines then see identically).
  std::stable_sort(m.faults.begin(), m.faults.end(),
                   [](const Materialized::Fault& a, const Materialized::Fault& b) {
                     return a.at < b.at;
                   });
  return m;
}

std::vector<LinkId> shortest_path(const topo::Topology& topo, NodeId src, NodeId dst) {
  return bfs_path(topo, src, dst);
}

std::uint64_t scenario_weight(const Scenario& scenario) {
  std::uint64_t size_bits = 0;
  for (const ScenarioFlow& f : scenario.flows) {
    size_bits += std::bit_width(static_cast<std::uint64_t>(std::max<std::int64_t>(1, f.size_bytes)));
  }
  std::uint64_t w = size_bits;
  w += static_cast<std::uint64_t>(topology_rank(scenario.topology)) *
       std::uint64_t{1'000'000'000'000'000};
  w += scenario.flows.size() * std::uint64_t{1'000'000'000'000};
  w += scenario.faults.size() * std::uint64_t{1'000'000'000};
  for (const ScenarioJob& j : scenario.jobs) {
    // Jobs weigh like faults, plus their iteration count so halving the
    // work inside a job is also a strict shrink.
    w += std::uint64_t{1'000'000'000} + j.iters * std::uint64_t{100'000'000};
  }
  w += static_cast<std::uint64_t>(scenario.size_knob) * std::uint64_t{1'000'000};
  w += static_cast<std::uint64_t>(scenario.wiring) * std::uint64_t{10'000};
  return w;
}

std::vector<Scenario> shrink_candidates(const Scenario& scenario) {
  std::vector<Scenario> out;
  const auto push = [&](Scenario cand) {
    // Every candidate must be strictly smaller; the harness loop relies on
    // that for termination.
    if (scenario_weight(cand) < scenario_weight(scenario)) out.push_back(std::move(cand));
  };

  // Drop half the flows (front half, back half).
  if (scenario.flows.size() > 1) {
    const std::size_t half = scenario.flows.size() / 2;
    Scenario front = scenario;
    front.flows.erase(front.flows.begin(), front.flows.begin() + static_cast<std::ptrdiff_t>(half));
    push(std::move(front));
    Scenario back = scenario;
    back.flows.resize(scenario.flows.size() - half);
    push(std::move(back));
  }
  // Drop half the faults.
  if (scenario.faults.size() > 1) {
    const std::size_t half = scenario.faults.size() / 2;
    Scenario front = scenario;
    front.faults.erase(front.faults.begin(),
                       front.faults.begin() + static_cast<std::ptrdiff_t>(half));
    push(std::move(front));
    Scenario back = scenario;
    back.faults.resize(scenario.faults.size() - half);
    push(std::move(back));
  }
  // Drop half the jobs.
  if (scenario.jobs.size() > 1) {
    const std::size_t half = scenario.jobs.size() / 2;
    Scenario front = scenario;
    front.jobs.erase(front.jobs.begin(),
                     front.jobs.begin() + static_cast<std::ptrdiff_t>(half));
    push(std::move(front));
    Scenario back = scenario;
    back.jobs.resize(scenario.jobs.size() - half);
    push(std::move(back));
  }
  // Drop individual jobs / halve their iterations.
  if (scenario.jobs.size() <= 8) {
    for (std::size_t i = 0; !scenario.jobs.empty() && i < scenario.jobs.size(); ++i) {
      Scenario cand = scenario;
      cand.jobs.erase(cand.jobs.begin() + static_cast<std::ptrdiff_t>(i));
      push(std::move(cand));
    }
  }
  bool any_multi_iter = false;
  for (const ScenarioJob& j : scenario.jobs) any_multi_iter |= j.iters > 1;
  if (any_multi_iter) {
    Scenario lighter = scenario;
    for (ScenarioJob& j : lighter.jobs) j.iters = std::max<std::uint32_t>(1, j.iters / 2);
    push(std::move(lighter));
  }
  // Cross-kind simplification toward the 4-8 node terminal.
  if (scenario.topology != TopologyKind::kTinyClos) {
    Scenario tiny = scenario;
    tiny.topology = TopologyKind::kTinyClos;
    tiny.size_knob = std::min<std::uint32_t>(std::max<std::uint32_t>(scenario.size_knob, 1), 2);
    tiny.wiring = 1;
    push(std::move(tiny));
  }
  // Shrink the topology knobs.
  if (scenario.size_knob > 1) {
    Scenario smaller = scenario;
    smaller.size_knob = std::max<std::uint32_t>(1, scenario.size_knob / 2);
    push(std::move(smaller));
  }
  if (scenario.wiring > 1) {
    Scenario sparser = scenario;
    sparser.wiring = scenario.wiring / 2;
    push(std::move(sparser));
  }
  // Drop individual flows / faults (bounded fan-out).
  if (scenario.flows.size() <= 8) {
    for (std::size_t i = 0; scenario.flows.size() > 1 && i < scenario.flows.size(); ++i) {
      Scenario cand = scenario;
      cand.flows.erase(cand.flows.begin() + static_cast<std::ptrdiff_t>(i));
      push(std::move(cand));
    }
  }
  if (scenario.faults.size() <= 8) {
    for (std::size_t i = 0; !scenario.faults.empty() && i < scenario.faults.size(); ++i) {
      Scenario cand = scenario;
      cand.faults.erase(cand.faults.begin() + static_cast<std::ptrdiff_t>(i));
      push(std::move(cand));
    }
  }
  // Halve flow sizes.
  bool any_large = false;
  for (const ScenarioFlow& f : scenario.flows) any_large |= f.size_bytes > 2'048;
  if (any_large) {
    Scenario halved = scenario;
    for (ScenarioFlow& f : halved.flows) {
      f.size_bytes = std::max<std::int64_t>(1'024, f.size_bytes / 2);
    }
    push(std::move(halved));
  }
  return out;
}

}  // namespace hpn::fuzz
