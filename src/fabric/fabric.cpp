#include "fabric/fabric.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "common/check.h"
#include "topo/builders.h"

namespace hpn::fabric {
namespace {

// ---- HPN (the paper) -------------------------------------------------------
class HpnFabric final : public Fabric {
 public:
  [[nodiscard]] std::string_view name() const override { return "hpn"; }
  [[nodiscard]] std::string_view description() const override {
    return "dual-ToR dual-plane rail-optimized 2-tier (the paper)";
  }
  [[nodiscard]] topo::Cluster build(const FabricScale& scale) const override {
    topo::HpnConfig cfg = scale.paper_radix ? topo::HpnConfig{} : topo::HpnConfig::tiny();
    cfg.pods = scale.pods;
    cfg.segments_per_pod = scale.segments_per_pod;
    cfg.hosts_per_segment = scale.hosts_per_segment;
    cfg.gpus_per_host = scale.gpus_per_host;
    return topo::build_hpn(cfg);
  }
  [[nodiscard]] routing::HashConfig hash_policy() const override {
    // The production default: the polarization story (§2.2) and its §7
    // remedies are studied relative to this baseline config.
    return {};
  }
};

// ---- DCN+ (Appendix C) -----------------------------------------------------
class DcnPlusFabric final : public Fabric {
 public:
  [[nodiscard]] std::string_view name() const override { return "dcn+"; }
  [[nodiscard]] std::string_view description() const override {
    return "previous-generation 3-tier Clos, dual-ToR, not rail-optimized";
  }
  [[nodiscard]] topo::Cluster build(const FabricScale& scale) const override {
    topo::DcnPlusConfig cfg;
    cfg.pods = scale.pods;
    cfg.segments_per_pod = scale.segments_per_pod;
    cfg.hosts_per_segment = scale.hosts_per_segment;
    cfg.gpus_per_host = scale.gpus_per_host;
    return topo::build_dcn_plus(cfg);
  }
  [[nodiscard]] routing::HashConfig hash_policy() const override { return {}; }
};

// ---- Fat tree (Table 1 comparator) ----------------------------------------
class FatTreeFabric final : public Fabric {
 public:
  [[nodiscard]] std::string_view name() const override { return "fat-tree"; }
  [[nodiscard]] std::string_view description() const override {
    return "classic k-ary fat tree, single-port single-GPU hosts";
  }
  [[nodiscard]] topo::Cluster build(const FabricScale& scale) const override {
    // segments_per_pod plays k/2 (the builder's own per-pod segment count).
    topo::FatTreeConfig cfg;
    cfg.k = 2 * std::max(2, scale.segments_per_pod);
    return topo::build_fat_tree(cfg);
  }
  [[nodiscard]] routing::HashConfig hash_policy() const override { return {}; }
};

// ---- Rail-only (Wang et al.) ----------------------------------------------
class RailOnlyFabric final : public Fabric {
 public:
  [[nodiscard]] std::string_view name() const override { return "rail-only"; }
  [[nodiscard]] std::string_view description() const override {
    return "per-rail switches only, no aggregation tier (Wang et al.)";
  }
  [[nodiscard]] topo::Cluster build(const FabricScale& scale) const override {
    topo::RailOnlyConfig cfg;
    cfg.hosts = scale.segments_per_pod * scale.hosts_per_segment;
    cfg.gpus_per_host = scale.gpus_per_host;
    return topo::build_rail_only(cfg);
  }
  [[nodiscard]] routing::HashConfig hash_policy() const override {
    // One switch tier, no cascade to polarize: run decorrelated seeds.
    routing::HashConfig cfg;
    cfg.seeds = routing::SeedPolicy::kPerSwitch;
    return cfg;
  }
};

// ---- RailX-lite ------------------------------------------------------------
class RailXFabric final : public Fabric {
 public:
  [[nodiscard]] std::string_view name() const override { return "railx-lite"; }
  [[nodiscard]] std::string_view description() const override {
    return "grouped rail switches over a rotor-scheduled optical circuit tier";
  }
  [[nodiscard]] topo::Cluster build(const FabricScale& scale) const override {
    topo::RailXConfig cfg;
    cfg.groups = std::max(2, scale.segments_per_pod);
    cfg.hosts_per_group = scale.hosts_per_segment;
    cfg.gpus_per_host = scale.gpus_per_host;
    return topo::build_railx(cfg);
  }
  [[nodiscard]] routing::HashConfig hash_policy() const override {
    routing::HashConfig cfg;
    cfg.seeds = routing::SeedPolicy::kPerSwitch;
    return cfg;
  }
  [[nodiscard]] ReconfigSchedule reconfig() const override {
    // OCS dwell time: long against packet timescales, short against an
    // iteration, so a training run sees several rewirings.
    return ReconfigSchedule{.enabled = true, .period = Duration::millis(50)};
  }
};

// ---- UB-Mesh-lite ----------------------------------------------------------
class UbMeshFabric final : public Fabric {
 public:
  [[nodiscard]] std::string_view name() const override { return "ubmesh-lite"; }
  [[nodiscard]] std::string_view description() const override {
    return "2D full-mesh (HyperX-style) switch grid, single-port hosts";
  }
  [[nodiscard]] topo::Cluster build(const FabricScale& scale) const override {
    topo::UbMeshConfig cfg;
    cfg.rows = 2;
    cfg.cols = std::max(1, scale.segments_per_pod);
    cfg.hosts_per_switch = scale.hosts_per_segment;
    cfg.gpus_per_host = scale.gpus_per_host;
    return topo::build_ubmesh(cfg);
  }
  [[nodiscard]] routing::HashConfig hash_policy() const override {
    routing::HashConfig cfg;
    cfg.seeds = routing::SeedPolicy::kPerSwitch;
    return cfg;
  }
};

const std::vector<std::unique_ptr<Fabric>>& registry() {
  static const auto* fabrics = [] {
    auto* v = new std::vector<std::unique_ptr<Fabric>>;
    v->push_back(std::make_unique<HpnFabric>());
    v->push_back(std::make_unique<DcnPlusFabric>());
    v->push_back(std::make_unique<FatTreeFabric>());
    v->push_back(std::make_unique<RailOnlyFabric>());
    v->push_back(std::make_unique<RailXFabric>());
    v->push_back(std::make_unique<UbMeshFabric>());
    return v;
  }();
  return *fabrics;
}

}  // namespace

const Fabric* find_fabric(std::string_view name) {
  for (const auto& f : registry()) {
    if (f->name() == name) return f.get();
  }
  return nullptr;
}

const Fabric& fabric_or_throw(std::string_view name) {
  const Fabric* f = find_fabric(name);
  if (f == nullptr) {
    throw ConfigError{"unknown fabric '" + std::string{name} + "' (known: " + fabric_names() +
                      ")"};
  }
  return *f;
}

const std::vector<const Fabric*>& all_fabrics() {
  static const auto* all = [] {
    auto* v = new std::vector<const Fabric*>;
    for (const auto& f : registry()) v->push_back(f.get());
    return v;
  }();
  return *all;
}

std::string fabric_names() {
  std::string out;
  for (const auto& f : registry()) {
    if (!out.empty()) out += ", ";
    out += f->name();
  }
  return out;
}

void apply_epoch(topo::Cluster& cluster, int epoch) {
  const auto& sched = cluster.circuits;
  if (sched.empty()) return;
  const auto e = static_cast<std::size_t>(((epoch % sched.epochs()) + sched.epochs()) %
                                          sched.epochs());
  for (const auto& links : sched.epoch_links) {
    for (const LinkId l : links) cluster.topo.set_duplex_up(l, false);
  }
  for (const LinkId l : sched.epoch_links[e]) cluster.topo.set_duplex_up(l, true);
}

CostProxy cost_proxy(const topo::Cluster& cluster) {
  CostProxy cost;
  cost.switches = static_cast<int>(cluster.tors.size() + cluster.aggs.size() +
                                   cluster.cores.size());
  std::unordered_set<LinkId> circuit;
  for (const auto& links : cluster.circuits.epoch_links) {
    for (const LinkId l : links) circuit.insert(l);
  }
  for (const topo::Link& l : cluster.topo.links()) {
    // Count each duplex cable once, via its forward half.
    if (l.reverse.value() < l.id.value()) continue;
    switch (l.kind) {
      case topo::LinkKind::kAccess:
        ++cost.access_cables;
        break;
      case topo::LinkKind::kFabric:
        ++cost.fabric_cables;
        if (circuit.contains(l.id)) cost.circuit_ports += 2;
        break;
      default:
        break;  // NVLink / PCIe are host-internal, not network cost.
    }
  }
  return cost;
}

}  // namespace hpn::fabric
