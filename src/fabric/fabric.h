// A fabric as a strategy object (ROADMAP item 2): one named bundle of
//   * a wiring recipe   — how to build a Cluster at a requested scale,
//   * a hash/path policy — the ECMP HashConfig the architecture runs with,
//   * a reconfiguration schedule — for optically-switched fabrics, how the
//     circuit tier rotates (static fabrics report none).
//
// Strategies live in a process-wide registry keyed by CLI-friendly names
// (`--fabric hpn|dcn+|fat-tree|rail-only|railx-lite|ubmesh-lite`), so
// benches, the fuzzer, and the CLI can race architectures head-to-head
// without knowing any builder signature.
//
// The HPN / DCN+ / fat-tree strategies are thin adapters over the existing
// builders — test_fabric_equivalence pins them byte-identical to the
// pre-refactor output preserved in tests/support/reference_builders.h.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "routing/hash.h"
#include "topo/cluster.h"

namespace hpn::fabric {

/// Builder-agnostic scale knobs. Each strategy documents how it maps them
/// onto its own geometry; the invariant is monotonicity (more segments or
/// hosts never shrinks the cluster), not a shared formula.
struct FabricScale {
  int pods = 1;
  /// Segments (HPN/DCN+), k/2 (fat-tree), groups (RailX-lite), grid
  /// columns (UB-Mesh-lite), or host-count multiplier (Rail-only).
  int segments_per_pod = 2;
  int hosts_per_segment = 4;
  int gpus_per_host = 8;
  /// Use the paper-scale radix (ToR uplinks, Agg counts) instead of the
  /// test-sized radix. Only meaningful for HPN.
  bool paper_radix = false;
};

/// How a reconfigurable fabric rotates its circuit tier. The epoch count is
/// scale-dependent and lives in the built cluster (`Cluster::circuits`);
/// the strategy only says whether rotation happens and how fast.
struct ReconfigSchedule {
  bool enabled = false;
  Duration period = Duration::zero();  ///< Suggested dwell time per epoch.
  [[nodiscard]] bool active() const { return enabled; }
};

/// Cost proxy (Table 1-style comparison): counts, not dollars. Optics are
/// approximated as one transceiver pair per fabric cable plus one per
/// access cable; circuit ports count the OCS side of reconfigurable links.
struct CostProxy {
  int switches = 0;        ///< ToR + Agg + Core.
  int access_cables = 0;   ///< NIC <-> ToR duplex cables.
  int fabric_cables = 0;   ///< Switch <-> switch duplex cables.
  int circuit_ports = 0;   ///< OCS ports consumed by reconfigurable cables.
  [[nodiscard]] int optics_units() const { return 2 * (access_cables + fabric_cables); }
};

class Fabric {
 public:
  virtual ~Fabric() = default;

  /// Registry key ("hpn", "railx-lite", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;

  /// Wiring recipe: build a cluster at the requested scale.
  [[nodiscard]] virtual topo::Cluster build(const FabricScale& scale) const = 0;

  /// Hash/path policy this architecture is operated with.
  [[nodiscard]] virtual routing::HashConfig hash_policy() const = 0;

  /// Reconfiguration schedule; default: static fabric.
  [[nodiscard]] virtual ReconfigSchedule reconfig() const { return {}; }
};

/// Look up a strategy by name; nullptr when unknown.
const Fabric* find_fabric(std::string_view name);

/// Look up a strategy by name; throws ConfigError listing known names.
const Fabric& fabric_or_throw(std::string_view name);

/// Every registered strategy, in registration order (HPN first).
const std::vector<const Fabric*>& all_fabrics();

/// Comma-separated registry keys, for --help text and error messages.
std::string fabric_names();

/// Flip the circuit tier of a reconfigurable cluster to `epoch` (modulo the
/// schedule length): exactly that epoch's links come up, every other
/// circuit link goes down. No-op for clusters without circuits.
void apply_epoch(topo::Cluster& cluster, int epoch);

/// Count the cost proxy of a built cluster. Circuit cables (links named in
/// the cluster's CircuitSchedule) are additionally charged as OCS ports.
CostProxy cost_proxy(const topo::Cluster& cluster);

}  // namespace hpn::fabric
