// Checkpoint / failure economics (§2.3, Fig 4).
//
// Checkpoints are written every few hours (writing ~30GB per GPU costs
// ~100s, so customers stretch intervals to keep overhead near 5%); a crash
// rolls the job back to the last checkpoint and pays a restart. At ~$20K/h
// for a 3K-GPU task, one crash costs ~$30K.
#pragma once

#include "common/units.h"

namespace hpn::fault {

struct CheckpointPolicy {
  Duration interval = Duration::hours(3.0);
  Duration write_time = Duration::seconds(100.0);
  DataSize per_gpu = DataSize::gigabytes(30);
  /// Process restart + checkpoint reload + NCCL re-init after a crash.
  Duration restart_time = Duration::minutes(15.0);
};

struct CrashCost {
  Duration rolled_back;     ///< Training progress lost.
  Duration restart;         ///< Downtime to resume.
  double dollars = 0.0;     ///< At the paper's $20K/h-per-3K-GPU rate.
};

class CheckpointModel {
 public:
  explicit CheckpointModel(CheckpointPolicy policy = {}) : policy_{policy} {}

  /// Fraction of wall time spent writing checkpoints (~5% at 2-4h, §2.3).
  [[nodiscard]] double overhead_fraction() const;

  /// Cost of a crash at `since_last_checkpoint` of progress, for a job of
  /// `gpus` GPUs.
  [[nodiscard]] CrashCost crash_cost(Duration since_last_checkpoint, int gpus) const;

  /// Expected crash cost with crashes uniform within the interval.
  [[nodiscard]] CrashCost expected_crash_cost(int gpus) const {
    return crash_cost(policy_.interval / 2.0, gpus);
  }

  /// Effective training goodput: (1 - checkpoint overhead) x (1 - time lost
  /// to expected crashes at `crashes_per_month`).
  [[nodiscard]] double goodput_fraction(double crashes_per_month, int gpus) const;

  [[nodiscard]] const CheckpointPolicy& policy() const { return policy_; }

  /// The paper's rate: $20,000 per hour per 3,000 GPUs.
  static constexpr double kDollarsPerGpuHour = 20'000.0 / 3'000.0;

 private:
  CheckpointPolicy policy_;
};

}  // namespace hpn::fault
