#include "fault/checkpoint.h"

#include "common/check.h"

namespace hpn::fault {

double CheckpointModel::overhead_fraction() const {
  return policy_.write_time / (policy_.interval + policy_.write_time);
}

CrashCost CheckpointModel::crash_cost(Duration since_last_checkpoint, int gpus) const {
  HPN_CHECK(gpus > 0);
  CrashCost cost;
  cost.rolled_back = since_last_checkpoint;
  cost.restart = policy_.restart_time;
  const double lost_hours = (cost.rolled_back + cost.restart).as_seconds() / 3600.0;
  cost.dollars = lost_hours * gpus * kDollarsPerGpuHour;
  return cost;
}

double CheckpointModel::goodput_fraction(double crashes_per_month, int gpus) const {
  HPN_CHECK(crashes_per_month >= 0.0);
  const CrashCost per_crash = expected_crash_cost(gpus);
  const double month_hours = 30.0 * 24.0;
  const double lost_hours =
      crashes_per_month * (per_crash.rolled_back + per_crash.restart).as_seconds() / 3600.0;
  const double crash_loss = std::min(1.0, lost_hours / month_hours);
  return (1.0 - overhead_fraction()) * (1.0 - crash_loss);
}

}  // namespace hpn::fault
