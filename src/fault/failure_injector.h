// Randomized failure injection driven by the production failure statistics
// of Fig 5 (0.057% of NIC-ToR links fail per month, 0.051% of ToRs crash,
// 5K-60K link flaps fleet-wide per day). Schedules fail/repair events on a
// FabricController over simulated time.
#pragma once

#include <vector>

#include "common/rng.h"
#include "ctrl/fabric_controller.h"
#include "workload/traffic.h"

namespace hpn::fault {

struct InjectionPlanEntry {
  enum class Kind { kLinkFail, kLinkFlap, kTorCrash } kind;
  TimePoint at;
  int host = -1;
  int rail = -1;
  int port = -1;
  NodeId tor = NodeId::invalid();
  Duration repair_after = Duration::zero();  ///< 0 = never repaired.
};

class FailureInjector {
 public:
  FailureInjector(topo::Cluster& cluster, sim::Simulator& simulator,
                  ctrl::FabricController& fabric, std::uint64_t seed,
                  workload::FailureRates rates = {});

  /// Draw a random plan over `horizon`: each access link independently
  /// fails with the monthly rate scaled to the horizon; flaps follow the
  /// fleet-wide daily rate scaled to this cluster's share of links.
  std::vector<InjectionPlanEntry> draw_plan(Duration horizon, Duration repair_after);

  /// Schedule a plan's events on the simulator.
  void schedule(const std::vector<InjectionPlanEntry>& plan);

  /// Convenience: draw + schedule.
  void inject_random(Duration horizon, Duration repair_after) {
    schedule(draw_plan(horizon, repair_after));
  }

  [[nodiscard]] int injected_events() const { return injected_; }

 private:
  topo::Cluster* cluster_;
  sim::Simulator* sim_;
  ctrl::FabricController* fabric_;
  Rng rng_;
  workload::FailureRates rates_;
  int injected_ = 0;
};

}  // namespace hpn::fault
