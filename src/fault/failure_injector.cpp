#include "fault/failure_injector.h"

#include "common/check.h"

namespace hpn::fault {

FailureInjector::FailureInjector(topo::Cluster& cluster, sim::Simulator& simulator,
                                 ctrl::FabricController& fabric, std::uint64_t seed,
                                 workload::FailureRates rates)
    : cluster_{&cluster}, sim_{&simulator}, fabric_{&fabric}, rng_{seed}, rates_{rates} {}

std::vector<InjectionPlanEntry> FailureInjector::draw_plan(Duration horizon,
                                                           Duration repair_after) {
  HPN_CHECK(horizon > Duration::zero());
  const double months = horizon.as_seconds() / (30.0 * 24.0 * 3600.0);
  const double link_p = std::min(1.0, rates_.nic_tor_link_monthly * months);
  const double tor_p = std::min(1.0, rates_.tor_critical_monthly * months);

  std::vector<InjectionPlanEntry> plan;
  auto random_time = [&] {
    return TimePoint::origin() + horizon * rng_.uniform_real(0.02, 0.98);
  };

  for (const topo::Host& h : cluster_->hosts) {
    for (std::size_t rail = 0; rail < h.nics.size(); ++rail) {
      for (int p = 0; p < h.nics[rail].ports; ++p) {
        if (rng_.bernoulli(link_p)) {
          plan.push_back({InjectionPlanEntry::Kind::kLinkFail, random_time(), h.index,
                          static_cast<int>(rail), p, NodeId::invalid(), repair_after});
        }
      }
    }
  }
  for (const NodeId tor : cluster_->tors) {
    if (rng_.bernoulli(tor_p)) {
      plan.push_back({InjectionPlanEntry::Kind::kTorCrash, random_time(), -1, -1, -1, tor,
                      repair_after});
    }
  }

  // Link flapping: the fleet sees 5K-60K flaps/day over ~O(100K) links;
  // scale to this cluster's access-link count.
  int access_links = 0;
  for (const topo::Host& h : cluster_->hosts) {
    for (const auto& nic : h.nics) access_links += nic.ports;
  }
  const double days = horizon.as_seconds() / (24.0 * 3600.0);
  const double fleet_links = 100'000.0;
  const double flap_rate =
      rng_.uniform_real(rates_.daily_flaps_min, rates_.daily_flaps_max) / fleet_links;
  const double expected_flaps = flap_rate * access_links * days;
  const std::int64_t flaps = rng_.poisson(std::max(0.0, expected_flaps));
  for (std::int64_t i = 0; i < flaps; ++i) {
    const topo::Host& h = cluster_->hosts[rng_.uniform_index(cluster_->hosts.size())];
    const int rail = static_cast<int>(rng_.uniform_index(h.nics.size()));
    const int port = static_cast<int>(
        rng_.uniform_index(static_cast<std::uint64_t>(h.nics[static_cast<std::size_t>(rail)].ports)));
    plan.push_back({InjectionPlanEntry::Kind::kLinkFlap, random_time(), h.index, rail, port,
                    NodeId::invalid(), Duration::seconds(rng_.uniform_real(0.5, 5.0))});
  }
  return plan;
}

void FailureInjector::schedule(const std::vector<InjectionPlanEntry>& plan) {
  for (const InjectionPlanEntry& e : plan) {
    HPN_CHECK(e.at >= sim_->now());
    ++injected_;
    switch (e.kind) {
      case InjectionPlanEntry::Kind::kLinkFail:
        sim_->schedule_at(e.at, [this, e] {
          fabric_->fail_access(e.host, e.rail, e.port);
          if (e.repair_after > Duration::zero()) {
            sim_->schedule_after(e.repair_after, [this, e] {
              fabric_->repair_access(e.host, e.rail, e.port);
            });
          }
        });
        break;
      case InjectionPlanEntry::Kind::kLinkFlap:
        sim_->schedule_at(e.at, [this, e] {
          fabric_->flap_access(e.host, e.rail, e.port, e.repair_after);
        });
        break;
      case InjectionPlanEntry::Kind::kTorCrash:
        sim_->schedule_at(e.at, [this, e] {
          fabric_->fail_tor(e.tor);
          if (e.repair_after > Duration::zero()) {
            sim_->schedule_after(e.repair_after, [this, e] { fabric_->repair_tor(e.tor); });
          }
        });
        break;
    }
  }
}

}  // namespace hpn::fault
