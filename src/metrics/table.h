// Console table and CSV rendering for bench harness output. Every bench
// binary prints the same rows/series the paper's table or figure reports.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace hpn::metrics {

class Table {
 public:
  explicit Table(std::string title = {}) : title_{std::move(title)} {}

  Table& columns(std::vector<std::string> names);
  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string percent(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  /// Writes `<name>.csv` into `dir` (created if missing). Returns the path.
  std::string save_csv(const std::string& dir, const std::string& name) const;

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpn::metrics
