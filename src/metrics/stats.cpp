#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hpn::metrics {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  HPN_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  HPN_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

double SampleSet::quantile(double q) const {
  HPN_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile out of range: " << q);
  HPN_CHECK(!samples_.empty());
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_points() const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  const auto n = static_cast<double>(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    // Keep only the last occurrence of each distinct value.
    if (i + 1 < samples_.size() && samples_[i + 1] == samples_[i]) continue;
    out.emplace_back(samples_[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

std::span<const double> SampleSet::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, width_{(hi - lo) / static_cast<double>(bins)}, counts_(bins, 0) {
  HPN_CHECK_MSG(hi > lo && bins > 0, "invalid histogram range");
}

void Histogram::add(double x, std::uint64_t weight) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

}  // namespace hpn::metrics
