// Time-stamped measurement series with windowed aggregation, used by every
// figure that plots a quantity over time (Figs 2, 13, 14, 15, 18).
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "metrics/stats.h"

namespace hpn::metrics {

class TimeSeries {
 public:
  struct Point {
    TimePoint at;
    double value = 0.0;
  };

  explicit TimeSeries(std::string name = {}) : name_{std::move(name)} {}

  void record(TimePoint at, double value);
  void clear() { points_.clear(); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Mean value over [from, to), treating points as instantaneous samples.
  [[nodiscard]] double mean_over(TimePoint from, TimePoint to) const;
  [[nodiscard]] double max_over(TimePoint from, TimePoint to) const;

  /// Downsample into fixed windows; each output point is the window's
  /// mean (e.g. "averaged every 10s" in Fig 15b) or max (Fig 15c).
  enum class WindowOp { kMean, kMax };
  [[nodiscard]] TimeSeries resample(Duration window, WindowOp op) const;

  /// Summary over all recorded values.
  [[nodiscard]] RunningStats summary() const;

 private:
  std::string name_;
  std::vector<Point> points_;  // strictly non-decreasing timestamps
};

}  // namespace hpn::metrics
