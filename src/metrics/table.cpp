#include "metrics/table.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/check.h"

namespace hpn::metrics {

Table& Table::columns(std::vector<std::string> names) {
  columns_ = std::move(names);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  HPN_CHECK_MSG(columns_.empty() || cells.size() == columns_.size(),
                "row width " << cells.size() << " != header width " << columns_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    widths.resize(std::max(widths.size(), row.size()), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(columns_);
  for (const auto& r : rows_) widen(r);

  auto line = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size(), ' ');
      os << (i + 1 < widths.size() ? " | " : " |");
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!columns_.empty()) {
    line(columns_);
    os << "|";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
    os << '\n';
  }
  for (const auto& r : rows_) line(r);
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto row_out = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  if (!columns_.empty()) row_out(columns_);
  for (const auto& r : rows_) row_out(r);
}

std::string Table::save_csv(const std::string& dir, const std::string& name) const {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name + ".csv";
  std::ofstream f{path};
  HPN_CHECK_MSG(f.good(), "cannot open " << path);
  write_csv(f);
  return path;
}

}  // namespace hpn::metrics
