// Simulation-wide tracing: typed events in a bounded ring buffer.
//
// The paper's evidence is time-series telemetry — queue lengths (Figs 14,
// 15c), per-port imbalance (Fig 13), failover timelines (Fig 18) — and HPN
// itself leans on INT-based telemetry (§10). The Tracer is the simulator's
// equivalent: every layer (flowsim engines, control plane, collectives,
// training loop) records typed events into one ring buffer owned by the
// Simulator, and benches/tests read them back as event sequences or
// TimeSeries instead of hand-rolling their own sampling.
//
// Disabled (the default) it is a single branch on a bool per call site —
// nothing allocates, nothing records. Enabled, events land in a fixed-size
// ring (oldest overwritten first, drops counted), exportable as CSV or as
// Chrome trace_event JSON loadable in chrome://tracing / Perfetto.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "metrics/timeseries.h"

namespace hpn::metrics {

enum class TraceEventKind : std::uint8_t {
  // Flow lifecycle (event-driven + packet engines). a = FlowId.
  kFlowStart,    ///< value = flow size in bytes
  kFlowFinish,   ///< value = flow completion time in seconds
  kFlowAbort,    ///< value = bits left undelivered
  kFlowReroute,  ///< value = new hop count
  kFlowStall,    ///< rate hit zero on a down link; value = remaining bits
  kFlowResume,   ///< rate recovered after reroute/repair
  // Link state (control plane). a = LinkId.
  kLinkDown,
  kLinkUp,
  // Periodic per-link samples (fluid + packet engines, watched links only).
  kLinkUtilization,  ///< a = LinkId, value = delivered/capacity in [0,1]
  kQueueDepth,       ///< a = LinkId, value = queue depth in bytes
  // Packet-engine congestion control. a = LinkId (kPacketDrop: b = FlowId).
  kPfcPause,
  kPfcResume,
  kPacketDrop,
  // BGP-lite control plane. a = speaker NodeId, b = prefix (NIC NodeId).
  kBgpWithdraw,
  kBgpUpdate,
  kFibUpdate,
  // Collective spans (ccl). a = span id, b = world size; label = op name.
  kCollectiveBegin,  ///< value = per-GPU payload bytes
  kCollectiveEnd,
  // Training iteration spans (train). a = iteration number (1-based).
  kIterationBegin,
  kIterationEnd,  ///< value = iteration wall time in seconds
  // Cluster-scheduler job spans (cluster). a = job id, b = hosts allocated.
  kJobBegin,
  kJobEnd,  ///< value = job completion time (arrival -> finish) in seconds
};

std::string_view to_string(TraceEventKind kind);

inline constexpr std::uint32_t kTraceNoId = 0xFFFFFFFFu;

/// One recorded event. POD: `label` must be a static-storage string.
struct TraceEvent {
  TimePoint at;
  TraceEventKind kind{};
  std::uint32_t a = kTraceNoId;  ///< Primary entity (flow/link/node/span).
  std::uint32_t b = kTraceNoId;  ///< Secondary entity, if any.
  double value = 0.0;            ///< Kind-specific payload (see enum docs).
  const char* label = nullptr;   ///< Kind-specific name (collective op, ...).
};

class Tracer {
 public:
  /// Start recording into a ring of `capacity` events (~40 B each). A
  /// second enable() with a different capacity reallocates and clears.
  void enable(std::size_t capacity = 1u << 20);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Hot path: one predictable branch when disabled.
  void record(TimePoint at, TraceEventKind kind, std::uint32_t a = kTraceNoId,
              std::uint32_t b = kTraceNoId, double value = 0.0,
              const char* label = nullptr) {
    if (!enabled_) return;
    push(TraceEvent{at, kind, a, b, value, label});
  }

  // ---- Sampling filter ------------------------------------------------------
  // Discrete events are always recorded while enabled; *periodic samples*
  // (utilization, queue depth) are recorded only for watched links, so
  // enabling the tracer on a Pod-scale run stays cheap.
  void watch_link(LinkId link);
  void watch_all_links(bool on) { watch_all_ = on; }
  [[nodiscard]] bool watching(LinkId link) const {
    if (!enabled_) return false;
    if (watch_all_) return true;
    return link.index() < watched_.size() && watched_[link.index()] != 0;
  }

  /// Monotonic id for pairing begin/end span events.
  std::uint32_t begin_span() { return next_span_++; }

  // ---- Introspection --------------------------------------------------------
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events overwritten because the ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] bool empty() const { return total_ == 0; }
  void clear();

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Retained events of one kind (optionally one primary entity), in order.
  [[nodiscard]] std::vector<TraceEvent> events_of(
      TraceEventKind kind, std::uint32_t a = kTraceNoId) const;
  /// Periodic samples of `kind` for entity `a` as a TimeSeries — the bench
  /// replacement for hand-rolled queue/utilization sampling.
  [[nodiscard]] TimeSeries series(TraceEventKind kind, std::uint32_t a) const;

  // ---- Exporters ------------------------------------------------------------
  /// time_ns,kind,a,b,value,label — one line per retained event.
  void write_csv(std::ostream& os) const;
  /// Chrome trace_event JSON (chrome://tracing, Perfetto): spans become
  /// async begin/end pairs, samples become counter tracks, everything else
  /// becomes instant events.
  void write_chrome_json(std::ostream& os) const;
  /// Write one of the above to `path` ('.json' selects Chrome format).
  /// Returns false if the file cannot be opened.
  bool save(const std::string& path) const;

 private:
  void push(const TraceEvent& ev);

  bool enabled_ = false;
  bool watch_all_ = false;
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  ///< Events ever recorded; next slot = total_ % cap.
  std::uint32_t next_span_ = 1;
  std::vector<std::uint8_t> watched_;  ///< Dense by LinkId index.
};

}  // namespace hpn::metrics
