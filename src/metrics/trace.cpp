#include "metrics/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace hpn::metrics {

std::string_view to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kFlowStart: return "flow_start";
    case TraceEventKind::kFlowFinish: return "flow_finish";
    case TraceEventKind::kFlowAbort: return "flow_abort";
    case TraceEventKind::kFlowReroute: return "flow_reroute";
    case TraceEventKind::kFlowStall: return "flow_stall";
    case TraceEventKind::kFlowResume: return "flow_resume";
    case TraceEventKind::kLinkDown: return "link_down";
    case TraceEventKind::kLinkUp: return "link_up";
    case TraceEventKind::kLinkUtilization: return "link_util";
    case TraceEventKind::kQueueDepth: return "queue_depth";
    case TraceEventKind::kPfcPause: return "pfc_pause";
    case TraceEventKind::kPfcResume: return "pfc_resume";
    case TraceEventKind::kPacketDrop: return "packet_drop";
    case TraceEventKind::kBgpWithdraw: return "bgp_withdraw";
    case TraceEventKind::kBgpUpdate: return "bgp_update";
    case TraceEventKind::kFibUpdate: return "fib_update";
    case TraceEventKind::kCollectiveBegin: return "collective_begin";
    case TraceEventKind::kCollectiveEnd: return "collective_end";
    case TraceEventKind::kIterationBegin: return "iteration_begin";
    case TraceEventKind::kIterationEnd: return "iteration_end";
    case TraceEventKind::kJobBegin: return "job_begin";
    case TraceEventKind::kJobEnd: return "job_end";
  }
  return "unknown";
}

void Tracer::enable(std::size_t capacity) {
  HPN_CHECK_MSG(capacity > 0, "tracer needs a nonzero ring");
  if (ring_.size() != capacity) {
    ring_.assign(capacity, TraceEvent{});
    total_ = 0;
  }
  enabled_ = true;
}

void Tracer::push(const TraceEvent& ev) {
  if (ring_.empty()) ring_.assign(1u << 20, TraceEvent{});  // enable() skipped
  ring_[total_ % ring_.size()] = ev;
  ++total_;
}

void Tracer::watch_link(LinkId link) {
  HPN_CHECK(link.is_valid());
  if (watched_.size() <= link.index()) watched_.resize(link.index() + 1, 0);
  watched_[link.index()] = 1;
}

std::size_t Tracer::size() const {
  return static_cast<std::size_t>(std::min<std::uint64_t>(total_, ring_.size()));
}

std::uint64_t Tracer::dropped() const {
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

void Tracer::clear() {
  total_ = 0;
  next_span_ = 1;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::size_t start = static_cast<std::size_t>(total_ - n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::vector<TraceEvent> Tracer::events_of(TraceEventKind kind, std::uint32_t a) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events()) {
    if (ev.kind != kind) continue;
    if (a != kTraceNoId && ev.a != a) continue;
    out.push_back(ev);
  }
  return out;
}

TimeSeries Tracer::series(TraceEventKind kind, std::uint32_t a) const {
  TimeSeries ts{std::string{to_string(kind)} + ":" + std::to_string(a)};
  for (const TraceEvent& ev : events()) {
    if (ev.kind == kind && ev.a == a) ts.record(ev.at, ev.value);
  }
  return ts;
}

void Tracer::write_csv(std::ostream& os) const {
  os << "time_ns,kind,a,b,value,label\n";
  char num[32];
  for (const TraceEvent& ev : events()) {
    os << ev.at.as_nanos() << ',' << to_string(ev.kind) << ',';
    if (ev.a != kTraceNoId) os << ev.a;
    os << ',';
    if (ev.b != kTraceNoId) os << ev.b;
    std::snprintf(num, sizeof num, "%.9g", ev.value);
    os << ',' << num << ',' << (ev.label != nullptr ? ev.label : "") << '\n';
  }
}

namespace {

/// Microsecond timestamp for the chrome `ts` field.
void put_ts(std::ostream& os, TimePoint at) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(at.as_nanos()) / 1e3);
  os << buf;
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  // One process; tracks (tid) separate the layers so the timeline groups
  // flows, links, control plane, collectives and iterations.
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  char num[32];
  for (const TraceEvent& ev : events()) {
    if (!first) os << ",\n";
    first = false;
    const std::string_view kind = to_string(ev.kind);
    switch (ev.kind) {
      case TraceEventKind::kCollectiveBegin:
      case TraceEventKind::kCollectiveEnd:
      case TraceEventKind::kIterationBegin:
      case TraceEventKind::kIterationEnd:
      case TraceEventKind::kJobBegin:
      case TraceEventKind::kJobEnd: {
        const bool begin = ev.kind == TraceEventKind::kCollectiveBegin ||
                           ev.kind == TraceEventKind::kIterationBegin ||
                           ev.kind == TraceEventKind::kJobBegin;
        const bool iter = ev.kind == TraceEventKind::kIterationBegin ||
                          ev.kind == TraceEventKind::kIterationEnd;
        const bool job = ev.kind == TraceEventKind::kJobBegin ||
                         ev.kind == TraceEventKind::kJobEnd;
        os << "{\"name\":\"";
        if (ev.label != nullptr) {
          os << ev.label;
        } else {
          os << (job ? "job" : iter ? "iteration" : "collective");
        }
        if (iter || job) os << ' ' << ev.a;
        os << "\",\"cat\":\"" << (job ? "cluster" : iter ? "train" : "ccl")
           << "\",\"ph\":\"" << (begin ? 'b' : 'e') << "\",\"id\":" << ev.a
           << ",\"pid\":1,\"tid\":" << (job ? 4 : iter ? 1 : 2) << ",\"ts\":";
        put_ts(os, ev.at);
        os << "}";
        break;
      }
      case TraceEventKind::kLinkUtilization:
      case TraceEventKind::kQueueDepth: {
        std::snprintf(num, sizeof num, "%.6g", ev.value);
        os << "{\"name\":\"" << kind << ":link" << ev.a
           << "\",\"ph\":\"C\",\"pid\":1,\"ts\":";
        put_ts(os, ev.at);
        os << ",\"args\":{\"value\":" << num << "}}";
        break;
      }
      default: {
        std::snprintf(num, sizeof num, "%.6g", ev.value);
        os << "{\"name\":\"" << kind;
        if (ev.a != kTraceNoId) os << ' ' << ev.a;
        os << "\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":3,\"ts\":";
        put_ts(os, ev.at);
        os << ",\"args\":{\"value\":" << num;
        if (ev.b != kTraceNoId) os << ",\"b\":" << ev.b;
        os << "}}";
        break;
      }
    }
  }
  os << "\n]}\n";
}

bool Tracer::save(const std::string& path) const {
  std::ofstream f{path};
  if (!f.good()) return false;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    write_chrome_json(f);
  } else {
    write_csv(f);
  }
  return f.good();
}

}  // namespace hpn::metrics
