#include "metrics/registry.h"

namespace hpn::metrics {

Table Registry::snapshot(const std::string& title) const {
  Table t{title};
  t.columns({"metric", "value"});
  for (const auto& [name, c] : counters_) {
    t.add_row({name, std::to_string(c.value())});
  }
  for (const auto& [name, g] : gauges_) {
    t.add_row({name, Table::num(g.value(), 4)});
  }
  return t;
}

}  // namespace hpn::metrics
