// Named counters and gauges with snapshot export — the lightweight
// telemetry registry experiments hang their instrumentation on.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "metrics/table.h"

namespace hpn::metrics {

class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Owns counters/gauges by name; lookups create on first use so call sites
/// stay one-liners: `registry.counter("flows.completed").increment()`.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }

  [[nodiscard]] bool has_counter(const std::string& name) const {
    return counters_.count(name) > 0;
  }
  [[nodiscard]] bool has_gauge(const std::string& name) const {
    return gauges_.count(name) > 0;
  }

  /// All metrics as a (name, value) table, sorted by name.
  [[nodiscard]] Table snapshot(const std::string& title = "metrics") const;

  void reset() {
    counters_.clear();
    gauges_.clear();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
};

}  // namespace hpn::metrics
