// Sample statistics: running summaries, quantiles/CDFs, and histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace hpn::metrics {

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores all samples; supports exact quantiles and CDF export.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact quantile by linear interpolation, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  /// Fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;
  /// (value, cumulative fraction) pairs over all distinct sample points.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_points() const;
  [[nodiscard]] std::span<const double> sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range values clamp to the
/// edge bins so no sample is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  [[nodiscard]] double bin_hi(std::size_t i) const { return bin_lo(i) + width_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hpn::metrics
