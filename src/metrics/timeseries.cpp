#include "metrics/timeseries.h"

#include <algorithm>

#include "common/check.h"

namespace hpn::metrics {

void TimeSeries::record(TimePoint at, double value) {
  HPN_CHECK_MSG(points_.empty() || at >= points_.back().at,
                "time series must be recorded in order");
  points_.push_back({at, value});
}

namespace {

auto lower(const std::vector<TimeSeries::Point>& pts, TimePoint t) {
  return std::lower_bound(pts.begin(), pts.end(), t,
                          [](const TimeSeries::Point& p, TimePoint v) { return p.at < v; });
}

}  // namespace

double TimeSeries::mean_over(TimePoint from, TimePoint to) const {
  auto it = lower(points_, from);
  double sum = 0.0;
  std::size_t n = 0;
  for (; it != points_.end() && it->at < to; ++it) {
    sum += it->value;
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::max_over(TimePoint from, TimePoint to) const {
  auto it = lower(points_, from);
  double best = 0.0;
  bool any = false;
  for (; it != points_.end() && it->at < to; ++it) {
    best = any ? std::max(best, it->value) : it->value;
    any = true;
  }
  return best;
}

TimeSeries TimeSeries::resample(Duration window, WindowOp op) const {
  HPN_CHECK(window > Duration::zero());
  TimeSeries out{name_};
  if (points_.empty()) return out;
  TimePoint cursor = points_.front().at;
  const TimePoint end = points_.back().at;
  while (cursor <= end) {
    const TimePoint next = cursor + window;
    const double v = op == WindowOp::kMean ? mean_over(cursor, next) : max_over(cursor, next);
    out.record(cursor, v);
    cursor = next;
  }
  return out;
}

RunningStats TimeSeries::summary() const {
  RunningStats s;
  for (const auto& p : points_) s.add(p.value);
  return s;
}

}  // namespace hpn::metrics
