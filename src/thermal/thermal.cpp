#include "thermal/thermal.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hpn::thermal {

double chip_power_watts(Bandwidth capacity) {
  // Anchors (W): 3.2T:90, 6.4T:130, 12.8T:200, 25.6T:350, 51.2T:507.5
  // (= 350 x 1.45, the paper's +45%). Log-linear interpolation between
  // anchors; clamped outside.
  struct Anchor {
    double tbps;
    double watts;
  };
  static constexpr Anchor anchors[] = {
      {3.2, 90.0}, {6.4, 130.0}, {12.8, 200.0}, {25.6, 350.0}, {51.2, 507.5}};
  const double t = capacity.as_gbps() / 1000.0;
  HPN_CHECK_MSG(t > 0.0, "capacity must be positive");
  if (t <= anchors[0].tbps) return anchors[0].watts;
  for (std::size_t i = 1; i < std::size(anchors); ++i) {
    if (t <= anchors[i].tbps) {
      const double f = (std::log2(t) - std::log2(anchors[i - 1].tbps)) /
                       (std::log2(anchors[i].tbps) - std::log2(anchors[i - 1].tbps));
      return anchors[i - 1].watts + f * (anchors[i].watts - anchors[i - 1].watts);
    }
  }
  return anchors[std::size(anchors) - 1].watts;
}

CoolingSolution heat_pipe() {
  return CoolingSolution{.name = "heat-pipe", .theta_ja = 70.0 / 380.0};
}

CoolingSolution original_vapor_chamber() {
  return CoolingSolution{.name = "original-VC", .theta_ja = 70.0 / 470.0};
}

CoolingSolution optimized_vapor_chamber() {
  CoolingSolution vc = original_vapor_chamber();
  vc.name = "optimized-VC";
  vc.theta_ja /= 1.15;  // +15% cooling efficiency (§5.1)
  return vc;
}

double steady_junction_temp(double power_w, const CoolingSolution& cooling,
                            const ChipThermalSpec& spec) {
  return spec.ambient_c + power_w * cooling.theta_ja;
}

double allowed_operation_power(const CoolingSolution& cooling, const ChipThermalSpec& spec) {
  return (spec.tjmax_c - spec.ambient_c) / cooling.theta_ja;
}

ChipThermalState::ChipThermalState(CoolingSolution cooling, ChipThermalSpec spec)
    : cooling_{std::move(cooling)}, spec_{spec}, temp_c_{spec.ambient_c} {}

double ChipThermalState::step(double power_w, Duration dt) {
  HPN_CHECK(dt > Duration::zero());
  const double effective_power = tripped_ ? 0.0 : power_w;
  const double target = steady_junction_temp(effective_power, cooling_, spec_);
  const double alpha = 1.0 - std::exp(-dt.as_seconds() / cooling_.tau.as_seconds());
  temp_c_ += (target - temp_c_) * alpha;
  if (!tripped_ && temp_c_ >= spec_.tjmax_c) {
    tripped_ = true;  // over-temperature protection: all transmission stops
  }
  return temp_c_;
}

bool survives_full_load(const CoolingSolution& cooling, Bandwidth chip,
                        const ChipThermalSpec& spec) {
  return chip_power_watts(chip) <= allowed_operation_power(cooling, spec);
}

}  // namespace hpn::thermal
