// Switch-chip power and cooling model (§5.1, Figs 9-10).
//
// The 51.2T single chip draws ~45% more power than the 25.6T generation
// while Tjmax stays at 105°C. Cooling solutions are lumped thermal
// resistances junction->ambient; a first-order RC tracks junction
// temperature under a load profile and trips over-temperature protection
// at Tjmax (shutting down all data transmission — the outage the custom
// vapor-chamber design exists to prevent). The optimized VC moves more
// wicked pillars to the chip's hot center, raising cooling efficiency 15%.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace hpn::thermal {

/// Fig 9a: per-generation chip power. Anchored to the paper's facts: the
/// 51.2T part draws 45% more than the 25.6T part; earlier generations
/// follow the same sub-linear-per-bandwidth trend.
double chip_power_watts(Bandwidth capacity);

struct CoolingSolution {
  std::string name;
  /// Junction-to-ambient thermal resistance (°C per W).
  double theta_ja;
  /// Thermal time constant of heat sink + chip mass.
  Duration tau = Duration::seconds(20.0);
};

CoolingSolution heat_pipe();
CoolingSolution original_vapor_chamber();
/// §5.1: denser wicked pillars at the chip center -> +15% cooling
/// efficiency over the original VC.
CoolingSolution optimized_vapor_chamber();

struct ChipThermalSpec {
  double tjmax_c = 105.0;
  double ambient_c = 35.0;
};

/// Steady-state junction temperature at constant power.
double steady_junction_temp(double power_w, const CoolingSolution& cooling,
                            const ChipThermalSpec& spec = {});

/// Maximum continuously-sustainable power ("allowed operation power" in
/// Fig 9b).
double allowed_operation_power(const CoolingSolution& cooling,
                               const ChipThermalSpec& spec = {});

/// First-order junction-temperature integrator with over-temperature trip.
class ChipThermalState {
 public:
  ChipThermalState(CoolingSolution cooling, ChipThermalSpec spec = {});

  /// Advance by dt at the given power draw. Returns current temperature.
  /// Once tripped, the chip stays down (power is forced to idle).
  double step(double power_w, Duration dt);

  [[nodiscard]] double temperature_c() const { return temp_c_; }
  [[nodiscard]] bool tripped() const { return tripped_; }

 private:
  CoolingSolution cooling_;
  ChipThermalSpec spec_;
  double temp_c_;
  bool tripped_ = false;
};

/// Fig 9b in one call: does this cooling solution survive the 51.2T chip at
/// full load indefinitely?
bool survives_full_load(const CoolingSolution& cooling,
                        Bandwidth chip = Bandwidth::tbps(51.2),
                        const ChipThermalSpec& spec = {});

}  // namespace hpn::thermal
