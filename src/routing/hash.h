// ECMP hashing as production switch ASICs do it — including the failure
// mode this paper is about.
//
// Hash polarization (§2.2): a flow's five-tuple is hashed at every tier; if
// switches share the same hash function (or draw from a small vendor
// family), the hash at tier k+1 is *correlated* with the choice already
// made at tier k, so entire subtrees of equal-cost paths are never used.
// We model a switch's hash as CRC32(five_tuple) mixed with a per-switch
// seed; the SeedPolicy controls how correlated seeds are across the fleet.
//
// §7's remedy at the Core layer is also here: per-port hashing makes the
// egress choice a pure function of (ingress port, destination), so the
// five-tuple — already fully hashed below — stops mattering.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "common/ids.h"

namespace hpn::routing {

/// RoCEv2 flow identity. IPs are synthetic (one per NIC); the UDP source
/// port is the entropy knob RDMA NICs expose for path control (RePaC).
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 4791;  ///< RoCEv2 well-known port.
  std::uint8_t protocol = 17;     ///< UDP.

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
};

/// Table-driven CRC32 (IEEE 802.3 polynomial) — the hash family commodity
/// switching ASICs actually use for ECMP.
std::uint32_t crc32(std::span<const std::uint8_t> data);
std::uint32_t hash_tuple(const FiveTuple& ft, std::uint32_t seed);

enum class SeedPolicy : std::uint8_t {
  /// Every switch uses the same seed — worst-case polarization, the
  /// "cascading hashing" of §2.2.
  kIdentical,
  /// Seeds drawn from a 4-member family (same-vendor fleet): partial
  /// decorrelation, still visibly polarized.
  kVendorFamily,
  /// Independent per-switch seeds — the idealized no-polarization baseline.
  kPerSwitch,
};

std::string_view to_string(SeedPolicy policy);

struct HashConfig {
  SeedPolicy seeds = SeedPolicy::kIdentical;
  /// §7: Core switches forward on (ingress port, destination) alone.
  bool per_port_at_core = false;
  std::uint32_t salt = 0x48504E;  ///< Fleet-wide salt ("HPN").
};

class EcmpHasher {
 public:
  explicit EcmpHasher(HashConfig config = {}) : config_{config} {}

  [[nodiscard]] const HashConfig& config() const { return config_; }

  /// Seed a given switch uses, per the policy.
  [[nodiscard]] std::uint32_t seed_for(NodeId node) const;

  /// Pick one of `n` equal-cost candidates for `ft` at `node`.
  [[nodiscard]] std::size_t select(const FiveTuple& ft, NodeId node, std::size_t n) const;

  /// Core-switch variant: when per_port_at_core is on, the choice is a pure
  /// function of (ingress_port, dst_ip) — five-tuple irrelevant (§7).
  [[nodiscard]] std::size_t select_at_core(const FiveTuple& ft, NodeId node,
                                           std::uint16_t ingress_port, std::size_t n) const;

 private:
  HashConfig config_;
};

}  // namespace hpn::routing
