#include "routing/repac.h"

#include <algorithm>

namespace hpn::routing {

std::optional<std::uint16_t> RePaC::steer_onto(LinkId first_hop, NodeId dst, FiveTuple base,
                                               LinkId target_link, int budget) {
  for (int i = 0; i < budget; ++i) {
    ++probes_;
    const Path p = predict(first_hop, dst, base);
    if (!p.valid()) return std::nullopt;  // unreachable: no sport will help
    if (std::find(p.links.begin(), p.links.end(), target_link) != p.links.end()) {
      return base.src_port;
    }
    ++base.src_port;
  }
  return std::nullopt;
}

std::optional<std::uint16_t> RePaC::steer_away(LinkId first_hop, NodeId dst, FiveTuple base,
                                               const std::set<LinkId>& avoid, int budget) {
  for (int i = 0; i < budget; ++i) {
    ++probes_;
    const Path p = predict(first_hop, dst, base);
    if (!p.valid()) return std::nullopt;
    const bool clean = std::none_of(p.links.begin(), p.links.end(),
                                    [&](LinkId l) { return avoid.count(l) > 0; });
    if (clean) return base.src_port;
    ++base.src_port;
  }
  return std::nullopt;
}

}  // namespace hpn::routing
