#include "routing/hash.h"

#include <array>

#include "common/check.h"

namespace hpn::routing {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t hash_tuple(const FiveTuple& ft, std::uint32_t seed) {
  std::array<std::uint8_t, 13> buf{};
  auto put32 = [&buf](std::size_t at, std::uint32_t v) {
    buf[at] = static_cast<std::uint8_t>(v);
    buf[at + 1] = static_cast<std::uint8_t>(v >> 8);
    buf[at + 2] = static_cast<std::uint8_t>(v >> 16);
    buf[at + 3] = static_cast<std::uint8_t>(v >> 24);
  };
  put32(0, ft.src_ip);
  put32(4, ft.dst_ip);
  buf[8] = static_cast<std::uint8_t>(ft.src_port);
  buf[9] = static_cast<std::uint8_t>(ft.src_port >> 8);
  buf[10] = static_cast<std::uint8_t>(ft.dst_port);
  buf[11] = static_cast<std::uint8_t>(ft.dst_port >> 8);
  buf[12] = ft.protocol;
  // CRC alone is linear in its input, so XORing a seed into the message
  // would only XOR the output by a constant — all "different" seeds would
  // stay perfectly correlated. Real ASICs select among rotated/permuted
  // hash variants; we model that with a non-linear (murmur3-style) seed
  // finalizer on top of the tuple CRC.
  std::uint32_t h = crc32(buf) ^ seed;
  h ^= h >> 16;
  h *= 0x85EBCA6Bu;
  h ^= h >> 13;
  h *= 0xC2B2AE35u;
  h ^= h >> 16;
  return h;
}

std::string_view to_string(SeedPolicy policy) {
  switch (policy) {
    case SeedPolicy::kIdentical: return "identical";
    case SeedPolicy::kVendorFamily: return "vendor-family";
    case SeedPolicy::kPerSwitch: return "per-switch";
  }
  return "?";
}

std::uint32_t EcmpHasher::seed_for(NodeId node) const {
  switch (config_.seeds) {
    case SeedPolicy::kIdentical:
      return config_.salt;
    case SeedPolicy::kVendorFamily:
      // Four firmware variants in the fleet.
      return config_.salt + node.value() % 4;
    case SeedPolicy::kPerSwitch:
      return config_.salt ^ (node.value() * 0x9E3779B9u + 0x7F4A7C15u);
  }
  return config_.salt;
}

std::size_t EcmpHasher::select(const FiveTuple& ft, NodeId node, std::size_t n) const {
  HPN_CHECK(n > 0);
  if (n == 1) return 0;
  return hash_tuple(ft, seed_for(node)) % n;
}

std::size_t EcmpHasher::select_at_core(const FiveTuple& ft, NodeId node,
                                       std::uint16_t ingress_port, std::size_t n) const {
  HPN_CHECK(n > 0);
  if (n == 1) return 0;
  if (!config_.per_port_at_core) return select(ft, node, n);
  // Pure (ingress port, destination prefix) mapping — no five-tuple terms.
  const std::uint32_t mixed =
      (static_cast<std::uint32_t>(ingress_port) * 2654435761u) ^ (ft.dst_ip * 40503u) ^
      seed_for(node);
  return mixed % n;
}

}  // namespace hpn::routing
