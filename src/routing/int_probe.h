// INT-based wiring probes (§10).
//
// "To eradicate wiring mistakes before end-to-end testing, we employ
// INT-based probes to check that each hop (switchID and PortID) in paths
// precisely aligns with HPN's blueprint definition." A probe packet records
// per-hop telemetry (switch id, ingress port, egress port); comparing those
// records against the architectural blueprint catches cross-plane and
// cross-rail miswires that static inventory checks can miss.
#pragma once

#include <string>
#include <vector>

#include "routing/router.h"
#include "topo/cluster.h"

namespace hpn::routing {

struct IntHopRecord {
  NodeId switch_id;
  std::uint16_t ingress_port = 0;
  std::uint16_t egress_port = 0;
  topo::NodeKind kind{};
  std::int16_t plane = -1;
  std::int16_t rail = -1;
};

/// Run a probe along a traced path, collecting one record per *switch* hop
/// (endpoints don't add INT metadata).
std::vector<IntHopRecord> int_probe(const topo::Topology& topology, const Path& path);

/// Blueprint conformance of a probed path on a dual-plane HPN fabric:
///  * every switch hop sits in the plane of the chosen source port;
///  * ToR hops serve the rail of the source NIC (rail-optimized tier1);
///  * the tier sequence is valid (ToR [Agg [Core Agg] ToR]).
/// Returns human-readable violations; empty = conforming.
std::vector<std::string> check_blueprint(const topo::Cluster& cluster,
                                         const std::vector<IntHopRecord>& records,
                                         int expected_plane, int expected_rail);

}  // namespace hpn::routing
