// Shard classification of routed paths.
//
// The PDES layer (sim/pdes.h) partitions the fabric into shards; a routed
// path then alternates between shard-local stretches and boundary hops. A
// chunk hands off between consecutive links at the shared node, so the
// handoff after link i crosses shards exactly when link i is a boundary
// link of the partition. This classifier turns Router::trace output into
// that shard itinerary — benches report how much of a workload's traffic
// is cross-shard (the honest denominator for any speedup claim), and the
// engine layer uses the same rule to decide local-schedule vs channel post.
#pragma once

#include <span>
#include <vector>

#include "routing/router.h"
#include "topo/partition.h"

namespace hpn::routing {

struct ShardCrossing {
  std::size_t hop = 0;  ///< Index into Path::links of the boundary link.
  LinkId link;
  int from = 0;  ///< Shard owning the boundary link.
  int to = 0;    ///< Shard owning the next hop (or the destination node).
};

struct PathShardProfile {
  int home = 0;  ///< Shard owning the first hop (where injection happens).
  std::vector<ShardCrossing> crossings;
  [[nodiscard]] bool local() const { return crossings.empty(); }
};

/// Classify one path against a partition. The path must be valid and every
/// link id must belong to the partitioned topology.
[[nodiscard]] PathShardProfile classify_path(const topo::Partition& part,
                                             const topo::Topology& topo,
                                             const Path& path);

/// Aggregate over a workload's paths (invalid paths are skipped).
struct ShardTrafficStats {
  std::size_t paths = 0;        ///< Valid paths classified.
  std::size_t local_paths = 0;  ///< Paths that never leave their home shard.
  std::size_t crossings = 0;    ///< Total boundary handoffs across all paths.
  [[nodiscard]] double local_fraction() const {
    return paths == 0 ? 1.0 : static_cast<double>(local_paths) /
                                  static_cast<double>(paths);
  }
};

[[nodiscard]] ShardTrafficStats classify_paths(const topo::Partition& part,
                                               const topo::Topology& topo,
                                               std::span<const Path> paths);

}  // namespace hpn::routing
