#include "routing/shard_classify.h"

#include "common/check.h"

namespace hpn::routing {

PathShardProfile classify_path(const topo::Partition& part,
                               const topo::Topology& topo, const Path& path) {
  HPN_CHECK(path.valid());
  PathShardProfile profile;
  profile.home = part.shard_of_link(path.links.front());
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    const LinkId link = path.links[i];
    if (!part.is_boundary(link)) continue;
    // The handoff at dst(link) lands on dst's shard: the next link's owner,
    // or — after the final hop — the shard receiving the delivery.
    profile.crossings.push_back(ShardCrossing{
        i, link, part.shard_of_link(link),
        part.shard_of_node(topo.link(link).dst)});
  }
  return profile;
}

ShardTrafficStats classify_paths(const topo::Partition& part,
                                 const topo::Topology& topo,
                                 std::span<const Path> paths) {
  ShardTrafficStats stats;
  for (const Path& p : paths) {
    if (!p.valid()) continue;
    const PathShardProfile profile = classify_path(part, topo, p);
    ++stats.paths;
    if (profile.local()) ++stats.local_paths;
    stats.crossings += profile.crossings.size();
  }
  return stats;
}

}  // namespace hpn::routing
