// Equal-cost multi-path routing over a Topology.
//
// For each destination we BFS a hop-count field over *up* links; at any node
// the ECMP group toward a destination is the set of up out-links whose far
// end is strictly closer. Path tracing then applies the configured switch
// hash at every hop — so hash polarization, per-port core hashing and
// dual-plane path pinning all emerge from topology + hash policy, never
// from special cases.
//
// Distance fields are cached per destination and invalidated wholesale when
// link state changes (BGP reconvergence is modeled by the ctrl layer; the
// router reflects the post-convergence fabric).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "routing/hash.h"
#include "topo/topology.h"

namespace hpn::routing {

struct Path {
  std::vector<LinkId> links;
  [[nodiscard]] bool valid() const { return !links.empty(); }
  [[nodiscard]] std::size_t hops() const { return links.size(); }
};

class Router {
 public:
  Router(const topo::Topology& topology, HashConfig hash_config = {});

  [[nodiscard]] const EcmpHasher& hasher() const { return hasher_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topo_; }

  /// Hop distance from `from` to `dst` over up links; -1 if unreachable.
  [[nodiscard]] int distance(NodeId from, NodeId dst);

  /// The ECMP group at `node` toward `dst`: all up out-links one hop closer.
  [[nodiscard]] std::vector<LinkId> ecmp_links(NodeId node, NodeId dst);

  /// Trace the exact path flow `ft` takes from `src` to `dst`, applying the
  /// switch hash at every fan-out. Empty path if unreachable.
  [[nodiscard]] Path trace(NodeId src, NodeId dst, const FiveTuple& ft);

  /// Trace with the first hop pinned (the host already chose a NIC egress
  /// port — this is how dual-ToR port/plane selection enters routing).
  [[nodiscard]] Path trace_via(LinkId first_hop, NodeId dst, const FiveTuple& ft);

  /// Drop all cached distance fields; call after any link/topology change.
  void invalidate();

  /// Monotone counter bumped by invalidate() (lets callers cache on top).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] std::size_t cached_destinations() const { return fields_.size(); }

 private:
  /// Distance (in hops) from every node to `dst`; -1 if unreachable.
  const std::vector<std::int32_t>& field_for(NodeId dst);

  const topo::Topology* topo_;
  EcmpHasher hasher_;
  std::unordered_map<NodeId, std::vector<std::int32_t>> fields_;
  std::uint64_t epoch_ = 0;
};

}  // namespace hpn::routing
