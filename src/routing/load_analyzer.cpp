#include "routing/load_analyzer.h"

#include <cmath>

#include "common/check.h"

namespace hpn::routing {

void LoadAnalyzer::run(const std::vector<FlowSpec>& flows) {
  loads_.clear();
  unroutable_ = 0;
  for (const FlowSpec& f : flows) {
    const Path p = f.first_hop.is_valid() ? router_->trace_via(f.first_hop, f.dst, f.tuple)
                                          : router_->trace(f.src, f.dst, f.tuple);
    if (!p.valid()) {
      ++unroutable_;
      continue;
    }
    for (const LinkId l : p.links) {
      LinkLoad& ll = loads_[l];
      ll.link = l;
      ll.load += f.weight;
      ll.flow_count += 1;
    }
  }
}

std::vector<LinkLoad> LoadAnalyzer::loads_on(topo::LinkKind link_kind,
                                             topo::NodeKind src_kind) const {
  const topo::Topology& t = router_->topology();
  std::vector<LinkLoad> out;
  for (const auto& [lid, ll] : loads_) {
    const topo::Link& l = t.link(lid);
    if (l.kind == link_kind && t.node(l.src).kind == src_kind) out.push_back(ll);
  }
  return out;
}

double LoadAnalyzer::imbalance(const std::vector<LinkLoad>& loads,
                               std::size_t candidate_links) {
  HPN_CHECK(candidate_links > 0);
  double total = 0.0, peak = 0.0;
  for (const LinkLoad& ll : loads) {
    total += ll.load;
    peak = std::max(peak, ll.load);
  }
  if (total == 0.0) return 1.0;
  const double mean = total / static_cast<double>(candidate_links);
  return peak / mean;
}

double LoadAnalyzer::max_load(const std::vector<LinkLoad>& loads) {
  double peak = 0.0;
  for (const LinkLoad& ll : loads) peak = std::max(peak, ll.load);
  return peak;
}

double LoadAnalyzer::effective_entropy(const std::vector<LinkLoad>& loads,
                                       std::size_t candidate_links) {
  HPN_CHECK(candidate_links > 1);
  double total = 0.0;
  for (const LinkLoad& ll : loads) total += ll.load;
  if (total == 0.0) return 0.0;
  double h = 0.0;
  for (const LinkLoad& ll : loads) {
    if (ll.load <= 0.0) continue;
    const double p = ll.load / total;
    h -= p * std::log(p);
  }
  return h / std::log(static_cast<double>(candidate_links));
}

}  // namespace hpn::routing
