#include "routing/int_probe.h"

namespace hpn::routing {

std::vector<IntHopRecord> int_probe(const topo::Topology& topology, const Path& path) {
  std::vector<IntHopRecord> records;
  for (std::size_t i = 0; i + 1 < path.links.size(); ++i) {
    const topo::Link& in = topology.link(path.links[i]);
    const topo::Link& out = topology.link(path.links[i + 1]);
    const topo::Node& sw = topology.node(in.dst);
    IntHopRecord rec;
    rec.switch_id = sw.id;
    rec.ingress_port = in.dst_port;
    rec.egress_port = out.src_port;
    rec.kind = sw.kind;
    rec.plane = sw.loc.plane;
    rec.rail = sw.loc.rail;
    records.push_back(rec);
  }
  return records;
}

std::vector<std::string> check_blueprint(const topo::Cluster& cluster,
                                         const std::vector<IntHopRecord>& records,
                                         int expected_plane, int expected_rail) {
  std::vector<std::string> out;
  for (const IntHopRecord& rec : records) {
    const std::string name = cluster.topo.node(rec.switch_id).name;
    if (rec.plane >= 0 && rec.plane != expected_plane) {
      out.push_back("hop " + name + " in plane " + std::to_string(rec.plane) +
                    ", blueprint expects plane " + std::to_string(expected_plane));
    }
    if (rec.kind == topo::NodeKind::kTor && rec.rail >= 0 && rec.rail != expected_rail) {
      out.push_back("ToR hop " + name + " serves rail " + std::to_string(rec.rail) +
                    ", blueprint expects rail " + std::to_string(expected_rail));
    }
  }
  // Tier sequence: ToR (Agg (Core Agg)?)? ToR — i.e. kinds must be a
  // palindrome of the allowed ladder.
  const auto kind_rank = [](topo::NodeKind k) {
    switch (k) {
      case topo::NodeKind::kTor: return 1;
      case topo::NodeKind::kAgg: return 2;
      case topo::NodeKind::kCore: return 3;
      default: return 0;
    }
  };
  bool descending = false;
  for (std::size_t i = 1; i < records.size(); ++i) {
    const int prev = kind_rank(records[i - 1].kind);
    const int cur = kind_rank(records[i].kind);
    if (prev == 0 || cur == 0) {
      out.push_back("non-switch node in the probed fabric path");
      continue;
    }
    if (cur > prev && descending) {
      out.push_back("invalid tier sequence: path climbs again after descending");
    }
    if (cur < prev) descending = true;
  }
  return out;
}

}  // namespace hpn::routing
