// RePaC-style relative path control (Zhang et al., ATC'21; §6.1).
//
// Production RDMA gives the host one honest knob: the UDP source port.
// Because hashing is deterministic and RePaC "reprints the exact hash
// results in each switch", a host can *solve for* a source port that steers
// a flow onto a chosen equal-cost link — no switch modification needed.
// This utility does exactly that over our Router: predict the path of a
// candidate tuple, or search the sport space for one that (a) traverses a
// target link or (b) avoids a set of congested/failed links.
#pragma once

#include <optional>
#include <set>

#include "routing/router.h"

namespace hpn::routing {

class RePaC {
 public:
  explicit RePaC(Router& router) : router_{&router} {}

  /// "Reprint the hash": the exact path this tuple would take.
  [[nodiscard]] Path predict(LinkId first_hop, NodeId dst, const FiveTuple& tuple) {
    return router_->trace_via(first_hop, dst, tuple);
  }

  /// Find a source port (searching from base.src_port) whose path crosses
  /// `target_link`. nullopt if the budget runs out or no path exists.
  std::optional<std::uint16_t> steer_onto(LinkId first_hop, NodeId dst, FiveTuple base,
                                          LinkId target_link, int budget = 4096);

  /// Find a source port whose path avoids every link in `avoid` (e.g. links
  /// the host-switch collaboration system reported congested or failing).
  std::optional<std::uint16_t> steer_away(LinkId first_hop, NodeId dst, FiveTuple base,
                                          const std::set<LinkId>& avoid, int budget = 4096);

  [[nodiscard]] int probes_used() const { return probes_; }

 private:
  Router* router_;
  int probes_ = 0;
};

}  // namespace hpn::routing
