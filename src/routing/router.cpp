#include "routing/router.h"

#include <deque>

#include "common/check.h"

namespace hpn::routing {

namespace {

/// Only switches forward through-traffic; GPUs/NICs/NVSwitches/hosts can
/// originate and terminate but never transit (host relay for rail-only
/// designs is an *explicit* ccl-layer action, not a routing artifact).
bool can_transit(topo::NodeKind kind) {
  switch (kind) {
    case topo::NodeKind::kTor:
    case topo::NodeKind::kAgg:
    case topo::NodeKind::kCore:
      return true;
    default:
      return false;
  }
}

}  // namespace

Router::Router(const topo::Topology& topology, HashConfig hash_config)
    : topo_{&topology}, hasher_{hash_config} {}

const std::vector<std::int32_t>& Router::field_for(NodeId dst) {
  auto it = fields_.find(dst);
  if (it != fields_.end()) return it->second;

  std::vector<std::int32_t> dist(topo_->node_count(), -1);
  dist[dst.index()] = 0;
  std::deque<NodeId> frontier{dst};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (u != dst && !can_transit(topo_->node(u).kind)) continue;
    const std::int32_t du = dist[u.index()];
    // Traverse in-links of u: for each out-link u->v, the reverse v->u is
    // the edge a packet at v would actually use, so it must be up.
    for (const LinkId lid : topo_->out_links(u)) {
      const topo::Link& l = topo_->link(lid);
      if (!topo_->link(l.reverse).up) continue;
      if (dist[l.dst.index()] != -1) continue;
      dist[l.dst.index()] = du + 1;
      frontier.push_back(l.dst);
    }
  }
  return fields_.emplace(dst, std::move(dist)).first->second;
}

int Router::distance(NodeId from, NodeId dst) {
  return field_for(dst)[from.index()];
}

std::vector<LinkId> Router::ecmp_links(NodeId node, NodeId dst) {
  const auto& dist = field_for(dst);
  const std::int32_t here = dist[node.index()];
  std::vector<LinkId> out;
  if (here <= 0) return out;  // at destination or unreachable
  for (const LinkId lid : topo_->out_links(node)) {
    const topo::Link& l = topo_->link(lid);
    if (!l.up) continue;
    if (dist[l.dst.index()] == here - 1) out.push_back(lid);
  }
  return out;
}

Path Router::trace(NodeId src, NodeId dst, const FiveTuple& ft) {
  Path path;
  NodeId at = src;
  std::uint16_t ingress_port = 0;
  const std::size_t hop_limit = 32;
  while (at != dst) {
    const auto candidates = ecmp_links(at, dst);
    if (candidates.empty()) return Path{};  // unreachable
    const topo::Node& node = topo_->node(at);
    const std::size_t pick =
        node.kind == topo::NodeKind::kCore
            ? hasher_.select_at_core(ft, at, ingress_port, candidates.size())
            : hasher_.select(ft, at, candidates.size());
    const LinkId chosen = candidates[pick];
    path.links.push_back(chosen);
    const topo::Link& l = topo_->link(chosen);
    ingress_port = l.dst_port;
    at = l.dst;
    HPN_CHECK_MSG(path.links.size() <= hop_limit, "routing loop tracing to dst");
  }
  return path;
}

Path Router::trace_via(LinkId first_hop, NodeId dst, const FiveTuple& ft) {
  const topo::Link& first = topo_->link(first_hop);
  if (!first.up) return Path{};
  if (first.dst == dst) return Path{{first_hop}};
  // The remainder must make progress from the pinned hop's far end.
  if (distance(first.dst, dst) < 0) return Path{};
  Path rest = trace(first.dst, dst, ft);
  if (!rest.valid()) return Path{};
  Path out;
  out.links.reserve(rest.links.size() + 1);
  out.links.push_back(first_hop);
  out.links.insert(out.links.end(), rest.links.begin(), rest.links.end());
  return out;
}

void Router::invalidate() {
  fields_.clear();
  ++epoch_;
}

}  // namespace hpn::routing
