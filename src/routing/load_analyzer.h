// Static load analysis: trace a set of flows and report how evenly their
// paths spread over equal-cost links. Quantifies hash polarization without
// running the full fluid simulator (the Fig 12/13 mechanism, and Table 1's
// "search space" claims are checked against this).
#pragma once

#include <unordered_map>
#include <vector>

#include "routing/router.h"

namespace hpn::routing {

struct FlowSpec {
  NodeId src;
  NodeId dst;
  FiveTuple tuple;
  double weight = 1.0;  ///< Relative offered load (elephant vs mouse).
  /// When set, the first hop (the NIC's egress port) is pinned instead of
  /// hashed — how ccl-planned connections enter the fabric.
  LinkId first_hop = LinkId::invalid();
};

struct LinkLoad {
  LinkId link;
  double load = 0.0;     ///< Sum of weights of flows crossing the link.
  int flow_count = 0;
};

class LoadAnalyzer {
 public:
  explicit LoadAnalyzer(Router& router) : router_{&router} {}

  /// Trace all flows and accumulate per-link load. Unroutable flows are
  /// counted and skipped.
  void run(const std::vector<FlowSpec>& flows);

  [[nodiscard]] const std::unordered_map<LinkId, LinkLoad>& loads() const { return loads_; }
  [[nodiscard]] int unroutable() const { return unroutable_; }

  /// Loads restricted to links of one kind whose source node is one kind
  /// (e.g. fabric links leaving ToRs = the uplinks ECMP spreads over).
  [[nodiscard]] std::vector<LinkLoad> loads_on(topo::LinkKind link_kind,
                                               topo::NodeKind src_kind) const;

  /// max/mean load over the given links (1.0 = perfectly even). Links with
  /// zero load that belong to the candidate set still count in the mean —
  /// unused equal-cost paths are the polarization signature.
  static double imbalance(const std::vector<LinkLoad>& loads, std::size_t candidate_links);

  /// Heaviest single link (in flow-weight units) — the collision metric:
  /// 1.0 means no elephant ever shares a link with another.
  static double max_load(const std::vector<LinkLoad>& loads);

  /// Normalized entropy of the load distribution in [0,1]; 1 = all
  /// candidate links equally used, ->0 = load collapses onto few links.
  static double effective_entropy(const std::vector<LinkLoad>& loads,
                                  std::size_t candidate_links);

 private:
  Router* router_;
  std::unordered_map<LinkId, LinkLoad> loads_;
  int unroutable_ = 0;
};

}  // namespace hpn::routing
