// Minimal leveled logger. Off by default (simulations are hot loops); bench
// and example binaries raise the level for narrative output.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace hpn {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

LogLevel log_level();
void set_log_level(LogLevel level);
std::string_view to_string(LogLevel level);

namespace detail {
void emit_log(LogLevel level, std::string_view msg);
}

}  // namespace hpn

#define HPN_LOG(level, stream_expr)                                      \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::hpn::log_level())) { \
      std::ostringstream hpn_log_os_;                                    \
      hpn_log_os_ << stream_expr;                                        \
      ::hpn::detail::emit_log(level, hpn_log_os_.str());                 \
    }                                                                    \
  } while (false)

#define HPN_TRACE(stream_expr) HPN_LOG(::hpn::LogLevel::kTrace, stream_expr)
#define HPN_DEBUG(stream_expr) HPN_LOG(::hpn::LogLevel::kDebug, stream_expr)
#define HPN_INFO(stream_expr) HPN_LOG(::hpn::LogLevel::kInfo, stream_expr)
#define HPN_WARN(stream_expr) HPN_LOG(::hpn::LogLevel::kWarn, stream_expr)
#define HPN_ERROR(stream_expr) HPN_LOG(::hpn::LogLevel::kError, stream_expr)
