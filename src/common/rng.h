// Deterministic random number generation. Every stochastic component takes
// an explicit Rng (or a seed) so whole-cluster runs replay bit-identically.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace hpn {

namespace detail {

/// splitmix64 finalizer (Vigna): a bijective avalanche mix, so inputs that
/// differ in a single low bit come out looking independent.
constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace detail

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  /// Derive an independent child stream (e.g. one per host) so adding a
  /// consumer does not perturb the draws seen by others.
  ///
  /// The parent draw and the golden-ratio-weighted salt are combined and
  /// then run through a splitmix64 finalizer. The finalizer matters: the
  /// raw combination alone made `fork(0)` a no-op xor (the child seed *was*
  /// the parent's next draw, so `fork(0)` collided with `Rng{next_u64()}`)
  /// and gave adjacent salts child seeds a single golden-ratio stride
  /// apart — exactly the kind of structured seed set mt19937_64 seeding is
  /// weak against.
  [[nodiscard]] Rng fork(std::uint64_t salt) {
    return Rng{detail::splitmix64_mix(engine_() ^ (salt * 0x9E3779B97F4A7C15ULL))};
  }

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument{"Rng::uniform_index: n == 0"};
    return std::uniform_int_distribution<std::uint64_t>{0, n - 1}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

  /// Log-normal with the given *linear-scale* median and sigma of ln(x).
  double lognormal(double median, double sigma) {
    return std::lognormal_distribution<double>{std::log(median), sigma}(engine_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution{p}(engine_); }

  std::int64_t poisson(double mean) {
    return std::poisson_distribution<std::int64_t>{mean}(engine_);
  }

  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[uniform_index(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[uniform_index(items.size())];
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hpn
