#include "common/units.h"

#include <cinttypes>
#include <cstdio>

namespace hpn {
namespace {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
std::string format(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}
#pragma GCC diagnostic pop

}  // namespace

std::string to_string(Duration d) {
  if (d.is_infinite()) return "inf";
  const std::int64_t ns = d.as_nanos();
  const std::int64_t mag = ns < 0 ? -ns : ns;
  if (mag >= 1'000'000'000) return format("%.3fs", d.as_seconds());
  if (mag >= 1'000'000) return format("%.3fms", d.as_millis());
  if (mag >= 1'000) return format("%.3fus", d.as_micros());
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64 "ns", ns);
  return buf;
}

std::string to_string(TimePoint t) { return "t=" + to_string(t.since_origin()); }

std::string to_string(DataSize s) {
  const double bytes = s.as_bytes();
  const double mag = bytes < 0 ? -bytes : bytes;
  if (mag >= 1e9) return format("%.3fGB", s.as_gigabytes());
  if (mag >= 1e6) return format("%.3fMB", s.as_megabytes());
  if (mag >= 1e3) return format("%.3fKB", s.as_kilobytes());
  return format("%.0fB", bytes);
}

std::string to_string(Bandwidth b) {
  const double g = b.as_gbps();
  if (g >= 1000.0) return format("%.2fTbps", g / 1000.0);
  if (g >= 1.0) return format("%.2fGbps", g);
  return format("%.3fMbps", g * 1000.0);
}

std::ostream& operator<<(std::ostream& os, Duration d) { return os << to_string(d); }
std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << to_string(t); }
std::ostream& operator<<(std::ostream& os, DataSize s) { return os << to_string(s); }
std::ostream& operator<<(std::ostream& os, Bandwidth b) { return os << to_string(b); }

}  // namespace hpn
