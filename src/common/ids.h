// Strong-typed integer identifiers. A NodeId can never be passed where a
// LinkId is expected; both are 32-bit handles into dense arrays.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace hpn {

template <typename Tag>
class Id {
 public:
  using underlying = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying v) : v_{v} {}

  static constexpr Id invalid() { return Id{std::numeric_limits<underlying>::max()}; }
  [[nodiscard]] constexpr bool is_valid() const { return v_ != invalid().v_; }
  [[nodiscard]] constexpr underlying value() const { return v_; }
  /// Index into a dense container keyed by this id.
  [[nodiscard]] constexpr std::size_t index() const { return v_; }

  constexpr auto operator<=>(const Id&) const = default;

 private:
  underlying v_ = std::numeric_limits<underlying>::max();
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  if (!id.is_valid()) return os << "<invalid>";
  return os << id.value();
}

using NodeId = Id<struct NodeIdTag>;    ///< A device: host, NIC, switch, GPU.
using PortId = Id<struct PortIdTag>;    ///< One port on one node (globally unique).
using LinkId = Id<struct LinkIdTag>;    ///< A unidirectional link between two ports.
using FlowId = Id<struct FlowIdTag>;    ///< One simulated flow.
using JobId = Id<struct JobIdTag>;      ///< One training job.
using ConnId = Id<struct ConnIdTag>;    ///< One RDMA connection (ccl layer).
using PathId = Id<struct PathIdTag>;    ///< An interned link path (flowsim::PathTable).

}  // namespace hpn

template <typename Tag>
struct std::hash<hpn::Id<Tag>> {
  std::size_t operator()(hpn::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
