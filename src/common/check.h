// Invariant checking. HPN_CHECK is always on (these are simulation
// correctness conditions, not debug asserts); failures throw so tests can
// observe them and examples fail loudly instead of producing wrong numbers.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hpn {

/// Thrown when a simulation invariant is violated.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown for invalid user-supplied configuration.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError{os.str()};
}

}  // namespace detail
}  // namespace hpn

#define HPN_CHECK(expr)                                             \
  do {                                                              \
    if (!(expr)) ::hpn::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define HPN_CHECK_MSG(expr, msg)                                    \
  do {                                                              \
    if (!(expr)) {                                                  \
      std::ostringstream hpn_check_os_;                             \
      hpn_check_os_ << msg;                                         \
      ::hpn::detail::check_failed(#expr, __FILE__, __LINE__, hpn_check_os_.str()); \
    }                                                               \
  } while (false)
