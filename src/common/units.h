// Strong-typed simulation units: time, data size, and bandwidth.
//
// All simulated time is kept as integer nanoseconds so event ordering is
// exact and runs are bit-reproducible; data sizes are integer bits (the
// finest granularity any generator emits); bandwidth is double bits/second
// because fair-share solvers divide capacities arbitrarily.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace hpn {

/// A span of simulated time. Integer nanoseconds, signed so deltas work.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t ns) { return Duration{ns}; }
  static constexpr Duration micros(std::int64_t us) { return Duration{us * 1'000}; }
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr Duration minutes(double m) { return seconds(m * 60.0); }
  static constexpr Duration hours(double h) { return seconds(h * 3600.0); }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration infinite() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t as_nanos() const { return ns_; }
  [[nodiscard]] constexpr double as_micros() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double as_millis() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr bool is_infinite() const { return *this == infinite(); }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  constexpr Duration operator/(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) / k)};
  }
  [[nodiscard]] constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulation clock (ns since run start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint at_nanos(std::int64_t ns) { return TimePoint{ns}; }
  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint far_future() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t as_nanos() const { return ns_; }
  [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr Duration since_origin() const { return Duration::nanos(ns_); }

  constexpr auto operator<=>(const TimePoint&) const = default;
  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.as_nanos()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.as_nanos()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.as_nanos(); return *this; }

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// Quantity of data. Integer bits.
class DataSize {
 public:
  constexpr DataSize() = default;
  static constexpr DataSize bits(std::int64_t b) { return DataSize{b}; }
  static constexpr DataSize bytes(std::int64_t b) { return DataSize{b * 8}; }
  static constexpr DataSize kilobytes(std::int64_t kb) { return bytes(kb * 1'000); }
  static constexpr DataSize megabytes(std::int64_t mb) { return bytes(mb * 1'000'000); }
  static constexpr DataSize gigabytes(double gb) {
    return DataSize{static_cast<std::int64_t>(gb * 8e9)};
  }
  static constexpr DataSize kibibytes(std::int64_t k) { return bytes(k * 1024); }
  static constexpr DataSize mebibytes(std::int64_t m) { return bytes(m * 1024 * 1024); }
  static constexpr DataSize zero() { return DataSize{0}; }

  [[nodiscard]] constexpr std::int64_t as_bits() const { return bits_; }
  [[nodiscard]] constexpr double as_bytes() const { return static_cast<double>(bits_) / 8.0; }
  [[nodiscard]] constexpr double as_kilobytes() const { return as_bytes() / 1e3; }
  [[nodiscard]] constexpr double as_megabytes() const { return as_bytes() / 1e6; }
  [[nodiscard]] constexpr double as_gigabytes() const { return as_bytes() / 1e9; }

  constexpr auto operator<=>(const DataSize&) const = default;
  constexpr DataSize operator+(DataSize o) const { return DataSize{bits_ + o.bits_}; }
  constexpr DataSize operator-(DataSize o) const { return DataSize{bits_ - o.bits_}; }
  constexpr DataSize& operator+=(DataSize o) { bits_ += o.bits_; return *this; }
  constexpr DataSize& operator-=(DataSize o) { bits_ -= o.bits_; return *this; }
  constexpr DataSize operator*(double k) const {
    return DataSize{static_cast<std::int64_t>(static_cast<double>(bits_) * k)};
  }
  constexpr DataSize operator/(double k) const {
    return DataSize{static_cast<std::int64_t>(static_cast<double>(bits_) / k)};
  }
  [[nodiscard]] constexpr double operator/(DataSize o) const {
    return static_cast<double>(bits_) / static_cast<double>(o.bits_);
  }

 private:
  constexpr explicit DataSize(std::int64_t b) : bits_{b} {}
  std::int64_t bits_ = 0;
};

/// Transmission rate in bits per second. Double: fair-share solvers divide
/// link capacity into arbitrary fractions.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  static constexpr Bandwidth bits_per_sec(double bps) { return Bandwidth{bps}; }
  static constexpr Bandwidth gbps(double g) { return Bandwidth{g * 1e9}; }
  static constexpr Bandwidth tbps(double t) { return Bandwidth{t * 1e12}; }
  /// NVLink-style capacities are quoted in bytes/sec (e.g. 400 GBps).
  static constexpr Bandwidth gigabytes_per_sec(double gB) { return Bandwidth{gB * 8e9}; }
  static constexpr Bandwidth zero() { return Bandwidth{0.0}; }

  [[nodiscard]] constexpr double as_bits_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double as_gbps() const { return bps_ / 1e9; }
  [[nodiscard]] constexpr double as_gigabytes_per_sec() const { return bps_ / 8e9; }

  constexpr auto operator<=>(const Bandwidth&) const = default;
  constexpr Bandwidth operator+(Bandwidth o) const { return Bandwidth{bps_ + o.bps_}; }
  constexpr Bandwidth operator-(Bandwidth o) const { return Bandwidth{bps_ - o.bps_}; }
  constexpr Bandwidth& operator+=(Bandwidth o) { bps_ += o.bps_; return *this; }
  constexpr Bandwidth& operator-=(Bandwidth o) { bps_ -= o.bps_; return *this; }
  constexpr Bandwidth operator*(double k) const { return Bandwidth{bps_ * k}; }
  constexpr Bandwidth operator/(double k) const { return Bandwidth{bps_ / k}; }
  [[nodiscard]] constexpr double operator/(Bandwidth o) const { return bps_ / o.bps_; }

 private:
  constexpr explicit Bandwidth(double bps) : bps_{bps} {}
  double bps_ = 0.0;
};

/// Time to serialize `size` at `rate`. Rounds up to the next nanosecond so a
/// nonzero transfer never completes instantaneously.
[[nodiscard]] constexpr Duration operator/(DataSize size, Bandwidth rate) {
  const double secs = static_cast<double>(size.as_bits()) / rate.as_bits_per_sec();
  return Duration::nanos(static_cast<std::int64_t>(std::ceil(secs * 1e9)));
}

/// Data moved in `d` at `rate`.
[[nodiscard]] constexpr DataSize operator*(Bandwidth rate, Duration d) {
  return DataSize::bits(
      static_cast<std::int64_t>(rate.as_bits_per_sec() * d.as_seconds()));
}
[[nodiscard]] constexpr DataSize operator*(Duration d, Bandwidth rate) { return rate * d; }

/// Average rate needed to move `size` in `d`.
[[nodiscard]] constexpr Bandwidth operator/(DataSize size, Duration d) {
  return Bandwidth::bits_per_sec(static_cast<double>(size.as_bits()) / d.as_seconds());
}

std::string to_string(Duration d);
std::string to_string(TimePoint t);
std::string to_string(DataSize s);
std::string to_string(Bandwidth b);
std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);
std::ostream& operator<<(std::ostream& os, DataSize s);
std::ostream& operator<<(std::ostream& os, Bandwidth b);

}  // namespace hpn
