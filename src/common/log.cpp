#include "common/log.h"

#include <atomic>

namespace hpn {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

void emit_log(LogLevel level, std::string_view msg) {
  std::clog << '[' << to_string(level) << "] " << msg << '\n';
}

}  // namespace detail
}  // namespace hpn
