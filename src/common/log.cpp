#include "common/log.h"

#include <atomic>
#include <mutex>
#include <string>

namespace hpn {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// Serializes only the (cold) emission path. Parallel sweep runners
/// (exec::RunnerPool) log concurrently; without this, the multi-insertion
/// emit raced on std::clog and interleaved fragments of different lines.
/// The hot path — the level check in HPN_LOG — never touches it.
std::mutex g_sink_mu;

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

void emit_log(LogLevel level, std::string_view msg) {
  // Preformat and write once so a line can never be split mid-way, then
  // hold the sink lock across the write + flush pair.
  const std::string_view tag = to_string(level);
  std::string line;
  line.reserve(tag.size() + msg.size() + 4);
  line += '[';
  line += tag;
  line += "] ";
  line += msg;
  line += '\n';
  const std::lock_guard<std::mutex> lk(g_sink_mu);
  std::clog.write(line.data(), static_cast<std::streamsize>(line.size()));
}

}  // namespace detail
}  // namespace hpn
