// DCN+ (Appendix C): Alibaba's previous-generation 3-tier Clos training
// fabric. Dual-ToR, *not* rail-optimized: all 8 NICs of a host land on the
// same ToR pair, so a segment holds only 16 hosts (128 GPUs) and a Pod 4
// segments; jobs beyond 512 GPUs cross the Core layer and hash three times.
#include <string>

#include "common/check.h"
#include "topo/builders.h"

namespace hpn::topo {

DcnPlusConfig DcnPlusConfig::paper_pod() { return DcnPlusConfig{}; }

Cluster build_dcn_plus(const DcnPlusConfig& cfg) {
  HPN_CHECK_MSG(cfg.pods >= 1 && cfg.segments_per_pod >= 1 && cfg.hosts_per_segment >= 1,
                "DCN+ config: counts must be positive");
  HPN_CHECK_MSG(cfg.aggs_per_pod >= 1 && cfg.links_per_tor_agg >= 1, "DCN+ config: tier2 shape");

  Cluster c;
  c.arch = Arch::kDcnPlus;
  c.gpus_per_host = cfg.gpus_per_host;
  c.pods = cfg.pods;
  c.segments_per_pod = cfg.segments_per_pod;

  const int planes = cfg.dual_tor ? 2 : 1;
  const bool has_tier3 = cfg.pods > 1;

  std::vector<std::vector<NodeId>> pod_aggs(static_cast<std::size_t>(cfg.pods));
  for (int pod = 0; pod < cfg.pods; ++pod) {
    for (int i = 0; i < cfg.aggs_per_pod; ++i) {
      Location loc;
      loc.pod = static_cast<std::int16_t>(pod);
      loc.local = i;
      const NodeId agg = c.topo.add_node(
          NodeKind::kAgg, "agg" + std::to_string(pod) + "." + std::to_string(i), loc);
      pod_aggs[static_cast<std::size_t>(pod)].push_back(agg);
      c.aggs.push_back(agg);
    }
  }

  for (int pod = 0; pod < cfg.pods; ++pod) {
    for (int seg = 0; seg < cfg.segments_per_pod; ++seg) {
      std::vector<NodeId> seg_tors;
      for (int pl = 0; pl < planes; ++pl) {
        Location loc;
        loc.pod = static_cast<std::int16_t>(pod);
        loc.segment = static_cast<std::int16_t>(seg);
        loc.plane = static_cast<std::int16_t>(pl);
        loc.local = pl;
        const NodeId tor = c.topo.add_node(
            NodeKind::kTor,
            "tor" + std::to_string(pod) + "." + std::to_string(seg) + "." + std::to_string(pl),
            loc);
        seg_tors.push_back(tor);
        c.tors.push_back(tor);
      }

      // Tier2: every ToR reaches every Agg in the pod with N parallel links.
      for (const NodeId tor : seg_tors) {
        for (const NodeId agg : pod_aggs[static_cast<std::size_t>(pod)]) {
          for (int i = 0; i < cfg.links_per_tor_agg; ++i) {
            c.topo.add_duplex_link(tor, agg, LinkKind::kFabric, cfg.speeds.fabric,
                                   cfg.speeds.fabric_latency);
          }
        }
      }

      for (int h = 0; h < cfg.hosts_per_segment; ++h) {
        Host host;
        host.index = static_cast<std::int32_t>(c.hosts.size());
        host.pod = static_cast<std::int16_t>(pod);
        host.segment = static_cast<std::int16_t>(seg);
        const std::string hname = "h" + std::to_string(host.index);

        Location hloc;
        hloc.pod = host.pod;
        hloc.segment = host.segment;
        hloc.host = host.index;
        host.nvswitch = c.topo.add_node(NodeKind::kNvSwitch, hname + ".nvsw", hloc);

        for (int rail = 0; rail < cfg.gpus_per_host; ++rail) {
          Location gloc = hloc;
          gloc.rail = static_cast<std::int16_t>(rail);
          const NodeId gpu =
              c.topo.add_node(NodeKind::kGpu, hname + ".g" + std::to_string(rail), gloc);
          host.gpus.push_back(gpu);
          host.gpu_nvlink.push_back(
              c.topo.add_duplex_link(gpu, host.nvswitch, LinkKind::kNvlink,
                                     cfg.speeds.nvlink, cfg.speeds.nvlink_latency)
                  .forward);
          const NodeId nic =
              c.topo.add_node(NodeKind::kNic, hname + ".nic" + std::to_string(rail), gloc);
          host.gpu_pcie.push_back(
              c.topo.add_duplex_link(gpu, nic, LinkKind::kPcie, cfg.speeds.pcie,
                                     cfg.speeds.pcie_latency)
                  .forward);

          NicAttachment att;
          att.nic = nic;
          att.ports = planes;
          for (int pl = 0; pl < planes; ++pl) {
            att.tor[static_cast<std::size_t>(pl)] = seg_tors[static_cast<std::size_t>(pl)];
            att.access[static_cast<std::size_t>(pl)] =
                c.topo.add_duplex_link(nic, seg_tors[static_cast<std::size_t>(pl)],
                                       LinkKind::kAccess, cfg.speeds.access,
                                       cfg.speeds.access_latency)
                    .forward;
          }
          host.nics.push_back(att);
        }
        c.hosts.push_back(std::move(host));
      }
    }
  }

  if (has_tier3) {
    const int core_count = cfg.core_count > 0 ? cfg.core_count : 16;
    HPN_CHECK_MSG(cfg.agg_core_uplinks % core_count == 0,
                  "DCN+ agg_core_uplinks must divide evenly across cores");
    for (int i = 0; i < core_count; ++i) {
      Location loc;
      loc.local = i;
      c.cores.push_back(c.topo.add_node(NodeKind::kCore, "core." + std::to_string(i), loc));
    }
    const int per_core = cfg.agg_core_uplinks / core_count;
    for (int pod = 0; pod < cfg.pods; ++pod) {
      for (const NodeId agg : pod_aggs[static_cast<std::size_t>(pod)]) {
        for (const NodeId core : c.cores) {
          for (int i = 0; i < per_core; ++i) {
            c.topo.add_duplex_link(agg, core, LinkKind::kFabric, cfg.speeds.fabric,
                                   cfg.speeds.fabric_latency);
          }
        }
      }
    }
  }

  c.rebuild_gpu_index();
  return c;
}

}  // namespace hpn::topo
