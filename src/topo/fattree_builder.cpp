// Classic k-ary fat tree (Al-Fares et al., SIGCOMM'08) — the Table 1
// 3-tier comparator. Hosts carry a single single-port NIC; every layer
// hashes, so elephant flows traverse up to three hash stages.
#include <string>

#include "common/check.h"
#include "topo/builders.h"

namespace hpn::topo {

Cluster build_fat_tree(const FatTreeConfig& cfg) {
  HPN_CHECK_MSG(cfg.k >= 2 && cfg.k % 2 == 0, "fat tree requires even k >= 2");
  const int k = cfg.k;
  const int half = k / 2;

  Cluster c;
  c.arch = Arch::kFatTree;
  c.gpus_per_host = 1;
  c.pods = k;
  c.segments_per_pod = half;

  // Core layer: (k/2)^2 switches, grouped in k/2 groups of k/2.
  std::vector<NodeId> cores;
  for (int g = 0; g < half; ++g) {
    for (int i = 0; i < half; ++i) {
      Location loc;
      loc.local = g * half + i;
      cores.push_back(c.topo.add_node(
          NodeKind::kCore, "core." + std::to_string(g) + "." + std::to_string(i), loc));
    }
  }
  c.cores = cores;

  for (int pod = 0; pod < k; ++pod) {
    std::vector<NodeId> aggs;
    for (int a = 0; a < half; ++a) {
      Location loc;
      loc.pod = static_cast<std::int16_t>(pod);
      loc.local = a;
      const NodeId agg = c.topo.add_node(
          NodeKind::kAgg, "agg" + std::to_string(pod) + "." + std::to_string(a), loc);
      aggs.push_back(agg);
      c.aggs.push_back(agg);
      // Agg `a` connects to core group `a`, one link to each member.
      for (int i = 0; i < half; ++i) {
        c.topo.add_duplex_link(agg, cores[static_cast<std::size_t>(a * half + i)],
                               LinkKind::kFabric, cfg.link, cfg.latency);
      }
    }
    for (int e = 0; e < half; ++e) {
      Location loc;
      loc.pod = static_cast<std::int16_t>(pod);
      loc.segment = static_cast<std::int16_t>(e);
      loc.local = e;
      const NodeId tor = c.topo.add_node(
          NodeKind::kTor, "tor" + std::to_string(pod) + "." + std::to_string(e), loc);
      c.tors.push_back(tor);
      for (const NodeId agg : aggs) {
        c.topo.add_duplex_link(tor, agg, LinkKind::kFabric, cfg.link, cfg.latency);
      }
      for (int h = 0; h < half; ++h) {
        Host host;
        host.index = static_cast<std::int32_t>(c.hosts.size());
        host.pod = static_cast<std::int16_t>(pod);
        host.segment = static_cast<std::int16_t>(e);
        const std::string hname = "h" + std::to_string(host.index);

        Location hloc;
        hloc.pod = host.pod;
        hloc.segment = host.segment;
        hloc.host = host.index;
        const NodeId gpu = c.topo.add_node(NodeKind::kGpu, hname + ".g0", hloc);
        const NodeId nic = c.topo.add_node(NodeKind::kNic, hname + ".nic0", hloc);
        host.gpus.push_back(gpu);
        host.gpu_pcie.push_back(
            c.topo.add_duplex_link(gpu, nic, LinkKind::kPcie, cfg.link, cfg.latency).forward);

        NicAttachment att;
        att.nic = nic;
        att.ports = 1;
        att.tor[0] = tor;
        att.access[0] =
            c.topo.add_duplex_link(nic, tor, LinkKind::kAccess, cfg.link, cfg.latency).forward;
        host.nics.push_back(att);
        c.hosts.push_back(std::move(host));
      }
    }
  }

  c.rebuild_gpu_index();
  return c;
}

}  // namespace hpn::topo
