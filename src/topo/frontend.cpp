#include "topo/frontend.h"

#include <string>

#include "common/check.h"

namespace hpn::topo {

std::vector<StorageHost> attach_frontend(Cluster& c, const FrontendConfig& cfg) {
  HPN_CHECK(cfg.hosts_per_segment >= 1 && cfg.aggs >= 1 && cfg.storage_hosts >= 0);
  HPN_CHECK_MSG(c.frontend_tors.empty(), "frontend already attached");

  // Entities needing access: every compute host's NIC0 plus the storage
  // cluster; storage fills its own trailing segments.
  const int compute = static_cast<int>(c.hosts.size());
  const int total = compute + cfg.storage_hosts;
  const int segments = (total + cfg.hosts_per_segment - 1) / cfg.hosts_per_segment;

  // Agg layer (1:1): every frontend ToR connects once to every Agg.
  for (int a = 0; a < cfg.aggs; ++a) {
    Location loc;
    loc.pod = -2;  // frontend plane of the world
    loc.local = a;
    c.frontend_aggs.push_back(
        c.topo.add_node(NodeKind::kAgg, "f.agg" + std::to_string(a), loc));
  }

  std::vector<std::array<NodeId, 2>> tor_pairs;
  for (int s = 0; s < segments; ++s) {
    std::array<NodeId, 2> pair{};
    for (int p = 0; p < 2; ++p) {
      Location loc;
      loc.pod = -2;
      loc.segment = static_cast<std::int16_t>(s);
      loc.plane = static_cast<std::int16_t>(p);
      const NodeId tor = c.topo.add_node(
          NodeKind::kTor, "f.tor" + std::to_string(s) + "." + std::to_string(p), loc);
      pair[static_cast<std::size_t>(p)] = tor;
      c.frontend_tors.push_back(tor);
      for (const NodeId agg : c.frontend_aggs) {
        c.topo.add_duplex_link(tor, agg, LinkKind::kFabric, cfg.fabric, cfg.latency);
      }
    }
    tor_pairs.push_back(pair);
  }

  auto wire = [&](NodeId endpoint, int slot) {
    const auto& pair = tor_pairs.at(static_cast<std::size_t>(slot / cfg.hosts_per_segment));
    NicAttachment att;
    att.nic = endpoint;
    att.ports = 2;
    for (int p = 0; p < 2; ++p) {
      att.tor[static_cast<std::size_t>(p)] = pair[static_cast<std::size_t>(p)];
      att.access[static_cast<std::size_t>(p)] =
          c.topo.add_duplex_link(endpoint, pair[static_cast<std::size_t>(p)],
                                 LinkKind::kAccess, cfg.access, cfg.latency)
              .forward;
    }
    return att;
  };

  int slot = 0;
  for (Host& h : c.hosts) {
    Location loc;
    loc.pod = -2;
    loc.host = h.index;
    h.frontend_nic =
        c.topo.add_node(NodeKind::kNic, "h" + std::to_string(h.index) + ".fnic", loc);
    wire(h.frontend_nic, slot++);
  }

  std::vector<StorageHost> storage;
  for (int i = 0; i < cfg.storage_hosts; ++i) {
    Location loc;
    loc.pod = -2;
    loc.local = i;
    StorageHost sh;
    sh.host = c.topo.add_node(NodeKind::kStorage, "storage" + std::to_string(i), loc);
    sh.nic = wire(sh.host, slot++);
    sh.on_backend = false;
    storage.push_back(sh);
  }
  return storage;
}

std::vector<StorageHost> attach_backend_storage(Cluster& c, int storage_hosts,
                                                Bandwidth access, Duration latency) {
  HPN_CHECK(storage_hosts >= 1);
  HPN_CHECK_MSG(!c.hosts.empty(), "attach storage to a built cluster");
  const int rails = c.gpus_per_host;

  std::vector<StorageHost> storage;
  for (int i = 0; i < storage_hosts; ++i) {
    // Spread across segment-0's rail ToR pairs, eating the backup ports the
    // paper reserves for host replacement (§10: "consumes ToR ports").
    const int rail = i % rails;
    const auto& reference = c.hosts.front().nics.at(static_cast<std::size_t>(rail));
    Location loc;
    loc.pod = 0;
    loc.segment = 0;
    loc.rail = static_cast<std::int16_t>(rail);
    loc.local = i;
    StorageHost sh;
    sh.on_backend = true;
    sh.host = c.topo.add_node(NodeKind::kStorage, "bstorage" + std::to_string(i), loc);
    sh.nic.nic = sh.host;
    sh.nic.ports = reference.ports;
    for (int p = 0; p < reference.ports; ++p) {
      const NodeId tor = reference.tor.at(static_cast<std::size_t>(p));
      sh.nic.tor[static_cast<std::size_t>(p)] = tor;
      sh.nic.access[static_cast<std::size_t>(p)] =
          c.topo.add_duplex_link(sh.host, tor, LinkKind::kAccess, access, latency).forward;
    }
    storage.push_back(sh);
  }
  return storage;
}

}  // namespace hpn::topo
