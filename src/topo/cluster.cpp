#include "topo/cluster.h"

namespace hpn::topo {

std::string_view to_string(Arch arch) {
  switch (arch) {
    case Arch::kHpn: return "HPN";
    case Arch::kHpnSinglePlane: return "HPN-single-plane";
    case Arch::kHpnRailOnly: return "HPN-rail-only";
    case Arch::kDcnPlus: return "DCN+";
    case Arch::kFatTree: return "fat-tree";
    case Arch::kRailOnly: return "rail-only";
    case Arch::kRailXLite: return "railx-lite";
    case Arch::kUbMeshLite: return "ubmesh-lite";
  }
  return "?";
}

void Cluster::rebuild_gpu_index() {
  gpu_index_.clear();
  for (const Host& h : hosts) {
    for (std::size_t rail = 0; rail < h.gpus.size(); ++rail) {
      gpu_index_[h.gpus[rail]] = GpuRef{h.index, static_cast<std::int16_t>(rail)};
    }
  }
}

std::vector<NodeId> Cluster::tors_of_segment(int pod, int segment) const {
  std::vector<NodeId> out;
  for (NodeId t : tors) {
    const auto& loc = topo.node(t).loc;
    if (loc.pod == pod && loc.segment == segment) out.push_back(t);
  }
  return out;
}

std::vector<NodeId> Cluster::aggs_of_plane(int pod, int plane) const {
  std::vector<NodeId> out;
  for (NodeId a : aggs) {
    const auto& loc = topo.node(a).loc;
    if (loc.pod == pod && loc.plane == plane) out.push_back(a);
  }
  return out;
}

}  // namespace hpn::topo
