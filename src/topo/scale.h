// Analytic scale math for Table 2 ("key mechanisms affecting maximal
// scale"), Table 4 (any-to-any vs rail-only tier2) and the Table 1 path-
// selection search-space comparison. These are closed-form consequences of
// port arithmetic; the builders realize the same shapes structurally and
// tests cross-check the two.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace hpn::topo {

struct ChipSpec {
  Bandwidth capacity = Bandwidth::tbps(51.2);
  Bandwidth access_port = Bandwidth::gbps(200);  ///< ToR downstream port.
  Bandwidth fabric_port = Bandwidth::gbps(400);  ///< Uplink / tier2+ port.
};

/// One row of Table 2: a mechanism and the tier1/tier2 scale it unlocks.
struct ScaleStep {
  std::string mechanism;
  std::int64_t tier1_gpus = 0;  ///< 0 = unchanged by this mechanism.
  std::int64_t tier2_gpus = 0;
};

/// Reproduces Table 2's cumulative mechanism chain for a given chip.
/// With the 51.2T chip: 64 -> 128 (dual-ToR) -> 1024 (rail x8) tier1;
/// 2K -> 4K -> 8K (dual-plane) -> 15K (15:1 oversub) tier2.
std::vector<ScaleStep> scale_mechanisms(const ChipSpec& chip = {}, int rails = 8,
                                        double core_oversubscription = 15.0);

struct PodScale {
  std::int64_t gpus_per_segment = 0;
  std::int64_t segments_per_pod = 0;
  std::int64_t gpus_per_pod = 0;
  int tier2_planes = 0;
};

/// Any-to-any tier2 (the deployed HPN): 2 planes, 15360 GPUs (Table 4 col 1).
PodScale any_to_any_pod(const ChipSpec& chip = {}, int rails = 8);

/// Rail-only tier2 (Table 4 col 2): one tier2 plane per (plane, rail) pair
/// => 16 planes, 8x the segments, 122880 GPUs, but cross-rail traffic must
/// relay through hosts.
PodScale rail_only_pod(const ChipSpec& chip = {}, int rails = 8);

/// One row of Table 1: path-selection search space of an architecture.
struct PathComplexity {
  std::string architecture;
  std::int64_t supported_gpus = 0;
  int tiers = 0;
  std::string balancing_layers;
  std::int64_t search_space = 0;  ///< Candidate combinations to probe.
};

/// The four Table 1 rows (HPN measured from its config; others from the
/// paper's published parameters).
std::vector<PathComplexity> path_complexity_table();

}  // namespace hpn::topo
