#include "topo/topology.h"

namespace hpn::topo {

std::string_view to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kGpu: return "gpu";
    case NodeKind::kNvSwitch: return "nvswitch";
    case NodeKind::kNic: return "nic";
    case NodeKind::kTor: return "tor";
    case NodeKind::kAgg: return "agg";
    case NodeKind::kCore: return "core";
    case NodeKind::kHostProxy: return "host";
    case NodeKind::kStorage: return "storage";
  }
  return "?";
}

NodeId Topology::add_node(NodeKind kind, std::string name, Location loc) {
  const NodeId id{static_cast<NodeId::underlying>(nodes_.size())};
  nodes_.push_back(Node{id, kind, loc, std::move(name)});
  adjacency_.emplace_back();
  next_port_.push_back(0);
  return id;
}

DuplexLink Topology::add_duplex_link(NodeId a, NodeId b, LinkKind kind, Bandwidth capacity,
                                     Duration latency) {
  HPN_CHECK(a.is_valid() && b.is_valid() && a != b);
  HPN_CHECK(capacity > Bandwidth::zero());
  const std::uint16_t port_a = next_port_.at(a.index())++;
  const std::uint16_t port_b = next_port_.at(b.index())++;

  const LinkId fwd{static_cast<LinkId::underlying>(links_.size())};
  const LinkId bwd{static_cast<LinkId::underlying>(links_.size() + 1)};
  links_.push_back(Link{fwd, bwd, a, b, kind, capacity, latency, true, port_a, port_b});
  links_.push_back(Link{bwd, fwd, b, a, kind, capacity, latency, true, port_b, port_a});
  adjacency_.at(a.index()).push_back(fwd);
  adjacency_.at(b.index()).push_back(bwd);
  return DuplexLink{fwd, bwd};
}

std::vector<LinkId> Topology::up_out_links(NodeId n) const {
  std::vector<LinkId> out;
  for (LinkId l : adjacency_.at(n.index()))
    if (links_[l.index()].up) out.push_back(l);
  return out;
}

std::optional<LinkId> Topology::find_link(NodeId a, NodeId b) const {
  for (LinkId l : adjacency_.at(a.index()))
    if (links_[l.index()].dst == b) return l;
  return std::nullopt;
}

std::vector<LinkId> Topology::find_links(NodeId a, NodeId b) const {
  std::vector<LinkId> out;
  for (LinkId l : adjacency_.at(a.index()))
    if (links_[l.index()].dst == b) out.push_back(l);
  return out;
}

void Topology::set_duplex_up(LinkId id, bool link_up) {
  Link& l = links_.at(id.index());
  l.up = link_up;
  links_.at(l.reverse.index()).up = link_up;
}

std::vector<NodeId> Topology::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_)
    if (n.kind == kind) out.push_back(n.id);
  return out;
}

}  // namespace hpn::topo
