// Wiring validation — the software analogue of the paper's INT-probe
// blueprint check (§10: "on-site staff make a lot of wiring mistakes...
// we employ INT-based probes to check that each hop precisely aligns with
// HPN's blueprint definition"). Returns human-readable violations; an empty
// list means the built cluster matches its architecture's blueprint.
#pragma once

#include <string>
#include <vector>

#include "topo/cluster.h"

namespace hpn::topo {

/// What tiers and labeling conventions a built cluster actually uses,
/// discovered from the graph instead of assumed from the Arch enum. This is
/// what lets validation and blast-radius reporting run on fabrics without
/// an Agg/Core tier (Rail-only, meshes) without tripping false violations.
struct TierProfile {
  bool has_agg = false;
  bool has_core = false;
  /// Every Agg carries a plane label -> dual-plane isolation applies.
  bool plane_partitioned_aggs = false;
  /// Some ToR carries a plane label -> dual-ToR port/plane alignment applies.
  bool planar_access = false;
  /// Some ToR carries a rail label -> rail-optimized wiring applies.
  bool rail_tors = false;
  /// ToR <-> ToR fabric links exist (mesh / circuit tiers).
  bool tor_mesh = false;
};

TierProfile discover_tiers(const Cluster& cluster);

struct ValidationOptions {
  /// Aggregate switching budget per single chip (51.2 Tbps, §5.1).
  Bandwidth chip_capacity = Bandwidth::tbps(51.2);
  /// Check every node's total port bandwidth against chip_capacity.
  bool check_chip_budget = true;
};

std::vector<std::string> validate(const Cluster& cluster, const ValidationOptions& opts = {});

/// Throws ConfigError listing all violations if validation fails.
void validate_or_throw(const Cluster& cluster, const ValidationOptions& opts = {});

}  // namespace hpn::topo
