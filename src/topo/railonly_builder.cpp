// Rail-only (Wang et al.): the Agg/Core tiers are removed entirely. Each
// rail gets its own ToR (pair, under dual-ToR) spanning *every* host, so
// DP-heavy LLM traffic — which is rail-local by construction — never needs
// an aggregation layer. Cross-rail NIC pairs are unreachable over the
// backend network; that is the architecture's bet, not a wiring bug.
#include <string>

#include "common/check.h"
#include "topo/builders.h"

namespace hpn::topo {

RailOnlyConfig RailOnlyConfig::tiny() {
  RailOnlyConfig cfg;
  cfg.hosts = 4;
  return cfg;
}

Cluster build_rail_only(const RailOnlyConfig& cfg) {
  HPN_CHECK_MSG(cfg.hosts >= 1, "rail-only config: need at least one host");
  HPN_CHECK_MSG(cfg.gpus_per_host >= 1, "rail-only config: need at least one rail");

  Cluster c;
  c.arch = Arch::kRailOnly;
  c.gpus_per_host = cfg.gpus_per_host;
  c.pods = 1;
  c.segments_per_pod = 1;

  const int planes = cfg.dual_tor ? 2 : 1;
  const int rails = cfg.gpus_per_host;

  // One ToR per (rail, plane), spanning the whole cluster.
  std::vector<std::vector<NodeId>> rail_tors(static_cast<std::size_t>(rails));
  for (int rail = 0; rail < rails; ++rail) {
    for (int pl = 0; pl < planes; ++pl) {
      Location loc;
      loc.pod = 0;
      loc.segment = 0;
      loc.plane = static_cast<std::int16_t>(pl);
      loc.rail = static_cast<std::int16_t>(rail);
      loc.local = rail * planes + pl;
      const NodeId tor = c.topo.add_node(
          NodeKind::kTor, "tor.r" + std::to_string(rail) + "p" + std::to_string(pl), loc);
      rail_tors[static_cast<std::size_t>(rail)].push_back(tor);
      c.tors.push_back(tor);
    }
  }

  for (int h = 0; h < cfg.hosts; ++h) {
    Host host;
    host.index = static_cast<std::int32_t>(c.hosts.size());
    host.pod = 0;
    host.segment = 0;
    const std::string hname = "h" + std::to_string(host.index);

    Location hloc;
    hloc.pod = host.pod;
    hloc.segment = host.segment;
    hloc.host = host.index;
    host.nvswitch = c.topo.add_node(NodeKind::kNvSwitch, hname + ".nvsw", hloc);

    for (int rail = 0; rail < rails; ++rail) {
      Location gloc = hloc;
      gloc.rail = static_cast<std::int16_t>(rail);
      const NodeId gpu =
          c.topo.add_node(NodeKind::kGpu, hname + ".g" + std::to_string(rail), gloc);
      host.gpus.push_back(gpu);
      host.gpu_nvlink.push_back(
          c.topo.add_duplex_link(gpu, host.nvswitch, LinkKind::kNvlink, cfg.speeds.nvlink,
                                 cfg.speeds.nvlink_latency)
              .forward);

      const NodeId nic =
          c.topo.add_node(NodeKind::kNic, hname + ".nic" + std::to_string(rail), gloc);
      host.gpu_pcie.push_back(
          c.topo.add_duplex_link(gpu, nic, LinkKind::kPcie, cfg.speeds.pcie,
                                 cfg.speeds.pcie_latency)
              .forward);

      NicAttachment att;
      att.nic = nic;
      att.ports = planes;
      for (int pl = 0; pl < planes; ++pl) {
        const NodeId tor =
            rail_tors[static_cast<std::size_t>(rail)][static_cast<std::size_t>(pl)];
        att.tor[static_cast<std::size_t>(pl)] = tor;
        att.access[static_cast<std::size_t>(pl)] =
            c.topo.add_duplex_link(nic, tor, LinkKind::kAccess, cfg.speeds.access,
                                   cfg.speeds.access_latency)
                .forward;
      }
      host.nics.push_back(att);
    }
    c.hosts.push_back(std::move(host));
  }

  c.rebuild_gpu_index();
  return c;
}

}  // namespace hpn::topo
