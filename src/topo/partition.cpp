#include "topo/partition.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/check.h"

namespace hpn::topo {
namespace {

/// Community key: nodes that should never be split apart. Ordered so ties
/// resolve identically on every platform (std::map iteration order).
struct CommunityKey {
  int cls = 0;  ///< 0 = segment island, 1 = Agg group, 2 = Core group, 3 = block.
  int a = 0;
  int b = 0;
  auto operator<=>(const CommunityKey&) const = default;
};

CommunityKey key_of(const Node& node, std::size_t node_count, int shards) {
  const Location& loc = node.loc;
  switch (node.kind) {
    case NodeKind::kAgg:
      // Dual-plane fabrics keep planes disjoint; an Agg community per
      // (pod, plane) means plane-local traffic stays shard-local whenever
      // a whole plane lands in one shard.
      return CommunityKey{1, loc.pod, loc.plane >= 0 ? loc.plane : loc.local};
    case NodeKind::kCore:
      return CommunityKey{2, loc.plane >= 0 ? loc.plane : loc.local, 0};
    default:
      break;
  }
  if (loc.pod >= 0 && loc.segment >= 0) {
    // Hosts, GPUs, NICs, NVSwitches, ToRs of one rail-isolated segment.
    return CommunityKey{0, loc.pod, loc.segment};
  }
  // Unlabeled nodes (random multigraphs, storage, frontend): contiguous
  // index blocks, roughly one per shard.
  const std::size_t block =
      std::max<std::size_t>(1, (node_count + static_cast<std::size_t>(shards) - 1) /
                                   static_cast<std::size_t>(shards));
  return CommunityKey{3, static_cast<int>(node.id.index() / block), 0};
}

}  // namespace

void Partition::derive_links(const Topology& topo) {
  HPN_CHECK(node_shard.size() == topo.node_count());
  link_shard.assign(topo.link_count(), 0);
  boundary_.assign(topo.link_count(), 0);
  boundary_links.clear();
  lookahead = Duration::infinite();
  nodes_per_shard.assign(static_cast<std::size_t>(shards), 0);
  for (const Node& n : topo.nodes()) {
    const int s = node_shard[n.id.index()];
    HPN_CHECK_MSG(s >= 0 && s < shards, "node " << n.id << " has shard " << s);
    ++nodes_per_shard[static_cast<std::size_t>(s)];
  }
  for (const Link& l : topo.links()) {
    const int owner = node_shard[l.src.index()];
    link_shard[l.id.index()] = owner;
    if (node_shard[l.dst.index()] != owner) {
      boundary_[l.id.index()] = 1;
      boundary_links.push_back(l.id);
      // Down links count too: a circuit link can come up mid-run, and the
      // lookahead must already have accounted for it.
      lookahead = std::min(lookahead, l.latency);
    }
  }
}

Partition partition_cluster(const Cluster& cluster, int shards) {
  const Topology& topo = cluster.topo;
  Partition p;
  p.shards = std::max(1, shards);
  p.node_shard.assign(topo.node_count(), 0);

  if (p.shards > 1) {
    // Enumerate communities and their node counts. std::map gives a
    // platform-independent deterministic order.
    std::map<CommunityKey, std::vector<NodeId>> communities;
    for (const Node& n : topo.nodes()) {
      communities[key_of(n, topo.node_count(), p.shards)].push_back(n.id);
    }
    // Greedy balance: communities in descending size (ties by key order)
    // onto the currently lightest shard (ties to the lowest index). Both
    // tie-breaks are total orders, so the assignment is deterministic.
    std::vector<const std::pair<const CommunityKey, std::vector<NodeId>>*> order;
    order.reserve(communities.size());
    for (const auto& kv : communities) order.push_back(&kv);
    std::stable_sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
      return a->second.size() > b->second.size();
    });
    std::vector<std::size_t> load(static_cast<std::size_t>(p.shards), 0);
    for (const auto* kv : order) {
      int best = 0;
      for (int s = 1; s < p.shards; ++s) {
        if (load[static_cast<std::size_t>(s)] < load[static_cast<std::size_t>(best)]) {
          best = s;
        }
      }
      for (const NodeId n : kv->second) p.node_shard[n.index()] = best;
      load[static_cast<std::size_t>(best)] += kv->second.size();
    }
  }

  p.derive_links(topo);
  return p;
}

}  // namespace hpn::topo
