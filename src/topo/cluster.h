// A built training cluster: topology graph plus the structured host/GPU/NIC
// indexes every higher layer (routing, collectives, training) navigates.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "topo/topology.h"

namespace hpn::topo {

enum class Arch : std::uint8_t {
  kHpn,           ///< 2-tier dual-plane dual-ToR rail-optimized (the paper).
  kHpnSinglePlane,///< HPN tier1 + *typical Clos* tier2 (Fig 12a ablation).
  kHpnRailOnly,   ///< Rail-only tier2 variant (Table 4).
  kDcnPlus,       ///< 3-tier Clos previous generation (Appendix C).
  kFatTree,       ///< Classic k-ary fat tree (single-NIC hosts).
  kRailOnly,      ///< Rail-only (Wang et al.): per-rail ToRs, no Agg/Core.
  kRailXLite,     ///< RailX-lite: rail ToRs + reconfigurable circuit tier.
  kUbMeshLite,    ///< UB-Mesh-lite: 2D full-mesh (HyperX-style) ToR grid.
};

std::string_view to_string(Arch arch);

/// One backend NIC and its dual-ToR attachment. Port p of the NIC connects
/// to `tor[p]` over access link `access[p]` (NIC -> ToR direction).
struct NicAttachment {
  NodeId nic;
  std::array<NodeId, 2> tor{NodeId::invalid(), NodeId::invalid()};
  std::array<LinkId, 2> access{LinkId::invalid(), LinkId::invalid()};
  /// Number of ports actually wired (1 under single-ToR ablations).
  int ports = 2;
};

struct Host {
  std::int32_t index = -1;    ///< Cluster-wide host index.
  std::int16_t pod = 0;
  std::int16_t segment = 0;   ///< Segment within pod.
  bool backup = false;        ///< Connected to a ToR backup port (§5.1).
  NodeId nvswitch = NodeId::invalid();
  std::vector<NodeId> gpus;            ///< rail -> GPU node.
  std::vector<LinkId> gpu_nvlink;      ///< rail -> GPU->NVSwitch link.
  std::vector<LinkId> gpu_pcie;        ///< rail -> GPU->NIC link.
  std::vector<NicAttachment> nics;     ///< rail -> backend NIC.
  NodeId frontend_nic = NodeId::invalid();  ///< NIC0, if frontend built.
};

/// Optical-circuit schedule for reconfigurable fabrics (RailX-lite). All
/// circuit links exist in the topology permanently; epoch `e` keeps exactly
/// `epoch_links[e]` up and the rest down. Empty for static fabrics.
struct CircuitSchedule {
  /// epoch -> forward LinkIds active during that epoch.
  std::vector<std::vector<LinkId>> epoch_links;
  [[nodiscard]] int epochs() const { return static_cast<int>(epoch_links.size()); }
  [[nodiscard]] bool empty() const { return epoch_links.empty(); }
};

/// A GPU's coordinates within the cluster.
struct GpuRef {
  std::int32_t host = -1;
  std::int16_t rail = -1;
  [[nodiscard]] bool valid() const { return host >= 0; }
};

class Cluster {
 public:
  Arch arch{};
  Topology topo;
  std::vector<Host> hosts;
  std::vector<NodeId> tors;
  std::vector<NodeId> aggs;
  std::vector<NodeId> cores;
  /// Frontend network switches (§8), populated by attach_frontend().
  std::vector<NodeId> frontend_tors;
  std::vector<NodeId> frontend_aggs;
  /// Reconfigurable-circuit schedule (RailX-lite); empty for static fabrics.
  CircuitSchedule circuits;
  int gpus_per_host = 8;
  int pods = 1;
  int segments_per_pod = 1;

  /// Global GPU rank <-> coordinates. Ranks enumerate active hosts first,
  /// rails fastest: rank = host * gpus_per_host + rail.
  [[nodiscard]] int gpu_count() const {
    return static_cast<int>(hosts.size()) * gpus_per_host;
  }
  [[nodiscard]] NodeId gpu(int rank) const {
    const auto& h = hosts.at(static_cast<std::size_t>(rank / gpus_per_host));
    return h.gpus.at(static_cast<std::size_t>(rank % gpus_per_host));
  }
  [[nodiscard]] GpuRef locate_gpu(NodeId gpu_node) const {
    auto it = gpu_index_.find(gpu_node);
    return it == gpu_index_.end() ? GpuRef{} : it->second;
  }
  [[nodiscard]] const Host& host_of(int rank) const {
    return hosts.at(static_cast<std::size_t>(rank / gpus_per_host));
  }
  [[nodiscard]] int rail_of(int rank) const { return rank % gpus_per_host; }
  [[nodiscard]] const NicAttachment& nic_of(int rank) const {
    return host_of(rank).nics.at(static_cast<std::size_t>(rail_of(rank)));
  }

  /// Called by builders after hosts are final.
  void rebuild_gpu_index();

  /// ToRs of a given (pod, segment); for dual-plane architectures the
  /// result is ordered rail-major, plane-minor.
  [[nodiscard]] std::vector<NodeId> tors_of_segment(int pod, int segment) const;
  [[nodiscard]] std::vector<NodeId> aggs_of_plane(int pod, int plane) const;

 private:
  std::unordered_map<NodeId, GpuRef> gpu_index_;
};

}  // namespace hpn::topo
