// Network topology graph.
//
// Nodes are devices (GPUs, NVSwitches, NICs, ToR/Agg/Core switches, storage
// hosts); links are *unidirectional* capacity/latency edges created in
// duplex pairs. All HPN wiring facts (dual-ToR, rail-optimized tier1,
// dual-plane tier2, 15:1 tier3 oversubscription) are expressed purely as
// graph structure plus per-node location metadata, so routing and both flow
// simulators stay architecture-agnostic.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"

namespace hpn::topo {

enum class NodeKind : std::uint8_t {
  kGpu,        ///< One accelerator.
  kNvSwitch,   ///< Intra-host high-bandwidth switch (NVLink domain).
  kNic,        ///< Backend or frontend NIC (2x200G dual-port).
  kTor,        ///< Tier-1 switch.
  kAgg,        ///< Tier-2 switch.
  kCore,       ///< Tier-3 switch.
  kHostProxy,  ///< CPU-side endpoint for frontend/storage traffic.
  kStorage,    ///< CPFS/OSS storage host.
};

std::string_view to_string(NodeKind kind);

enum class LinkKind : std::uint8_t {
  kNvlink,   ///< GPU <-> NVSwitch.
  kPcie,     ///< GPU <-> NIC.
  kAccess,   ///< NIC <-> ToR (the single-point-of-failure link of §2.3).
  kFabric,   ///< Switch <-> switch.
};

/// Where a node sits in the architecture; -1 = not applicable.
struct Location {
  std::int16_t pod = -1;
  std::int16_t segment = -1;  ///< Segment index within pod.
  std::int16_t plane = -1;    ///< Dual-plane index (0/1) for ToR/Agg/Core.
  std::int16_t rail = -1;     ///< Rail index (0..7) for NIC/GPU/ToR set.
  std::int32_t host = -1;     ///< Host index within cluster.
  std::int32_t local = -1;    ///< Index among same-kind peers (e.g. Agg #).
};

struct Node {
  NodeId id;
  NodeKind kind{};
  Location loc;
  std::string name;
};

struct Link {
  LinkId id;
  LinkId reverse;    ///< The opposite direction of the same cable.
  NodeId src;
  NodeId dst;
  LinkKind kind{};
  Bandwidth capacity;
  Duration latency;
  bool up = true;
  /// Egress port index on `src` (used by per-port hashing and LACP).
  std::uint16_t src_port = 0;
  /// Ingress port index on `dst`.
  std::uint16_t dst_port = 0;
};

struct DuplexLink {
  LinkId forward;   ///< a -> b
  LinkId backward;  ///< b -> a
};

class Topology {
 public:
  NodeId add_node(NodeKind kind, std::string name, Location loc = {});

  /// Adds a full-duplex cable between `a` and `b`; port indexes are
  /// allocated sequentially per node.
  DuplexLink add_duplex_link(NodeId a, NodeId b, LinkKind kind, Bandwidth capacity,
                             Duration latency);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id.index()); }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id.index()); }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Outgoing links of `n`, including down links (callers filter by `up`).
  [[nodiscard]] std::span<const LinkId> out_links(NodeId n) const {
    return adjacency_.at(n.index());
  }
  /// Outgoing links that are currently up.
  [[nodiscard]] std::vector<LinkId> up_out_links(NodeId n) const;

  /// The link a -> b, if any (first match).
  [[nodiscard]] std::optional<LinkId> find_link(NodeId a, NodeId b) const;
  /// All links a -> b (parallel links are common switch-to-switch).
  [[nodiscard]] std::vector<LinkId> find_links(NodeId a, NodeId b) const;

  /// Set one direction's state.
  void set_link_up(LinkId id, bool link_up) { links_.at(id.index()).up = link_up; }
  /// Set both directions of a cable.
  void set_duplex_up(LinkId id, bool link_up);
  [[nodiscard]] bool is_up(LinkId id) const { return links_.at(id.index()).up; }

  /// All nodes of one kind (ids in creation order).
  [[nodiscard]] std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

  /// Total egress port count currently allocated on a node.
  [[nodiscard]] std::uint16_t port_count(NodeId n) const {
    return next_port_.at(n.index());
  }

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
  std::vector<std::uint16_t> next_port_;
};

}  // namespace hpn::topo
