#include "topo/validate.h"

#include <sstream>

#include "common/check.h"

namespace hpn::topo {
namespace {

void check_dual_links(const Cluster& c, std::vector<std::string>& out) {
  for (const Link& l : c.topo.links()) {
    const Link& rev = c.topo.link(l.reverse);
    if (rev.src != l.dst || rev.dst != l.src || rev.reverse != l.id) {
      out.push_back("link " + std::to_string(l.id.value()) + " has inconsistent reverse");
    }
    if (rev.capacity != l.capacity) {
      out.push_back("link " + std::to_string(l.id.value()) + " asymmetric capacity");
    }
  }
}

void check_nic_wiring(const Cluster& c, std::vector<std::string>& out) {
  for (const Host& h : c.hosts) {
    for (std::size_t rail = 0; rail < h.nics.size(); ++rail) {
      const NicAttachment& att = h.nics[rail];
      for (int p = 0; p < att.ports; ++p) {
        const auto pi = static_cast<std::size_t>(p);
        if (!att.access[pi].is_valid() || !att.tor[pi].is_valid()) {
          out.push_back("host " + std::to_string(h.index) + " rail " + std::to_string(rail) +
                        " port " + std::to_string(p) + " unwired");
          continue;
        }
        const Link& l = c.topo.link(att.access[pi]);
        const Node& tor = c.topo.node(att.tor[pi]);
        if (l.src != att.nic || l.dst != att.tor[pi]) {
          out.push_back("host " + std::to_string(h.index) + " rail " + std::to_string(rail) +
                        ": access link endpoints disagree with attachment record");
        }
        if (tor.kind != NodeKind::kTor) {
          out.push_back("host " + std::to_string(h.index) + " rail " + std::to_string(rail) +
                        ": NIC port lands on non-ToR node " + tor.name);
        }
        if (tor.loc.pod != h.pod || tor.loc.segment != h.segment) {
          out.push_back("host " + std::to_string(h.index) +
                        ": NIC wired outside its segment (tor " + tor.name + ")");
        }
        // Dual-plane blueprint: port index must equal the ToR's plane.
        // Data-driven: applies wherever the access tier is dual-ported and
        // ToRs carry plane labels, whatever the Arch enum says.
        if (att.ports == 2 && tor.loc.plane >= 0 && tor.loc.plane != p) {
          out.push_back("host " + std::to_string(h.index) + " rail " + std::to_string(rail) +
                        ": port " + std::to_string(p) + " wired to plane " +
                        std::to_string(tor.loc.plane) + " ToR " + tor.name);
        }
        // Rail-optimized blueprint: the ToR set must match the NIC's rail.
        // Data-driven: a rail label on the ToR *is* the claim being checked.
        if (tor.loc.rail >= 0 && tor.loc.rail != static_cast<int>(rail)) {
          out.push_back("host " + std::to_string(h.index) + " rail " + std::to_string(rail) +
                        ": NIC wired to rail-" + std::to_string(tor.loc.rail) + " ToR " +
                        tor.name + " (cross-rail miswire)");
        }
      }
    }
  }
}

void check_dual_plane_isolation(const Cluster& c, const TierProfile& tiers,
                                std::vector<std::string>& out) {
  // Only plane-partitioned aggregation tiers make this claim; fabrics with
  // no Agg tier (Rail-only, meshes) or unplaned Aggs (DCN+, fat tree) skip.
  if (!tiers.has_agg || !tiers.plane_partitioned_aggs) return;
  // An Agg in plane p must connect only ToRs in plane p and cores in plane p.
  for (const NodeId agg : c.aggs) {
    const Node& an = c.topo.node(agg);
    for (const LinkId lid : c.topo.out_links(agg)) {
      const Link& l = c.topo.link(lid);
      const Node& peer = c.topo.node(l.dst);
      if (peer.kind != NodeKind::kTor && peer.kind != NodeKind::kCore) {
        out.push_back("agg " + an.name + " connected to unexpected node " + peer.name);
        continue;
      }
      if (peer.loc.plane != an.loc.plane) {
        out.push_back("dual-plane violation: agg " + an.name + " (plane " +
                      std::to_string(an.loc.plane) + ") linked to " + peer.name + " (plane " +
                      std::to_string(peer.loc.plane) + ")");
      }
    }
  }
}

void check_chip_budget(const Cluster& c, Bandwidth budget, std::vector<std::string>& out) {
  for (const Node& n : c.topo.nodes()) {
    if (n.kind != NodeKind::kTor && n.kind != NodeKind::kAgg && n.kind != NodeKind::kCore)
      continue;
    Bandwidth total = Bandwidth::zero();
    for (const LinkId lid : c.topo.out_links(n.id)) total += c.topo.link(lid).capacity;
    if (total > budget) {
      std::ostringstream os;
      os << "chip budget exceeded on " << n.name << ": " << to_string(total) << " > "
         << to_string(budget);
      out.push_back(os.str());
    }
  }
}

}  // namespace

TierProfile discover_tiers(const Cluster& cluster) {
  TierProfile t;
  t.has_agg = !cluster.aggs.empty();
  t.has_core = !cluster.cores.empty();
  t.plane_partitioned_aggs = t.has_agg;
  for (const NodeId agg : cluster.aggs) {
    if (cluster.topo.node(agg).loc.plane < 0) t.plane_partitioned_aggs = false;
  }
  for (const NodeId tor : cluster.tors) {
    const Location& loc = cluster.topo.node(tor).loc;
    if (loc.plane >= 0) t.planar_access = true;
    if (loc.rail >= 0) t.rail_tors = true;
    if (!t.tor_mesh) {
      for (const LinkId l : cluster.topo.out_links(tor)) {
        if (cluster.topo.node(cluster.topo.link(l).dst).kind == NodeKind::kTor) {
          t.tor_mesh = true;
          break;
        }
      }
    }
  }
  return t;
}

std::vector<std::string> validate(const Cluster& cluster, const ValidationOptions& opts) {
  std::vector<std::string> out;
  const TierProfile tiers = discover_tiers(cluster);
  check_dual_links(cluster, out);
  check_nic_wiring(cluster, out);
  check_dual_plane_isolation(cluster, tiers, out);
  if (opts.check_chip_budget) check_chip_budget(cluster, opts.chip_capacity, out);
  return out;
}

void validate_or_throw(const Cluster& cluster, const ValidationOptions& opts) {
  const auto violations = validate(cluster, opts);
  if (violations.empty()) return;
  std::string msg = "topology validation failed:";
  for (const auto& v : violations) msg += "\n  " + v;
  throw ConfigError{msg};
}

}  // namespace hpn::topo
