// UB-Mesh-lite: a rows x cols switch grid, full-mesh wired along every row
// and every column (a 2D HyperX). Any two switches are <= 2 fabric hops
// apart (same row/column: 1; otherwise: row-then-column or column-then-row,
// which ECMP naturally load-balances as two equal-cost paths). Hosts attach
// all NICs single-port to their local switch — the mesh trades the Clos
// aggregation tier for wider switch-to-switch fan-out.
#include <string>

#include "common/check.h"
#include "topo/builders.h"

namespace hpn::topo {

UbMeshConfig UbMeshConfig::tiny() {
  UbMeshConfig cfg;
  cfg.rows = 2;
  cfg.cols = 2;
  cfg.hosts_per_switch = 2;
  return cfg;
}

Cluster build_ubmesh(const UbMeshConfig& cfg) {
  HPN_CHECK_MSG(cfg.rows >= 1 && cfg.cols >= 1, "ubmesh config: grid must be non-empty");
  HPN_CHECK_MSG(cfg.rows * cfg.cols >= 2, "ubmesh config: need at least two switches");
  HPN_CHECK_MSG(cfg.hosts_per_switch >= 1, "ubmesh config: need hosts on each switch");
  HPN_CHECK_MSG(cfg.gpus_per_host >= 1, "ubmesh config: need at least one GPU per host");

  Cluster c;
  c.arch = Arch::kUbMeshLite;
  c.gpus_per_host = cfg.gpus_per_host;
  c.pods = 1;
  c.segments_per_pod = cfg.rows * cfg.cols;

  // Switch grid: [row][col]. Every switch is its own "segment".
  std::vector<std::vector<NodeId>> grid(static_cast<std::size_t>(cfg.rows));
  for (int r = 0; r < cfg.rows; ++r) {
    for (int col = 0; col < cfg.cols; ++col) {
      const int idx = r * cfg.cols + col;
      Location loc;
      loc.pod = 0;
      loc.segment = static_cast<std::int16_t>(idx);
      loc.local = idx;
      const NodeId tor = c.topo.add_node(
          NodeKind::kTor, "mesh." + std::to_string(r) + "." + std::to_string(col), loc);
      grid[static_cast<std::size_t>(r)].push_back(tor);
      c.tors.push_back(tor);
    }
  }

  // Row meshes, then column meshes.
  for (int r = 0; r < cfg.rows; ++r) {
    for (int a = 0; a < cfg.cols; ++a) {
      for (int b = a + 1; b < cfg.cols; ++b) {
        c.topo.add_duplex_link(grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(a)],
                               grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(b)],
                               LinkKind::kFabric, cfg.speeds.fabric, cfg.speeds.fabric_latency);
      }
    }
  }
  for (int col = 0; col < cfg.cols; ++col) {
    for (int a = 0; a < cfg.rows; ++a) {
      for (int b = a + 1; b < cfg.rows; ++b) {
        c.topo.add_duplex_link(grid[static_cast<std::size_t>(a)][static_cast<std::size_t>(col)],
                               grid[static_cast<std::size_t>(b)][static_cast<std::size_t>(col)],
                               LinkKind::kFabric, cfg.speeds.fabric, cfg.speeds.fabric_latency);
      }
    }
  }

  for (int r = 0; r < cfg.rows; ++r) {
    for (int col = 0; col < cfg.cols; ++col) {
      const NodeId tor = grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)];
      const int seg = r * cfg.cols + col;
      for (int h = 0; h < cfg.hosts_per_switch; ++h) {
        Host host;
        host.index = static_cast<std::int32_t>(c.hosts.size());
        host.pod = 0;
        host.segment = static_cast<std::int16_t>(seg);
        const std::string hname = "h" + std::to_string(host.index);

        Location hloc;
        hloc.pod = host.pod;
        hloc.segment = host.segment;
        hloc.host = host.index;
        host.nvswitch = c.topo.add_node(NodeKind::kNvSwitch, hname + ".nvsw", hloc);

        for (int rail = 0; rail < cfg.gpus_per_host; ++rail) {
          Location gloc = hloc;
          gloc.rail = static_cast<std::int16_t>(rail);
          const NodeId gpu =
              c.topo.add_node(NodeKind::kGpu, hname + ".g" + std::to_string(rail), gloc);
          host.gpus.push_back(gpu);
          host.gpu_nvlink.push_back(
              c.topo.add_duplex_link(gpu, host.nvswitch, LinkKind::kNvlink, cfg.speeds.nvlink,
                                     cfg.speeds.nvlink_latency)
                  .forward);

          const NodeId nic =
              c.topo.add_node(NodeKind::kNic, hname + ".nic" + std::to_string(rail), gloc);
          host.gpu_pcie.push_back(
              c.topo.add_duplex_link(gpu, nic, LinkKind::kPcie, cfg.speeds.pcie,
                                     cfg.speeds.pcie_latency)
                  .forward);

          NicAttachment att;
          att.nic = nic;
          att.ports = 1;
          att.tor[0] = tor;
          att.access[0] =
              c.topo.add_duplex_link(nic, tor, LinkKind::kAccess, cfg.speeds.access,
                                     cfg.speeds.access_latency)
                  .forward;
          host.nics.push_back(att);
        }
        c.hosts.push_back(std::move(host));
      }
    }
  }

  c.rebuild_gpu_index();
  return c;
}

}  // namespace hpn::topo
