// Topology export: Graphviz DOT for eyeballing wiring, and a line-oriented
// JSON inventory for downstream tooling. Both are lossless at the node/link
// level (kinds, locations, capacities, state).
#pragma once

#include <ostream>
#include <string>

#include "topo/cluster.h"

namespace hpn::topo {

struct ExportOptions {
  /// Collapse endpoint devices (GPUs, NICs, NVSwitches) into their host to
  /// keep paper-scale graphs renderable; switches are always emitted.
  bool collapse_hosts = false;
  /// Skip duplex twins (emit one undirected edge per cable).
  bool undirected = true;
};

/// Graphviz DOT. Nodes are shaped/colored by kind, ranked by tier; edges
/// are labeled with capacity and dashed when down.
void write_dot(const Cluster& cluster, std::ostream& os, const ExportOptions& opts = {});

/// JSON: {"nodes":[...],"links":[...]} with full metadata.
void write_json(const Cluster& cluster, std::ostream& os);

std::string to_dot(const Cluster& cluster, const ExportOptions& opts = {});
std::string to_json(const Cluster& cluster);

}  // namespace hpn::topo
