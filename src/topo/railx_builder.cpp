// RailX-lite: a reconfigurable-rail fabric. Hosts are split into groups;
// each (group, rail) pair owns a single-plane ToR. Same-rail ToRs across
// groups are joined by an optical-circuit tier that a rotor schedule
// rewires: epoch e keeps exactly one "difference class" of group pairs up
// (class d joins group g with group (g+d) mod G). Every circuit link exists
// permanently in the graph — reconfiguration is modeled as up/down flips —
// so the chip-budget check and cost proxy see the full port count, the way
// a real OCS patch panel would.
//
// The builder leaves epoch 0 (difference 1: the ring) up. With an odd group
// count every difference class is a single Hamiltonian cycle, so any epoch
// keeps each rail connected.
#include <algorithm>
#include <string>

#include "common/check.h"
#include "topo/builders.h"

namespace hpn::topo {

RailXConfig RailXConfig::tiny() {
  RailXConfig cfg;
  cfg.groups = 5;
  cfg.hosts_per_group = 2;
  return cfg;
}

Cluster build_railx(const RailXConfig& cfg) {
  HPN_CHECK_MSG(cfg.groups >= 2, "railx config: need at least two groups");
  HPN_CHECK_MSG(cfg.hosts_per_group >= 1, "railx config: need hosts in each group");
  HPN_CHECK_MSG(cfg.gpus_per_host >= 1, "railx config: need at least one rail");

  Cluster c;
  c.arch = Arch::kRailXLite;
  c.gpus_per_host = cfg.gpus_per_host;
  c.pods = 1;
  c.segments_per_pod = cfg.groups;

  const int rails = cfg.gpus_per_host;
  const int groups = cfg.groups;

  // ToR grid: [group][rail].
  std::vector<std::vector<NodeId>> tor_grid(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    for (int rail = 0; rail < rails; ++rail) {
      Location loc;
      loc.pod = 0;
      loc.segment = static_cast<std::int16_t>(g);
      loc.rail = static_cast<std::int16_t>(rail);
      loc.local = g * rails + rail;
      const NodeId tor = c.topo.add_node(
          NodeKind::kTor, "tor.g" + std::to_string(g) + ".r" + std::to_string(rail), loc);
      tor_grid[static_cast<std::size_t>(g)].push_back(tor);
      c.tors.push_back(tor);
    }
  }

  for (int g = 0; g < groups; ++g) {
    for (int h = 0; h < cfg.hosts_per_group; ++h) {
      Host host;
      host.index = static_cast<std::int32_t>(c.hosts.size());
      host.pod = 0;
      host.segment = static_cast<std::int16_t>(g);
      const std::string hname = "h" + std::to_string(host.index);

      Location hloc;
      hloc.pod = host.pod;
      hloc.segment = host.segment;
      hloc.host = host.index;
      host.nvswitch = c.topo.add_node(NodeKind::kNvSwitch, hname + ".nvsw", hloc);

      for (int rail = 0; rail < rails; ++rail) {
        Location gloc = hloc;
        gloc.rail = static_cast<std::int16_t>(rail);
        const NodeId gpu =
            c.topo.add_node(NodeKind::kGpu, hname + ".g" + std::to_string(rail), gloc);
        host.gpus.push_back(gpu);
        host.gpu_nvlink.push_back(
            c.topo.add_duplex_link(gpu, host.nvswitch, LinkKind::kNvlink, cfg.speeds.nvlink,
                                   cfg.speeds.nvlink_latency)
                .forward);

        const NodeId nic =
            c.topo.add_node(NodeKind::kNic, hname + ".nic" + std::to_string(rail), gloc);
        host.gpu_pcie.push_back(
            c.topo.add_duplex_link(gpu, nic, LinkKind::kPcie, cfg.speeds.pcie,
                                   cfg.speeds.pcie_latency)
                .forward);

        NicAttachment att;
        att.nic = nic;
        att.ports = 1;
        const NodeId tor =
            tor_grid[static_cast<std::size_t>(g)][static_cast<std::size_t>(rail)];
        att.tor[0] = tor;
        att.access[0] =
            c.topo.add_duplex_link(nic, tor, LinkKind::kAccess, cfg.speeds.access,
                                   cfg.speeds.access_latency)
                .forward;
        host.nics.push_back(att);
      }
      c.hosts.push_back(std::move(host));
    }
  }

  // ---- Circuit tier --------------------------------------------------------
  // One circuit per unordered group pair and rail. Difference class d
  // (1 <= d <= G/2) holds the pairs {g, (g+d) mod G}; the rotor schedule
  // has G-1 epochs, epoch e activating class min(e+1, G-(e+1)).
  const int max_class = groups / 2;
  // class (1-based) -> circuit forward links of that class, all rails.
  std::vector<std::vector<LinkId>> class_links(static_cast<std::size_t>(max_class + 1));
  for (int d = 1; d <= max_class; ++d) {
    const int pair_count = (2 * d == groups) ? groups / 2 : groups;
    for (int g = 0; g < pair_count; ++g) {
      const int peer = (g + d) % groups;
      for (int rail = 0; rail < rails; ++rail) {
        const LinkId l =
            c.topo.add_duplex_link(tor_grid[static_cast<std::size_t>(g)][static_cast<std::size_t>(rail)],
                                   tor_grid[static_cast<std::size_t>(peer)][static_cast<std::size_t>(rail)],
                                   LinkKind::kFabric, cfg.speeds.fabric,
                                   cfg.speeds.fabric_latency)
                .forward;
        class_links[static_cast<std::size_t>(d)].push_back(l);
      }
    }
  }

  c.circuits.epoch_links.resize(static_cast<std::size_t>(groups - 1));
  for (int e = 0; e < groups - 1; ++e) {
    const int d = std::min(e + 1, groups - (e + 1));
    c.circuits.epoch_links[static_cast<std::size_t>(e)] =
        class_links[static_cast<std::size_t>(d)];
  }

  // Leave epoch 0 up, everything else dark.
  for (int d = 2; d <= max_class; ++d) {
    for (const LinkId l : class_links[static_cast<std::size_t>(d)]) {
      c.topo.set_duplex_up(l, false);
    }
  }

  c.rebuild_gpu_index();
  return c;
}

}  // namespace hpn::topo
