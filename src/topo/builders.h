// Topology builders for every architecture the paper discusses:
//
//  * HPN          — §3–§7: rail-optimized tier1 (1 segment = 1024+64 GPUs on
//                   16 ToRs), dual-plane tier2 (15 segments per Pod), 15:1
//                   oversubscribed tier3 across Pods.
//  * HPN ablations— single-plane (typical Clos tier2, Fig 12a/13a/14a),
//                   single-ToR access (Fig 18 baseline), rail-only tier2
//                   (Table 4).
//  * DCN+         — Appendix C: the previous-generation 3-tier Clos with
//                   dual-ToR, 128-GPU segments, 4 segments per Pod.
//  * Fat tree     — classic k-ary (Table 1 comparator).
//  * Rail-only    — Wang et al.: per-rail switches only, no Agg/Core tier;
//                   cross-rail traffic rides NVSwitch inside the host.
//  * RailX-lite   — reconfigurable rail wiring: per-(group, rail) ToRs plus
//                   an optical-circuit tier with a rotor epoch schedule.
//  * UB-Mesh-lite — 2D full-mesh (HyperX-style) switch grid, single-port
//                   hosts attached to their local switch.
//
// All builders take scale knobs so tests can construct tiny instances and
// benches paper-scale ones; wiring *shape* is identical at every scale.
#pragma once

#include "topo/cluster.h"

namespace hpn::topo {

/// Physical channel properties shared by all builders.
struct LinkSpeeds {
  Bandwidth access = Bandwidth::gbps(200);     ///< NIC port <-> ToR.
  Bandwidth fabric = Bandwidth::gbps(400);     ///< Switch <-> switch.
  /// NVLink per direction. The paper quotes "400GBps bidirectional" for the
  /// H800 eval hosts, i.e. 200 GB/s each way.
  Bandwidth nvlink = Bandwidth::gigabytes_per_sec(200);
  Bandwidth pcie = Bandwidth::gbps(512);       ///< GPU <-> NIC, Gen5 x16.
  Duration nvlink_latency = Duration::nanos(300);
  Duration pcie_latency = Duration::nanos(500);
  Duration access_latency = Duration::micros(1);
  Duration fabric_latency = Duration::micros(1);
};

struct HpnConfig {
  int pods = 1;
  int segments_per_pod = 1;
  int hosts_per_segment = 128;        ///< Active hosts (1024 GPUs).
  int backup_hosts_per_segment = 0;   ///< Paper reserves 8 (§5.1).
  int gpus_per_host = 8;              ///< = number of rails.
  bool dual_tor = true;               ///< false: single-ToR baseline (§9.3).
  bool dual_plane = true;             ///< false: typical Clos tier2 (Fig 12a).
  bool rail_optimized = true;         ///< false: all rails share one ToR set.
  bool rail_only_tier2 = false;       ///< Table 4 variant.
  int tor_uplinks = 60;               ///< 400G uplinks per ToR.
  int aggs_per_plane = 60;            ///< Agg switches per plane per Pod.
  int agg_core_uplinks = 8;           ///< vs 120 downlinks -> 15:1 (§6.2).
  int cores_per_plane = 0;            ///< 0 = auto (= agg_core_uplinks).
  LinkSpeeds speeds;

  /// Full production scale: 15 segments x (128+8) hosts = 15360 active GPUs.
  static HpnConfig paper_pod();
  /// A small instance for tests: shape-identical, minutes -> milliseconds.
  static HpnConfig tiny();
};

Cluster build_hpn(const HpnConfig& cfg);

struct DcnPlusConfig {
  int pods = 1;
  int segments_per_pod = 4;
  int hosts_per_segment = 16;         ///< 128 GPUs per segment.
  int gpus_per_host = 8;
  bool dual_tor = true;
  int aggs_per_pod = 8;
  int links_per_tor_agg = 8;          ///< ToR: 8 aggs x 8 links = 64x400G up.
  int agg_core_uplinks = 64;          ///< Full bisection (1:1).
  int core_count = 0;                 ///< 0 = auto (16).
  LinkSpeeds speeds;

  static DcnPlusConfig paper_pod();
};

Cluster build_dcn_plus(const DcnPlusConfig& cfg);

struct FatTreeConfig {
  int k = 4;                          ///< Even; hosts = k^3/4.
  Bandwidth link = Bandwidth::gbps(400);
  Duration latency = Duration::micros(1);
};

Cluster build_fat_tree(const FatTreeConfig& cfg);

/// Rail-only (Wang et al., "Rail-only: A Low-Cost ... Network for LLMs"):
/// each rail gets its own switch pair spanning every host; there is no Agg
/// or Core tier at all. Cross-rail pairs are unreachable over the backend
/// network by design — collectives must keep traffic rail-local (DP rings)
/// or forward through NVSwitch.
struct RailOnlyConfig {
  int hosts = 8;
  int gpus_per_host = 8;           ///< = rail count.
  bool dual_tor = true;            ///< Keep HPN's dual-ToR access for parity.
  LinkSpeeds speeds;

  static RailOnlyConfig tiny();
};

Cluster build_rail_only(const RailOnlyConfig& cfg);

/// RailX-lite: hosts are split into `groups`; each (group, rail) pair gets
/// one single-plane ToR. Same-rail ToRs across groups are joined by an
/// optical-circuit tier: one circuit link per unordered group pair and
/// rail, with a rotor schedule of `groups - 1` epochs (epoch e keeps the
/// difference-class min(e+1, groups-(e+1)) links up). The builder leaves
/// epoch 0 (the ring) up; `Cluster::circuits` holds the full schedule.
struct RailXConfig {
  int groups = 5;                  ///< >= 2; odd keeps every epoch connected.
  int hosts_per_group = 2;
  int gpus_per_host = 8;
  LinkSpeeds speeds;

  static RailXConfig tiny();
};

Cluster build_railx(const RailXConfig& cfg);

/// UB-Mesh-lite: a rows x cols grid of switches, full-mesh wired along each
/// row and each column (2D HyperX). Hosts attach single-port to their local
/// switch; every host pair is reachable in <= 2 switch-switch hops.
struct UbMeshConfig {
  int rows = 2;
  int cols = 2;
  int hosts_per_switch = 2;
  int gpus_per_host = 8;
  LinkSpeeds speeds;

  static UbMeshConfig tiny();
};

Cluster build_ubmesh(const UbMeshConfig& cfg);

}  // namespace hpn::topo
