// Frontend network (§8) and storage placement (§10).
//
// Each HPN host carries one extra 2x200G NIC (NIC0) into a *physically
// separate* classic 3-tier network with 1:1 oversubscription at every
// layer, shared with the CPFS/OSS storage cluster. Management, dataset
// loading, image pulls, checkpoint save/load and inference traffic ride
// here so they can never perturb the training backend.
//
// §10 debates the alternative — storage on the backend (3.2T per host!) —
// and rejects it: external data would need proxies, storage bursts would
// jitter training, and storage hosts would eat backend ToR ports.
// attach_backend_storage() builds that rejected design so the ablation
// bench can measure exactly those effects.
#pragma once

#include "topo/cluster.h"

namespace hpn::topo {

struct StorageHost {
  NodeId host = NodeId::invalid();  ///< kStorage node.
  NicAttachment nic;                ///< Dual-ToR attachment (frontend or backend).
  bool on_backend = false;
};

struct FrontendConfig {
  /// Compute hosts per frontend segment (dual-ToR pair).
  int hosts_per_segment = 16;
  int aggs = 8;
  /// CPFS/OSS storage hosts (96-128 in production, §8).
  int storage_hosts = 8;
  Bandwidth access = Bandwidth::gbps(200);  ///< 2x200G per NIC.
  Bandwidth fabric = Bandwidth::gbps(400);
  Duration latency = Duration::micros(1);
};

/// Extends an existing backend cluster with its frontend network: adds a
/// frontend NIC per compute host (Host::frontend_nic), frontend ToR pairs,
/// an Agg layer (1:1), and the storage cluster. Returns the storage hosts.
std::vector<StorageHost> attach_frontend(Cluster& cluster, const FrontendConfig& cfg = {});

/// The §10-rejected alternative: storage hosts plugged into *backend* ToRs
/// (consuming the backup ports of segment 0's rail-0/1 ToR pairs). Their
/// traffic then shares the training fabric.
std::vector<StorageHost> attach_backend_storage(Cluster& cluster, int storage_hosts,
                                                Bandwidth access = Bandwidth::gbps(200),
                                                Duration latency = Duration::micros(1));

}  // namespace hpn::topo
