// Failure blast-radius analysis (§2.3).
//
// "The failure of a ToR can make dozens or even hundreds of hosts
// unavailable" — under single-ToR. Dual-ToR turns the same event into
// degradation. This utility removes one component at a time and counts the
// hosts that end up isolated (some NIC with no live port: the synchronous
// job halts) vs merely degraded (lost port bandwidth), quantifying each
// architecture's failure domains structurally.
#pragma once

#include <string>
#include <vector>

#include "topo/cluster.h"

namespace hpn::topo {

struct BlastRadius {
  std::string component;   ///< What failed ("ToR", "Agg", "access link"...).
  int isolated_hosts = 0;  ///< Hosts with an unreachable NIC (job halts).
  int degraded_hosts = 0;  ///< Hosts that lost some port bandwidth.
  double bandwidth_lost_fraction = 0.0;  ///< Cluster access bandwidth lost.
};

/// Blast radius of failing node `victim` (all its links down). The cluster
/// is restored before returning.
BlastRadius blast_radius_of_node(Cluster& cluster, NodeId victim);

/// Blast radius of one access-link failure on (host, rail, port).
BlastRadius blast_radius_of_access(Cluster& cluster, int host, int rail, int port);

/// Worst-case radius over every node of `kind` (exhaustive sweep).
BlastRadius worst_blast_radius(Cluster& cluster, NodeKind kind);

/// Worst-case radius per switch tier actually present in the cluster
/// (discovered from the graph, not assumed from the Arch enum): always the
/// ToR tier, plus Agg/Core rows only when those tiers exist. Fabrics
/// without an aggregation tier get a report with no phantom "no Agg" rows.
std::vector<BlastRadius> blast_radius_report(Cluster& cluster);

}  // namespace hpn::topo
