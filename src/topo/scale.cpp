#include "topo/scale.h"

#include <cmath>

#include "common/check.h"

namespace hpn::topo {
namespace {

/// GPUs a single-chip ToR supports at ~1:1 oversubscription when each GPU
/// has one `access`-speed port on it: half the chip feeds hosts, half feeds
/// uplinks (both measured in bandwidth).
std::int64_t tor_downstream_gpus(const ChipSpec& chip) {
  const double down_budget = chip.capacity.as_bits_per_sec() / 2.0;
  // One 400G GPU = one 400G single-ToR attachment.
  return static_cast<std::int64_t>(down_budget / (2.0 * chip.access_port.as_bits_per_sec()));
}

}  // namespace

std::vector<ScaleStep> scale_mechanisms(const ChipSpec& chip, int rails,
                                        double core_oversubscription) {
  HPN_CHECK(rails >= 1);
  std::vector<ScaleStep> steps;

  // Plain Clos with the chip: tier1 = GPUs one ToR can host at 1:1; tier2 =
  // a two-level Clos of the same chips (uplinks x downstream per ToR).
  const std::int64_t t1 = tor_downstream_gpus(chip);
  const std::int64_t uplinks = static_cast<std::int64_t>(
      chip.capacity.as_bits_per_sec() / 2.0 / chip.fabric_port.as_bits_per_sec());
  const std::int64_t t2 = t1 * uplinks / 2;  // each Agg splits down/up 1:1
  steps.push_back({to_string(chip.capacity) + " Clos", t1, t2});

  // Dual-ToR: each NIC's two 200G ports land on two ToRs -> both scales x2.
  steps.push_back({"Dual-ToR", t1 * 2, t2 * 2});

  // Rail-optimized: a host's 8 NICs spread across 8 ToR sets -> tier1 x8.
  steps.push_back({"Rail-optimized", t1 * 2 * rails, 0});

  // Dual-plane halves ToR-Agg link count -> tier2 x2.
  steps.push_back({"Dual-plane", 0, t2 * 4});

  // 15:1 Agg-Core oversubscription frees 87.5% of Agg ports for segments:
  // uplink ports shrink from 1/2 to 1/(1+15) of the chip -> x(16/2)/ ... the
  // paper rounds the net effect to x1.875 (8K -> 15K).
  const double freed = 2.0 * core_oversubscription / (1.0 + core_oversubscription);
  steps.push_back(
      {"Oversubscription 15:1", 0, static_cast<std::int64_t>(static_cast<double>(t2 * 4) * freed)});
  return steps;
}

PodScale any_to_any_pod(const ChipSpec& chip, int rails) {
  PodScale s;
  s.tier2_planes = 2;
  // ToR: 128 x 200G down (active) + 60 x 400G up within the 51.2T budget.
  const std::int64_t hosts_per_tor = 128;  // active ports, §5.1
  s.gpus_per_segment = hosts_per_tor * rails;  // 1024
  // Agg: 128 x 400G ports, 8 to core (15:1) -> 120 down; one link per ToR
  // per Agg; 8 same-plane ToRs per segment -> 15 segments.
  const std::int64_t agg_down_ports = 120;
  s.segments_per_pod = agg_down_ports / rails;
  s.gpus_per_pod = s.gpus_per_segment * s.segments_per_pod;
  (void)chip;
  return s;
}

PodScale rail_only_pod(const ChipSpec& chip, int rails) {
  PodScale s = any_to_any_pod(chip, rails);
  // Rail-only: each (plane, rail) pair gets its own Agg plane; an Agg's 120
  // down ports now serve one ToR per segment instead of eight.
  s.tier2_planes = 2 * rails;                    // 16
  s.segments_per_pod = s.segments_per_pod * rails;  // 120
  s.gpus_per_pod = s.gpus_per_segment * s.segments_per_pod;  // 122880
  return s;
}

std::vector<PathComplexity> path_complexity_table() {
  return {
      // HPN: only the ToR's uplinks participate (dual-plane pins the rest).
      {"Pod in HPN", 15360, 2, "ToR", 60},
      // SuperPod-ish 3-tier: 32 x 32 x 4 (paper Table 1).
      {"SuperPod", 16384, 3, "ToR+Aggregation+Core", 32 * 32 * 4},
      // Jupiter: ToR+Agg, 8 x 256.
      {"Jupiter", 26000, 3, "ToR+Aggregation", 8 * 256},
      // Fat tree k=48: 48 x 48 at ToR+Agg (core pinned by agg choice).
      {"Fat tree (k=48)", 27648, 3, "ToR+Aggregation", 48 * 48},
  };
}

}  // namespace hpn::topo
