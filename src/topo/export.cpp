#include "topo/export.h"

#include <set>
#include <sstream>
#include <vector>

namespace hpn::topo {
namespace {

const char* dot_shape(NodeKind kind) {
  switch (kind) {
    case NodeKind::kTor: return "box";
    case NodeKind::kAgg: return "box3d";
    case NodeKind::kCore: return "doubleoctagon";
    case NodeKind::kGpu: return "circle";
    case NodeKind::kNic: return "diamond";
    case NodeKind::kNvSwitch: return "hexagon";
    case NodeKind::kHostProxy: return "house";
    case NodeKind::kStorage: return "cylinder";
  }
  return "ellipse";
}

const char* dot_color(NodeKind kind, std::int16_t plane) {
  switch (kind) {
    case NodeKind::kTor:
    case NodeKind::kAgg:
    case NodeKind::kCore:
      return plane == 0 ? "lightblue" : plane == 1 ? "lightpink" : "lightgray";
    case NodeKind::kStorage:
      return "khaki";
    default:
      return "white";
  }
}

bool is_endpoint(NodeKind kind) {
  return kind == NodeKind::kGpu || kind == NodeKind::kNic ||
         kind == NodeKind::kNvSwitch || kind == NodeKind::kHostProxy;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void write_dot(const Cluster& cluster, std::ostream& os, const ExportOptions& opts) {
  os << "graph hpn {\n  rankdir=BT;\n  node [fontsize=9];\n";
  // Emit nodes (optionally collapsing host internals into one node).
  std::vector<std::string> node_name(cluster.topo.node_count());
  for (const Node& n : cluster.topo.nodes()) {
    if (opts.collapse_hosts && is_endpoint(n.kind)) {
      node_name[n.id.index()] = "host" + std::to_string(n.loc.host);
      continue;
    }
    node_name[n.id.index()] = n.name;
  }
  std::set<std::string> emitted;
  for (const Node& n : cluster.topo.nodes()) {
    const std::string& name = node_name[n.id.index()];
    if (!emitted.insert(name).second) continue;
    const bool collapsed = opts.collapse_hosts && is_endpoint(n.kind);
    os << "  \"" << name << "\" [shape=" << (collapsed ? "folder" : dot_shape(n.kind))
       << ", style=filled, fillcolor=\""
       << (collapsed ? "white" : dot_color(n.kind, n.loc.plane)) << "\"];\n";
  }
  // Edges.
  std::set<std::pair<std::string, std::string>> seen_edges;
  for (const Link& l : cluster.topo.links()) {
    if (opts.undirected && l.reverse.value() < l.id.value()) continue;
    std::string a = node_name[l.src.index()];
    std::string b = node_name[l.dst.index()];
    if (a == b) continue;  // collapsed intra-host link
    if (opts.undirected && a > b) std::swap(a, b);
    if (!seen_edges.insert({a, b}).second) continue;
    os << "  \"" << a << "\" -- \"" << b << "\" [label=\"" << to_string(l.capacity)
       << "\"" << (l.up ? "" : ", style=dashed, color=red") << "];\n";
  }
  os << "}\n";
}

void write_json(const Cluster& cluster, std::ostream& os) {
  os << "{\n  \"arch\": \"" << to_string(cluster.arch) << "\",\n  \"nodes\": [\n";
  for (std::size_t i = 0; i < cluster.topo.nodes().size(); ++i) {
    const Node& n = cluster.topo.nodes()[i];
    os << "    {\"id\": " << n.id.value() << ", \"name\": \"" << json_escape(n.name)
       << "\", \"kind\": \"" << to_string(n.kind) << "\", \"pod\": " << n.loc.pod
       << ", \"segment\": " << n.loc.segment << ", \"plane\": " << n.loc.plane
       << ", \"rail\": " << n.loc.rail << ", \"host\": " << n.loc.host << "}"
       << (i + 1 < cluster.topo.nodes().size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"links\": [\n";
  for (std::size_t i = 0; i < cluster.topo.links().size(); ++i) {
    const Link& l = cluster.topo.links()[i];
    os << "    {\"id\": " << l.id.value() << ", \"src\": " << l.src.value()
       << ", \"dst\": " << l.dst.value() << ", \"gbps\": " << l.capacity.as_gbps()
       << ", \"up\": " << (l.up ? "true" : "false") << ", \"reverse\": "
       << l.reverse.value() << "}" << (i + 1 < cluster.topo.links().size() ? "," : "")
       << "\n";
  }
  os << "  ]\n}\n";
}

std::string to_dot(const Cluster& cluster, const ExportOptions& opts) {
  std::ostringstream os;
  write_dot(cluster, os, opts);
  return os.str();
}

std::string to_json(const Cluster& cluster) {
  std::ostringstream os;
  write_json(cluster, os);
  return os.str();
}

}  // namespace hpn::topo
