// Domain decomposition of a built cluster for parallel discrete-event
// simulation (PDES).
//
// HPN's structure is the gift (ROADMAP item 1): rails are segment-isolated
// and the dual planes never re-hash across each other, so almost every
// event in a simulation run touches only one (pod, segment) island. The
// partitioner turns that observation into data: each node is assigned a
// shard, each link is owned by the shard of its *source* node (the egress
// port lives at the sender), and the few links whose endpoints straddle two
// shards become the boundary. The minimum static latency over boundary
// links is the conservative lookahead — a shard processing events strictly
// before `window_start + lookahead` can never be surprised by a message
// from another shard, because anything sent at or after `window_start`
// needs at least one boundary-link latency to arrive.
//
// Communities are discovered data-driven from node Location metadata (the
// same philosophy as topo/validate's TierProfile): (pod, segment) islands
// for hosts/NICs/ToRs, (pod, plane) groups for Aggs, plane groups for
// Cores, and index blocks for nodes without location labels (random fuzz
// multigraphs), so every fabric in the registry partitions without special
// cases. Any assignment is *correct* — boundary classification and
// lookahead derivation do not depend on the communities being well chosen —
// a bad split only costs parallel efficiency.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/cluster.h"

namespace hpn::topo {

struct Partition {
  int shards = 1;
  /// NodeId-indexed shard assignment.
  std::vector<int> node_shard;
  /// LinkId-indexed owner: the shard of the link's source node.
  std::vector<int> link_shard;
  /// Links whose src and dst nodes live in different shards, in id order.
  std::vector<LinkId> boundary_links;
  /// min latency over boundary links; Duration::infinite() when there are
  /// none (fully independent shards).
  Duration lookahead = Duration::infinite();
  /// Node count per shard (load-balance introspection).
  std::vector<std::size_t> nodes_per_shard;

  [[nodiscard]] int shard_of_node(NodeId n) const {
    return node_shard.at(n.index());
  }
  [[nodiscard]] int shard_of_link(LinkId l) const {
    return link_shard.at(l.index());
  }
  /// True when the link's endpoints are owned by different shards — the
  /// event classification every engine layer shares: traffic over such a
  /// link is a cross-shard message, everything else is shard-local.
  [[nodiscard]] bool is_boundary(LinkId l) const {
    return boundary_[l.index()] != 0;
  }

  /// Recompute link_shard / boundary_links / lookahead / nodes_per_shard
  /// from node_shard (tests build adversarial partitions by hand and then
  /// derive; partition_cluster calls this internally).
  void derive_links(const Topology& topo);

 private:
  std::vector<std::uint8_t> boundary_;  ///< LinkId-indexed flag.
};

/// Partition `cluster` into (up to) `shards` domains. Deterministic: same
/// cluster + shard count always yields the same assignment. `shards == 1`
/// puts everything in shard 0 with no boundary (the serial reference every
/// other shard count must reproduce byte-for-byte).
Partition partition_cluster(const Cluster& cluster, int shards);

}  // namespace hpn::topo
