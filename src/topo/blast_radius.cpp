#include "topo/blast_radius.h"

#include <algorithm>

#include "common/check.h"
#include "topo/validate.h"

namespace hpn::topo {
namespace {

BlastRadius assess(const Cluster& c, std::string component) {
  BlastRadius r;
  r.component = std::move(component);
  double total_ports = 0.0, dead_ports = 0.0;
  for (const Host& h : c.hosts) {
    bool isolated = false, degraded = false;
    for (const NicAttachment& att : h.nics) {
      int live = 0;
      for (int p = 0; p < att.ports; ++p) {
        const bool up = c.topo.is_up(att.access.at(static_cast<std::size_t>(p)));
        live += up;
        total_ports += 1.0;
        dead_ports += up ? 0.0 : 1.0;
      }
      if (live == 0) isolated = true;
      if (live < att.ports) degraded = true;
    }
    if (isolated) {
      ++r.isolated_hosts;
    } else if (degraded) {
      ++r.degraded_hosts;
    }
  }
  r.bandwidth_lost_fraction = total_ports > 0.0 ? dead_ports / total_ports : 0.0;
  return r;
}

}  // namespace

BlastRadius blast_radius_of_node(Cluster& cluster, NodeId victim) {
  std::vector<LinkId> dropped;
  for (const LinkId l : cluster.topo.out_links(victim)) {
    if (cluster.topo.is_up(l)) {
      cluster.topo.set_duplex_up(l, false);
      dropped.push_back(l);
    }
  }
  BlastRadius r = assess(cluster, std::string{to_string(cluster.topo.node(victim).kind)} +
                                      " " + cluster.topo.node(victim).name);
  for (const LinkId l : dropped) cluster.topo.set_duplex_up(l, true);
  return r;
}

BlastRadius blast_radius_of_access(Cluster& cluster, int host, int rail, int port) {
  const NicAttachment& att = cluster.hosts.at(static_cast<std::size_t>(host))
                                 .nics.at(static_cast<std::size_t>(rail));
  HPN_CHECK(port >= 0 && port < att.ports);
  const LinkId l = att.access.at(static_cast<std::size_t>(port));
  cluster.topo.set_duplex_up(l, false);
  BlastRadius r = assess(cluster, "access link h" + std::to_string(host) + "/rail" +
                                      std::to_string(rail) + "/port" + std::to_string(port));
  cluster.topo.set_duplex_up(l, true);
  return r;
}

BlastRadius worst_blast_radius(Cluster& cluster, NodeKind kind) {
  BlastRadius worst;
  worst.component = std::string{"no "} + std::string{to_string(kind)};
  for (const Node& n : cluster.topo.nodes()) {
    if (n.kind != kind) continue;
    const BlastRadius r = blast_radius_of_node(cluster, n.id);
    if (r.isolated_hosts > worst.isolated_hosts ||
        (r.isolated_hosts == worst.isolated_hosts &&
         r.degraded_hosts > worst.degraded_hosts)) {
      worst = r;
    }
  }
  return worst;
}

std::vector<BlastRadius> blast_radius_report(Cluster& cluster) {
  const TierProfile tiers = discover_tiers(cluster);
  std::vector<BlastRadius> report;
  report.push_back(worst_blast_radius(cluster, NodeKind::kTor));
  if (tiers.has_agg) report.push_back(worst_blast_radius(cluster, NodeKind::kAgg));
  if (tiers.has_core) report.push_back(worst_blast_radius(cluster, NodeKind::kCore));
  return report;
}

}  // namespace hpn::topo
