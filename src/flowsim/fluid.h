// Fluid (tick-based) network simulation with per-port queues and
// DCQCN-style ECN rate control.
//
// The event-driven FlowSession answers "how fast do transfers finish"; this
// engine answers "what do the switch queues look like while they do" —
// Figs 13/14 (ToR downstream ports under typical-Clos vs dual-plane) and
// Fig 15c (Agg queue buildup) are measured here. Rate control is the
// deterministic fluid limit of DCQCN: additive increase toward line rate,
// multiplicative decrease proportional to the ECN marking probability of
// the most-congested hop, queues integrating (inflow - capacity).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "topo/topology.h"

namespace hpn::flowsim {

struct FluidConfig {
  Duration tick = Duration::micros(100);
  /// Additive increase per tick, as a fraction of the flow's cap.
  double additive_increase = 0.01;
  /// Multiplicative decrease factor applied as rate *= (1 - md * p_mark).
  double md_factor = 0.5;
  /// ECN ramp: marking probability 0 below kmin, pmax above kmax.
  DataSize ecn_kmin = DataSize::kilobytes(10);
  DataSize ecn_kmax = DataSize::megabytes(1);
  double ecn_pmax = 0.2;
  /// Flows start at this fraction of their cap.
  double initial_rate = 1.0;
  double min_rate_fraction = 0.001;
  /// Record tracer queue/utilization samples for watched links every N
  /// ticks (long runs sample sparsely so the trace ring holds the window).
  int trace_sample_every = 1;
};

class FluidSimulator {
 public:
  using CompletionFn = std::function<void(FlowId)>;

  FluidSimulator(const topo::Topology& topology, sim::Simulator& simulator,
                 FluidConfig config = {});
  ~FluidSimulator();
  FluidSimulator(const FluidSimulator&) = delete;
  FluidSimulator& operator=(const FluidSimulator&) = delete;

  /// Infinite-size flows run until stop_flow.
  FlowId start_flow(std::vector<LinkId> path, Bandwidth cap,
                    DataSize size = DataSize::bits(std::numeric_limits<std::int64_t>::max()),
                    CompletionFn on_complete = nullptr);
  bool stop_flow(FlowId id);

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }
  [[nodiscard]] DataSize queue_of(LinkId link) const;
  /// Offered (pre-drop) aggregate arrival rate at the link, last tick.
  [[nodiscard]] Bandwidth arrival_rate(LinkId link) const;
  /// Delivered rate through the link, last tick (<= capacity).
  [[nodiscard]] Bandwidth delivered_rate(LinkId link) const;
  [[nodiscard]] Bandwidth flow_rate(FlowId id) const;
  /// Goodput of a flow last tick (send rate scaled by path bottlenecks).
  [[nodiscard]] Bandwidth flow_goodput(FlowId id) const;

  [[nodiscard]] const FluidConfig& config() const { return config_; }

 private:
  struct ActiveFlow {
    std::vector<LinkId> path;
    double cap_bps = 0.0;
    double rate_bps = 0.0;
    double goodput_bps = 0.0;
    double remaining_bits = 0.0;
    bool infinite = false;
    CompletionFn on_complete;
  };

  struct LinkState {
    double queue_bits = 0.0;
    double arrival_bps = 0.0;
    double delivered_bps = 0.0;
  };

  void tick();
  /// Per-tick rate/queue/conservation checks. Only called when the
  /// simulator's InvariantAuditor is enabled.
  void audit_tick();
  [[nodiscard]] double mark_probability(double queue_bits) const;
  void ensure_ticking();

  const topo::Topology* topo_;
  sim::Simulator* sim_;
  FluidConfig config_;
  std::unordered_map<FlowId, ActiveFlow> flows_;
  std::unordered_map<LinkId, LinkState> links_;
  FlowId::underlying next_id_ = 1;
  std::unique_ptr<sim::PeriodicTimer> timer_;
  std::uint64_t tick_count_ = 0;

  /// Conservation ledger for the auditor (finite flows only; accumulated
  /// while the auditor is enabled).
  double audit_injected_bits_ = 0.0;
  double audit_delivered_bits_ = 0.0;
  double audit_aborted_bits_ = 0.0;
};

}  // namespace hpn::flowsim
