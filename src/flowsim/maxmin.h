// Max-min fair bandwidth allocation (progressive water-filling).
//
// Given flows with fixed paths and optional per-flow rate caps (the NIC
// limit), assigns each flow the max-min fair rate subject to every link's
// capacity. Per-flow caps are handled by treating each cap as a virtual
// single-flow link. This is the steady-state model behind all throughput
// benches (Figs 15-17, 19); queue *dynamics* live in fluid.h.
//
// Two engines share one dense water-filling core (detail::WaterFiller):
//
//  * MaxMinSolver — the stateless cold-solve API: rates for one flow set.
//  * IncrementalMaxMin — keeps flow/link state alive across calls. Flow
//    add/remove/reroute and link up/down flips mark links dirty; resolve()
//    re-runs water-filling only over the connected component(s) of the
//    flow-conflict graph (flows joined by shared links) that contain a
//    dirty link. Untouched components provably keep their allocation, so a
//    single access-link flip at Pod scale re-rates a handful of flows
//    instead of re-solving 100K+ from zero.
//
// The core replaces the seed's per-solve unordered_map with flat vectors
// indexed by LinkId, per-link active-flow lists, and a lazy min-heap of
// link fair shares (shares only rise as flows fix, so stale entries are
// re-pushed on inspection). Each round pops the bottleneck in O(log links)
// and fixes that link's flows in bulk, instead of rescanning every link
// and every flow.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "topo/topology.h"

namespace hpn::flowsim {

struct FlowDemand {
  std::vector<LinkId> path;
  /// Per-flow rate cap (e.g. 200G for one NIC port); infinite by default.
  double cap_bps = std::numeric_limits<double>::infinity();
  /// Output: allocated rate.
  double rate_bps = 0.0;
};

namespace detail {

/// One flow as the water-filling core sees it. `rate_bps` is written in
/// place so both solver front-ends can expose their own flow records.
struct SolverItem {
  const std::vector<LinkId>* path = nullptr;  ///< empty/null = host-local
  double cap_bps = std::numeric_limits<double>::infinity();
  double* rate_bps = nullptr;
};

/// Dense progressive water-filling. Holds per-link scratch (flat arrays
/// indexed by LinkId, epoch-stamped so reuse costs O(touched links), a
/// lazy min-heap of link fair shares, and per-link lists of unfixed
/// flows). Semantics match the seed solver round for round: each round's
/// share is min(link remaining/active, tightest unfixed cap); every flow
/// on a link within kEps of that share (or capped within kEps) fixes.
class WaterFiller {
 public:
  /// Fills `*rate_bps` for every item. Down links stall their flows at 0.
  void run(const topo::Topology& topo, std::vector<SolverItem>& items);

 private:
  struct HeapEntry {
    double share;
    std::uint32_t slot;
  };

  /// Dense slot for a link touched by this run (assigns on first touch).
  std::uint32_t touch(const topo::Topology& topo, LinkId link);
  void fix(std::vector<SolverItem>& items, std::uint32_t i, double share,
           std::size_t& unfixed);
  void heap_push(double share, std::uint32_t slot);
  void heap_pop();

  // LinkId-indexed: dense slot of each link, valid when stamp matches.
  std::vector<std::uint32_t> link_slot_;
  std::vector<std::uint32_t> link_stamp_;
  std::uint32_t stamp_ = 0;

  // Slot-indexed link state for the current run.
  std::vector<double> remaining_;
  std::vector<std::int32_t> active_;
  std::vector<std::vector<std::uint32_t>> slot_items_;  ///< item indexes
  std::size_t slots_used_ = 0;

  std::vector<HeapEntry> heap_;          ///< lazy min-heap on share
  std::vector<std::uint32_t> cap_order_; ///< finite-cap items, cap ascending
  std::vector<std::uint8_t> fixed_;
};

}  // namespace detail

/// Stateless cold solve: rates for one flow set, from scratch.
class MaxMinSolver {
 public:
  explicit MaxMinSolver(const topo::Topology& topology) : topo_{&topology} {}

  /// Fills `rate_bps` for every flow. Flows with empty paths get cap_bps
  /// (purely host-local transfers are only NIC/loopback-limited).
  void solve(std::vector<FlowDemand>& flows);

 private:
  const topo::Topology* topo_;
  detail::WaterFiller filler_;
  std::vector<detail::SolverItem> items_;
};

/// Persistent max-min state with component-scoped incremental re-solve.
///
/// Rates are valid after resolve() and stay valid until the flow set or
/// link states change again. Link up/down flips are discovered either
/// via notify_link_changed (targeted) or notify_topology_changed (an
/// unknown set flipped: resolve() diffs the cached up/down state of every
/// link that carries flows — O(active links), no topology scan).
class IncrementalMaxMin {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kInvalidHandle = std::numeric_limits<Handle>::max();

  explicit IncrementalMaxMin(const topo::Topology& topology) : topo_{&topology} {}

  /// Registers a flow; its rate is available after the next resolve().
  /// Empty-path flows rate immediately at cap (host-local transfers).
  Handle add_flow(std::vector<LinkId> path, double cap_bps);
  void remove_flow(Handle h);
  /// Replace the path (port failover / reroute).
  void set_path(Handle h, std::vector<LinkId> path);
  void set_cap(Handle h, double cap_bps);

  /// A specific link flipped up/down.
  void notify_link_changed(LinkId link);
  /// Some unknown set of links flipped; next resolve() diffs cached state.
  void notify_topology_changed() { scan_links_ = true; }

  /// Re-solves every dirty component. Returns the number of flows re-rated
  /// (0 when nothing changed — untouched components keep their rates).
  std::size_t resolve();

  [[nodiscard]] double rate(Handle h) const { return flows_[h].rate_bps; }
  [[nodiscard]] double cap(Handle h) const { return flows_[h].cap_bps; }
  [[nodiscard]] const std::vector<LinkId>& path(Handle h) const {
    return flows_[h].path;
  }
  [[nodiscard]] std::size_t flow_count() const { return alive_count_; }
  /// Aggregate allocated rate over one link — O(flows on that link).
  [[nodiscard]] double throughput_on(LinkId link) const;

  struct Stats {
    std::uint64_t resolves = 0;       ///< resolve() calls that re-rated flows
    std::uint64_t flows_rerated = 0;  ///< cumulative flows re-rated
    std::uint64_t link_flips = 0;     ///< up/down transitions observed
    std::size_t last_affected = 0;    ///< flows re-rated by the last resolve
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Flow {
    std::vector<LinkId> path;
    double cap_bps = 0.0;
    double rate_bps = 0.0;
    bool alive = false;
  };

  /// Grow LinkId-indexed arrays to cover `link`.
  void ensure_link(LinkId link);
  void attach(Handle h);
  void detach(Handle h);
  void mark_dirty(LinkId link);
  void next_stamp();
  void visit_link(LinkId link);

  const topo::Topology* topo_;
  std::vector<Flow> flows_;
  std::vector<Handle> free_handles_;
  std::size_t alive_count_ = 0;

  // LinkId-indexed membership and cached up/down state.
  std::vector<std::vector<Handle>> link_flows_;
  std::vector<std::uint8_t> link_up_seen_;
  std::vector<LinkId> member_links_;         ///< links with >=1 flow
  std::vector<std::uint32_t> member_pos_;    ///< link -> member_links_ slot

  std::vector<LinkId> dirty_;
  bool scan_links_ = false;

  // resolve() scratch: epoch-stamped visited marks for the component BFS.
  std::vector<std::uint32_t> link_seen_;
  std::vector<std::uint32_t> flow_seen_;
  std::uint32_t stamp_ = 0;
  std::vector<LinkId> bfs_;
  std::vector<Handle> affected_;
  std::vector<detail::SolverItem> items_;
  detail::WaterFiller filler_;
  Stats stats_;
};

}  // namespace hpn::flowsim
