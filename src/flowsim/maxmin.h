// Max-min fair bandwidth allocation (progressive water-filling).
//
// Given flows with fixed paths and optional per-flow rate caps (the NIC
// limit), assigns each flow the max-min fair rate subject to every link's
// capacity. Per-flow caps are handled by treating each cap as a virtual
// single-flow link. This is the steady-state model behind all throughput
// benches (Figs 15-17, 19); queue *dynamics* live in fluid.h.
#pragma once

#include <limits>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "topo/topology.h"

namespace hpn::flowsim {

struct FlowDemand {
  std::vector<LinkId> path;
  /// Per-flow rate cap (e.g. 200G for one NIC port); infinite by default.
  double cap_bps = std::numeric_limits<double>::infinity();
  /// Output: allocated rate.
  double rate_bps = 0.0;
};

class MaxMinSolver {
 public:
  explicit MaxMinSolver(const topo::Topology& topology) : topo_{&topology} {}

  /// Fills `rate_bps` for every flow. Flows with empty paths get cap_bps
  /// (purely host-local transfers are only NIC/loopback-limited).
  void solve(std::vector<FlowDemand>& flows) const;

 private:
  const topo::Topology* topo_;
};

}  // namespace hpn::flowsim
