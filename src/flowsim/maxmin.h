// Max-min fair bandwidth allocation (progressive water-filling).
//
// Given flows with fixed paths and optional per-flow rate caps (the NIC
// limit), assigns each flow the max-min fair rate subject to every link's
// capacity. Per-flow caps are handled by treating each cap as a virtual
// single-flow link. This is the steady-state model behind all throughput
// benches (Figs 15-17, 19); queue *dynamics* live in fluid.h.
//
// Two engines share one water-filling core (detail::WaterFiller):
//
//  * MaxMinSolver — the stateless cold-solve API: rates for one flow set.
//  * IncrementalMaxMin — keeps flow/link state alive across calls. Flow
//    add/remove/reroute and link up/down flips mark links dirty; resolve()
//    re-runs water-filling only over the connected component(s) of the
//    flow-conflict graph (flows joined by shared links) that contain a
//    dirty link. Untouched components provably keep their allocation, so a
//    single access-link flip at Pod scale re-rates a handful of flows
//    instead of re-solving 100K+ from zero.
//
// The million-flow hot path stacks two structural wins on top of that:
//
//  * Macro-flow aggregation (IncrementalMaxMin front-end). Paths are
//    interned into dense PathIds (PathTable) and flows sharing the exact
//    (PathId, cap bit-pattern) signature collapse into one weighted solver
//    item — LLM ring collectives make neighbors, channels, and pipeline
//    chunks trivially aggregable, so the solver sees macro-flows instead of
//    member flows. Max-min fairness is anonymous within an equivalence
//    class: identical flows provably receive identical rates, so a weight-w
//    item at rate r is exactly w members at rate r. When a member's cap or
//    path diverges (set_cap/set_path) it is demoted out of its macro-flow
//    into its own class; per-flow mode (Aggregation::kPerFlow) degenerates
//    every class to a singleton and reproduces the preserved reference
//    engine bit for bit.
//
//  * Struct-of-arrays kernel. Per-item state (cap/weight/rate/fixed and a
//    flattened link-path CSR) lives in parallel arrays; the link->item
//    incidence is a CSR built once per run by count + prefix-sum + fill.
//    The fix-in-bulk inner loop walks contiguous index ranges instead of
//    chasing SolverItem/path pointers. Weighted arithmetic subtracts
//    weight*rate per link occurrence — identical to the per-flow engine in
//    real arithmetic; float rounding can differ from summing w singleton
//    subtractions, which is the documented kEps tolerance contract for
//    aggregated mode (weight-1 items are arithmetically identical).
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "flowsim/path_table.h"
#include "topo/topology.h"

namespace hpn::flowsim {

struct FlowDemand {
  std::vector<LinkId> path;
  /// Per-flow rate cap (e.g. 200G for one NIC port); infinite by default.
  double cap_bps = std::numeric_limits<double>::infinity();
  /// Output: allocated rate.
  double rate_bps = 0.0;
};

/// How IncrementalMaxMin maps flows onto water-filling items.
enum class Aggregation : std::uint8_t {
  /// Every flow is its own solver item — the differential-oracle mode,
  /// bit-equal to the preserved pre-aggregation engine.
  kPerFlow,
  /// Flows with identical (interned path, cap bit-pattern) collapse into
  /// one weighted item; the fair share divides exactly among members.
  kMacroFlows,
};

namespace detail {

/// Struct-of-arrays progressive water-filling. Items are registered via
/// begin()/add_item() (flat parallel arrays: cap, weight, rate, fixed, and
/// a CSR of path links); run() builds the link->item incidence CSR for the
/// touched links (epoch-stamped dense slots, reused across runs) and fixes
/// bottlenecked items in bulk. Semantics match the seed solver round for
/// round: each round's share is min(link remaining/active_weight, tightest
/// unfixed cap); every item on a link within kEps of that share (or capped
/// within kEps) fixes at min(share, cap), draining weight*rate from each
/// link occurrence on its path.
class WaterFiller {
 public:
  /// Start a new item batch (clears previous items, keeps link scratch).
  void begin(std::size_t item_hint);

  /// Register one item. `weight` is the macro-flow member count (1 for
  /// per-flow items); `links` may contain duplicates (multigraph walks) —
  /// each occurrence drains the link separately, as w parallel flows would.
  std::uint32_t add_item(const LinkId* links, std::size_t hops, double cap_bps,
                         double weight);

  /// Rate every item. Down links stall their items at 0.
  void run(const topo::Topology& topo);

  /// Per-member allocated rate of item `i` (valid after run()).
  [[nodiscard]] double rate(std::uint32_t i) const { return item_rate_[i]; }

 private:
  struct HeapEntry {
    double share;
    std::uint32_t slot;
  };

  /// Dense slot for a link touched by this run (assigns on first touch).
  std::uint32_t touch(const topo::Topology& topo, LinkId link);
  void fix(std::uint32_t i, double share, std::size_t& unfixed);
  void heap_push(double share, std::uint32_t slot);
  void heap_pop();

  // Item SoA. item_path_off_ is a CSR into path_links_ (size items+1).
  std::vector<std::uint32_t> item_path_off_;
  std::vector<LinkId> path_links_;
  std::vector<double> item_cap_;
  std::vector<double> item_weight_;
  std::vector<double> item_rate_;
  std::vector<std::uint8_t> item_fixed_;

  // LinkId-indexed: dense slot of each link, valid when stamp matches.
  std::vector<std::uint32_t> link_slot_;
  std::vector<std::uint32_t> link_stamp_;
  std::uint32_t stamp_ = 0;

  // Slot-indexed link state for the current run.
  std::vector<double> remaining_;
  std::vector<double> active_weight_;
  std::size_t slots_used_ = 0;

  // Slot -> item incidence CSR, rebuilt per run (count, prefix-sum, fill).
  std::vector<std::uint32_t> slot_count_;
  std::vector<std::uint32_t> slot_items_off_;
  std::vector<std::uint32_t> slot_items_;

  std::vector<HeapEntry> heap_;          ///< lazy min-heap on share
  std::vector<std::uint32_t> cap_order_; ///< finite-cap items, cap ascending
};

}  // namespace detail

/// Stateless cold solve: rates for one flow set, from scratch.
class MaxMinSolver {
 public:
  explicit MaxMinSolver(const topo::Topology& topology) : topo_{&topology} {}

  /// Fills `rate_bps` for every flow. Flows with empty paths get cap_bps
  /// (purely host-local transfers are only NIC/loopback-limited).
  void solve(std::vector<FlowDemand>& flows);

 private:
  const topo::Topology* topo_;
  detail::WaterFiller filler_;
};

/// Persistent max-min state with component-scoped incremental re-solve and
/// macro-flow aggregation.
///
/// Rates are valid after resolve() and stay valid until the flow set or
/// link states change again. Link up/down flips are discovered either
/// via notify_link_changed (targeted) or notify_topology_changed (an
/// unknown set flipped: resolve() diffs the cached up/down state of every
/// link that carries flows — O(active links), no topology scan).
///
/// Internally flows are grouped into equivalence classes by (interned
/// path, cap bit-pattern); the component BFS, dirty tracking, and solver
/// items all operate on classes, so a ring collective with 16 same-edge
/// members costs one item instead of 16. Per-flow counters (resolve()'s
/// return value, stats().flows_rerated) stay member-weighted.
class IncrementalMaxMin {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kInvalidHandle = std::numeric_limits<Handle>::max();

  explicit IncrementalMaxMin(const topo::Topology& topology,
                             Aggregation mode = Aggregation::kMacroFlows)
      : topo_{&topology}, mode_{mode} {}

  /// Registers a flow; its rate is available after the next resolve().
  /// Empty-path flows rate immediately at cap (host-local transfers).
  Handle add_flow(const std::vector<LinkId>& path, double cap_bps) {
    return add_flow(paths_.intern(path), cap_bps);
  }
  Handle add_flow(PathId path, double cap_bps);
  void remove_flow(Handle h);
  /// Replace the path (port failover / reroute).
  void set_path(Handle h, const std::vector<LinkId>& path) {
    set_path(h, paths_.intern(path));
  }
  void set_path(Handle h, PathId path);
  void set_cap(Handle h, double cap_bps);

  /// A specific link flipped up/down.
  void notify_link_changed(LinkId link);
  /// Some unknown set of links flipped; next resolve() diffs cached state.
  void notify_topology_changed() { scan_links_ = true; }

  /// Re-solves every dirty component. Returns the number of flows re-rated
  /// (0 when nothing changed — untouched components keep their rates).
  std::size_t resolve();

  [[nodiscard]] double rate(Handle h) const {
    const Flow& f = flows_[h];
    return f.group == kNoGroup ? f.rate_bps : groups_[f.group].rate_bps;
  }
  [[nodiscard]] double cap(Handle h) const { return flows_[h].cap_bps; }
  [[nodiscard]] const std::vector<LinkId>& path(Handle h) const {
    return paths_.links(flows_[h].path);
  }
  [[nodiscard]] PathId path_id(Handle h) const { return flows_[h].path; }
  [[nodiscard]] std::size_t flow_count() const { return alive_count_; }
  [[nodiscard]] Aggregation mode() const { return mode_; }

  /// The interner shared by every path this engine has seen. Callers that
  /// send the same path repeatedly (collectives) intern once and pass the
  /// PathId overloads to skip the per-flow vector hashing entirely.
  [[nodiscard]] PathTable& paths() { return paths_; }
  [[nodiscard]] const PathTable& paths() const { return paths_; }

  /// Aggregate allocated rate over one link — O(classes on that link).
  [[nodiscard]] double throughput_on(LinkId link) const;

  struct Stats {
    std::uint64_t resolves = 0;       ///< resolve() calls that re-rated flows
    std::uint64_t flows_rerated = 0;  ///< cumulative flows re-rated
    std::uint64_t link_flips = 0;     ///< up/down transitions observed
    std::size_t last_affected = 0;    ///< flows re-rated by the last resolve
    std::uint64_t macros_formed = 0;  ///< classes that reached 2 members
    std::uint64_t demotions = 0;      ///< members split out of a >=2 macro
                                      ///< by set_cap/set_path divergence
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Point-in-time shape of the aggregation (live network flows only;
  /// host-local flows never reach the solver). O(classes) to compute.
  struct AggregationSnapshot {
    std::size_t flows = 0;         ///< member flows across all classes
    std::size_t macro_flows = 0;   ///< solver items after aggregation
    std::size_t multi_member = 0;  ///< classes with >= 2 members
    std::size_t members_p50 = 0;   ///< median members per class
    std::size_t members_max = 0;   ///< largest class
    /// Flow-count collapse factor the solver enjoys (1.0 = no aggregation).
    [[nodiscard]] double collapse() const {
      return macro_flows == 0
                 ? 1.0
                 : static_cast<double>(flows) / static_cast<double>(macro_flows);
    }
  };
  [[nodiscard]] AggregationSnapshot aggregation() const;

 private:
  static constexpr std::uint32_t kNoGroup = std::numeric_limits<std::uint32_t>::max();

  struct Flow {
    PathId path = PathTable::kEmpty;
    double cap_bps = 0.0;
    /// Authoritative only for host-local flows (group == kNoGroup);
    /// network flows read their class's rate.
    double rate_bps = 0.0;
    std::uint32_t group = kNoGroup;
    std::uint32_t member_pos = 0;  ///< index into the class's member list
    bool alive = false;
  };

  /// One (path, cap) equivalence class == one weighted solver item.
  struct Group {
    PathId path = PathId::invalid();
    double cap_bps = 0.0;
    double rate_bps = 0.0;  ///< per-member rate from the last resolve
    std::vector<Handle> members;
  };

  struct GroupKey {
    std::uint32_t path;
    std::uint64_t cap_bits;
    bool operator==(const GroupKey&) const = default;
  };
  struct GroupKeyHash {
    std::size_t operator()(const GroupKey& k) const noexcept {
      std::uint64_t h = k.cap_bits * 0x9E3779B97F4A7C15ULL ^
                        (static_cast<std::uint64_t>(k.path) << 1);
      h ^= h >> 30;
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };

  static GroupKey key_of(PathId path, double cap_bps) {
    return GroupKey{path.value(), std::bit_cast<std::uint64_t>(cap_bps)};
  }

  /// Grow LinkId-indexed arrays to cover `link`.
  void ensure_link(LinkId link);
  std::uint32_t new_group(PathId path, double cap_bps);
  void attach_group(std::uint32_t gid);
  void detach_group(std::uint32_t gid);
  /// Find-or-create the class for `h`'s (path, cap) and add it.
  void join_group(Handle h);
  /// Remove `h` from its class, freeing empty classes.
  void leave_group(Handle h, bool count_demotion);
  void mark_dirty(LinkId link);
  void mark_path_dirty(PathId path);
  void next_stamp();
  void visit_link(LinkId link);

  const topo::Topology* topo_;
  Aggregation mode_;
  PathTable paths_;
  std::vector<Flow> flows_;
  std::vector<Handle> free_handles_;
  std::size_t alive_count_ = 0;

  std::vector<Group> groups_;
  std::vector<std::uint32_t> free_groups_;
  /// (path, cap) -> class id; only maintained in kMacroFlows mode.
  std::unordered_map<GroupKey, std::uint32_t, GroupKeyHash> group_index_;

  // LinkId-indexed membership (class ids, one entry per path occurrence)
  // and cached up/down state.
  std::vector<std::vector<std::uint32_t>> link_groups_;
  std::vector<std::uint8_t> link_up_seen_;
  std::vector<LinkId> member_links_;         ///< links with >=1 class
  std::vector<std::uint32_t> member_pos_;    ///< link -> member_links_ slot

  std::vector<LinkId> dirty_;
  bool scan_links_ = false;

  // resolve() scratch: epoch-stamped visited marks for the component BFS.
  std::vector<std::uint32_t> link_seen_;
  std::vector<std::uint32_t> group_seen_;
  std::uint32_t stamp_ = 0;
  std::vector<LinkId> bfs_;
  std::vector<std::uint32_t> affected_groups_;
  detail::WaterFiller filler_;
  Stats stats_;
};

}  // namespace hpn::flowsim
