#include "flowsim/maxmin.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hpn::flowsim {

namespace detail {

namespace {
// Relative tolerance for "this item sits on the bottleneck": matches the
// seed solver so allocations agree rate for rate.
constexpr double kEps = 1e-6;
constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();
}  // namespace

void WaterFiller::begin(std::size_t item_hint) {
  item_path_off_.clear();
  item_path_off_.reserve(item_hint + 1);
  item_path_off_.push_back(0);
  path_links_.clear();
  item_cap_.clear();
  item_cap_.reserve(item_hint);
  item_weight_.clear();
  item_rate_.clear();
  item_fixed_.clear();
}

std::uint32_t WaterFiller::add_item(const LinkId* links, std::size_t hops,
                                    double cap_bps, double weight) {
  const auto i = static_cast<std::uint32_t>(item_cap_.size());
  path_links_.insert(path_links_.end(), links, links + hops);
  item_path_off_.push_back(static_cast<std::uint32_t>(path_links_.size()));
  item_cap_.push_back(cap_bps);
  item_weight_.push_back(weight);
  item_rate_.push_back(0.0);
  item_fixed_.push_back(0);
  return i;
}

void WaterFiller::heap_push(double share, std::uint32_t slot) {
  heap_.push_back(HeapEntry{share, slot});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) { return a.share > b.share; });
}

void WaterFiller::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const HeapEntry& a, const HeapEntry& b) { return a.share > b.share; });
  heap_.pop_back();
}

std::uint32_t WaterFiller::touch(const topo::Topology& topo, LinkId link) {
  const std::size_t idx = link.index();
  if (idx >= link_slot_.size()) {
    link_slot_.resize(topo.link_count(), kNoSlot);
    link_stamp_.resize(topo.link_count(), 0);
  }
  if (link_stamp_[idx] == stamp_) return link_slot_[idx];
  link_stamp_[idx] = stamp_;
  const auto slot = static_cast<std::uint32_t>(slots_used_++);
  link_slot_[idx] = slot;
  if (slot >= remaining_.size()) {
    remaining_.push_back(0.0);
    active_weight_.push_back(0.0);
    slot_count_.push_back(0);
  }
  remaining_[slot] = topo.link(link).capacity.as_bits_per_sec();
  active_weight_[slot] = 0.0;
  slot_count_[slot] = 0;
  return slot;
}

void WaterFiller::fix(std::uint32_t i, double share, std::size_t& unfixed) {
  const double rate = std::min(share, item_cap_[i]);
  item_rate_[i] = rate;
  item_fixed_[i] = 1;
  --unfixed;
  // Weight-1 items drain exactly `rate` per occurrence (1.0 * r == r), so
  // per-flow mode is bit-equal to the reference kernel; weighted drains are
  // exact in reals, within float rounding of w singleton subtractions.
  const double w = item_weight_[i];
  const double drain = w * rate;
  const std::uint32_t pend = item_path_off_[i + 1];
  for (std::uint32_t k = item_path_off_[i]; k < pend; ++k) {
    const std::uint32_t slot = link_slot_[path_links_[k].index()];
    remaining_[slot] = std::max(0.0, remaining_[slot] - drain);
    active_weight_[slot] -= w;
  }
}

void WaterFiller::run(const topo::Topology& topo) {
  if (++stamp_ == 0) {  // epoch wrapped: every cached slot is now garbage
    std::fill(link_stamp_.begin(), link_stamp_.end(), 0u);
    stamp_ = 1;
  }
  slots_used_ = 0;
  heap_.clear();
  cap_order_.clear();
  const auto n = static_cast<std::uint32_t>(item_cap_.size());

  // Pass 1: classify items and register their link occurrences (slot
  // weights, plus per-slot occurrence counts for the CSR below).
  std::size_t unfixed = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    item_rate_[i] = 0.0;
    const std::uint32_t pbeg = item_path_off_[i];
    const std::uint32_t pend = item_path_off_[i + 1];
    if (pbeg == pend) {
      item_rate_[i] = std::isfinite(item_cap_[i]) ? item_cap_[i] : 0.0;
      item_fixed_[i] = 1;
      continue;
    }
    // An item whose path crosses a down link is stalled at rate 0 (RDMA
    // retransmits into a black hole until the path is repaired/rerouted).
    bool stalled = false;
    for (std::uint32_t k = pbeg; k < pend; ++k) stalled |= !topo.link(path_links_[k]).up;
    if (stalled) {
      item_fixed_[i] = 1;
      continue;
    }
    ++unfixed;
    const double w = item_weight_[i];
    for (std::uint32_t k = pbeg; k < pend; ++k) {
      const std::uint32_t slot = touch(topo, path_links_[k]);
      active_weight_[slot] += w;
      ++slot_count_[slot];
    }
    if (std::isfinite(item_cap_[i])) cap_order_.push_back(i);
  }

  // Build the slot -> item incidence CSR: prefix-sum the occurrence counts,
  // then fill (reusing slot_count_ as the per-slot write cursor). Duplicate
  // links in a path (multigraph walks) yield one entry per occurrence.
  slot_items_off_.assign(slots_used_ + 1, 0);
  for (std::uint32_t s = 0; s < slots_used_; ++s) {
    slot_items_off_[s + 1] = slot_items_off_[s] + slot_count_[s];
  }
  slot_items_.resize(slot_items_off_[slots_used_]);
  for (std::uint32_t s = 0; s < slots_used_; ++s) slot_count_[s] = slot_items_off_[s];
  for (std::uint32_t i = 0; i < n; ++i) {
    if (item_fixed_[i] != 0) continue;  // host-local or stalled: never touched
    const std::uint32_t pend = item_path_off_[i + 1];
    for (std::uint32_t k = item_path_off_[i]; k < pend; ++k) {
      const std::uint32_t slot = link_slot_[path_links_[k].index()];
      slot_items_[slot_count_[slot]++] = i;
    }
  }

  std::sort(cap_order_.begin(), cap_order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (item_cap_[a] != item_cap_[b]) return item_cap_[a] < item_cap_[b];
              return a < b;
            });
  heap_.reserve(slots_used_);
  for (std::uint32_t slot = 0; slot < slots_used_; ++slot) {
    heap_.push_back(HeapEntry{remaining_[slot] / active_weight_[slot], slot});
  }
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) { return a.share > b.share; });

  std::size_t cap_ptr = 0;
  while (unfixed > 0) {
    // Bottleneck fair share: tightest link share (lazy heap: shares only
    // rise as items fix, so a stale top re-pushes its current value), or
    // the tightest unfixed cap.
    double link_share = std::numeric_limits<double>::infinity();
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      if (active_weight_[top.slot] <= 0.0) {
        heap_pop();
        continue;
      }
      const double cur = remaining_[top.slot] / active_weight_[top.slot];
      if (cur > top.share) {
        heap_pop();
        heap_push(cur, top.slot);
        continue;
      }
      link_share = cur;
      break;
    }
    while (cap_ptr < cap_order_.size() && item_fixed_[cap_order_[cap_ptr]] != 0) ++cap_ptr;
    const double cap_share = cap_ptr < cap_order_.size()
                                 ? item_cap_[cap_order_[cap_ptr]]
                                 : std::numeric_limits<double>::infinity();
    double share = std::min(link_share, cap_share);
    HPN_CHECK_MSG(std::isfinite(share), "water-filling found no finite bottleneck");
    share = std::max(share, 0.0);
    const double thr = share * (1.0 + kEps);

    const std::size_t unfixed_before = unfixed;

    // Fix every item capped at (or within kEps of) the share.
    for (std::size_t p = cap_ptr; p < cap_order_.size(); ++p) {
      const std::uint32_t i = cap_order_[p];
      if (item_fixed_[i] != 0) continue;
      if (item_cap_[i] > thr) break;
      fix(i, share, unfixed);
    }
    // Fix items on bottleneck links in bulk: pop while the top link's
    // current share is within kEps of the round share.
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      if (active_weight_[top.slot] <= 0.0) {
        heap_pop();
        continue;
      }
      const double cur = remaining_[top.slot] / active_weight_[top.slot];
      if (cur > top.share) {
        heap_pop();
        heap_push(cur, top.slot);
        continue;
      }
      if (cur > thr) break;
      heap_pop();
      const std::uint32_t send = slot_items_off_[top.slot + 1];
      for (std::uint32_t k = slot_items_off_[top.slot]; k < send; ++k) {
        const std::uint32_t i = slot_items_[k];
        if (item_fixed_[i] == 0) fix(i, share, unfixed);
      }
    }
    HPN_CHECK_MSG(unfixed < unfixed_before, "water-filling made no progress");
  }
}

}  // namespace detail

void MaxMinSolver::solve(std::vector<FlowDemand>& flows) {
  filler_.begin(flows.size());
  for (const FlowDemand& f : flows) {
    filler_.add_item(f.path.data(), f.path.size(), f.cap_bps, 1.0);
  }
  filler_.run(*topo_);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows[i].rate_bps = filler_.rate(static_cast<std::uint32_t>(i));
  }
}

IncrementalMaxMin::Handle IncrementalMaxMin::add_flow(PathId path, double cap_bps) {
  Handle h;
  if (!free_handles_.empty()) {
    h = free_handles_.back();
    free_handles_.pop_back();
  } else {
    h = static_cast<Handle>(flows_.size());
    flows_.emplace_back();
  }
  Flow& f = flows_[h];
  f.path = path;
  f.cap_bps = cap_bps;
  f.alive = true;
  f.group = kNoGroup;
  ++alive_count_;
  if (paths_.hops(path) == 0) {
    // Host-local transfers are only NIC/loopback-limited; rate them now.
    f.rate_bps = std::isfinite(cap_bps) ? cap_bps : 0.0;
    return h;
  }
  f.rate_bps = 0.0;
  join_group(h);
  return h;
}

void IncrementalMaxMin::remove_flow(Handle h) {
  Flow& f = flows_[h];
  HPN_CHECK_MSG(f.alive, "remove_flow on dead handle");
  leave_group(h, /*count_demotion=*/false);
  f.path = PathTable::kEmpty;
  f.alive = false;
  f.rate_bps = 0.0;
  --alive_count_;
  free_handles_.push_back(h);
}

void IncrementalMaxMin::set_path(Handle h, PathId path) {
  Flow& f = flows_[h];
  HPN_CHECK_MSG(f.alive, "set_path on dead handle");
  if (f.group != kNoGroup && groups_[f.group].path == path) {
    // Same interned path: membership is unchanged, but keep the per-flow
    // engine's contract of re-rating the touched component.
    mark_path_dirty(path);
    return;
  }
  leave_group(h, /*count_demotion=*/true);
  f.path = path;
  if (paths_.hops(path) == 0) {
    f.rate_bps = std::isfinite(f.cap_bps) ? f.cap_bps : 0.0;
    return;
  }
  f.rate_bps = 0.0;
  join_group(h);
}

void IncrementalMaxMin::set_cap(Handle h, double cap_bps) {
  Flow& f = flows_[h];
  HPN_CHECK_MSG(f.alive, "set_cap on dead handle");
  if (f.group == kNoGroup) {
    f.cap_bps = cap_bps;
    f.rate_bps = std::isfinite(cap_bps) ? cap_bps : 0.0;
    return;
  }
  if (std::bit_cast<std::uint64_t>(cap_bps) == std::bit_cast<std::uint64_t>(f.cap_bps)) {
    // Identical cap bit-pattern: membership holds; re-rate the component
    // like the per-flow engine does.
    mark_path_dirty(groups_[f.group].path);
    return;
  }
  leave_group(h, /*count_demotion=*/true);
  f.cap_bps = cap_bps;
  join_group(h);
}

void IncrementalMaxMin::notify_link_changed(LinkId link) { mark_dirty(link); }

std::size_t IncrementalMaxMin::resolve() {
  if (scan_links_) {
    // Unknown links flipped: diff cached up/down state of every link that
    // carries at least one class (a flip on a flow-free link changes no
    // allocation, so it can be ignored until a flow lands on it).
    scan_links_ = false;
    for (const LinkId l : member_links_) {
      const std::uint8_t up = topo_->link(l).up ? 1 : 0;
      if (link_up_seen_[l.index()] != up) {
        link_up_seen_[l.index()] = up;
        dirty_.push_back(l);
        ++stats_.link_flips;
      }
    }
  }
  if (dirty_.empty()) {
    stats_.last_affected = 0;
    return 0;
  }

  // Closure of the conflict graph over the dirty seeds: every class on a
  // reached link joins, pulling in every link of its path. Classes outside
  // the closure share no link (transitively) with anything that changed,
  // so their max-min subproblem — and rate — is untouched.
  next_stamp();
  bfs_.clear();
  affected_groups_.clear();
  for (const LinkId l : dirty_) visit_link(l);
  dirty_.clear();
  for (std::size_t qi = 0; qi < bfs_.size(); ++qi) {
    const LinkId l = bfs_[qi];
    link_up_seen_[l.index()] = topo_->link(l).up ? 1 : 0;
    for (const std::uint32_t gid : link_groups_[l.index()]) {
      if (group_seen_[gid] == stamp_) continue;
      group_seen_[gid] = stamp_;
      affected_groups_.push_back(gid);
      for (const LinkId pl : paths_.links(groups_[gid].path)) visit_link(pl);
    }
  }
  if (affected_groups_.empty()) {
    stats_.last_affected = 0;
    return 0;
  }

  filler_.begin(affected_groups_.size());
  std::size_t rerated = 0;
  for (const std::uint32_t gid : affected_groups_) {
    const Group& g = groups_[gid];
    const std::vector<LinkId>& links = paths_.links(g.path);
    filler_.add_item(links.data(), links.size(), g.cap_bps,
                     static_cast<double>(g.members.size()));
    rerated += g.members.size();
  }
  filler_.run(*topo_);
  for (std::uint32_t i = 0; i < affected_groups_.size(); ++i) {
    groups_[affected_groups_[i]].rate_bps = filler_.rate(i);
  }

  ++stats_.resolves;
  stats_.flows_rerated += rerated;
  stats_.last_affected = rerated;
  return rerated;
}

double IncrementalMaxMin::throughput_on(LinkId link) const {
  if (link.index() >= link_groups_.size()) return 0.0;
  double sum = 0.0;
  for (const std::uint32_t gid : link_groups_[link.index()]) {
    const Group& g = groups_[gid];
    sum += g.rate_bps * static_cast<double>(g.members.size());
  }
  return sum;
}

IncrementalMaxMin::AggregationSnapshot IncrementalMaxMin::aggregation() const {
  AggregationSnapshot s;
  std::vector<std::size_t> sizes;
  sizes.reserve(groups_.size());
  for (const Group& g : groups_) {
    if (g.members.empty()) continue;  // free-list entry
    sizes.push_back(g.members.size());
    s.flows += g.members.size();
    if (g.members.size() >= 2) ++s.multi_member;
    s.members_max = std::max(s.members_max, g.members.size());
  }
  s.macro_flows = sizes.size();
  if (!sizes.empty()) {
    const auto mid = sizes.begin() + static_cast<std::ptrdiff_t>(sizes.size() / 2);
    std::nth_element(sizes.begin(), mid, sizes.end());
    s.members_p50 = *mid;
  }
  return s;
}

void IncrementalMaxMin::ensure_link(LinkId link) {
  const std::size_t idx = link.index();
  if (idx < link_groups_.size()) return;
  const std::size_t n = std::max(topo_->link_count(), idx + 1);
  link_groups_.resize(n);
  link_up_seen_.resize(n, 1);
  member_pos_.resize(n, std::numeric_limits<std::uint32_t>::max());
  link_seen_.resize(n, 0);
}

std::uint32_t IncrementalMaxMin::new_group(PathId path, double cap_bps) {
  std::uint32_t gid;
  if (!free_groups_.empty()) {
    gid = free_groups_.back();
    free_groups_.pop_back();
  } else {
    gid = static_cast<std::uint32_t>(groups_.size());
    groups_.emplace_back();
    group_seen_.push_back(0);
  }
  Group& g = groups_[gid];
  g.path = path;
  g.cap_bps = cap_bps;
  g.rate_bps = 0.0;
  g.members.clear();
  attach_group(gid);
  return gid;
}

void IncrementalMaxMin::attach_group(std::uint32_t gid) {
  for (const LinkId l : paths_.links(groups_[gid].path)) {
    ensure_link(l);
    const std::size_t idx = l.index();
    if (link_groups_[idx].empty()) {
      member_pos_[idx] = static_cast<std::uint32_t>(member_links_.size());
      member_links_.push_back(l);
      link_up_seen_[idx] = topo_->link(l).up ? 1 : 0;
    }
    link_groups_[idx].push_back(gid);
  }
}

void IncrementalMaxMin::detach_group(std::uint32_t gid) {
  for (const LinkId l : paths_.links(groups_[gid].path)) {
    const std::size_t idx = l.index();
    auto& members = link_groups_[idx];
    const auto it = std::find(members.begin(), members.end(), gid);
    HPN_CHECK_MSG(it != members.end(), "class missing from link membership");
    *it = members.back();
    members.pop_back();
    if (members.empty()) {
      // Swap-erase this link out of the member list.
      const std::uint32_t pos = member_pos_[idx];
      const LinkId moved = member_links_.back();
      member_links_[pos] = moved;
      member_pos_[moved.index()] = pos;
      member_links_.pop_back();
      member_pos_[idx] = std::numeric_limits<std::uint32_t>::max();
    }
  }
}

void IncrementalMaxMin::join_group(Handle h) {
  Flow& f = flows_[h];
  std::uint32_t gid;
  if (mode_ == Aggregation::kMacroFlows) {
    const auto [it, inserted] = group_index_.try_emplace(key_of(f.path, f.cap_bps), 0u);
    if (inserted) it->second = new_group(f.path, f.cap_bps);
    gid = it->second;
  } else {
    gid = new_group(f.path, f.cap_bps);
  }
  Group& g = groups_[gid];
  f.group = gid;
  f.member_pos = static_cast<std::uint32_t>(g.members.size());
  g.members.push_back(h);
  if (g.members.size() == 2) ++stats_.macros_formed;
  mark_path_dirty(g.path);
}

void IncrementalMaxMin::leave_group(Handle h, bool count_demotion) {
  Flow& f = flows_[h];
  const std::uint32_t gid = f.group;
  if (gid == kNoGroup) return;  // host-local: never grouped
  Group& g = groups_[gid];
  if (count_demotion && g.members.size() >= 2) ++stats_.demotions;
  const Handle moved = g.members.back();
  g.members[f.member_pos] = moved;
  flows_[moved].member_pos = f.member_pos;
  g.members.pop_back();
  f.group = kNoGroup;
  mark_path_dirty(g.path);
  if (g.members.empty()) {
    if (mode_ == Aggregation::kMacroFlows) {
      group_index_.erase(key_of(g.path, g.cap_bps));
    }
    detach_group(gid);
    g.path = PathId::invalid();
    free_groups_.push_back(gid);
  }
}

void IncrementalMaxMin::mark_dirty(LinkId link) {
  ensure_link(link);
  dirty_.push_back(link);
}

void IncrementalMaxMin::mark_path_dirty(PathId path) {
  for (const LinkId l : paths_.links(path)) mark_dirty(l);
}

void IncrementalMaxMin::next_stamp() {
  if (++stamp_ == 0) {
    std::fill(link_seen_.begin(), link_seen_.end(), 0u);
    std::fill(group_seen_.begin(), group_seen_.end(), 0u);
    stamp_ = 1;
  }
}

void IncrementalMaxMin::visit_link(LinkId link) {
  ensure_link(link);
  const std::size_t idx = link.index();
  if (link_seen_[idx] == stamp_) return;
  link_seen_[idx] = stamp_;
  bfs_.push_back(link);
}

}  // namespace hpn::flowsim
