// Packet-level network simulation with PFC and DCQCN — the finest of the
// three engines.
//
// RoCEv2 deployments like HPN's run *lossless*: Priority Flow Control
// pauses the upstream port when an egress queue crosses Xoff, and DCQCN
// (ECN marks -> CNPs -> multiplicative decrease) keeps queues off the PFC
// cliff. This engine models individual MTU-sized packets through per-port
// FIFO queues with serialization + propagation delay, probabilistic ECN
// marking, CNP-driven DCQCN rate control, PFC pause/resume with its
// head-of-line blocking, and (in lossy mode) tail drops with timeout
// retransmission.
//
// Hot-path state is dense: ports_ is a LinkId-indexed flat vector (every
// per-packet touch is an array index, mirroring the max-min solver's
// layout), per-port FIFOs are capacity-retaining rings, and flows live in
// a slot map so FlowIds stay stable while storage is recycled. Combined
// with the simulator's pooled events, steady-state forwarding does not
// allocate.
//
// Use it for micro-scenarios (incast, HoL victims, engine cross-
// validation); the flow-level engines cover cluster scale.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "topo/topology.h"

namespace hpn::flowsim {

struct PacketSimConfig {
  DataSize mtu = DataSize::bytes(4'096);
  /// Per egress-port buffer.
  DataSize port_buffer = DataSize::kilobytes(512);
  /// Lossless mode: PFC pause above xoff, resume below xon. When false,
  /// overflowing packets are tail-dropped and retransmitted on timeout.
  bool pfc = true;
  DataSize pfc_xoff = DataSize::kilobytes(256);
  DataSize pfc_xon = DataSize::kilobytes(128);
  /// ECN marking ramp.
  DataSize ecn_kmin = DataSize::kilobytes(40);
  DataSize ecn_kmax = DataSize::kilobytes(200);
  double ecn_pmax = 0.2;
  /// DCQCN: alpha-weighted multiplicative decrease per CNP, additive
  /// increase while CNP-free.
  double dcqcn_alpha_g = 0.0625;
  Duration dcqcn_rate_increase_period = Duration::micros(55);
  Bandwidth dcqcn_ai = Bandwidth::gbps(5);
  Duration retransmit_timeout = Duration::millis(1);
  std::uint64_t seed = 42;
};

class PacketSimulator {
 public:
  using CompletionFn = std::function<void(FlowId)>;

  PacketSimulator(const topo::Topology& topology, sim::Simulator& simulator,
                  PacketSimConfig config = {});

  FlowId start_flow(std::vector<LinkId> path, DataSize size, Bandwidth line_rate,
                    CompletionFn on_complete = nullptr);

  // ---- Per-link statistics --------------------------------------------------
  [[nodiscard]] DataSize queue_of(LinkId link) const;
  [[nodiscard]] std::uint64_t drops_on(LinkId link) const;
  [[nodiscard]] std::uint64_t tx_bytes_on(LinkId link) const;
  [[nodiscard]] Duration paused_time(LinkId link) const;
  [[nodiscard]] std::uint64_t ecn_marks() const { return ecn_marks_; }
  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_packets_; }
  [[nodiscard]] Bandwidth flow_rate(FlowId id) const;
  [[nodiscard]] std::size_t active_flows() const { return active_flows_; }

  /// Drain-time audit: every port empty, and (once all flows completed) the
  /// byte ledger closes — injected = delivered + dropped + discarded. Call
  /// after the simulator ran to quiescence; no-op unless the auditor is
  /// enabled (and it must have been enabled before the first start_flow for
  /// the ledger to balance).
  void audit_quiescent() const;

 private:
  struct Packet {
    FlowId flow;
    std::uint32_t seq = 0;
    std::int32_t bytes = 0;
    bool ecn_marked = false;
    std::size_t hop = 0;       ///< Index into the flow's path.
    std::uint64_t ticket = 0;  ///< Per-port FIFO audit ticket (auditor on).
  };

  /// FIFO ring that keeps its capacity across drain cycles, so a port that
  /// once held k packets never allocates again until it exceeds k.
  class PacketRing {
   public:
    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] const Packet& front() const { return buf_[head_]; }
    void push_back(const Packet& pkt);
    void pop_front();

   private:
    std::vector<Packet> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  struct PortState {
    PacketRing queue;
    std::int64_t queued_bytes = 0;
    bool transmitting = false;
    bool paused = false;
    TimePoint paused_since;
    Duration total_paused = Duration::zero();
    std::uint64_t drops = 0;
    std::uint64_t tx_bytes = 0;
    /// Upstream egress ports this (downstream) queue has PFC-paused.
    /// Sorted ascending (the resume sweep order is part of the determinism
    /// contract — it matches the seed engine's std::set iteration).
    std::vector<LinkId> paused_upstreams;
  };

  /// Field order is deliberate: everything the per-packet path touches
  /// (inject/ack bookkeeping, current rate, the path vector header) packs
  /// into the first cache line; DCQCN state and the completion callback —
  /// touched per CNP / per flow — sit in the second.
  struct SenderFlow {
    std::int64_t total_bytes = 0;
    std::int64_t sent_bytes = 0;        ///< Injected (first transmission).
    std::int64_t delivered_bytes = 0;   ///< Acknowledged at destination.
    double rate_bps = 0.0;
    std::uint32_t next_seq = 0;
    bool injector_armed = false;
    std::vector<LinkId> path;
    double line_rate_bps = 0.0;
    double alpha = 1.0;
    CompletionFn on_complete;
  };

  static constexpr std::uint32_t kNoFlowSlot = 0xFFFFFFFFu;

  [[nodiscard]] PortState& port(LinkId link) { return ports_[link.index()]; }
  [[nodiscard]] const PortState* find_port(LinkId link) const {
    return link.index() < ports_.size() ? &ports_[link.index()] : nullptr;
  }
  /// nullptr once the flow completed (late duplicates, stale timers).
  [[nodiscard]] SenderFlow* find_flow(FlowId id) {
    const std::size_t i = id.index();
    if (i >= flow_slot_of_.size() || flow_slot_of_[i] == kNoFlowSlot) return nullptr;
    return &flow_slots_[flow_slot_of_[i]];
  }
  [[nodiscard]] const SenderFlow* find_flow(FlowId id) const {
    return const_cast<PacketSimulator*>(this)->find_flow(id);
  }
  void erase_flow(FlowId id);

  void arm_injector(FlowId id);
  void inject_next(FlowId id);
  void enqueue(LinkId link, Packet pkt);
  void try_transmit(LinkId link);
  void packet_arrived(LinkId link, Packet pkt);
  void deliver(Packet pkt);
  void handle_cnp(FlowId id);
  void rate_increase_tick(FlowId id);
  /// PFC: pause the upstream egress port that fed this packet into the
  /// (now over-Xoff) queue; remembered so the queue can resume *all* of its
  /// paused feeders once it drains below Xon — resuming only the feeder of
  /// the departing packet would deadlock asymmetric incasts.
  void pause_upstream(PortState& down, const Packet& pkt);
  void resume_all(PortState& down);

  [[nodiscard]] double mark_probability(std::int64_t queue_bytes) const;

  const topo::Topology* topo_;
  sim::Simulator* sim_;
  PacketSimConfig config_;
  std::vector<PortState> ports_;  ///< LinkId-indexed, one entry per topology link.
  std::vector<SenderFlow> flow_slots_;
  std::vector<std::uint32_t> flow_free_;     ///< Recyclable flow_slots_ indices.
  std::vector<std::uint32_t> flow_slot_of_;  ///< FlowId value -> slot (kNoFlowSlot if done).
  std::size_t active_flows_ = 0;
  FlowId::underlying next_id_ = 1;
  std::uint64_t ecn_marks_ = 0;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t rng_state_ = 0x9E3779B97F4A7C15ULL;

  /// Byte ledger for the auditor. A packet ends in exactly one bucket:
  /// delivered at its destination, tail-dropped at a full port, or discarded
  /// in flight because its flow already completed (late duplicate). Only
  /// accumulated while the auditor is enabled.
  std::int64_t audit_injected_bytes_ = 0;
  std::int64_t audit_delivered_bytes_ = 0;
  std::int64_t audit_dropped_bytes_ = 0;
  std::int64_t audit_discarded_bytes_ = 0;
  std::int64_t audit_recredited_bytes_ = 0;
};

}  // namespace hpn::flowsim
