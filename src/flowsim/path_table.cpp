#include "flowsim/path_table.h"

#include <cstring>
#include <limits>

#include "common/check.h"

namespace hpn::flowsim {

namespace {

/// splitmix64 finalizer: full-avalanche mix for the running path hash.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

constexpr std::size_t kInitialBuckets = 1024;  // power of two

}  // namespace

PathTable::PathTable() : table_(kInitialBuckets, 0) {
  paths_.emplace_back();  // PathId{0} = the empty path
  hashes_.push_back(hash_path(nullptr, 0));
  const std::size_t mask = table_.size() - 1;
  table_[hashes_[0] & mask] = 1;
}

std::uint64_t PathTable::hash_path(const LinkId* links, std::size_t hops) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ static_cast<std::uint64_t>(hops);
  for (std::size_t i = 0; i < hops; ++i) {
    h = mix64(h ^ links[i].value());
  }
  return h;
}

void PathTable::grow_table() {
  std::vector<std::uint32_t> bigger(table_.size() * 2, 0);
  const std::size_t mask = bigger.size() - 1;
  for (std::uint32_t entry : table_) {
    if (entry == 0) continue;
    std::size_t b = hashes_[entry - 1] & mask;
    while (bigger[b] != 0) b = (b + 1) & mask;
    bigger[b] = entry;
  }
  table_ = std::move(bigger);
}

PathId PathTable::intern(const LinkId* links, std::size_t hops) {
  ++lookups_;
  const std::uint64_t h = hash_path(links, hops);
  std::size_t mask = table_.size() - 1;
  std::size_t b = h & mask;
  while (table_[b] != 0) {
    const std::uint32_t cand = table_[b] - 1;
    if (hashes_[cand] == h && paths_[cand].size() == hops &&
        (hops == 0 ||
         std::memcmp(paths_[cand].data(), links, hops * sizeof(LinkId)) == 0)) {
      ++hits_;
      return PathId{cand};
    }
    b = (b + 1) & mask;
  }

  HPN_CHECK_MSG(paths_.size() < std::numeric_limits<std::uint32_t>::max() - 1,
                "path table full");
  const auto id = static_cast<std::uint32_t>(paths_.size());
  paths_.emplace_back(links, links + hops);
  hashes_.push_back(h);
  table_[b] = id + 1;
  // Keep load under ~70% so probe chains stay short.
  if ((paths_.size() + 1) * 10 >= table_.size() * 7) {
    grow_table();
  }
  return PathId{id};
}

}  // namespace hpn::flowsim
