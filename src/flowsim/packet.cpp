#include "flowsim/packet.h"

#include <algorithm>

#include "common/check.h"

namespace hpn::flowsim {

PacketSimulator::PacketSimulator(const topo::Topology& topology, sim::Simulator& simulator,
                                 PacketSimConfig config)
    : topo_{&topology}, sim_{&simulator}, config_{config} {
  HPN_CHECK(config_.mtu > DataSize::zero());
  HPN_CHECK(config_.pfc_xon < config_.pfc_xoff);
  rng_state_ ^= config_.seed;
}

FlowId PacketSimulator::start_flow(std::vector<LinkId> path, DataSize size,
                                   Bandwidth line_rate, CompletionFn on_complete) {
  HPN_CHECK(!path.empty());
  HPN_CHECK(size > DataSize::zero());
  const FlowId id{next_id_++};
  SenderFlow f;
  f.path = std::move(path);
  f.total_bytes = static_cast<std::int64_t>(size.as_bytes());
  f.rate_bps = line_rate.as_bits_per_sec();
  f.line_rate_bps = f.rate_bps;
  f.on_complete = std::move(on_complete);
  for (const LinkId l : f.path) ports_.try_emplace(l);
  flows_.emplace(id, std::move(f));
  sim_->trace(metrics::TraceEventKind::kFlowStart, static_cast<std::uint32_t>(id.value()),
              metrics::kTraceNoId, static_cast<double>(size.as_bytes()), "packet");
  arm_injector(id);
  rate_increase_tick(id);
  return id;
}

void PacketSimulator::arm_injector(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  SenderFlow& f = it->second;
  if (f.injector_armed || f.sent_bytes >= f.total_bytes) return;
  f.injector_armed = true;
  const double mtu_bits = static_cast<double>(config_.mtu.as_bits());
  const Duration gap = Duration::seconds(mtu_bits / std::max(1e6, f.rate_bps));
  sim_->schedule_after(gap, [this, id] {
    auto fit = flows_.find(id);
    if (fit == flows_.end()) return;
    fit->second.injector_armed = false;
    inject_next(id);
  });
}

void PacketSimulator::inject_next(FlowId id) {
  SenderFlow& f = flows_.at(id);
  if (f.sent_bytes >= f.total_bytes) return;
  // NIC-side backpressure: a full first-hop buffer stalls the injector.
  const PortState& first = ports_.at(f.path.front());
  if (first.queued_bytes + config_.mtu.as_bits() / 8 >
      static_cast<std::int64_t>(config_.port_buffer.as_bytes())) {
    arm_injector(id);
    return;
  }
  Packet pkt;
  pkt.flow = id;
  pkt.seq = f.next_seq++;
  pkt.bytes = static_cast<std::int32_t>(std::min<std::int64_t>(
      static_cast<std::int64_t>(config_.mtu.as_bytes()), f.total_bytes - f.sent_bytes));
  pkt.hop = 0;
  f.sent_bytes += pkt.bytes;
  enqueue(f.path.front(), pkt);
  arm_injector(id);
}

double PacketSimulator::mark_probability(std::int64_t queue_bytes) const {
  const auto kmin = static_cast<std::int64_t>(config_.ecn_kmin.as_bytes());
  const auto kmax = static_cast<std::int64_t>(config_.ecn_kmax.as_bytes());
  if (queue_bytes <= kmin) return 0.0;
  if (queue_bytes >= kmax) return config_.ecn_pmax;
  return config_.ecn_pmax * static_cast<double>(queue_bytes - kmin) /
         static_cast<double>(kmax - kmin);
}

void PacketSimulator::enqueue(LinkId link, Packet pkt) {
  PortState& port = ports_.at(link);
  const auto buffer = static_cast<std::int64_t>(config_.port_buffer.as_bytes());
  if (port.queued_bytes + pkt.bytes > buffer) {
    if (!config_.pfc) {
      // Tail drop; the sender will re-inject the bytes after its timeout.
      ++port.drops;
      sim_->trace(metrics::TraceEventKind::kPacketDrop,
                  static_cast<std::uint32_t>(link.value()),
                  static_cast<std::uint32_t>(pkt.flow.value()),
                  static_cast<double>(pkt.bytes));
      sim_->schedule_after(config_.retransmit_timeout, [this, id = pkt.flow,
                                                        bytes = pkt.bytes] {
        auto it = flows_.find(id);
        if (it == flows_.end()) return;
        it->second.sent_bytes -= bytes;  // go-back: bytes go out again
        arm_injector(id);
      });
      return;
    }
    // PFC should have paused upstream before overflow; absorb the overshoot
    // (headroom exists on real ports for in-flight frames).
  }

  // ECN marking decision at enqueue time.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  const double u = static_cast<double>(rng_state_ >> 11) / 9007199254740992.0;
  if (u < mark_probability(port.queued_bytes)) {
    pkt.ecn_marked = true;
    ++ecn_marks_;
  }

  port.queued_bytes += pkt.bytes;
  port.queue.push_back(pkt);
  if (sim_->tracer().watching(link)) {
    sim_->trace(metrics::TraceEventKind::kQueueDepth,
                static_cast<std::uint32_t>(link.value()), metrics::kTraceNoId,
                static_cast<double>(port.queued_bytes));
  }
  if (config_.pfc && port.queued_bytes > static_cast<std::int64_t>(config_.pfc_xoff.as_bytes())) {
    pause_upstream(port, pkt);
  }
  try_transmit(link);
}

void PacketSimulator::pause_upstream(PortState& down, const Packet& pkt) {
  if (pkt.hop == 0) return;  // the NIC injector backpressures via buffer
  const auto it = flows_.find(pkt.flow);
  if (it == flows_.end()) return;
  const LinkId upstream = it->second.path[pkt.hop - 1];
  down.paused_upstreams.insert(upstream);
  PortState& up = ports_.at(upstream);
  if (!up.paused) {
    up.paused = true;
    up.paused_since = sim_->now();
    sim_->trace(metrics::TraceEventKind::kPfcPause,
                static_cast<std::uint32_t>(upstream.value()));
  }
}

void PacketSimulator::resume_all(PortState& down) {
  for (const LinkId upstream : down.paused_upstreams) {
    PortState& up = ports_.at(upstream);
    if (up.paused) {
      up.paused = false;
      up.total_paused += sim_->now() - up.paused_since;
      sim_->trace(metrics::TraceEventKind::kPfcResume,
                  static_cast<std::uint32_t>(upstream.value()));
      try_transmit(upstream);
    }
  }
  down.paused_upstreams.clear();
}

void PacketSimulator::try_transmit(LinkId link) {
  PortState& port = ports_.at(link);
  if (port.transmitting || port.paused || port.queue.empty()) return;
  port.transmitting = true;
  const Packet pkt = port.queue.front();
  const topo::Link& l = topo_->link(link);
  const Duration serialize = DataSize::bytes(pkt.bytes) / l.capacity;
  sim_->schedule_after(serialize, [this, link] {
    PortState& p = ports_.at(link);
    p.transmitting = false;
    HPN_CHECK(!p.queue.empty());
    const Packet sent = p.queue.front();
    p.queue.pop_front();
    p.queued_bytes -= sent.bytes;
    p.tx_bytes += static_cast<std::uint64_t>(sent.bytes);
    if (sim_->tracer().watching(link)) {
      sim_->trace(metrics::TraceEventKind::kQueueDepth,
                  static_cast<std::uint32_t>(link.value()), metrics::kTraceNoId,
                  static_cast<double>(p.queued_bytes));
    }
    // PFC resume when the queue drains below Xon: wake every paused feeder.
    if (config_.pfc &&
        p.queued_bytes < static_cast<std::int64_t>(config_.pfc_xon.as_bytes())) {
      resume_all(p);
    }
    const Duration propagation = topo_->link(link).latency;
    sim_->schedule_after(propagation, [this, link, sent] { packet_arrived(link, sent); });
    try_transmit(link);
  });
}

void PacketSimulator::packet_arrived(LinkId link, Packet pkt) {
  (void)link;
  auto it = flows_.find(pkt.flow);
  if (it == flows_.end()) return;  // flow already completed (late duplicate)
  SenderFlow& f = it->second;
  pkt.hop += 1;
  if (pkt.hop >= f.path.size()) {
    deliver(pkt);
    return;
  }
  enqueue(f.path[pkt.hop], pkt);
}

void PacketSimulator::deliver(Packet pkt) {
  auto it = flows_.find(pkt.flow);
  if (it == flows_.end()) return;
  SenderFlow& f = it->second;
  ++delivered_packets_;
  f.delivered_bytes += pkt.bytes;
  if (pkt.ecn_marked) {
    // CNP back to the sender (reverse path propagation, a few us).
    sim_->schedule_after(Duration::micros(5), [this, id = pkt.flow] { handle_cnp(id); });
  }
  if (f.delivered_bytes >= f.total_bytes) {
    auto done = std::move(f.on_complete);
    const FlowId id = pkt.flow;
    flows_.erase(id);
    sim_->trace(metrics::TraceEventKind::kFlowFinish, static_cast<std::uint32_t>(id.value()),
                metrics::kTraceNoId, 0.0, "packet");
    if (done) done(id);
  }
}

void PacketSimulator::handle_cnp(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  SenderFlow& f = it->second;
  f.alpha = (1.0 - config_.dcqcn_alpha_g) * f.alpha + config_.dcqcn_alpha_g;
  f.rate_bps = std::max(1e9, f.rate_bps * (1.0 - f.alpha / 2.0));
}

void PacketSimulator::rate_increase_tick(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  SenderFlow& f = it->second;
  f.alpha *= 1.0 - config_.dcqcn_alpha_g;
  f.rate_bps =
      std::min(f.line_rate_bps, f.rate_bps + config_.dcqcn_ai.as_bits_per_sec());
  sim_->schedule_after(config_.dcqcn_rate_increase_period,
                       [this, id] { rate_increase_tick(id); });
}

DataSize PacketSimulator::queue_of(LinkId link) const {
  const auto it = ports_.find(link);
  return it == ports_.end() ? DataSize::zero() : DataSize::bytes(it->second.queued_bytes);
}

std::uint64_t PacketSimulator::tx_bytes_on(LinkId link) const {
  const auto it = ports_.find(link);
  return it == ports_.end() ? 0 : it->second.tx_bytes;
}

std::uint64_t PacketSimulator::drops_on(LinkId link) const {
  const auto it = ports_.find(link);
  return it == ports_.end() ? 0 : it->second.drops;
}

Duration PacketSimulator::paused_time(LinkId link) const {
  const auto it = ports_.find(link);
  if (it == ports_.end()) return Duration::zero();
  Duration total = it->second.total_paused;
  if (it->second.paused) total += sim_->now() - it->second.paused_since;
  return total;
}

Bandwidth PacketSimulator::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? Bandwidth::zero() : Bandwidth::bits_per_sec(it->second.rate_bps);
}

}  // namespace hpn::flowsim
