#include "flowsim/packet.h"

#include <algorithm>

#include "common/check.h"

namespace hpn::flowsim {

void PacketSimulator::PacketRing::push_back(const Packet& pkt) {
  if (count_ == buf_.size()) {
    // Grow by re-linearizing into a fresh buffer (rare: only when a port
    // exceeds its historical peak depth).
    std::vector<Packet> grown;
    grown.reserve(std::max<std::size_t>(8, buf_.size() * 2));
    for (std::size_t i = 0; i < count_; ++i) grown.push_back(buf_[(head_ + i) % buf_.size()]);
    grown.resize(grown.capacity());
    buf_ = std::move(grown);
    head_ = 0;
  }
  buf_[(head_ + count_) % buf_.size()] = pkt;
  ++count_;
}

void PacketSimulator::PacketRing::pop_front() {
  head_ = (head_ + 1) % buf_.size();
  --count_;
}

PacketSimulator::PacketSimulator(const topo::Topology& topology, sim::Simulator& simulator,
                                 PacketSimConfig config)
    : topo_{&topology}, sim_{&simulator}, config_{config} {
  HPN_CHECK(config_.mtu > DataSize::zero());
  HPN_CHECK(config_.pfc_xon < config_.pfc_xoff);
  ports_.resize(topo_->links().size());
  rng_state_ ^= config_.seed;
}

void PacketSimulator::erase_flow(FlowId id) {
  const std::uint32_t slot = flow_slot_of_[id.index()];
  flow_slot_of_[id.index()] = kNoFlowSlot;
  flow_slots_[slot] = SenderFlow{};  // release path + completion captures promptly
  flow_free_.push_back(slot);
  --active_flows_;
}

FlowId PacketSimulator::start_flow(std::vector<LinkId> path, DataSize size,
                                   Bandwidth line_rate, CompletionFn on_complete) {
  HPN_CHECK(!path.empty());
  HPN_CHECK(size > DataSize::zero());
  for (const LinkId l : path) {
    HPN_CHECK_MSG(l.index() < ports_.size(), "flow path uses a link the topology lacks");
  }
  const FlowId id{next_id_++};

  std::uint32_t slot;
  if (!flow_free_.empty()) {
    slot = flow_free_.back();
    flow_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(flow_slots_.size());
    flow_slots_.emplace_back();
  }
  if (flow_slot_of_.size() <= id.index()) flow_slot_of_.resize(id.index() + 1, kNoFlowSlot);
  flow_slot_of_[id.index()] = slot;
  ++active_flows_;

  SenderFlow& f = flow_slots_[slot];
  f.path = std::move(path);
  f.total_bytes = static_cast<std::int64_t>(size.as_bytes());
  f.rate_bps = line_rate.as_bits_per_sec();
  f.line_rate_bps = f.rate_bps;
  f.on_complete = std::move(on_complete);
  sim_->trace(metrics::TraceEventKind::kFlowStart, static_cast<std::uint32_t>(id.value()),
              metrics::kTraceNoId, static_cast<double>(size.as_bytes()), "packet");
  arm_injector(id);
  rate_increase_tick(id);
  return id;
}

void PacketSimulator::arm_injector(FlowId id) {
  SenderFlow* f = find_flow(id);
  if (f == nullptr) return;
  if (f->injector_armed || f->sent_bytes >= f->total_bytes) return;
  f->injector_armed = true;
  const double mtu_bits = static_cast<double>(config_.mtu.as_bits());
  const Duration gap = Duration::seconds(mtu_bits / std::max(1e6, f->rate_bps));
  sim_->schedule_after(gap, [this, id] {
    SenderFlow* flow = find_flow(id);
    if (flow == nullptr) return;
    flow->injector_armed = false;
    inject_next(id);
  });
}

void PacketSimulator::inject_next(FlowId id) {
  SenderFlow& f = *find_flow(id);
  if (f.sent_bytes >= f.total_bytes) return;
  // NIC-side backpressure: a full first-hop buffer stalls the injector.
  const PortState& first = port(f.path.front());
  if (first.queued_bytes + config_.mtu.as_bits() / 8 >
      static_cast<std::int64_t>(config_.port_buffer.as_bytes())) {
    arm_injector(id);
    return;
  }
  Packet pkt;
  pkt.flow = id;
  pkt.seq = f.next_seq++;
  pkt.bytes = static_cast<std::int32_t>(std::min<std::int64_t>(
      static_cast<std::int64_t>(config_.mtu.as_bytes()), f.total_bytes - f.sent_bytes));
  pkt.hop = 0;
  f.sent_bytes += pkt.bytes;
  if (sim_->auditor().enabled()) audit_injected_bytes_ += pkt.bytes;
  enqueue(f.path.front(), pkt);
  arm_injector(id);
}

double PacketSimulator::mark_probability(std::int64_t queue_bytes) const {
  const auto kmin = static_cast<std::int64_t>(config_.ecn_kmin.as_bytes());
  const auto kmax = static_cast<std::int64_t>(config_.ecn_kmax.as_bytes());
  if (queue_bytes <= kmin) return 0.0;
  if (queue_bytes >= kmax) return config_.ecn_pmax;
  return config_.ecn_pmax * static_cast<double>(queue_bytes - kmin) /
         static_cast<double>(kmax - kmin);
}

void PacketSimulator::enqueue(LinkId link, Packet pkt) {
  PortState& p = port(link);
  const auto buffer = static_cast<std::int64_t>(config_.port_buffer.as_bytes());
  if (p.queued_bytes + pkt.bytes > buffer) {
    if (!config_.pfc) {
      // Tail drop; the sender will re-inject the bytes after its timeout.
      ++p.drops;
      if (sim_->auditor().enabled()) audit_dropped_bytes_ += pkt.bytes;
      sim_->trace(metrics::TraceEventKind::kPacketDrop,
                  static_cast<std::uint32_t>(link.value()),
                  static_cast<std::uint32_t>(pkt.flow.value()),
                  static_cast<double>(pkt.bytes));
      sim_->schedule_after(config_.retransmit_timeout, [this, id = pkt.flow,
                                                        bytes = pkt.bytes] {
        SenderFlow* f = find_flow(id);
        if (f == nullptr) return;
        f->sent_bytes -= bytes;  // go-back: bytes go out again
        if (sim_->auditor().enabled()) audit_recredited_bytes_ += bytes;
        arm_injector(id);
      });
      return;
    }
    // PFC should have paused upstream before overflow; absorb the overshoot
    // (headroom exists on real ports for in-flight frames).
  }

  // ECN marking decision at enqueue time.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  const double u = static_cast<double>(rng_state_ >> 11) / 9007199254740992.0;
  if (u < mark_probability(p.queued_bytes)) {
    pkt.ecn_marked = true;
    ++ecn_marks_;
  }

  if (sim_->auditor().enabled()) {
    pkt.ticket = sim_->auditor().fifo_enqueue(static_cast<std::uint32_t>(link.value()));
  }
  p.queued_bytes += pkt.bytes;
  p.queue.push_back(pkt);
  if (sim_->tracer().watching(link)) {
    sim_->trace(metrics::TraceEventKind::kQueueDepth,
                static_cast<std::uint32_t>(link.value()), metrics::kTraceNoId,
                static_cast<double>(p.queued_bytes));
  }
  if (config_.pfc && p.queued_bytes > static_cast<std::int64_t>(config_.pfc_xoff.as_bytes())) {
    pause_upstream(p, pkt);
  }
  try_transmit(link);
}

void PacketSimulator::pause_upstream(PortState& down, const Packet& pkt) {
  if (pkt.hop == 0) return;  // the NIC injector backpressures via buffer
  const SenderFlow* f = find_flow(pkt.flow);
  if (f == nullptr) return;
  const LinkId upstream = f->path[pkt.hop - 1];
  const auto pos =
      std::lower_bound(down.paused_upstreams.begin(), down.paused_upstreams.end(), upstream);
  if (pos == down.paused_upstreams.end() || *pos != upstream) {
    down.paused_upstreams.insert(pos, upstream);
  }
  PortState& up = port(upstream);
  if (!up.paused) {
    up.paused = true;
    up.paused_since = sim_->now();
    sim_->trace(metrics::TraceEventKind::kPfcPause,
                static_cast<std::uint32_t>(upstream.value()));
  }
}

void PacketSimulator::resume_all(PortState& down) {
  for (const LinkId upstream : down.paused_upstreams) {
    PortState& up = port(upstream);
    if (up.paused) {
      up.paused = false;
      up.total_paused += sim_->now() - up.paused_since;
      sim_->trace(metrics::TraceEventKind::kPfcResume,
                  static_cast<std::uint32_t>(upstream.value()));
      try_transmit(upstream);
    }
  }
  down.paused_upstreams.clear();
}

void PacketSimulator::try_transmit(LinkId link) {
  PortState& p = port(link);
  if (p.transmitting || p.paused || p.queue.empty()) return;
  p.transmitting = true;
  const Packet pkt = p.queue.front();
  const topo::Link& l = topo_->link(link);
  const Duration serialize = DataSize::bytes(pkt.bytes) / l.capacity;
  sim_->schedule_after(serialize, [this, link] {
    PortState& out = port(link);
    out.transmitting = false;
    HPN_CHECK(!out.queue.empty());
    const Packet sent = out.queue.front();
    out.queue.pop_front();
    out.queued_bytes -= sent.bytes;
    out.tx_bytes += static_cast<std::uint64_t>(sent.bytes);
    if (sim_->auditor().enabled()) {
      sim::InvariantAuditor& auditor = sim_->auditor();
      auditor.fifo_dequeue(static_cast<std::uint32_t>(link.value()), sent.ticket,
                           sim_->now());
      auditor.check(out.queued_bytes >= 0, sim::AuditRule::kNegativeQueue, sim_->now(),
                    [&] {
                      std::ostringstream os;
                      os << "port " << link.value() << " queued_bytes went to "
                         << out.queued_bytes;
                      return os.str();
                    });
    }
    if (sim_->tracer().watching(link)) {
      sim_->trace(metrics::TraceEventKind::kQueueDepth,
                  static_cast<std::uint32_t>(link.value()), metrics::kTraceNoId,
                  static_cast<double>(out.queued_bytes));
    }
    // PFC resume when the queue drains below Xon: wake every paused feeder.
    if (config_.pfc &&
        out.queued_bytes < static_cast<std::int64_t>(config_.pfc_xon.as_bytes())) {
      resume_all(out);
    }
    const Duration propagation = topo_->link(link).latency;
    sim_->schedule_after(propagation, [this, link, sent] { packet_arrived(link, sent); });
    try_transmit(link);
  });
}

void PacketSimulator::packet_arrived(LinkId link, Packet pkt) {
  (void)link;
  SenderFlow* f = find_flow(pkt.flow);
  if (f == nullptr) {  // flow already completed (late duplicate)
    if (sim_->auditor().enabled()) audit_discarded_bytes_ += pkt.bytes;
    return;
  }
  pkt.hop += 1;
  if (pkt.hop >= f->path.size()) {
    deliver(pkt);
    return;
  }
  enqueue(f->path[pkt.hop], pkt);
}

void PacketSimulator::deliver(Packet pkt) {
  SenderFlow* f = find_flow(pkt.flow);
  if (f == nullptr) {
    if (sim_->auditor().enabled()) audit_discarded_bytes_ += pkt.bytes;
    return;
  }
  ++delivered_packets_;
  if (sim_->auditor().enabled()) audit_delivered_bytes_ += pkt.bytes;
  f->delivered_bytes += pkt.bytes;
  if (pkt.ecn_marked) {
    // CNP back to the sender (reverse path propagation, a few us).
    sim_->schedule_after(Duration::micros(5), [this, id = pkt.flow] { handle_cnp(id); });
  }
  if (f->delivered_bytes >= f->total_bytes) {
    auto done = std::move(f->on_complete);
    const FlowId id = pkt.flow;
    erase_flow(id);
    sim_->trace(metrics::TraceEventKind::kFlowFinish, static_cast<std::uint32_t>(id.value()),
                metrics::kTraceNoId, 0.0, "packet");
    if (done) done(id);
  }
}

void PacketSimulator::handle_cnp(FlowId id) {
  SenderFlow* f = find_flow(id);
  if (f == nullptr) return;
  f->alpha = (1.0 - config_.dcqcn_alpha_g) * f->alpha + config_.dcqcn_alpha_g;
  f->rate_bps = std::max(1e9, f->rate_bps * (1.0 - f->alpha / 2.0));
}

void PacketSimulator::rate_increase_tick(FlowId id) {
  SenderFlow* f = find_flow(id);
  if (f == nullptr) return;
  f->alpha *= 1.0 - config_.dcqcn_alpha_g;
  f->rate_bps =
      std::min(f->line_rate_bps, f->rate_bps + config_.dcqcn_ai.as_bits_per_sec());
  sim_->schedule_after(config_.dcqcn_rate_increase_period,
                       [this, id] { rate_increase_tick(id); });
}

DataSize PacketSimulator::queue_of(LinkId link) const {
  const PortState* p = find_port(link);
  return p == nullptr ? DataSize::zero() : DataSize::bytes(p->queued_bytes);
}

std::uint64_t PacketSimulator::tx_bytes_on(LinkId link) const {
  const PortState* p = find_port(link);
  return p == nullptr ? 0 : p->tx_bytes;
}

std::uint64_t PacketSimulator::drops_on(LinkId link) const {
  const PortState* p = find_port(link);
  return p == nullptr ? 0 : p->drops;
}

Duration PacketSimulator::paused_time(LinkId link) const {
  const PortState* p = find_port(link);
  if (p == nullptr) return Duration::zero();
  Duration total = p->total_paused;
  if (p->paused) total += sim_->now() - p->paused_since;
  return total;
}

Bandwidth PacketSimulator::flow_rate(FlowId id) const {
  const SenderFlow* f = find_flow(id);
  return f == nullptr ? Bandwidth::zero() : Bandwidth::bits_per_sec(f->rate_bps);
}

void PacketSimulator::audit_quiescent() const {
  sim::InvariantAuditor& auditor = sim_->auditor();
  if (!auditor.enabled()) return;
  const TimePoint now = sim_->now();
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    const PortState& p = ports_[i];
    auditor.check(p.queue.empty() && p.queued_bytes == 0, sim::AuditRule::kStuckQueue,
                  now, [&] {
                    std::ostringstream os;
                    os << "port " << i << " still holds " << p.queued_bytes
                       << " bytes after the event queue drained"
                       << (p.paused ? " (port is PFC-paused)" : "");
                    return os.str();
                  });
  }
  if (active_flows_ != 0) return;  // in-flight bytes make the ledger open-ended
  const std::int64_t accounted =
      audit_delivered_bytes_ + audit_dropped_bytes_ + audit_discarded_bytes_;
  auditor.check(audit_injected_bytes_ == accounted, sim::AuditRule::kConservation, now,
                [&] {
                  std::ostringstream os;
                  os << "packet ledger: injected " << audit_injected_bytes_
                     << " bytes != delivered " << audit_delivered_bytes_ << " + dropped "
                     << audit_dropped_bytes_ << " + discarded " << audit_discarded_bytes_
                     << " (recredited " << audit_recredited_bytes_ << ")";
                  return os.str();
                });
}

}  // namespace hpn::flowsim
