#include "flowsim/shardnet.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <tuple>

#include "common/check.h"

namespace hpn::flowsim {

using metrics::TraceEventKind;

ShardedFlowNet::ShardedFlowNet(const topo::Topology& topology,
                               const topo::Partition& partition,
                               sim::ShardedSimulator& sharded, ShardNetConfig config)
    : topo_{&topology}, part_{&partition}, sim_{&sharded}, config_{config} {
  HPN_CHECK_MSG(partition.shards == sharded.shards(),
                "partition has " << partition.shards << " shards, simulator "
                                 << sharded.shards());
  HPN_CHECK(config_.chunk > DataSize::zero());
  links_.resize(topology.link_count());
  for (const topo::Link& l : topology.links()) links_[l.id.index()].up = l.up;
  scratch_.resize(static_cast<std::size_t>(sharded.shards()));
}

DataSize ShardedFlowNet::chunk_size(const Flow& f, std::uint32_t k) const {
  const std::int64_t cbits = config_.chunk.as_bits();
  const std::int64_t remaining = f.size.as_bits() - static_cast<std::int64_t>(k) * cbits;
  return DataSize::bits(std::min(cbits, remaining));
}

FlowId ShardedFlowNet::start_flow(std::vector<LinkId> path, DataSize size,
                                  TimePoint start, Bandwidth inject_rate) {
  HPN_CHECK_MSG(!path.empty(), "flow needs at least one hop");
  HPN_CHECK(size > DataSize::zero());
  HPN_CHECK(inject_rate.as_bits_per_sec() > 0.0);
  for (std::size_t i = 0; i < path.size(); ++i) {
    const topo::Link& l = topo_->link(path[i]);
    // latency > 0 is the engine's no-same-instant-forwarding invariant: a
    // pump may never create work at its own instant (see header).
    HPN_CHECK_MSG(l.latency > Duration::zero(),
                  "link " << l.id << " has zero latency");
    HPN_CHECK(l.capacity.as_bits_per_sec() > 0.0);
    if (i + 1 < path.size()) {
      HPN_CHECK_MSG(l.dst == topo_->link(path[i + 1]).src,
                    "path breaks between hop " << i << " and " << i + 1);
    }
  }
  const std::int64_t cbits = config_.chunk.as_bits();
  Flow f;
  f.id = FlowId{static_cast<FlowId::underlying>(flows_.size())};
  f.path = std::move(path);
  f.size = size;
  f.start = start;
  f.rate = inject_rate;
  f.chunks = static_cast<std::uint32_t>((size.as_bits() + cbits - 1) / cbits);
  const FlowId id = f.id;
  const int home = owner(f.path.front());
  flows_.push_back(std::move(f));
  sim_->post(home, home, start, key_of(id, 0), [this, id] { inject(id, 0); });
  return id;
}

void ShardedFlowNet::inject(FlowId flow, std::uint32_t k) {
  Flow& f = flows_[flow.index()];
  const int home = owner(f.path.front());
  if (k == 0) {
    core(home).trace(TraceEventKind::kFlowStart, flow.value(), metrics::kTraceNoId,
                     f.size.as_bytes());
  }
  stage(f.path.front(), Staged{flow, k, 0});
  if (k + 1 < f.chunks) {
    // Cumulative pacing formula — no per-step rounding drift, and identical
    // on every decomposition because the whole chain lives on the home shard.
    const DataSize sent = DataSize::bits(config_.chunk.as_bits() *
                                         static_cast<std::int64_t>(k + 1));
    core(home).schedule_at(f.start + sent / f.rate,
                           [this, flow, k] { inject(flow, k + 1); });
  }
}

void ShardedFlowNet::stage(LinkId link, Staged s) {
  LinkState& st = links_[link.index()];
  st.staged.push_back(s);
  if (!st.pump_armed) {
    st.pump_armed = true;
    // Armed *during* this instant's execution, so its sequence number is
    // larger than every event already queued for this instant — the pump
    // fires after all same-instant staging, on every decomposition.
    core(owner(link)).schedule_now([this, link] { pump(link); });
  }
}

void ShardedFlowNet::pump(LinkId link) {
  const int shard = owner(link);
  LinkState& st = links_[link.index()];
  st.pump_armed = false;
  if (!st.up) {
    st.parked.insert(st.parked.end(), st.staged.begin(), st.staged.end());
    st.staged.clear();
    return;
  }
  // Canonical transmit order: arrival order (which is decomposition-
  // dependent) never matters.
  std::sort(st.staged.begin(), st.staged.end(), [](const Staged& a, const Staged& b) {
    return std::tie(a.flow, a.chunk) < std::tie(b.flow, b.chunk);
  });
  const TimePoint now = core(shard).now();
  const topo::Link& l = topo_->link(link);
  for (const Staged& s : st.staged) {
    const Flow& f = flows_[s.flow.index()];
    const Duration tx = chunk_size(f, s.chunk) / l.capacity;  // rounds up, >= 1 ns
    const TimePoint depart = std::max(now, st.free) + tx;
    st.free = depart;
    const TimePoint arrive = depart + l.latency;
    ++scratch_[static_cast<std::size_t>(shard)].chunk_hops;
    if (s.hop + 1 == f.path.size()) {
      // Completion bookkeeping stays on the last link's owner — no cross
      // post for the final propagation.
      const FlowId fid = s.flow;
      core(shard).schedule_at(arrive, [this, fid] { deliver(fid); });
    } else {
      const LinkId next = f.path[s.hop + 1];
      const Staged ns{s.flow, s.chunk, s.hop + 1};
      sim_->post(shard, owner(next), arrive, key_of(s.flow, s.chunk),
                 [this, next, ns] { stage(next, ns); });
    }
  }
  st.staged.clear();
}

void ShardedFlowNet::deliver(FlowId flow) {
  Flow& f = flows_[flow.index()];
  if (++f.delivered < f.chunks) return;
  const int shard = owner(f.path.back());
  const TimePoint now = core(shard).now();
  scratch_[static_cast<std::size_t>(shard)].results.push_back(FlowResult{
      flow, now, f.size, static_cast<std::uint32_t>(f.path.size())});
  core(shard).trace(TraceEventKind::kFlowFinish, flow.value(), metrics::kTraceNoId,
                    (now - f.start).as_seconds());
}

void ShardedFlowNet::fail_link(LinkId link, TimePoint at) {
  const int shard = owner(link);
  sim_->post(shard, shard, at, 0, [this, link] {
    links_[link.index()].up = false;
    core(owner(link)).trace(TraceEventKind::kLinkDown, link.value());
  });
}

void ShardedFlowNet::repair_link(LinkId link, TimePoint at) {
  const int shard = owner(link);
  sim_->post(shard, shard, at, 0, [this, link] {
    LinkState& st = links_[link.index()];
    st.up = true;
    core(owner(link)).trace(TraceEventKind::kLinkUp, link.value());
    if (!st.parked.empty()) {
      st.staged.insert(st.staged.end(), st.parked.begin(), st.parked.end());
      st.parked.clear();
      if (!st.pump_armed) {
        st.pump_armed = true;
        core(owner(link)).schedule_now([this, link] { pump(link); });
      }
    }
  });
}

void ShardedFlowNet::enable_tracing(std::size_t capacity) {
  for (int s = 0; s < sim_->shards(); ++s) core(s).tracer().enable(capacity);
}

std::vector<ShardedFlowNet::FlowResult> ShardedFlowNet::results() const {
  std::vector<FlowResult> all;
  for (const ShardScratch& sc : scratch_) {
    all.insert(all.end(), sc.results.begin(), sc.results.end());
  }
  std::sort(all.begin(), all.end(),
            [](const FlowResult& a, const FlowResult& b) { return a.id < b.id; });
  return all;
}

std::size_t ShardedFlowNet::completed() const {
  std::size_t n = 0;
  for (const ShardScratch& sc : scratch_) n += sc.results.size();
  return n;
}

std::uint64_t ShardedFlowNet::chunk_hops() const {
  std::uint64_t n = 0;
  for (const ShardScratch& sc : scratch_) n += sc.chunk_hops;
  return n;
}

void ShardedFlowNet::write_csv(std::ostream& os) const {
  os << "flow,finish_ns,size_bits,hops\n";
  for (const FlowResult& r : results()) {
    os << r.id.value() << ',' << r.finish.as_nanos() << ',' << r.size.as_bits()
       << ',' << r.hops << '\n';
  }
}

void ShardedFlowNet::write_trace_csv(std::ostream& os) const {
  std::vector<metrics::TraceEvent> all;
  for (int s = 0; s < sim_->shards(); ++s) {
    const metrics::Tracer& tr = sim_->shard(s).tracer();
    // A wrapped ring retains a decomposition-dependent subset; fail loudly
    // rather than let the equivalence contract silently rot.
    HPN_CHECK_MSG(tr.dropped() == 0,
                  "shard " << s << " trace ring overflowed (" << tr.dropped()
                           << " dropped) — raise enable_tracing capacity");
    const std::vector<metrics::TraceEvent> evs = tr.events();
    all.insert(all.end(), evs.begin(), evs.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const metrics::TraceEvent& x, const metrics::TraceEvent& y) {
                     return std::tie(x.at, x.kind, x.a, x.b, x.value) <
                            std::tie(y.at, y.kind, y.a, y.b, y.value);
                   });
  // Same line format as metrics::Tracer::write_csv, so shards=1 output is
  // directly diffable against a single Tracer dump.
  os << "time_ns,kind,a,b,value,label\n";
  char num[32];
  for (const metrics::TraceEvent& ev : all) {
    os << ev.at.as_nanos() << ',' << to_string(ev.kind) << ',';
    if (ev.a != metrics::kTraceNoId) os << ev.a;
    os << ',';
    if (ev.b != metrics::kTraceNoId) os << ev.b;
    std::snprintf(num, sizeof num, "%.9g", ev.value);
    os << ',' << num << ',' << (ev.label != nullptr ? ev.label : "") << '\n';
  }
}

}  // namespace hpn::flowsim
