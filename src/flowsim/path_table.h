// Path interning: content-hash std::vector<LinkId> paths into dense PathIds.
//
// LLM collective traffic is massively regular — every member of a ring
// collective's edge, every channel, every pipeline chunk reuses the same
// handful of link sequences — so the same path is registered thousands of
// times. Interning makes "same path" an O(1) id compare (the hook the
// macro-flow aggregation in IncrementalMaxMin keys on) and stores each
// distinct link sequence exactly once, killing the per-flow vector copies
// that used to ride along through FlowSession / FlowRecord / the solver.
//
// The table is append-only: distinct paths are bounded by the topology's
// path diversity (ECMP fan-out x node pairs), not by flow count, so entries
// are never evicted and `links(id)` references stay valid for the table's
// lifetime. PathId{0} is always the empty path (host-local transfers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace hpn::flowsim {

class PathTable {
 public:
  /// The empty path (host-local flows) is pre-interned as id 0.
  static constexpr PathId kEmpty{0};

  PathTable();

  /// Returns the id of `path`, inserting it on first sight.
  PathId intern(const std::vector<LinkId>& path) {
    return intern(path.data(), path.size());
  }
  PathId intern(const LinkId* links, std::size_t hops);

  /// The interned link sequence. Stable for the table's lifetime.
  [[nodiscard]] const std::vector<LinkId>& links(PathId id) const {
    return paths_[id.index()];
  }
  [[nodiscard]] std::size_t hops(PathId id) const { return paths_[id.index()].size(); }

  /// Distinct paths interned (including the empty path).
  [[nodiscard]] std::size_t size() const { return paths_.size(); }
  /// intern() calls that found an existing entry — the dedup payoff.
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }

 private:
  [[nodiscard]] static std::uint64_t hash_path(const LinkId* links, std::size_t hops);
  void grow_table();

  std::vector<std::vector<LinkId>> paths_;  ///< PathId-indexed link sequences.
  std::vector<std::uint64_t> hashes_;       ///< PathId-indexed content hashes.

  // Open-addressed (linear probe) id set; slot 0-value means empty, else
  // PathId + 1. Power-of-two sized, rebuilt at ~70% load.
  std::vector<std::uint32_t> table_;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace hpn::flowsim
