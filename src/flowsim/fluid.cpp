#include "flowsim/fluid.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hpn::flowsim {

FluidSimulator::FluidSimulator(const topo::Topology& topology, sim::Simulator& simulator,
                               FluidConfig config)
    : topo_{&topology}, sim_{&simulator}, config_{config} {
  HPN_CHECK(config_.tick > Duration::zero());
  HPN_CHECK(config_.ecn_kmax > config_.ecn_kmin);
}

FluidSimulator::~FluidSimulator() = default;

FlowId FluidSimulator::start_flow(std::vector<LinkId> path, Bandwidth cap, DataSize size,
                                  CompletionFn on_complete) {
  HPN_CHECK_MSG(!path.empty(), "fluid flows need a network path");
  HPN_CHECK(cap > Bandwidth::zero());
  const FlowId id{next_id_++};
  ActiveFlow f;
  f.path = std::move(path);
  f.cap_bps = cap.as_bits_per_sec();
  f.rate_bps = f.cap_bps * config_.initial_rate;
  f.infinite = size.as_bits() == std::numeric_limits<std::int64_t>::max();
  f.remaining_bits = static_cast<double>(size.as_bits());
  f.on_complete = std::move(on_complete);
  for (const LinkId l : f.path) links_.try_emplace(l);
  if (sim_->auditor().enabled() && !f.infinite) {
    audit_injected_bits_ += f.remaining_bits;
  }
  const double traced_bytes =
      f.infinite ? 0.0 : static_cast<double>(size.as_bytes());
  flows_.emplace(id, std::move(f));
  sim_->trace(metrics::TraceEventKind::kFlowStart, static_cast<std::uint32_t>(id.value()),
              metrics::kTraceNoId, traced_bytes, "fluid");
  ensure_ticking();
  return id;
}

bool FluidSimulator::stop_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  if (sim_->auditor().enabled() && !it->second.infinite) {
    audit_aborted_bits_ += std::max(0.0, it->second.remaining_bits);
  }
  flows_.erase(it);
  return true;
}

DataSize FluidSimulator::queue_of(LinkId link) const {
  const auto it = links_.find(link);
  return it == links_.end() ? DataSize::zero()
                            : DataSize::bits(static_cast<std::int64_t>(it->second.queue_bits));
}

Bandwidth FluidSimulator::arrival_rate(LinkId link) const {
  const auto it = links_.find(link);
  return it == links_.end() ? Bandwidth::zero()
                            : Bandwidth::bits_per_sec(it->second.arrival_bps);
}

Bandwidth FluidSimulator::delivered_rate(LinkId link) const {
  const auto it = links_.find(link);
  return it == links_.end() ? Bandwidth::zero()
                            : Bandwidth::bits_per_sec(it->second.delivered_bps);
}

Bandwidth FluidSimulator::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? Bandwidth::zero() : Bandwidth::bits_per_sec(it->second.rate_bps);
}

Bandwidth FluidSimulator::flow_goodput(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? Bandwidth::zero()
                            : Bandwidth::bits_per_sec(it->second.goodput_bps);
}

double FluidSimulator::mark_probability(double queue_bits) const {
  const double kmin = static_cast<double>(config_.ecn_kmin.as_bits());
  const double kmax = static_cast<double>(config_.ecn_kmax.as_bits());
  if (queue_bits <= kmin) return 0.0;
  if (queue_bits >= kmax) return config_.ecn_pmax;
  return config_.ecn_pmax * (queue_bits - kmin) / (kmax - kmin);
}

void FluidSimulator::ensure_ticking() {
  if (timer_) return;
  timer_ = std::make_unique<sim::PeriodicTimer>(*sim_, config_.tick, [this] {
    tick();
    if (!flows_.empty()) return true;
    // Self-disarm when idle; restart on next flow. Destroying the timer
    // from inside its own callback is unsafe, so defer.
    sim_->schedule_now([this] {
      if (flows_.empty()) timer_.reset();
    });
    return false;
  });
}

void FluidSimulator::tick() {
  const double dt = config_.tick.as_seconds();

  // 1. Offered arrivals per link.
  for (auto& [lid, st] : links_) st.arrival_bps = 0.0;
  for (const auto& [fid, f] : flows_) {
    for (const LinkId l : f.path) links_.at(l).arrival_bps += f.rate_bps;
  }

  // 2. Queues integrate (arrival - capacity).
  const metrics::Tracer& tracer = sim_->tracer();
  const bool sample =
      tracer.enabled() && config_.trace_sample_every > 0 &&
      tick_count_++ % static_cast<std::uint64_t>(config_.trace_sample_every) == 0;
  for (auto& [lid, st] : links_) {
    const double cap = topo_->link(lid).capacity.as_bits_per_sec();
    st.delivered_bps = std::min(st.arrival_bps + st.queue_bits / dt, cap);
    st.queue_bits = std::max(0.0, st.queue_bits + (st.arrival_bps - cap) * dt);
    if (sample && tracer.watching(lid)) {
      const auto link = static_cast<std::uint32_t>(lid.value());
      sim_->trace(metrics::TraceEventKind::kQueueDepth, link, metrics::kTraceNoId,
                  st.queue_bits / 8.0);
      sim_->trace(metrics::TraceEventKind::kLinkUtilization, link, metrics::kTraceNoId,
                  cap > 0.0 ? st.delivered_bps / cap : 0.0);
    }
  }

  // 3. Per-flow goodput, data accounting and DCQCN feedback.
  std::vector<std::pair<FlowId, CompletionFn>> done;
  for (auto& [fid, f] : flows_) {
    double scale = 1.0;
    double p_mark = 0.0;
    for (const LinkId l : f.path) {
      const LinkState& st = links_.at(l);
      const double cap = topo_->link(l).capacity.as_bits_per_sec();
      if (st.arrival_bps > cap) scale = std::min(scale, cap / st.arrival_bps);
      p_mark = std::max(p_mark, mark_probability(st.queue_bits));
    }
    f.goodput_bps = f.rate_bps * scale;
    if (!f.infinite) {
      if (sim_->auditor().enabled()) {
        audit_delivered_bits_ +=
            std::min(f.goodput_bps * dt, std::max(0.0, f.remaining_bits));
      }
      f.remaining_bits -= f.goodput_bps * dt;
      if (f.remaining_bits <= 0.0) done.emplace_back(fid, std::move(f.on_complete));
    }
    // DCQCN fluid limit: MD on marks, AI toward the cap.
    f.rate_bps *= 1.0 - config_.md_factor * p_mark;
    f.rate_bps += config_.additive_increase * f.cap_bps;
    f.rate_bps = std::clamp(f.rate_bps, config_.min_rate_fraction * f.cap_bps, f.cap_bps);
  }

  for (auto& [fid, fn] : done) {
    flows_.erase(fid);
    sim_->trace(metrics::TraceEventKind::kFlowFinish,
                static_cast<std::uint32_t>(fid.value()), metrics::kTraceNoId, 0.0,
                "fluid");
    if (fn) fn(fid);
  }

  if (sim_->auditor().enabled()) audit_tick();
}

void FluidSimulator::audit_tick() {
  sim::InvariantAuditor& auditor = sim_->auditor();
  const TimePoint now = sim_->now();
  constexpr double kRelEps = 1e-6;

  std::unordered_map<LinkId, double> goodput_load;
  double inflight_bits = 0.0;
  for (const auto& [fid, f] : flows_) {
    if (!f.infinite) inflight_bits += std::max(0.0, f.remaining_bits);
    auditor.check(f.rate_bps <= f.cap_bps * (1.0 + kRelEps) + 1.0,
                  sim::AuditRule::kRateOverCapacity, now, [&, id = fid] {
                    std::ostringstream os;
                    os << "fluid flow " << id.value() << " rate " << f.rate_bps
                       << " bps exceeds its cap " << f.cap_bps << " bps";
                    return os.str();
                  });
    for (const LinkId l : f.path) goodput_load[l] += f.goodput_bps;
  }

  for (const auto& [lid, st] : links_) {
    const double cap = topo_->link(lid).capacity.as_bits_per_sec();
    auditor.check(st.queue_bits >= 0.0, sim::AuditRule::kNegativeQueue, now, [&] {
      std::ostringstream os;
      os << "fluid queue on link " << lid.value() << " is " << st.queue_bits << " bits";
      return os.str();
    });
    auditor.check(st.delivered_bps <= cap * (1.0 + kRelEps) + 1.0,
                  sim::AuditRule::kRateOverCapacity, now, [&] {
                    std::ostringstream os;
                    os << "fluid link " << lid.value() << " delivered " << st.delivered_bps
                       << " bps over capacity " << cap << " bps";
                    return os.str();
                  });
    const auto it = goodput_load.find(lid);
    const double goodput = it == goodput_load.end() ? 0.0 : it->second;
    auditor.check(goodput <= cap * (1.0 + kRelEps) + 1.0,
                  sim::AuditRule::kRateOverCapacity, now, [&] {
                    std::ostringstream os;
                    os << "fluid link " << lid.value() << " carries goodput " << goodput
                       << " bps over capacity " << cap << " bps";
                    return os.str();
                  });
  }

  const double accounted = audit_delivered_bits_ + audit_aborted_bits_ + inflight_bits;
  const double scale = std::max(1.0, audit_injected_bits_);
  auditor.check(std::abs(audit_injected_bits_ - accounted) <= scale * 1e-9 + 1.0,
                sim::AuditRule::kConservation, now, [&] {
                  std::ostringstream os;
                  os << "fluid ledger: injected " << audit_injected_bits_
                     << " bits != delivered " << audit_delivered_bits_ << " + aborted "
                     << audit_aborted_bits_ << " + in-flight " << inflight_bits;
                  return os.str();
                });
}

}  // namespace hpn::flowsim
