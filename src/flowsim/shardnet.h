// Shard-parallel store-and-forward flow transport — the PDES engine layer.
//
// ShardedFlowNet moves flows as fixed-size chunks hop by hop over routed
// paths, with every link owned exclusively by one shard of a
// topo::Partition (the shard of the link's source node). A chunk reaching
// the end of link i is handed to link i+1 — a local event when both links
// share a shard, a timestamped cross-shard message (sim/pdes.h channel
// post) when link i is a boundary link. The conservative contract holds
// structurally: a boundary handoff arrives tx + latency after the sender's
// clock, and the partition's lookahead is the minimum boundary latency.
//
// Decomposition independence (the shard-equivalence battery's subject):
// the merged observable state — flow completions, trace events — is
// byte-identical at every shard count, because nothing observable depends
// on event *arrival order* at a link:
//   - same-instant arrivals are staged, and a pump event (armed at that
//     instant, hence sequenced after every staging event regardless of
//     which shard or channel delivered them) transmits the batch in
//     canonical (flow, chunk) order;
//   - transmit time rounds up to >= 1 ns and link latency is checked > 0,
//     so a pump can never re-stage work at its own instant;
//   - fault/repair events are scheduled before the run starts, so at any
//     instant they sequence before that instant's traffic on every
//     decomposition.
//
// The engine deliberately models contention only as store-and-forward
// serialization (no PFC/ECN; flowsim/packet.h is the fidelity engine) —
// it is the PDES workhorse: per-chunk-per-hop event rates at Pod scale
// with an exactly-checkable parallel decomposition.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/pdes.h"
#include "topo/partition.h"
#include "topo/topology.h"

namespace hpn::flowsim {

struct ShardNetConfig {
  /// Store-and-forward granularity. Smaller chunks = more events and finer
  /// pipelining; completions shift accordingly (a model parameter, not an
  /// accuracy knob — equivalence holds at any value).
  DataSize chunk = DataSize::kilobytes(64);
};

class ShardedFlowNet {
 public:
  /// All three references must outlive the net. `partition.shards` must
  /// match `sharded.shards()`, and the partition's lookahead must not be
  /// tighter than the simulator's (equal in normal use).
  ShardedFlowNet(const topo::Topology& topology, const topo::Partition& partition,
                 sim::ShardedSimulator& sharded, ShardNetConfig config = {});

  /// Register a flow before running: `path` hop-connected, every link with
  /// latency > 0 (the PDES no-same-instant-forwarding requirement) and
  /// nonzero capacity. Injection is paced at `inject_rate` from `start`.
  FlowId start_flow(std::vector<LinkId> path, DataSize size, TimePoint start,
                    Bandwidth inject_rate);

  /// Schedule a link failure/repair before running. State changes apply on
  /// the owner shard at `at`; chunks arriving while down park on the link
  /// and re-stage at repair (chunks already serialized keep propagating —
  /// failure empties the queue's future, not the wire).
  void fail_link(LinkId link, TimePoint at);
  void repair_link(LinkId link, TimePoint at);

  /// Enable per-shard tracers (flow start/finish, link down/up events).
  void enable_tracing(std::size_t capacity = 1u << 20);

  // ---- Post-run observables (merged across shards, canonically ordered) ----

  struct FlowResult {
    FlowId id;
    TimePoint finish;
    DataSize size = DataSize::zero();
    std::uint32_t hops = 0;
  };

  /// Completed flows sorted by id — identical at every shard count.
  [[nodiscard]] std::vector<FlowResult> results() const;
  [[nodiscard]] std::size_t completed() const;
  [[nodiscard]] std::size_t flows() const { return flows_.size(); }
  /// Total chunk transmissions (work metric for bench scaling tables).
  [[nodiscard]] std::uint64_t chunk_hops() const;

  /// `flow,finish_ns,size_bits,hops` rows sorted by flow id.
  void write_csv(std::ostream& os) const;
  /// All shard tracers merged into one canonically sorted CSV (same line
  /// format as metrics::Tracer::write_csv). Byte-identical at every shard
  /// count; ties sort by (time, kind, a, b, value).
  void write_trace_csv(std::ostream& os) const;

 private:
  struct Staged {
    FlowId flow;
    std::uint32_t chunk = 0;
    std::uint32_t hop = 0;  ///< Index into the flow's path of the link.
  };

  struct LinkState {
    TimePoint free;  ///< When the egress finishes its last accepted chunk.
    bool up = true;
    bool pump_armed = false;
    std::vector<Staged> staged;  ///< Arrivals at the pump's instant.
    std::vector<Staged> parked;  ///< Arrivals held while the link is down.
  };

  struct Flow {
    FlowId id;
    std::vector<LinkId> path;
    DataSize size = DataSize::zero();
    TimePoint start;
    Bandwidth rate = Bandwidth::zero();
    std::uint32_t chunks = 0;
    std::uint32_t delivered = 0;  ///< Touched only by the last link's shard.
  };

  /// Per-shard mutable scratch, cache-line separated so neighbor shards
  /// never write the same line.
  struct alignas(64) ShardScratch {
    std::vector<FlowResult> results;
    std::uint64_t chunk_hops = 0;
  };

  [[nodiscard]] int owner(LinkId link) const { return part_->shard_of_link(link); }
  [[nodiscard]] sim::Simulator& core(int s) { return sim_->shard(s); }
  [[nodiscard]] DataSize chunk_size(const Flow& f, std::uint32_t k) const;
  static std::uint64_t key_of(FlowId flow, std::uint32_t chunk) {
    return (static_cast<std::uint64_t>(flow.value()) << 32) | chunk;
  }

  /// Stage an arrival on `link` at the owner's current instant and arm the
  /// pump. Must run on the owner shard (arrival events are delivered there).
  void stage(LinkId link, Staged s);
  /// Transmit every chunk staged at this instant in (flow, chunk) order.
  void pump(LinkId link);
  void inject(FlowId flow, std::uint32_t k);
  void deliver(FlowId flow);

  const topo::Topology* topo_;
  const topo::Partition* part_;
  sim::ShardedSimulator* sim_;
  ShardNetConfig config_;
  std::vector<LinkState> links_;  ///< LinkId-indexed; entry touched only by owner.
  std::vector<Flow> flows_;       ///< FlowId-indexed (ids are dense from 0).
  std::vector<ShardScratch> scratch_;  ///< One per shard.
};

}  // namespace hpn::flowsim
