// Event-driven flow-level network simulation.
//
// Flows start, share bandwidth max-min fairly, and complete; rates are
// recomputed only when the flow set changes, and the next completion is
// scheduled exactly. This gives precise transfer times for collective
// rounds (Figs 15-17, 19) without per-packet cost. Multiple starts or
// completions at one instant are batched into a single recompute.
//
// Rates come from a persistent IncrementalMaxMin engine: each recompute
// re-solves only the connected component(s) of the flow-conflict graph
// that actually changed (flows started/finished/rerouted, links flipped),
// so failure-driven runs pay for the blast radius of the event instead of
// a cold solve over every active flow.
#pragma once

#include <functional>
#include <ostream>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flowsim/maxmin.h"
#include "sim/simulator.h"

namespace hpn::flowsim {

/// One completed (or aborted) flow, for offline analysis/replay. The path
/// is interned — resolve the link sequence via FlowSession::paths().
struct FlowRecord {
  FlowId id;
  TimePoint started;
  TimePoint finished;
  DataSize size;
  PathId path = PathId{0};
  std::uint32_t hops = 0;
  bool aborted = false;

  [[nodiscard]] Duration fct() const { return finished - started; }
  [[nodiscard]] Bandwidth average_rate() const { return size / fct(); }
};

class FlowSession {
 public:
  using CompletionFn = std::function<void(FlowId)>;

  FlowSession(const topo::Topology& topology, sim::Simulator& simulator,
              Aggregation aggregation = Aggregation::kMacroFlows);

  /// Starts a flow of `size` over `path`, source-capped at `cap`.
  /// `on_complete` fires when the last bit is delivered (it may start new
  /// flows). Zero-size flows complete at the current instant. Callers that
  /// reuse paths (collectives) should intern once via paths() and use the
  /// PathId overload.
  FlowId start_flow(const std::vector<LinkId>& path, DataSize size, Bandwidth cap,
                    CompletionFn on_complete = nullptr);
  FlowId start_flow(PathId path, DataSize size, Bandwidth cap,
                    CompletionFn on_complete = nullptr);

  /// Remove a flow before completion (no callback). Returns false if the
  /// flow already finished.
  bool abort_flow(FlowId id);

  /// Replace an in-flight flow's path (the §4 port failover: shared QP
  /// contexts let the NIC move a flow to its other port transparently).
  /// Returns false if the flow already finished.
  bool reroute_flow(FlowId id, const std::vector<LinkId>& new_path);
  bool reroute_flow(FlowId id, PathId new_path);

  /// Re-solve rates — call after link state changed (a flow whose path has
  /// a down link stalls at rate zero until rerouted or repaired). Only the
  /// components touching flipped links are re-solved.
  void refresh() {
    solver_.notify_topology_changed();
    schedule_recompute();
  }

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Currently allocated rate; nullopt if the flow is not active.
  [[nodiscard]] std::optional<Bandwidth> rate_of(FlowId id) const;

  /// Bits still to deliver; nullopt if not active.
  [[nodiscard]] std::optional<DataSize> remaining_of(FlowId id) const;

  /// Aggregate currently-allocated rate over a link.
  [[nodiscard]] Bandwidth throughput_on(LinkId link) const;

  /// Total bytes delivered across completed + in-flight flows.
  [[nodiscard]] DataSize delivered_total() const { return delivered_; }

  /// Incremental-solver counters (how much re-solving each change cost).
  [[nodiscard]] const IncrementalMaxMin::Stats& solver_stats() const {
    return solver_.stats();
  }

  /// Point-in-time macro-flow aggregation shape of the active flow set.
  [[nodiscard]] IncrementalMaxMin::AggregationSnapshot solver_aggregation() const {
    return solver_.aggregation();
  }

  /// The solver's path interner (intern once, start many flows by PathId).
  [[nodiscard]] PathTable& paths() { return solver_.paths(); }
  [[nodiscard]] const PathTable& paths() const { return solver_.paths(); }

  /// Session counters captured at quiescence: no active flows and no
  /// pending recompute/completion events (abort or drain first). Restoring
  /// resets the session to that point — including rebuilding the solver and
  /// its path interner from scratch, which INVALIDATES every PathId handed
  /// out so far (re-intern after restore). Together with
  /// sim::Simulator::restore this makes repeated what-if re-runs on one
  /// session byte-identical: flow ids, event sequence numbers, and solver
  /// state all rewind to the snapshot.
  struct Snapshot {
    FlowId::underlying next_id = 1;
    TimePoint last_settle;
    DataSize delivered = DataSize::zero();
    double audit_injected_bits = 0.0;
    double audit_delivered_bits = 0.0;
    double audit_aborted_bits = 0.0;
  };

  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snap);

  /// Record every flow's start/finish/path for offline analysis. Off by
  /// default (collectives create millions of flows in long runs).
  void enable_tracing(bool on) { tracing_ = on; }
  [[nodiscard]] const std::vector<FlowRecord>& trace() const { return trace_; }
  /// Write the trace as CSV (id,start_s,finish_s,fct_s,bytes,hops,aborted).
  void write_trace_csv(std::ostream& os) const;

 private:
  struct ActiveFlow {
    IncrementalMaxMin::Handle handle = IncrementalMaxMin::kInvalidHandle;
    double remaining_bits = 0.0;
    double rate_bps = 0.0;
    CompletionFn on_complete;
    TimePoint started;
    DataSize size;
    bool stalled = false;  ///< rate hit zero while bits remain (down link)
  };

  void record_trace(FlowId id, const ActiveFlow& flow, bool aborted);

  /// Rate/capacity/down-link/conservation checks after a recompute. Only
  /// called when the simulator's InvariantAuditor is enabled; the audit
  /// accumulators are valid if auditing was on before the first start_flow.
  void audit_allocation();

  /// Charge elapsed time against every flow's remaining bits.
  void settle_to_now();
  /// Recompute rates and (re)schedule the next completion event.
  void schedule_recompute();
  void recompute_and_reschedule();
  void on_completion_event();

  const topo::Topology* topo_;
  sim::Simulator* sim_;
  Aggregation aggregation_;  ///< kept so restore() can rebuild the solver
  IncrementalMaxMin solver_;
  std::unordered_map<FlowId, ActiveFlow> flows_;
  FlowId::underlying next_id_ = 1;
  TimePoint last_settle_;
  sim::EventId pending_recompute_ = sim::kInvalidEvent;
  sim::EventId pending_completion_ = sim::kInvalidEvent;
  DataSize delivered_ = DataSize::zero();
  bool tracing_ = false;
  std::vector<FlowRecord> trace_;

  /// Conservation accounting for the auditor, in exact doubles (delivered_
  /// keeps its integer-truncation semantics for the public API). Only
  /// accumulated while the auditor is enabled.
  double audit_injected_bits_ = 0.0;
  double audit_delivered_bits_ = 0.0;
  double audit_aborted_bits_ = 0.0;
};

}  // namespace hpn::flowsim
