#include "flowsim/session.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hpn::flowsim {

namespace {
constexpr double kBitEps = 1.0;  // flows within one bit of done are done
}

FlowSession::FlowSession(const topo::Topology& topology, sim::Simulator& simulator,
                         Aggregation aggregation)
    : topo_{&topology},
      sim_{&simulator},
      aggregation_{aggregation},
      solver_{topology, aggregation},
      last_settle_{simulator.now()} {}

FlowSession::Snapshot FlowSession::snapshot() const {
  HPN_CHECK_MSG(flows_.empty(), "session snapshot requires no active flows");
  HPN_CHECK_MSG(pending_recompute_ == sim::kInvalidEvent &&
                    pending_completion_ == sim::kInvalidEvent,
                "session snapshot requires no pending events");
  Snapshot s;
  s.next_id = next_id_;
  s.last_settle = last_settle_;
  s.delivered = delivered_;
  s.audit_injected_bits = audit_injected_bits_;
  s.audit_delivered_bits = audit_delivered_bits_;
  s.audit_aborted_bits = audit_aborted_bits_;
  return s;
}

void FlowSession::restore(const Snapshot& snap) {
  HPN_CHECK_MSG(flows_.empty(), "session restore requires no active flows");
  HPN_CHECK_MSG(pending_recompute_ == sim::kInvalidEvent &&
                    pending_completion_ == sim::kInvalidEvent,
                "session restore requires no pending events");
  next_id_ = snap.next_id;
  last_settle_ = snap.last_settle;
  delivered_ = snap.delivered;
  audit_injected_bits_ = snap.audit_injected_bits;
  audit_delivered_bits_ = snap.audit_delivered_bits;
  audit_aborted_bits_ = snap.audit_aborted_bits;
  trace_.clear();
  // A fresh solver, not a rollback: with zero active flows the old one holds
  // only interned paths and counters, and rebuilding is the one way its
  // next run re-derives identical PathIds/handles/stats from identical
  // inputs (see the PathId invalidation note on Snapshot).
  solver_ = IncrementalMaxMin{*topo_, aggregation_};
}

FlowId FlowSession::start_flow(const std::vector<LinkId>& path, DataSize size,
                               Bandwidth cap, CompletionFn on_complete) {
  return start_flow(solver_.paths().intern(path), size, cap, std::move(on_complete));
}

FlowId FlowSession::start_flow(PathId path, DataSize size, Bandwidth cap,
                               CompletionFn on_complete) {
  HPN_CHECK_MSG(cap > Bandwidth::zero(), "flow needs a positive source cap");
  settle_to_now();
  const FlowId id{next_id_++};
  ActiveFlow f;
  f.handle = solver_.add_flow(path, cap.as_bits_per_sec());
  f.remaining_bits = static_cast<double>(size.as_bits());
  f.on_complete = std::move(on_complete);
  f.started = sim_->now();
  f.size = size;
  if (sim_->auditor().enabled()) {
    audit_injected_bits_ += static_cast<double>(size.as_bits());
  }
  flows_.emplace(id, std::move(f));
  sim_->trace(metrics::TraceEventKind::kFlowStart, static_cast<std::uint32_t>(id.value()),
              metrics::kTraceNoId, static_cast<double>(size.as_bytes()));
  schedule_recompute();
  return id;
}

void FlowSession::record_trace(FlowId id, const ActiveFlow& flow, bool aborted) {
  if (!tracing_) return;
  FlowRecord rec;
  rec.id = id;
  rec.started = flow.started;
  rec.finished = sim_->now();
  rec.size = flow.size;
  rec.path = solver_.path_id(flow.handle);
  rec.hops = static_cast<std::uint32_t>(solver_.paths().hops(rec.path));
  rec.aborted = aborted;
  trace_.push_back(rec);
}

void FlowSession::write_trace_csv(std::ostream& os) const {
  os << "id,start_s,finish_s,fct_s,bytes,hops,aborted\n";
  for (const FlowRecord& r : trace_) {
    os << r.id.value() << ',' << r.started.as_seconds() << ',' << r.finished.as_seconds()
       << ',' << r.fct().as_seconds() << ',' << static_cast<std::int64_t>(r.size.as_bytes())
       << ',' << r.hops << ',' << (r.aborted ? 1 : 0) << "\n";
  }
}

bool FlowSession::abort_flow(FlowId id) {
  settle_to_now();
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  record_trace(id, it->second, /*aborted=*/true);
  sim_->trace(metrics::TraceEventKind::kFlowAbort, static_cast<std::uint32_t>(id.value()),
              metrics::kTraceNoId, it->second.remaining_bits);
  if (sim_->auditor().enabled()) audit_aborted_bits_ += it->second.remaining_bits;
  solver_.remove_flow(it->second.handle);
  flows_.erase(it);
  schedule_recompute();
  return true;
}

bool FlowSession::reroute_flow(FlowId id, const std::vector<LinkId>& new_path) {
  return reroute_flow(id, solver_.paths().intern(new_path));
}

bool FlowSession::reroute_flow(FlowId id, PathId new_path) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  settle_to_now();
  const auto hops = static_cast<double>(solver_.paths().hops(new_path));
  solver_.set_path(it->second.handle, new_path);
  sim_->trace(metrics::TraceEventKind::kFlowReroute, static_cast<std::uint32_t>(id.value()),
              metrics::kTraceNoId, hops);
  schedule_recompute();
  return true;
}

std::optional<Bandwidth> FlowSession::rate_of(FlowId id) const {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return std::nullopt;
  return Bandwidth::bits_per_sec(it->second.rate_bps);
}

std::optional<DataSize> FlowSession::remaining_of(FlowId id) const {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return std::nullopt;
  return DataSize::bits(static_cast<std::int64_t>(it->second.remaining_bits));
}

Bandwidth FlowSession::throughput_on(LinkId link) const {
  // Session-side rates lag the solver's until the pending recompute fires,
  // so sum the settled per-flow rates rather than asking the solver.
  double sum = 0.0;
  for (const auto& [id, f] : flows_) {
    const std::vector<LinkId>& path = solver_.path(f.handle);
    if (std::find(path.begin(), path.end(), link) != path.end()) sum += f.rate_bps;
  }
  return Bandwidth::bits_per_sec(sum);
}

void FlowSession::settle_to_now() {
  const TimePoint now = sim_->now();
  const double dt = (now - last_settle_).as_seconds();
  last_settle_ = now;
  if (dt <= 0.0) return;
  const bool audit = sim_->auditor().enabled();
  for (auto& [id, f] : flows_) {
    const double moved = f.rate_bps * dt;
    // The audit ledger clamps at the flow boundary (delivered_ deliberately
    // keeps the seed's slight overcount so existing goldens stay stable).
    if (audit) audit_delivered_bits_ += std::min(moved, f.remaining_bits);
    f.remaining_bits = std::max(0.0, f.remaining_bits - moved);
    delivered_ += DataSize::bits(static_cast<std::int64_t>(moved));
  }
}

void FlowSession::schedule_recompute() {
  if (pending_recompute_ != sim::kInvalidEvent) return;  // batch same-instant changes
  pending_recompute_ = sim_->schedule_now([this] {
    pending_recompute_ = sim::kInvalidEvent;
    recompute_and_reschedule();
  });
}

void FlowSession::recompute_and_reschedule() {
  settle_to_now();

  // Fire completions for anything already drained (incl. zero-size flows).
  std::vector<std::pair<FlowId, CompletionFn>> done;
  const bool audit = sim_->auditor().enabled();
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining_bits <= kBitEps) {
      // Sub-bit residue counts as delivered so the ledger closes exactly.
      if (audit) audit_delivered_bits_ += it->second.remaining_bits;
      record_trace(it->first, it->second, /*aborted=*/false);
      sim_->trace(metrics::TraceEventKind::kFlowFinish,
                  static_cast<std::uint32_t>(it->first.value()), metrics::kTraceNoId,
                  (sim_->now() - it->second.started).as_seconds());
      done.emplace_back(it->first, std::move(it->second.on_complete));
      solver_.remove_flow(it->second.handle);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }

  // Re-rate whatever the batched changes touched; unaffected components
  // keep their allocation and are not revisited by the solver.
  solver_.resolve();
  double min_finish_s = std::numeric_limits<double>::infinity();
  for (auto& [id, f] : flows_) {
    f.rate_bps = solver_.rate(f.handle);
    // Zero-rate flows are stalled on a down link; they hold position until
    // reroute_flow/refresh gives them a live path again.
    if (f.rate_bps > 0.0) {
      min_finish_s = std::min(min_finish_s, f.remaining_bits / f.rate_bps);
      if (f.stalled) {
        f.stalled = false;
        sim_->trace(metrics::TraceEventKind::kFlowResume,
                    static_cast<std::uint32_t>(id.value()));
      }
    } else if (!f.stalled) {
      f.stalled = true;
      sim_->trace(metrics::TraceEventKind::kFlowStall,
                  static_cast<std::uint32_t>(id.value()), metrics::kTraceNoId,
                  f.remaining_bits);
    }
  }

  // Exactly one pending completion event at the earliest finish.
  if (pending_completion_ != sim::kInvalidEvent) {
    sim_->cancel(pending_completion_);
    pending_completion_ = sim::kInvalidEvent;
  }
  if (std::isfinite(min_finish_s)) {
    // Round up so the flow has fully drained when the event fires.
    const Duration d = Duration::nanos(
        static_cast<std::int64_t>(std::ceil(min_finish_s * 1e9)) + 1);
    pending_completion_ = sim_->schedule_after(d, [this] {
      pending_completion_ = sim::kInvalidEvent;
      on_completion_event();
    });
  }

  if (audit) audit_allocation();

  // Completion callbacks run after rates settle; they may start new flows,
  // which batches into a fresh recompute at this same instant.
  for (auto& [id, fn] : done) {
    if (fn) fn(id);
  }
}

void FlowSession::audit_allocation() {
  sim::InvariantAuditor& auditor = sim_->auditor();
  const TimePoint now = sim_->now();
  // Tolerances are relative: rates are doubles accumulated through the
  // incremental solver, so allow a part-per-million of slack.
  constexpr double kRelEps = 1e-6;

  double inflight_bits = 0.0;
  std::unordered_map<LinkId, double> link_load;
  for (const auto& [id, f] : flows_) {
    inflight_bits += f.remaining_bits;
    const double cap = solver_.cap(f.handle);
    auditor.check(f.rate_bps <= cap * (1.0 + kRelEps) + 1.0,
                  sim::AuditRule::kRateOverCapacity, now, [&, fid = id] {
                    std::ostringstream os;
                    os << "flow " << fid.value() << " rate " << f.rate_bps
                       << " bps exceeds its source cap " << cap << " bps";
                    return os.str();
                  });
    bool path_up = true;
    for (const LinkId link : solver_.path(f.handle)) {
      link_load[link] += f.rate_bps;
      if (!topo_->is_up(link)) path_up = false;
    }
    auditor.check(f.rate_bps <= 0.0 || path_up, sim::AuditRule::kDownLinkForwarding,
                  now, [&, fid = id] {
                    std::ostringstream os;
                    os << "flow " << fid.value() << " allocated " << f.rate_bps
                       << " bps over a path with a down link";
                    return os.str();
                  });
  }

  for (const auto& [link, load] : link_load) {
    const double cap = topo_->link(link).capacity.as_bits_per_sec();
    auditor.check(load <= cap * (1.0 + kRelEps) + 1.0, sim::AuditRule::kRateOverCapacity,
                  now, [&] {
                    std::ostringstream os;
                    os << "link " << link.value() << " carries " << load
                       << " bps over capacity " << cap << " bps";
                    return os.str();
                  });
  }

  // Conservation: everything injected is delivered, aborted, or in flight.
  // The ledger uses exact doubles, so the only error is float accumulation.
  const double accounted = audit_delivered_bits_ + audit_aborted_bits_ + inflight_bits;
  const double scale = std::max(1.0, audit_injected_bits_);
  auditor.check(std::abs(audit_injected_bits_ - accounted) <= scale * 1e-9 + 1.0,
                sim::AuditRule::kConservation, now, [&] {
                  std::ostringstream os;
                  os << "flow ledger: injected " << audit_injected_bits_
                     << " bits != delivered " << audit_delivered_bits_ << " + aborted "
                     << audit_aborted_bits_ << " + in-flight " << inflight_bits;
                  return os.str();
                });
}

void FlowSession::on_completion_event() {
  recompute_and_reschedule();
}

}  // namespace hpn::flowsim
