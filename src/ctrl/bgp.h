// BGP-lite: a message-passing path-vector control plane over the fabric.
//
// §4.2 routes everything — including /32 host routes distilled from ARP —
// through BGP so that a single mechanism handles failover. This module
// implements the protocol machinery the FabricController's timing model
// abstracts: one speaker per switch, adjacencies over fabric/access links,
// UPDATE/WITHDRAW messages with per-hop processing delay on the event
// engine, path-vector loop suppression, best-path selection (shortest AS
// path) with ECMP ties, and route origination by ToRs for attached NICs.
//
// Experiments use it to *measure* convergence after link failures instead
// of assuming a constant, and tests verify classic properties: no loops,
// withdrawal propagation, equal-cost multipath, and isolation detection.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "topo/cluster.h"

namespace hpn::ctrl {

/// A prefix is a destination NIC (we only model /32 host routes; the /24
/// subnet default routes of §4.2 are subsumed by per-NIC state here).
using Prefix = NodeId;

struct BgpRoute {
  Prefix prefix;
  std::vector<NodeId> as_path;  ///< Speakers traversed, nearest first.
  NodeId next_hop = NodeId::invalid();
  LinkId via = LinkId::invalid();  ///< Egress link toward next_hop.

  [[nodiscard]] std::size_t length() const { return as_path.size(); }
};

struct BgpTimings {
  /// Per-message processing delay at a speaker (advertisement batching,
  /// RIB update, FIB programming).
  Duration processing = Duration::millis(15);
  /// Keepalive-based failure detection on an adjacency.
  Duration hold_detect = Duration::millis(30);
};

class BgpFabric {
 public:
  /// Builds one speaker per ToR/Agg/Core switch; adjacencies mirror the
  /// up fabric links. NICs do not speak BGP (§4.2's lesson: keep hosts out
  /// of the cluster-wide BGP mesh).
  BgpFabric(const topo::Cluster& cluster, sim::Simulator& simulator, BgpTimings timings = {});

  /// Originate a /32 for every NIC at its attached ToR(s) (the ARP -> host
  /// route conversion) and run to convergence. Call once at start of day.
  void originate_all_host_routes();

  /// Selected (best) routes a speaker holds for a prefix; multiple entries
  /// = ECMP. Empty if the speaker has no route.
  [[nodiscard]] std::vector<BgpRoute> routes_at(NodeId speaker, Prefix prefix) const;

  /// Does the speaker currently have any route to the prefix?
  [[nodiscard]] bool reachable(NodeId speaker, Prefix prefix) const {
    return !routes_at(speaker, prefix).empty();
  }

  // ---- Event injection (drive via FabricController or directly) ----------
  /// An access link (NIC <-> ToR) died: the ToR withdraws the /32.
  void on_access_down(LinkId nic_to_tor);
  /// The access link recovered: the ToR re-originates.
  void on_access_up(LinkId nic_to_tor);
  /// A fabric link died: both ends drop the adjacency and re-advertise.
  void on_fabric_down(LinkId link);
  void on_fabric_up(LinkId link);

  // ---- Introspection -------------------------------------------------------
  /// Simulated time when the last injected event's ripples fully settled
  /// (no BGP messages in flight). Run the simulator past this to converge.
  [[nodiscard]] bool quiescent() const { return inflight_messages_ == 0; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  /// Speakers that changed their FIB since the counter was last read.
  [[nodiscard]] std::uint64_t fib_changes() const { return fib_changes_; }

  /// Control-plane sanity at quiescence: every FIB next hop is a live peer
  /// that itself has a route (no blackholes), no egress over a down link,
  /// and the per-prefix next-hop graph is loop-free. Only meaningful once
  /// quiescent() — transient loops during convergence are legal BGP.
  void audit_fib(sim::InvariantAuditor& auditor) const;

  /// Deliberate sabotage for auditor validation: silently drop every
  /// WITHDRAW at the sender. Leaves stale routes behind so a converged
  /// fabric can hold forwarding loops — the fuzz suite proves audit_fib
  /// catches exactly this.
  void set_drop_withdrawals(bool on) { drop_withdrawals_ = on; }

 private:
  struct Speaker {
    NodeId node;
    /// Adjacent speakers and the links to them.
    std::vector<std::pair<NodeId, LinkId>> peers;
    /// Learned routes per prefix, keyed by (neighbor) to keep one route per
    /// peer (standard BGP Adj-RIB-In collapsed).
    std::map<Prefix, std::map<NodeId, BgpRoute>> rib_in;
    /// Prefixes this speaker originates (attached NICs) and the access link.
    std::map<Prefix, LinkId> originated;
    /// Current best set per prefix (the Loc-RIB / FIB).
    std::map<Prefix, std::vector<BgpRoute>> fib;
  };

  enum class MsgKind { kUpdate, kWithdraw };
  struct Message {
    MsgKind kind;
    NodeId from;
    NodeId to;
    BgpRoute route;  ///< For withdraw: prefix + the withdrawing peer matter.
  };

  [[nodiscard]] bool is_speaker(NodeId n) const;
  Speaker& speaker(NodeId n) { return speakers_.at(n); }
  void send(Message msg);
  void deliver(const Message& msg);
  /// Recompute best routes for a prefix at a speaker; if the best set
  /// changed, advertise/withdraw to peers.
  void reselect_and_propagate(Speaker& sp, Prefix prefix);
  /// Advertise the speaker's current best (or withdraw) to all peers.
  void announce(Speaker& sp, Prefix prefix);
  [[nodiscard]] std::vector<BgpRoute> best_of(const Speaker& sp, Prefix prefix) const;

  const topo::Cluster* cluster_;
  sim::Simulator* sim_;
  BgpTimings timings_;
  std::unordered_map<NodeId, Speaker> speakers_;
  /// What each speaker last advertised per prefix (to detect changes and
  /// send withdraws). Empty vector = currently withdrawn/never advertised.
  std::unordered_map<NodeId, std::map<Prefix, std::size_t>> advertised_len_;
  int inflight_messages_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t fib_changes_ = 0;
  bool drop_withdrawals_ = false;
};

}  // namespace hpn::ctrl
