// Stacked vs non-stacked dual-ToR state machines (§4.1 / §4.2).
//
// The stacked pair reproduces the two production failure classes the paper
// reports (together >40% of critical failures over three years):
//   1. Stack failure: ToR1's data plane dies (e.g. MMU overflow) while its
//      control plane stays healthy on the out-of-band network. ToR2 can no
//      longer sync ARP/MAC over the direct link; to avoid inconsistent
//      forwarding it shuts itself down — and with ToR1's data plane already
//      dead, the whole rack goes offline.
//   2. Upgrade incompatibility: during a rolling upgrade the two ToRs run
//      different firmware; if the control-plane RPC schema changed more than
//      ISSU tolerates, sync fails the same way.
// The non-stacked pair has no sync link: each ToR forwards independently,
// so any single failure leaves the rack reachable.
#pragma once

#include <cstdint>
#include <string>

namespace hpn::ctrl {

enum class TorRole : std::uint8_t { kPrimary, kSecondary };

struct TorState {
  bool data_plane_up = true;
  bool control_plane_up = true;
  int firmware_version = 1;
  bool self_shutdown = false;  ///< Secondary's defensive shutdown (stacked).

  [[nodiscard]] bool forwarding() const {
    return data_plane_up && control_plane_up && !self_shutdown;
  }
};

/// Commodity stacked dual-ToR (vPC / M-LAG / stacking).
class StackedDualTorPair {
 public:
  StackedDualTorPair() = default;

  /// How far apart firmware can be before the sync RPC schema breaks.
  /// The paper: 70% of ToR upgrades exceed what ISSU tolerates.
  void set_issu_tolerance(int versions) { issu_tolerance_ = versions; }

  void fail_data_plane(TorRole which);
  void fail_control_plane(TorRole which);
  void fail_sync_link();
  void upgrade(TorRole which, int new_version);
  void repair(TorRole which);
  void repair_sync_link();

  [[nodiscard]] const TorState& tor(TorRole which) const {
    return which == TorRole::kPrimary ? primary_ : secondary_;
  }
  [[nodiscard]] bool sync_link_up() const { return sync_link_up_; }
  /// Can the ToRs still exchange forwarding state?
  [[nodiscard]] bool sync_healthy() const;
  /// At least one ToR is forwarding: the rack is reachable.
  [[nodiscard]] bool rack_online() const;
  [[nodiscard]] const std::string& last_transition() const { return last_transition_; }

 private:
  /// Re-evaluate the pair after any event — this is where the defensive
  /// shutdown logic bites.
  void reconcile();

  TorState primary_;
  TorState secondary_;
  bool sync_link_up_ = true;
  int issu_tolerance_ = 0;  ///< 0: any version skew breaks sync.
  std::string last_transition_;
};

/// HPN's non-stacked pair: no sync link, no shared fate.
class NonStackedDualTorPair {
 public:
  void fail_data_plane(TorRole which);
  void fail_control_plane(TorRole which);
  void upgrade(TorRole which, int new_version);
  void repair(TorRole which);

  [[nodiscard]] const TorState& tor(TorRole which) const {
    return which == TorRole::kPrimary ? a_ : b_;
  }
  [[nodiscard]] bool rack_online() const { return a_.forwarding() || b_.forwarding(); }

 private:
  TorState a_;
  TorState b_;
};

}  // namespace hpn::ctrl
