#include "ctrl/health_monitor.h"

#include "common/check.h"

namespace hpn::ctrl {

std::string_view to_string(LinkHealth health) {
  switch (health) {
    case LinkHealth::kHealthy: return "healthy";
    case LinkHealth::kDown: return "down";
    case LinkHealth::kTxBlackhole: return "tx-blackhole (LFS-bug class)";
    case LinkHealth::kRxBlackhole: return "rx-blackhole";
  }
  return "?";
}

LinkHealth HealthMonitor::probe(int host, int rail, int port) const {
  const topo::NicAttachment& att = cluster_->hosts.at(static_cast<std::size_t>(host))
                                       .nics.at(static_cast<std::size_t>(rail));
  HPN_CHECK(port >= 0 && port < att.ports);
  const LinkId tx = att.access.at(static_cast<std::size_t>(port));  // NIC -> ToR
  const LinkId rx = cluster_->topo.link(tx).reverse;                // ToR -> NIC
  const bool tx_up = cluster_->topo.is_up(tx);
  const bool rx_up = cluster_->topo.is_up(rx);
  if (tx_up && rx_up) return LinkHealth::kHealthy;
  if (!tx_up && !rx_up) return LinkHealth::kDown;
  return tx_up ? LinkHealth::kRxBlackhole : LinkHealth::kTxBlackhole;
}

std::vector<ProbeReport> HealthMonitor::sweep() const {
  std::vector<ProbeReport> out;
  for (const topo::Host& h : cluster_->hosts) {
    for (std::size_t rail = 0; rail < h.nics.size(); ++rail) {
      for (int p = 0; p < h.nics[rail].ports; ++p) {
        const LinkHealth health = probe(h.index, static_cast<int>(rail), p);
        if (health == LinkHealth::kHealthy) continue;
        out.push_back({h.index, static_cast<int>(rail), p, health});
      }
    }
  }
  return out;
}

std::vector<ProbeReport> HealthMonitor::asymmetric_links() const {
  std::vector<ProbeReport> out;
  for (const ProbeReport& r : sweep()) {
    if (r.health == LinkHealth::kTxBlackhole || r.health == LinkHealth::kRxBlackhole) {
      out.push_back(r);
    }
  }
  return out;
}

void inject_asymmetric_fault(topo::Cluster& cluster, int host, int rail, int port) {
  const topo::NicAttachment& att = cluster.hosts.at(static_cast<std::size_t>(host))
                                       .nics.at(static_cast<std::size_t>(rail));
  cluster.topo.set_link_up(att.access.at(static_cast<std::size_t>(port)), false);
}

void repair_asymmetric_fault(topo::Cluster& cluster, int host, int rail, int port) {
  const topo::NicAttachment& att = cluster.hosts.at(static_cast<std::size_t>(host))
                                       .nics.at(static_cast<std::size_t>(rail));
  cluster.topo.set_link_up(att.access.at(static_cast<std::size_t>(port)), true);
}

}  // namespace hpn::ctrl
