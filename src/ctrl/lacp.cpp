#include "ctrl/lacp.h"

#include <cstdio>

namespace hpn::ctrl {

MacAddress MacAddress::chassis(std::uint32_t serial) {
  // Locally-administered unicast OUI, serialized per switch.
  return MacAddress{{0x02, 0x1A, 0x2B, static_cast<std::uint8_t>(serial >> 16),
                     static_cast<std::uint8_t>(serial >> 8),
                     static_cast<std::uint8_t>(serial)}};
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02X:%02X:%02X:%02X:%02X:%02X", bytes[0], bytes[1],
                bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

TorLacpAgent::TorLacpAgent(TorLacpConfig config) : config_{config} {
  HPN_CHECK_MSG(config_.port_id_offset >= config_.max_physical_ports,
                "portID offset must exceed the physical port count ("
                    << config_.max_physical_ports << ") to avoid collisions");
}

Lacpdu TorLacpAgent::respond(const Lacpdu& from_host, std::uint16_t physical_port) const {
  (void)from_host;  // stock LACP would negotiate over the stack link here
  HPN_CHECK_MSG(physical_port < config_.max_physical_ports,
                "physical port " << physical_port << " out of range");
  Lacpdu out;
  out.actor_system = config_.system_mac;
  out.actor_port = static_cast<std::uint16_t>(physical_port + config_.port_id_offset);
  out.actor_key = config_.aggregation_key;
  return out;
}

HostBond::Verdict HostBond::evaluate(const std::optional<Lacpdu>& from_tor0,
                                     const std::optional<Lacpdu>& from_tor1) {
  if (!from_tor0 && !from_tor1) return {State::kDown, "no LACP partner on either port"};
  if (!from_tor0 || !from_tor1) return {State::kDegraded, "one port has no LACP partner"};
  if (!(from_tor0->actor_system == from_tor1->actor_system)) {
    return {State::kDegraded, "sysID mismatch: " + from_tor0->actor_system.to_string() +
                                  " vs " + from_tor1->actor_system.to_string() +
                                  " — ports refuse to aggregate"};
  }
  if (from_tor0->actor_key != from_tor1->actor_key) {
    return {State::kDegraded, "aggregation key mismatch"};
  }
  if (from_tor0->actor_port == from_tor1->actor_port) {
    return {State::kDegraded, "duplicate portID " + std::to_string(from_tor0->actor_port) +
                                  " — partner looks like one port, not two"};
  }
  return {State::kAggregated, ""};
}

}  // namespace hpn::ctrl
