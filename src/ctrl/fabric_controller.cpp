#include "ctrl/fabric_controller.h"

#include <algorithm>

#include "common/check.h"

namespace hpn::ctrl {

FabricController::FabricController(topo::Cluster& cluster, sim::Simulator& simulator,
                                   routing::Router& router, CtrlTimings timings,
                                   bool arp_proxy)
    : cluster_{&cluster},
      sim_{&simulator},
      router_{&router},
      timings_{timings},
      arp_proxy_{arp_proxy} {}

const topo::NicAttachment& FabricController::nic(int host, int rail) const {
  return cluster_->hosts.at(static_cast<std::size_t>(host))
      .nics.at(static_cast<std::size_t>(rail));
}

FabricController::PortState& FabricController::state(PortKey key) {
  return ports_[key];
}

const FabricController::PortState* FabricController::find_state(PortKey key) const {
  const auto it = ports_.find(key);
  return it == ports_.end() ? nullptr : &it->second;
}

bool FabricController::fabric_detour_exists(int host, int rail, int port) const {
  // After the access link died, can the dead-side ToR still reach the NIC
  // through the fabric (i.e. does the plane have a detour)? Typical Clos:
  // ToR1 -> Agg -> ToR2 -> NIC. Dual-plane: planes are disjoint, so no.
  const auto& att = nic(host, rail);
  const NodeId dead_tor = att.tor.at(static_cast<std::size_t>(port));
  return router_->distance(dead_tor, att.nic) >= 0;
}

void FabricController::do_fail_access(int host, int rail, int port) {
  const auto& att = nic(host, rail);
  HPN_CHECK_MSG(port >= 0 && port < att.ports, "no such NIC port");
  const LinkId access = att.access.at(static_cast<std::size_t>(port));
  cluster_->topo.set_duplex_up(access, false);
  router_->invalidate();
  sim_->trace(metrics::TraceEventKind::kLinkDown,
              static_cast<std::uint32_t>(access.value()),
              static_cast<std::uint32_t>(host));

  PortState& st = state(PortKey{host, rail, port});
  st.up = false;
  const TimePoint now = sim_->now();

  // Ingress convergence: if the plane has an in-fabric detour, the /32
  // withdrawal reroutes senders; hop count bounds the propagation depth.
  // Otherwise senders wait for the host-switch collaboration push.
  TimePoint fabric_at;
  if (fabric_detour_exists(host, rail, port)) {
    const Duration bgp = timings_.arp_withdraw + timings_.bgp_hop * 2.0;
    fabric_at = now + bgp;
  } else {
    fabric_at = now + timings_.host_push;
  }
  st.rx_fabric_converged_at = fabric_at;
  // Intra-segment senders: with the ARP proxy everything is L3 and follows
  // BGP (just the local withdraw, no propagation); without it, the stale
  // MAC entry blackholes until aging.
  st.rx_l2_converged_at =
      arp_proxy_ ? std::min(fabric_at, now + timings_.arp_withdraw) : now + timings_.mac_aging;
}

void FabricController::notify() {
  for (const auto& fn : listeners_) fn();
}

void FabricController::fail_access(int host, int rail, int port) {
  do_fail_access(host, rail, port);
  notify();
}

void FabricController::repair_access(int host, int rail, int port) {
  const auto& att = nic(host, rail);
  HPN_CHECK_MSG(port >= 0 && port < att.ports, "no such NIC port");
  const LinkId access = att.access.at(static_cast<std::size_t>(port));
  cluster_->topo.set_duplex_up(access, true);
  router_->invalidate();
  sim_->trace(metrics::TraceEventKind::kLinkUp,
              static_cast<std::uint32_t>(access.value()),
              static_cast<std::uint32_t>(host));

  PortState& st = state(PortKey{host, rail, port});
  st.up = true;
  // Senders may only rely on the port once LACP re-admits it and the /32 is
  // re-announced; until then the surviving port keeps carrying traffic, so
  // there is no loss window on repair.
  st.tx_usable_at = sim_->now() + timings_.lacp_rejoin;
  notify();
}

void FabricController::flap_access(int host, int rail, int port, Duration down_for) {
  fail_access(host, rail, port);
  sim_->schedule_after(down_for, [this, host, rail, port] {
    repair_access(host, rail, port);
  });
}

void FabricController::fail_tor(NodeId tor) {
  // Physical: every link on the ToR drops.
  for (const LinkId l : cluster_->topo.out_links(tor)) {
    cluster_->topo.set_duplex_up(l, false);
    sim_->trace(metrics::TraceEventKind::kLinkDown, static_cast<std::uint32_t>(l.value()),
                static_cast<std::uint32_t>(tor.value()));
  }
  router_->invalidate();
  // Mark every NIC port attached to this ToR failed (reusing the access
  // bookkeeping; topo is already down so do_fail_access only re-sets it).
  for (const topo::Host& h : cluster_->hosts) {
    for (std::size_t rail = 0; rail < h.nics.size(); ++rail) {
      const topo::NicAttachment& att = h.nics[rail];
      for (int p = 0; p < att.ports; ++p) {
        if (att.tor.at(static_cast<std::size_t>(p)) == tor) {
          do_fail_access(h.index, static_cast<int>(rail), p);
        }
      }
    }
  }
  notify();
}

void FabricController::repair_tor(NodeId tor) {
  for (const LinkId l : cluster_->topo.out_links(tor)) {
    cluster_->topo.set_duplex_up(l, true);
    sim_->trace(metrics::TraceEventKind::kLinkUp, static_cast<std::uint32_t>(l.value()),
                static_cast<std::uint32_t>(tor.value()));
  }
  router_->invalidate();
  for (const topo::Host& h : cluster_->hosts) {
    for (std::size_t rail = 0; rail < h.nics.size(); ++rail) {
      const topo::NicAttachment& att = h.nics[rail];
      for (int p = 0; p < att.ports; ++p) {
        if (att.tor.at(static_cast<std::size_t>(p)) == tor) {
          PortState& st = state(PortKey{h.index, static_cast<int>(rail), p});
          st.up = true;
          st.tx_usable_at = sim_->now() + timings_.lacp_rejoin;
        }
      }
    }
  }
  notify();
}

bool FabricController::port_up(int host, int rail, int port) const {
  const PortState* st = find_state(PortKey{host, rail, port});
  return st == nullptr || st->up;
}

bool FabricController::tx_usable(int host, int rail, int port) const {
  const PortState* st = find_state(PortKey{host, rail, port});
  if (st == nullptr) return true;
  return st->up && sim_->now() >= st->tx_usable_at;
}

bool FabricController::rx_blackholed(int host, int rail, int port,
                                     bool src_same_segment) const {
  const PortState* st = find_state(PortKey{host, rail, port});
  if (st == nullptr || st->up) return false;
  const TimePoint converged =
      src_same_segment ? st->rx_l2_converged_at : st->rx_fabric_converged_at;
  return sim_->now() < converged;
}

double FabricController::host_tx_fraction(int host) const {
  const topo::Host& h = cluster_->hosts.at(static_cast<std::size_t>(host));
  int total = 0, usable = 0;
  for (std::size_t rail = 0; rail < h.nics.size(); ++rail) {
    for (int p = 0; p < h.nics[rail].ports; ++p) {
      ++total;
      usable += tx_usable(host, static_cast<int>(rail), p);
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(usable) / total;
}

bool FabricController::host_isolated(int host) const {
  const topo::Host& h = cluster_->hosts.at(static_cast<std::size_t>(host));
  for (std::size_t rail = 0; rail < h.nics.size(); ++rail) {
    bool any_port = false;
    for (int p = 0; p < h.nics[rail].ports; ++p) {
      any_port |= port_up(host, static_cast<int>(rail), p);
    }
    if (!any_port) return true;  // this rail's NIC is unreachable
  }
  return false;
}

bool FabricController::host_in_blackhole(int host) const {
  const topo::Host& h = cluster_->hosts.at(static_cast<std::size_t>(host));
  for (std::size_t rail = 0; rail < h.nics.size(); ++rail) {
    for (int p = 0; p < h.nics[rail].ports; ++p) {
      if (rx_blackholed(host, static_cast<int>(rail), p)) return true;
    }
  }
  return false;
}

}  // namespace hpn::ctrl
