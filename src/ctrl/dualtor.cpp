#include "ctrl/dualtor.h"

namespace hpn::ctrl {

void StackedDualTorPair::fail_data_plane(TorRole which) {
  (which == TorRole::kPrimary ? primary_ : secondary_).data_plane_up = false;
  reconcile();
}

void StackedDualTorPair::fail_control_plane(TorRole which) {
  (which == TorRole::kPrimary ? primary_ : secondary_).control_plane_up = false;
  reconcile();
}

void StackedDualTorPair::fail_sync_link() {
  sync_link_up_ = false;
  reconcile();
}

void StackedDualTorPair::upgrade(TorRole which, int new_version) {
  (which == TorRole::kPrimary ? primary_ : secondary_).firmware_version = new_version;
  reconcile();
}

void StackedDualTorPair::repair(TorRole which) {
  TorState& t = which == TorRole::kPrimary ? primary_ : secondary_;
  t = TorState{};
  t.firmware_version =
      (which == TorRole::kPrimary ? secondary_ : primary_).firmware_version;
  reconcile();
}

void StackedDualTorPair::repair_sync_link() {
  sync_link_up_ = true;
  reconcile();
}

bool StackedDualTorPair::sync_healthy() const {
  if (!sync_link_up_) return false;
  // The direct link carries data-plane state: a dead data plane on either
  // side breaks synchronization even if both control planes are up.
  if (!primary_.data_plane_up || !secondary_.data_plane_up) return false;
  const int skew = primary_.firmware_version - secondary_.firmware_version;
  if (skew > issu_tolerance_ || skew < -issu_tolerance_) return false;
  return true;
}

void StackedDualTorPair::reconcile() {
  if (sync_healthy()) {
    // Healthy stack: clear any defensive shutdown once sync is restored.
    if (secondary_.self_shutdown || primary_.self_shutdown) {
      primary_.self_shutdown = false;
      secondary_.self_shutdown = false;
      last_transition_ = "sync restored; both ToRs forwarding";
    }
    return;
  }
  // Sync broken. The secondary cannot verify the primary's forwarding state
  // any more. If the primary's *control plane* still answers on the
  // out-of-band network, the primary insists it is healthy and keeps the
  // primary role — so the secondary shuts itself down to avoid inconsistent
  // forwarding (§4.1). That is precisely the trap: if the primary's data
  // plane is silently dead, the rack is now fully offline.
  if (primary_.control_plane_up && !secondary_.self_shutdown) {
    secondary_.self_shutdown = true;
    last_transition_ =
        "sync lost while primary control plane is up: secondary self-shutdown";
  } else if (!primary_.control_plane_up) {
    // Primary is visibly dead on the OOB network: secondary takes over.
    secondary_.self_shutdown = false;
    last_transition_ = "primary control plane down: secondary takes over";
  }
}

bool StackedDualTorPair::rack_online() const {
  return primary_.forwarding() || secondary_.forwarding();
}

void NonStackedDualTorPair::fail_data_plane(TorRole which) {
  (which == TorRole::kPrimary ? a_ : b_).data_plane_up = false;
}

void NonStackedDualTorPair::fail_control_plane(TorRole which) {
  (which == TorRole::kPrimary ? a_ : b_).control_plane_up = false;
}

void NonStackedDualTorPair::upgrade(TorRole which, int new_version) {
  // No sync RPC exists; a version skew is harmless by construction.
  (which == TorRole::kPrimary ? a_ : b_).firmware_version = new_version;
}

void NonStackedDualTorPair::repair(TorRole which) {
  (which == TorRole::kPrimary ? a_ : b_) = TorState{};
}

}  // namespace hpn::ctrl
