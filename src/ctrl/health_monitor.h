// Probe-based fabric health monitoring — the §10 "asymmetric link states"
// lesson.
//
// A production incident: the optical signal NIC->ToR degraded while
// ToR->NIC stayed clean; the ToR signaled Link Fault via LFS but a NIC
// firmware bug swallowed the notification, so the NIC kept transmitting
// into a black hole. Symmetric carrier checks can't see this; *directional
// probes* can: send a probe out each port and expect the echo back. This
// monitor runs such probes over the simulated fabric and classifies each
// access link as healthy, down, or — the dangerous case — asymmetric.
#pragma once

#include <string>
#include <vector>

#include "topo/cluster.h"

namespace hpn::ctrl {

enum class LinkHealth : std::uint8_t {
  kHealthy,
  kDown,            ///< Both directions dead — LACP/carrier catches this.
  kTxBlackhole,     ///< NIC->ToR dead, ToR->NIC alive: the LFS-bug case.
  kRxBlackhole,     ///< ToR->NIC dead, NIC->ToR alive.
};

std::string_view to_string(LinkHealth health);

struct ProbeReport {
  int host = -1;
  int rail = -1;
  int port = -1;
  LinkHealth health = LinkHealth::kHealthy;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(const topo::Cluster& cluster) : cluster_{&cluster} {}

  /// Directional probe of one access link: checks each direction's `up`
  /// independently (a real probe is an echo; the simulation can read link
  /// state directly since the probe semantics are equivalent).
  [[nodiscard]] LinkHealth probe(int host, int rail, int port) const;

  /// Sweep every access port; returns only anomalies.
  [[nodiscard]] std::vector<ProbeReport> sweep() const;

  /// The silent-failure detector: links that look "up" to a carrier-level
  /// check (at least one direction alive) but drop traffic in one
  /// direction. These are invisible to LACP and produce §10's "substantial
  /// packet loss" until the probe sweep flags them.
  [[nodiscard]] std::vector<ProbeReport> asymmetric_links() const;

 private:
  const topo::Cluster* cluster_;
};

/// Injects the §10 incident: kill only the NIC->ToR direction of a port.
/// (The reverse stays up, so LFS-style carrier checks see a live link.)
void inject_asymmetric_fault(topo::Cluster& cluster, int host, int rail, int port);
void repair_asymmetric_fault(topo::Cluster& cluster, int host, int rail, int port);

}  // namespace hpn::ctrl
