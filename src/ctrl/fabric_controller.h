// Fabric failure/recovery orchestration with control-plane timing.
//
// Ties together the pieces §4.2 describes: carrier detection and LACP on
// the host side, ARP-to-host-route conversion and BGP withdrawal on the
// ToR side, the ARP-proxy decision for intra-segment traffic, and — for
// dual-plane fabrics where the failed plane has no alternative path to the
// NIC — the host-switch collaboration push that tells senders to re-steer
// onto the surviving plane.
//
// The controller mutates the Topology (so the Router reroutes) and tracks
// *when* each party learns about each event, so experiments measure
// convergence windows rather than assuming them.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/units.h"
#include "routing/router.h"
#include "sim/simulator.h"
#include "topo/cluster.h"

namespace hpn::ctrl {

struct CtrlTimings {
  /// Host bond notices carrier loss and stops transmitting on the port.
  Duration carrier_detect = Duration::millis(1);
  /// ToR removes the ARP entry and withdraws the /32 host route.
  Duration arp_withdraw = Duration::millis(20);
  /// Per-hop BGP UPDATE processing while the withdrawal propagates.
  Duration bgp_hop = Duration::millis(15);
  /// Host-switch collaboration push (§6.1) informing senders of link state
  /// when in-fabric rerouting is impossible (dual-plane ingress failover).
  Duration host_push = Duration::millis(100);
  /// LACP re-negotiation before a repaired port rejoins the bundle.
  Duration lacp_rejoin = Duration::millis(200);
  /// L2 MAC-table aging — the intra-segment blackhole when the ARP proxy
  /// is disabled (§4.2: "de-facto aging time ... is 5 minutes").
  Duration mac_aging = Duration::minutes(5);
};

class FabricController {
 public:
  /// `arp_proxy`: §4.2's switch-side ARP proxy forcing intra-segment
  /// traffic to L3 so BGP governs it. Disabling reproduces the L2 blackhole.
  FabricController(topo::Cluster& cluster, sim::Simulator& simulator,
                   routing::Router& router, CtrlTimings timings = {}, bool arp_proxy = true);

  // ---- Event injection ----------------------------------------------------
  void fail_access(int host, int rail, int port);
  void repair_access(int host, int rail, int port);
  /// Down for `down_for`, then auto-repair.
  void flap_access(int host, int rail, int port, Duration down_for);
  /// Crash a ToR: every access and fabric link on it goes down.
  void fail_tor(NodeId tor);
  void repair_tor(NodeId tor);

  // ---- State queries (evaluated at simulator.now()) -----------------------
  /// Physical link state of the NIC port.
  [[nodiscard]] bool port_up(int host, int rail, int port) const;
  /// The host may transmit on this port (carrier up + LACP member).
  [[nodiscard]] bool tx_usable(int host, int rail, int port) const;
  /// A *down* port is in its ingress blackhole until remote senders have
  /// been steered off it. `src_same_segment` selects the L2 (intra-segment)
  /// vs fabric convergence path.
  [[nodiscard]] bool rx_blackholed(int host, int rail, int port,
                                   bool src_same_segment = false) const;
  /// Fraction of the host's backend ports currently usable for tx
  /// (15/16 = 93.75% after one access-link failure under dual-ToR).
  [[nodiscard]] double host_tx_fraction(int host) const;
  /// True while any of the host's NICs is completely unreachable (all
  /// ports down, or the only port down under single-ToR) — the condition
  /// that halts a synchronous training job.
  [[nodiscard]] bool host_isolated(int host) const;
  /// True while any port of the host is inside an ingress blackhole window.
  [[nodiscard]] bool host_in_blackhole(int host) const;

  [[nodiscard]] const CtrlTimings& timings() const { return timings_; }

  /// Register a callback fired after every fabric mutation (failure,
  /// repair, ToR crash) — traffic layers use it to re-steer in-flight
  /// flows (Communicator::on_fabric_change / TrainingJob::on_fabric_change).
  void subscribe(std::function<void()> on_change) {
    listeners_.push_back(std::move(on_change));
  }

 private:
  struct PortKey {
    int host;
    int rail;
    int port;
    auto operator<=>(const PortKey&) const = default;
  };
  struct PortState {
    bool up = true;
    TimePoint tx_usable_at = TimePoint::origin();
    /// Senders outside the segment steered off the dead port (BGP or push).
    TimePoint rx_fabric_converged_at = TimePoint::origin();
    /// Intra-segment senders steered off (ARP proxy/BGP vs MAC aging).
    TimePoint rx_l2_converged_at = TimePoint::origin();
  };

  [[nodiscard]] const topo::NicAttachment& nic(int host, int rail) const;
  PortState& state(PortKey key);
  [[nodiscard]] const PortState* find_state(PortKey key) const;
  /// Does the failed plane retain an in-fabric detour to the NIC (typical
  /// Clos: yes via the sibling ToR; dual-plane: no)?
  [[nodiscard]] bool fabric_detour_exists(int host, int rail, int port) const;
  void do_fail_access(int host, int rail, int port);

  void notify();

  topo::Cluster* cluster_;
  sim::Simulator* sim_;
  routing::Router* router_;
  CtrlTimings timings_;
  bool arp_proxy_;
  std::map<PortKey, PortState> ports_;
  std::vector<std::function<void()>> listeners_;
};

}  // namespace hpn::ctrl
