// Non-stacked dual-ToR LACP (§4.2).
//
// Two *independent* ToRs must answer a host's LACPDUs as if they were one
// chassis. The paper's customized vendor module achieves this with:
//   (1) the same sysID on both ToRs, generated from a pre-configured
//       RFC-reserved virtual-router MAC (00:00:5E:00:01:01) instead of the
//       chassis MAC, and
//   (2) disjoint portIDs, by adding a per-ToR offset > 256 to the physical
//       port number (a ToR has < 256 ports, so shifted IDs cannot collide
//       with real ones).
// The host's bond (mode 4, dynamic link aggregation) accepts the bundle iff
// both responses carry one sysID and distinct portIDs.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "common/check.h"

namespace hpn::ctrl {

struct MacAddress {
  std::array<std::uint8_t, 6> bytes{};

  /// The RFC 3768 VRRP virtual-router MAC the paper pre-configures.
  static constexpr MacAddress reserved_virtual_router() {
    return MacAddress{{0x00, 0x00, 0x5E, 0x00, 0x01, 0x01}};
  }
  /// A vendor chassis MAC (what stock LACP would use) — unique per switch.
  static MacAddress chassis(std::uint32_t serial);

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const MacAddress&, const MacAddress&) = default;
};

/// LACP Data Unit, reduced to the actor fields that decide aggregation.
struct Lacpdu {
  MacAddress actor_system;   ///< sysID source.
  std::uint16_t actor_port = 0;
  std::uint16_t actor_key = 0;
};

struct TorLacpConfig {
  /// Pre-configured MAC for sysID generation. Both ToRs of a set must agree.
  MacAddress system_mac = MacAddress::reserved_virtual_router();
  /// Added to the physical port number; must exceed the max port count (256)
  /// and differ between the two ToRs of a set.
  std::uint16_t port_id_offset = 300;
  std::uint16_t aggregation_key = 1;
  /// Physical ports per chip — the bound that makes the offset scheme safe.
  std::uint16_t max_physical_ports = 256;
};

/// The customized LACP module running on one ToR.
class TorLacpAgent {
 public:
  explicit TorLacpAgent(TorLacpConfig config);

  /// Respond to a host LACPDU received on `physical_port`.
  [[nodiscard]] Lacpdu respond(const Lacpdu& from_host, std::uint16_t physical_port) const;

  [[nodiscard]] const TorLacpConfig& config() const { return config_; }

 private:
  TorLacpConfig config_;
};

/// Host-side bond (mode 4). Feeds it the responses from both ToRs; it forms
/// a bundle only when the virtual-single-device illusion holds.
class HostBond {
 public:
  enum class State {
    kDown,        ///< No usable port.
    kDegraded,    ///< Exactly one port carrying traffic.
    kAggregated,  ///< Both ports in one LAG.
  };

  struct Verdict {
    State state = State::kDown;
    std::string reason;  ///< Human-readable when not aggregated.
  };

  /// Evaluate the two ToRs' LACPDU responses (nullopt = no response, e.g.
  /// link down).
  static Verdict evaluate(const std::optional<Lacpdu>& from_tor0,
                          const std::optional<Lacpdu>& from_tor1);
};

}  // namespace hpn::ctrl
