#include "ctrl/bgp.h"

#include <algorithm>

#include "common/check.h"

namespace hpn::ctrl {
namespace {

bool speaker_kind(topo::NodeKind kind) {
  return kind == topo::NodeKind::kTor || kind == topo::NodeKind::kAgg ||
         kind == topo::NodeKind::kCore;
}

}  // namespace

BgpFabric::BgpFabric(const topo::Cluster& cluster, sim::Simulator& simulator,
                     BgpTimings timings)
    : cluster_{&cluster}, sim_{&simulator}, timings_{timings} {
  for (const topo::Node& n : cluster.topo.nodes()) {
    if (!speaker_kind(n.kind)) continue;
    Speaker sp;
    sp.node = n.id;
    std::set<NodeId> seen;
    for (const LinkId lid : cluster.topo.out_links(n.id)) {
      const topo::Link& l = cluster.topo.link(lid);
      if (!speaker_kind(cluster.topo.node(l.dst).kind)) continue;
      if (!l.up || !cluster.topo.link(l.reverse).up) continue;
      if (!seen.insert(l.dst).second) continue;  // one adjacency per neighbor
      sp.peers.emplace_back(l.dst, lid);
    }
    speakers_.emplace(n.id, std::move(sp));
  }
}

bool BgpFabric::is_speaker(NodeId n) const { return speakers_.count(n) > 0; }

void BgpFabric::originate_all_host_routes() {
  for (const topo::Host& h : cluster_->hosts) {
    for (const topo::NicAttachment& att : h.nics) {
      for (int p = 0; p < att.ports; ++p) {
        const LinkId access = att.access.at(static_cast<std::size_t>(p));
        if (!cluster_->topo.is_up(access)) continue;
        const NodeId tor = att.tor.at(static_cast<std::size_t>(p));
        Speaker& sp = speaker(tor);
        sp.originated[att.nic] = access;
        reselect_and_propagate(sp, att.nic);
      }
    }
  }
}

std::vector<BgpRoute> BgpFabric::routes_at(NodeId sp_node, Prefix prefix) const {
  const auto it = speakers_.find(sp_node);
  if (it == speakers_.end()) return {};
  const auto fit = it->second.fib.find(prefix);
  return fit == it->second.fib.end() ? std::vector<BgpRoute>{} : fit->second;
}

std::vector<BgpRoute> BgpFabric::best_of(const Speaker& sp, Prefix prefix) const {
  std::vector<BgpRoute> candidates;
  // Self-origination wins outright (directly attached).
  const auto oit = sp.originated.find(prefix);
  if (oit != sp.originated.end()) {
    BgpRoute self;
    self.prefix = prefix;
    self.next_hop = prefix;
    self.via = oit->second;
    candidates.push_back(std::move(self));
    return candidates;
  }
  const auto rit = sp.rib_in.find(prefix);
  if (rit == sp.rib_in.end()) return candidates;
  std::size_t best_len = SIZE_MAX;
  for (const auto& [peer, route] : rit->second) {
    // Path-vector loop suppression.
    if (std::find(route.as_path.begin(), route.as_path.end(), sp.node) !=
        route.as_path.end()) {
      continue;
    }
    best_len = std::min(best_len, route.length());
  }
  for (const auto& [peer, route] : rit->second) {
    if (route.length() != best_len) continue;
    if (std::find(route.as_path.begin(), route.as_path.end(), sp.node) !=
        route.as_path.end()) {
      continue;
    }
    candidates.push_back(route);
  }
  return candidates;
}

void BgpFabric::send(Message msg) {
  // Sabotage knob: the dropped WITHDRAW never counts as in-flight, so
  // quiescent() still reports convergence — with stale routes left behind.
  if (drop_withdrawals_ && msg.kind == MsgKind::kWithdraw) return;
  ++inflight_messages_;
  ++messages_sent_;
  sim_->trace(msg.kind == MsgKind::kWithdraw ? metrics::TraceEventKind::kBgpWithdraw
                                             : metrics::TraceEventKind::kBgpUpdate,
              static_cast<std::uint32_t>(msg.from.value()),
              static_cast<std::uint32_t>(msg.route.prefix.value()));
  sim_->schedule_after(timings_.processing, [this, msg = std::move(msg)] {
    --inflight_messages_;
    deliver(msg);
  });
}

void BgpFabric::deliver(const Message& msg) {
  auto it = speakers_.find(msg.to);
  if (it == speakers_.end()) return;
  Speaker& sp = it->second;
  // Ignore messages from ex-peers (adjacency torn down while in flight).
  const bool still_peer =
      std::any_of(sp.peers.begin(), sp.peers.end(),
                  [&](const auto& pr) { return pr.first == msg.from; });
  if (!still_peer) return;

  const Prefix prefix = msg.route.prefix;
  if (msg.kind == MsgKind::kUpdate) {
    sp.rib_in[prefix][msg.from] = msg.route;
  } else {
    auto rit = sp.rib_in.find(prefix);
    if (rit != sp.rib_in.end()) rit->second.erase(msg.from);
  }
  reselect_and_propagate(sp, prefix);
}

void BgpFabric::reselect_and_propagate(Speaker& sp, Prefix prefix) {
  std::vector<BgpRoute> best = best_of(sp, prefix);
  auto& fib_entry = sp.fib[prefix];
  const bool changed =
      fib_entry.size() != best.size() ||
      (!best.empty() && !fib_entry.empty() && fib_entry.front().length() != best.front().length()) ||
      (best.empty() != fib_entry.empty());
  // Always install (next hops may differ even at equal length/count).
  fib_entry = std::move(best);
  if (fib_entry.empty()) sp.fib.erase(prefix);
  if (changed) {
    ++fib_changes_;
    sim_->trace(metrics::TraceEventKind::kFibUpdate,
                static_cast<std::uint32_t>(sp.node.value()),
                static_cast<std::uint32_t>(prefix.value()));
  }

  // Advertise when our exported view changed: lengths differ or presence
  // flipped. Exported view = shortest length + 1, or "withdrawn".
  const auto cur = sp.fib.find(prefix);
  const std::size_t exported =
      cur == sp.fib.end() ? SIZE_MAX : cur->second.front().length() + 1;
  auto& last = advertised_len_[sp.node];
  const auto lit = last.find(prefix);
  const std::size_t previous = lit == last.end() ? SIZE_MAX : lit->second;
  if (exported == previous && !changed) return;
  last[prefix] = exported;
  announce(sp, prefix);
}

void BgpFabric::announce(Speaker& sp, Prefix prefix) {
  const auto cur = sp.fib.find(prefix);
  for (const auto& [peer, link] : sp.peers) {
    if (cur == sp.fib.end()) {
      Message m;
      m.kind = MsgKind::kWithdraw;
      m.from = sp.node;
      m.to = peer;
      m.route.prefix = prefix;
      send(std::move(m));
      continue;
    }
    // Advertise one best path (split-horizon: not back to the peer we
    // learned it from, unless we have an alternative).
    const BgpRoute* pick = nullptr;
    for (const BgpRoute& r : cur->second) {
      if (r.next_hop != peer) {
        pick = &r;
        break;
      }
    }
    Message m;
    m.from = sp.node;
    m.to = peer;
    if (pick == nullptr) {
      m.kind = MsgKind::kWithdraw;
      m.route.prefix = prefix;
    } else {
      m.kind = MsgKind::kUpdate;
      m.route.prefix = prefix;
      m.route.as_path = pick->as_path;
      m.route.as_path.insert(m.route.as_path.begin(), sp.node);
      m.route.next_hop = sp.node;
      m.route.via = LinkId::invalid();  // receiver resolves its egress link
    }
    send(std::move(m));
  }
}

void BgpFabric::audit_fib(sim::InvariantAuditor& auditor) const {
  if (!auditor.enabled()) return;
  const TimePoint now = sim_->now();

  std::set<Prefix> prefixes;
  for (const auto& [node, sp] : speakers_) {
    for (const auto& [prefix, routes] : sp.fib) prefixes.insert(prefix);
  }

  for (const Prefix prefix : prefixes) {
    // Per-prefix next-hop digraph over the speakers (self-originated routes
    // terminate at the attached NIC, so they add no edge).
    std::map<NodeId, std::vector<NodeId>> edges;
    for (const auto& [node, sp] : speakers_) {
      const auto fit = sp.fib.find(prefix);
      if (fit == sp.fib.end()) continue;
      for (const BgpRoute& r : fit->second) {
        if (r.next_hop == prefix) {
          auditor.check(cluster_->topo.is_up(r.via), sim::AuditRule::kFibDownLink, now,
                        [&, n = node] {
                          std::ostringstream os;
                          os << "speaker " << n.value() << " originates prefix "
                             << prefix.value() << " over down access link "
                             << r.via.value();
                          return os.str();
                        });
          continue;
        }
        const auto pit =
            std::find_if(sp.peers.begin(), sp.peers.end(),
                         [&](const auto& pr) { return pr.first == r.next_hop; });
        if (pit == sp.peers.end()) {
          std::ostringstream os;
          os << "speaker " << node.value() << " routes prefix " << prefix.value()
             << " via " << r.next_hop.value() << ", which is not a peer";
          auditor.fail(sim::AuditRule::kFibBlackhole, now, os.str());
          continue;
        }
        // Any up parallel link to the next hop will do (the adjacency
        // records one link, but traffic can take any member of the bundle).
        bool egress_up = false;
        for (const LinkId cand : cluster_->topo.find_links(node, r.next_hop)) {
          egress_up |= cluster_->topo.is_up(cand) &&
                       cluster_->topo.is_up(cluster_->topo.link(cand).reverse);
        }
        auditor.check(egress_up, sim::AuditRule::kFibDownLink, now, [&, n = node] {
          std::ostringstream os;
          os << "speaker " << n.value() << " routes prefix " << prefix.value()
             << " toward " << r.next_hop.value() << " with every link down";
          return os.str();
        });
        const auto nit = speakers_.find(r.next_hop);
        const bool nh_routes =
            nit != speakers_.end() && nit->second.fib.count(prefix) > 0;
        auditor.check(nh_routes, sim::AuditRule::kFibBlackhole, now, [&, n = node] {
          std::ostringstream os;
          os << "speaker " << n.value() << " routes prefix " << prefix.value()
             << " via " << r.next_hop.value() << ", which has no route (blackhole)";
          return os.str();
        });
        edges[node].push_back(r.next_hop);
      }
    }

    // Loop detection: 3-colour DFS over the next-hop digraph. A grey-node
    // hit is a cycle; one violation per prefix is enough detail.
    enum : std::uint8_t { kWhite, kGrey, kBlack };
    std::map<NodeId, std::uint8_t> colour;
    bool looped = false;
    for (const auto& kv : edges) {
      const NodeId start = kv.first;
      if (looped || colour[start] != kWhite) continue;
      // Iterative DFS; the stack holds (node, next child index).
      std::vector<std::pair<NodeId, std::size_t>> stack{{start, 0}};
      colour[start] = kGrey;
      while (!stack.empty() && !looped) {
        auto& [node, child] = stack.back();
        const auto eit = edges.find(node);
        if (eit == edges.end() || child >= eit->second.size()) {
          colour[node] = kBlack;
          stack.pop_back();
          continue;
        }
        const NodeId next = eit->second[child++];
        const std::uint8_t c = colour[next];
        if (c == kGrey) {
          std::ostringstream os;
          os << "prefix " << prefix.value() << " has a forwarding loop through speaker "
             << next.value();
          auditor.fail(sim::AuditRule::kFibLoop, now, os.str());
          looped = true;
        } else if (c == kWhite) {
          colour[next] = kGrey;
          stack.emplace_back(next, 0);
        }
      }
    }
  }
}

void BgpFabric::on_access_down(LinkId nic_to_tor) {
  const topo::Link& l = cluster_->topo.link(nic_to_tor);
  HPN_CHECK_MSG(is_speaker(l.dst), "access link must point NIC -> ToR");
  // ARP entry removal + /32 withdrawal happen after local detection; model
  // the detection inside `processing` via the message delay of announce.
  Speaker& sp = speaker(l.dst);
  sp.originated.erase(l.src);
  reselect_and_propagate(sp, l.src);
}

void BgpFabric::on_access_up(LinkId nic_to_tor) {
  const topo::Link& l = cluster_->topo.link(nic_to_tor);
  HPN_CHECK_MSG(is_speaker(l.dst), "access link must point NIC -> ToR");
  Speaker& sp = speaker(l.dst);
  sp.originated[l.src] = nic_to_tor;
  reselect_and_propagate(sp, l.src);
}

void BgpFabric::on_fabric_down(LinkId link) {
  const topo::Link& l = cluster_->topo.link(link);
  if (!is_speaker(l.src) || !is_speaker(l.dst)) return;
  // Hold-timer detection, then both sides flush the neighbor.
  sim_->schedule_after(timings_.hold_detect, [this, a = l.src, b = l.dst] {
    for (const auto& [self, peer] : {std::pair{a, b}, std::pair{b, a}}) {
      // Adjacency survives if any parallel link is still up.
      bool alive = false;
      for (const LinkId cand : cluster_->topo.find_links(self, peer)) {
        alive |= cluster_->topo.is_up(cand) &&
                 cluster_->topo.is_up(cluster_->topo.link(cand).reverse);
      }
      if (alive) continue;
      Speaker& sp = speaker(self);
      sp.peers.erase(std::remove_if(sp.peers.begin(), sp.peers.end(),
                                    [&](const auto& pr) { return pr.first == peer; }),
                     sp.peers.end());
      // Flush everything learned from the dead neighbor and reconverge.
      std::vector<Prefix> affected;
      for (auto& [prefix, by_peer] : sp.rib_in) {
        if (by_peer.erase(peer) > 0) affected.push_back(prefix);
      }
      for (const Prefix p : affected) reselect_and_propagate(sp, p);
    }
  });
}

void BgpFabric::on_fabric_up(LinkId link) {
  const topo::Link& l = cluster_->topo.link(link);
  if (!is_speaker(l.src) || !is_speaker(l.dst)) return;
  for (const auto& [self, peer, via] :
       {std::tuple{l.src, l.dst, link}, std::tuple{l.dst, l.src, l.reverse}}) {
    Speaker& sp = speaker(self);
    const bool already =
        std::any_of(sp.peers.begin(), sp.peers.end(),
                    [&, peer = peer](const auto& pr) { return pr.first == peer; });
    if (already) continue;
    sp.peers.emplace_back(peer, via);
    // Session establishment: advertise our full table to the new peer.
    for (const auto& [prefix, routes] : sp.fib) {
      (void)routes;
      advertised_len_[sp.node].erase(prefix);  // force re-announce
      announce(sp, prefix);
      advertised_len_[sp.node][prefix] = sp.fib.at(prefix).front().length() + 1;
    }
  }
}

}  // namespace hpn::ctrl
