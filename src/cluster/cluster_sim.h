// Multi-tenant cluster scheduler over one shared fabric (ROADMAP item 3).
//
// One run = one fabric + one Simulator + one FlowSession carrying every
// tenant's traffic. Jobs arrive from a deterministic trace, queue FIFO, get
// hosts from a PlacementEngine policy, and run co-resident: training jobs
// as event-driven TenantTrainingJobs (their collectives contend in the
// shared max-min session — the interference locality placement avoids),
// inference services (§8) as workload::InferenceService tenants on the
// frontend network. Fault injection flaps access links through the
// FabricController; a job stalled past its collective timeout crashes,
// rolls back to its last checkpoint (fault::CheckpointPolicy), pays the
// restart time, and is rescheduled — possibly onto different hosts.
//
// Determinism contract: a run is a pure function of (config). The CSV
// emitters format with fixed precision, so byte-identical output at any
// RunnerPool --jobs count follows from running each (seed, policy) case as
// its own run and aggregating by case index.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/placement.h"
#include "cluster/trace.h"
#include "fabric/fabric.h"
#include "fault/checkpoint.h"
#include "workload/parallelism.h"

namespace hpn::cluster {

struct ClusterConfig {
  std::string fabric = "hpn";
  /// 32 hosts/segment on the tiny HPN radix (4x400G uplinks per plane ToR)
  /// gives 2:1 ToR->Agg oversubscription per plane (32 x 200G / 2 planes =
  /// 3.2T vs 1.6T up), so segment-crossing collectives genuinely contend —
  /// the interference signal the placement policies differ on.
  fabric::FabricScale scale{/*pods=*/1, /*segments_per_pod=*/4,
                            /*hosts_per_segment=*/32, /*gpus_per_host=*/8};
  TraceConfig trace;
  /// Non-empty: replay exactly these jobs instead of sampling `trace`
  /// (the fuzzer's jobsmix phase feeds scenario job lines through here).
  /// Host counts are clamped to the schedulable pool at admission, so any
  /// job list is valid for any scale — the shrinker's closure property.
  std::vector<JobSpec> jobs;
  Policy policy = Policy::kLocalityAware;
  /// Arm the simulator's InvariantAuditor; findings land in
  /// ClusterReport::audit_report instead of aborting the run.
  bool audit = false;

  /// Training-tenant shape. Defaults to tenant_tiny_model(): iterations are
  /// communication-dominated so placement quality is visible in JCT.
  workload::ModelPreset model;
  double dp_overlap = 0.5;
  Duration comm_timeout = Duration::seconds(1.5);

  /// Checkpoint/restore economics, scaled to simulation-sized iterations.
  fault::CheckpointPolicy checkpoint{/*interval=*/Duration::seconds(30),
                                     /*write_time=*/Duration::millis(50),
                                     /*per_gpu=*/DataSize::gigabytes(30),
                                     /*restart_time=*/Duration::millis(500)};
  /// A checkpoint is taken every this many completed iterations.
  int checkpoint_every_iters = 2;
  /// Crash-restart attempts before a job is aborted for good.
  int max_restarts = 2;

  /// Access-link flaps injected during the run (0 = fault-free). Each flap
  /// takes down both ports of one rail of a random host — isolating it —
  /// for `fault_down_for`, then auto-repairs.
  int faults = 0;
  Duration fault_down_for = Duration::seconds(3.0);

  /// Non-empty: enable the tracer (job/iteration spans) and save here
  /// ('.json' selects Chrome format).
  std::string trace_path;

  ClusterConfig();
};

/// The communication-dominated tenant preset: tiny compute, heavy-enough DP
/// gradient traffic that segment-crossing placements pay in iteration time.
workload::ModelPreset tenant_tiny_model();

struct JobStats {
  int id = 0;
  JobKind kind = JobKind::kTraining;
  TimePoint arrival = TimePoint::origin();
  TimePoint start = TimePoint::origin();   ///< First placement.
  TimePoint finish = TimePoint::origin();
  int hosts = 0;
  int segments = 0;       ///< Spanned by the last placement.
  int iterations = 0;     ///< Completed (training).
  int restarts = 0;
  bool aborted = false;   ///< Gave up after max_restarts crashes.

  [[nodiscard]] Duration jct() const { return finish - arrival; }
  [[nodiscard]] Duration queue_wait() const { return start - arrival; }
};

struct ClusterReport {
  Policy policy = Policy::kLocalityAware;
  std::uint64_t seed = 0;
  std::vector<JobStats> jobs;        ///< By job id.
  TimePoint finished_at = TimePoint::origin();  ///< Last job completion.
  /// Busy host-time / (schedulable hosts x makespan).
  double utilization = 0.0;
  /// Time-weighted mean of PlacementEngine::fragmentation().
  double mean_fragmentation = 0.0;
  int crashes = 0;
  /// Checkpoint-economics accounting over all crashes (CheckpointModel).
  double crash_cost_dollars = 0.0;
  /// InvariantAuditor findings (empty when clean or not armed).
  std::string audit_report;

  [[nodiscard]] double mean_jct_s(JobKind kind) const;
  [[nodiscard]] double quantile_jct_s(JobKind kind, double q) const;
  [[nodiscard]] double mean_segments(JobKind kind) const;

  /// Canonical per-job CSV (fixed precision — byte-stable for a config).
  [[nodiscard]] std::string jct_csv() const;
  /// One-line run summary, same stability contract.
  [[nodiscard]] std::string summary_csv_row() const;
  static std::string summary_csv_header();
};

/// Build the fabric, replay the trace, return the report. Pure function of
/// `config` — same config, byte-identical report CSVs.
ClusterReport run_cluster(const ClusterConfig& config);

}  // namespace hpn::cluster
