#include "cluster/trace.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "workload/traffic.h"

namespace hpn::cluster {

std::string_view to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kTraining: return "training";
    case JobKind::kInference: return "inference";
  }
  return "unknown";
}

std::vector<JobSpec> generate_trace(const TraceConfig& config, int max_hosts,
                                    int gpus_per_host) {
  HPN_CHECK(config.jobs > 0);
  HPN_CHECK(max_hosts > 0);
  HPN_CHECK(gpus_per_host > 0);
  HPN_CHECK(config.inference_fraction >= 0.0 && config.inference_fraction <= 1.0);

  // Independent streams: adding a knob to one draw (e.g. longer traces)
  // must not perturb the others for the same seed.
  Rng master{config.seed};
  Rng arrivals = master.fork(1);
  Rng kinds = master.fork(2);
  Rng lengths = master.fork(3);
  workload::JobSizeModel sizes{detail::splitmix64_mix(config.seed ^ 0x6a6f6273u)};

  std::vector<JobSpec> trace;
  trace.reserve(static_cast<std::size_t>(config.jobs));
  TimePoint at = TimePoint::origin();
  for (int i = 0; i < config.jobs; ++i) {
    at += Duration::seconds(arrivals.exponential(config.mean_interarrival.as_seconds()));
    JobSpec job;
    job.id = i + 1;
    job.arrival = at;
    job.kind = kinds.bernoulli(config.inference_fraction) ? JobKind::kInference
                                                          : JobKind::kTraining;
    if (job.kind == JobKind::kTraining) {
      const int gpus = sizes.sample_gpus();
      const int cap = config.max_job_hosts > 0 ? std::min(config.max_job_hosts, max_hosts)
                                               : max_hosts;
      job.hosts = std::clamp((gpus + gpus_per_host - 1) / gpus_per_host, 1, cap);
      job.iterations = static_cast<int>(
          lengths.uniform_int(config.min_iterations, config.max_iterations));
    } else {
      job.hosts = static_cast<int>(
          lengths.uniform_int(1, std::min(config.max_inference_hosts, max_hosts)));
      job.service_time = Duration::seconds(lengths.uniform_real(
          config.min_service.as_seconds(), config.max_service.as_seconds()));
    }
    trace.push_back(job);
  }
  return trace;
}

}  // namespace hpn::cluster
