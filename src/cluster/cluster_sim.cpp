#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "cluster/tenant.h"
#include "common/check.h"
#include "common/rng.h"
#include "ctrl/fabric_controller.h"
#include "metrics/stats.h"
#include "routing/router.h"
#include "topo/frontend.h"
#include "workload/inference.h"

namespace hpn::cluster {

ClusterConfig::ClusterConfig() : model{tenant_tiny_model()} {}

workload::ModelPreset tenant_tiny_model() {
  workload::ModelPreset m;
  m.name = "tenant-tiny";
  // Communication-dominated on purpose: at 400G per rail the exposed DP
  // burst takes ~10x the compute slice, so a placement that pushes rings
  // through shared Agg uplinks shows up directly in iteration time.
  m.traffic.dp_all_reduce = DataSize::gigabytes(4.0);
  m.traffic.pp_send = DataSize::megabytes(4);
  m.traffic.tp_all_reduce = DataSize::megabytes(64);
  m.traffic.moe_all_to_all = DataSize::zero();
  m.compute_per_iteration = Duration::millis(10);
  m.samples_per_iteration_per_gpu = 1;
  m.dp_rounds_per_iteration = 1;
  return m;
}

namespace {

/// Fixed-precision float formatting — the byte-stability contract of every
/// cluster CSV.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

/// Deterministic (pp, dp) factoring for an allocation of `hosts` hosts.
std::pair<int, int> factor_parallelism(int hosts) {
  if (hosts >= 4 && hosts % 2 == 0) return {2, hosts / 2};
  return {1, hosts};
}

class ClusterSim {
 public:
  explicit ClusterSim(const ClusterConfig& config)
      : config_{config},
        cluster_{fabric::fabric_or_throw(config.fabric).build(config.scale)} {
    int schedulable = 0;
    for (const auto& h : cluster_.hosts) schedulable += h.backup ? 0 : 1;
    HPN_CHECK_MSG(schedulable > 0, "no schedulable hosts at this scale");
    if (config_.audit) sim_.auditor().enable();
    if (config_.jobs.empty()) {
      trace_ = generate_trace(config_.trace, schedulable, cluster_.gpus_per_host);
    } else {
      trace_ = config_.jobs;
      for (JobSpec& j : trace_) {
        j.hosts = std::clamp(j.hosts, 1, schedulable);
        j.iterations = std::max(1, j.iterations);
      }
    }

    const bool has_inference =
        std::any_of(trace_.begin(), trace_.end(),
                    [](const JobSpec& j) { return j.kind == JobKind::kInference; });
    if (has_inference) {
      for (const auto& sh : topo::attach_frontend(cluster_)) {
        gateways_.push_back(sh.host);
      }
    }

    if (!config_.trace_path.empty()) sim_.tracer().enable();
    session_ = std::make_unique<flowsim::FlowSession>(cluster_.topo, sim_);
    router_ = std::make_unique<routing::Router>(
        cluster_.topo, fabric::fabric_or_throw(config_.fabric).hash_policy());
    // A cluster fault can take both ports of a rail NIC while a fresh tenant
    // opens its first connections; tolerate it — the watchdog/restart cycle
    // (not a hard abort) is the multi-tenant failure semantic.
    ccl::ConnectionConfig conn_cfg;
    conn_cfg.allow_unreachable_establish = true;
    conns_ = std::make_unique<ccl::ConnectionManager>(cluster_, *router_, conn_cfg);
    controller_ = std::make_unique<ctrl::FabricController>(cluster_, sim_, *router_);
    controller_->subscribe([this] {
      session_->refresh();
      for (auto& [id, rt] : running_training_) rt.job->on_fabric_change();
    });
    engine_ = std::make_unique<PlacementEngine>(cluster_, config_.policy,
                                                config_.trace.seed);
  }

  ClusterReport run() {
    for (const JobSpec& spec : trace_) {
      stats_[spec.id] = JobStats{.id = spec.id, .kind = spec.kind,
                                 .arrival = spec.arrival};
      sim_.schedule_at(spec.arrival, [this, spec] { on_arrival(spec); });
    }
    schedule_faults();
    sim_.run();
    reap();

    ClusterReport report;
    report.policy = config_.policy;
    report.seed = config_.trace.seed;
    for (auto& [id, js] : stats_) {
      report.finished_at = std::max(report.finished_at, js.finish);
      report.jobs.push_back(js);
    }
    account(report.finished_at);
    const double makespan = report.finished_at.since_origin().as_seconds();
    if (makespan > 0.0) {
      report.utilization =
          busy_integral_ / (static_cast<double>(engine_->schedulable_hosts()) * makespan);
      report.mean_fragmentation = frag_integral_ / makespan;
    }
    report.crashes = crashes_;
    report.crash_cost_dollars = crash_cost_dollars_;
    if (config_.audit && !sim_.auditor().ok()) {
      report.audit_report = sim_.auditor().report();
    }

    if (!config_.trace_path.empty()) sim_.tracer().save(config_.trace_path);
    return report;
  }

 private:
  struct PendingJob {
    JobSpec spec;
    int restarts = 0;
    int checkpointed = 0;  ///< Training iterations safely on storage.
  };
  struct RunningTraining {
    std::unique_ptr<TenantTrainingJob> job;
    Allocation alloc;
    PendingJob meta;
    TimePoint chunk_start;  ///< Progress since here is lost on a crash.
  };
  struct RunningInference {
    std::unique_ptr<workload::InferenceService> service;
    Allocation alloc;
    PendingJob meta;
  };

  void on_arrival(const JobSpec& spec) {
    queue_.push_back(PendingJob{spec});
    try_dispatch();
  }

  void try_dispatch() {
    // FIFO with head-of-line blocking: simple, fair, and every job's hosts
    // eventually free up because trace sizes are clamped to the cluster.
    while (!queue_.empty()) {
      PendingJob& head = queue_.front();
      auto alloc = engine_->allocate(head.spec.id, head.spec.hosts);
      if (!alloc.has_value()) return;
      PendingJob job = std::move(head);
      queue_.pop_front();
      place(std::move(job), std::move(*alloc));
    }
  }

  void place(PendingJob job, Allocation alloc) {
    account(sim_.now());
    busy_hosts_ += static_cast<int>(alloc.hosts.size());
    JobStats& js = stats_[job.spec.id];
    if (job.restarts == 0) js.start = sim_.now();
    js.hosts = static_cast<int>(alloc.hosts.size());
    js.segments = alloc.segments_spanned;
    if (job.restarts == 0) {
      sim_.trace(metrics::TraceEventKind::kJobBegin,
                 static_cast<std::uint32_t>(job.spec.id),
                 static_cast<std::uint32_t>(alloc.hosts.size()));
    }
    if (job.spec.kind == JobKind::kTraining) {
      start_training(std::move(job), std::move(alloc));
    } else {
      start_inference(std::move(job), std::move(alloc));
    }
  }

  void start_training(PendingJob job, Allocation alloc) {
    const auto [pp, dp] = factor_parallelism(static_cast<int>(alloc.hosts.size()));
    workload::PlacementPlan plan = workload::ParallelismPlanner{cluster_}.plan_on_hosts(
        cluster_.gpus_per_host, pp, dp, alloc.hosts);
    TenantOptions opts;
    opts.dp_overlap = config_.dp_overlap;
    opts.comm_timeout = config_.comm_timeout;
    RunningTraining rt;
    rt.job = std::make_unique<TenantTrainingJob>(
        cluster_, sim_, *session_, *conns_, std::move(plan), config_.model, opts,
        static_cast<std::uint32_t>(job.spec.id));
    rt.alloc = std::move(alloc);
    rt.meta = std::move(job);
    rt.chunk_start = sim_.now();
    const int id = rt.meta.spec.id;
    running_training_[id] = std::move(rt);
    run_chunk(id);
  }

  /// Runs up to checkpoint_every_iters iterations, then pays the checkpoint
  /// write and continues — so a crash always rolls back to a chunk start.
  void run_chunk(int id) {
    RunningTraining& rt = running_training_.at(id);
    const int remaining = rt.meta.spec.iterations - rt.meta.checkpointed;
    const int chunk = std::min(remaining, config_.checkpoint_every_iters);
    rt.chunk_start = sim_.now();
    rt.job->run(chunk, [this, id](bool crashed) { on_chunk_done(id, crashed); });
  }

  void on_chunk_done(int id, bool crashed) {
    RunningTraining& rt = running_training_.at(id);
    if (crashed) {
      on_crash(id);
      return;
    }
    rt.meta.checkpointed += std::min(
        rt.meta.spec.iterations - rt.meta.checkpointed, config_.checkpoint_every_iters);
    stats_[id].iterations = rt.meta.checkpointed;
    if (rt.meta.checkpointed >= rt.meta.spec.iterations) {
      finish_training(id, /*aborted=*/false);
      return;
    }
    sim_.schedule_after(config_.checkpoint.write_time, [this, id] {
      if (running_training_.count(id) != 0) run_chunk(id);
    });
  }

  void on_crash(int id) {
    RunningTraining& rt = running_training_.at(id);
    ++crashes_;
    JobStats& js = stats_[id];
    ++js.restarts;
    const fault::CheckpointModel model{config_.checkpoint};
    crash_cost_dollars_ +=
        model
            .crash_cost(sim_.now() - rt.chunk_start,
                        static_cast<int>(rt.alloc.hosts.size()) * cluster_.gpus_per_host)
            .dollars;
    if (rt.meta.restarts >= config_.max_restarts) {
      finish_training(id, /*aborted=*/true);
      return;
    }
    // Checkpoint restore: free the hosts, pay the restart, requeue at the
    // front (crashed jobs resume ahead of new arrivals) — possibly landing
    // on different hosts.
    PendingJob meta = std::move(rt.meta);
    ++meta.restarts;
    release_and_destroy_training(id);
    sim_.schedule_after(config_.checkpoint.restart_time, [this, meta = std::move(meta)] {
      queue_.push_front(meta);
      try_dispatch();
    });
  }

  void finish_training(int id, bool aborted) {
    JobStats& js = stats_[id];
    js.finish = sim_.now();
    js.aborted = aborted;
    js.iterations = running_training_.at(id).meta.checkpointed;
    sim_.trace(metrics::TraceEventKind::kJobEnd, static_cast<std::uint32_t>(id),
               metrics::kTraceNoId, js.jct().as_seconds());
    release_and_destroy_training(id);
    try_dispatch();
  }

  void release_and_destroy_training(int id) {
    auto it = running_training_.find(id);
    account(sim_.now());
    busy_hosts_ -= static_cast<int>(it->second.alloc.hosts.size());
    engine_->release(it->second.alloc.hosts);
    // The tenant's destructor runs from the reaper event, never inside one
    // of the tenant's own callbacks.
    dead_training_.push_back(std::move(it->second.job));
    running_training_.erase(it);
    sim_.schedule_now([this] { reap(); });
  }

  void start_inference(PendingJob job, Allocation alloc) {
    HPN_CHECK_MSG(!gateways_.empty(), "inference jobs need the frontend network");
    workload::InferenceConfig icfg;
    icfg.requests_per_sec = 200.0;
    icfg.response_size = DataSize::megabytes(2);
    icfg.compute_mean = Duration::millis(20);
    icfg.seed = detail::splitmix64_mix(config_.trace.seed ^
                                       (static_cast<std::uint64_t>(job.spec.id) << 32));
    RunningInference ri;
    ri.service = std::make_unique<workload::InferenceService>(
        cluster_, sim_, *session_, *router_, alloc.hosts, gateways_, icfg);
    ri.alloc = std::move(alloc);
    ri.meta = std::move(job);
    const int id = ri.meta.spec.id;
    const Duration lease = ri.meta.spec.service_time;
    ri.service->start();
    running_inference_[id] = std::move(ri);
    sim_.schedule_after(lease, [this, id] { finish_inference(id); });
  }

  void finish_inference(int id) {
    auto it = running_inference_.find(id);
    it->second.service->stop();
    JobStats& js = stats_[id];
    js.finish = sim_.now();
    js.iterations = it->second.service->completed();
    sim_.trace(metrics::TraceEventKind::kJobEnd, static_cast<std::uint32_t>(id),
               metrics::kTraceNoId, js.jct().as_seconds());
    account(sim_.now());
    busy_hosts_ -= static_cast<int>(it->second.alloc.hosts.size());
    engine_->release(it->second.alloc.hosts);
    dead_inference_.push_back(std::move(it->second.service));
    running_inference_.erase(it);
    sim_.schedule_now([this] { reap(); });
    try_dispatch();
  }

  void schedule_faults() {
    if (config_.faults <= 0) return;
    Rng rng{detail::splitmix64_mix(config_.trace.seed ^ 0xfa17u)};
    TimePoint at = TimePoint::origin();
    for (int k = 0; k < config_.faults; ++k) {
      at += Duration::seconds(
          rng.exponential(2.0 * config_.trace.mean_interarrival.as_seconds()));
      const int host = static_cast<int>(rng.uniform_index(cluster_.hosts.size()));
      sim_.schedule_at(at, [this, host] {
        // Both ports of rail 0 go down: the host is isolated (§2.3's crash
        // trigger) until the flap heals.
        controller_->flap_access(host, 0, 0, config_.fault_down_for);
        controller_->flap_access(host, 0, 1, config_.fault_down_for);
      });
    }
  }

  /// Time-weighted utilization/fragmentation integration; call before every
  /// busy-set change.
  void account(TimePoint now) {
    const double dt = (now - last_account_).as_seconds();
    if (dt > 0.0) {
      busy_integral_ += static_cast<double>(busy_hosts_) * dt;
      frag_integral_ += engine_->fragmentation() * dt;
      last_account_ = now;
    }
  }

  void reap() {
    dead_training_.clear();
    dead_inference_.clear();
  }

  ClusterConfig config_;
  topo::Cluster cluster_;
  std::vector<JobSpec> trace_;
  std::vector<NodeId> gateways_;
  sim::Simulator sim_;
  std::unique_ptr<flowsim::FlowSession> session_;
  std::unique_ptr<routing::Router> router_;
  std::unique_ptr<ccl::ConnectionManager> conns_;
  std::unique_ptr<ctrl::FabricController> controller_;
  std::unique_ptr<PlacementEngine> engine_;

  std::deque<PendingJob> queue_;
  std::map<int, RunningTraining> running_training_;
  std::map<int, RunningInference> running_inference_;
  std::vector<std::unique_ptr<TenantTrainingJob>> dead_training_;
  std::vector<std::unique_ptr<workload::InferenceService>> dead_inference_;
  std::map<int, JobStats> stats_;

  int busy_hosts_ = 0;
  TimePoint last_account_ = TimePoint::origin();
  double busy_integral_ = 0.0;
  double frag_integral_ = 0.0;
  int crashes_ = 0;
  double crash_cost_dollars_ = 0.0;
};

}  // namespace

double ClusterReport::mean_jct_s(JobKind kind) const {
  metrics::SampleSet s;
  for (const JobStats& j : jobs) {
    if (j.kind == kind) s.add(j.jct().as_seconds());
  }
  return s.empty() ? 0.0 : s.mean();
}

double ClusterReport::quantile_jct_s(JobKind kind, double q) const {
  metrics::SampleSet s;
  for (const JobStats& j : jobs) {
    if (j.kind == kind) s.add(j.jct().as_seconds());
  }
  return s.empty() ? 0.0 : s.quantile(q);
}

double ClusterReport::mean_segments(JobKind kind) const {
  double sum = 0.0;
  int n = 0;
  for (const JobStats& j : jobs) {
    if (j.kind != kind) continue;
    sum += j.segments;
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

std::string ClusterReport::jct_csv() const {
  std::string out =
      "job,kind,policy,arrival_s,start_s,finish_s,jct_s,hosts,segments,restarts,"
      "iterations,aborted\n";
  for (const JobStats& j : jobs) {
    out += std::to_string(j.id);
    out += ',';
    out += to_string(j.kind);
    out += ',';
    out += to_string(policy);
    out += ',';
    out += fmt(j.arrival.as_seconds());
    out += ',';
    out += fmt(j.start.as_seconds());
    out += ',';
    out += fmt(j.finish.as_seconds());
    out += ',';
    out += fmt(j.jct().as_seconds());
    out += ',';
    out += std::to_string(j.hosts);
    out += ',';
    out += std::to_string(j.segments);
    out += ',';
    out += std::to_string(j.restarts);
    out += ',';
    out += std::to_string(j.iterations);
    out += ',';
    out += j.aborted ? '1' : '0';
    out += '\n';
  }
  return out;
}

std::string ClusterReport::summary_csv_header() {
  return "policy,seed,jobs,utilization,mean_fragmentation,crashes,crash_cost_dollars,"
         "train_mean_jct_s,train_p50_jct_s,train_p99_jct_s,train_mean_segments,"
         "infer_mean_jct_s,makespan_s\n";
}

std::string ClusterReport::summary_csv_row() const {
  std::string out{to_string(policy)};
  out += ',';
  out += std::to_string(seed);
  out += ',';
  out += std::to_string(jobs.size());
  out += ',';
  out += fmt(utilization);
  out += ',';
  out += fmt(mean_fragmentation);
  out += ',';
  out += std::to_string(crashes);
  out += ',';
  out += fmt(crash_cost_dollars);
  out += ',';
  out += fmt(mean_jct_s(JobKind::kTraining));
  out += ',';
  out += fmt(quantile_jct_s(JobKind::kTraining, 0.5));
  out += ',';
  out += fmt(quantile_jct_s(JobKind::kTraining, 0.99));
  out += ',';
  out += fmt(mean_segments(JobKind::kTraining));
  out += ',';
  out += fmt(mean_jct_s(JobKind::kInference));
  out += ',';
  out += fmt(finished_at.as_seconds());
  out += '\n';
  return out;
}

ClusterReport run_cluster(const ClusterConfig& config) {
  ClusterSim sim{config};
  return sim.run();
}

}  // namespace hpn::cluster
