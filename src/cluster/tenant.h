// Event-driven co-resident training job.
//
// train::TrainingJob drives the simulator itself (run_iterations() pumps
// sim.step() until the iteration settles), which works for exactly one job
// per simulation. A multi-tenant cluster needs many jobs making progress on
// one shared Simulator/FlowSession, so TenantTrainingJob replays the same
// iteration anatomy (§9.1: compute + TP AllReduce, then the backward-phase
// DP Multi-AllReduce burst + PP boundary traffic) purely through callbacks:
// the cluster scheduler starts it, the simulator advances it, and a
// completion (or crash) callback hands control back.
//
// Crash detection cannot poll the clock like the blocking loop does, so
// each iteration arms a watchdog event at start + compute + comm_timeout;
// if the iteration has not drained by then (collective stalled on an
// isolated host, §2.3), the watchdog fires the NCCL-abort path and reports
// a crash for the scheduler to checkpoint-restore + reschedule.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ccl/communicator.h"
#include "workload/parallelism.h"

namespace hpn::cluster {

struct TenantOptions {
  /// Fraction of DP gradient sync hidden under backward compute.
  double dp_overlap = 0.5;
  /// Collective timeout: an iteration stalled beyond this crashes the job.
  Duration comm_timeout = Duration::minutes(2);
  ccl::CclConfig ccl;
};

class TenantTrainingJob {
 public:
  /// `crashed` is true when the watchdog aborted a stalled iteration.
  using DoneFn = std::function<void(bool crashed)>;

  /// `job_tag` labels this job's tracer spans (kIterationBegin b-field).
  TenantTrainingJob(const topo::Cluster& cluster, sim::Simulator& simulator,
                    flowsim::FlowSession& session, ccl::ConnectionManager& connections,
                    workload::PlacementPlan plan, workload::ModelPreset model,
                    TenantOptions options, std::uint32_t job_tag);
  /// Safe to destroy mid-iteration (the crash-restart path does): pending
  /// continuations and the watchdog are disarmed; in-flight flows drain in
  /// the session without touching this object.
  ~TenantTrainingJob();
  TenantTrainingJob(const TenantTrainingJob&) = delete;
  TenantTrainingJob& operator=(const TenantTrainingJob&) = delete;

  /// Run `iterations` more iterations asynchronously; `on_done` fires when
  /// they all complete or the job crashes. Must not be called while running.
  void run(int iterations, DoneFn on_done);

  [[nodiscard]] bool running() const { return running_; }
  /// Iterations completed across all run() calls (restores pass a reduced
  /// target instead of rolling this back).
  [[nodiscard]] int completed_iterations() const { return completed_; }
  [[nodiscard]] const workload::PlacementPlan& plan() const { return plan_; }

  /// Forward fabric changes to in-flight traffic (port failover).
  void on_fabric_change();

 private:
  void begin_iteration();
  void finish_iteration();
  void crash();

  const topo::Cluster* cluster_;
  sim::Simulator* sim_;
  flowsim::FlowSession* session_;
  workload::PlacementPlan plan_;
  workload::ModelPreset model_;
  TenantOptions options_;
  std::uint32_t job_tag_;
  std::vector<std::unique_ptr<ccl::Communicator>> tp_comms_;
  std::vector<std::unique_ptr<ccl::Communicator>> dp_comms_;
  std::unique_ptr<ccl::Communicator> pp_comm_;  ///< Whole-job, for send/recv.

  bool running_ = false;
  int completed_ = 0;
  int remaining_ = 0;
  DoneFn on_done_;
  TimePoint iter_start_ = TimePoint::origin();
  sim::EventId watchdog_ = sim::kInvalidEvent;
  /// Bumped on crash so arrivals from the aborted iteration are stale.
  std::uint64_t epoch_ = 0;
  /// Disarms every pending continuation when the job object dies.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace hpn::cluster
