// Deterministic job-arrival traces for the multi-tenant cluster mode.
//
// Production HPN runs a mixed fleet, not one job: §2.4/Fig 6 gives the
// job-size CDF (96.3% of training jobs under 1K GPUs), §8 co-locates
// inference services on the same rented clusters. A trace is a seeded
// synthetic sample of that fleet — Poisson arrivals, Fig-6-shaped sizes
// (via workload::JobSizeModel), a training/inference mix — serialized as
// plain data so every consumer (scheduler, bench, fuzzer) replays the
// identical fleet for a given seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace hpn::cluster {

enum class JobKind : std::uint8_t { kTraining, kInference };

std::string_view to_string(JobKind kind);

/// One admitted job. Sizes are whole hosts (the paper's jobs always use all
/// 8 GPUs of a host); `iterations` applies to training, `service_time` to
/// inference.
struct JobSpec {
  int id = 0;
  JobKind kind = JobKind::kTraining;
  TimePoint arrival = TimePoint::origin();
  int hosts = 1;
  int iterations = 1;
  Duration service_time = Duration::zero();
};

struct TraceConfig {
  std::uint64_t seed = 2024;
  int jobs = 16;
  /// Mean Poisson interarrival gap.
  Duration mean_interarrival = Duration::seconds(2.0);
  /// Fraction of arrivals that are inference services (§8 mixed fleet).
  double inference_fraction = 0.25;
  int min_iterations = 2;
  int max_iterations = 5;
  Duration min_service = Duration::seconds(2.0);
  Duration max_service = Duration::seconds(6.0);
  /// Inference services occupy a few hosts, not a Fig-6 draw.
  int max_inference_hosts = 2;
  /// Extra cap on training-job hosts (0 = cluster size only). Production
  /// jobs are small relative to the cluster (96.3% under 1K GPUs, Fig 6);
  /// capping keeps several tenants co-resident instead of one giant job
  /// serializing the queue.
  int max_job_hosts = 0;
};

/// Sample `config.jobs` jobs. Training sizes come from the Fig-6 CDF,
/// clamped to `max_hosts` (the schedulable host count) so every job can
/// eventually be placed and the queue always drains.
std::vector<JobSpec> generate_trace(const TraceConfig& config, int max_hosts,
                                    int gpus_per_host);

}  // namespace hpn::cluster
