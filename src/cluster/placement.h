// Pluggable host-placement policies for the cluster scheduler.
//
// Placement is where topology meets the fleet: HPN's 1K-GPU segments exist
// so that most jobs fit inside one segment (§3/Fig 6), and rail-only-style
// analyses show locality decisions dominate large-scale cost. Three
// policies bracket the space:
//   * random       — uniform hosts from the global free pool; the baseline
//                    that scatters DP rings across segments and Pods.
//   * locality     — the §3 segment-affine policy (ported from
//                    workload::ClusterScheduler): emptiest single segment
//                    that fits, else spill fullest-first.
//   * frag-min     — tightest-fitting segment (min leftover), preserving
//                    large holes for future big jobs at the price of less
//                    headroom per placed job.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "topo/cluster.h"

namespace hpn::cluster {

enum class Policy : std::uint8_t { kRandom, kLocalityAware, kFragMin };

std::string_view to_string(Policy policy);
/// Parses "random" | "locality" | "frag-min"; nullopt on anything else.
std::optional<Policy> policy_from_string(std::string_view name);
/// Comma-separated policy names for --help text.
std::string policy_names();

struct Allocation {
  /// Cluster host indexes in *ring order* (ranks are assigned in this
  /// order). Segment-affine policies emit ascending segment-contiguous
  /// blocks; kRandom keeps its scattered draw order — that scatter is the
  /// interference cost random placement pays.
  std::vector<int> hosts;
  int segments_spanned = 0;
};

/// Allocates whole hosts on a built cluster. Backup hosts (hot spares,
/// §5.1) are never schedulable. Deterministic: the same call sequence
/// produces the same allocations, including for kRandom (draws come from a
/// per-call stream salted with `job_id`, independent of wall history).
class PlacementEngine {
 public:
  PlacementEngine(const topo::Cluster& cluster, Policy policy, std::uint64_t seed);

  /// Allocate `hosts_needed` hosts for `job_id`; nullopt when the free pool
  /// is too small. Released allocations must pass back the exact host list.
  std::optional<Allocation> allocate(int job_id, int hosts_needed);
  void release(const std::vector<int>& hosts);

  [[nodiscard]] Policy policy() const { return policy_; }
  [[nodiscard]] int free_hosts() const;
  [[nodiscard]] int schedulable_hosts() const { return schedulable_; }
  /// Largest single-segment free block — the biggest job placeable without
  /// crossing a segment boundary right now.
  [[nodiscard]] int largest_free_block() const;
  /// External fragmentation in [0, 1]: 1 - largest_free_block/free_hosts
  /// (0 when the pool is empty or one segment holds all free hosts).
  [[nodiscard]] double fragmentation() const;

 private:
  struct Segment {
    int pod = 0;
    int segment = 0;
    std::vector<int> free;  ///< Free host indexes, ascending.
  };

  std::optional<Allocation> allocate_random(int job_id, int hosts_needed);
  std::optional<Allocation> allocate_segment_affine(int hosts_needed, bool tightest);
  /// Pass 2 shared by the segment-affine policies: spill fullest-first.
  std::optional<Allocation> spill(int hosts_needed);

  const topo::Cluster* cluster_;
  Policy policy_;
  std::uint64_t seed_;
  std::vector<Segment> segments_;
  int schedulable_ = 0;
};

}  // namespace hpn::cluster
