#include "cluster/tenant.h"

#include <utility>

#include "common/check.h"

namespace hpn::cluster {

TenantTrainingJob::TenantTrainingJob(const topo::Cluster& cluster,
                                     sim::Simulator& simulator,
                                     flowsim::FlowSession& session,
                                     ccl::ConnectionManager& connections,
                                     workload::PlacementPlan plan,
                                     workload::ModelPreset model, TenantOptions options,
                                     std::uint32_t job_tag)
    : cluster_{&cluster},
      sim_{&simulator},
      session_{&session},
      plan_{std::move(plan)},
      model_{model},
      options_{options},
      job_tag_{job_tag} {
  HPN_CHECK(options_.dp_overlap >= 0.0 && options_.dp_overlap <= 1.0);
  for (const auto& tp_group : plan_.tp_groups) {
    tp_comms_.push_back(std::make_unique<ccl::Communicator>(
        cluster, simulator, session, connections, tp_group, options_.ccl));
  }
  for (const auto& dp_group : plan_.dp_groups) {
    dp_comms_.push_back(std::make_unique<ccl::Communicator>(
        cluster, simulator, session, connections, dp_group, options_.ccl));
  }
  std::vector<int> all_ranks;
  for (const int h : plan_.hosts) {
    for (int r = 0; r < cluster.gpus_per_host; ++r) {
      all_ranks.push_back(h * cluster.gpus_per_host + r);
    }
  }
  pp_comm_ = std::make_unique<ccl::Communicator>(cluster, simulator, session, connections,
                                                 all_ranks, options_.ccl);
}

TenantTrainingJob::~TenantTrainingJob() {
  *alive_ = false;
  if (watchdog_ != sim::kInvalidEvent) sim_->cancel(watchdog_);
}

void TenantTrainingJob::run(int iterations, DoneFn on_done) {
  HPN_CHECK_MSG(!running_, "job already running");
  HPN_CHECK(iterations > 0);
  running_ = true;
  remaining_ = iterations;
  on_done_ = std::move(on_done);
  begin_iteration();
}

void TenantTrainingJob::begin_iteration() {
  iter_start_ = sim_->now();
  const std::uint64_t epoch = epoch_;
  sim_->trace(metrics::TraceEventKind::kIterationBegin,
              static_cast<std::uint32_t>(completed_ + 1), job_tag_);

  // The watchdog *is* the crash detector: the blocking loop's
  // `now() > deadline` check has no pump to live in here.
  watchdog_ = sim_->schedule_at(
      iter_start_ + model_.compute_per_iteration + options_.comm_timeout,
      [this, alive = alive_] {
        if (!*alive) return;
        watchdog_ = sim::kInvalidEvent;
        crash();
      });

  auto pending = std::make_shared<int>(0);
  // Arrivals from an iteration the watchdog already aborted are stale; the
  // epoch check drops them (their `pending` is no longer the live one).
  auto arrive = [this, alive = alive_, pending, epoch] {
    if (!*alive || epoch != epoch_) return;
    if (--*pending == 0) finish_iteration();
  };

  // Phase 1 — compute (forward + backward) with TP AllReduce interleaved.
  ++*pending;
  sim_->schedule_after(model_.compute_per_iteration, arrive);
  for (auto& comm : tp_comms_) {
    ++*pending;
    comm->all_reduce(model_.traffic.tp_all_reduce * 0.5, arrive);
  }
  // Phase 2 — the backward-phase gradient burst: DP Multi-AllReduce per
  // stage plus PP boundary traffic, exposed after compute except for the
  // overlapped share.
  ++*pending;
  sim_->schedule_after(model_.compute_per_iteration,
                       [this, alive = alive_, pending, epoch, arrive] {
    if (!*alive || epoch != epoch_) return;
    const DataSize dp_exposed = model_.traffic.dp_all_reduce *
                                static_cast<double>(model_.dp_rounds_per_iteration) *
                                (1.0 - options_.dp_overlap);
    for (auto& comm : dp_comms_) {
      ++*pending;
      comm->multi_all_reduce(dp_exposed, arrive);
    }
    for (const auto& [src, dst] : plan_.pp_pairs) {
      ++*pending;
      pp_comm_->point_to_point(src, dst, model_.traffic.pp_send, arrive);
      ++*pending;
      pp_comm_->point_to_point(dst, src, model_.traffic.pp_send, arrive);
    }
    if (model_.traffic.moe_all_to_all > DataSize::zero()) {
      ++*pending;
      pp_comm_->all_to_all(model_.traffic.moe_all_to_all, /*allow_host_relay=*/true,
                           arrive);
    }
    // Release this chain's own slot LAST: doing it before the collectives
    // are enqueued lets `pending` hit zero mid-lambda and finish the
    // iteration without them.
    arrive();
  });
}

void TenantTrainingJob::finish_iteration() {
  if (watchdog_ != sim::kInvalidEvent) {
    sim_->cancel(watchdog_);
    watchdog_ = sim::kInvalidEvent;
  }
  ++completed_;
  --remaining_;
  sim_->trace(metrics::TraceEventKind::kIterationEnd,
              static_cast<std::uint32_t>(completed_), job_tag_,
              (sim_->now() - iter_start_).as_seconds());
  if (remaining_ > 0) {
    begin_iteration();
    return;
  }
  running_ = false;
  DoneFn done = std::move(on_done_);
  on_done_ = nullptr;
  if (done) done(/*crashed=*/false);
}

void TenantTrainingJob::crash() {
  // NCCL abort: stale the in-flight iteration, then hand control to the
  // scheduler. The callback may destroy this object — it runs last, and
  // nothing touches members afterwards.
  ++epoch_;
  running_ = false;
  remaining_ = 0;
  DoneFn done = std::move(on_done_);
  on_done_ = nullptr;
  if (done) done(/*crashed=*/true);
}

void TenantTrainingJob::on_fabric_change() {
  for (auto& c : tp_comms_) c->on_fabric_change();
  for (auto& c : dp_comms_) c->on_fabric_change();
  pp_comm_->on_fabric_change();
}

}  // namespace hpn::cluster
