#include "cluster/placement.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/rng.h"

namespace hpn::cluster {

std::string_view to_string(Policy policy) {
  switch (policy) {
    case Policy::kRandom: return "random";
    case Policy::kLocalityAware: return "locality";
    case Policy::kFragMin: return "frag-min";
  }
  return "unknown";
}

std::optional<Policy> policy_from_string(std::string_view name) {
  if (name == "random") return Policy::kRandom;
  if (name == "locality") return Policy::kLocalityAware;
  if (name == "frag-min") return Policy::kFragMin;
  return std::nullopt;
}

std::string policy_names() { return "random, locality, frag-min"; }

PlacementEngine::PlacementEngine(const topo::Cluster& cluster, Policy policy,
                                 std::uint64_t seed)
    : cluster_{&cluster}, policy_{policy}, seed_{seed} {
  std::map<std::pair<int, int>, Segment> by_key;
  for (const topo::Host& h : cluster.hosts) {
    if (h.backup) continue;  // hot spares are not schedulable (§5.1)
    Segment& s = by_key[{h.pod, h.segment}];
    s.pod = h.pod;
    s.segment = h.segment;
    s.free.push_back(h.index);
  }
  for (auto& [key, seg] : by_key) {
    schedulable_ += static_cast<int>(seg.free.size());
    segments_.push_back(std::move(seg));
  }
}

std::optional<Allocation> PlacementEngine::allocate(int job_id, int hosts_needed) {
  HPN_CHECK(hosts_needed > 0);
  if (hosts_needed > free_hosts()) return std::nullopt;
  switch (policy_) {
    case Policy::kRandom:
      return allocate_random(job_id, hosts_needed);
    case Policy::kLocalityAware:
      return allocate_segment_affine(hosts_needed, /*tightest=*/false);
    case Policy::kFragMin:
      return allocate_segment_affine(hosts_needed, /*tightest=*/true);
  }
  return std::nullopt;
}

std::optional<Allocation> PlacementEngine::allocate_random(int job_id, int hosts_needed) {
  // One flat free pool; the draw stream is salted with the job id so the
  // picks for job k do not depend on how many draws earlier jobs consumed.
  std::vector<int> pool;
  for (const Segment& s : segments_) pool.insert(pool.end(), s.free.begin(), s.free.end());
  std::sort(pool.begin(), pool.end());
  Rng rng{detail::splitmix64_mix(seed_ ^ (static_cast<std::uint64_t>(job_id) << 20))};

  // Hosts stay in draw order: ranks are assigned in allocation order, so a
  // scattered draw means ring neighbors land in different segments — the
  // interference cost random placement actually pays (§3).
  Allocation out;
  for (int i = 0; i < hosts_needed; ++i) {
    const std::size_t pick = rng.uniform_index(pool.size());
    out.hosts.push_back(pool[pick]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  std::vector<std::pair<int, int>> segs;
  for (const int h : out.hosts) {
    const topo::Host& host = cluster_->hosts.at(static_cast<std::size_t>(h));
    segs.emplace_back(host.pod, host.segment);
    for (Segment& s : segments_) {
      if (s.pod == host.pod && s.segment == host.segment) {
        s.free.erase(std::find(s.free.begin(), s.free.end(), h));
        break;
      }
    }
  }
  std::sort(segs.begin(), segs.end());
  segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
  out.segments_spanned = static_cast<int>(segs.size());
  return out;
}

std::optional<Allocation> PlacementEngine::allocate_segment_affine(int hosts_needed,
                                                                   bool tightest) {
  // Pass 1: a single segment that fits the whole job. Locality-aware takes
  // the *emptiest* such segment (keeps every segment's headroom balanced);
  // frag-min takes the *tightest* (smallest leftover preserves large holes).
  Segment* best = nullptr;
  for (Segment& s : segments_) {
    if (static_cast<int>(s.free.size()) < hosts_needed) continue;
    if (best == nullptr) {
      best = &s;
    } else if (tightest ? s.free.size() < best->free.size()
                        : s.free.size() > best->free.size()) {
      best = &s;
    }
  }
  if (best != nullptr) {
    Allocation out;
    out.hosts.assign(best->free.begin(), best->free.begin() + hosts_needed);
    best->free.erase(best->free.begin(), best->free.begin() + hosts_needed);
    out.segments_spanned = 1;
    return out;
  }
  return spill(hosts_needed);
}

std::optional<Allocation> PlacementEngine::spill(int hosts_needed) {
  // Fullest-first minimizes the number of segments the job spans.
  std::vector<Segment*> order;
  for (Segment& s : segments_) {
    if (!s.free.empty()) order.push_back(&s);
  }
  std::stable_sort(order.begin(), order.end(), [](const Segment* a, const Segment* b) {
    return a->free.size() > b->free.size();
  });
  int remaining = hosts_needed;
  std::vector<std::pair<Segment*, int>> takes;
  for (Segment* s : order) {
    if (remaining == 0) break;
    const int take = std::min<int>(remaining, static_cast<int>(s->free.size()));
    takes.emplace_back(s, take);
    remaining -= take;
  }
  if (remaining > 0) return std::nullopt;

  Allocation out;
  for (auto& [s, take] : takes) {
    out.hosts.insert(out.hosts.end(), s->free.begin(), s->free.begin() + take);
    s->free.erase(s->free.begin(), s->free.begin() + take);
  }
  std::sort(out.hosts.begin(), out.hosts.end());
  out.segments_spanned = static_cast<int>(takes.size());
  return out;
}

void PlacementEngine::release(const std::vector<int>& hosts) {
  for (const int h : hosts) {
    const topo::Host& host = cluster_->hosts.at(static_cast<std::size_t>(h));
    for (Segment& s : segments_) {
      if (s.pod == host.pod && s.segment == host.segment) {
        const auto at = std::lower_bound(s.free.begin(), s.free.end(), h);
        HPN_CHECK_MSG(at == s.free.end() || *at != h, "double release");
        s.free.insert(at, h);
        break;
      }
    }
  }
}

int PlacementEngine::free_hosts() const {
  int total = 0;
  for (const Segment& s : segments_) total += static_cast<int>(s.free.size());
  return total;
}

int PlacementEngine::largest_free_block() const {
  int best = 0;
  for (const Segment& s : segments_) best = std::max(best, static_cast<int>(s.free.size()));
  return best;
}

double PlacementEngine::fragmentation() const {
  const int total = free_hosts();
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_block()) / static_cast<double>(total);
}

}  // namespace hpn::cluster
