// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock and an event queue. Events scheduled for
// the same instant fire in scheduling order (FIFO by sequence number), so a
// run is fully deterministic for a given seed and schedule.
//
// The queue is built for the packet engine's per-packet-per-hop event rate:
// events live in a slab-allocated pool of reusable slots (no shared_ptr, no
// per-event heap allocation when the callback captures fit inline), and
// EventId handles carry a slot generation so cancel() of a recycled slot is
// an O(1) tombstone that can never hit the wrong event. Cancelled slots
// stay referenced by the queue until lazily popped; when tombstones outgrow
// the live events the queue is compacted in place, so cancel-heavy
// workloads (timer re-arm churn) keep the pool bounded.
//
// The ready queue is a calendar queue (htsim/ns-3 lineage): near-future
// events append O(1) into 512 ns wheel buckets, only the *current* bucket
// is kept heap-ordered (a tiny, cache-hot 4-ary heap), and events beyond
// the ~1 ms wheel horizon sit in an overflow 4-ary heap that is drained
// into the wheel as the cursor advances. Pop order is exactly (time, seq)
// — identical to one global min-heap — so the determinism contract (same
// seed + schedule => same event order) is a property of the structure, not
// of tuning.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "metrics/trace.h"
#include "sim/audit.h"
#include "sim/inline_callback.h"

namespace hpn::sim {

/// Opaque event handle: low 32 bits slot index, high 32 bits the slot's
/// generation at scheduling time (generations start at 1, so 0 is never a
/// valid handle). A handle goes stale the moment its event fires or is
/// cancelled; stale handles fail cancel() even after the slot is recycled.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must not be in the past).
  EventId schedule_at(TimePoint t, Callback cb);

  /// Schedule `cb` after `d` of simulated time.
  EventId schedule_after(Duration d, Callback cb) {
    return schedule_at(now_ + d, std::move(cb));
  }

  /// Schedule `cb` to run at the current instant, after all callbacks
  /// already queued for this instant.
  EventId schedule_now(Callback cb) { return schedule_at(now_, std::move(cb)); }

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// Run one event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run events with time <= `t`, then set the clock to `t`.
  void run_until(TimePoint t);

  /// Run events with time strictly < `t`, leaving the clock at the last
  /// fired event (never advanced to `t`). This is the conservative-window
  /// primitive of the PDES layer (sim/pdes.h): a shard may safely execute
  /// everything before `window_start + lookahead` without hearing from its
  /// neighbors, but must not move its clock into the window boundary where
  /// cross-shard messages can still land.
  void run_before(TimePoint t);

  /// Run for `d` more simulated time.
  void run_for(Duration d) { run_until(now_ + d); }

  [[nodiscard]] std::size_t pending_events() const { return live_; }
  [[nodiscard]] std::uint64_t processed_events() const { return processed_; }

  /// Clock/ordering state captured at quiescence (pending_events() == 0).
  /// Restoring rewinds the clock AND the scheduling sequence counter, so a
  /// re-run from the same snapshot assigns events the same (time, seq) keys
  /// and fires them in byte-identical order — the contract the serve warm
  /// path's cold-equals-warm answers rest on.
  struct Snapshot {
    TimePoint now = TimePoint::origin();
    std::uint64_t next_seq = 1;
    std::uint64_t processed = 0;
  };

  /// Capture the current state. Requires pending_events() == 0 (drain with
  /// run() or cancel everything first).
  [[nodiscard]] Snapshot snapshot() const;

  /// Rewind to a prior snapshot (possibly backwards in time). Requires
  /// pending_events() == 0; tombstones of cancelled events are reclaimed
  /// here. The slab pool and queue capacities are kept — only the clock,
  /// sequence counter, and processed count rewind.
  void restore(const Snapshot& snap);

  /// Time of the next pending event, or TimePoint::far_future() if none.
  [[nodiscard]] TimePoint next_event_time() const;

  /// Slots ever allocated in the event pool (capacity, not live events).
  /// Bounded by peak live events + compaction slack, not by total events
  /// scheduled — the pool-bound tests pin this.
  [[nodiscard]] std::size_t event_pool_slots() const { return pool_.size(); }

  /// Cancelled events still occupying heap entries (lazily reclaimed).
  [[nodiscard]] std::size_t pending_tombstones() const { return tombstones_; }

  /// Simulation-wide trace sink. Disabled by default; every layer that holds
  /// a Simulator& records through this (see metrics/trace.h).
  [[nodiscard]] metrics::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const metrics::Tracer& tracer() const { return tracer_; }

  /// Shorthand for `tracer().record(now(), ...)` — the common probe call.
  void trace(metrics::TraceEventKind kind, std::uint32_t a = metrics::kTraceNoId,
             std::uint32_t b = metrics::kTraceNoId, double value = 0.0,
             const char* label = nullptr) {
    tracer_.record(now_, kind, a, b, value, label);
  }

  /// Simulation-wide invariant auditor. Disabled by default (every probe is
  /// then a single branch); engines that hold a Simulator& check
  /// conservation/sanity properties through this (see sim/audit.h).
  [[nodiscard]] InvariantAuditor& auditor() { return auditor_; }
  [[nodiscard]] const InvariantAuditor& auditor() const { return auditor_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Calendar-queue geometry: 2048 buckets of 512 ns each, so the wheel
  /// spans ~1.05 ms — wide enough that the packet engine's event horizon
  /// (serialization gaps through retransmit timers) stays on the wheel.
  static constexpr int kBucketShift = 9;  ///< 512 ns per bucket
  static constexpr std::size_t kNumBuckets = std::size_t{1} << 11;
  static constexpr std::size_t kBucketMask = kNumBuckets - 1;

  /// Exactly one cache line: 48-byte callback + metadata. Pops touch slots
  /// in heap order (effectively random across a pool that can dwarf L2), so
  /// one line per slot halves the miss bill of the old 80-byte layout.
  struct alignas(64) Slot {
    InlineCallback fn;
    std::uint32_t gen = 1;
    bool armed = false;  ///< Scheduled and neither fired nor cancelled.
    std::uint32_t next_free = kNoSlot;
  };
  static_assert(sizeof(Slot) == 64, "slot must stay a single cache line");

  /// Heap entries carry their (time, seq) key inline so sift compares touch
  /// only the contiguous heap array, never the pool — the pool is consulted
  /// once per pop (armed check + callback), not once per comparison.
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq = 0;  ///< Keeps ordering stable even for tombstones.
    std::uint32_t slot = kNoSlot;
  };

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;  // min-heap on time
    return a.seq < b.seq;                  // then FIFO
  }

  static std::int64_t bucket_no(TimePoint t) {
    return t.as_nanos() >> kBucketShift;
  }

  std::uint32_t alloc_slot();
  void recycle_slot(std::uint32_t slot);

  static void sift_up(std::vector<HeapEntry>& h, std::size_t i);
  static void sift_down(std::vector<HeapEntry>& h, std::size_t i);
  static HeapEntry heap_pop(std::vector<HeapEntry>& h);

  void occ_set(std::size_t idx) { occ_[idx >> 6] |= std::uint64_t{1} << (idx & 63); }
  void occ_clear(std::size_t idx) { occ_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63)); }

  /// Route an entry to near_ / its wheel bucket / far_ by bucket number.
  void insert_entry(const HeapEntry& e);
  /// With near_ empty, advance the cursor to the earliest occupied bucket
  /// (draining overflow entries that slid into the window). False = drained.
  bool refill();
  /// Earliest occupied absolute bucket after cur_bucket_, or -1 if none.
  [[nodiscard]] std::int64_t scan_buckets() const;
  /// Earliest *armed* entry without removing it (reclaims tombstones off the
  /// head on the way), or nullptr when the queue is empty.
  const HeapEntry* peek();
  /// Pop the earliest *armed* entry, reclaiming tombstones on the way.
  /// Returns an entry with slot == kNoSlot when the queue is empty.
  HeapEntry heap_pop_live();
  /// Rebuild the queue without tombstones once they outnumber live events.
  void maybe_compact();

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::vector<Slot> pool_;
  std::uint32_t free_head_ = kNoSlot;

  /// Calendar queue: near_ is a 4-ary min-heap over every pending entry with
  /// bucket_no(at) <= cur_bucket_ (entries in distinct buckets can never
  /// interleave in time, so near_ always holds the global minimum); wheel
  /// buckets are unsorted O(1)-append vectors for entries within the
  /// horizon; far_ is a 4-ary min-heap for entries beyond it. occ_ is an
  /// occupancy bitmap so the cursor skips empty buckets a word at a time.
  std::vector<HeapEntry> near_;
  std::vector<std::vector<HeapEntry>> buckets_ =
      std::vector<std::vector<HeapEntry>>(kNumBuckets);
  std::array<std::uint64_t, kNumBuckets / 64> occ_{};
  std::vector<HeapEntry> far_;
  std::int64_t cur_bucket_ = 0;
  metrics::Tracer tracer_;
  InvariantAuditor auditor_;
};

/// Repeats a callback on a fixed period until stopped or the callback
/// returns false. RAII: destroying the timer stops it.
class PeriodicTimer {
 public:
  /// `tick` returns true to keep running. First tick fires after `period`
  /// unless `immediate` is set.
  PeriodicTimer(Simulator& simulator, Duration period, std::function<bool()> tick,
                bool immediate = false);
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return pending_ != kInvalidEvent; }

 private:
  void arm(Duration delay);

  Simulator& sim_;
  Duration period_;
  std::function<bool()> tick_;
  EventId pending_ = kInvalidEvent;
};

}  // namespace hpn::sim
