// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock and an event queue. Events scheduled for
// the same instant fire in scheduling order (FIFO by sequence number), so a
// run is fully deterministic for a given seed and schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "metrics/trace.h"

namespace hpn::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must not be in the past).
  EventId schedule_at(TimePoint t, Callback cb);

  /// Schedule `cb` after `d` of simulated time.
  EventId schedule_after(Duration d, Callback cb) {
    return schedule_at(now_ + d, std::move(cb));
  }

  /// Schedule `cb` to run at the current instant, after all callbacks
  /// already queued for this instant.
  EventId schedule_now(Callback cb) { return schedule_at(now_, std::move(cb)); }

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// Run one event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run events with time <= `t`, then set the clock to `t`.
  void run_until(TimePoint t);

  /// Run for `d` more simulated time.
  void run_for(Duration d) { run_until(now_ + d); }

  [[nodiscard]] std::size_t pending_events() const { return live_.size(); }
  [[nodiscard]] std::uint64_t processed_events() const { return processed_; }

  /// Time of the next pending event, or TimePoint::far_future() if none.
  [[nodiscard]] TimePoint next_event_time() const;

  /// Simulation-wide trace sink. Disabled by default; every layer that holds
  /// a Simulator& records through this (see metrics/trace.h).
  [[nodiscard]] metrics::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const metrics::Tracer& tracer() const { return tracer_; }

  /// Shorthand for `tracer().record(now(), ...)` — the common probe call.
  void trace(metrics::TraceEventKind kind, std::uint32_t a = metrics::kTraceNoId,
             std::uint32_t b = metrics::kTraceNoId, double value = 0.0,
             const char* label = nullptr) {
    tracer_.record(now_, kind, a, b, value, label);
  }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq = 0;
    Callback fn;
    bool cancelled = false;
  };

  struct QueueOrder {
    bool operator()(const std::shared_ptr<Event>& a, const std::shared_ptr<Event>& b) const {
      if (a->at != b->at) return a->at > b->at;  // min-heap on time
      return a->seq > b->seq;                    // then FIFO
    }
  };

  /// Pops tombstoned events off the queue head.
  void drop_cancelled();

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<std::shared_ptr<Event>, std::vector<std::shared_ptr<Event>>, QueueOrder>
      queue_;
  std::unordered_map<EventId, std::shared_ptr<Event>> live_;
  metrics::Tracer tracer_;
};

/// Repeats a callback on a fixed period until stopped or the callback
/// returns false. RAII: destroying the timer stops it.
class PeriodicTimer {
 public:
  /// `tick` returns true to keep running. First tick fires after `period`
  /// unless `immediate` is set.
  PeriodicTimer(Simulator& simulator, Duration period, std::function<bool()> tick,
                bool immediate = false);
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return pending_ != kInvalidEvent; }

 private:
  void arm(Duration delay);

  Simulator& sim_;
  Duration period_;
  std::function<bool()> tick_;
  EventId pending_ = kInvalidEvent;
};

}  // namespace hpn::sim
