// Small-buffer-optimized, move-only callback for the event core.
//
// Every simulated packet at every hop schedules a callback, so the storage
// for those callbacks is the hottest allocation site in the repo. The
// common captures — `this` plus a FlowId/LinkId/Packet, at most 40 bytes —
// fit inline in the event-pool slot; anything larger (or not nothrow-
// movable) falls back to a single heap cell. Unlike std::function this
// never copies the callable, and the inline path never touches the heap.
// The budget is deliberately 40, not 48: with the ops pointer that makes
// the callback 48 bytes, which lets the event pool pack a whole slot
// (callback + generation + free-list link) into one 64-byte cache line —
// pops at packet-engine scale are then a single line miss.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hpn::sim {

class InlineCallback {
 public:
  /// Inline capture budget. 40 bytes covers the engines' largest hot-path
  /// capture (packet propagation: this + LinkId + a 24-byte Packet).
  /// Control-plane lambdas (BGP messages, fault events, training-step
  /// closures) exceed it and take the heap path — they fire per protocol
  /// round or per iteration, not per packet.
  static constexpr std::size_t kInlineBytes = 40;
  /// Callables needing stricter alignment than a pointer/double spill to
  /// the heap; keeping the buffer 8-aligned is what makes the 48-byte
  /// footprint (and the one-line pool slot) possible.
  static constexpr std::size_t kStorageAlign = 8;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor): callback sink
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = heap_ops<Fn>();
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { steal(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable spilled to the heap (introspection for the
  /// no-allocation assertions in tests/bench).
  [[nodiscard]] bool heap_allocated() const { return ops_ != nullptr && ops_->heap; }

  /// Destroy the callable (releases captures promptly on cancel).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into dst's storage and destroy src's callable.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kStorageAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
        /*heap=*/false,
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* dst, void* src) noexcept {  // relocate just moves the pointer
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        },
        [](void* p) noexcept { delete *static_cast<Fn**>(p); },
        /*heap=*/true,
    };
    return &ops;
  }

  void steal(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(kStorageAlign) unsigned char storage_[kInlineBytes];
};

static_assert(sizeof(InlineCallback) == 48,
              "callback must leave room for slot metadata in one cache line");

}  // namespace hpn::sim
