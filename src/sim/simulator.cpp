#include "sim/simulator.h"

#include <utility>

namespace hpn::sim {

EventId Simulator::schedule_at(TimePoint t, Callback cb) {
  HPN_CHECK_MSG(t >= now_, "cannot schedule into the past: " << to_string(t)
                               << " < now " << to_string(now_));
  HPN_CHECK(cb != nullptr);
  auto ev = std::make_shared<Event>();
  ev->at = t;
  ev->seq = next_seq_++;
  ev->fn = std::move(cb);
  const EventId id = ev->seq;
  queue_.push(ev);
  live_.emplace(id, std::move(ev));
  return id;
}

bool Simulator::cancel(EventId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  it->second->cancelled = true;
  it->second->fn = nullptr;  // release captures promptly
  live_.erase(it);
  return true;
}

void Simulator::drop_cancelled() {
  while (!queue_.empty() && queue_.top()->cancelled) queue_.pop();
}

bool Simulator::step() {
  drop_cancelled();
  if (queue_.empty()) return false;
  auto ev = queue_.top();
  queue_.pop();
  live_.erase(ev->seq);
  HPN_CHECK(ev->at >= now_);
  now_ = ev->at;
  ++processed_;
  ev->fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(TimePoint t) {
  HPN_CHECK(t >= now_);
  for (;;) {
    drop_cancelled();
    if (queue_.empty() || queue_.top()->at > t) break;
    step();
  }
  now_ = t;
}

TimePoint Simulator::next_event_time() const {
  // The queue head can be a tombstone; scan via a copy-free walk is not
  // possible on priority_queue, so consult the live map when the head is
  // cancelled. The head is almost always live in practice.
  auto& self = const_cast<Simulator&>(*this);
  self.drop_cancelled();
  if (queue_.empty()) return TimePoint::far_future();
  return queue_.top()->at;
}

PeriodicTimer::PeriodicTimer(Simulator& simulator, Duration period,
                             std::function<bool()> tick, bool immediate)
    : sim_{simulator}, period_{period}, tick_{std::move(tick)} {
  HPN_CHECK(period_ > Duration::zero());
  HPN_CHECK(tick_ != nullptr);
  arm(immediate ? Duration::zero() : period_);
}

void PeriodicTimer::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = kInvalidEvent;
    if (tick_()) arm(period_);
  });
}

void PeriodicTimer::stop() {
  if (pending_ != kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
}

}  // namespace hpn::sim
