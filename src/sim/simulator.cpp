#include "sim/simulator.h"

#include <bit>
#include <utility>

namespace hpn::sim {

namespace {

/// Compact once tombstones outnumber live entries and are worth the
/// rebuild; small queues drain lazily.
constexpr std::size_t kCompactMinQueue = 64;

}  // namespace

std::uint32_t Simulator::alloc_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = pool_[slot].next_free;
    pool_[slot].next_free = kNoSlot;
    return slot;
  }
  HPN_CHECK_MSG(pool_.size() < kNoSlot, "event pool exhausted (2^32-1 slots)");
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Simulator::recycle_slot(std::uint32_t slot) {
  Slot& s = pool_[slot];
  s.fn.reset();
  s.armed = false;
  // Bumping the generation here (not just on cancel) also kills handles to
  // fired events; wrap skips 0 so a handle is never kInvalidEvent.
  if (++s.gen == 0) s.gen = 1;
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId Simulator::schedule_at(TimePoint t, Callback cb) {
  HPN_CHECK_MSG(t >= now_, "cannot schedule into the past: " << to_string(t)
                               << " < now " << to_string(now_));
  HPN_CHECK(static_cast<bool>(cb));
  const std::uint32_t slot = alloc_slot();
  Slot& s = pool_[slot];
  s.armed = true;
  s.fn = std::move(cb);
  ++live_;
  insert_entry(HeapEntry{t, next_seq_++, slot});
  return make_id(s.gen, slot);
}

bool Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (gen == 0 || slot >= pool_.size()) return false;
  Slot& s = pool_[slot];
  if (s.gen != gen || !s.armed) return false;
  // O(1) tombstone: the queue entry stays put (its key keeps it ordered) and
  // is reclaimed when popped or compacted. The generation bump makes the
  // handle stale immediately, so a second cancel — or a cancel after the
  // slot is recycled — returns false.
  s.armed = false;
  s.fn.reset();  // release captures promptly
  if (++s.gen == 0) s.gen = 1;
  --live_;
  ++tombstones_;
  maybe_compact();
  return true;
}

void Simulator::sift_up(std::vector<HeapEntry>& h, std::size_t i) {
  const HeapEntry entry = h[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(entry, h[parent])) break;
    h[i] = h[parent];
    i = parent;
  }
  h[i] = entry;
}

void Simulator::sift_down(std::vector<HeapEntry>& h, std::size_t i) {
  const HeapEntry entry = h[i];
  const std::size_t n = h.size();
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(h[c], h[best])) best = c;
    }
    if (!before(h[best], entry)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = entry;
}

Simulator::HeapEntry Simulator::heap_pop(std::vector<HeapEntry>& h) {
  const HeapEntry top = h[0];
  const HeapEntry tail = h.back();
  h.pop_back();
  if (!h.empty()) {
    h[0] = tail;
    sift_down(h, 0);
  }
  return top;
}

void Simulator::insert_entry(const HeapEntry& e) {
  const std::int64_t b = bucket_no(e.at);
  if (b <= cur_bucket_) {
    // At or behind the cursor (the cursor can lag now_ after run_until
    // crossed empty buckets): ordering is still exact because everything in
    // near_ precedes everything in later buckets.
    near_.push_back(e);
    sift_up(near_, near_.size() - 1);
  } else if (b < cur_bucket_ + static_cast<std::int64_t>(kNumBuckets)) {
    const std::size_t idx = static_cast<std::size_t>(b) & kBucketMask;
    buckets_[idx].push_back(e);
    occ_set(idx);
  } else {
    far_.push_back(e);
    sift_up(far_, far_.size() - 1);
  }
}

std::int64_t Simulator::scan_buckets() const {
  // All occupied buckets lie strictly inside (cur_bucket_, cur_bucket_ + N),
  // so the first set bit in circular order from the cursor is the earliest.
  const std::size_t cur_idx = static_cast<std::size_t>(cur_bucket_) & kBucketMask;
  const std::size_t start = (cur_idx + 1) & kBucketMask;
  constexpr std::size_t kWords = kNumBuckets / 64;
  std::size_t word = start >> 6;
  std::uint64_t bits = occ_[word] & (~std::uint64_t{0} << (start & 63));
  for (std::size_t n = 0; n <= kWords; ++n) {
    if (bits != 0) {
      const std::size_t idx =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      const std::size_t delta = (idx - cur_idx) & kBucketMask;
      return cur_bucket_ + static_cast<std::int64_t>(delta);
    }
    word = (word + 1) & (kWords - 1);
    bits = occ_[word];
  }
  return -1;
}

bool Simulator::refill() {
  for (;;) {
    // Overflow entries that slid inside the window belong on the wheel (or
    // in near_, when the cursor jumped straight to their bucket).
    while (!far_.empty() && bucket_no(far_[0].at) <
                                cur_bucket_ + static_cast<std::int64_t>(kNumBuckets)) {
      insert_entry(heap_pop(far_));
    }
    if (!near_.empty()) return true;
    const std::int64_t b = scan_buckets();
    if (b >= 0) {
      cur_bucket_ = b;
      const std::size_t idx = static_cast<std::size_t>(b) & kBucketMask;
      std::vector<HeapEntry>& vec = buckets_[idx];
      // Copy (not move) so both vectors keep their capacity — steady state
      // allocates nothing.
      near_.assign(vec.begin(), vec.end());
      vec.clear();
      occ_clear(idx);
      // Floyd build-heap: the last internal node of a 4-ary heap of n
      // entries is (n-2)/4, hence the +2 before the truncating divide.
      for (std::size_t i = (near_.size() + 2) / 4; i-- > 0;) sift_down(near_, i);
      return true;
    }
    if (far_.empty()) return false;
    cur_bucket_ = bucket_no(far_[0].at);  // wheel empty: jump to the overflow min
  }
}

const Simulator::HeapEntry* Simulator::peek() {
  for (;;) {
    if (near_.empty() && !refill()) return nullptr;
    if (pool_[near_[0].slot].armed) return &near_[0];
    recycle_slot(near_[0].slot);
    --tombstones_;
    heap_pop(near_);
  }
}

Simulator::HeapEntry Simulator::heap_pop_live() {
  for (;;) {
    if (near_.empty() && !refill()) return HeapEntry{};
    const HeapEntry top = heap_pop(near_);
    // Pull the *next* event's slot toward the cache while the current
    // callback runs; with hundreds of thousands of live events the pool is
    // far larger than L2 and this pop-to-pop miss dominates otherwise.
    if (!near_.empty()) __builtin_prefetch(&pool_[near_[0].slot]);
    if (pool_[top.slot].armed) return top;
    recycle_slot(top.slot);
    --tombstones_;
  }
}

void Simulator::maybe_compact() {
  const std::size_t total = live_ + tombstones_;
  if (total < kCompactMinQueue || tombstones_ * 2 <= total) return;
  auto sweep = [this](std::vector<HeapEntry>& v) {
    std::size_t kept = 0;
    for (const HeapEntry& e : v) {
      if (pool_[e.slot].armed) {
        v[kept++] = e;
      } else {
        recycle_slot(e.slot);
      }
    }
    v.resize(kept);
    return kept;
  };
  // Floyd rebuild for the heaps; ordering comes from (at, seq) so the
  // compacted queue pops in exactly the same sequence as the lazy one.
  for (std::size_t i = (sweep(near_) + 2) / 4; i-- > 0;) sift_down(near_, i);
  for (std::size_t i = (sweep(far_) + 2) / 4; i-- > 0;) sift_down(far_, i);
  // Walk only occupied buckets via the bitmap.
  for (std::size_t word = 0; word < occ_.size(); ++word) {
    std::uint64_t bits = occ_[word];
    while (bits != 0) {
      const std::size_t idx =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      if (sweep(buckets_[idx]) == 0) occ_clear(idx);
    }
  }
  tombstones_ = 0;
}

bool Simulator::step() {
  const HeapEntry top = heap_pop_live();
  if (top.slot == kNoSlot) return false;
  // The auditor records monotonicity violations (fuzz runs want the full
  // report); the structural HPN_CHECK below still stops a corrupted queue.
  auditor_.check(top.at >= now_, AuditRule::kEventTimeMonotonic, now_, [&] {
    std::ostringstream os;
    os << "event at " << to_string(top.at) << " fired behind clock "
       << to_string(now_) << " (seq " << top.seq << ")";
    return os.str();
  });
  HPN_CHECK(top.at >= now_);
  now_ = top.at;
  ++processed_;
  --live_;
  // Move the callback out and recycle the slot *before* invoking: the
  // callback may schedule (growing/reallocating the pool) or cancel freely.
  InlineCallback fn = std::move(pool_[top.slot].fn);
  recycle_slot(top.slot);
  fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_before(TimePoint t) {
  for (;;) {
    const HeapEntry* head = peek();
    if (head == nullptr || head->at >= t) break;
    step();
  }
}

void Simulator::run_until(TimePoint t) {
  HPN_CHECK(t >= now_);
  for (;;) {
    const HeapEntry* head = peek();
    if (head == nullptr || head->at > t) break;
    step();
  }
  now_ = t;
}

Simulator::Snapshot Simulator::snapshot() const {
  HPN_CHECK_MSG(live_ == 0, "snapshot requires a quiescent simulator ("
                                << live_ << " events pending)");
  return Snapshot{now_, next_seq_, processed_};
}

void Simulator::restore(const Snapshot& snap) {
  HPN_CHECK_MSG(live_ == 0, "restore requires a quiescent simulator ("
                                << live_ << " events pending)");
  // With zero live events peek() reclaims every tombstone still parked in
  // the wheel/overflow structures and leaves the whole queue empty, so the
  // cursor can be rewound without stranding entries behind it.
  const HeapEntry* head = peek();
  HPN_CHECK(head == nullptr);
  HPN_CHECK(tombstones_ == 0);
  now_ = snap.now;
  next_seq_ = snap.next_seq;
  processed_ = snap.processed;
  cur_bucket_ = bucket_no(now_);
}

TimePoint Simulator::next_event_time() const {
  // The queue head can be a tombstone; reclaiming it mutates only
  // bookkeeping (never observable event order), same as the seed engine's
  // lazy pop.
  const HeapEntry* head = const_cast<Simulator&>(*this).peek();
  return head != nullptr ? head->at : TimePoint::far_future();
}

PeriodicTimer::PeriodicTimer(Simulator& simulator, Duration period,
                             std::function<bool()> tick, bool immediate)
    : sim_{simulator}, period_{period}, tick_{std::move(tick)} {
  HPN_CHECK(period_ > Duration::zero());
  HPN_CHECK(tick_ != nullptr);
  arm(immediate ? Duration::zero() : period_);
}

void PeriodicTimer::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = kInvalidEvent;
    if (tick_()) arm(period_);
  });
}

void PeriodicTimer::stop() {
  if (pending_ != kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
}

}  // namespace hpn::sim
