#include "sim/pdes.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"

namespace hpn::sim {

ShardedSimulator::ShardedSimulator(int shards, Duration lookahead)
    : lookahead_{lookahead} {
  HPN_CHECK_MSG(shards >= 1, "shard count must be >= 1, got " << shards);
  HPN_CHECK_MSG(lookahead >= Duration::zero(), "negative lookahead");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) shards_.push_back(std::make_unique<Simulator>());
  channels_.resize(static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards));
}

void ShardedSimulator::post(int from, int to, TimePoint deliver_at, std::uint64_t key,
                            InlineCallback cb) {
  HPN_CHECK(from >= 0 && from < shards() && to >= 0 && to < shards());
  if (from == to) {
    // Shard-local: straight into the owner's queue, no channel round-trip.
    shard(from).schedule_at(deliver_at, std::move(cb));
    return;
  }
  HPN_CHECK_MSG(!lookahead_.is_infinite(),
                "cross-shard post on a partition with no boundary links");
  HPN_CHECK_MSG(deliver_at - shard(from).now() >= lookahead_,
                "conservative contract violated: delivery " << to_string(deliver_at)
                    << " is closer than lookahead " << to_string(lookahead_)
                    << " from sender clock " << to_string(shard(from).now()));
  Channel& ch = channel(from, to);
  ch.pending.push_back(Message{deliver_at, key, static_cast<std::uint32_t>(from),
                               ch.next_seq++, std::move(cb)});
}

std::size_t ShardedSimulator::flush_channels() {
  struct Pending {
    Message msg;
    int dst = 0;
  };
  std::vector<Pending> all;
  const int n = shards();
  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < n; ++to) {
      Channel& ch = channel(from, to);
      for (Message& m : ch.pending) all.push_back(Pending{std::move(m), to});
      ch.pending.clear();
    }
  }
  if (all.empty()) return 0;
  // Canonical delivery order. `key` is the model's decomposition-independent
  // tie-break; (src, seq) only orders messages a correct model already
  // treats as commutative.
  std::sort(all.begin(), all.end(), [](const Pending& a, const Pending& b) {
    return std::tie(a.msg.deliver_at, a.msg.key, a.msg.src, a.msg.seq) <
           std::tie(b.msg.deliver_at, b.msg.key, b.msg.src, b.msg.seq);
  });
  for (Pending& p : all) {
    shard(p.dst).schedule_at(p.msg.deliver_at, std::move(p.msg.cb));
  }
  stats_.messages += all.size();
  return all.size();
}

void ShardedSimulator::run_window(TimePoint window_end, bool lockstep, TimePoint at,
                                  exec::RunnerPool* pool) {
  const std::size_t n = shards_.size();
  auto task = [&](std::size_t i) {
    if (lockstep) {
      shards_[i]->run_until(at);
    } else {
      shards_[i]->run_before(window_end);
    }
  };
  if (pool != nullptr && pool->jobs() > 1 && n > 1) {
    pool->for_each(n, task);
  } else {
    for (std::size_t i = 0; i < n; ++i) task(i);
  }
  ++stats_.windows;
  if (lockstep) ++stats_.lockstep_windows;
}

TimePoint ShardedSimulator::next_time() const {
  TimePoint t = TimePoint::far_future();
  for (const auto& s : shards_) t = std::min(t, s->next_event_time());
  for (const Channel& ch : channels_) {
    for (const Message& m : ch.pending) t = std::min(t, m.deliver_at);
  }
  return t;
}

void ShardedSimulator::run_until(TimePoint horizon, exec::RunnerPool* pool) {
  std::uint64_t fired_before = 0;
  for (const auto& s : shards_) fired_before += s->processed_events();

  for (;;) {
    // Channels hold pre-run posts on the first pass and nothing afterwards
    // (every window flushes before looping).
    flush_channels();
    TimePoint t = TimePoint::far_future();
    for (const auto& s : shards_) t = std::min(t, s->next_event_time());
    if (t >= horizon) break;

    const bool lockstep = lookahead_ == Duration::zero();
    TimePoint end = horizon;
    if (!lockstep && !lookahead_.is_infinite()) {
      // Overflow-safe t + lookahead.
      const std::int64_t room = TimePoint::far_future().as_nanos() - t.as_nanos();
      if (lookahead_.as_nanos() < room) end = std::min(horizon, t + lookahead_);
    }
    run_window(end, lockstep, t, pool);
  }

  std::uint64_t fired_after = 0;
  for (const auto& s : shards_) fired_after += s->processed_events();
  stats_.events += fired_after - fired_before;
}

void ShardedSimulator::run(exec::RunnerPool* pool) {
  run_until(TimePoint::far_future(), pool);
}

}  // namespace hpn::sim
