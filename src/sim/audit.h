// Always-compiled invariant auditing: conservation and sanity checks that
// run *during* a simulation, enabled per-run like the Tracer.
//
// The fuzzing subsystem (tests/fuzz) throws randomized topology × workload
// × fault-schedule scenarios at every engine; the auditor is the oracle
// that turns "the run finished" into "the run was physically plausible":
// bytes injected = delivered + dropped + in-flight, no negative queues,
// per-link rate <= capacity, FIFO order within a port, event-time
// monotonicity, loop-free FIBs after BGP convergence, and no flow
// forwarded over a down link. Every rule guards a dense hot path (the
// pooled event core, the flat-array packet engine, the incremental
// max-min solver), where an indexing bug corrupts numbers silently.
//
// Disabled (the default) every probe is a single predictable branch on
// `enabled_` — the same contract as metrics::Tracer, so the auditor can
// stay compiled into release builds and benches. Enabled, violations are
// collected (capped) for the harness to report, or thrown immediately in
// failfast mode so unit tests pinpoint the exact event.
//
// The auditor lives in sim (below topo/flowsim in the layer order), so all
// checks speak raw 32-bit entity ids and doubles; each engine supplies the
// domain meaning at the call site.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace hpn::sim {

enum class AuditRule : std::uint8_t {
  kEventTimeMonotonic,  ///< An event fired before the clock it left behind.
  kNegativeQueue,       ///< A port/queue byte counter went below zero.
  kRateOverCapacity,    ///< Allocated or delivered rate exceeded link capacity.
  kFifoOrder,           ///< A port dequeued packets out of enqueue order.
  kConservation,        ///< injected != delivered + dropped + in-flight.
  kDownLinkForwarding,  ///< A flow carried traffic over a down link.
  kFibLoop,             ///< BGP FIBs form a forwarding loop at quiescence.
  kFibBlackhole,        ///< A FIB route's next hop has no route at quiescence.
  kFibDownLink,         ///< A FIB route resolves over a down link.
  kStuckQueue,          ///< Bytes left queued after the simulation drained.
};

std::string_view to_string(AuditRule rule);

struct AuditViolation {
  TimePoint at;
  AuditRule rule{};
  std::string detail;
};

class InvariantAuditor {
 public:
  /// Start auditing. Call before the audited run injects traffic — the
  /// conservation accumulators in each engine only count while enabled.
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Throw CheckError on the first violation instead of collecting.
  void set_failfast(bool on) { failfast_ = on; }

  /// Hot path: one predictable branch when disabled; the detail string is
  /// built only on failure.
  template <typename DetailFn>
  void check(bool ok, AuditRule rule, TimePoint at, DetailFn&& detail) {
    if (!enabled_ || ok) return;
    fail(rule, at, std::forward<DetailFn>(detail)());
  }

  void fail(AuditRule rule, TimePoint at, std::string detail);

  // ---- Per-port FIFO tickets ----------------------------------------------
  // A port hands out a ticket at enqueue and must retire tickets in the
  // same order at dequeue. Dense by link index; grows on demand.
  [[nodiscard]] std::uint64_t fifo_enqueue(std::uint32_t link) {
    if (link >= fifo_in_.size()) grow_fifo(link);
    return fifo_in_[link]++;
  }
  void fifo_dequeue(std::uint32_t link, std::uint64_t ticket, TimePoint at);

  // ---- Results ------------------------------------------------------------
  [[nodiscard]] bool ok() const { return total_violations_ == 0; }
  [[nodiscard]] std::uint64_t violation_count() const { return total_violations_; }
  /// Retained violations (collection caps at kMaxRetained; the count keeps
  /// incrementing past it).
  [[nodiscard]] const std::vector<AuditViolation>& violations() const {
    return violations_;
  }
  /// One line per retained violation, for harness/test failure messages.
  [[nodiscard]] std::string report() const;
  void clear();

  static constexpr std::size_t kMaxRetained = 64;

 private:
  void grow_fifo(std::uint32_t link);

  bool enabled_ = false;
  bool failfast_ = false;
  std::uint64_t total_violations_ = 0;
  std::vector<AuditViolation> violations_;
  std::vector<std::uint64_t> fifo_in_;   ///< Next enqueue ticket per link.
  std::vector<std::uint64_t> fifo_out_;  ///< Next expected dequeue ticket.
};

}  // namespace hpn::sim
