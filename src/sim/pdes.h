// Conservative parallel discrete-event simulation (PDES) of ONE run.
//
// exec::RunnerPool (PR 5) scales *across* independent runs; this layer
// scales *inside* a run. A ShardedSimulator owns K per-shard event cores
// (the slab-pool + calendar-queue Simulator of PR 3, instantiated per
// shard) and drives them in conservative lookahead windows:
//
//   1. T     = earliest pending event across all shards,
//   2. every shard runs its events with time < T + lookahead in parallel
//      (a RunnerPool batch: one task per shard, work-stealing deques,
//      full barrier at batch end),
//   3. cross-shard messages accumulated during the window are flushed into
//      their destination shards in one canonical order,
//   4. repeat until every queue and channel drains.
//
// Safety: a shard posting to another shard must schedule the delivery at
// least `lookahead` after its own clock (checked). T is the global minimum,
// so nothing generated during the window can land before T + lookahead —
// every event executed in step 2 was already causally settled. With
// lookahead zero (adversarial topologies where every link crosses shards)
// the engine degrades to lockstep: one global timestamp per window, still
// correct, no parallelism — the documented worst case.
//
// Determinism: the window schedule is a pure function of event times and
// the static lookahead; within a shard the Simulator's (time, seq) order
// applies; channel flushes are sorted by (deliver_at, key, src, seq) where
// `key` is a model-supplied canonical tie-break. Nothing depends on thread
// interleaving, so a run is bit-reproducible at any worker count — and a
// model whose cross-shard interactions are pure timestamped messages (see
// flowsim/shardnet.h) produces byte-identical merged traces at any *shard*
// count, pinned by the shard-equivalence battery.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/runner_pool.h"
#include "sim/simulator.h"

namespace hpn::sim {

class ShardedSimulator {
 public:
  /// `lookahead` is the conservative window width — for a fabric partition
  /// this is Partition::lookahead (min static latency over boundary links).
  /// Duration::infinite() (no boundary) runs each shard to completion in a
  /// single window.
  ShardedSimulator(int shards, Duration lookahead);

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int shards() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  [[nodiscard]] Simulator& shard(int s) { return *shards_.at(static_cast<std::size_t>(s)); }
  [[nodiscard]] const Simulator& shard(int s) const {
    return *shards_.at(static_cast<std::size_t>(s));
  }

  /// Post `cb` to run on shard `to` at `deliver_at`. Must be called from
  /// shard `from`'s window task (or before run()); the conservative
  /// contract `deliver_at >= shard(from).now() + lookahead` is checked.
  /// `key` orders same-instant deliveries canonically — it must be a pure
  /// function of the model payload (e.g. (flow, chunk)), never of the
  /// decomposition, or shard counts become observable.
  void post(int from, int to, TimePoint deliver_at, std::uint64_t key,
            InlineCallback cb);

  /// Run windows until every shard queue and channel drains. With `pool`
  /// null or single-worker (or a single shard) the window tasks run inline
  /// in shard order — the serial reference the parallel path must
  /// reproduce exactly.
  void run(exec::RunnerPool* pool = nullptr);

  /// Run windows until the earliest pending work is at or beyond `horizon`,
  /// i.e. execute every event with time < `horizon`.
  void run_until(TimePoint horizon, exec::RunnerPool* pool = nullptr);

  /// Earliest pending event or channel delivery; far_future when drained.
  [[nodiscard]] TimePoint next_time() const;

  struct Stats {
    std::uint64_t windows = 0;        ///< Barrier rounds executed.
    std::uint64_t messages = 0;       ///< Cross-shard deliveries flushed.
    std::uint64_t events = 0;         ///< Events fired across all shards.
    std::uint64_t lockstep_windows = 0;  ///< Windows run in lookahead-0 mode.
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Message {
    TimePoint deliver_at;
    std::uint64_t key = 0;
    std::uint32_t src = 0;
    std::uint64_t seq = 0;  ///< Per-channel send order (last-resort tie).
    InlineCallback cb;
  };

  /// One per ordered (src, dst) shard pair. During a window only shard
  /// `src`'s task appends; flushes happen on the coordinating thread after
  /// the barrier, so no locking is needed — the RunnerPool batch boundary
  /// is the synchronization point.
  struct Channel {
    std::vector<Message> pending;
    std::uint64_t next_seq = 0;
  };

  [[nodiscard]] Channel& channel(int from, int to) {
    return channels_[static_cast<std::size_t>(from) * shards_.size() +
                     static_cast<std::size_t>(to)];
  }

  /// Deliver every accumulated message into its destination shard's event
  /// queue, in one canonical order. Returns the number delivered.
  std::size_t flush_channels();

  /// Run one window: every shard executes events below `window_end` (or,
  /// in lockstep mode, exactly at `at`). Parallel when pool has >1 worker.
  void run_window(TimePoint window_end, bool lockstep, TimePoint at,
                  exec::RunnerPool* pool);

  Duration lookahead_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<Channel> channels_;
  Stats stats_;
};

}  // namespace hpn::sim
