#include "sim/audit.h"

#include "common/check.h"

namespace hpn::sim {

std::string_view to_string(AuditRule rule) {
  switch (rule) {
    case AuditRule::kEventTimeMonotonic: return "event_time_monotonic";
    case AuditRule::kNegativeQueue: return "negative_queue";
    case AuditRule::kRateOverCapacity: return "rate_over_capacity";
    case AuditRule::kFifoOrder: return "fifo_order";
    case AuditRule::kConservation: return "conservation";
    case AuditRule::kDownLinkForwarding: return "down_link_forwarding";
    case AuditRule::kFibLoop: return "fib_loop";
    case AuditRule::kFibBlackhole: return "fib_blackhole";
    case AuditRule::kFibDownLink: return "fib_down_link";
    case AuditRule::kStuckQueue: return "stuck_queue";
  }
  return "unknown";
}

void InvariantAuditor::fail(AuditRule rule, TimePoint at, std::string detail) {
  ++total_violations_;
  if (failfast_) {
    std::ostringstream os;
    os << "invariant violated: " << to_string(rule) << " at t=" << to_string(at)
       << " — " << detail;
    throw CheckError{os.str()};
  }
  if (violations_.size() < kMaxRetained) {
    violations_.push_back(AuditViolation{at, rule, std::move(detail)});
  }
}

void InvariantAuditor::fifo_dequeue(std::uint32_t link, std::uint64_t ticket,
                                    TimePoint at) {
  if (!enabled_) return;
  if (link >= fifo_out_.size()) grow_fifo(link);
  const std::uint64_t expected = fifo_out_[link]++;
  if (ticket != expected) {
    std::ostringstream os;
    os << "link " << link << " dequeued ticket " << ticket << ", expected "
       << expected;
    fail(AuditRule::kFifoOrder, at, os.str());
  }
}

void InvariantAuditor::grow_fifo(std::uint32_t link) {
  const std::size_t need = static_cast<std::size_t>(link) + 1;
  if (fifo_in_.size() < need) fifo_in_.resize(need, 0);
  if (fifo_out_.size() < need) fifo_out_.resize(need, 0);
}

std::string InvariantAuditor::report() const {
  std::ostringstream os;
  os << total_violations_ << " invariant violation(s)";
  if (total_violations_ > violations_.size()) {
    os << " (" << violations_.size() << " retained)";
  }
  os << '\n';
  for (const AuditViolation& v : violations_) {
    os << "  [" << to_string(v.rule) << "] t=" << to_string(v.at) << " " << v.detail
       << '\n';
  }
  return os.str();
}

void InvariantAuditor::clear() {
  total_violations_ = 0;
  violations_.clear();
  fifo_in_.clear();
  fifo_out_.clear();
}

}  // namespace hpn::sim
