// Resilient training orchestration (§2.3 end-to-end).
//
// Wraps a TrainingJob with the production loop around it: checkpoint every
// interval (written through the storage cluster), detect crashes (timeouts
// on stalled collectives), roll back to the last checkpoint, pay the
// restart time, and resume. Progress accounting distinguishes wall time
// from retained training progress, which is exactly the §2.3 economics
// (interval/2 expected rollback, ~$20K/h per 3K GPUs).
#pragma once

#include <memory>
#include <vector>

#include "fault/checkpoint.h"
#include "train/training_job.h"
#include "workload/storage.h"

namespace hpn::train {

struct ResilientReport {
  Duration wall_time = Duration::zero();
  Duration useful_progress = Duration::zero();  ///< Training retained.
  Duration rolled_back = Duration::zero();
  Duration checkpoint_overhead = Duration::zero();
  Duration restart_downtime = Duration::zero();
  int iterations_kept = 0;
  int iterations_lost = 0;
  int crashes = 0;
  int checkpoints = 0;

  [[nodiscard]] double goodput() const {
    return wall_time > Duration::zero() ? useful_progress / wall_time : 0.0;
  }
};

class ResilientTrainer {
 public:
  /// `storage` may be empty: checkpoints then cost only the stall time
  /// (write modeled as local), which still exercises the §2.3 accounting.
  ResilientTrainer(const topo::Cluster& cluster, sim::Simulator& simulator,
                   flowsim::FlowSession& session, ccl::ConnectionManager& connections,
                   routing::Router& router, workload::PlacementPlan plan,
                   workload::ModelPreset model, fault::CheckpointPolicy checkpoints,
                   std::vector<topo::StorageHost> storage = {},
                   TrainOptions options = {});

  /// Run until `wall_budget` of simulated time is spent (training, check-
  /// pointing, crashing and restarting as events dictate).
  ResilientReport run_for(Duration wall_budget);

 private:
  /// Write one checkpoint (blocking: training pauses, as production does
  /// for consistent snapshots). Returns the time it took.
  Duration write_checkpoint();
  /// Recreate the job after a crash (fresh communicators over the repaired
  /// fabric) and account the rollback.
  void restart(ResilientReport& report);

  const topo::Cluster* cluster_;
  sim::Simulator* sim_;
  flowsim::FlowSession* session_;
  ccl::ConnectionManager* conns_;
  routing::Router* router_;
  workload::PlacementPlan plan_;
  workload::ModelPreset model_;
  fault::CheckpointPolicy ckpt_policy_;
  std::vector<topo::StorageHost> storage_;
  TrainOptions options_;
  std::unique_ptr<TrainingJob> job_;
  TimePoint last_checkpoint_;
  int iterations_since_checkpoint_ = 0;
  Duration progress_since_checkpoint_ = Duration::zero();
};

}  // namespace hpn::train
