#include "train/resilient_trainer.h"

namespace hpn::train {

ResilientTrainer::ResilientTrainer(const topo::Cluster& cluster, sim::Simulator& simulator,
                                   flowsim::FlowSession& session,
                                   ccl::ConnectionManager& connections,
                                   routing::Router& router, workload::PlacementPlan plan,
                                   workload::ModelPreset model,
                                   fault::CheckpointPolicy checkpoints,
                                   std::vector<topo::StorageHost> storage,
                                   TrainOptions options)
    : cluster_{&cluster},
      sim_{&simulator},
      session_{&session},
      conns_{&connections},
      router_{&router},
      plan_{std::move(plan)},
      model_{model},
      ckpt_policy_{checkpoints},
      storage_{std::move(storage)},
      options_{options} {
  job_ = std::make_unique<TrainingJob>(*cluster_, *sim_, *session_, *conns_, plan_, model_,
                                       options_);
  last_checkpoint_ = sim_->now();
}

Duration ResilientTrainer::write_checkpoint() {
  const TimePoint start = sim_->now();
  if (storage_.empty()) {
    // No storage cluster modeled: charge the policy's nominal write time.
    sim_->run_for(ckpt_policy_.write_time);
  } else {
    workload::StorageTraffic st{*cluster_, *sim_, *session_, *router_};
    const DataSize per_host =
        ckpt_policy_.per_gpu * static_cast<double>(cluster_->gpus_per_host);
    st.run_checkpoint_write(plan_.hosts, storage_, per_host);
  }
  last_checkpoint_ = sim_->now();
  iterations_since_checkpoint_ = 0;
  progress_since_checkpoint_ = Duration::zero();
  return sim_->now() - start;
}

void ResilientTrainer::restart(ResilientReport& report) {
  ++report.crashes;
  report.iterations_lost += iterations_since_checkpoint_;
  // Rollback: everything since the last checkpoint is lost.
  const Duration lost = sim_->now() - last_checkpoint_;
  report.rolled_back += lost;
  // Downtime: reload + re-init before the first new iteration.
  sim_->run_for(ckpt_policy_.restart_time);
  report.restart_downtime += ckpt_policy_.restart_time;
  // Fresh job (new communicators, fresh QPs) over the current fabric.
  job_ = std::make_unique<TrainingJob>(*cluster_, *sim_, *session_, *conns_, plan_, model_,
                                       options_);
  iterations_since_checkpoint_ = 0;
  progress_since_checkpoint_ = Duration::zero();
  last_checkpoint_ = sim_->now();  // restart resumes *from* the checkpoint
}

ResilientReport ResilientTrainer::run_for(Duration wall_budget) {
  ResilientReport report;
  const TimePoint start = sim_->now();
  const TimePoint deadline = start + wall_budget;

  while (sim_->now() < deadline) {
    // Checkpoint when due.
    if (sim_->now() - last_checkpoint_ >= ckpt_policy_.interval) {
      const Duration cost = write_checkpoint();
      report.checkpoint_overhead += cost;
      ++report.checkpoints;
      continue;
    }
    const TimePoint before = sim_->now();
    if (job_->run_iterations(1) == 1) {
      ++iterations_since_checkpoint_;
      report.iterations_kept += 1;
      report.useful_progress += sim_->now() - before;
      progress_since_checkpoint_ += sim_->now() - before;
    } else {
      // Crash: everything since the last checkpoint is retracted.
      report.iterations_kept -= iterations_since_checkpoint_;
      report.useful_progress -= progress_since_checkpoint_;
      restart(report);
    }
  }
  report.wall_time = sim_->now() - start;
  return report;
}

}  // namespace hpn::train
