#include "train/training_job.h"

#include <algorithm>

#include "common/check.h"

namespace hpn::train {

TrainingJob::TrainingJob(const topo::Cluster& cluster, sim::Simulator& simulator,
                         flowsim::FlowSession& session, ccl::ConnectionManager& connections,
                         workload::PlacementPlan plan, workload::ModelPreset model,
                         TrainOptions options)
    : cluster_{&cluster},
      sim_{&simulator},
      session_{&session},
      plan_{std::move(plan)},
      model_{model},
      options_{options} {
  HPN_CHECK(options_.dp_overlap >= 0.0 && options_.dp_overlap <= 1.0);
  for (const auto& tp_group : plan_.tp_groups) {
    tp_comms_.push_back(std::make_unique<ccl::Communicator>(
        cluster, simulator, session, connections, tp_group, options_.ccl));
  }
  for (const auto& dp_group : plan_.dp_groups) {
    dp_comms_.push_back(std::make_unique<ccl::Communicator>(
        cluster, simulator, session, connections, dp_group, options_.ccl));
  }
  // Whole-job communicator used only for point-to-point PP sends.
  std::vector<int> all_ranks;
  for (const int h : plan_.hosts) {
    for (int r = 0; r < cluster.gpus_per_host; ++r) {
      all_ranks.push_back(h * cluster.gpus_per_host + r);
    }
  }
  pp_comm_ = std::make_unique<ccl::Communicator>(cluster, simulator, session, connections,
                                                 all_ranks, options_.ccl);
}

TrainingJob::~TrainingJob() { *alive_ = false; }

std::optional<Duration> TrainingJob::run_one_iteration() {
  const TimePoint start = sim_->now();
  const TimePoint deadline = start + model_.compute_per_iteration + options_.comm_timeout;
  ++iteration_;
  sim_->trace(metrics::TraceEventKind::kIterationBegin, iteration_);

  // Shared so late-firing callbacks stay valid if we bail out on a crash.
  auto pending = std::make_shared<int>(0);
  auto arrive = [pending] { --*pending; };

  // Phase 1 — compute (forward + backward) with TP AllReduce interleaved
  // (TP blocks between layers; model ~half of it as exposed alongside).
  ++*pending;
  sim_->schedule_after(model_.compute_per_iteration, arrive);
  for (auto& comm : tp_comms_) {
    ++*pending;
    comm->all_reduce(model_.traffic.tp_all_reduce * 0.5, arrive);
  }
  // Phase 2 — the backward-phase gradient burst (Fig 2): DP Multi-AllReduce
  // per stage plus PP boundary traffic, exposed after compute except for
  // the overlapped share.
  ++*pending;
  sim_->schedule_after(model_.compute_per_iteration, [this, alive = alive_, pending, arrive] {
    if (!*alive) return;
    arrive();  // releases the phase-1 slot for this chain
    const DataSize dp_exposed = model_.traffic.dp_all_reduce *
                                static_cast<double>(model_.dp_rounds_per_iteration) *
                                (1.0 - options_.dp_overlap);
    for (auto& comm : dp_comms_) {
      ++*pending;
      comm->multi_all_reduce(dp_exposed, arrive);
    }
    for (const auto& [src, dst] : plan_.pp_pairs) {
      ++*pending;
      pp_comm_->point_to_point(src, dst, model_.traffic.pp_send, arrive);
      ++*pending;
      pp_comm_->point_to_point(dst, src, model_.traffic.pp_send, arrive);
    }
    // MoE expert routing: whole-job AllToAll with PXN host relay (§10).
    if (model_.traffic.moe_all_to_all > DataSize::zero()) {
      ++*pending;
      pp_comm_->all_to_all(model_.traffic.moe_all_to_all, /*allow_host_relay=*/true,
                           arrive);
    }
  });

  while (*pending > 0) {
    if (!sim_->step() || sim_->now() > deadline) {
      // Out of events with work pending (everything stalled on retries) or
      // stalled beyond the collective timeout: NCCL aborts, the job crashes.
      state_ = JobState::kCrashed;
      return std::nullopt;
    }
  }
  const Duration took = sim_->now() - start;
  sim_->trace(metrics::TraceEventKind::kIterationEnd, iteration_, metrics::kTraceNoId,
              took.as_seconds());
  return took;
}

int TrainingJob::run_iterations(int n) {
  int completed = 0;
  for (int i = 0; i < n && state_ == JobState::kRunning; ++i) {
    const auto t = run_one_iteration();
    if (!t.has_value()) break;
    const double samples =
        static_cast<double>(plan_.world_size()) * model_.samples_per_iteration_per_gpu;
    throughput_.record(sim_->now(), samples / t->as_seconds());
    ++completed;
  }
  return completed;
}

double TrainingJob::steady_samples_per_sec(int k) const {
  const auto& pts = throughput_.points();
  HPN_CHECK_MSG(!pts.empty(), "no completed iterations");
  const std::size_t take = std::min<std::size_t>(static_cast<std::size_t>(k), pts.size());
  double sum = 0.0;
  for (std::size_t i = pts.size() - take; i < pts.size(); ++i) sum += pts[i].value;
  return sum / static_cast<double>(take);
}

void TrainingJob::on_fabric_change() {
  for (auto& c : tp_comms_) c->on_fabric_change();
  for (auto& c : dp_comms_) c->on_fabric_change();
  pp_comm_->on_fabric_change();
}

}  // namespace hpn::train
