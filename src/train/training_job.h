// End-to-end LLM training iteration model (§9.1, §9.3).
//
// An iteration is compute plus the three communication flavors of Table 3,
// all simulated through the fabric: TP AllReduce inside each host (NVLink),
// PP activations between consecutive stages (point-to-point), and the DP
// gradient Multi-AllReduce per pipeline stage (per-rail rings — the bursty
// 400G traffic of Fig 2). A configurable fraction of DP communication
// overlaps with the backward pass, as Megatron does.
//
// Failures: messages to an isolated host retry forever, so the synchronous
// iteration stalls — if a stall exceeds the collective-communication
// timeout the job crashes and must restart from its last checkpoint (§2.3).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ccl/communicator.h"
#include "ctrl/fabric_controller.h"
#include "metrics/timeseries.h"
#include "workload/parallelism.h"

namespace hpn::train {

struct TrainOptions {
  /// Fraction of DP gradient sync hidden under backward compute.
  double dp_overlap = 0.5;
  /// Collective timeout: a stalled iteration beyond this crashes the job.
  Duration comm_timeout = Duration::minutes(2);
  ccl::CclConfig ccl;
};

enum class JobState { kRunning, kCrashed };

class TrainingJob {
 public:
  TrainingJob(const topo::Cluster& cluster, sim::Simulator& simulator,
              flowsim::FlowSession& session, ccl::ConnectionManager& connections,
              workload::PlacementPlan plan, workload::ModelPreset model,
              TrainOptions options = {});
  ~TrainingJob();
  TrainingJob(const TrainingJob&) = delete;
  TrainingJob& operator=(const TrainingJob&) = delete;

  /// Run `n` iterations (blocking: drives the simulator). Stops early on
  /// crash. Returns the number of completed iterations.
  int run_iterations(int n);

  /// Samples/s, one point per completed iteration (timestamped at its end).
  [[nodiscard]] const metrics::TimeSeries& throughput() const { return throughput_; }
  /// Mean samples/s over the last `k` iterations.
  [[nodiscard]] double steady_samples_per_sec(int k = 5) const;
  [[nodiscard]] JobState state() const { return state_; }
  [[nodiscard]] const workload::PlacementPlan& plan() const { return plan_; }

  /// Forward fabric changes to in-flight traffic (port failover).
  void on_fabric_change();

 private:
  /// Runs one iteration; returns its wall time or nullopt on crash.
  std::optional<Duration> run_one_iteration();

  const topo::Cluster* cluster_;
  sim::Simulator* sim_;
  flowsim::FlowSession* session_;
  workload::PlacementPlan plan_;
  workload::ModelPreset model_;
  TrainOptions options_;
  /// One single-host communicator per host (TP), one per stage (DP).
  std::vector<std::unique_ptr<ccl::Communicator>> tp_comms_;
  std::vector<std::unique_ptr<ccl::Communicator>> dp_comms_;
  std::unique_ptr<ccl::Communicator> pp_comm_;  ///< Whole-job, for send/recv.
  metrics::TimeSeries throughput_{"samples_per_sec"};
  JobState state_ = JobState::kRunning;
  std::uint32_t iteration_ = 0;  ///< 1-based, for tracer iteration spans.
  /// Disarms the phase-2 continuation if the job is destroyed mid-iteration
  /// (crash + restart replaces the job while events are pending).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace hpn::train
