// Golden-pinned canonical cluster run: the 16-job HPN mixed fleet at the
// default scale, locality policy, one fault — its per-job JCT CSV and
// summary row are checked in under tests/support/golden/ and must match
// byte-for-byte. This pins the *numbers* (placement decisions, collective
// timings, fault/restart economics) across refactors of any layer below.
//
// Regenerating after an intentional change:
//   HPN_UPDATE_GOLDEN=1 ./test_cluster
// On mismatch the observed CSV is written next to the golden as
// <name>.actual (CI uploads these as artifacts).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"

#ifndef HPN_GOLDEN_DIR
#error "HPN_GOLDEN_DIR must point at tests/support/golden"
#endif

namespace hpn::cluster {
namespace {

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = std::string{HPN_GOLDEN_DIR} + "/" + name;
  if (std::getenv("HPN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{path};
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    std::printf("updated golden %s (%zu bytes)\n", path.c_str(), actual.size());
    return;
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — regenerate with HPN_UPDATE_GOLDEN=1 ./test_cluster";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (actual != expected) {
    const std::string actual_path = path + ".actual";
    std::ofstream out{actual_path};
    out << actual;
    FAIL() << "golden mismatch: " << path << " (observed written to " << actual_path
           << "; regenerate with HPN_UPDATE_GOLDEN=1 ./test_cluster if intended)";
  }
}

TEST(ClusterGolden, CanonicalHpn16Jobs) {
  ClusterConfig cfg;  // default scale: 4 segments x 32 hosts, 2:1 uplinks
  cfg.policy = Policy::kLocalityAware;
  cfg.trace.seed = 2024;
  cfg.trace.jobs = 16;
  cfg.trace.mean_interarrival = Duration::millis(200);
  cfg.trace.max_job_hosts = 32;
  cfg.faults = 1;
  const ClusterReport r = run_cluster(cfg);
  check_golden("cluster_hpn_16jobs.csv", ClusterReport::summary_csv_header() +
                                             r.summary_csv_row() + r.jct_csv());
}

}  // namespace
}  // namespace hpn::cluster
