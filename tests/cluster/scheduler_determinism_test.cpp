// Scheduler-equivalence battery: a cluster run is a pure function of its
// config, and the RunnerPool aggregation is a pure function of the case
// list — so for every policy the per-job JCT CSV and the summary row must
// be BYTE-identical whether the sweep runs at --jobs 1, 4 or 8. This is
// the contract bench_cluster's CSV artifact rests on; it holds with fault
// injection armed too (the injector draws from the config seed, not from
// wall time or thread interleaving).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"
#include "exec/runner_pool.h"

namespace hpn::cluster {
namespace {

ClusterConfig small_config(Policy policy, std::uint64_t seed, int faults) {
  ClusterConfig cfg;
  cfg.policy = policy;
  // 32 hosts keep each run fast; determinism does not need contention.
  cfg.scale = fabric::FabricScale{/*pods=*/1, /*segments_per_pod=*/4,
                                  /*hosts_per_segment=*/8, /*gpus_per_host=*/8};
  cfg.trace.seed = seed;
  cfg.trace.jobs = 10;
  cfg.trace.mean_interarrival = Duration::millis(200);
  cfg.trace.max_job_hosts = 8;
  cfg.faults = faults;
  return cfg;
}

struct Case {
  Policy policy;
  std::uint64_t seed;
  int faults;
};

std::vector<Case> case_list() {
  std::vector<Case> cases;
  for (const Policy p : {Policy::kLocalityAware, Policy::kRandom, Policy::kFragMin}) {
    cases.push_back({p, 2024, 0});
    cases.push_back({p, 7, 1});  // fault path must be deterministic too
  }
  return cases;
}

/// Everything byte-stable a run emits, concatenated in case order.
std::string sweep_bytes(int jobs) {
  const auto cases = case_list();
  exec::RunnerPool pool{jobs};
  const auto outs = pool.map(cases.size(), [&](std::size_t i) {
    const auto& c = cases[i];
    const ClusterReport r = run_cluster(small_config(c.policy, c.seed, c.faults));
    return r.jct_csv() + r.summary_csv_row();
  });
  std::string all;
  for (const auto& o : outs) all += o;
  return all;
}

TEST(SchedulerDeterminism, ByteIdenticalAcrossRunnerPoolJobs) {
  const std::string at1 = sweep_bytes(1);
  ASSERT_FALSE(at1.empty());
  for (const int jobs : {4, 8}) {
    EXPECT_EQ(sweep_bytes(jobs), at1) << "--jobs " << jobs << " diverged from --jobs 1";
  }
}

TEST(SchedulerDeterminism, RepeatedRunsAreByteIdentical) {
  const ClusterConfig cfg = small_config(Policy::kLocalityAware, 2024, 1);
  const ClusterReport a = run_cluster(cfg);
  const ClusterReport b = run_cluster(cfg);
  EXPECT_EQ(a.jct_csv(), b.jct_csv());
  EXPECT_EQ(a.summary_csv_row(), b.summary_csv_row());
}

TEST(SchedulerDeterminism, PoliciesActuallyDiverge) {
  // Guard against the battery passing vacuously because every policy
  // degenerated to the same placement.
  const ClusterReport loc =
      run_cluster(small_config(Policy::kLocalityAware, 2024, 0));
  const ClusterReport rnd = run_cluster(small_config(Policy::kRandom, 2024, 0));
  EXPECT_NE(loc.jct_csv(), rnd.jct_csv());
}

TEST(SchedulerDeterminism, EveryJobAccountedFor) {
  for (const Policy p : {Policy::kLocalityAware, Policy::kRandom, Policy::kFragMin}) {
    const ClusterReport r = run_cluster(small_config(p, 2024, 0));
    EXPECT_EQ(r.jobs.size(), 10u);
    for (const auto& j : r.jobs) {
      EXPECT_GE(j.start, j.arrival) << "job " << j.id;
      if (!j.aborted) {
        EXPECT_GE(j.finish, j.start) << "job " << j.id;
        EXPECT_GT(j.hosts, 0) << "job " << j.id;
      }
    }
  }
}

}  // namespace
}  // namespace hpn::cluster
