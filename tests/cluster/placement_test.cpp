// PlacementEngine property battery: the invariants every policy must hold
// under arbitrary allocate/release sequences —
//   * allocations never overlap and never touch backup hosts;
//   * released hosts return to the pool (the engine never leaks capacity);
//   * locality/frag-min never split a job across segments when some single
//     segment could hold it;
//   * the whole engine is deterministic, including kRandom (per-job salted
//     draws, independent of wall history).
#include "cluster/placement.h"

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fabric/fabric.h"
#include "topo/cluster.h"

namespace hpn::cluster {
namespace {

topo::Cluster test_cluster() {
  // 4 segments x 8 hosts on the tiny HPN radix — small enough that the
  // randomized battery churns through full-pool states quickly.
  return fabric::fabric_or_throw("hpn").build(
      fabric::FabricScale{/*pods=*/1, /*segments_per_pod=*/4,
                          /*hosts_per_segment=*/8, /*gpus_per_host=*/8});
}

int segment_of(const topo::Cluster& c, int host) {
  return c.hosts.at(static_cast<std::size_t>(host)).pod * 1000 +
         c.hosts.at(static_cast<std::size_t>(host)).segment;
}

int segments_spanned(const topo::Cluster& c, const std::vector<int>& hosts) {
  std::set<int> segs;
  for (const int h : hosts) segs.insert(segment_of(c, h));
  return static_cast<int>(segs.size());
}

/// Drives one policy through a seeded allocate/release churn, checking the
/// shared invariants after every step.
void churn(Policy policy, std::uint64_t seed) {
  const topo::Cluster cluster = test_cluster();
  PlacementEngine engine{cluster, policy, seed};
  const int total = engine.schedulable_hosts();
  ASSERT_GT(total, 0);

  Rng rng{seed ^ 0xC1u};
  struct Live {
    int id;
    std::vector<int> hosts;
  };
  std::vector<Live> live;
  std::set<int> occupied;
  int next_id = 0;

  for (int step = 0; step < 400; ++step) {
    const bool do_release = !live.empty() && rng.bernoulli(0.4);
    if (do_release) {
      const std::size_t pick = rng.uniform_index(live.size());
      for (const int h : live[pick].hosts) occupied.erase(h);
      engine.release(live[pick].hosts);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const int need = 1 + static_cast<int>(rng.uniform_index(10));
      const int free_before = engine.free_hosts();
      const int largest_block = engine.largest_free_block();
      const auto alloc = engine.allocate(next_id, need);
      // A policy may only fail when the pool genuinely lacks the hosts.
      EXPECT_EQ(alloc.has_value(), need <= free_before);
      if (!alloc) continue;
      EXPECT_EQ(static_cast<int>(alloc->hosts.size()), need);
      EXPECT_EQ(alloc->segments_spanned, segments_spanned(cluster, alloc->hosts));
      for (const int h : alloc->hosts) {
        EXPECT_FALSE(cluster.hosts.at(static_cast<std::size_t>(h)).backup)
            << "policy handed out a backup host";
        EXPECT_TRUE(occupied.insert(h).second)
            << "host " << h << " double-allocated at step " << step;
      }
      if (policy != Policy::kRandom && need <= largest_block) {
        EXPECT_EQ(alloc->segments_spanned, 1)
            << "segment-affine policy split a " << need
            << "-host job although a block of " << largest_block << " was free";
      }
      live.push_back({next_id, alloc->hosts});
      ++next_id;
    }
    EXPECT_EQ(engine.free_hosts(), total - static_cast<int>(occupied.size()));
    EXPECT_GE(engine.fragmentation(), 0.0);
    EXPECT_LE(engine.fragmentation(), 1.0);
  }

  // Drain: everything released must come back, down to the exact count.
  for (const auto& l : live) engine.release(l.hosts);
  EXPECT_EQ(engine.free_hosts(), total);
  EXPECT_EQ(engine.largest_free_block(), total / 4)
      << "a drained pool must hold 4 whole free segments";
  const auto full = engine.allocate(next_id, total);
  ASSERT_TRUE(full.has_value()) << "freed hosts did not return to the pool";
  EXPECT_EQ(static_cast<int>(full->hosts.size()), total);
}

TEST(PlacementProperties, LocalityChurnHoldsInvariants) {
  for (const std::uint64_t seed : {1u, 7u, 2024u}) churn(Policy::kLocalityAware, seed);
}

TEST(PlacementProperties, FragMinChurnHoldsInvariants) {
  for (const std::uint64_t seed : {1u, 7u, 2024u}) churn(Policy::kFragMin, seed);
}

TEST(PlacementProperties, RandomChurnHoldsInvariants) {
  for (const std::uint64_t seed : {1u, 7u, 2024u}) churn(Policy::kRandom, seed);
}

TEST(PlacementProperties, LocalityPrefersEmptiestFittingSegment) {
  const topo::Cluster cluster = test_cluster();
  PlacementEngine engine{cluster, Policy::kLocalityAware, 1};
  // Unbalance the pool: take 6 of 8 hosts in segment 0, 2 in segment 1.
  const auto a = engine.allocate(0, 6);
  const auto b = engine.allocate(1, 2);
  ASSERT_TRUE(a && b);
  // A 4-host job fits in segments 1..3; locality must not split it and must
  // land it in one segment.
  const auto c = engine.allocate(2, 4);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->segments_spanned, 1);
}

TEST(PlacementProperties, FragMinPrefersTightestFittingSegment) {
  const topo::Cluster cluster = test_cluster();
  PlacementEngine engine{cluster, Policy::kFragMin, 1};
  // Leave segment 0 with exactly 3 free hosts, others with 8.
  const auto a = engine.allocate(0, 5);
  ASSERT_TRUE(a.has_value());
  ASSERT_EQ(a->segments_spanned, 1);
  // A 3-host job fits everywhere; frag-min takes the tightest hole so the
  // three full segments stay whole.
  const auto b = engine.allocate(1, 3);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->segments_spanned, 1);
  EXPECT_EQ(segment_of(cluster, b->hosts.front()),
            segment_of(cluster, a->hosts.front()));
}

TEST(PlacementProperties, RandomIsDeterministicPerJobId) {
  const topo::Cluster cluster = test_cluster();
  PlacementEngine lhs{cluster, Policy::kRandom, 2024};
  PlacementEngine rhs{cluster, Policy::kRandom, 2024};
  for (int id = 0; id < 8; ++id) {
    const auto l = lhs.allocate(id, 3);
    const auto r = rhs.allocate(id, 3);
    ASSERT_TRUE(l && r);
    EXPECT_EQ(l->hosts, r->hosts) << "job " << id;
  }
}

TEST(PlacementProperties, RandomKeepsDrawOrder) {
  // Ranks are assigned in allocation order, so the scattered draw order is
  // semantically load-bearing: sorting it would collapse the ring-neighbor
  // scatter the policy exists to model.
  const topo::Cluster cluster = test_cluster();
  PlacementEngine engine{cluster, Policy::kRandom, 7};
  bool saw_unsorted = false;
  for (int id = 0; id < 6 && !saw_unsorted; ++id) {
    const auto a = engine.allocate(id, 5);
    ASSERT_TRUE(a.has_value());
    saw_unsorted = !std::is_sorted(a->hosts.begin(), a->hosts.end());
  }
  EXPECT_TRUE(saw_unsorted) << "random draws came back sorted — scatter lost";
}

TEST(PlacementNames, RoundTrip) {
  for (const Policy p : {Policy::kRandom, Policy::kLocalityAware, Policy::kFragMin}) {
    const auto back = policy_from_string(to_string(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(policy_from_string("bogus").has_value());
  EXPECT_NE(policy_names().find("locality"), std::string::npos);
}

}  // namespace
}  // namespace hpn::cluster
