// Job-arrival trace generator: determinism, clamps, and fleet shape.
#include "cluster/trace.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace hpn::cluster {
namespace {

TEST(Trace, SameSeedSameTrace) {
  TraceConfig cfg;
  cfg.jobs = 64;
  const auto a = generate_trace(cfg, /*max_hosts=*/128, /*gpus_per_host=*/8);
  const auto b = generate_trace(cfg, /*max_hosts=*/128, /*gpus_per_host=*/8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].arrival.since_origin().as_nanos(), b[i].arrival.since_origin().as_nanos());
    EXPECT_EQ(a[i].hosts, b[i].hosts);
    EXPECT_EQ(a[i].iterations, b[i].iterations);
    EXPECT_EQ(a[i].service_time.as_nanos(), b[i].service_time.as_nanos());
  }
}

TEST(Trace, DifferentSeedsDiffer) {
  TraceConfig a_cfg, b_cfg;
  a_cfg.jobs = b_cfg.jobs = 64;
  b_cfg.seed = a_cfg.seed + 1;
  const auto a = generate_trace(a_cfg, 128, 8);
  const auto b = generate_trace(b_cfg, 128, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].hosts != b[i].hosts ||
                a[i].arrival.since_origin().as_nanos() !=
                    b[i].arrival.since_origin().as_nanos();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Trace, RespectsClampsAndShape) {
  TraceConfig cfg;
  cfg.jobs = 200;
  cfg.max_job_hosts = 4;
  cfg.min_iterations = 3;
  cfg.max_iterations = 7;
  const auto trace = generate_trace(cfg, /*max_hosts=*/128, 8);
  ASSERT_EQ(trace.size(), 200u);
  int training = 0, inference = 0;
  TimePoint last = TimePoint::origin();
  for (const auto& j : trace) {
    EXPECT_GE(j.hosts, 1);
    EXPECT_GE(j.arrival, last) << "arrivals must be non-decreasing";
    last = j.arrival;
    if (j.kind == JobKind::kTraining) {
      ++training;
      EXPECT_LE(j.hosts, cfg.max_job_hosts) << "max_job_hosts cap violated";
      EXPECT_GE(j.iterations, cfg.min_iterations);
      EXPECT_LE(j.iterations, cfg.max_iterations);
    } else {
      ++inference;
      EXPECT_LE(j.hosts, cfg.max_inference_hosts);
      EXPECT_GE(j.service_time, cfg.min_service);
      EXPECT_LE(j.service_time, cfg.max_service);
    }
  }
  // inference_fraction = 0.25 over 200 draws: both kinds must show up.
  EXPECT_GT(training, 0);
  EXPECT_GT(inference, 0);
}

TEST(Trace, UncappedJobsClampToClusterSize) {
  TraceConfig cfg;
  cfg.jobs = 200;
  cfg.max_job_hosts = 0;  // cluster size is the only cap
  const auto trace = generate_trace(cfg, /*max_hosts=*/16, 8);
  for (const auto& j : trace) {
    EXPECT_LE(j.hosts, 16);
  }
}

}  // namespace
}  // namespace hpn::cluster
