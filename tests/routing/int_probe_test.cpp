#include "routing/int_probe.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace hpn::routing {
namespace {

using topo::Cluster;
using topo::HpnConfig;

class IntProbeTest : public ::testing::Test {
 protected:
  Cluster c = topo::build_hpn(HpnConfig::tiny());
  Router r{c.topo};

  Path cross_segment_path(int plane) {
    const auto& att = c.nic_of(0);
    return r.trace_via(att.access[static_cast<std::size_t>(plane)], c.nic_of(4 * 8).nic,
                       FiveTuple{.src_ip = 1, .dst_ip = 2, .src_port = 777});
  }
};

TEST_F(IntProbeTest, RecordsEverySwitchHop) {
  const Path p = cross_segment_path(0);
  ASSERT_TRUE(p.valid());
  const auto records = int_probe(c.topo, p);
  // NIC -> ToR -> Agg -> ToR -> NIC: three switch hops.
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].kind, topo::NodeKind::kTor);
  EXPECT_EQ(records[1].kind, topo::NodeKind::kAgg);
  EXPECT_EQ(records[2].kind, topo::NodeKind::kTor);
}

TEST_F(IntProbeTest, CorrectWiringPassesBlueprint) {
  for (int plane = 0; plane < 2; ++plane) {
    const auto records = int_probe(c.topo, cross_segment_path(plane));
    EXPECT_TRUE(check_blueprint(c, records, plane, /*expected_rail=*/0).empty());
  }
}

TEST_F(IntProbeTest, DetectsCrossPlaneMiswire) {
  // Physically re-cable the NIC's port 0 to the plane-1 ToR (the §10 field
  // mistake). The static attachment record still says plane 0, so static
  // validation can't see the probe's view — but INT can.
  auto records = int_probe(c.topo, cross_segment_path(1));  // actual plane-1 path
  const auto violations = check_blueprint(c, records, /*expected_plane=*/0, 0);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("plane 1"), std::string::npos);
}

TEST_F(IntProbeTest, DetectsCrossRailWire) {
  // Probe a rail-1 path but claim the blueprint expects rail 0.
  const auto& att = c.nic_of(1);  // rank 1 = rail 1
  const Path p = r.trace_via(att.access[0], c.nic_of(4 * 8 + 1).nic,
                             FiveTuple{.src_ip = 3, .dst_ip = 4, .src_port = 9});
  const auto violations = check_blueprint(c, int_probe(c.topo, p), 0, /*expected_rail=*/0);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("rail"), std::string::npos);
}

TEST_F(IntProbeTest, TierSequenceValidAcrossPods) {
  auto cfg = HpnConfig::tiny();
  cfg.pods = 2;
  Cluster c2 = topo::build_hpn(cfg);
  Router r2{c2.topo};
  const auto& att = c2.nic_of(0);
  const int ranks_per_pod = 2 * 4 * 8;
  const Path p = r2.trace_via(att.access[0], c2.nic_of(ranks_per_pod).nic,
                              FiveTuple{.src_ip = 5, .dst_ip = 6, .src_port = 11});
  ASSERT_TRUE(p.valid());
  const auto records = int_probe(c2.topo, p);
  ASSERT_EQ(records.size(), 5u);  // ToR Agg Core Agg ToR
  EXPECT_EQ(records[2].kind, topo::NodeKind::kCore);
  EXPECT_TRUE(check_blueprint(c2, records, 0, 0).empty());
}

TEST_F(IntProbeTest, IntraTorPathHasSingleHop) {
  const auto& att = c.nic_of(0);
  const Path p = r.trace_via(att.access[0], c.nic_of(8).nic,
                             FiveTuple{.src_ip = 7, .dst_ip = 8, .src_port = 13});
  const auto records = int_probe(c.topo, p);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, topo::NodeKind::kTor);
}

}  // namespace
}  // namespace hpn::routing
