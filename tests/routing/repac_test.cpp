#include "routing/repac.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace hpn::routing {
namespace {

using topo::Cluster;
using topo::HpnConfig;

class RePaCTest : public ::testing::Test {
 protected:
  Cluster c = topo::build_hpn(HpnConfig::tiny());
  Router r{c.topo};
  RePaC repac{r};

  FiveTuple base(int src_rank, int dst_rank) const {
    return FiveTuple{.src_ip = c.nic_of(src_rank).nic.value(),
                     .dst_ip = c.nic_of(dst_rank).nic.value(),
                     .src_port = 10'000};
  }
};

TEST_F(RePaCTest, PredictEqualsRouterTrace) {
  const auto& att = c.nic_of(0);
  const NodeId dst = c.nic_of(4 * 8).nic;
  const FiveTuple ft = base(0, 4 * 8);
  const Path predicted = repac.predict(att.access[0], dst, ft);
  const Path traced = r.trace_via(att.access[0], dst, ft);
  ASSERT_TRUE(predicted.valid());
  EXPECT_EQ(predicted.links, traced.links);
}

TEST_F(RePaCTest, SteerOntoEveryUplink) {
  // The core RePaC capability: for *each* of the source ToR's uplinks, find
  // a sport that routes through it. This is the Algorithm 1 primitive.
  const auto& att = c.nic_of(0);
  const NodeId dst = c.nic_of(4 * 8).nic;
  const NodeId tor = att.tor[0];
  int steered = 0;
  for (const LinkId uplink : r.ecmp_links(tor, dst)) {
    const auto sport = repac.steer_onto(att.access[0], dst, base(0, 4 * 8), uplink);
    ASSERT_TRUE(sport.has_value());
    const Path p = repac.predict(
        att.access[0], dst,
        FiveTuple{.src_ip = att.nic.value(), .dst_ip = dst.value(), .src_port = *sport});
    EXPECT_NE(std::find(p.links.begin(), p.links.end(), uplink), p.links.end());
    ++steered;
  }
  EXPECT_EQ(steered, 4);  // tiny() has 4 uplink choices
}

TEST_F(RePaCTest, SteerOntoUnreachableLinkFails) {
  // A plane-1 uplink can never be reached from a plane-0 source port.
  const auto& att = c.nic_of(0);
  const NodeId dst = c.nic_of(4 * 8).nic;
  const auto plane1_uplinks = r.ecmp_links(att.tor[1], dst);
  ASSERT_FALSE(plane1_uplinks.empty());
  EXPECT_FALSE(
      repac.steer_onto(att.access[0], dst, base(0, 4 * 8), plane1_uplinks[0], 512)
          .has_value());
}

TEST_F(RePaCTest, SteerAwayFromCongestedLinks) {
  const auto& att = c.nic_of(0);
  const NodeId dst = c.nic_of(4 * 8).nic;
  // Declare the current path's fabric links congested; RePaC must find a
  // different one.
  const Path current = repac.predict(att.access[0], dst, base(0, 4 * 8));
  std::set<LinkId> avoid;
  for (const LinkId l : current.links) {
    if (c.topo.link(l).kind == topo::LinkKind::kFabric) avoid.insert(l);
  }
  ASSERT_FALSE(avoid.empty());
  const auto sport = repac.steer_away(att.access[0], dst, base(0, 4 * 8), avoid);
  ASSERT_TRUE(sport.has_value());
  const Path p = repac.predict(
      att.access[0], dst,
      FiveTuple{.src_ip = att.nic.value(), .dst_ip = dst.value(), .src_port = *sport});
  for (const LinkId l : p.links) EXPECT_EQ(avoid.count(l), 0u);
}

TEST_F(RePaCTest, SteerAwayImpossibleWhenAllPathsAvoided) {
  const auto& att = c.nic_of(0);
  const NodeId dst = c.nic_of(4 * 8).nic;
  // Avoid every uplink of the source ToR: nothing in this plane can work.
  std::set<LinkId> avoid;
  for (const LinkId l : r.ecmp_links(att.tor[0], dst)) avoid.insert(l);
  EXPECT_FALSE(repac.steer_away(att.access[0], dst, base(0, 4 * 8), avoid, 512).has_value());
}

TEST_F(RePaCTest, SearchBudgetBoundsWork) {
  // Table 1's point: the search space in HPN is the ToR fan-out, so finding
  // any given uplink takes only a handful of probes.
  const auto& att = c.nic_of(0);
  const NodeId dst = c.nic_of(4 * 8).nic;
  const auto uplinks = r.ecmp_links(att.tor[0], dst);
  for (const LinkId l : uplinks) {
    RePaC fresh{r};
    ASSERT_TRUE(fresh.steer_onto(att.access[0], dst, base(0, 4 * 8), l).has_value());
    EXPECT_LE(fresh.probes_used(), 64);
  }
}

}  // namespace
}  // namespace hpn::routing
