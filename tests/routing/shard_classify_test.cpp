#include "routing/shard_classify.h"

#include <gtest/gtest.h>

#include <vector>

#include "fabric/fabric.h"
#include "topo/partition.h"

namespace hpn::routing {
namespace {

TEST(ShardClassify, SingleShardPathsAreAllLocal) {
  const fabric::Fabric& f = fabric::fabric_or_throw("hpn");
  const topo::Cluster cluster = f.build(fabric::FabricScale{});
  const topo::Partition part = topo::partition_cluster(cluster, 1);
  Router router{cluster.topo, f.hash_policy()};
  const Path path = router.trace(cluster.nic_of(0).nic,
                                 cluster.nic_of(cluster.gpus_per_host).nic, {});
  ASSERT_TRUE(path.valid());
  const PathShardProfile profile = classify_path(part, cluster.topo, path);
  EXPECT_EQ(profile.home, 0);
  EXPECT_TRUE(profile.local());
}

TEST(ShardClassify, CrossingsMatchBoundaryLinksOnThePath) {
  const fabric::Fabric& f = fabric::fabric_or_throw("hpn");
  const topo::Cluster cluster = f.build(fabric::FabricScale{});
  const topo::Partition part = topo::partition_cluster(cluster, 4);
  Router router{cluster.topo, f.hash_policy()};
  std::vector<Path> paths;
  // Same-rail NIC pairs across hosts: a mix of segment-local (shard-local
  // after partitioning) and cross-segment (boundary-crossing) paths.
  const int gph = cluster.gpus_per_host;
  for (int src_host = 0; src_host < static_cast<int>(cluster.hosts.size());
       ++src_host) {
    const int dst_host = (src_host + 1) % static_cast<int>(cluster.hosts.size());
    FiveTuple ft;
    ft.src_ip = static_cast<std::uint32_t>(src_host);
    ft.dst_ip = static_cast<std::uint32_t>(dst_host);
    const Path p = router.trace(cluster.nic_of(src_host * gph).nic,
                                cluster.nic_of(dst_host * gph).nic, ft);
    if (p.valid()) paths.push_back(p);
  }
  ASSERT_FALSE(paths.empty());
  std::size_t expected_crossings = 0;
  for (const Path& p : paths) {
    const PathShardProfile profile = classify_path(part, cluster.topo, p);
    EXPECT_EQ(profile.home, part.shard_of_link(p.links.front()));
    std::size_t boundary_hops = 0;
    for (const LinkId l : p.links) boundary_hops += part.is_boundary(l) ? 1u : 0u;
    EXPECT_EQ(profile.crossings.size(), boundary_hops);
    for (const ShardCrossing& c : profile.crossings) {
      EXPECT_TRUE(part.is_boundary(c.link));
      EXPECT_EQ(c.from, part.shard_of_link(c.link));
      EXPECT_EQ(c.to, part.shard_of_node(cluster.topo.link(c.link).dst));
      EXPECT_NE(c.from, c.to);
    }
    expected_crossings += boundary_hops;
  }
  const ShardTrafficStats stats = classify_paths(part, cluster.topo, paths);
  EXPECT_EQ(stats.paths, paths.size());
  EXPECT_EQ(stats.crossings, expected_crossings);
  EXPECT_LE(stats.local_paths, stats.paths);
  EXPECT_GE(stats.local_fraction(), 0.0);
  EXPECT_LE(stats.local_fraction(), 1.0);
}

}  // namespace
}  // namespace hpn::routing
