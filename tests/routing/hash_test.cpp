#include "routing/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hpn::routing {
namespace {

TEST(Crc32, KnownVector) {
  // Standard IEEE CRC32 check value for "123456789".
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32({}), 0u);
}

TEST(HashTuple, Deterministic) {
  const FiveTuple ft{.src_ip = 1, .dst_ip = 2, .src_port = 100};
  EXPECT_EQ(hash_tuple(ft, 7), hash_tuple(ft, 7));
}

TEST(HashTuple, SeedSensitivity) {
  const FiveTuple ft{.src_ip = 1, .dst_ip = 2, .src_port = 100};
  EXPECT_NE(hash_tuple(ft, 7), hash_tuple(ft, 8));
}

TEST(HashTuple, SourcePortMovesHash) {
  // RePaC relies on the UDP source port steering the hash.
  FiveTuple a{.src_ip = 1, .dst_ip = 2, .src_port = 100};
  FiveTuple b = a;
  b.src_port = 101;
  EXPECT_NE(hash_tuple(a, 7), hash_tuple(b, 7));
}

TEST(SeedPolicy, IdenticalSeedsEverywhere) {
  EcmpHasher h{HashConfig{.seeds = SeedPolicy::kIdentical}};
  EXPECT_EQ(h.seed_for(NodeId{1}), h.seed_for(NodeId{999}));
}

TEST(SeedPolicy, VendorFamilyHasFourVariants) {
  EcmpHasher h{HashConfig{.seeds = SeedPolicy::kVendorFamily}};
  std::set<std::uint32_t> seeds;
  for (std::uint32_t i = 0; i < 100; ++i) seeds.insert(h.seed_for(NodeId{i}));
  EXPECT_EQ(seeds.size(), 4u);
}

TEST(SeedPolicy, PerSwitchSeedsDistinct) {
  EcmpHasher h{HashConfig{.seeds = SeedPolicy::kPerSwitch}};
  std::set<std::uint32_t> seeds;
  for (std::uint32_t i = 0; i < 100; ++i) seeds.insert(h.seed_for(NodeId{i}));
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(EcmpHasher, SelectWithinRange) {
  EcmpHasher h;
  for (std::uint32_t ip = 0; ip < 100; ++ip) {
    const FiveTuple ft{.src_ip = ip, .dst_ip = 1};
    EXPECT_LT(h.select(ft, NodeId{1}, 7), 7u);
  }
}

TEST(EcmpHasher, SingleCandidateAlwaysZero) {
  EcmpHasher h;
  EXPECT_EQ(h.select(FiveTuple{}, NodeId{1}, 1), 0u);
}

TEST(EcmpHasher, IdenticalSeedsPolarize) {
  // The §2.2 cascade: with identical seeds, a flow's choice at a second
  // switch is fully determined by its choice at the first when candidate
  // counts share a divisor. n1=60, n2=2: idx2 == idx1 % 2 for every flow.
  EcmpHasher h{HashConfig{.seeds = SeedPolicy::kIdentical}};
  for (std::uint32_t ip = 0; ip < 500; ++ip) {
    const FiveTuple ft{.src_ip = ip, .dst_ip = 9, .src_port = static_cast<std::uint16_t>(ip)};
    const std::size_t first = h.select(ft, NodeId{1}, 60);
    const std::size_t second = h.select(ft, NodeId{2}, 2);
    EXPECT_EQ(second, first % 2);
  }
}

TEST(EcmpHasher, PerSwitchSeedsDecorrelate) {
  EcmpHasher h{HashConfig{.seeds = SeedPolicy::kPerSwitch}};
  int match = 0;
  const int n = 2000;
  for (std::uint32_t ip = 0; ip < static_cast<std::uint32_t>(n); ++ip) {
    const FiveTuple ft{.src_ip = ip, .dst_ip = 9, .src_port = static_cast<std::uint16_t>(ip)};
    match += h.select(ft, NodeId{1}, 60) % 2 == h.select(ft, NodeId{2}, 2);
  }
  // Independent hashes agree ~50% of the time.
  EXPECT_NEAR(static_cast<double>(match) / n, 0.5, 0.05);
}

TEST(EcmpHasher, PerPortCoreIgnoresFiveTuple) {
  EcmpHasher h{HashConfig{.per_port_at_core = true}};
  const FiveTuple a{.src_ip = 1, .dst_ip = 42, .src_port = 10};
  const FiveTuple b{.src_ip = 2, .dst_ip = 42, .src_port = 999};
  for (std::uint16_t port = 0; port < 32; ++port) {
    EXPECT_EQ(h.select_at_core(a, NodeId{5}, port, 8), h.select_at_core(b, NodeId{5}, port, 8));
  }
}

TEST(EcmpHasher, PerPortCoreSpreadsAcrossPorts) {
  EcmpHasher h{HashConfig{.per_port_at_core = true}};
  const FiveTuple ft{.src_ip = 1, .dst_ip = 42};
  std::set<std::size_t> picks;
  for (std::uint16_t port = 0; port < 64; ++port) {
    picks.insert(h.select_at_core(ft, NodeId{5}, port, 8));
  }
  EXPECT_EQ(picks.size(), 8u);  // all egress choices reachable
}

TEST(EcmpHasher, PerPortCoreOffFallsBackToTupleHash) {
  EcmpHasher h{HashConfig{.per_port_at_core = false}};
  const FiveTuple ft{.src_ip = 1, .dst_ip = 42};
  EXPECT_EQ(h.select_at_core(ft, NodeId{5}, 3, 8), h.select(ft, NodeId{5}, 8));
}

}  // namespace
}  // namespace hpn::routing
