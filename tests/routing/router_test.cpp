#include "routing/router.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/builders.h"

namespace hpn::routing {
namespace {

using topo::Cluster;
using topo::HpnConfig;
using topo::LinkKind;
using topo::NodeKind;

FiveTuple tuple_for(const Cluster& c, int src_rank, int dst_rank, std::uint16_t sport = 1000) {
  return FiveTuple{.src_ip = c.nic_of(src_rank).nic.value(),
                   .dst_ip = c.nic_of(dst_rank).nic.value(),
                   .src_port = sport};
}

class RouterHpnTest : public ::testing::Test {
 protected:
  Cluster c = topo::build_hpn(HpnConfig::tiny());
  Router r{c.topo};
};

TEST_F(RouterHpnTest, SameRailSameSegmentIsTwoHops) {
  // h0 rail0 -> h1 rail0: NIC -> ToR -> NIC.
  const NodeId src = c.nic_of(0 * 8 + 0).nic;
  const NodeId dst = c.nic_of(1 * 8 + 0).nic;
  EXPECT_EQ(r.distance(src, dst), 2);
}

TEST_F(RouterHpnTest, CrossSegmentSameRailIsFourHops) {
  // Segment 0 host 0 -> segment 1 host 4: NIC -> ToR -> Agg -> ToR -> NIC.
  const NodeId src = c.nic_of(0 * 8 + 0).nic;
  const NodeId dst = c.nic_of(4 * 8 + 0).nic;
  EXPECT_EQ(r.distance(src, dst), 4);
}

TEST_F(RouterHpnTest, NicEcmpGroupIsTheDualTorBond) {
  const NodeId src = c.nic_of(0).nic;
  const NodeId dst = c.nic_of(8).nic;
  const auto group = r.ecmp_links(src, dst);
  ASSERT_EQ(group.size(), 2u);
  for (const LinkId l : group) {
    EXPECT_EQ(c.topo.link(l).kind, LinkKind::kAccess);
  }
}

TEST_F(RouterHpnTest, EndpointsDoNotTransit) {
  // Cross-rail NICs on the same host must not be "2 hops via the GPU":
  // the network path crosses ToR -> Agg -> ToR.
  const NodeId nic_r0 = c.nic_of(0).nic;
  const NodeId nic_r1 = c.nic_of(1).nic;
  EXPECT_EQ(r.distance(nic_r0, nic_r1), 4);
}

TEST_F(RouterHpnTest, TraceReachesDestination) {
  const NodeId src = c.nic_of(0).nic;
  const NodeId dst = c.nic_of(4 * 8).nic;
  const Path p = r.trace(src, dst, tuple_for(c, 0, 4 * 8));
  ASSERT_TRUE(p.valid());
  EXPECT_EQ(p.hops(), 4u);
  EXPECT_EQ(c.topo.link(p.links.back()).dst, dst);
  // Consecutive links chain.
  for (std::size_t i = 1; i < p.links.size(); ++i) {
    EXPECT_EQ(c.topo.link(p.links[i - 1]).dst, c.topo.link(p.links[i]).src);
  }
}

TEST_F(RouterHpnTest, DualPlanePinsThePath) {
  // Once the NIC picks port p, every fabric hop stays in plane p (§6.1:
  // "once a flow enters one of the uplinks in the ToR, its forwarding path
  // inside the Pod is completely determined" — plane-wise).
  for (int plane = 0; plane < 2; ++plane) {
    const auto& att = c.nic_of(0);
    const NodeId dst = c.nic_of(4 * 8).nic;
    for (std::uint16_t sport = 0; sport < 50; ++sport) {
      const Path p =
          r.trace_via(att.access[static_cast<std::size_t>(plane)], dst, tuple_for(c, 0, 32, sport));
      ASSERT_TRUE(p.valid());
      for (const LinkId l : p.links) {
        const auto& link = c.topo.link(l);
        const auto& src_n = c.topo.node(link.src);
        const auto& dst_n = c.topo.node(link.dst);
        if (src_n.kind == NodeKind::kTor || src_n.kind == NodeKind::kAgg) {
          EXPECT_EQ(src_n.loc.plane, plane);
        }
        if (dst_n.kind == NodeKind::kTor || dst_n.kind == NodeKind::kAgg) {
          EXPECT_EQ(dst_n.loc.plane, plane);
        }
      }
    }
  }
}

TEST_F(RouterHpnTest, DualPlaneDeterministicDownstream) {
  // In dual-plane there is exactly one same-plane ToR serving the dst NIC,
  // so the Agg has no downstream hash choice — the Fig 13b evenness.
  const NodeId dst = c.nic_of(4 * 8).nic;
  const NodeId agg = c.aggs.front();
  const auto group = r.ecmp_links(agg, dst);
  EXPECT_EQ(group.size(), 1u);
}

TEST_F(RouterHpnTest, FailedAccessLinkConvergesToOtherTor) {
  const auto& att = c.nic_of(8);  // dst NIC (rank 8 = host1 rail0)
  const NodeId src = c.nic_of(0).nic;
  const NodeId dst = att.nic;
  // Kill port 0's access cable (both directions).
  c.topo.set_duplex_up(att.access[0], false);
  r.invalidate();
  EXPECT_EQ(r.distance(src, dst), 2);  // still reachable via plane 1
  for (std::uint16_t sport = 0; sport < 20; ++sport) {
    const Path p = r.trace(src, dst, tuple_for(c, 0, 8, sport));
    ASSERT_TRUE(p.valid());
    EXPECT_EQ(c.topo.link(p.links.back()).src, att.tor[1]);
  }
}

TEST_F(RouterHpnTest, IsolationWhenBothAccessLinksFail) {
  const auto& att = c.nic_of(8);
  c.topo.set_duplex_up(att.access[0], false);
  c.topo.set_duplex_up(att.access[1], false);
  r.invalidate();
  EXPECT_EQ(r.distance(c.nic_of(0).nic, att.nic), -1);
  EXPECT_FALSE(r.trace(c.nic_of(0).nic, att.nic, tuple_for(c, 0, 8)).valid());
}

TEST_F(RouterHpnTest, InvalidateBumpsEpochAndClearsCache) {
  (void)r.distance(c.nic_of(0).nic, c.nic_of(8).nic);
  EXPECT_GT(r.cached_destinations(), 0u);
  const auto e0 = r.epoch();
  r.invalidate();
  EXPECT_EQ(r.cached_destinations(), 0u);
  EXPECT_EQ(r.epoch(), e0 + 1);
}

TEST_F(RouterHpnTest, TraceViaDownFirstHopFails) {
  const auto& att = c.nic_of(0);
  c.topo.set_link_up(att.access[0], false);
  r.invalidate();
  EXPECT_FALSE(r.trace_via(att.access[0], c.nic_of(8).nic, tuple_for(c, 0, 8)).valid());
}

TEST(RouterMultiPod, CrossPodIsSixHops) {
  auto cfg = HpnConfig::tiny();
  cfg.pods = 2;
  Cluster c = topo::build_hpn(cfg);
  Router r{c.topo};
  const int ranks_per_pod = 2 * 4 * 8;  // 2 segments x 4 hosts x 8 rails
  const NodeId src = c.nic_of(0).nic;
  const NodeId dst = c.nic_of(ranks_per_pod).nic;
  // NIC -> ToR -> Agg -> Core -> Agg -> ToR -> NIC.
  EXPECT_EQ(r.distance(src, dst), 6);
  const Path p = r.trace(src, dst, FiveTuple{.src_ip = 1, .dst_ip = 2, .src_port = 3});
  ASSERT_TRUE(p.valid());
  bool crossed_core = false;
  for (const LinkId l : p.links) {
    crossed_core |= c.topo.node(c.topo.link(l).src).kind == NodeKind::kCore;
  }
  EXPECT_TRUE(crossed_core);
}

TEST(RouterDcn, IntraSegmentTwoHops) {
  Cluster c = topo::build_dcn_plus(topo::DcnPlusConfig::paper_pod());
  Router r{c.topo};
  EXPECT_EQ(r.distance(c.nic_of(0).nic, c.nic_of(8).nic), 2);
  // Cross-segment goes through Agg.
  EXPECT_EQ(r.distance(c.nic_of(0).nic, c.nic_of(16 * 8).nic), 4);
}

TEST(RouterDcn, CrossRailSameTorPair) {
  // DCN+ is not rail-optimized: cross-rail hosts still meet at the ToR.
  Cluster c = topo::build_dcn_plus(topo::DcnPlusConfig::paper_pod());
  Router r{c.topo};
  EXPECT_EQ(r.distance(c.nic_of(0).nic, c.nic_of(8 + 3).nic), 2);
}

TEST(RouterFatTree, HostDistances) {
  Cluster c = topo::build_fat_tree(topo::FatTreeConfig{.k = 4});
  Router r{c.topo};
  // Same edge switch: 2; same pod: 4; cross pod: 6.
  EXPECT_EQ(r.distance(c.nic_of(0).nic, c.nic_of(1).nic), 2);
  EXPECT_EQ(r.distance(c.nic_of(0).nic, c.nic_of(2).nic), 4);
  EXPECT_EQ(r.distance(c.nic_of(0).nic, c.nic_of(4).nic), 6);
}

}  // namespace
}  // namespace hpn::routing
