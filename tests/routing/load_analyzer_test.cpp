#include "routing/load_analyzer.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/builders.h"

namespace hpn::routing {
namespace {

using topo::Cluster;
using topo::LinkKind;
using topo::NodeKind;

std::vector<FlowSpec> cross_pod_flows(const Cluster& c, int n, int ranks_per_pod) {
  std::vector<FlowSpec> flows;
  for (int i = 0; i < n; ++i) {
    const int src_rank = i % ranks_per_pod;
    const int dst_rank = ranks_per_pod + i % ranks_per_pod;
    flows.push_back(FlowSpec{
        .src = c.nic_of(src_rank).nic,
        .dst = c.nic_of(dst_rank).nic,
        .tuple = FiveTuple{.src_ip = c.nic_of(src_rank).nic.value(),
                           .dst_ip = c.nic_of(dst_rank).nic.value(),
                           .src_port = static_cast<std::uint16_t>(1000 + i)},
        .weight = 1.0});
  }
  return flows;
}

TEST(LoadAnalyzer, AccumulatesPerLink) {
  Cluster c = topo::build_hpn(topo::HpnConfig::tiny());
  Router r{c.topo};
  LoadAnalyzer la{r};
  std::vector<FlowSpec> flows{{.src = c.nic_of(0).nic,
                               .dst = c.nic_of(8).nic,
                               .tuple = FiveTuple{.src_ip = 1, .dst_ip = 2, .src_port = 3},
                               .weight = 2.0}};
  la.run(flows);
  EXPECT_EQ(la.unroutable(), 0);
  // 2-hop path => 2 loaded links, each with weight 2.
  EXPECT_EQ(la.loads().size(), 2u);
  for (const auto& [lid, ll] : la.loads()) {
    EXPECT_DOUBLE_EQ(ll.load, 2.0);
    EXPECT_EQ(ll.flow_count, 1);
  }
}

TEST(LoadAnalyzer, CountsUnroutable) {
  Cluster c = topo::build_hpn(topo::HpnConfig::tiny());
  const auto& att = c.nic_of(8);
  c.topo.set_duplex_up(att.access[0], false);
  c.topo.set_duplex_up(att.access[1], false);
  Router r{c.topo};
  LoadAnalyzer la{r};
  la.run({{.src = c.nic_of(0).nic, .dst = att.nic, .tuple = {}, .weight = 1.0}});
  EXPECT_EQ(la.unroutable(), 1);
  EXPECT_TRUE(la.loads().empty());
}

TEST(LoadAnalyzer, ImbalanceMetric) {
  std::vector<LinkLoad> loads{{LinkId{0}, 3.0, 3}, {LinkId{1}, 1.0, 1}};
  // 4 candidates, mean over candidates = 1.0, peak 3.0.
  EXPECT_DOUBLE_EQ(LoadAnalyzer::imbalance(loads, 4), 3.0);
  // Perfectly even over 2: imbalance 1.
  std::vector<LinkLoad> even{{LinkId{0}, 2.0, 2}, {LinkId{1}, 2.0, 2}};
  EXPECT_DOUBLE_EQ(LoadAnalyzer::imbalance(even, 2), 1.0);
}

TEST(LoadAnalyzer, EntropyMetric) {
  std::vector<LinkLoad> even{{LinkId{0}, 1.0, 1}, {LinkId{1}, 1.0, 1}};
  EXPECT_NEAR(LoadAnalyzer::effective_entropy(even, 2), 1.0, 1e-12);
  std::vector<LinkLoad> collapsed{{LinkId{0}, 2.0, 2}};
  EXPECT_NEAR(LoadAnalyzer::effective_entropy(collapsed, 2), 0.0, 1e-12);
}

// The paper's core claim at the routing level: cascaded identical hashes
// collapse path diversity in a 3-tier Clos; independent seeds restore it.
TEST(LoadAnalyzer, CascadedHashPolarizationInDcnPlus) {
  topo::DcnPlusConfig cfg;
  cfg.pods = 2;
  const Cluster c = topo::build_dcn_plus(cfg);
  const int ranks_per_pod = 4 * 16 * 8;

  auto used_core_links = [&](SeedPolicy policy) {
    Router r{c.topo, HashConfig{.seeds = policy}};
    LoadAnalyzer la{r};
    la.run(cross_pod_flows(c, 512, ranks_per_pod));
    EXPECT_EQ(la.unroutable(), 0);
    return la.loads_on(LinkKind::kFabric, NodeKind::kAgg).size();  // Agg->Core
  };

  const auto polarized = used_core_links(SeedPolicy::kIdentical);
  const auto spread = used_core_links(SeedPolicy::kPerSwitch);
  // Identical seeds must use strictly fewer distinct Agg->Core links.
  EXPECT_LT(static_cast<double>(polarized), 0.6 * static_cast<double>(spread))
      << "polarized=" << polarized << " spread=" << spread;
}

TEST(LoadAnalyzer, DualPlaneAvoidsDownstreamHashEntirely) {
  // In HPN dual-plane, the Agg -> dst-ToR choice is singular, so the load
  // on the two ToR->NIC ports is exactly the host's port split, independent
  // of seed policy (Fig 13b evenness by construction).
  auto cfg = topo::HpnConfig::tiny();
  const Cluster c = topo::build_hpn(cfg);
  Router r{c.topo, HashConfig{.seeds = SeedPolicy::kIdentical}};

  // 32 flows from segment-0 hosts to one segment-1 NIC, alternating the
  // source port (plane) as the ccl layer would.
  const int dst_rank = 4 * 8;
  std::vector<FlowSpec> flows;
  std::vector<Path> paths;
  LoadAnalyzer la{r};
  int plane0 = 0, plane1 = 0;
  for (int i = 0; i < 32; ++i) {
    const int src_rank = (i % 4) * 8;  // hosts 0..3, rail 0
    const auto& att = c.nic_of(src_rank);
    const FiveTuple ft{.src_ip = att.nic.value(),
                       .dst_ip = c.nic_of(dst_rank).nic.value(),
                       .src_port = static_cast<std::uint16_t>(i)};
    const Path p = r.trace_via(att.access[static_cast<std::size_t>(i % 2)],
                               c.nic_of(dst_rank).nic, ft);
    ASSERT_TRUE(p.valid());
    const auto& last = c.topo.link(p.links.back());
    (c.topo.node(last.src).loc.plane == 0 ? plane0 : plane1) += 1;
  }
  EXPECT_EQ(plane0, 16);
  EXPECT_EQ(plane1, 16);
}

}  // namespace
}  // namespace hpn::routing
