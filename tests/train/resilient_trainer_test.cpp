#include "train/resilient_trainer.h"

#include <gtest/gtest.h>

#include "ctrl/fabric_controller.h"
#include "topo/builders.h"
#include "topo/frontend.h"

namespace hpn::train {
namespace {

using topo::Cluster;
using topo::HpnConfig;

struct Rig {
  Cluster c;
  sim::Simulator s;
  flowsim::FlowSession fs;
  routing::Router r;
  ccl::ConnectionManager cm;

  explicit Rig(bool dual_tor = true)
      : c{[&] {
          auto cfg = HpnConfig::tiny();
          cfg.segments_per_pod = 1;
          cfg.hosts_per_segment = 8;
          cfg.dual_tor = dual_tor;
          return topo::build_hpn(cfg);
        }()},
        fs{c.topo, s},
        r{c.topo},
        cm{c, r} {}
};

workload::ModelPreset quick_model() {
  auto m = workload::llama_7b();
  m.compute_per_iteration = Duration::millis(100);
  return m;
}

fault::CheckpointPolicy quick_policy() {
  fault::CheckpointPolicy p;
  p.interval = Duration::seconds(2.0);
  p.write_time = Duration::millis(200);
  p.restart_time = Duration::seconds(1.0);
  p.per_gpu = DataSize::gigabytes(1.0);
  return p;
}

TEST(ResilientTrainer, CleanRunCheckpointsOnSchedule) {
  Rig rig;
  const auto plan = workload::ParallelismPlanner{rig.c}.plan(8, 1, 8);
  ResilientTrainer trainer{rig.c, rig.s,  rig.fs, rig.cm, rig.r,
                           plan,  quick_model(), quick_policy()};
  const auto report = trainer.run_for(Duration::seconds(10.0));
  EXPECT_EQ(report.crashes, 0);
  EXPECT_GE(report.checkpoints, 3);  // every ~2s over 10s
  EXPECT_GT(report.iterations_kept, 40);
  EXPECT_GT(report.goodput(), 0.7);
  EXPECT_LT(report.goodput(), 1.0);  // checkpoints cost something
  EXPECT_EQ(report.iterations_lost, 0);
}

TEST(ResilientTrainer, ShorterIntervalLowersGoodput) {
  auto run_with_interval = [](Duration interval) {
    Rig rig;
    const auto plan = workload::ParallelismPlanner{rig.c}.plan(8, 1, 8);
    auto policy = quick_policy();
    policy.interval = interval;
    ResilientTrainer trainer{rig.c, rig.s,  rig.fs, rig.cm, rig.r,
                             plan,  quick_model(), policy};
    return trainer.run_for(Duration::seconds(10.0)).goodput();
  };
  EXPECT_GT(run_with_interval(Duration::seconds(4.0)),
            run_with_interval(Duration::seconds(1.0)));
}

TEST(ResilientTrainer, CrashRollsBackAndRecovers) {
  Rig rig{/*dual_tor=*/false};  // single-ToR: a failure can crash the job
  const auto plan = workload::ParallelismPlanner{rig.c}.plan(8, 1, 8);
  ctrl::FabricController fabric{rig.c, rig.s, rig.r};
  TrainOptions opts;
  opts.comm_timeout = Duration::seconds(1.0);

  // Fail at 4s; repair at 7s — past the timeout, so the job crashes,
  // restarts from its last checkpoint and finishes the budget.
  rig.s.schedule_after(Duration::seconds(4.0), [&] { fabric.fail_access(plan.hosts[1], 0, 0); });
  rig.s.schedule_after(Duration::seconds(7.0), [&] { fabric.repair_access(plan.hosts[1], 0, 0); });

  ResilientTrainer trainer{rig.c, rig.s,  rig.fs, rig.cm, rig.r,
                           plan,  quick_model(), quick_policy(), {}, opts};
  const auto report = trainer.run_for(Duration::seconds(20.0));
  EXPECT_GE(report.crashes, 1);
  EXPECT_GT(report.iterations_lost, 0);
  EXPECT_GT(report.rolled_back, Duration::zero());
  EXPECT_GT(report.restart_downtime, Duration::zero());
  // Despite the crash, the run resumes and retains most progress.
  EXPECT_GT(report.iterations_kept, 30);
  EXPECT_GT(report.goodput(), 0.3);
  EXPECT_LT(report.goodput(), 0.95);
}

TEST(ResilientTrainer, DualTorAvoidsTheCrashEntirely) {
  Rig rig{/*dual_tor=*/true};
  const auto plan = workload::ParallelismPlanner{rig.c}.plan(8, 1, 8);
  ctrl::FabricController fabric{rig.c, rig.s, rig.r};
  TrainOptions opts;
  opts.comm_timeout = Duration::seconds(1.0);

  rig.s.schedule_after(Duration::seconds(4.0), [&] { fabric.fail_access(plan.hosts[1], 0, 0); });
  rig.s.schedule_after(Duration::seconds(7.0), [&] { fabric.repair_access(plan.hosts[1], 0, 0); });

  ResilientTrainer trainer{rig.c, rig.s,  rig.fs, rig.cm, rig.r,
                           plan,  quick_model(), quick_policy(), {}, opts};
  // Keep in-flight traffic steered (the controller notifies).
  // (ResilientTrainer recreates jobs; the subscription targets whatever the
  // live connections are, which the ConnectionManager mediates.)
  const auto report = trainer.run_for(Duration::seconds(20.0));
  EXPECT_EQ(report.crashes, 0);
  EXPECT_EQ(report.iterations_lost, 0);
}

TEST(ResilientTrainer, CheckpointsThroughRealStorage) {
  Rig rig;
  const auto storage = topo::attach_frontend(rig.c);
  const auto plan = workload::ParallelismPlanner{rig.c}.plan(8, 1, 8);
  auto policy = quick_policy();
  ResilientTrainer trainer{rig.c, rig.s,  rig.fs,       rig.cm, rig.r, plan,
                           quick_model(), policy, storage};
  const auto report = trainer.run_for(Duration::seconds(8.0));
  EXPECT_GE(report.checkpoints, 2);
  // Writing 8GB/host through the frontend takes real simulated time.
  EXPECT_GT(report.checkpoint_overhead, Duration::millis(100));
}

}  // namespace
}  // namespace hpn::train
