#include "train/training_job.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace hpn::train {
namespace {

using topo::Cluster;
using topo::HpnConfig;

struct Rig {
  Cluster c;
  sim::Simulator s;
  flowsim::FlowSession fs;
  routing::Router r;
  ccl::ConnectionManager cm;

  explicit Rig(HpnConfig cfg = HpnConfig::tiny())
      : c{topo::build_hpn(cfg)}, fs{c.topo, s}, r{c.topo}, cm{c, r} {}
};

workload::ModelPreset fast_model() {
  // Shrunk model so tests run in milliseconds of simulated time.
  workload::ModelPreset m = workload::llama_7b();
  m.compute_per_iteration = Duration::millis(50);
  m.traffic.dp_all_reduce = DataSize::megabytes(32);
  m.traffic.tp_all_reduce = DataSize::megabytes(16);
  return m;
}

TEST(TrainingJob, IterationsCompleteAndRecordThroughput) {
  Rig rig;
  const auto plan = workload::ParallelismPlanner{rig.c}.plan(8, 2, 2);
  TrainingJob job{rig.c, rig.s, rig.fs, rig.cm, plan, fast_model()};
  const int done = job.run_iterations(3);
  EXPECT_EQ(done, 3);
  EXPECT_EQ(job.state(), JobState::kRunning);
  EXPECT_EQ(job.throughput().size(), 3u);
  EXPECT_GT(job.steady_samples_per_sec(), 0.0);
}

TEST(TrainingJob, IterationTimeAtLeastCompute) {
  Rig rig;
  const auto plan = workload::ParallelismPlanner{rig.c}.plan(8, 1, 2);
  const auto model = fast_model();
  TrainingJob job{rig.c, rig.s, rig.fs, rig.cm, plan, model};
  job.run_iterations(1);
  const double samples_per_s = job.throughput().points()[0].value;
  const double iter_s = plan.world_size() / samples_per_s;
  EXPECT_GE(iter_s, model.compute_per_iteration.as_seconds());
}

TEST(TrainingJob, MoreDpTrafficIsSlower) {
  Rig a;
  const auto plan_a = workload::ParallelismPlanner{a.c}.plan(8, 1, 4);
  auto light = fast_model();
  TrainingJob job_a{a.c, a.s, a.fs, a.cm, plan_a, light};
  job_a.run_iterations(2);

  Rig b;
  const auto plan_b = workload::ParallelismPlanner{b.c}.plan(8, 1, 4);
  auto heavy = fast_model();
  heavy.traffic.dp_all_reduce = DataSize::gigabytes(4.0);
  TrainingJob job_b{b.c, b.s, b.fs, b.cm, plan_b, heavy};
  job_b.run_iterations(2);

  EXPECT_GT(job_a.steady_samples_per_sec(), job_b.steady_samples_per_sec());
}

TEST(TrainingJob, DualTorSurvivesSingleLinkFailure) {
  Rig rig;
  const auto plan = workload::ParallelismPlanner{rig.c}.plan(8, 2, 2);
  ctrl::FabricController fabric{rig.c, rig.s, rig.r, {}};
  TrainingJob job{rig.c, rig.s, rig.fs, rig.cm, plan, fast_model()};
  job.run_iterations(1);
  const double before = job.steady_samples_per_sec(1);

  fabric.fail_access(plan.hosts[0], 0, 0);
  job.on_fabric_change();
  const int done = job.run_iterations(2);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(job.state(), JobState::kRunning);
  const double after = job.steady_samples_per_sec(1);
  // Degraded (one of 16 ports gone) but nowhere near halted.
  EXPECT_GT(after, before * 0.6);
}

TEST(TrainingJob, SingleTorLinkFailureCrashesAfterTimeout) {
  auto cfg = HpnConfig::tiny();
  cfg.dual_tor = false;
  Rig rig{cfg};
  const auto plan = workload::ParallelismPlanner{rig.c}.plan(8, 2, 2);
  ctrl::FabricController fabric{rig.c, rig.s, rig.r, {}};
  TrainOptions opts;
  opts.comm_timeout = Duration::seconds(2.0);  // short NCCL timeout for test
  TrainingJob job{rig.c, rig.s, rig.fs, rig.cm, plan, fast_model(), opts};
  job.run_iterations(1);
  ASSERT_EQ(job.state(), JobState::kRunning);

  fabric.fail_access(plan.hosts[0], 0, 0);  // the rail's only port
  job.on_fabric_change();
  job.run_iterations(2);
  EXPECT_EQ(job.state(), JobState::kCrashed);
}

TEST(TrainingJob, SingleTorRecoversIfRepairedBeforeTimeout) {
  auto cfg = HpnConfig::tiny();
  cfg.dual_tor = false;
  Rig rig{cfg};
  const auto plan = workload::ParallelismPlanner{rig.c}.plan(8, 2, 2);
  ctrl::FabricController fabric{rig.c, rig.s, rig.r, {}};
  TrainOptions opts;
  opts.comm_timeout = Duration::seconds(30.0);
  TrainingJob job{rig.c, rig.s, rig.fs, rig.cm, plan, fast_model(), opts};
  job.run_iterations(1);

  // Fail, then auto-repair well inside the timeout.
  fabric.flap_access(plan.hosts[0], 0, 0, Duration::seconds(1.0));
  job.on_fabric_change();
  const int done = job.run_iterations(2);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(job.state(), JobState::kRunning);
}

}  // namespace
}  // namespace hpn::train
// --- MoE training (§10) -------------------------------------------------------
namespace hpn::train {
namespace {

TEST(TrainingJobMoe, ExpertAllToAllRunsPerIteration) {
  Rig rig;
  const auto plan = workload::ParallelismPlanner{rig.c}.plan(8, 1, 4);
  auto model = workload::moe_8x7b();
  model.compute_per_iteration = Duration::millis(80);
  model.traffic.dp_all_reduce = DataSize::megabytes(16);
  TrainingJob job{rig.c, rig.s, rig.fs, rig.cm, plan, model};
  EXPECT_EQ(job.run_iterations(3), 3);
  EXPECT_EQ(job.state(), JobState::kRunning);
  // MoE AllToAll adds exposed communication beyond the dense equivalent.
  Rig rig2;
  const auto plan2 = workload::ParallelismPlanner{rig2.c}.plan(8, 1, 4);
  auto dense = model;
  dense.traffic.moe_all_to_all = DataSize::zero();
  TrainingJob dense_job{rig2.c, rig2.s, rig2.fs, rig2.cm, plan2, dense};
  dense_job.run_iterations(3);
  EXPECT_GT(dense_job.steady_samples_per_sec(2), job.steady_samples_per_sec(2));
}

TEST(TrainingJobMoe, WorksOnRailOnlyViaHostRelay) {
  auto cfg = topo::HpnConfig::tiny();
  cfg.rail_only_tier2 = true;
  topo::Cluster c = topo::build_hpn(cfg);
  sim::Simulator s;
  flowsim::FlowSession fs{c.topo, s};
  routing::Router r{c.topo};
  ccl::ConnectionManager cm{c, r};
  const auto plan = workload::ParallelismPlanner{c}.plan(8, 1, 4);
  auto model = workload::moe_8x7b();
  model.compute_per_iteration = Duration::millis(80);
  model.traffic.dp_all_reduce = DataSize::megabytes(16);
  TrainingJob job{c, s, fs, cm, plan, model};
  EXPECT_EQ(job.run_iterations(2), 2) << "PXN relay keeps MoE alive on rail-only";
}

}  // namespace
}  // namespace hpn::train
