// QueryEngine semantics: the warm-start equivalence battery (warm answers
// bit-equal to cold re-runs across every fabric kind), batch dedup (one
// compute, two replies), result-cache hits/eviction under a byte cap, and
// canonicalized cache keying (textual variants collide).
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "scenario/scenario.h"
#include "serve/serve.h"

namespace hpn::serve {
namespace {

using fuzz::Scenario;
using fuzz::TopologyKind;

/// A small but non-trivial scenario on the given fabric: cross-section
/// flows plus one permanent planning fault and one flap.
Scenario make_scenario(TopologyKind kind, std::uint32_t size, std::uint32_t wiring) {
  Scenario s;
  s.seed = 7;
  s.topology = kind;
  s.size_knob = size;
  s.wiring = wiring;
  for (std::uint32_t i = 0; i < 6; ++i) {
    s.flows.push_back({i, i + 3, 1 << 20, 50.0 + i});
  }
  s.faults.push_back({fuzz::ScenarioFault::Kind::kLinkFail, 1'000'000, 1, 0});
  s.faults.push_back({fuzz::ScenarioFault::Kind::kLinkFlap, 2'000'000, 2, 500'000});
  return s;
}

QueryRequest make_query(const Scenario& s, QueryRequest::Verb verb,
                        std::uint32_t arg0 = 0, double arg1 = 0.0) {
  QueryRequest q;
  q.verb = verb;
  q.arg0 = arg0;
  q.arg1 = arg1;
  q.scenario = s;
  return q;
}

/// Every materializable fabric kind the scenario format can name.
const std::vector<std::pair<TopologyKind, std::pair<std::uint32_t, std::uint32_t>>>&
fabric_zoo() {
  static const std::vector<
      std::pair<TopologyKind, std::pair<std::uint32_t, std::uint32_t>>>
      kZoo = {
          {TopologyKind::kTinyClos, {2, 2}},  {TopologyKind::kHpnSegment, {2, 0}},
          {TopologyKind::kDcnPlus, {2, 0}},   {TopologyKind::kFatTree, {4, 0}},
          {TopologyKind::kRailOnly, {4, 0}},  {TopologyKind::kRailX, {2, 2}},
          {TopologyKind::kUbMesh, {2, 0}},    {TopologyKind::kHpnPod, {4, 2}},
      };
  return kZoo;
}

TEST(QueryEngine, WarmAnswersBitEqualColdAcrossAllFabrics) {
  for (const auto& [kind, knobs] : fabric_zoo()) {
    const Scenario s = make_scenario(kind, knobs.first, knobs.second);
    const std::vector<QueryRequest> queries = {
        make_query(s, QueryRequest::Verb::kRun),
        make_query(s, QueryRequest::Verb::kKillLink, 3),
        make_query(s, QueryRequest::Verb::kAddJob, 4, 40.0),
        make_query(s, QueryRequest::Verb::kResize, s.size_knob + 1),
    };
    // Warm engine: one batch builds the base, later batches re-use it.
    QueryEngine warm_engine;
    const Answer seed_answer = warm_engine.answer({queries[0]})[0];
    ASSERT_TRUE(seed_answer.ok) << to_string(kind) << ": " << seed_answer.error;
    for (const QueryRequest& q : queries) {
      // Cold engine: a fresh process answering exactly one query.
      QueryEngine cold_engine;
      const Answer cold = cold_engine.answer({q})[0];
      const Answer warm = warm_engine.answer({q})[0];
      ASSERT_TRUE(cold.ok) << to_string(kind) << ": " << cold.error;
      ASSERT_TRUE(warm.ok) << to_string(kind) << ": " << warm.error;
      EXPECT_EQ(cold.base_hash, warm.base_hash);
      // Bit-equal: QueryResult::operator== compares every double exactly.
      EXPECT_EQ(cold.result, warm.result)
          << to_string(kind) << " verb " << static_cast<int>(q.verb);
      // And byte-equal on the wire (what the daemon actually replies with).
      EXPECT_EQ(encode_result(cold.result), encode_result(warm.result));
    }
    EXPECT_GT(warm_engine.stats().warm_evals, 0u) << to_string(kind);
  }
}

TEST(QueryEngine, RepeatedQueryIsACacheHitWithIdenticalPayload) {
  const Scenario s = make_scenario(TopologyKind::kTinyClos, 2, 2);
  QueryEngine engine;
  const Answer first = engine.answer({make_query(s, QueryRequest::Verb::kKillLink, 1)})[0];
  const Answer again = engine.answer({make_query(s, QueryRequest::Verb::kKillLink, 1)})[0];
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(first.source, Answer::Source::kCold);
  EXPECT_EQ(again.source, Answer::Source::kHit);
  EXPECT_EQ(first.result, again.result);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(engine.stats().computes, 1u);
}

TEST(QueryEngine, ConcurrentIdenticalQueriesComputeOnce) {
  const Scenario s = make_scenario(TopologyKind::kHpnSegment, 2, 0);
  EngineOptions options;
  options.jobs = 4;
  QueryEngine engine{options};
  const QueryRequest q = make_query(s, QueryRequest::Verb::kAddJob, 4, 25.0);
  const std::vector<Answer> answers = engine.answer({q, q});
  ASSERT_EQ(answers.size(), 2u);
  ASSERT_TRUE(answers[0].ok);
  ASSERT_TRUE(answers[1].ok);
  EXPECT_EQ(answers[0].result, answers[1].result);
  EXPECT_EQ(answers[1].source, Answer::Source::kHit) << "dedup'd duplicate";
  EXPECT_EQ(engine.stats().computes, 1u) << "one compute, two replies";
  EXPECT_EQ(engine.stats().queries, 2u);
}

TEST(QueryEngine, BatchAnswersAreIdenticalAtAnyJobs) {
  // Two distinct bases and a duplicate in one batch: groups fan out across
  // workers, results must not depend on the worker count.
  const Scenario a = make_scenario(TopologyKind::kTinyClos, 2, 2);
  const Scenario b = make_scenario(TopologyKind::kRailOnly, 4, 0);
  const std::vector<QueryRequest> batch = {
      make_query(a, QueryRequest::Verb::kKillLink, 0),
      make_query(b, QueryRequest::Verb::kRun),
      make_query(a, QueryRequest::Verb::kAddJob, 3, 10.0),
      make_query(a, QueryRequest::Verb::kKillLink, 0),  // duplicate
      make_query(b, QueryRequest::Verb::kResize, 5),
  };
  std::vector<std::vector<std::string>> transcripts;
  for (const int jobs : {1, 2, 8}) {
    EngineOptions options;
    options.jobs = jobs;
    QueryEngine engine{options};
    const std::vector<Answer> answers = engine.answer(batch);
    std::vector<std::string> wire;
    for (const Answer& ans : answers) {
      ASSERT_TRUE(ans.ok) << ans.error;
      wire.push_back(encode_result(ans.result));
    }
    transcripts.push_back(std::move(wire));
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);
  EXPECT_EQ(transcripts[0], transcripts[2]);
}

TEST(QueryEngine, TextualVariantsOfOneScenarioShareCacheEntries) {
  const std::string canonical_text =
      make_scenario(TopologyKind::kTinyClos, 2, 2).to_text();
  // Re-parse a formatting variant: comments, CRLF, extra whitespace.
  std::string variant_text = "# what-if probe\r\n";
  for (char c : canonical_text) {
    variant_text += c;
    if (c == '\n') variant_text += ' ';  // leading space on every line
  }
  const auto canonical = Scenario::from_text(canonical_text);
  const auto variant = Scenario::from_text(variant_text);
  ASSERT_TRUE(canonical.has_value());
  ASSERT_TRUE(variant.has_value());
  QueryEngine engine;
  const Answer first =
      engine.answer({make_query(*canonical, QueryRequest::Verb::kKillLink, 2)})[0];
  const Answer second =
      engine.answer({make_query(*variant, QueryRequest::Verb::kKillLink, 2)})[0];
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.base_hash, second.base_hash) << "variants must hash identically";
  EXPECT_EQ(second.source, Answer::Source::kHit);
  EXPECT_EQ(first.result, second.result);
}

TEST(QueryEngine, EvictsUnderMemoryCapAndRecomputesCorrectly) {
  const Scenario s = make_scenario(TopologyKind::kTinyClos, 2, 2);
  EngineOptions options;
  options.cache_bytes = 512;  // a handful of entries at most
  QueryEngine engine{options};
  const Answer original =
      engine.answer({make_query(s, QueryRequest::Verb::kKillLink, 0)})[0];
  ASSERT_TRUE(original.ok);
  for (std::uint32_t i = 1; i <= 32; ++i) {
    ASSERT_TRUE(engine.answer({make_query(s, QueryRequest::Verb::kKillLink, i)})[0].ok);
  }
  EXPECT_GT(engine.stats().evictions, 0u);
  EXPECT_LE(engine.stats().cache_bytes, options.cache_bytes);
  // The original entry was evicted: re-asking recomputes (warm, not hit)
  // and the recomputed answer is bit-identical.
  const Answer again =
      engine.answer({make_query(s, QueryRequest::Verb::kKillLink, 0)})[0];
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.source, Answer::Source::kWarm);
  EXPECT_EQ(again.result, original.result);
}

TEST(QueryEngine, BaseLruIsBoundedByMaxBases) {
  EngineOptions options;
  options.max_bases = 2;
  QueryEngine engine{options};
  for (std::uint32_t size = 2; size <= 6; ++size) {
    const Scenario s = make_scenario(TopologyKind::kTinyClos, size, 2);
    ASSERT_TRUE(engine.answer({make_query(s, QueryRequest::Verb::kKillLink, 0)})[0].ok);
  }
  EXPECT_LE(engine.stats().bases, 2u);
  EXPECT_EQ(engine.stats().bases_built, 5u);
}

TEST(QueryEngine, RunVerbReportsFctsAndRewindsCleanly) {
  Scenario s = make_scenario(TopologyKind::kHpnSegment, 2, 0);
  QueryEngine engine;
  const QueryRequest q = make_query(s, QueryRequest::Verb::kRun);
  const Answer first = engine.answer({q})[0];
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.result.fcts.size(), first.result.base_flows.size());
  bool any_completed = false;
  for (const QueryResult::Fct& f : first.result.fcts) any_completed |= f.completed;
  EXPECT_TRUE(any_completed) << "some flows must finish in the time-domain run";
  // Warm re-run on the snapshot-restored simulator must be bit-identical
  // (this is what the Simulator/FlowSession snapshot machinery pins). Evict
  // the result cache entry by asking through a fresh engine sharing nothing.
  EngineOptions no_cache;
  no_cache.cache_bytes = 1;  // effectively disables result caching
  QueryEngine engine2{no_cache};
  const Answer cold1 = engine2.answer({q})[0];
  const Answer cold2 = engine2.answer({q})[0];  // same base, re-run via restore
  ASSERT_TRUE(cold1.ok);
  ASSERT_TRUE(cold2.ok);
  EXPECT_EQ(cold2.source, Answer::Source::kWarm);
  EXPECT_EQ(cold1.result, cold2.result);
}

TEST(QueryEngine, ErrorsAreReportedPerQueryNotFatal) {
  QueryEngine engine;
  // add-job with an enormous host count clamps to the endpoint count; a
  // 1-host request is a config error and must not poison the batch.
  const Scenario s = make_scenario(TopologyKind::kTinyClos, 2, 2);
  const std::vector<Answer> answers = engine.answer({
      make_query(s, QueryRequest::Verb::kAddJob, 1, 10.0),
      make_query(s, QueryRequest::Verb::kKillLink, 0),
  });
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_FALSE(answers[0].ok);
  EXPECT_FALSE(answers[0].error.empty());
  EXPECT_TRUE(answers[1].ok) << answers[1].error;
}

}  // namespace
}  // namespace hpn::serve
