// serve/wire.h codec: exact round-trips (doubles must survive bit-for-bit —
// the result cache depends on it), versioning, and rejection of truncated,
// corrupted, and over-long byte strings.
#include <cmath>
#include <limits>
#include <string>

#include "gtest/gtest.h"
#include "serve/wire.h"

namespace hpn::serve {
namespace {

fuzz::Scenario sample_scenario() {
  fuzz::Scenario s;
  s.seed = 0xDEADBEEFCAFEF00Dull;
  s.topology = fuzz::TopologyKind::kHpnPod;
  s.size_knob = 16;
  s.wiring = 4;
  s.flows.push_back({0, 9, 1 << 20, 98.76543210123456});
  s.flows.push_back({3, 1, 0, 0.0030000000000000001});
  s.faults.push_back({fuzz::ScenarioFault::Kind::kLinkFlap, 1'000'000, 7, 500});
  s.faults.push_back({fuzz::ScenarioFault::Kind::kTorCrash, 0, 1, 0});
  s.jobs.push_back({2'000, 8, 3});
  return s;
}

QueryResult sample_result() {
  QueryResult r;
  r.base_flows = {{12.345678901234567, false}, {0.0, true}};
  r.job_flows = {{1.0 / 3.0, false}};
  r.fcts = {{0.001234567890123456, true}, {0.0, false}};
  r.stalled = 1;
  r.total_gbps = 12.345678901234567 + 1.0 / 3.0;
  r.min_gbps = 1.0 / 3.0;
  return r;
}

TEST(Wire, ScenarioRoundTripsExactly) {
  const fuzz::Scenario s = sample_scenario();
  const std::string bytes = encode_scenario(s);
  std::string error;
  const auto back = decode_scenario(bytes, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, s);
  // Deterministic: same scenario, same bytes.
  EXPECT_EQ(encode_scenario(*back), bytes);
}

TEST(Wire, RandomScenariosRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    fuzz::Scenario s = fuzz::random_scenario(seed);
    if (seed % 2 == 0) fuzz::ensure_jobs(s);
    const auto back = decode_scenario(encode_scenario(s));
    ASSERT_TRUE(back.has_value()) << seed;
    EXPECT_EQ(*back, s) << seed;
  }
}

TEST(Wire, ResultRoundTripsBitExactly) {
  const QueryResult r = sample_result();
  const std::string bytes = encode_result(r);
  const auto back = decode_result(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);  // operator== compares doubles exactly
  EXPECT_EQ(encode_result(*back), bytes);
}

TEST(Wire, ResultRoundTripsSpecialDoubles) {
  QueryResult r;
  r.base_flows = {{std::numeric_limits<double>::denorm_min(), false},
                  {-0.0, false},
                  {std::numeric_limits<double>::max(), false}};
  const auto back = decode_result(encode_result(r));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->base_flows.size(), 3u);
  EXPECT_EQ(back->base_flows[0].gbps, std::numeric_limits<double>::denorm_min());
  EXPECT_TRUE(std::signbit(back->base_flows[1].gbps));
  EXPECT_EQ(back->base_flows[2].gbps, std::numeric_limits<double>::max());
}

TEST(Wire, RejectsBadMagic) {
  std::string bytes = encode_scenario(sample_scenario());
  bytes[0] = 'X';
  std::string error;
  EXPECT_FALSE(decode_scenario(bytes, &error).has_value());
  EXPECT_EQ(error, "bad magic");
  // A result blob is not a scenario blob.
  error.clear();
  EXPECT_FALSE(decode_scenario(encode_result(sample_result()), &error).has_value());
  EXPECT_EQ(error, "bad magic");
}

TEST(Wire, RejectsUnsupportedVersion) {
  std::string bytes = encode_scenario(sample_scenario());
  bytes[4] = 99;  // little-endian u16 version right after the 4-byte magic
  std::string error;
  EXPECT_FALSE(decode_scenario(bytes, &error).has_value());
  EXPECT_EQ(error, "unsupported version 99");
}

TEST(Wire, RejectsTruncationAtEveryLength) {
  const std::string scenario_bytes = encode_scenario(sample_scenario());
  for (std::size_t n = 0; n < scenario_bytes.size(); ++n) {
    EXPECT_FALSE(decode_scenario(scenario_bytes.substr(0, n)).has_value())
        << "scenario prefix of " << n << " bytes decoded";
  }
  const std::string result_bytes = encode_result(sample_result());
  for (std::size_t n = 0; n < result_bytes.size(); ++n) {
    EXPECT_FALSE(decode_result(result_bytes.substr(0, n)).has_value())
        << "result prefix of " << n << " bytes decoded";
  }
}

TEST(Wire, RejectsTrailingBytes) {
  std::string error;
  EXPECT_FALSE(
      decode_scenario(encode_scenario(sample_scenario()) + "x", &error).has_value());
  EXPECT_EQ(error, "trailing bytes after scenario");
  EXPECT_FALSE(decode_result(encode_result(sample_result()) + "x", &error).has_value());
  EXPECT_EQ(error, "trailing bytes after result");
}

TEST(Wire, RejectsOutOfRangeEnums) {
  // Corrupt the topology id (offset: magic 4 + version 2 + seed 8 = 14).
  std::string bytes = encode_scenario(sample_scenario());
  bytes[14] = 0x7F;
  std::string error;
  EXPECT_FALSE(decode_scenario(bytes, &error).has_value());
  EXPECT_EQ(error, "unknown topology id 127");
}

}  // namespace
}  // namespace hpn::serve
