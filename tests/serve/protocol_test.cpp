// serve_loop protocol battery: framing, poisoned queries (bad verb, parse
// error, oversized, mid-stream disconnect), batching semantics, stats, and
// byte-stable transcripts at any --jobs — plus the golden transcript the
// smoke load-test pins (regenerate with HPN_UPDATE_GOLDEN=1).
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "scenario/scenario.h"
#include "serve/serve.h"

namespace hpn::serve {
namespace {

std::string tiny_scenario_text() {
  return
      "hpnsim-scenario v1\n"
      "seed 7\n"
      "topology tiny_clos\n"
      "size 2\n"
      "wiring 2\n"
      "flow 0 1 1048576 50\n"
      "flow 1 2 1048576 51\n"
      "fault link_fail 1000000 1 0\n"
      "end\n";
}

std::string run_serve(const std::string& script, ServeOptions options = {}) {
  std::istringstream in{script};
  std::ostringstream out;
  EXPECT_EQ(serve_loop(in, out, options), 0);
  return out.str();
}

/// First line of every transcript.
void expect_banner(const std::string& transcript) {
  EXPECT_EQ(transcript.substr(0, 16), "hpnsim-serve v1\n");
}

TEST(ServeProtocol, AnswersARunQuery) {
  const std::string transcript =
      run_serve("query run\n" + tiny_scenario_text() + "go\nquit\n");
  expect_banner(transcript);
  EXPECT_NE(transcript.find("reply 0 ok run cold base="), std::string::npos)
      << transcript;
  EXPECT_NE(transcript.find("alloc 2\n"), std::string::npos);
  EXPECT_NE(transcript.find("fct 2\n"), std::string::npos);
  EXPECT_NE(transcript.find("summary flows=2"), std::string::npos);
  EXPECT_NE(transcript.find("bye\n"), std::string::npos);
}

TEST(ServeProtocol, SecondIdenticalQueryIsAHit) {
  const std::string script = "query kill-link 0\n" + tiny_scenario_text() + "go\n" +
                             "query kill-link 0\n" + tiny_scenario_text() +
                             "go\nquit\n";
  const std::string transcript = run_serve(script);
  EXPECT_NE(transcript.find("reply 0 ok kill-link cold base="), std::string::npos)
      << transcript;
  EXPECT_NE(transcript.find("reply 0 ok kill-link hit base="), std::string::npos)
      << transcript;
  // Hit and cold replies must carry byte-identical payload lines.
  std::istringstream is{transcript};
  std::string line;
  std::vector<std::string> bodies;
  std::string cur;
  bool in_reply = false;
  while (std::getline(is, line)) {
    if (line.rfind("reply 0 ok kill-link", 0) == 0) {
      in_reply = true;
      cur.clear();
      continue;  // the reply header differs (cold vs hit) by design
    }
    if (in_reply) {
      cur += line + "\n";
      if (line == "end") {
        bodies.push_back(cur);
        in_reply = false;
      }
    }
  }
  ASSERT_EQ(bodies.size(), 2u) << transcript;
  EXPECT_EQ(bodies[0], bodies[1]);
}

TEST(ServeProtocol, UnknownVerbIsAPerQueryError) {
  const std::string transcript =
      run_serve("query explode 3\n" + tiny_scenario_text() + "go\nquit\n");
  EXPECT_NE(transcript.find("reply 0 error unknown verb 'explode'"), std::string::npos)
      << transcript;
}

TEST(ServeProtocol, BadVerbDoesNotDesyncTheNextQuery) {
  // The scenario after a bad verb is still consumed, so query 1 parses.
  const std::string script = "query explode\n" + tiny_scenario_text() +
                             "query run\n" + tiny_scenario_text() + "go\nquit\n";
  const std::string transcript = run_serve(script);
  EXPECT_NE(transcript.find("reply 0 error unknown verb 'explode'"), std::string::npos);
  EXPECT_NE(transcript.find("reply 1 ok run cold"), std::string::npos) << transcript;
}

TEST(ServeProtocol, MalformedScenarioReportsThePinnedParserMessage) {
  const std::string script =
      "query run\nhpnsim-scenario v1\nseed 7\nseed 8\nend\ngo\nquit\n";
  const std::string transcript = run_serve(script);
  EXPECT_NE(
      transcript.find("reply 0 error scenario parse error: line 3: duplicate 'seed'"),
      std::string::npos)
      << transcript;
}

TEST(ServeProtocol, OversizedQueryIsRejected) {
  ServeOptions options;
  options.max_query_bytes = 64;
  const std::string transcript =
      run_serve("query run\n" + tiny_scenario_text() + "go\nquit\n", options);
  EXPECT_NE(transcript.find("reply 0 error oversized query (limit 64 bytes)"),
            std::string::npos)
      << transcript;
}

TEST(ServeProtocol, MidStreamDisconnectIsReportedNotHung) {
  // EOF inside the inline scenario: the partial query answers with a
  // disconnect error at the implicit flush instead of vanishing.
  const std::string transcript =
      run_serve("query run\nhpnsim-scenario v1\nseed 7\n");  // no 'end', then EOF
  EXPECT_NE(transcript.find("reply 0 error disconnected mid-scenario"),
            std::string::npos)
      << transcript;
}

TEST(ServeProtocol, EofIsAnImplicitGo) {
  const std::string transcript = run_serve("query run\n" + tiny_scenario_text());
  EXPECT_NE(transcript.find("reply 0 ok run cold"), std::string::npos) << transcript;
}

TEST(ServeProtocol, UnknownCommandIsAProtocolError) {
  const std::string transcript = run_serve("launch-missiles\nquit\n");
  EXPECT_NE(transcript.find("protocol-error unknown command 'launch-missiles'"),
            std::string::npos)
      << transcript;
}

TEST(ServeProtocol, StatsLineReportsCacheCounters) {
  const std::string script = "query kill-link 0\n" + tiny_scenario_text() + "go\n" +
                             "query kill-link 0\n" + tiny_scenario_text() +
                             "stats\nquit\n";
  const std::string transcript = run_serve(script);
  EXPECT_NE(transcript.find("stats queries=2 hits=1 misses=1 computes=1 warm=0 "
                            "cold=1 evictions=0"),
            std::string::npos)
      << transcript;
}

TEST(ServeProtocol, TextualVariantsHitTheSameCacheEntry) {
  // Same scenario, different formatting: CRLF, comments, extra whitespace.
  const std::string variant =
      "# capacity probe\r\n"
      "hpnsim-scenario v1\r\n"
      "\r\n"
      "  seed 7\n"
      "topology tiny_clos   # dual ToR\n"
      "size 2\n"
      "wiring 2\n"
      "flow 0 1 1048576 50\n"
      "flow 1 2 1048576 51\n"
      "fault link_fail 1000000 1 0\n"
      "end\n";
  const std::string script = "query add-job 3 25\n" + tiny_scenario_text() + "go\n" +
                             "query add-job 3 25\n" + variant + "go\nquit\n";
  const std::string transcript = run_serve(script);
  EXPECT_NE(transcript.find("reply 0 ok add-job cold base="), std::string::npos)
      << transcript;
  EXPECT_NE(transcript.find("reply 0 ok add-job hit base="), std::string::npos)
      << "variant must hit the canonical entry\n"
      << transcript;
}

TEST(ServeProtocol, TranscriptIsByteStableAtAnyJobs) {
  // A batch with two distinct bases, a duplicate, an error, and a resize:
  // the full transcript must be byte-identical at any worker count.
  const std::string other =
      "hpnsim-scenario v1\n"
      "seed 11\n"
      "topology rail_only\n"
      "size 4\n"
      "wiring 0\n"
      "flow 0 2 524288 40\n"
      "flow 1 3 524288 41\n"
      "end\n";
  const std::string script = "query kill-link 1\n" + tiny_scenario_text() +
                             "query run\n" + other +
                             "query add-job 3 20\n" + tiny_scenario_text() +
                             "query kill-link 1\n" + tiny_scenario_text() +
                             "query explode\n" + other +
                             "query resize 3\n" + other + "go\nstats\nquit\n";
  std::vector<std::string> transcripts;
  for (const int jobs : {1, 2, 8}) {
    ServeOptions options;
    options.engine.jobs = jobs;
    transcripts.push_back(run_serve(script, options));
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);
  EXPECT_EQ(transcripts[0], transcripts[2]);
}

// ---------------------------------------------------------------------------
// Golden transcript: the smoke load-test's scripted query mix, pinned
// byte-for-byte. Regenerate with HPN_UPDATE_GOLDEN=1 after an intentional
// protocol change.

std::string golden_path() { return std::string{HPN_GOLDEN_DIR} + "/serve_session.txt"; }

TEST(ServeGolden, ScriptedSessionMatchesGoldenTranscript) {
  const std::string script = "query run\n" + tiny_scenario_text() +
                             "query kill-link 0\n" + tiny_scenario_text() +
                             "query kill-link 1\n" + tiny_scenario_text() +
                             "query add-job 4 25\n" + tiny_scenario_text() +
                             "go\n"
                             "query kill-link 0\n" + tiny_scenario_text() +
                             "query resize 3\n" + tiny_scenario_text() +
                             "go\nstats\nquit\n";
  ServeOptions options;
  options.engine.jobs = 2;
  const std::string transcript = run_serve(script, options);
  if (std::getenv("HPN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(golden_path(), std::ios::binary);
    ASSERT_TRUE(os.good()) << "cannot write " << golden_path();
    os << transcript;
    GTEST_SKIP() << "updated " << golden_path();
  }
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path()
                         << " (run with HPN_UPDATE_GOLDEN=1 to create)";
  std::stringstream want;
  want << in.rdbuf();
  if (transcript != want.str()) {
    const std::string actual = golden_path() + ".actual";
    std::ofstream os(actual, std::ios::binary);
    os << transcript;
    FAIL() << "transcript diverged from golden; wrote " << actual;
  }
}

}  // namespace
}  // namespace hpn::serve
