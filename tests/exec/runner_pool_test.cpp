// RunnerPool: indexed-result determinism, exception propagation by lowest
// task index, cooperative cancellation, reuse across batches, and a
// deterministic proof that stealing actually happens (a dependency that
// deadlocks without it).
#include "exec/runner_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hpn::exec {
namespace {

TEST(RunnerPool, ZeroTasksCompletesImmediately) {
  RunnerPool pool{4};
  int calls = 0;
  EXPECT_TRUE(pool.for_each(0, [&](std::size_t) { ++calls; }));
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(pool.map(0, [](std::size_t i) { return i; }).empty());
}

TEST(RunnerPool, MapReturnsResultsInIndexOrderRegardlessOfJobs) {
  const std::size_t n = 200;
  std::vector<std::size_t> expected(n);
  std::iota(expected.begin(), expected.end(), 0u);
  for (const int jobs : {1, 2, 8}) {
    RunnerPool pool{jobs};
    const auto got = pool.map(n, [](std::size_t i) { return i; });
    EXPECT_EQ(got, expected) << "jobs=" << jobs;
  }
}

TEST(RunnerPool, EveryTaskRunsExactlyOnce) {
  const std::size_t n = 500;
  std::vector<std::atomic<int>> hits(n);
  RunnerPool pool{8};
  EXPECT_TRUE(pool.for_each(n, [&](std::size_t i) { hits[i].fetch_add(1); }));
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(RunnerPool, PoolIsReusableAcrossBatches) {
  RunnerPool pool{3};
  for (int round = 0; round < 5; ++round) {
    const auto r = pool.map(17, [round](std::size_t i) {
      return static_cast<int>(i) * 10 + round;
    });
    ASSERT_EQ(r.size(), 17u);
    for (std::size_t i = 0; i < r.size(); ++i) {
      EXPECT_EQ(r[i], static_cast<int>(i) * 10 + round);
    }
  }
}

TEST(RunnerPool, MoreJobsThanTasks) {
  RunnerPool pool{8};
  const auto r = pool.map(3, [](std::size_t i) { return i * i; });
  EXPECT_EQ(r, (std::vector<std::size_t>{0, 1, 4}));
}

TEST(RunnerPool, ExceptionPropagatesToCaller) {
  RunnerPool pool{4};
  EXPECT_THROW(
      pool.for_each(50,
                    [](std::size_t i) {
                      if (i == 17) throw std::runtime_error{"task 17 failed"};
                    }),
      std::runtime_error);
}

TEST(RunnerPool, LowestFailingIndexWinsWithSerialExecution) {
  // jobs=1 runs tasks in ascending index order, so both throwers run and
  // the recorded exception must be the lower index.
  RunnerPool pool{1};
  try {
    pool.for_each(20, [](std::size_t i) {
      if (i == 5) throw std::runtime_error{"five"};
      if (i == 11) throw std::runtime_error{"eleven"};
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "five");
  }
}

TEST(RunnerPool, ExceptionCancelsRemainderOfBatch) {
  // Serial pool: task 0 throws, so tasks 1..N-1 are skipped, and the pool
  // still settles (no hang) before rethrowing.
  RunnerPool pool{1};
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.for_each(100,
                             [&](std::size_t i) {
                               ++ran;
                               if (i == 0) throw std::runtime_error{"boom"};
                             }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 1);
  // The pool recovers: the next batch runs normally.
  EXPECT_TRUE(pool.for_each(10, [&](std::size_t) { ++ran; }));
  EXPECT_EQ(ran.load(), 11);
}

TEST(RunnerPool, CancelSkipsUnstartedTasks) {
  RunnerPool pool{1};
  std::atomic<int> ran{0};
  const bool complete = pool.for_each(100, [&](std::size_t) {
    ++ran;
    pool.cancel();
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(ran.load(), 1);
  // cancel() is batch-scoped: the next batch starts fresh.
  EXPECT_TRUE(pool.for_each(5, [&](std::size_t) { ++ran; }));
  EXPECT_EQ(ran.load(), 6);
}

TEST(RunnerPool, MapThrowsWhenBatchWasCancelled) {
  RunnerPool pool{1};
  EXPECT_THROW(pool.map(10,
                        [&](std::size_t i) {
                          pool.cancel();
                          return i;
                        }),
               std::runtime_error);
}

TEST(RunnerPool, IdleWorkersStealFromBusyQueues) {
  // Round-robin seeding puts tasks 0 and 2 in worker 0's deque. Task 0
  // blocks until task 2 has run — which can only happen if another worker
  // steals task 2. No stealing => this test times out instead of passing.
  RunnerPool pool{2};
  std::mutex mu;
  std::condition_variable cv;
  bool task2_done = false;
  bool unblocked_in_time = false;
  pool.for_each(4, [&](std::size_t i) {
    if (i == 0) {
      std::unique_lock<std::mutex> lk(mu);
      unblocked_in_time =
          cv.wait_for(lk, std::chrono::seconds(30), [&] { return task2_done; });
    } else if (i == 2) {
      const std::lock_guard<std::mutex> lk(mu);
      task2_done = true;
      cv.notify_all();
    }
  });
  EXPECT_TRUE(unblocked_in_time);
}

TEST(RunnerPool, ParallelMapConvenience) {
  const auto r = parallel_map(4, 8, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(r, (std::vector<std::size_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

}  // namespace
}  // namespace hpn::exec
