// Tracer unit tests: ring-buffer semantics, filters, exporters.
#include "metrics/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hpn::metrics {
namespace {

TimePoint at_us(std::int64_t us) { return TimePoint::origin() + Duration::micros(us); }

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.record(at_us(1), TraceEventKind::kFlowStart, 7);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), 0u);  // nothing allocated until enable()
}

TEST(TracerTest, RecordsInOrderWhileEnabled) {
  Tracer t;
  t.enable(64);
  t.record(at_us(1), TraceEventKind::kFlowStart, 1, kTraceNoId, 100.0);
  t.record(at_us(2), TraceEventKind::kFlowStart, 2, kTraceNoId, 200.0);
  t.record(at_us(3), TraceEventKind::kFlowFinish, 1, kTraceNoId, 0.5);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].a, 1u);
  EXPECT_EQ(evs[1].a, 2u);
  EXPECT_EQ(evs[2].kind, TraceEventKind::kFlowFinish);
  EXPECT_DOUBLE_EQ(evs[1].value, 200.0);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, DisableStopsRecordingButKeepsEvents) {
  Tracer t;
  t.enable(8);
  t.record(at_us(1), TraceEventKind::kLinkDown, 3);
  t.disable();
  t.record(at_us(2), TraceEventKind::kLinkUp, 3);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events().front().kind, TraceEventKind::kLinkDown);
}

TEST(TracerTest, RingOverwritesOldestAndCountsDrops) {
  Tracer t;
  t.enable(4);
  for (std::uint32_t i = 0; i < 6; ++i) {
    t.record(at_us(i), TraceEventKind::kFlowStart, i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 2u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().a, 2u);  // events 0 and 1 were overwritten
  EXPECT_EQ(evs.back().a, 5u);
}

TEST(TracerTest, ReenableSameCapacityKeepsEvents) {
  Tracer t;
  t.enable(16);
  t.record(at_us(1), TraceEventKind::kFlowStart, 1);
  t.enable(16);  // same capacity: no reallocation, no loss
  EXPECT_EQ(t.size(), 1u);
  t.enable(32);  // different capacity: clears
  EXPECT_TRUE(t.empty());
}

TEST(TracerTest, EventsOfFiltersByKindAndEntity) {
  Tracer t;
  t.enable(64);
  t.record(at_us(1), TraceEventKind::kQueueDepth, 10, kTraceNoId, 1.0);
  t.record(at_us(2), TraceEventKind::kQueueDepth, 11, kTraceNoId, 2.0);
  t.record(at_us(3), TraceEventKind::kQueueDepth, 10, kTraceNoId, 3.0);
  t.record(at_us(4), TraceEventKind::kLinkDown, 10);
  EXPECT_EQ(t.events_of(TraceEventKind::kQueueDepth).size(), 3u);
  const auto link10 = t.events_of(TraceEventKind::kQueueDepth, 10);
  ASSERT_EQ(link10.size(), 2u);
  EXPECT_DOUBLE_EQ(link10[1].value, 3.0);
  EXPECT_EQ(t.events_of(TraceEventKind::kLinkUp).size(), 0u);
}

TEST(TracerTest, SeriesExtractsTimeSeries) {
  Tracer t;
  t.enable(64);
  t.record(at_us(1), TraceEventKind::kQueueDepth, 5, kTraceNoId, 100.0);
  t.record(at_us(2), TraceEventKind::kQueueDepth, 6, kTraceNoId, 999.0);
  t.record(at_us(3), TraceEventKind::kQueueDepth, 5, kTraceNoId, 300.0);
  const TimeSeries s = t.series(TraceEventKind::kQueueDepth, 5);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.points()[0].value, 100.0);
  EXPECT_DOUBLE_EQ(s.points()[1].value, 300.0);
  EXPECT_EQ(s.points()[1].at, at_us(3));
}

TEST(TracerTest, WatchFiltersLinks) {
  Tracer t;
  const LinkId a{3}, b{9};
  EXPECT_FALSE(t.watching(a));  // disabled tracer watches nothing
  t.enable(8);
  EXPECT_FALSE(t.watching(a));
  t.watch_link(a);
  EXPECT_TRUE(t.watching(a));
  EXPECT_FALSE(t.watching(b));
  t.watch_all_links(true);
  EXPECT_TRUE(t.watching(b));
}

TEST(TracerTest, SpanIdsAreMonotonic) {
  Tracer t;
  const std::uint32_t s1 = t.begin_span();
  const std::uint32_t s2 = t.begin_span();
  EXPECT_LT(s1, s2);
}

TEST(TracerTest, ClearResets) {
  Tracer t;
  t.enable(8);
  t.record(at_us(1), TraceEventKind::kFlowStart, 1);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_TRUE(t.enabled());  // clear does not disable
}

TEST(TracerTest, CsvHasHeaderAndOneLinePerEvent) {
  Tracer t;
  t.enable(8);
  t.record(at_us(1), TraceEventKind::kFlowStart, 1, kTraceNoId, 4096.0);
  t.record(at_us(2), TraceEventKind::kCollectiveBegin, 1, 16, 1024.0, "all_reduce");
  std::ostringstream os;
  t.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_ns,kind,a,b,value,label"), std::string::npos);
  EXPECT_NE(csv.find("1000,flow_start,1,,4096,"), std::string::npos);
  EXPECT_NE(csv.find("2000,collective_begin,1,16,1024,all_reduce"), std::string::npos);
}

TEST(TracerTest, ChromeJsonPairsSpansAndEmitsCounters) {
  Tracer t;
  t.enable(16);
  const std::uint32_t span = t.begin_span();
  t.record(at_us(1), TraceEventKind::kCollectiveBegin, span, 8, 1e6, "all_reduce");
  t.record(at_us(5), TraceEventKind::kQueueDepth, 2, kTraceNoId, 4096.0);
  t.record(at_us(9), TraceEventKind::kCollectiveEnd, span, kTraceNoId, 0.0, "all_reduce");
  t.record(at_us(10), TraceEventKind::kLinkDown, 2);
  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u);
  // Async begin/end pair with matching ids.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  // Counter for the queue sample, instant for the link event.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("queue_depth:link2"), std::string::npos);
  // Balanced delimiters (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TracerTest, SavePicksFormatBySuffix) {
  Tracer t;
  t.enable(8);
  t.record(at_us(1), TraceEventKind::kFlowStart, 1);

  const std::string csv_path = ::testing::TempDir() + "trace_test_out.csv";
  ASSERT_TRUE(t.save(csv_path));
  std::ifstream csv{csv_path};
  std::string first;
  std::getline(csv, first);
  EXPECT_EQ(first, "time_ns,kind,a,b,value,label");
  std::remove(csv_path.c_str());

  const std::string json_path = ::testing::TempDir() + "trace_test_out.json";
  ASSERT_TRUE(t.save(json_path));
  std::ifstream json{json_path};
  std::getline(json, first);
  EXPECT_EQ(first.rfind("{\"displayTimeUnit\"", 0), 0u);
  std::remove(json_path.c_str());

  EXPECT_FALSE(t.save("/nonexistent-dir/trace.json"));
}

}  // namespace
}  // namespace hpn::metrics
