#include "metrics/registry.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hpn::metrics {
namespace {

TEST(Registry, CounterLifecycle) {
  Registry r;
  EXPECT_FALSE(r.has_counter("flows"));
  r.counter("flows").increment();
  r.counter("flows").increment(4);
  EXPECT_TRUE(r.has_counter("flows"));
  EXPECT_EQ(r.counter("flows").value(), 5u);
}

TEST(Registry, GaugeLifecycle) {
  Registry r;
  r.gauge("queue_kb").set(42.5);
  r.gauge("queue_kb").add(-2.5);
  EXPECT_DOUBLE_EQ(r.gauge("queue_kb").value(), 40.0);
}

TEST(Registry, SnapshotSortedAndComplete) {
  Registry r;
  r.counter("b.count").increment(7);
  r.counter("a.count").increment(3);
  r.gauge("c.level").set(1.5);
  const Table t = r.snapshot();
  ASSERT_EQ(t.rows().size(), 3u);
  EXPECT_EQ(t.rows()[0][0], "a.count");
  EXPECT_EQ(t.rows()[0][1], "3");
  EXPECT_EQ(t.rows()[1][0], "b.count");
  EXPECT_EQ(t.rows()[2][0], "c.level");
}

TEST(Registry, ResetClearsEverything) {
  Registry r;
  r.counter("x").increment();
  r.gauge("y").set(1);
  r.reset();
  EXPECT_FALSE(r.has_counter("x"));
  EXPECT_FALSE(r.has_gauge("y"));
}

TEST(Registry, DistinctNamesAreIndependent) {
  Registry r;
  r.counter("a").increment(1);
  r.counter("b").increment(2);
  EXPECT_EQ(r.counter("a").value(), 1u);
  EXPECT_EQ(r.counter("b").value(), 2u);
}

}  // namespace
}  // namespace hpn::metrics
