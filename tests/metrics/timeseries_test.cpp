#include "metrics/timeseries.h"

#include <gtest/gtest.h>

namespace hpn::metrics {
namespace {

TimePoint at_ms(std::int64_t ms) { return TimePoint::at_nanos(ms * 1'000'000); }

TEST(TimeSeries, RecordsInOrder) {
  TimeSeries ts{"x"};
  ts.record(at_ms(1), 10);
  ts.record(at_ms(2), 20);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_THROW(ts.record(at_ms(1), 5), CheckError);
}

TEST(TimeSeries, MeanOverWindow) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.record(at_ms(i), i);
  EXPECT_DOUBLE_EQ(ts.mean_over(at_ms(0), at_ms(10)), 4.5);
  EXPECT_DOUBLE_EQ(ts.mean_over(at_ms(2), at_ms(4)), 2.5);
  EXPECT_DOUBLE_EQ(ts.mean_over(at_ms(100), at_ms(200)), 0.0);
}

TEST(TimeSeries, MaxOverWindow) {
  TimeSeries ts;
  ts.record(at_ms(0), 5);
  ts.record(at_ms(1), 9);
  ts.record(at_ms(2), 3);
  EXPECT_DOUBLE_EQ(ts.max_over(at_ms(0), at_ms(3)), 9.0);
  EXPECT_DOUBLE_EQ(ts.max_over(at_ms(2), at_ms(3)), 3.0);
}

TEST(TimeSeries, ResampleMean) {
  TimeSeries ts;
  for (int i = 0; i < 20; ++i) ts.record(at_ms(i), i);
  const auto rs = ts.resample(Duration::millis(10), TimeSeries::WindowOp::kMean);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_DOUBLE_EQ(rs.points()[0].value, 4.5);
  EXPECT_DOUBLE_EQ(rs.points()[1].value, 14.5);
}

TEST(TimeSeries, ResampleMax) {
  TimeSeries ts;
  for (int i = 0; i < 20; ++i) ts.record(at_ms(i), 20 - i);
  const auto rs = ts.resample(Duration::millis(10), TimeSeries::WindowOp::kMax);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_DOUBLE_EQ(rs.points()[0].value, 20.0);
  EXPECT_DOUBLE_EQ(rs.points()[1].value, 10.0);
}

TEST(TimeSeries, Summary) {
  TimeSeries ts;
  ts.record(at_ms(0), 1);
  ts.record(at_ms(1), 3);
  const auto s = ts.summary();
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

}  // namespace
}  // namespace hpn::metrics
