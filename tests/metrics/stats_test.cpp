#include "metrics/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hpn::metrics {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
}

TEST(SampleSet, QuantileOutOfRangeThrows) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW((void)s.quantile(-0.1), CheckError);
  EXPECT_THROW((void)s.quantile(1.1), CheckError);
}

TEST(SampleSet, CdfAt) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SampleSet, CdfPointsDeduplicated) {
  SampleSet s;
  for (double v : {1.0, 1.0, 2.0, 3.0, 3.0, 3.0}) s.add(v);
  const auto pts = s.cdf_points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].second, 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(pts[1].second, 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(pts[2].second, 1.0);
}

TEST(SampleSet, InsertAfterQueryResorts) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);    // bin 0
  h.add(3.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(-5.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h{0.0, 1.0, 1};
  h.add(0.5, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.bin(0), 10u);
}

TEST(Histogram, InvalidRangeThrows) {
  EXPECT_THROW((Histogram{1.0, 1.0, 5}), CheckError);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), CheckError);
}

}  // namespace
}  // namespace hpn::metrics
