#include "metrics/table.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace hpn::metrics {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t{"demo"};
  t.columns({"arch", "gpus"});
  t.add_row({"HPN", "15360"});
  t.add_row({"DCN+", "512"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("HPN"), std::string::npos);
  EXPECT_NE(s.find("15360"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t;
  t.columns({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, CsvEscaping) {
  Table t;
  t.columns({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,note\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(10.0, 0), "10");
  EXPECT_EQ(Table::percent(0.149), "14.9%");
}

TEST(Table, SaveCsvRoundTrip) {
  Table t;
  t.columns({"k", "v"});
  t.add_row({"a", "1"});
  const std::string path = t.save_csv(::testing::TempDir() + "hpn_table_test", "out");
  std::ifstream f{path};
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
}

}  // namespace
}  // namespace hpn::metrics
