#include "workload/inference.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace hpn::workload {
namespace {

using topo::Cluster;
using topo::HpnConfig;

struct Rig {
  Cluster c = topo::build_hpn(HpnConfig::tiny());
  std::vector<topo::StorageHost> storage = topo::attach_frontend(c);
  sim::Simulator s;
  flowsim::FlowSession fs{c.topo, s};
  routing::Router r{c.topo};

  std::vector<NodeId> gateways() const {
    std::vector<NodeId> out;
    for (const auto& sh : storage) out.push_back(sh.host);
    return out;
  }
};

TEST(Inference, RequestsCompleteWithSaneLatency) {
  Rig rig;
  InferenceConfig cfg;
  cfg.requests_per_sec = 500.0;
  InferenceService svc{rig.c, rig.s, rig.fs, rig.r, {0, 1, 2, 3}, rig.gateways(), cfg};
  svc.start();
  rig.s.run_until(TimePoint::origin() + Duration::seconds(2.0));
  svc.stop();
  rig.s.run();
  EXPECT_EQ(svc.dropped(), 0);
  EXPECT_GT(svc.completed(), 500);
  // Latency ~ compute (150ms mean) + transfer (2MB @ <=200G ~ 0.1ms).
  EXPECT_GT(svc.latencies().median(), 0.05);
  EXPECT_LT(svc.latencies().median(), 0.5);
  EXPECT_LT(svc.latencies().quantile(0.99), 2.0);
}

TEST(Inference, ThroughputTracksArrivalRate) {
  Rig rig;
  InferenceConfig cfg;
  cfg.requests_per_sec = 1'000.0;
  cfg.compute_mean = Duration::millis(20);
  InferenceService svc{rig.c, rig.s, rig.fs, rig.r, {0, 1, 2, 3, 4, 5, 6, 7},
                       rig.gateways(), cfg};
  svc.start();
  rig.s.run_until(TimePoint::origin() + Duration::seconds(4.0));
  svc.stop();
  rig.s.run();
  EXPECT_NEAR(svc.completed() / 4.0, 1'000.0, 120.0);
}

TEST(Inference, RequiresFrontend) {
  Cluster c = topo::build_hpn(HpnConfig::tiny());  // no frontend
  sim::Simulator s;
  flowsim::FlowSession fs{c.topo, s};
  routing::Router r{c.topo};
  EXPECT_THROW((InferenceService{c, s, fs, r, {0}, {NodeId{0}}}), CheckError);
}

TEST(Inference, StopCancelsArrivals) {
  Rig rig;
  InferenceService svc{rig.c, rig.s, rig.fs, rig.r, {0}, rig.gateways()};
  svc.start();
  svc.stop();
  rig.s.run();
  EXPECT_EQ(svc.completed(), 0);
}

TEST(Inference, IsolatedFromBackendTraining) {
  // §8: inference rides the frontend; a saturated backend cannot touch its
  // latency. Run the service with and without heavy backend elephants.
  auto run_with_backend_load = [](bool load) {
    Rig rig;
    if (load) {
      // Saturate every backend access link of the serving hosts.
      for (int h = 0; h < 4; ++h) {
        for (int rail = 0; rail < 8; ++rail) {
          const auto& att = rig.c.hosts[static_cast<std::size_t>(h)]
                                .nics[static_cast<std::size_t>(rail)];
          const auto& peer = rig.c.hosts[static_cast<std::size_t>(h + 4)]
                                 .nics[static_cast<std::size_t>(rail)];
          const routing::Path p = rig.r.trace(
              att.nic, peer.nic,
              routing::FiveTuple{.src_ip = att.nic.value(), .dst_ip = peer.nic.value()});
          rig.fs.start_flow(p.links, DataSize::gigabytes(100), Bandwidth::gbps(400));
        }
      }
    }
    InferenceConfig cfg;
    cfg.requests_per_sec = 400.0;
    cfg.seed = 7;
    InferenceService svc{rig.c, rig.s, rig.fs, rig.r, {0, 1, 2, 3}, rig.gateways(), cfg};
    svc.start();
    rig.s.run_until(TimePoint::origin() + Duration::seconds(2.0));
    svc.stop();
    return svc.latencies().median();
  };
  const double clean = run_with_backend_load(false);
  const double loaded = run_with_backend_load(true);
  EXPECT_NEAR(loaded, clean, clean * 0.02) << "frontend must be isolated from backend";
}

}  // namespace
}  // namespace hpn::workload
