#include "workload/traffic.h"

#include <gtest/gtest.h>

#include "metrics/stats.h"

namespace hpn::workload {
namespace {

TEST(CloudTraffic, LowUtilizationHighConnections) {
  CloudTrafficModel model{1};
  for (double h = 0; h < 24; h += 0.5) {
    const auto s = model.at_hour(h);
    EXPECT_GT(s.in_gbps, 0.0);
    EXPECT_LT(s.in_gbps, 3.0);  // far below 20% of 400G
    EXPECT_GT(s.connections, 50'000);
    EXPECT_LT(s.connections, 250'000);
  }
}

TEST(CloudTraffic, DiurnalShape) {
  CloudTrafficModel model{1};
  metrics::RunningStats noon, midnight;
  for (int rep = 0; rep < 20; ++rep) {
    noon.add(model.at_hour(12.0).in_gbps);
    midnight.add(model.at_hour(0.0).in_gbps);
  }
  EXPECT_GT(noon.mean(), midnight.mean());
}

TEST(NicBursts, PeriodicAndLineRate) {
  NicBurstConfig cfg;
  const auto traces = generate_nic_bursts(cfg, Duration::seconds(100.0), 7);
  ASSERT_EQ(traces.size(), 8u);
  for (const auto& ts : traces) {
    const auto s = ts.summary();
    // Peaks hit the 400G line rate; troughs near zero.
    EXPECT_GT(s.max(), 380.0);
    EXPECT_LT(s.min(), 3.0);
    // Duty cycle ~ burst/iteration = 30%.
    int above = 0;
    for (const auto& p : ts.points()) above += p.value > 300.0;
    const double duty = static_cast<double>(above) / static_cast<double>(ts.size());
    EXPECT_NEAR(duty, 0.3, 0.05);
  }
}

TEST(NicBursts, AllNicsBurstTogether) {
  NicBurstConfig cfg;
  const auto traces = generate_nic_bursts(cfg, Duration::seconds(40.0), 7);
  // At a burst instant, every NIC is hot (gradient sync engages all rails).
  const auto& t0 = traces[0];
  for (std::size_t i = 0; i < t0.size(); ++i) {
    if (t0.points()[i].value > 300.0) {
      for (const auto& ts : traces) EXPECT_GT(ts.points()[i].value, 300.0);
    }
  }
}

TEST(ConnectionCounts, LlmVsCloudSeparation) {
  ConnectionCountModel model{3};
  metrics::SampleSet llm, cloud;
  for (int i = 0; i < 2000; ++i) {
    llm.add(model.sample_llm_host());
    cloud.add(model.sample_cloud_host());
  }
  // Fig 3: LLM hosts use dozens-to-hundreds of connections.
  EXPECT_GT(llm.median(), 20.0);
  EXPECT_LT(llm.median(), 300.0);
  EXPECT_LT(llm.quantile(0.99), 2'000.0);
  // Fig 1: cloud hosts hold ~1e5.
  EXPECT_GT(cloud.median(), 50'000.0);
  EXPECT_GT(cloud.median() / llm.median(), 100.0);
}

TEST(Checkpoints, RepresentativeProfiles) {
  const auto profiles = representative_checkpoint_profiles();
  ASSERT_EQ(profiles.size(), 4u);
  for (const auto& p : profiles) {
    EXPECT_GE(p.interval_hours, 2.0);  // Fig 4 range
    EXPECT_LE(p.interval_hours, 4.0);
    EXPECT_NEAR(p.write_time.as_seconds(), 100.0, 15.0);  // ~100s (§2.3)
    EXPECT_DOUBLE_EQ(p.per_gpu.as_gigabytes(), 30.0);
  }
}

TEST(FailureStats, MonthlyRatioMatchesRate) {
  FailureStatsModel model{11};
  metrics::RunningStats ratios;
  for (int month = 0; month < 48; ++month) {
    ratios.add(model.sample_monthly_link_failure_ratio(100'000));
  }
  EXPECT_NEAR(ratios.mean(), 0.00057, 0.0001);
}

TEST(FailureStats, JobCrashArithmetic) {
  // §2.3: a single large job sees 1-2 crashes per month. A 3K-GPU job uses
  // 3072 GPUs x 2 ports = 6144 access links and ~dozens of ToRs.
  FailureStatsModel model{1};
  const double crashes = model.expected_monthly_crashes(6144, 96);
  EXPECT_GT(crashes, 1.0);
  EXPECT_LT(crashes, 6.0);
}

TEST(JobSizes, CdfMatchesPaper) {
  JobSizeModel model{5};
  int total = 20'000, under_1k = 0, over_3k = 0;
  metrics::SampleSet sizes;
  for (int i = 0; i < total; ++i) {
    const int g = model.sample_gpus();
    sizes.add(g);
    under_1k += g < 1'000;
    over_3k += g > 3'072;
  }
  // Fig 6 / §3: ~96.3% of jobs take < 1K GPUs; none exceed ~3K.
  EXPECT_NEAR(static_cast<double>(under_1k) / total, 0.963, 0.02);
  EXPECT_EQ(over_3k, 0);
  EXPECT_GE(sizes.min(), 8.0);  // whole hosts
}

TEST(JobSizes, WholeHostGranularity) {
  JobSizeModel model{6};
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(model.sample_gpus() % 8, 0);
  }
}

}  // namespace
}  // namespace hpn::workload
