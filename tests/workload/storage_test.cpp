#include "workload/storage.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace hpn::workload {
namespace {

using topo::Cluster;
using topo::HpnConfig;

struct Rig {
  Cluster c = topo::build_hpn(HpnConfig::tiny());
  sim::Simulator s;
  flowsim::FlowSession fs{c.topo, s};
  routing::Router r{c.topo};
};

TEST(StorageTraffic, FrontendCheckpointWriteCompletes) {
  Rig rig;
  const auto storage = topo::attach_frontend(rig.c);
  StorageTraffic st{rig.c, rig.s, rig.fs, rig.r};
  const std::vector<int> hosts{0, 1, 2, 3};
  // 240GB per host (8 x 30GB), 4 hosts at up to 400G each, storage-side
  // bound: finishes in single-digit simulated seconds.
  const Duration t = st.run_checkpoint_write(hosts, storage, DataSize::gigabytes(240));
  EXPECT_EQ(st.unroutable(), 0);
  EXPECT_GT(t.as_seconds(), 2.0);
  EXPECT_LT(t.as_seconds(), 60.0);
}

TEST(StorageTraffic, BackendCheckpointWriteCompletes) {
  Rig rig;
  const auto storage = topo::attach_backend_storage(rig.c, 8);
  StorageTraffic st{rig.c, rig.s, rig.fs, rig.r};
  const Duration t =
      st.run_checkpoint_write({0, 1, 2, 3}, storage, DataSize::gigabytes(240));
  EXPECT_EQ(st.unroutable(), 0);
  EXPECT_GT(t.as_seconds(), 1.0);
}

TEST(StorageTraffic, BackendSplitsAcrossRailNics) {
  // Backend-attached storage is reached through all 8 rail NICs; frontend
  // through the single NIC0. Same bytes, different fan-out: with 8 storage
  // hosts the backend write from ONE host can use 8x the access bandwidth.
  Rig backend_rig;
  const auto bstorage = topo::attach_backend_storage(backend_rig.c, 8);
  StorageTraffic bst{backend_rig.c, backend_rig.s, backend_rig.fs, backend_rig.r};
  const Duration t_back =
      bst.run_checkpoint_write({0}, bstorage, DataSize::gigabytes(240));

  Rig frontend_rig;
  const auto fstorage = topo::attach_frontend(frontend_rig.c);
  StorageTraffic fst{frontend_rig.c, frontend_rig.s, frontend_rig.fs, frontend_rig.r};
  const Duration t_front =
      fst.run_checkpoint_write({0}, fstorage, DataSize::gigabytes(240));

  EXPECT_LT(t_back.as_seconds() * 2.0, t_front.as_seconds())
      << "backend bandwidth advantage is real — the paper rejects it anyway";
}

TEST(StorageTraffic, DatasetLoadCompletes) {
  Rig rig;
  const auto storage = topo::attach_frontend(rig.c);
  StorageTraffic st{rig.c, rig.s, rig.fs, rig.r};
  bool done = false;
  st.dataset_load({0, 1}, storage, DataSize::gigabytes(50), [&] { done = true; });
  rig.s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(st.unroutable(), 0);
}

TEST(StorageTraffic, RequiresFrontendWhenStorageIsFrontend) {
  Rig rig;  // no attach_frontend
  std::vector<topo::StorageHost> fake(1);
  fake[0].on_backend = false;
  StorageTraffic st{rig.c, rig.s, rig.fs, rig.r};
  EXPECT_THROW(st.checkpoint_write({0}, fake, DataSize::gigabytes(1), nullptr), CheckError);
}

}  // namespace
}  // namespace hpn::workload
