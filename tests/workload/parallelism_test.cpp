#include "workload/parallelism.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/builders.h"

namespace hpn::workload {
namespace {

using topo::Cluster;
using topo::HpnConfig;

TEST(Parallelism, PlanShape) {
  const Cluster c = topo::build_hpn(HpnConfig::tiny());
  ParallelismPlanner planner{c};
  const PlacementPlan plan = planner.plan(/*tp=*/8, /*pp=*/2, /*dp=*/3);
  EXPECT_EQ(plan.world_size(), 48);
  EXPECT_EQ(plan.hosts.size(), 6u);
  EXPECT_EQ(plan.tp_groups.size(), 6u);
  EXPECT_EQ(plan.dp_groups.size(), 2u);          // one per stage
  EXPECT_EQ(plan.dp_groups[0].size(), 3u * 8u);  // dp replicas x rails
  EXPECT_EQ(plan.pp_pairs.size(), 3u);           // (pp-1) x dp
}

TEST(Parallelism, TpGroupsAreWholeHosts) {
  const Cluster c = topo::build_hpn(HpnConfig::tiny());
  const PlacementPlan plan = ParallelismPlanner{c}.plan(8, 2, 2);
  for (const auto& group : plan.tp_groups) {
    ASSERT_EQ(group.size(), 8u);
    const int host = group[0] / 8;
    for (std::size_t i = 0; i < group.size(); ++i) {
      EXPECT_EQ(group[i], host * 8 + static_cast<int>(i));
    }
  }
}

TEST(Parallelism, DpReplicasAreAdjacentHosts) {
  // Stage-major layout: DP replicas of one stage occupy consecutive hosts,
  // keeping the heavy gradient AllReduce low-tier.
  const Cluster c = topo::build_hpn(HpnConfig::tiny());
  const PlacementPlan plan = ParallelismPlanner{c}.plan(8, 2, 4);
  for (std::size_t s = 0; s < plan.dp_groups.size(); ++s) {
    std::set<int> hosts;
    for (const int rank : plan.dp_groups[s]) hosts.insert(rank / 8);
    const int lo = *hosts.begin();
    const int hi = *hosts.rbegin();
    EXPECT_EQ(hi - lo, 3) << "replica hosts should be contiguous";
  }
}

TEST(Parallelism, PpPairsConnectConsecutiveStages) {
  const Cluster c = topo::build_hpn(HpnConfig::tiny());
  const PlacementPlan plan = ParallelismPlanner{c}.plan(8, 2, 2);
  for (const auto& [src, dst] : plan.pp_pairs) {
    // Same replica, stage s -> s+1: hosts differ by dp.
    EXPECT_EQ(dst / 8 - src / 8, 2);
  }
}

TEST(Parallelism, SkipsBackupHosts) {
  auto cfg = HpnConfig::tiny();
  cfg.backup_hosts_per_segment = 1;
  const Cluster c = topo::build_hpn(cfg);
  ParallelismPlanner planner{c};
  const auto active = planner.active_hosts();
  EXPECT_EQ(active.size(), 8u);  // 2 x (4 active), backups excluded
  const PlacementPlan plan = planner.plan(8, 2, 4);
  for (const int h : plan.hosts) {
    EXPECT_FALSE(c.hosts[static_cast<std::size_t>(h)].backup);
  }
}

TEST(Parallelism, RejectsWrongTp) {
  const Cluster c = topo::build_hpn(HpnConfig::tiny());
  EXPECT_THROW(ParallelismPlanner{c}.plan(4, 1, 1), CheckError);
}

TEST(Parallelism, RejectsOversizedJob) {
  const Cluster c = topo::build_hpn(HpnConfig::tiny());
  EXPECT_THROW(ParallelismPlanner{c}.plan(8, 4, 8), CheckError);  // 32 hosts > 8
}

TEST(Parallelism, ModelPresetsOrdered) {
  // Larger models move more gradient data and compute longer.
  const auto m7 = llama_7b();
  const auto m13 = llama_13b();
  const auto gpt = gpt3_175b();
  EXPECT_LT(m7.traffic.dp_all_reduce.as_bits(), m13.traffic.dp_all_reduce.as_bits());
  EXPECT_LT(m13.traffic.dp_all_reduce.as_bits(), gpt.traffic.dp_all_reduce.as_bits());
  EXPECT_LT(m7.compute_per_iteration, gpt.compute_per_iteration);
  // Table 3 exact volumes for GPT-3 175B.
  EXPECT_DOUBLE_EQ(gpt.traffic.dp_all_reduce.as_gigabytes(), 5.5);
  EXPECT_DOUBLE_EQ(gpt.traffic.pp_send.as_megabytes(), 6.0);
  EXPECT_DOUBLE_EQ(gpt.traffic.tp_all_reduce.as_megabytes(), 560.0);
}

}  // namespace
}  // namespace hpn::workload
