#include "workload/scheduler.h"

#include <gtest/gtest.h>

#include "topo/builders.h"
#include "workload/traffic.h"

namespace hpn::workload {
namespace {

using topo::Cluster;
using topo::HpnConfig;

Cluster small_cluster(int segments = 2, int hosts = 8, int backups = 0) {
  auto cfg = HpnConfig::tiny();
  cfg.segments_per_pod = segments;
  cfg.hosts_per_segment = hosts;
  cfg.backup_hosts_per_segment = backups;
  return topo::build_hpn(cfg);
}

TEST(Scheduler, SingleSegmentJobStaysInOneSegment) {
  const Cluster c = small_cluster();
  ClusterScheduler sched{c};
  const auto p = sched.allocate(32);  // 4 hosts <= 8 per segment
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hosts.size(), 4u);
  EXPECT_EQ(p->segments_spanned, 1);
  const int seg = c.hosts[static_cast<std::size_t>(p->hosts[0])].segment;
  for (const int h : p->hosts) {
    EXPECT_EQ(c.hosts[static_cast<std::size_t>(h)].segment, seg);
  }
}

TEST(Scheduler, OversizeJobSpillsAcrossSegments) {
  const Cluster c = small_cluster();
  ClusterScheduler sched{c};
  const auto p = sched.allocate(96);  // 12 hosts > 8 per segment
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hosts.size(), 12u);
  EXPECT_EQ(p->segments_spanned, 2);
}

TEST(Scheduler, RefusesWhenFull) {
  const Cluster c = small_cluster();
  ClusterScheduler sched{c};
  ASSERT_TRUE(sched.allocate(16 * 8).has_value());
  EXPECT_FALSE(sched.allocate(8).has_value());
  EXPECT_EQ(sched.free_hosts(), 0);
}

TEST(Scheduler, ReleaseReturnsCapacity) {
  const Cluster c = small_cluster();
  ClusterScheduler sched{c};
  const auto p = sched.allocate(64);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(sched.free_hosts(), 8);
  sched.release(p->id);
  EXPECT_EQ(sched.free_hosts(), 16);
  EXPECT_EQ(sched.running_jobs(), 0u);
  EXPECT_THROW(sched.release(p->id), CheckError);
}

TEST(Scheduler, BestFitKeepsBigHolesOpen) {
  // Two segments; a small job should best-fit into the emptier one after
  // fragmentation, preserving a full segment for a big job.
  const Cluster c = small_cluster();
  ClusterScheduler sched{c};
  const auto small1 = sched.allocate(16);  // 2 hosts
  ASSERT_TRUE(small1.has_value());
  const auto small2 = sched.allocate(16);  // should land in the same segment
  ASSERT_TRUE(small2.has_value());
  EXPECT_EQ(c.hosts[static_cast<std::size_t>(small1->hosts[0])].segment,
            c.hosts[static_cast<std::size_t>(small2->hosts[0])].segment);
  const auto big = sched.allocate(64);  // a full segment must still exist
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->segments_spanned, 1);
}

TEST(Scheduler, BackupHostsNotSchedulable) {
  const Cluster c = small_cluster(1, 4, 2);
  ClusterScheduler sched{c};
  EXPECT_EQ(sched.free_hosts(), 4);  // 2 backups excluded
  const auto p = sched.allocate(4 * 8);
  ASSERT_TRUE(p.has_value());
  for (const int h : p->hosts) {
    EXPECT_FALSE(c.hosts[static_cast<std::size_t>(h)].backup);
  }
}

// The §3 claim as a statistical property: with HPN-sized segments almost
// every production job fits one segment; with DCN+-sized segments almost
// none of the big ones do.
TEST(Scheduler, SegmentSizeDrivesLocality) {
  JobSizeModel sizes{21};
  auto fraction_single_segment = [&](int hosts_per_segment, int segments) {
    auto cfg = HpnConfig::tiny();
    cfg.hosts_per_segment = hosts_per_segment;
    cfg.segments_per_pod = segments;
    cfg.tor_uplinks = segments > 1 ? 4 : 60;
    cfg.aggs_per_plane = segments > 1 ? 4 : 60;
    const Cluster c = topo::build_hpn(cfg);
    ClusterScheduler sched{c};
    JobSizeModel model{21};  // same stream for both fabrics
    int single = 0, placed = 0;
    std::vector<JobId> running;
    for (int i = 0; i < 300; ++i) {
      const int gpus = model.sample_gpus();
      auto p = sched.allocate(gpus);
      if (!p.has_value()) {
        // Drain everything and retry (batch scheduler behavior).
        for (const JobId id : running) sched.release(id);
        running.clear();
        p = sched.allocate(gpus);
        if (!p.has_value()) continue;  // bigger than the whole cluster
      }
      running.push_back(p->id);
      ++placed;
      single += p->segments_spanned == 1;
    }
    return placed ? static_cast<double>(single) / placed : 0.0;
  };

  // HPN-shaped: 128-host (1024-GPU) segments. DCN+-shaped: 16-host ones.
  const double hpn = fraction_single_segment(128, 2);
  const double dcn = fraction_single_segment(16, 16);
  EXPECT_GT(hpn, 0.9);   // paper: 96.3%
  EXPECT_LT(dcn, 0.75);  // most nontrivial jobs cross segments
  EXPECT_GT(hpn, dcn + 0.2);
}

}  // namespace
}  // namespace hpn::workload
