#include "thermal/thermal.h"

#include <gtest/gtest.h>

namespace hpn::thermal {
namespace {

TEST(ChipPower, GenerationalIncrease) {
  // Fig 9a: monotone increase; 51.2T is +45% over 25.6T.
  const double p256 = chip_power_watts(Bandwidth::tbps(25.6));
  const double p512 = chip_power_watts(Bandwidth::tbps(51.2));
  EXPECT_NEAR(p512 / p256, 1.45, 0.01);
  EXPECT_LT(chip_power_watts(Bandwidth::tbps(3.2)), chip_power_watts(Bandwidth::tbps(6.4)));
  EXPECT_LT(chip_power_watts(Bandwidth::tbps(6.4)), chip_power_watts(Bandwidth::tbps(12.8)));
}

TEST(ChipPower, InterpolatesBetweenAnchors) {
  const double p = chip_power_watts(Bandwidth::tbps(18.0));
  EXPECT_GT(p, chip_power_watts(Bandwidth::tbps(12.8)));
  EXPECT_LT(p, chip_power_watts(Bandwidth::tbps(25.6)));
}

TEST(Cooling, OptimizedVcIs15PercentBetter) {
  const auto orig = original_vapor_chamber();
  const auto opt = optimized_vapor_chamber();
  EXPECT_NEAR(allowed_operation_power(opt) / allowed_operation_power(orig), 1.15, 1e-9);
}

// Fig 9b: heat pipe and original VC cannot sustain the 51.2T chip at full
// power; the optimized VC can.
TEST(Cooling, OnlyOptimizedVcSurvivesFullLoad) {
  EXPECT_FALSE(survives_full_load(heat_pipe()));
  EXPECT_FALSE(survives_full_load(original_vapor_chamber()));
  EXPECT_TRUE(survives_full_load(optimized_vapor_chamber()));
}

TEST(Cooling, EveryoneSurvivesPreviousGeneration) {
  EXPECT_TRUE(survives_full_load(heat_pipe(), Bandwidth::tbps(25.6)));
  EXPECT_TRUE(survives_full_load(original_vapor_chamber(), Bandwidth::tbps(25.6)));
}

TEST(ThermalState, OriginalVcTripsUnderSustainedFullLoad) {
  ChipThermalState chip{original_vapor_chamber()};
  const double full_power = chip_power_watts(Bandwidth::tbps(51.2));
  for (int i = 0; i < 600 && !chip.tripped(); ++i) {
    chip.step(full_power, Duration::seconds(1.0));
  }
  EXPECT_TRUE(chip.tripped()) << "over-temperature protection must fire";
}

TEST(ThermalState, OptimizedVcStaysBelowTjmax) {
  ChipThermalState chip{optimized_vapor_chamber()};
  const double full_power = chip_power_watts(Bandwidth::tbps(51.2));
  for (int i = 0; i < 600; ++i) chip.step(full_power, Duration::seconds(1.0));
  EXPECT_FALSE(chip.tripped());
  EXPECT_LT(chip.temperature_c(), 105.0);
  EXPECT_GT(chip.temperature_c(), 90.0);  // running hot, as expected
}

TEST(ThermalState, TrippedChipStaysDownAndCools) {
  ChipThermalState chip{heat_pipe()};
  const double full_power = chip_power_watts(Bandwidth::tbps(51.2));
  for (int i = 0; i < 600 && !chip.tripped(); ++i) {
    chip.step(full_power, Duration::seconds(1.0));
  }
  ASSERT_TRUE(chip.tripped());
  for (int i = 0; i < 600; ++i) chip.step(full_power, Duration::seconds(1.0));
  EXPECT_TRUE(chip.tripped());
  EXPECT_NEAR(chip.temperature_c(), 35.0, 2.0);  // idle power, ambient
}

TEST(ThermalState, WarmupIsGradual) {
  ChipThermalState chip{optimized_vapor_chamber()};
  const double p = chip_power_watts(Bandwidth::tbps(51.2));
  const double t1 = chip.step(p, Duration::seconds(1.0));
  const double t2 = chip.step(p, Duration::seconds(1.0));
  EXPECT_GT(t1, 35.0);
  EXPECT_GT(t2, t1);
  EXPECT_LT(t2, steady_junction_temp(p, optimized_vapor_chamber()));
}

TEST(Thermal, SteadyStateAlgebra) {
  const auto vc = original_vapor_chamber();
  const double allowed = allowed_operation_power(vc);
  EXPECT_NEAR(steady_junction_temp(allowed, vc), 105.0, 1e-9);
}

}  // namespace
}  // namespace hpn::thermal
