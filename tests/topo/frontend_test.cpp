#include "topo/frontend.h"

#include <gtest/gtest.h>

#include "routing/router.h"
#include "topo/builders.h"
#include "topo/validate.h"

namespace hpn::topo {
namespace {

TEST(Frontend, AttachBuildsSeparateNetwork) {
  Cluster c = build_hpn(HpnConfig::tiny());  // 8 hosts
  const auto before_links = c.topo.link_count();
  const auto storage = attach_frontend(c);
  EXPECT_EQ(storage.size(), 8u);
  EXPECT_FALSE(c.frontend_aggs.empty());
  EXPECT_FALSE(c.frontend_tors.empty());
  EXPECT_GT(c.topo.link_count(), before_links);
  for (const Host& h : c.hosts) EXPECT_TRUE(h.frontend_nic.is_valid());
  EXPECT_TRUE(validate(c).empty());
}

TEST(Frontend, DoubleAttachRejected) {
  Cluster c = build_hpn(HpnConfig::tiny());
  attach_frontend(c);
  EXPECT_THROW(attach_frontend(c), CheckError);
}

TEST(Frontend, StorageReachableFromEveryHostNic0) {
  Cluster c = build_hpn(HpnConfig::tiny());
  const auto storage = attach_frontend(c);
  routing::Router r{c.topo};
  for (const Host& h : c.hosts) {
    for (const auto& sh : storage) {
      EXPECT_GE(r.distance(h.frontend_nic, sh.host), 2);
    }
  }
}

TEST(Frontend, PhysicallyDecoupledFromBackend) {
  // §8: frontend traffic cannot touch the backend fabric. No route exists
  // from a frontend NIC to a backend NIC.
  Cluster c = build_hpn(HpnConfig::tiny());
  attach_frontend(c);
  routing::Router r{c.topo};
  EXPECT_EQ(r.distance(c.hosts[0].frontend_nic, c.nic_of(8).nic), -1);
  EXPECT_EQ(r.distance(c.nic_of(0).nic, c.hosts[1].frontend_nic), -1);
}

TEST(Frontend, OneToOneOversubscription) {
  // Each frontend ToR: downstream access bandwidth == upstream fabric
  // bandwidth (1:1, §8).
  Cluster c = build_hpn(HpnConfig::tiny());
  attach_frontend(c);
  for (const NodeId tor : c.frontend_tors) {
    double down = 0.0, up = 0.0;
    for (const LinkId l : c.topo.out_links(tor)) {
      const auto& link = c.topo.link(l);
      (link.kind == LinkKind::kAccess ? down : up) += link.capacity.as_gbps();
    }
    EXPECT_LE(down, up + 1e-9) << c.topo.node(tor).name;
  }
}

TEST(Frontend, StorageDualTor) {
  Cluster c = build_hpn(HpnConfig::tiny());
  const auto storage = attach_frontend(c);
  for (const auto& sh : storage) {
    EXPECT_EQ(sh.nic.ports, 2);
    EXPECT_NE(sh.nic.tor[0], sh.nic.tor[1]);
    EXPECT_FALSE(sh.on_backend);
  }
}

TEST(BackendStorage, AttachesToBackendTors) {
  Cluster c = build_hpn(HpnConfig::tiny());
  const auto storage = attach_backend_storage(c, 8);
  ASSERT_EQ(storage.size(), 8u);
  routing::Router r{c.topo};
  for (const auto& sh : storage) {
    EXPECT_TRUE(sh.on_backend);
    // Reachable from the same-rail backend NIC of any segment-0 host.
    const int rail = c.topo.node(sh.host).loc.rail;
    const NodeId nic = c.hosts[1].nics[static_cast<std::size_t>(rail)].nic;
    EXPECT_EQ(r.distance(nic, sh.host), 2);
  }
}

TEST(BackendStorage, ConsumesTorPorts) {
  // §10 point 3: backend storage eats backend ToR ports.
  Cluster c = build_hpn(HpnConfig::tiny());
  const NodeId tor = c.hosts[0].nics[0].tor[0];
  const auto ports_before = c.topo.port_count(tor);
  attach_backend_storage(c, 8);
  EXPECT_GT(c.topo.port_count(tor), ports_before);
}

}  // namespace
}  // namespace hpn::topo
