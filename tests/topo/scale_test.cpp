#include "topo/scale.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace hpn::topo {
namespace {

// Table 2: the mechanism chain 64 -> 128 -> 1K tier1; 2K -> 4K -> 8K -> 15K
// tier2.
TEST(Scale, Table2MechanismChain) {
  const auto steps = scale_mechanisms();
  ASSERT_EQ(steps.size(), 5u);
  EXPECT_EQ(steps[0].mechanism, "51.20Tbps Clos");
  EXPECT_EQ(steps[0].tier1_gpus, 64);
  EXPECT_EQ(steps[0].tier2_gpus, 2048);
  EXPECT_EQ(steps[1].tier1_gpus, 128);
  EXPECT_EQ(steps[1].tier2_gpus, 4096);
  EXPECT_EQ(steps[2].tier1_gpus, 1024);
  EXPECT_EQ(steps[3].tier2_gpus, 8192);
  EXPECT_EQ(steps[4].tier2_gpus, 15360);
}

// Table 4 column 1: any-to-any tier2 = 2 planes, 15360 GPUs.
TEST(Scale, AnyToAnyPod) {
  const auto s = any_to_any_pod();
  EXPECT_EQ(s.tier2_planes, 2);
  EXPECT_EQ(s.gpus_per_segment, 1024);
  EXPECT_EQ(s.segments_per_pod, 15);
  EXPECT_EQ(s.gpus_per_pod, 15360);
}

// Table 4 column 2: rail-only tier2 = 16 planes, 122880 GPUs.
TEST(Scale, RailOnlyPod) {
  const auto s = rail_only_pod();
  EXPECT_EQ(s.tier2_planes, 16);
  EXPECT_EQ(s.segments_per_pod, 120);
  EXPECT_EQ(s.gpus_per_pod, 122880);
}

// Table 1: search-space comparison. HPN O(60); 3-tier architectures 1-2
// orders of magnitude larger.
TEST(Scale, Table1Complexity) {
  const auto rows = path_complexity_table();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].architecture, "Pod in HPN");
  EXPECT_EQ(rows[0].search_space, 60);
  EXPECT_EQ(rows[1].search_space, 4096);
  EXPECT_EQ(rows[2].search_space, 2048);
  EXPECT_EQ(rows[3].search_space, 2304);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const double ratio = static_cast<double>(rows[i].search_space) /
                         static_cast<double>(rows[0].search_space);
    EXPECT_GE(ratio, 10.0) << "HPN should win by 1-2 orders of magnitude";
    EXPECT_LE(ratio, 100.0);
  }
}

// Cross-check: the analytic pod scale matches what the builder materializes.
TEST(Scale, AnalyticMatchesBuilder) {
  const auto s = any_to_any_pod();
  const Cluster c = build_hpn(HpnConfig::paper_pod());
  int active_gpus = 0;
  for (const Host& h : c.hosts) {
    if (!h.backup) active_gpus += static_cast<int>(h.gpus.size());
  }
  EXPECT_EQ(active_gpus, s.gpus_per_pod);
  EXPECT_EQ(c.segments_per_pod, s.segments_per_pod);
}

TEST(Scale, PreviousGenChipIsSmaller) {
  ChipSpec prev;
  prev.capacity = Bandwidth::tbps(25.6);
  const auto steps = scale_mechanisms(prev);
  EXPECT_EQ(steps[0].tier1_gpus, 32);
  EXPECT_LT(steps[4].tier2_gpus, 15360);
}

}  // namespace
}  // namespace hpn::topo
