#include "topo/builders.h"

#include <gtest/gtest.h>

#include <set>

namespace hpn::topo {
namespace {

TEST(HpnBuilder, TinyShape) {
  const auto cfg = HpnConfig::tiny();
  const Cluster c = build_hpn(cfg);
  EXPECT_EQ(c.arch, Arch::kHpn);
  EXPECT_EQ(c.hosts.size(), 8u);  // 2 segments x 4 hosts
  EXPECT_EQ(c.gpu_count(), 64);
  // 2 segments x 8 rails x 2 planes = 32 ToRs.
  EXPECT_EQ(c.tors.size(), 32u);
  // 2 planes x 4 aggs.
  EXPECT_EQ(c.aggs.size(), 8u);
  EXPECT_TRUE(c.cores.empty());
}

TEST(HpnBuilder, GpuRankMapping) {
  const Cluster c = build_hpn(HpnConfig::tiny());
  for (int rank = 0; rank < c.gpu_count(); ++rank) {
    const NodeId g = c.gpu(rank);
    const GpuRef ref = c.locate_gpu(g);
    ASSERT_TRUE(ref.valid());
    EXPECT_EQ(ref.host, rank / 8);
    EXPECT_EQ(ref.rail, rank % 8);
  }
}

TEST(HpnBuilder, DualTorPortsLandOnDistinctPlanes) {
  const Cluster c = build_hpn(HpnConfig::tiny());
  for (const Host& h : c.hosts) {
    for (const NicAttachment& nic : h.nics) {
      ASSERT_EQ(nic.ports, 2);
      EXPECT_NE(nic.tor[0], nic.tor[1]);
      EXPECT_EQ(c.topo.node(nic.tor[0]).loc.plane, 0);
      EXPECT_EQ(c.topo.node(nic.tor[1]).loc.plane, 1);
    }
  }
}

TEST(HpnBuilder, RailOptimizedWiring) {
  const Cluster c = build_hpn(HpnConfig::tiny());
  for (const Host& h : c.hosts) {
    for (std::size_t rail = 0; rail < h.nics.size(); ++rail) {
      for (int p = 0; p < 2; ++p) {
        const auto& tor = c.topo.node(h.nics[rail].tor[static_cast<std::size_t>(p)]);
        EXPECT_EQ(tor.loc.rail, static_cast<int>(rail));
        EXPECT_EQ(tor.loc.segment, h.segment);
      }
    }
  }
}

TEST(HpnBuilder, DualPlaneAggIsolation) {
  const Cluster c = build_hpn(HpnConfig::tiny());
  for (const NodeId agg : c.aggs) {
    const int plane = c.topo.node(agg).loc.plane;
    for (const LinkId l : c.topo.out_links(agg)) {
      const Node& peer = c.topo.node(c.topo.link(l).dst);
      EXPECT_EQ(peer.kind, NodeKind::kTor);
      EXPECT_EQ(peer.loc.plane, plane);
    }
  }
}

TEST(HpnBuilder, TorUplinkCount) {
  const auto cfg = HpnConfig::tiny();
  const Cluster c = build_hpn(cfg);
  for (const NodeId tor : c.tors) {
    int uplinks = 0;
    for (const LinkId l : c.topo.out_links(tor)) {
      if (c.topo.node(c.topo.link(l).dst).kind == NodeKind::kAgg) ++uplinks;
    }
    EXPECT_EQ(uplinks, cfg.tor_uplinks);
  }
}

TEST(HpnBuilder, SinglePlaneAblationSharesAggs) {
  auto cfg = HpnConfig::tiny();
  cfg.dual_plane = false;
  const Cluster c = build_hpn(cfg);
  EXPECT_EQ(c.arch, Arch::kHpnSinglePlane);
  EXPECT_EQ(c.aggs.size(), 4u);  // one shared group
  // Every ToR (both planes) connects to every agg.
  for (const NodeId tor : c.tors) {
    std::set<NodeId> peers;
    for (const LinkId l : c.topo.out_links(tor)) {
      const Node& n = c.topo.node(c.topo.link(l).dst);
      if (n.kind == NodeKind::kAgg) peers.insert(n.id);
    }
    EXPECT_EQ(peers.size(), 4u);
  }
}

TEST(HpnBuilder, SingleTorAblation) {
  auto cfg = HpnConfig::tiny();
  cfg.dual_tor = false;
  const Cluster c = build_hpn(cfg);
  EXPECT_EQ(c.tors.size(), 16u);  // 2 segments x 8 rails x 1
  for (const Host& h : c.hosts) {
    for (const NicAttachment& nic : h.nics) {
      EXPECT_EQ(nic.ports, 1);
      EXPECT_TRUE(nic.tor[0].is_valid());
      EXPECT_FALSE(nic.tor[1].is_valid());
    }
  }
}

TEST(HpnBuilder, NonRailOptimizedUsesOneTorSet) {
  auto cfg = HpnConfig::tiny();
  cfg.rail_optimized = false;
  const Cluster c = build_hpn(cfg);
  EXPECT_EQ(c.tors.size(), 4u);  // 2 segments x 1 set x 2 planes
  const Host& h = c.hosts.front();
  std::set<NodeId> tors;
  for (const NicAttachment& nic : h.nics) {
    tors.insert(nic.tor[0]);
    tors.insert(nic.tor[1]);
  }
  EXPECT_EQ(tors.size(), 2u);  // all 8 NICs share one dual-ToR pair
}

TEST(HpnBuilder, BackupHostsFlagged) {
  auto cfg = HpnConfig::tiny();
  cfg.backup_hosts_per_segment = 1;
  const Cluster c = build_hpn(cfg);
  EXPECT_EQ(c.hosts.size(), 10u);
  int backups = 0;
  for (const Host& h : c.hosts) backups += h.backup;
  EXPECT_EQ(backups, 2);
}

TEST(HpnBuilder, MultiPodBuildsCores) {
  auto cfg = HpnConfig::tiny();
  cfg.pods = 2;
  const Cluster c = build_hpn(cfg);
  EXPECT_FALSE(c.cores.empty());
  // Cores stay plane-isolated (§7 carries dual-plane into tier3).
  for (const NodeId core : c.cores) {
    const int plane = c.topo.node(core).loc.plane;
    for (const LinkId l : c.topo.out_links(core)) {
      EXPECT_EQ(c.topo.node(c.topo.link(l).dst).loc.plane, plane);
    }
  }
  // Every pod reaches every core of each plane (rotation covers all).
  for (const NodeId core : c.cores) {
    std::set<int> pods;
    for (const LinkId l : c.topo.out_links(core)) {
      pods.insert(c.topo.node(c.topo.link(l).dst).loc.pod);
    }
    EXPECT_EQ(pods.size(), 2u);
  }
}

TEST(HpnBuilder, RailOnlyTier2Partitioning) {
  auto cfg = HpnConfig::tiny();
  cfg.rail_only_tier2 = true;
  const Cluster c = build_hpn(cfg);
  EXPECT_EQ(c.arch, Arch::kHpnRailOnly);
  // Aggs per (plane, rail) group: 2 planes x 8 rails x 4 = 64.
  EXPECT_EQ(c.aggs.size(), 64u);
  for (const NodeId agg : c.aggs) {
    const Node& an = c.topo.node(agg);
    for (const LinkId l : c.topo.out_links(agg)) {
      const Node& peer = c.topo.node(c.topo.link(l).dst);
      EXPECT_EQ(peer.loc.rail, an.loc.rail);
      EXPECT_EQ(peer.loc.plane, an.loc.plane);
    }
  }
}

TEST(HpnBuilder, PaperPodScale) {
  // Full production Pod: verify scale facts from §5-§6 without materializing
  // flows: 15 segments x 128 active hosts x 8 GPUs = 15360 active GPUs.
  const Cluster c = build_hpn(HpnConfig::paper_pod());
  int active = 0, backup = 0;
  for (const Host& h : c.hosts) (h.backup ? backup : active) += 1;
  EXPECT_EQ(active * 8, 15360);
  EXPECT_EQ(backup, 15 * 8);
  EXPECT_EQ(c.tors.size(), 15u * 16u);
  EXPECT_EQ(c.aggs.size(), 120u);
  // ToR port budget: (128+8) x 200G down + 60 x 400G up = 51.2T exactly.
  const NodeId tor = c.tors.front();
  Bandwidth total = Bandwidth::zero();
  for (const LinkId l : c.topo.out_links(tor)) total += c.topo.link(l).capacity;
  EXPECT_NEAR(total.as_gbps(), 51200.0, 1e-6);
}

TEST(DcnBuilder, PaperPodShape) {
  const Cluster c = build_dcn_plus(DcnPlusConfig::paper_pod());
  EXPECT_EQ(c.arch, Arch::kDcnPlus);
  EXPECT_EQ(c.hosts.size(), 64u);       // 4 segments x 16 hosts
  EXPECT_EQ(c.gpu_count(), 512);
  EXPECT_EQ(c.tors.size(), 8u);         // 4 segments x 2
  EXPECT_EQ(c.aggs.size(), 8u);
  // ToR uplinks: 8 aggs x 8 links = 64.
  int uplinks = 0;
  for (const LinkId l : c.topo.out_links(c.tors.front())) {
    if (c.topo.node(c.topo.link(l).dst).kind == NodeKind::kAgg) ++uplinks;
  }
  EXPECT_EQ(uplinks, 64);
}

TEST(DcnBuilder, AllNicsShareTorPair) {
  const Cluster c = build_dcn_plus(DcnPlusConfig::paper_pod());
  const Host& h = c.hosts.front();
  std::set<NodeId> tors;
  for (const NicAttachment& nic : h.nics) {
    tors.insert(nic.tor[0]);
    tors.insert(nic.tor[1]);
  }
  EXPECT_EQ(tors.size(), 2u);  // not rail-optimized
}

TEST(DcnBuilder, MultiPodCores) {
  DcnPlusConfig cfg;
  cfg.pods = 2;
  cfg.segments_per_pod = 1;
  cfg.hosts_per_segment = 2;
  const Cluster c = build_dcn_plus(cfg);
  EXPECT_EQ(c.cores.size(), 16u);
  // Each agg spreads 64 uplinks over 16 cores: 4 links per core.
  const NodeId agg = c.aggs.front();
  int core_links = 0;
  for (const LinkId l : c.topo.out_links(agg)) {
    if (c.topo.node(c.topo.link(l).dst).kind == NodeKind::kCore) ++core_links;
  }
  EXPECT_EQ(core_links, 64);
}

TEST(FatTree, K4Shape) {
  const Cluster c = build_fat_tree(FatTreeConfig{.k = 4});
  EXPECT_EQ(c.hosts.size(), 16u);  // k^3/4
  EXPECT_EQ(c.tors.size(), 8u);    // k pods x k/2
  EXPECT_EQ(c.aggs.size(), 8u);
  EXPECT_EQ(c.cores.size(), 4u);   // (k/2)^2
  EXPECT_EQ(c.gpus_per_host, 1);
}

TEST(FatTree, OddKRejected) {
  EXPECT_THROW(build_fat_tree(FatTreeConfig{.k = 5}), CheckError);
}

TEST(RailOnlyBuilder, TinyShape) {
  const Cluster c = build_rail_only(RailOnlyConfig::tiny());
  EXPECT_EQ(c.arch, Arch::kRailOnly);
  EXPECT_EQ(c.hosts.size(), 4u);
  EXPECT_EQ(c.gpu_count(), 32);
  EXPECT_EQ(c.tors.size(), 16u);  // 8 rails x 2 planes, no Agg/Core at all
  EXPECT_TRUE(c.aggs.empty());
  EXPECT_TRUE(c.cores.empty());
  // Each NIC dual-homes onto its own rail's ToR pair.
  for (const Host& h : c.hosts) {
    for (std::size_t rail = 0; rail < h.nics.size(); ++rail) {
      ASSERT_EQ(h.nics[rail].ports, 2);
      for (int p = 0; p < 2; ++p) {
        const Node& tor = c.topo.node(h.nics[rail].tor[static_cast<std::size_t>(p)]);
        EXPECT_EQ(tor.loc.rail, static_cast<int>(rail));
        EXPECT_EQ(tor.loc.plane, p);
      }
    }
  }
}

TEST(RailXBuilder, TinyShape) {
  const auto cfg = RailXConfig::tiny();
  const Cluster c = build_railx(cfg);
  EXPECT_EQ(c.arch, Arch::kRailXLite);
  EXPECT_EQ(c.hosts.size(), 10u);  // 5 groups x 2 hosts
  EXPECT_EQ(c.tors.size(), 40u);   // 5 groups x 8 rails
  EXPECT_TRUE(c.aggs.empty());
  EXPECT_EQ(c.segments_per_pod, cfg.groups);
  // Rotor schedule: G-1 epochs over C(G,2) circuits per rail.
  EXPECT_EQ(c.circuits.epochs(), cfg.groups - 1);
  // Every circuit link connects same-rail ToRs of different groups.
  for (const auto& epoch : c.circuits.epoch_links) {
    for (const LinkId l : epoch) {
      const Node& a = c.topo.node(c.topo.link(l).src);
      const Node& b = c.topo.node(c.topo.link(l).dst);
      EXPECT_EQ(a.kind, NodeKind::kTor);
      EXPECT_EQ(b.kind, NodeKind::kTor);
      EXPECT_EQ(a.loc.rail, b.loc.rail);
      EXPECT_NE(a.loc.segment, b.loc.segment);
    }
  }
}

TEST(UbMeshBuilder, TinyShape) {
  const Cluster c = build_ubmesh(UbMeshConfig::tiny());
  EXPECT_EQ(c.arch, Arch::kUbMeshLite);
  EXPECT_EQ(c.tors.size(), 4u);   // 2x2 grid
  EXPECT_EQ(c.hosts.size(), 8u);  // 2 hosts per switch
  EXPECT_TRUE(c.aggs.empty());
  EXPECT_TRUE(c.circuits.empty());
  // 2x2 HyperX: each switch meshes with 1 row peer + 1 column peer.
  for (const NodeId tor : c.tors) {
    int fabric_links = 0;
    for (const LinkId l : c.topo.out_links(tor)) {
      if (c.topo.link(l).kind == LinkKind::kFabric) ++fabric_links;
    }
    EXPECT_EQ(fabric_links, 2);
  }
  // Hosts attach single-port to the switch of their segment.
  for (const Host& h : c.hosts) {
    for (const NicAttachment& nic : h.nics) {
      ASSERT_EQ(nic.ports, 1);
      EXPECT_EQ(c.topo.node(nic.tor[0]).loc.segment, h.segment);
    }
  }
}

TEST(Builders, InvalidConfigRejected) {
  HpnConfig bad = HpnConfig::tiny();
  bad.hosts_per_segment = 0;
  EXPECT_THROW(build_hpn(bad), CheckError);

  HpnConfig indivisible = HpnConfig::tiny();
  indivisible.tor_uplinks = 3;  // not divisible by 4 aggs
  EXPECT_THROW(build_hpn(indivisible), CheckError);

  RailOnlyConfig no_hosts;
  no_hosts.hosts = 0;
  EXPECT_THROW(build_rail_only(no_hosts), CheckError);

  RailXConfig one_group;
  one_group.groups = 1;
  EXPECT_THROW(build_railx(one_group), CheckError);

  UbMeshConfig lone_switch;
  lone_switch.rows = 1;
  lone_switch.cols = 1;
  EXPECT_THROW(build_ubmesh(lone_switch), CheckError);
}

}  // namespace
}  // namespace hpn::topo
