#include "topo/validate.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace hpn::topo {
namespace {

TEST(Validate, TinyHpnPasses) {
  const Cluster c = build_hpn(HpnConfig::tiny());
  EXPECT_TRUE(validate(c).empty());
  EXPECT_NO_THROW(validate_or_throw(c));
}

TEST(Validate, PaperPodPasses) {
  const Cluster c = build_hpn(HpnConfig::paper_pod());
  const auto violations = validate(c);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations.front());
}

TEST(Validate, DcnPlusPasses) {
  const Cluster c = build_dcn_plus(DcnPlusConfig::paper_pod());
  EXPECT_TRUE(validate(c).empty());
}

TEST(Validate, FatTreePasses) {
  const Cluster c = build_fat_tree(FatTreeConfig{.k = 4});
  EXPECT_TRUE(validate(c).empty());
}

TEST(Validate, DetectsCrossPlaneMiswire) {
  // Simulate an on-site wiring mistake (§10): swap one NIC's two ToRs so
  // port 0 lands on plane 1. The blueprint check must catch it.
  Cluster c = build_hpn(HpnConfig::tiny());
  NicAttachment& nic = c.hosts.front().nics.front();
  std::swap(nic.tor[0], nic.tor[1]);
  std::swap(nic.access[0], nic.access[1]);
  const auto violations = validate(c);
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const auto& v : violations) found |= v.find("plane") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Validate, DetectsCrossRailMiswire) {
  Cluster c = build_hpn(HpnConfig::tiny());
  Host& h = c.hosts.front();
  // Point rail 0's record at rail 1's ToR attachment.
  h.nics[0] = h.nics[1];
  const auto violations = validate(c);
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const auto& v : violations) found |= v.find("cross-rail") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Validate, DetectsChipBudgetViolation) {
  // A ToR with more port bandwidth than one 51.2T chip provides cannot be a
  // single-chip switch (§5.1).
  Cluster c = build_hpn(HpnConfig::paper_pod());
  ValidationOptions opts;
  opts.chip_capacity = Bandwidth::tbps(25.6);  // previous-gen chip
  const auto violations = validate(c, opts);
  EXPECT_FALSE(violations.empty());
}

TEST(Validate, ThrowListsViolations) {
  Cluster c = build_hpn(HpnConfig::tiny());
  std::swap(c.hosts[0].nics[0].tor[0], c.hosts[0].nics[0].tor[1]);
  std::swap(c.hosts[0].nics[0].access[0], c.hosts[0].nics[0].access[1]);
  EXPECT_THROW(validate_or_throw(c), ConfigError);
}

}  // namespace
}  // namespace hpn::topo
