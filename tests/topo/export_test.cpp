#include "topo/export.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace hpn::topo {
namespace {

TEST(ExportDot, ContainsAllSwitchesAndValidSyntax) {
  const Cluster c = build_hpn(HpnConfig::tiny());
  const std::string dot = to_dot(c);
  EXPECT_EQ(dot.substr(0, 11), "graph hpn {");
  EXPECT_EQ(dot.back(), '\n');
  for (const NodeId tor : c.tors) {
    EXPECT_NE(dot.find("\"" + c.topo.node(tor).name + "\""), std::string::npos);
  }
  for (const NodeId agg : c.aggs) {
    EXPECT_NE(dot.find("\"" + c.topo.node(agg).name + "\""), std::string::npos);
  }
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), std::count(dot.begin(), dot.end(), '}'));
}

TEST(ExportDot, CollapseHostsShrinksOutput) {
  const Cluster c = build_hpn(HpnConfig::tiny());
  const std::string full = to_dot(c);
  ExportOptions opts;
  opts.collapse_hosts = true;
  const std::string collapsed = to_dot(c, opts);
  EXPECT_LT(collapsed.size(), full.size() * 6 / 10);
  EXPECT_NE(collapsed.find("\"host0\""), std::string::npos);
  EXPECT_EQ(collapsed.find(".nvsw"), std::string::npos);
}

TEST(ExportDot, DownLinksAreDashed) {
  Cluster c = build_hpn(HpnConfig::tiny());
  c.topo.set_duplex_up(c.nic_of(0).access[0], false);
  const std::string dot = to_dot(c);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(ExportDot, UndirectedEmitsOneEdgePerCable) {
  const Cluster c = build_hpn(HpnConfig::tiny());
  const std::string dot = to_dot(c);
  std::size_t edges = 0, pos = 0;
  while ((pos = dot.find(" -- ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, c.topo.link_count() / 2);
}

TEST(ExportJson, NodeAndLinkCountsMatch) {
  const Cluster c = build_hpn(HpnConfig::tiny());
  const std::string json = to_json(c);
  std::size_t ids = 0, pos = 0;
  while ((pos = json.find("{\"id\":", pos)) != std::string::npos) {
    ++ids;
    pos += 5;
  }
  EXPECT_EQ(ids, c.topo.node_count() + c.topo.link_count());
  EXPECT_NE(json.find("\"arch\": \"HPN\""), std::string::npos);
  // No trailing commas before closing brackets.
  EXPECT_EQ(json.find(",\n  ]"), std::string::npos);
}

TEST(ExportJson, LinkStateSerialized) {
  Cluster c = build_hpn(HpnConfig::tiny());
  EXPECT_EQ(to_json(c).find("\"up\": false"), std::string::npos);
  c.topo.set_link_up(c.nic_of(0).access[0], false);
  EXPECT_NE(to_json(c).find("\"up\": false"), std::string::npos);
}

}  // namespace
}  // namespace hpn::topo
