#include "topo/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fabric/fabric.h"
#include "topo/builders.h"

namespace hpn::topo {
namespace {

Cluster small_hpn() {
  HpnConfig cfg = HpnConfig::tiny();
  cfg.segments_per_pod = 4;
  cfg.hosts_per_segment = 2;
  return build_hpn(cfg);
}

void check_consistency(const Cluster& cluster, const Partition& p) {
  const Topology& topo = cluster.topo;
  ASSERT_EQ(p.node_shard.size(), topo.node_count());
  ASSERT_EQ(p.link_shard.size(), topo.link_count());
  std::size_t assigned = 0;
  for (std::size_t s = 0; s < p.nodes_per_shard.size(); ++s) {
    assigned += p.nodes_per_shard[s];
  }
  EXPECT_EQ(assigned, topo.node_count());
  Duration min_boundary = Duration::infinite();
  std::size_t boundary_count = 0;
  for (const Link& l : topo.links()) {
    EXPECT_EQ(p.shard_of_link(l.id), p.shard_of_node(l.src))
        << "link owner must be its source node's shard";
    const bool crosses = p.shard_of_node(l.src) != p.shard_of_node(l.dst);
    EXPECT_EQ(p.is_boundary(l.id), crosses);
    if (crosses) {
      ++boundary_count;
      min_boundary = std::min(min_boundary, l.latency);
    }
  }
  EXPECT_EQ(p.boundary_links.size(), boundary_count);
  EXPECT_EQ(p.lookahead, min_boundary);
}

TEST(Partition, SingleShardHasNoBoundary) {
  const Cluster cluster = small_hpn();
  const Partition p = partition_cluster(cluster, 1);
  EXPECT_EQ(p.shards, 1);
  for (int s : p.node_shard) EXPECT_EQ(s, 0);
  EXPECT_TRUE(p.boundary_links.empty());
  EXPECT_TRUE(p.lookahead.is_infinite());
  check_consistency(cluster, p);
}

TEST(Partition, HpnFourWayIsConsistentAndUsesEveryShard) {
  const Cluster cluster = small_hpn();
  const Partition p = partition_cluster(cluster, 4);
  check_consistency(cluster, p);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(p.nodes_per_shard[s], 0u) << "shard " << s << " is empty";
  }
  // 4 segments into 4 shards: segment islands must not be split, so every
  // host/NIC/GPU of one segment shares a shard with its ToRs.
  for (const Host& h : cluster.hosts) {
    const auto tors = cluster.tors_of_segment(h.pod, h.segment);
    ASSERT_FALSE(tors.empty());
    const int shard = p.shard_of_node(tors.front());
    for (NodeId tor : tors) EXPECT_EQ(p.shard_of_node(tor), shard);
    for (NodeId g : h.gpus) EXPECT_EQ(p.shard_of_node(g), shard);
    for (const NicAttachment& nic : h.nics) {
      EXPECT_EQ(p.shard_of_node(nic.nic), shard);
    }
  }
}

TEST(Partition, LookaheadIsPositiveOnRealFabrics) {
  for (const fabric::Fabric* f : fabric::all_fabrics()) {
    const Cluster cluster = f->build(fabric::FabricScale{});
    for (int shards : {2, 4, 8}) {
      const Partition p = partition_cluster(cluster, shards);
      check_consistency(cluster, p);
      if (!p.boundary_links.empty()) {
        EXPECT_GT(p.lookahead, Duration::zero())
            << f->name() << " at " << shards << " shards";
      }
    }
  }
}

TEST(Partition, DeterministicAcrossCalls) {
  const Cluster a = small_hpn();
  const Cluster b = small_hpn();
  const Partition pa = partition_cluster(a, 8);
  const Partition pb = partition_cluster(b, 8);
  EXPECT_EQ(pa.node_shard, pb.node_shard);
  EXPECT_EQ(pa.link_shard, pb.link_shard);
  EXPECT_EQ(pa.lookahead, pb.lookahead);
}

TEST(Partition, MoreShardsThanCommunitiesLeavesSpareShardsEmpty) {
  // One segment, one pod: few communities; a 16-way split must still be
  // valid (correctness never depends on balance).
  HpnConfig cfg = HpnConfig::tiny();
  cfg.segments_per_pod = 1;
  cfg.hosts_per_segment = 1;
  const Cluster cluster = build_hpn(cfg);
  const Partition p = partition_cluster(cluster, 16);
  check_consistency(cluster, p);
}

TEST(Partition, HandBuiltAdversarialDeriveLinks) {
  // Round-robin node assignment: nearly every link becomes a boundary.
  const Cluster cluster = small_hpn();
  Partition p;
  p.shards = 3;
  p.node_shard.resize(cluster.topo.node_count());
  for (std::size_t i = 0; i < p.node_shard.size(); ++i) {
    p.node_shard[i] = static_cast<int>(i % 3);
  }
  p.derive_links(cluster.topo);
  check_consistency(cluster, p);
  EXPECT_FALSE(p.boundary_links.empty());
  EXPECT_FALSE(p.lookahead.is_infinite());
}

}  // namespace
}  // namespace hpn::topo
