#include "topo/blast_radius.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace hpn::topo {
namespace {

TEST(BlastRadius, DualTorTorFailureOnlyDegrades) {
  Cluster c = build_hpn(HpnConfig::tiny());
  // A rail-0 plane-0 ToR serves 4 hosts in its segment.
  const NodeId tor = c.hosts[0].nics[0].tor[0];
  const BlastRadius r = blast_radius_of_node(c, tor);
  EXPECT_EQ(r.isolated_hosts, 0) << "dual-ToR: the sibling keeps every host attached";
  EXPECT_EQ(r.degraded_hosts, 4);
  EXPECT_GT(r.bandwidth_lost_fraction, 0.0);
}

TEST(BlastRadius, SingleTorTorFailureIsolatesTheSegmentRail) {
  auto cfg = HpnConfig::tiny();
  cfg.dual_tor = false;
  Cluster c = build_hpn(cfg);
  const NodeId tor = c.hosts[0].nics[0].tor[0];
  const BlastRadius r = blast_radius_of_node(c, tor);
  EXPECT_EQ(r.isolated_hosts, 4) << "single-ToR: every host on the rail is cut off";
}

TEST(BlastRadius, DcnPlusSingleTorScalesWorse) {
  // DCN+'s non-rail-optimized single-ToR variant: one ToR carries all 8
  // NICs of 16 hosts — the "hundreds of hosts" story at paper scale.
  topo::DcnPlusConfig cfg;
  cfg.dual_tor = false;
  Cluster c = build_dcn_plus(cfg);
  const BlastRadius r = worst_blast_radius(c, NodeKind::kTor);
  EXPECT_EQ(r.isolated_hosts, 16);
}

TEST(BlastRadius, AggFailureNeverIsolates) {
  Cluster c = build_hpn(HpnConfig::tiny());
  const BlastRadius r = worst_blast_radius(c, NodeKind::kAgg);
  EXPECT_EQ(r.isolated_hosts, 0);
  EXPECT_EQ(r.degraded_hosts, 0) << "Agg failures cost fabric paths, not access";
}

TEST(BlastRadius, AccessLinkFailure) {
  Cluster c = build_hpn(HpnConfig::tiny());
  const BlastRadius dual = blast_radius_of_access(c, 2, 3, 1);
  EXPECT_EQ(dual.isolated_hosts, 0);
  EXPECT_EQ(dual.degraded_hosts, 1);

  auto cfg = HpnConfig::tiny();
  cfg.dual_tor = false;
  Cluster single = build_hpn(cfg);
  const BlastRadius s = blast_radius_of_access(single, 2, 3, 0);
  EXPECT_EQ(s.isolated_hosts, 1) << "single-ToR: one dead cable halts the host's job";
}

TEST(BlastRadius, RestoresTopologyAfterAssessment) {
  Cluster c = build_hpn(HpnConfig::tiny());
  const NodeId tor = c.hosts[0].nics[0].tor[0];
  (void)blast_radius_of_node(c, tor);
  for (const LinkId l : c.topo.out_links(tor)) {
    EXPECT_TRUE(c.topo.is_up(l));
  }
}

}  // namespace
}  // namespace hpn::topo
