#include "topo/topology.h"

#include <gtest/gtest.h>

namespace hpn::topo {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  Topology t;
  NodeId a{}, b{}, c{};

  void SetUp() override {
    a = t.add_node(NodeKind::kNic, "a");
    b = t.add_node(NodeKind::kTor, "b");
    c = t.add_node(NodeKind::kAgg, "c");
  }
};

TEST_F(TopologyTest, AddNodeAssignsDenseIds) {
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.node(b).kind, NodeKind::kTor);
  EXPECT_EQ(t.node(b).name, "b");
}

TEST_F(TopologyTest, DuplexLinkCreatesBothDirections) {
  const auto dl = t.add_duplex_link(a, b, LinkKind::kAccess, Bandwidth::gbps(200),
                                    Duration::micros(1));
  EXPECT_EQ(t.link_count(), 2u);
  const Link& fwd = t.link(dl.forward);
  const Link& bwd = t.link(dl.backward);
  EXPECT_EQ(fwd.src, a);
  EXPECT_EQ(fwd.dst, b);
  EXPECT_EQ(bwd.src, b);
  EXPECT_EQ(bwd.dst, a);
  EXPECT_EQ(fwd.reverse, dl.backward);
  EXPECT_EQ(bwd.reverse, dl.forward);
  EXPECT_EQ(fwd.capacity.as_gbps(), 200.0);
}

TEST_F(TopologyTest, PortIndexesAllocateSequentially) {
  const auto l1 = t.add_duplex_link(a, b, LinkKind::kAccess, Bandwidth::gbps(200),
                                    Duration::micros(1));
  const auto l2 = t.add_duplex_link(a, c, LinkKind::kFabric, Bandwidth::gbps(400),
                                    Duration::micros(1));
  EXPECT_EQ(t.link(l1.forward).src_port, 0);
  EXPECT_EQ(t.link(l2.forward).src_port, 1);
  EXPECT_EQ(t.port_count(a), 2);
  EXPECT_EQ(t.port_count(b), 1);
}

TEST_F(TopologyTest, SelfLoopRejected) {
  EXPECT_THROW(t.add_duplex_link(a, a, LinkKind::kFabric, Bandwidth::gbps(1),
                                 Duration::micros(1)),
               CheckError);
}

TEST_F(TopologyTest, ZeroCapacityRejected) {
  EXPECT_THROW(t.add_duplex_link(a, b, LinkKind::kFabric, Bandwidth::zero(),
                                 Duration::micros(1)),
               CheckError);
}

TEST_F(TopologyTest, AdjacencyAndFindLink) {
  t.add_duplex_link(a, b, LinkKind::kAccess, Bandwidth::gbps(200), Duration::micros(1));
  t.add_duplex_link(a, c, LinkKind::kFabric, Bandwidth::gbps(400), Duration::micros(1));
  EXPECT_EQ(t.out_links(a).size(), 2u);
  EXPECT_EQ(t.out_links(b).size(), 1u);
  ASSERT_TRUE(t.find_link(a, b).has_value());
  EXPECT_EQ(t.link(*t.find_link(a, b)).dst, b);
  EXPECT_FALSE(t.find_link(b, c).has_value());
}

TEST_F(TopologyTest, ParallelLinksAllFound) {
  t.add_duplex_link(b, c, LinkKind::kFabric, Bandwidth::gbps(400), Duration::micros(1));
  t.add_duplex_link(b, c, LinkKind::kFabric, Bandwidth::gbps(400), Duration::micros(1));
  t.add_duplex_link(b, c, LinkKind::kFabric, Bandwidth::gbps(400), Duration::micros(1));
  EXPECT_EQ(t.find_links(b, c).size(), 3u);
}

TEST_F(TopologyTest, LinkStateToggles) {
  const auto dl = t.add_duplex_link(a, b, LinkKind::kAccess, Bandwidth::gbps(200),
                                    Duration::micros(1));
  EXPECT_TRUE(t.is_up(dl.forward));
  t.set_link_up(dl.forward, false);
  EXPECT_FALSE(t.is_up(dl.forward));
  EXPECT_TRUE(t.is_up(dl.backward));  // one direction only
  t.set_duplex_up(dl.forward, false);
  EXPECT_FALSE(t.is_up(dl.backward));
  t.set_duplex_up(dl.backward, true);
  EXPECT_TRUE(t.is_up(dl.forward));
  EXPECT_TRUE(t.is_up(dl.backward));
}

TEST_F(TopologyTest, UpOutLinksFiltersDown) {
  const auto l1 = t.add_duplex_link(a, b, LinkKind::kAccess, Bandwidth::gbps(200),
                                    Duration::micros(1));
  t.add_duplex_link(a, c, LinkKind::kFabric, Bandwidth::gbps(400), Duration::micros(1));
  t.set_link_up(l1.forward, false);
  EXPECT_EQ(t.up_out_links(a).size(), 1u);
}

TEST_F(TopologyTest, NodesOfKind) {
  EXPECT_EQ(t.nodes_of_kind(NodeKind::kTor).size(), 1u);
  EXPECT_EQ(t.nodes_of_kind(NodeKind::kCore).size(), 0u);
}

}  // namespace
}  // namespace hpn::topo
