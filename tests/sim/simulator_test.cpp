#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

namespace hpn::sim {
namespace {

TEST(Simulator, StartsAtOrigin) {
  Simulator s;
  EXPECT_EQ(s.now(), TimePoint::origin());
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(TimePoint::at_nanos(30), [&] { order.push_back(3); });
  s.schedule_at(TimePoint::at_nanos(10), [&] { order.push_back(1); });
  s.schedule_at(TimePoint::at_nanos(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().as_nanos(), 30);
}

TEST(Simulator, SameInstantIsFifo) {
  Simulator s;
  std::vector<int> order;
  const auto t = TimePoint::at_nanos(5);
  for (int i = 0; i < 10; ++i) s.schedule_at(t, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  TimePoint fired;
  s.schedule_after(Duration::millis(1), [&] {
    s.schedule_after(Duration::millis(2), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired.as_nanos(), 3'000'000);
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator s;
  s.schedule_at(TimePoint::at_nanos(100), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(TimePoint::at_nanos(50), [] {}), CheckError);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_after(Duration::millis(1), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel is a no-op
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownReturnsFalse) {
  Simulator s;
  EXPECT_FALSE(s.cancel(9999));
  EXPECT_FALSE(s.cancel(kInvalidEvent));
  // A slot index far beyond anything allocated.
  EXPECT_FALSE(s.cancel((std::uint64_t{1} << 32) | 0xFFFFFFu));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator s;
  const EventId id = s.schedule_after(Duration::nanos(1), [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, ScheduleNowInsideEventFiresAtSameInstantAfterQueued) {
  // schedule_now from within a callback must run at the current instant,
  // after everything already queued for that instant (FIFO by seq).
  Simulator s;
  std::vector<int> order;
  const auto t = TimePoint::at_nanos(7);
  s.schedule_at(t, [&] {
    order.push_back(1);
    s.schedule_now([&] { order.push_back(3); });
  });
  s.schedule_at(t, [&] { order.push_back(2); });
  s.schedule_at(TimePoint::at_nanos(8), [&] { order.push_back(4); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Simulator, RunUntilRunsEventsCascadedWithinBound) {
  // Events scheduled *during* run_until must also run if they land at or
  // before the bound, and the clock must end exactly at the bound.
  Simulator s;
  std::vector<std::int64_t> fired;
  s.schedule_at(TimePoint::at_nanos(10), [&] {
    fired.push_back(s.now().as_nanos());
    s.schedule_after(Duration::nanos(5), [&] { fired.push_back(s.now().as_nanos()); });
    s.schedule_after(Duration::nanos(50), [&] { fired.push_back(s.now().as_nanos()); });
  });
  s.run_until(TimePoint::at_nanos(20));
  EXPECT_EQ(fired, (std::vector<std::int64_t>{10, 15}));
  EXPECT_EQ(s.now().as_nanos(), 20);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(fired.back(), 60);
}

TEST(Simulator, LargeCaptureFallsBackToHeapAndStillFires) {
  // Captures beyond the inline budget must spill to the heap transparently.
  Simulator s;
  std::array<std::uint64_t, 16> payload{};  // 128 B > kInlineBytes
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 3 + 1;
  std::uint64_t sum = 0;
  Simulator::Callback cb{[payload, &sum] {
    for (const auto v : payload) sum += v;
  }};
  EXPECT_TRUE(cb.heap_allocated());
  s.schedule_after(Duration::nanos(1), std::move(cb));
  s.run();
  EXPECT_EQ(sum, 16u * 15u * 3u / 2u + 16u);
}

TEST(Simulator, SmallCaptureStaysInline) {
  int x = 0;
  Simulator::Callback cb{[&x] { ++x; }};
  EXPECT_FALSE(cb.heap_allocated());
}

TEST(Simulator, CancelReleasesCapturesPromptly) {
  // Cancelling must destroy the callback's captures immediately (RAII
  // resources in captures must not linger until the event's time passes).
  Simulator s;
  auto token = std::make_shared<int>(42);
  const EventId id = s.schedule_after(Duration::hours(1), [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(s.cancel(id));
  EXPECT_EQ(token.use_count(), 1);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(TimePoint::at_nanos(500));
  EXPECT_EQ(s.now().as_nanos(), 500);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator s;
  int fired = 0;
  s.schedule_at(TimePoint::at_nanos(10), [&] { ++fired; });
  s.schedule_at(TimePoint::at_nanos(20), [&] { ++fired; });
  s.schedule_at(TimePoint::at_nanos(21), [&] { ++fired; });
  s.run_until(TimePoint::at_nanos(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now().as_nanos(), 20);
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(Duration::nanos(1), recurse);
  };
  s.schedule_now(recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.processed_events(), 100u);
}

TEST(Simulator, NextEventTime) {
  Simulator s;
  EXPECT_EQ(s.next_event_time(), TimePoint::far_future());
  const auto id = s.schedule_at(TimePoint::at_nanos(42), [] {});
  EXPECT_EQ(s.next_event_time().as_nanos(), 42);
  s.cancel(id);
  EXPECT_EQ(s.next_event_time(), TimePoint::far_future());
}

TEST(PeriodicTimer, TicksAtPeriod) {
  Simulator s;
  std::vector<std::int64_t> ticks;
  PeriodicTimer timer{s, Duration::millis(10), [&] {
                        ticks.push_back(s.now().as_nanos());
                        return ticks.size() < 3;
                      }};
  s.run();
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_EQ(ticks[0], 10'000'000);
  EXPECT_EQ(ticks[1], 20'000'000);
  EXPECT_EQ(ticks[2], 30'000'000);
}

TEST(PeriodicTimer, ImmediateFirstTick) {
  Simulator s;
  int count = 0;
  PeriodicTimer timer{s, Duration::millis(5), [&] { return ++count < 2; },
                      /*immediate=*/true};
  s.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now().as_nanos(), 5'000'000);
}

TEST(PeriodicTimer, StopCancels) {
  Simulator s;
  int count = 0;
  PeriodicTimer timer{s, Duration::millis(1), [&] { ++count; return true; }};
  s.schedule_at(TimePoint::at_nanos(3'500'000), [&] { timer.stop(); });
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(timer.running());
}

}  // namespace
}  // namespace hpn::sim
