// Simulator snapshot/restore: quiescent-state rewind for the serve
// daemon's warm-start re-runs. The load-bearing property is sequence-number
// rewind — a restored simulator assigns the same (time, seq) keys to a
// replayed schedule, so ties break identically and re-runs are
// byte-deterministic.
#include <vector>

#include "gtest/gtest.h"
#include "sim/simulator.h"

namespace hpn::sim {
namespace {

TEST(SimulatorSnapshot, RestoreRewindsClockAndCounters) {
  Simulator sim;
  const Simulator::Snapshot snap = sim.snapshot();
  int fired = 0;
  sim.schedule_at(TimePoint::at_nanos(100), [&] { ++fired; });
  sim.schedule_at(TimePoint::at_nanos(200), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), TimePoint::at_nanos(200));
  EXPECT_EQ(sim.processed_events(), 2u);

  sim.restore(snap);
  EXPECT_EQ(sim.now(), TimePoint::at_nanos(0));
  EXPECT_EQ(sim.processed_events(), 0u);
}

TEST(SimulatorSnapshot, ReplayedScheduleFiresInIdenticalOrder) {
  // Three events at ONE instant: ordering is decided purely by sequence
  // number. After restore, re-scheduling them must reproduce the order.
  const auto run_once = [](Simulator& sim) {
    std::vector<int> order;
    sim.schedule_at(TimePoint::at_nanos(50), [&] { order.push_back(1); });
    sim.schedule_at(TimePoint::at_nanos(50), [&] { order.push_back(2); });
    sim.schedule_at(TimePoint::at_nanos(50), [&] { order.push_back(3); });
    sim.run();
    return order;
  };
  Simulator sim;
  const Simulator::Snapshot snap = sim.snapshot();
  const std::vector<int> first = run_once(sim);
  sim.restore(snap);
  const std::vector<int> second = run_once(sim);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorSnapshot, SnapshotMidRunStateRoundTrips) {
  Simulator sim;
  sim.schedule_at(TimePoint::at_nanos(10), [] {});
  sim.run();
  const Simulator::Snapshot snap = sim.snapshot();  // t=10, 1 processed
  sim.schedule_at(TimePoint::at_nanos(20), [] {});
  sim.run();
  EXPECT_EQ(sim.processed_events(), 2u);
  sim.restore(snap);
  EXPECT_EQ(sim.now(), TimePoint::at_nanos(10));
  EXPECT_EQ(sim.processed_events(), 1u);
}

TEST(SimulatorSnapshot, RequiresQuiescence) {
  Simulator sim;
  sim.schedule_at(TimePoint::at_nanos(5), [] {});
  EXPECT_THROW((void)sim.snapshot(), CheckError);
  Simulator other;
  const Simulator::Snapshot snap = other.snapshot();
  EXPECT_THROW(sim.restore(snap), CheckError);
  sim.run();  // drain; both are legal again
  (void)sim.snapshot();
  sim.restore(snap);
  EXPECT_EQ(sim.now(), TimePoint::at_nanos(0));
}

TEST(SimulatorSnapshot, RestoreAfterCancelledEventsReclaimsTombstones) {
  Simulator sim;
  const Simulator::Snapshot snap = sim.snapshot();
  const EventId keep = sim.schedule_at(TimePoint::at_nanos(30), [] {});
  const EventId cancel = sim.schedule_at(TimePoint::at_nanos(40), [] {});
  (void)keep;
  sim.cancel(cancel);
  sim.run();
  sim.restore(snap);  // must drain the tombstone, not trip on it
  EXPECT_EQ(sim.now(), TimePoint::at_nanos(0));
}

}  // namespace
}  // namespace hpn::sim
