#include "sim/pdes.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "exec/runner_pool.h"

namespace hpn::sim {
namespace {

TEST(ShardedSimulator, SingleShardRunsLikePlainSimulator) {
  ShardedSimulator sim{1, Duration::infinite()};
  std::vector<int> order;
  sim.shard(0).schedule_at(TimePoint::at_nanos(30), [&] { order.push_back(3); });
  sim.shard(0).schedule_at(TimePoint::at_nanos(10), [&] { order.push_back(1); });
  sim.shard(0).schedule_at(TimePoint::at_nanos(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.stats().events, 3u);
  EXPECT_EQ(sim.stats().messages, 0u);
  EXPECT_EQ(sim.next_time(), TimePoint::far_future());
}

TEST(ShardedSimulator, LocalPostIsDirectSchedule) {
  ShardedSimulator sim{2, Duration::nanos(100)};
  bool fired = false;
  sim.post(1, 1, TimePoint::at_nanos(5), 0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.stats().messages, 0u);  // never went through a channel
}

TEST(ShardedSimulator, CrossShardMessageArrivesAtItsTimestamp) {
  ShardedSimulator sim{2, Duration::nanos(10)};
  TimePoint arrived;
  sim.shard(0).schedule_at(TimePoint::at_nanos(5), [&] {
    sim.post(0, 1, TimePoint::at_nanos(15), 0,
             [&] { arrived = sim.shard(1).now(); });
  });
  sim.run();
  EXPECT_EQ(arrived.as_nanos(), 15);
  EXPECT_EQ(sim.stats().messages, 1u);
}

TEST(ShardedSimulator, FlushOrderIsCanonicalByKeyNotBySender) {
  // Two senders deliver to shard 2 at the same instant; the keys dictate
  // execution order regardless of which channel the messages sat in.
  ShardedSimulator sim{3, Duration::nanos(10)};
  std::vector<int> order;
  sim.shard(1).schedule_at(TimePoint::at_nanos(1), [&] {
    sim.post(1, 2, TimePoint::at_nanos(20), /*key=*/7, [&] { order.push_back(7); });
  });
  sim.shard(0).schedule_at(TimePoint::at_nanos(1), [&] {
    sim.post(0, 2, TimePoint::at_nanos(20), /*key=*/9, [&] { order.push_back(9); });
    sim.post(0, 2, TimePoint::at_nanos(20), /*key=*/3, [&] { order.push_back(3); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{3, 7, 9}));
}

TEST(ShardedSimulator, ConservativeWindowNeverSplitsCausality) {
  // Ping-pong between two shards with delivery exactly at the lookahead:
  // the tightest legal schedule. 20 round trips must alternate strictly.
  const Duration lookahead = Duration::nanos(10);
  ShardedSimulator sim{2, lookahead};
  std::vector<std::string> log;
  std::function<void(int, int)> bounce = [&](int from, int hops) {
    log.push_back((from == 0 ? "a@" : "b@") +
                  std::to_string(sim.shard(from).now().as_nanos()));
    if (hops == 0) return;
    sim.post(from, 1 - from, sim.shard(from).now() + lookahead, 0,
             [&bounce, from, hops] { bounce(1 - from, hops - 1); });
  };
  sim.shard(0).schedule_at(TimePoint::at_nanos(0), [&] { bounce(0, 20); });
  sim.run();
  ASSERT_EQ(log.size(), 21u);
  for (int i = 0; i <= 20; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)],
              (i % 2 == 0 ? "a@" : "b@") + std::to_string(10 * i));
  }
  EXPECT_EQ(sim.stats().messages, 20u);
}

TEST(ShardedSimulator, LockstepModeHandlesZeroLookahead) {
  // lookahead 0 = every link crosses shards with no slack: the engine must
  // degrade to one-timestamp windows, not deadlock or reorder.
  ShardedSimulator sim{2, Duration::zero()};
  std::vector<int> order;
  sim.shard(0).schedule_at(TimePoint::at_nanos(5), [&] {
    order.push_back(1);
    sim.post(0, 1, TimePoint::at_nanos(5), 0, [&] {  // same-instant delivery
      order.push_back(2);
      sim.post(1, 0, TimePoint::at_nanos(7), 0, [&] { order.push_back(3); });
    });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_GT(sim.stats().lockstep_windows, 0u);
  EXPECT_EQ(sim.stats().lockstep_windows, sim.stats().windows);
}

TEST(ShardedSimulator, RunUntilStopsAtHorizon) {
  ShardedSimulator sim{2, Duration::nanos(10)};
  int fired = 0;
  sim.shard(0).schedule_at(TimePoint::at_nanos(5), [&] { ++fired; });
  sim.shard(1).schedule_at(TimePoint::at_nanos(50), [&] { ++fired; });
  sim.run_until(TimePoint::at_nanos(30));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.next_time().as_nanos(), 50);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(ShardedSimulator, PreRunPostsAreDelivered) {
  ShardedSimulator sim{2, Duration::nanos(10)};
  bool fired = false;
  // Posted before any window, from a shard whose clock is still at origin.
  sim.post(0, 1, TimePoint::at_nanos(12), 0, [&] { fired = true; });
  EXPECT_EQ(sim.next_time().as_nanos(), 12);
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(ShardedSimulator, ParallelPoolMatchesInlineExecution) {
  // The same message-heavy program, run inline and on a pool: identical
  // event/message/window counts and an identical merged log. Logs are
  // per-shard (window tasks run concurrently under the pool) and merged in
  // shard order afterwards.
  using ShardLogs = std::vector<std::vector<std::uint64_t>>;
  auto program = [](ShardedSimulator& sim, ShardLogs& logs) {
    for (int s = 0; s < sim.shards(); ++s) {
      for (int i = 0; i < 5; ++i) {
        sim.shard(s).schedule_at(TimePoint::at_nanos(1 + i), [&sim, &logs, s, i] {
          const int to = (s + 1) % sim.shards();
          const TimePoint at = sim.shard(s).now() + Duration::nanos(20 + i);
          const std::uint64_t key =
              (static_cast<std::uint64_t>(s) << 32) | static_cast<std::uint64_t>(i);
          sim.post(s, to, at, key, [&logs, to, key, at] {
            logs[static_cast<std::size_t>(to)].push_back(
                key * 1'000'000 + static_cast<std::uint64_t>(at.as_nanos()));
          });
        });
      }
    }
  };
  ShardLogs inline_logs(4);
  ShardedSimulator inline_sim{4, Duration::nanos(20)};
  program(inline_sim, inline_logs);
  inline_sim.run();

  ShardLogs pool_logs(4);
  ShardedSimulator pool_sim{4, Duration::nanos(20)};
  program(pool_sim, pool_logs);
  exec::RunnerPool pool{4};
  pool_sim.run(&pool);

  EXPECT_EQ(inline_logs, pool_logs);
  EXPECT_EQ(inline_sim.stats().events, pool_sim.stats().events);
  EXPECT_EQ(inline_sim.stats().messages, pool_sim.stats().messages);
  EXPECT_EQ(inline_sim.stats().windows, pool_sim.stats().windows);
}

TEST(ShardedSimulator, InfiniteLookaheadRunsIndependentShardsToCompletion) {
  ShardedSimulator sim{3, Duration::infinite()};
  int fired = 0;
  for (int s = 0; s < 3; ++s) {
    sim.shard(s).schedule_at(TimePoint::at_nanos(100 * (s + 1)), [&] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.stats().windows, 1u);  // one window covers everything
}

TEST(SimulatorRunBefore, ExcludesTheBoundaryInstant) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(TimePoint::at_nanos(5), [&] { order.push_back(5); });
  s.schedule_at(TimePoint::at_nanos(10), [&] { order.push_back(10); });
  s.run_before(TimePoint::at_nanos(10));
  EXPECT_EQ(order, (std::vector<int>{5}));
  // Clock stays at the last fired event, not the boundary: a message may
  // still land exactly at the boundary instant.
  EXPECT_EQ(s.now().as_nanos(), 5);
  s.schedule_at(TimePoint::at_nanos(10), [&] { order.push_back(11); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{5, 10, 11}));
}

}  // namespace
}  // namespace hpn::sim
