// Event-pool internals: generation-tagged handle recycling, tombstone
// compaction under cancel-heavy churn, and a differential suite pinning the
// pooled engine's firing order to the seed shared_ptr/priority_queue core
// (tests/support/reference_simulator.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"
#include "tests/support/reference_simulator.h"

namespace hpn::sim {
namespace {

TEST(EventPool, SlotRecycleInvalidatesStaleHandles) {
  Simulator s;
  bool second_fired = false;
  const EventId first = s.schedule_after(Duration::nanos(10), [] {});
  ASSERT_TRUE(s.cancel(first));
  // The tombstone is reclaimed on the next pop; schedule+run enough that the
  // slot is certainly recycled by a new event.
  const EventId second = s.schedule_after(Duration::nanos(20), [&] { second_fired = true; });
  // The stale handle must never cancel the slot's new tenant.
  EXPECT_FALSE(s.cancel(first));
  s.run();
  EXPECT_TRUE(second_fired);
  // And both handles are dead now.
  EXPECT_FALSE(s.cancel(first));
  EXPECT_FALSE(s.cancel(second));
}

TEST(EventPool, HandlesAreUniqueAcrossRecycles) {
  // Fire the same slot thousands of times; every returned handle must be
  // distinct (generation advances) and never kInvalidEvent.
  Simulator s;
  std::vector<EventId> seen;
  for (int i = 0; i < 5'000; ++i) {
    const EventId id = s.schedule_now([] {});
    EXPECT_NE(id, kInvalidEvent);
    seen.push_back(id);
    s.run();
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
  // Single-event lifecycle reuses one slot (plus compaction slack of zero).
  EXPECT_LE(s.event_pool_slots(), 2u);
}

TEST(EventPool, CancelHeavyChurnKeepsPoolBounded) {
  // The PeriodicTimer/FlowSession pattern: cancel + re-arm over and over at
  // the same instant. Tombstones pile into the heap faster than time
  // drains them, so compaction must bound the pool.
  Simulator s;
  const int kChurn = 100'000;
  EventId pending = s.schedule_after(Duration::millis(1), [] {});
  for (int i = 0; i < kChurn; ++i) {
    ASSERT_TRUE(s.cancel(pending));
    pending = s.schedule_after(Duration::millis(1), [] {});
  }
  EXPECT_EQ(s.pending_events(), 1u);
  // Without compaction the pool would hold ~kChurn slots.
  EXPECT_LT(s.event_pool_slots(), 1'024u);
  EXPECT_LT(s.pending_tombstones(), 1'024u);
  s.run();
  EXPECT_EQ(s.processed_events(), 1u);
}

TEST(EventPool, TimerStopStartChurnKeepsPoolBounded) {
  Simulator s;
  for (int i = 0; i < 20'000; ++i) {
    PeriodicTimer t{s, Duration::micros(50), [] { return true; }};
    // destructor cancels
  }
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_LT(s.event_pool_slots(), 1'024u);
}

TEST(EventPool, CompactionPreservesFiringOrder) {
  // Build a schedule big enough to trigger compaction (cancel > half), then
  // check the survivors fire in exact (time, FIFO) order.
  Simulator s;
  std::vector<int> fired;
  std::vector<EventId> ids;
  const int n = 2'000;
  for (int i = 0; i < n; ++i) {
    // Deliberate collisions: only 97 distinct instants.
    const auto at = TimePoint::at_nanos((i * 37) % 97 + 1);
    ids.push_back(s.schedule_at(at, [&fired, i] { fired.push_back(i); }));
  }
  std::vector<std::pair<std::pair<std::int64_t, int>, int>> expect;  // ((at, seq), i)
  for (int i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(s.cancel(ids[static_cast<std::size_t>(i)]));
    } else {
      expect.push_back({{(i * 37) % 97 + 1, i}, i});
    }
  }
  std::sort(expect.begin(), expect.end());
  s.run();
  ASSERT_EQ(fired.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(fired[i], expect[i].second);
}

TEST(EventPool, PendingEventsExcludesTombstones) {
  Simulator s;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(s.schedule_after(Duration::nanos(i + 1), [] {}));
  for (int i = 0; i < 10; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.pending_events(), 5u);
  s.run();
  EXPECT_EQ(s.processed_events(), 5u);
}

// ---- Differential: pooled engine vs the seed core -------------------------

/// Drives an identical randomized schedule/cancel/cascade workload through
/// either engine and records the tag of every fired event.
template <typename Sim>
std::vector<int> run_workload(std::uint64_t seed) {
  Rng rng{seed};
  Sim s;
  std::vector<int> fired;
  std::vector<decltype(s.schedule_now([] {}))> cancellable;
  int next_tag = 0;

  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const int tag = next_tag++;
    const auto at = TimePoint::at_nanos(rng.uniform_int(0, 20'000));
    const bool cascades = rng.bernoulli(0.25);
    const auto id = s.schedule_at(at, [&, tag, cascades] {
      fired.push_back(tag);
      if (cascades) {
        const int child = next_tag++;
        s.schedule_after(Duration::nanos(child % 500), [&fired, child] {
          fired.push_back(child);
        });
      }
    });
    if (rng.bernoulli(0.4)) cancellable.push_back(id);
  }
  // Cancel a deterministic subset (every other saved id).
  for (std::size_t i = 0; i < cancellable.size(); i += 2) s.cancel(cancellable[i]);
  // Interleave run_until with more scheduling, then drain.
  s.run_until(TimePoint::at_nanos(10'000));
  for (int i = 0; i < 50; ++i) {
    const int tag = next_tag++;
    s.schedule_after(Duration::nanos(rng.uniform_int(0, 5'000)),
                     [&fired, tag] { fired.push_back(tag); });
  }
  s.run();
  return fired;
}

class EventCoreDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventCoreDifferential, FiringSequenceMatchesSeedCore) {
  const std::vector<int> pooled = run_workload<Simulator>(GetParam());
  const std::vector<int> reference = run_workload<testing::ReferenceSimulator>(GetParam());
  EXPECT_EQ(pooled, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventCoreDifferential,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654321u));

}  // namespace
}  // namespace hpn::sim
