// Shard-equivalence battery: the PDES decomposition must be unobservable.
//
// For every registry fabric, across seeds and shard counts {1, 2, 4, 8},
// the same seeded workload (routed flows + link fault schedule) must
// produce byte-identical completion CSVs and byte-identical merged trace
// streams. shards=1 is the serial reference; every other decomposition —
// including adversarial ones: forced lookahead 0 (lockstep), round-robin
// node assignment (nearly every link a boundary), fault flaps landing
// exactly on conservative window edges, and railx-lite circuit rotation
// crossing a window edge — must reproduce it exactly.
//
// One canonical HPN run is additionally pinned as a golden file under
// tests/support/golden/ (regenerate with HPN_UPDATE_GOLDEN=1), so the
// engine's semantics are stable across sessions, not just self-consistent.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/runner_pool.h"
#include "fabric/fabric.h"
#include "flowsim/shardnet.h"
#include "routing/router.h"
#include "routing/shard_classify.h"
#include "sim/pdes.h"
#include "topo/partition.h"

#ifndef HPN_GOLDEN_DIR
#error "HPN_GOLDEN_DIR must point at tests/support/golden"
#endif

namespace hpn {
namespace {

struct FlowSpec {
  std::vector<LinkId> path;
  DataSize size = DataSize::zero();
  TimePoint start;
  Bandwidth rate = Bandwidth::zero();
};

struct FaultSpec {
  LinkId link;
  TimePoint fail_at;
  TimePoint repair_at;
};

struct Workload {
  std::vector<FlowSpec> flows;
  std::vector<FaultSpec> faults;
};

/// Seeded rail-aligned workload: flows between NICs of the same rail on
/// different hosts (reachable on every registry fabric, including
/// rail-only), plus a fail/repair schedule over random fabric links.
Workload make_workload(const fabric::Fabric& f, const topo::Cluster& cluster,
                       std::uint64_t seed, int flow_attempts = 24,
                       int fault_count = 2) {
  Workload w;
  routing::Router router{cluster.topo, f.hash_policy()};
  Rng rng{seed};
  const int gph = cluster.gpus_per_host;
  const auto hosts = static_cast<std::uint64_t>(cluster.hosts.size());
  for (int i = 0; i < flow_attempts; ++i) {
    const int src = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(cluster.gpu_count())));
    const int rail = src % gph;
    const int dst_host = static_cast<int>(rng.uniform_index(hosts));
    const int dst = dst_host * gph + rail;
    const DataSize size = DataSize::bytes(rng.uniform_int(2'000, 32'000));
    const TimePoint start = TimePoint::at_nanos(rng.uniform_int(0, 50'000));
    const Bandwidth rate = Bandwidth::gbps(static_cast<double>(
        rng.uniform_int(50, 400)));
    if (dst_host == src / gph) continue;  // keep the draw count stable
    routing::FiveTuple ft;
    ft.src_ip = static_cast<std::uint32_t>(src);
    ft.dst_ip = static_cast<std::uint32_t>(dst);
    ft.src_port = static_cast<std::uint16_t>(rng.uniform_int(1'000, 60'000));
    const routing::Path path = router.trace(cluster.nic_of(src).nic,
                                            cluster.nic_of(dst).nic, ft);
    if (!path.valid()) continue;
    w.flows.push_back(FlowSpec{path.links, size, start, rate});
  }
  std::vector<LinkId> fabric_links;
  for (const topo::Link& l : cluster.topo.links()) {
    if (l.kind == topo::LinkKind::kFabric && l.up) fabric_links.push_back(l.id);
  }
  for (int i = 0; i < fault_count && !fabric_links.empty(); ++i) {
    const LinkId link = fabric_links[rng.uniform_index(fabric_links.size())];
    const TimePoint fail_at = TimePoint::at_nanos(rng.uniform_int(5'000, 60'000));
    const TimePoint repair_at = fail_at + Duration::nanos(rng.uniform_int(5'000, 30'000));
    w.faults.push_back(FaultSpec{link, fail_at, repair_at});
  }
  return w;
}

struct Artifacts {
  std::string csv;
  std::string trace;
  std::size_t completed = 0;
  sim::ShardedSimulator::Stats stats;
};

/// Run one decomposition to quiescence, auditors armed on every shard.
Artifacts run_workload(const topo::Topology& topo, const topo::Partition& part,
                       const Workload& w, Duration lookahead,
                       exec::RunnerPool* pool = nullptr) {
  sim::ShardedSimulator sim{part.shards, lookahead};
  for (int s = 0; s < sim.shards(); ++s) sim.shard(s).auditor().enable();
  flowsim::ShardNetConfig cfg;
  cfg.chunk = DataSize::bytes(4'096);
  flowsim::ShardedFlowNet net{topo, part, sim, cfg};
  net.enable_tracing(1u << 16);
  for (const FlowSpec& f : w.flows) net.start_flow(f.path, f.size, f.start, f.rate);
  for (const FaultSpec& f : w.faults) {
    net.fail_link(f.link, f.fail_at);
    net.repair_link(f.link, f.repair_at);
  }
  sim.run(pool);
  for (int s = 0; s < sim.shards(); ++s) {
    EXPECT_TRUE(sim.shard(s).auditor().ok())
        << "shard " << s << ":\n" << sim.shard(s).auditor().report();
  }
  Artifacts a;
  std::ostringstream csv, trace;
  net.write_csv(csv);
  net.write_trace_csv(trace);
  a.csv = csv.str();
  a.trace = trace.str();
  a.completed = net.completed();
  a.stats = sim.stats();
  EXPECT_EQ(a.completed, w.flows.size()) << "a flow never finished";
  return a;
}

TEST(PdesEquivalence, RegistryFabricsAcrossSeedsAndShardCounts) {
  exec::RunnerPool pool{2};
  for (const fabric::Fabric* f : fabric::all_fabrics()) {
    const topo::Cluster cluster = f->build(fabric::FabricScale{});
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      SCOPED_TRACE(std::string{f->name()} + " seed " + std::to_string(seed));
      const Workload w = make_workload(*f, cluster, 0xC0FFEE00 + seed * 977);
      ASSERT_FALSE(w.flows.empty());
      const topo::Partition serial = topo::partition_cluster(cluster, 1);
      const Artifacts base =
          run_workload(cluster.topo, serial, w, serial.lookahead);
      for (int shards : {2, 4, 8}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        const topo::Partition part = topo::partition_cluster(cluster, shards);
        const Artifacts got =
            run_workload(cluster.topo, part, w, part.lookahead, &pool);
        EXPECT_EQ(got.csv, base.csv);
        EXPECT_EQ(got.trace, base.trace);
      }
    }
  }
}

TEST(PdesEquivalence, LockstepZeroLookaheadMatchesSerial) {
  // Adversarial window width: lookahead 0 degrades every window to one
  // global timestamp — still byte-identical, just not parallel.
  const fabric::Fabric& f = fabric::fabric_or_throw("hpn");
  const topo::Cluster cluster = f.build(fabric::FabricScale{});
  for (std::uint64_t seed : {7u, 8u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Workload w = make_workload(f, cluster, seed);
    const topo::Partition serial = topo::partition_cluster(cluster, 1);
    const Artifacts base = run_workload(cluster.topo, serial, w, serial.lookahead);
    const topo::Partition part = topo::partition_cluster(cluster, 4);
    const Artifacts got = run_workload(cluster.topo, part, w, Duration::zero());
    EXPECT_EQ(got.csv, base.csv);
    EXPECT_EQ(got.trace, base.trace);
    EXPECT_GT(got.stats.lockstep_windows, 0u);
  }
}

TEST(PdesEquivalence, RoundRobinAllBoundaryPartition) {
  // Worst-case decomposition: node i -> shard i % 4 makes nearly every
  // link a boundary link, so the natural lookahead collapses to the
  // minimum link latency and almost all traffic crosses shards.
  const fabric::Fabric& f = fabric::fabric_or_throw("hpn");
  const topo::Cluster cluster = f.build(fabric::FabricScale{});
  const Workload w = make_workload(f, cluster, 99);
  const topo::Partition serial = topo::partition_cluster(cluster, 1);
  const Artifacts base = run_workload(cluster.topo, serial, w, serial.lookahead);

  topo::Partition part;
  part.shards = 4;
  part.node_shard.resize(cluster.topo.node_count());
  for (std::size_t i = 0; i < part.node_shard.size(); ++i) {
    part.node_shard[i] = static_cast<int>(i % 4);
  }
  part.derive_links(cluster.topo);
  ASSERT_FALSE(part.boundary_links.empty());

  std::vector<routing::Path> paths;
  for (const FlowSpec& spec : w.flows) paths.push_back(routing::Path{spec.path});
  const routing::ShardTrafficStats traffic =
      routing::classify_paths(part, cluster.topo, paths);
  EXPECT_GT(traffic.crossings, 0u);

  const Artifacts natural = run_workload(cluster.topo, part, w, part.lookahead);
  EXPECT_EQ(natural.csv, base.csv);
  EXPECT_EQ(natural.trace, base.trace);
  const Artifacts lockstep = run_workload(cluster.topo, part, w, Duration::zero());
  EXPECT_EQ(lockstep.csv, base.csv);
  EXPECT_EQ(lockstep.trace, base.trace);
}

TEST(PdesEquivalence, FaultFlapExactlyOnWindowEdges) {
  // Fault events landing exactly on conservative window boundaries (and
  // 1 ns to either side) on a *boundary* link: the hardest alignment for
  // the window loop, since the fault instant coincides with the flush.
  const fabric::Fabric& f = fabric::fabric_or_throw("hpn");
  const topo::Cluster cluster = f.build(fabric::FabricScale{});
  const topo::Partition part = topo::partition_cluster(cluster, 4);
  ASSERT_FALSE(part.boundary_links.empty());
  ASSERT_FALSE(part.lookahead.is_infinite());
  const std::int64_t la = part.lookahead.as_nanos();
  ASSERT_GT(la, 0);

  // Prefer an Agg/Core tier boundary link (the cross-domain tier the
  // partitioner is supposed to cut); fall back to any boundary link.
  LinkId victim = part.boundary_links.front();
  for (LinkId l : part.boundary_links) {
    const topo::NodeKind sk = cluster.topo.node(cluster.topo.link(l).src).kind;
    const topo::NodeKind dk = cluster.topo.node(cluster.topo.link(l).dst).kind;
    if ((sk == topo::NodeKind::kAgg && dk == topo::NodeKind::kCore) ||
        (sk == topo::NodeKind::kCore && dk == topo::NodeKind::kAgg)) {
      victim = l;
      break;
    }
  }

  Workload w = make_workload(f, cluster, 1234, 24, /*fault_count=*/0);
  // First windows start at the earliest flow start; edges land at
  // start + k * lookahead. Flap on the edge, just before, and just after.
  std::int64_t t0 = w.flows.front().start.as_nanos();
  for (const FlowSpec& spec : w.flows) t0 = std::min(t0, spec.start.as_nanos());
  for (const std::int64_t delta : {0LL, -1LL, 1LL}) {
    Workload flapped = w;
    const std::int64_t edge = t0 + 4 * la;
    flapped.faults.push_back(FaultSpec{victim, TimePoint::at_nanos(edge + delta),
                                       TimePoint::at_nanos(edge + 2 * la + delta)});
    SCOPED_TRACE("delta " + std::to_string(delta));
    const topo::Partition serial = topo::partition_cluster(cluster, 1);
    const Artifacts base =
        run_workload(cluster.topo, serial, flapped, serial.lookahead);
    const Artifacts got = run_workload(cluster.topo, part, flapped, part.lookahead);
    EXPECT_EQ(got.csv, base.csv);
    EXPECT_EQ(got.trace, base.trace);
  }
}

TEST(PdesEquivalence, RailxCircuitRotationAcrossWindowEdge) {
  // railx-lite's reconfigurable tier: rotate away from epoch 0 and back,
  // with the rotation instants crossing conservative window edges. The
  // rotation is expressed through the same fail/repair channel the PDES
  // fault model uses, so parked traffic must resume identically at every
  // shard count.
  const fabric::Fabric& f = fabric::fabric_or_throw("railx-lite");
  topo::Cluster cluster = f.build(fabric::FabricScale{});
  ASSERT_FALSE(cluster.circuits.empty());
  fabric::apply_epoch(cluster, 0);
  Workload w = make_workload(f, cluster, 4321, 24, /*fault_count=*/0);
  ASSERT_FALSE(w.flows.empty());

  const topo::Partition probe = topo::partition_cluster(cluster, 4);
  const std::int64_t la =
      probe.lookahead.is_infinite() ? 1'000 : probe.lookahead.as_nanos();
  const std::int64_t away = 20'000 + (20'000 % la == 0 ? 0 : la - 20'000 % la);
  const std::int64_t back = away + 7 * la + 1;  // return lands off-edge
  const int epochs = cluster.circuits.epochs();
  for (const LinkId l : cluster.circuits.epoch_links[0]) {
    w.faults.push_back(
        FaultSpec{l, TimePoint::at_nanos(away), TimePoint::at_nanos(back)});
  }
  if (epochs > 1) {
    // The alternate epoch comes up while we are away (repair at `away`,
    // fail again at `back`): it carries no routed traffic, but its links
    // flip exactly on the window edges alongside the active epoch's.
    for (const LinkId l : cluster.circuits.epoch_links[1]) {
      w.faults.push_back(
          FaultSpec{l, TimePoint::at_nanos(back), TimePoint::at_nanos(away)});
    }
  }

  const topo::Partition serial = topo::partition_cluster(cluster, 1);
  const Artifacts base = run_workload(cluster.topo, serial, w, serial.lookahead);
  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    const topo::Partition part = topo::partition_cluster(cluster, shards);
    const Artifacts got = run_workload(cluster.topo, part, w, part.lookahead);
    EXPECT_EQ(got.csv, base.csv);
    EXPECT_EQ(got.trace, base.trace);
  }
}

TEST(PdesEquivalence, GoldenPinnedHpnRun) {
  // Pin one canonical decomposition's observables across sessions, not
  // just across shard counts (regenerate: HPN_UPDATE_GOLDEN=1 ./test_pdes).
  const fabric::Fabric& f = fabric::fabric_or_throw("hpn");
  const topo::Cluster cluster = f.build(fabric::FabricScale{});
  const Workload w = make_workload(f, cluster, 42);
  const topo::Partition part = topo::partition_cluster(cluster, 4);
  const Artifacts got = run_workload(cluster.topo, part, w, part.lookahead);
  const std::string actual = got.csv + "----\n" + got.trace;

  const std::string path = std::string{HPN_GOLDEN_DIR} + "/pdes_hpn_seed42.txt";
  if (std::getenv("HPN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{path};
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    std::printf("updated golden %s (%zu bytes)\n", path.c_str(), actual.size());
    return;
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — regenerate with HPN_UPDATE_GOLDEN=1 ./test_pdes";
  std::stringstream buf;
  buf << in.rdbuf();
  if (actual != buf.str()) {
    const std::string actual_path = path + ".actual";
    std::ofstream out{actual_path};
    out << actual;
    FAIL() << "golden mismatch: " << path << " (observed written to "
           << actual_path << ")";
  }
}

}  // namespace
}  // namespace hpn
