// Parser-hardening regression suite (the serve PR's bugfix satellite):
//
//  - every file in tests/fuzz/malformed/ must be REJECTED with its exact
//    pinned error message (these strings are protocol: the serve daemon and
//    hpnsim_fuzz --replay surface them verbatim, and a corrupted .scenario
//    must replay with exit 2, never "clean" exit 1);
//  - formatting leniency must be exactly comments/CRLF/blank-lines/extra
//    whitespace — all erased by canonical re-serialization, so textual
//    variants of one scenario hash identically (the serve cache key);
//  - parse -> serialize -> parse is a fixed point across random scenarios.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "scenario/scenario.h"
#include "tests/fuzz/fuzz_harness.h"

namespace hpn::fuzz {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string corpus_path(const std::string& name) {
  return std::string{HPN_FUZZ_MALFORMED_DIR} + "/" + name;
}

struct MalformedCase {
  const char* file;
  const char* expected_error;
};

// The malformed-input corpus, each file paired with its pinned message.
// Adding a file to tests/fuzz/malformed/ without a row here fails the
// coverage check below.
const std::vector<MalformedCase>& corpus() {
  static const std::vector<MalformedCase> kCases = {
      {"empty.scenario", "truncated scenario: missing header"},
      {"bad_header.scenario", "line 1: bad header (want 'hpnsim-scenario v1')"},
      {"truncated_missing_end.scenario", "truncated scenario: missing 'end'"},
      {"duplicate_seed.scenario", "line 4: duplicate 'seed'"},
      {"duplicate_topology.scenario", "line 4: duplicate 'topology'"},
      {"trailing_junk_flow.scenario", "line 5: trailing junk after 'flow'"},
      {"seed_overflow.scenario", "line 2: 'seed' does not fit in 64 bits"},
      {"size_overflow.scenario", "line 3: 'size' value out of range"},
      {"unknown_topology.scenario", "line 3: unknown topology 'moebius'"},
      {"unknown_key.scenario", "line 3: unknown key 'flows'"},
      {"negative_flow_size.scenario", "line 5: 'flow' size_bytes must be >= 0"},
      {"cap_out_of_range.scenario", "line 5: 'flow' cap_gbps out of range (0, 10000]"},
      {"content_after_end.scenario", "line 4: content after 'end'"},
      {"size_zero.scenario", "line 3: 'size' must be >= 1"},
      {"bad_fault_kind.scenario", "line 3: unknown fault kind 'meteor'"},
      {"negative_fault_time.scenario", "line 3: 'fault' times must be >= 0"},
      {"junk_after_end.scenario", "line 3: trailing junk after 'end'"},
  };
  return kCases;
}

TEST(ScenarioStrict, MalformedCorpusRejectedWithPinnedMessages) {
  for (const MalformedCase& c : corpus()) {
    const std::string text = read_file(corpus_path(c.file));
    std::string error;
    const auto s = Scenario::from_text(text, &error);
    EXPECT_FALSE(s.has_value()) << c.file << " parsed but must be rejected";
    EXPECT_EQ(error, c.expected_error) << c.file;
  }
}

TEST(ScenarioStrict, MalformedCorpusReplaysWithExitTwo) {
  // The regression that motivated this suite: a corrupted .scenario used to
  // parse leniently and replay "clean" (exit 1, reading as "fixed"); it
  // must be a parse error, exit 2, so CI can tell corruption from triage.
  RunOptions options;
  for (const MalformedCase& c : corpus()) {
    const ReplayOutcome outcome = replay_scenario_file(corpus_path(c.file), options);
    EXPECT_EQ(outcome.status, ReplayOutcome::Status::kParseError) << c.file;
    EXPECT_EQ(replay_exit_code(outcome, /*expect_clean=*/false), 2) << c.file;
    EXPECT_EQ(replay_exit_code(outcome, /*expect_clean=*/true), 2) << c.file;
  }
}

TEST(ScenarioStrict, EveryCorpusFileHasAPinnedRow) {
  // Directory listing vs. table: a new malformed file must pin its message.
  std::vector<std::string> missing;
  for (const auto& entry :
       std::filesystem::directory_iterator(HPN_FUZZ_MALFORMED_DIR)) {
    const std::string name = entry.path().filename().string();
    bool found = false;
    for (const MalformedCase& c : corpus()) found = found || name == c.file;
    if (!found) missing.push_back(name);
  }
  EXPECT_TRUE(missing.empty())
      << missing.size() << " corpus file(s) without a pinned message row, first: "
      << missing.front();
}

TEST(ScenarioStrict, FormattingVariantsShareCanonicalBytes) {
  const std::string canonical =
      "hpnsim-scenario v1\n"
      "seed 42\n"
      "topology tiny_clos\n"
      "size 2\n"
      "wiring 1\n"
      "flow 0 1 1000000 25\n"
      "fault link_fail 1000 0 0\n"
      "end\n";
  const std::string variant =
      "# capacity scenario, edited by hand\r\n"
      "hpnsim-scenario   v1\r\n"
      "\r\n"
      "seed 42   # the master seed\n"
      "   topology\ttiny_clos\n"
      "size 2\n"
      "wiring 1\n"
      "\n"
      "flow 0 1 1000000 25\n"
      "fault link_fail 1000 0 0\n"
      "end   # that's all\n"
      "\n"
      "# trailing commentary is fine after end\n";
  const auto a = Scenario::from_text(canonical);
  const auto b = Scenario::from_text(variant);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(a->to_text(), b->to_text());
  EXPECT_EQ(a->to_text(), canonical) << "canonical text must be a fixed point";
  EXPECT_EQ(fnv1a64(a->to_text()), fnv1a64(b->to_text()));
}

TEST(ScenarioStrict, ParseSerializeParseIsAFixedPoint) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Scenario s = random_scenario(seed);
    if (seed % 3 == 0) ensure_jobs(s);
    const std::string text = s.to_text();
    const auto parsed = Scenario::from_text(text);
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed;
    EXPECT_EQ(*parsed, s) << "seed " << seed;
    EXPECT_EQ(parsed->to_text(), text) << "seed " << seed;
  }
}

TEST(ScenarioStrict, HpnPodRoundTripsButIsNeverDrawn) {
  Scenario s;
  s.seed = 9;
  s.topology = TopologyKind::kHpnPod;
  s.size_knob = 8;
  s.wiring = 2;
  s.flows.push_back({0, 5, 1 << 20, 100.0});
  const auto parsed = Scenario::from_text(s.to_text());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, s);
  // The fuzz draw distribution must not change under the serve PR: kHpnPod
  // is reserved for the daemon/bench, never drawn into sweeps or corpus.
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    EXPECT_NE(random_scenario(seed).topology, TopologyKind::kHpnPod) << seed;
  }
}

TEST(ScenarioStrict, HpnPodMaterializesAtHonestScale) {
  Scenario s;
  s.seed = 1;
  s.topology = TopologyKind::kHpnPod;
  s.size_knob = 8;   // hosts per segment
  s.wiring = 2;      // segments per pod
  const Materialized m = materialize(s);
  EXPECT_TRUE(m.lossless_safe);
  EXPECT_FALSE(m.endpoints.empty());
  EXPECT_FALSE(m.cables.empty());
  // 2 segments x 8 hosts, dual-ToR segment wiring: endpoints scale with
  // hosts (2 GPUs/host in this recipe).
  EXPECT_GE(m.endpoints.size(), 16u);
}

}  // namespace
}  // namespace hpn::fuzz
