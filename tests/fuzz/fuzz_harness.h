// Fuzz harness: run one Scenario through every engine with the
// InvariantAuditor enabled and a battery of cross-engine oracles, plus the
// greedy shrinker and `.scenario` repro writer the fuzz driver uses.
//
// Per scenario:
//   - FlowSession runs the workload *with* the fault schedule (link/ToR
//     faults applied as simulator events + session.refresh()).
//   - BgpFabric originates host routes, replays the fault schedule as
//     control-plane events, and is audited for FIB loops/blackholes/down
//     links at quiescence.
//   - On fault-free scenarios the fluid and packet engines run the same
//     flows and per-flow completion times are compared across engines
//     (physical lower bound for every engine; generous agreement band on
//     lossless-safe topologies).
//
// Every engine gets its own Simulator and its own materialize() of the
// scenario, so engines can never observe each other's topology mutations.
#pragma once

#include <functional>
#include <string>

#include "tests/support/scenario.h"

namespace hpn::fuzz {

struct RunOptions {
  /// BGP sabotage knob (auditor validation): silently drop WITHDRAWs so
  /// stale routes survive and audit_fib must catch the resulting loops.
  bool drop_withdrawals = false;
  /// Wall for the tick/packet engines; an engine still holding active flows
  /// at the horizon is reported as a failure (stall / deadlock oracle).
  Duration horizon = Duration::seconds(8);
};

struct RunResult {
  bool ok = true;
  std::string failure;  ///< Empty when ok; phase-tagged details otherwise.
};

/// Run the full oracle battery. Deterministic: same scenario + options give
/// the same result, so a failure can be replayed from its `.scenario` file.
RunResult run_scenario(const Scenario& scenario, const RunOptions& options = {});

using FailPredicate = std::function<bool(const Scenario&)>;

/// Greedy shrink: repeatedly take the first shrink_candidates() entry that
/// still fails, until none does (or `max_evals` predicate runs). Terminates
/// because every candidate has strictly smaller scenario_weight().
Scenario shrink(Scenario failing, const FailPredicate& still_fails, int max_evals = 400);

/// Write `scenario.to_text()` to `<dir>/repro_<topology>_seed<seed>.scenario`
/// (creating `dir`), returning the path written.
std::string write_repro(const Scenario& scenario, const std::string& dir);

}  // namespace hpn::fuzz
