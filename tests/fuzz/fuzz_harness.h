// Fuzz harness: run one Scenario through every engine with the
// InvariantAuditor enabled and a battery of cross-engine oracles, plus the
// greedy shrinker and `.scenario` repro writer the fuzz driver uses.
//
// Per scenario:
//   - FlowSession runs the workload *with* the fault schedule (link/ToR
//     faults applied as simulator events + session.refresh()).
//   - BgpFabric originates host routes, replays the fault schedule as
//     control-plane events, and is audited for FIB loops/blackholes/down
//     links at quiescence.
//   - On fault-free scenarios the fluid and packet engines run the same
//     flows and per-flow completion times are compared across engines
//     (physical lower bound for every engine; generous agreement band on
//     lossless-safe topologies).
//
// Every engine gets its own Simulator and its own materialize() of the
// scenario, so engines can never observe each other's topology mutations.
#pragma once

#include <functional>
#include <string>

#include "tests/support/scenario.h"

namespace hpn::fuzz {

struct RunOptions {
  /// BGP sabotage knob (auditor validation): silently drop WITHDRAWs so
  /// stale routes survive and audit_fib must catch the resulting loops.
  bool drop_withdrawals = false;
  /// Wall for the tick/packet engines; an engine still holding active flows
  /// at the horizon is reported as a failure (stall / deadlock oracle).
  Duration horizon = Duration::seconds(8);
  /// PDES differential phase (>= 2 enables it): the scenario's workload and
  /// fault schedule also run on the domain-decomposed flowsim/shardnet
  /// engine, once at this shard count and once at 1 shard, with every
  /// shard's InvariantAuditor armed. The merged completion CSV and trace
  /// must match the serial reference byte-for-byte.
  int shards = 0;
  /// Aggregation differential phase: the session phase (macro-flow
  /// aggregated solver) re-runs with Aggregation::kPerFlow — the preserved
  /// per-flow engine semantics — and the two runs must complete the same
  /// flow set with per-flow FCTs inside a tight tolerance band.
  bool aggregate = false;
};

struct RunResult {
  bool ok = true;
  std::string failure;  ///< Empty when ok; phase-tagged details otherwise.
};

/// Run the full oracle battery. Deterministic: same scenario + options give
/// the same result, so a failure can be replayed from its `.scenario` file.
RunResult run_scenario(const Scenario& scenario, const RunOptions& options = {});

using FailPredicate = std::function<bool(const Scenario&)>;

/// Greedy shrink: repeatedly take the first shrink_candidates() entry that
/// still fails, until none does (or `max_evals` predicate runs). Terminates
/// because every candidate has strictly smaller scenario_weight().
Scenario shrink(Scenario failing, const FailPredicate& still_fails, int max_evals = 400);

/// Write `scenario.to_text()` to `<dir>/repro_<topology>_seed<seed>.scenario`
/// (creating `dir`), returning the path written.
std::string write_repro(const Scenario& scenario, const std::string& dir);

// ---- Parallel sweeps ------------------------------------------------------

/// Seed for run `index` of a sweep: `master ^ golden*(index+1)`. A pure
/// function of (master, index), so sharding across jobs can never change
/// which scenarios a sweep contains.
std::uint64_t sweep_seed(std::uint64_t master, int index);

struct SweepOptions {
  int runs = 500;
  int jobs = 1;
  std::uint64_t master_seed = 1;
  RunOptions run;
  /// Force every drawn scenario onto one topology kind (per-fabric sweeps).
  /// Workload/fault knobs stay as drawn; materialize() clamps them per
  /// kind, so any knob combination is valid for any kind.
  std::optional<TopologyKind> only_topology;
  /// Guarantee every drawn scenario carries a job mix (ensure_jobs), so the
  /// whole sweep runs the cluster-scheduler phase (--jobsmix).
  bool ensure_jobs = false;
  /// Invoked after each completed run with `done` strictly 1..total.
  /// Calls come from worker threads but are serialized by the sweep, so
  /// the callback needs no locking of its own. Progress reporting only —
  /// it has no effect on the deterministic results.
  std::function<void(int done, int total)> progress;
};

struct SweepFailure {
  int index = 0;          ///< Run index within the sweep.
  std::uint64_t seed = 0; ///< sweep_seed(master, index).
  Scenario scenario;
  std::string detail;     ///< Phase-tagged failure text from run_scenario().
};

struct SweepResult {
  int runs = 0;
  std::vector<SweepFailure> failures;  ///< Ascending run index.
  /// Aggregated per-run rows, ascending run index:
  /// `run,seed,topology,flows,faults,ok`. One header line, '\n' terminated.
  std::string csv;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run the sweep on an exec::RunnerPool. Every field of the result is
/// bit-identical for fixed (runs, master_seed, run options) regardless of
/// `jobs` — ordering is by run index, never by completion order.
SweepResult run_sweep(const SweepOptions& options);

// ---- Replay ---------------------------------------------------------------

struct ReplayOutcome {
  enum class Status {
    kReproduced,  ///< The scenario still fails the oracle battery.
    kClean,       ///< The scenario no longer reproduces any violation.
    kUnreadable,  ///< File missing/unreadable.
    kParseError,  ///< Not a valid .scenario file.
  };
  Status status = Status::kUnreadable;
  std::string detail;  ///< Violation text when reproduced.
};

/// Load `path` and run the oracle battery on it. Pass the options the repro
/// was found under (e.g. `shards`) so its phase actually re-runs.
ReplayOutcome replay_scenario_file(const std::string& path,
                                   const RunOptions& options = {});

/// Driver exit code for a replay. A repro file exists *because* of a
/// violation, so by default reproducing it is success (0) and a clean run
/// exits 1 — a silently-passing stale repro must fail CI, not reassure it.
/// `expect_clean` flips the convention for fixed corpus entries. File and
/// parse errors exit 2 either way.
int replay_exit_code(const ReplayOutcome& outcome, bool expect_clean);

}  // namespace hpn::fuzz
