#include "tests/fuzz/fuzz_harness.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include "cluster/cluster_sim.h"
#include "common/check.h"
#include "exec/runner_pool.h"
#include "ctrl/bgp.h"
#include "flowsim/fluid.h"
#include "flowsim/packet.h"
#include "flowsim/session.h"
#include "flowsim/shardnet.h"
#include "sim/pdes.h"
#include "sim/simulator.h"
#include "topo/partition.h"

namespace hpn::fuzz {
namespace {

/// Cross-engine agreement band, applied per flow on lossless-safe (Clos)
/// topologies: engines must land within a 10x ratio or 100 ms of each other.
/// Deliberately loose — the oracle targets "engine forgot / stalled a flow"
/// class bugs, not model differences (DCQCN vs max-min fairness legitimately
/// diverge on transients). Random multigraphs run the packet engine lossy,
/// where timeout retransmission makes completion times heavy-tailed, so they
/// only get the physical lower bound + completion oracles.
constexpr double kRelBand = 10.0;
constexpr double kAbsBandSec = 0.1;

void append_failure(std::string& out, const std::string& msg) {
  if (!out.empty()) out += '\n';
  out += msg;
}

/// Physically slowest rate a flow can be excused for: its own cap and every
/// link capacity on its path bound the delivery rate from above, so
/// size / min_cap lower-bounds the completion time in every engine.
double min_cap_bps(const topo::Topology& topo, const Materialized::Flow& f) {
  double m = f.cap.as_bits_per_sec();
  for (const LinkId l : f.path) {
    m = std::min(m, topo.link(l).capacity.as_bits_per_sec());
  }
  return m;
}

void check_lower_bounds(const Materialized& m, const std::vector<double>& fct,
                        double slack_sec, const char* engine, std::string& out) {
  for (std::size_t i = 0; i < m.flows.size(); ++i) {
    if (fct[i] < 0.0) continue;  // Incomplete (stalled by a fault): no bound.
    const double lb =
        static_cast<double>(m.flows[i].size.as_bits()) / min_cap_bps(m.cluster.topo, m.flows[i]);
    if (fct[i] < lb * (1.0 - 1e-9) - slack_sec) {
      std::ostringstream os;
      os << engine << ": flow " << i << " finished in " << fct[i]
         << " s, below physical bound " << lb << " s";
      append_failure(out, os.str());
    }
  }
}

void down_node_links(topo::Topology& topo, NodeId node, bool up) {
  for (const LinkId l : topo.out_links(node)) topo.set_duplex_up(l, up);
}

/// FlowSession phase: the workload runs *with* the fault schedule. Faults
/// flip link state and refresh() the solver; repairs flip it back. Oracles:
/// auditor clean, no flow beats its physical bound, and on fault-free
/// scenarios every flow completes. `mode` selects the solver front-end
/// (macro-flow aggregated vs per-flow) and `tag` labels any failures.
void run_session_phase(const Scenario& s, flowsim::Aggregation mode,
                       const char* tag, std::vector<double>& fct,
                       std::string& out) {
  Materialized m = materialize(s);
  sim::Simulator sim;
  sim.auditor().enable();
  flowsim::FlowSession session(m.cluster.topo, sim, mode);

  fct.assign(m.flows.size(), -1.0);
  sim::Simulator* simp = &sim;
  std::vector<double>* fcts = &fct;
  for (std::size_t i = 0; i < m.flows.size(); ++i) {
    const Materialized::Flow& f = m.flows[i];
    session.start_flow(f.path, f.size, f.cap, [simp, fcts, i](FlowId) {
      (*fcts)[i] = simp->now().since_origin().as_seconds();
    });
  }

  topo::Topology* topo = &m.cluster.topo;
  flowsim::FlowSession* sess = &session;
  for (const Materialized::Fault& fault : m.faults) {
    if (fault.kind == ScenarioFault::Kind::kTorCrash) {
      const NodeId tor = fault.tor;
      sim.schedule_at(fault.at, [topo, sess, tor] {
        down_node_links(*topo, tor, false);
        sess->refresh();
      });
      if (fault.down_for > Duration::zero()) {
        sim.schedule_at(fault.at + fault.down_for, [topo, sess, tor] {
          down_node_links(*topo, tor, true);
          sess->refresh();
        });
      }
    } else {
      const LinkId cable = fault.cable;
      sim.schedule_at(fault.at, [topo, sess, cable] {
        topo->set_duplex_up(cable, false);
        sess->refresh();
      });
      if (fault.down_for > Duration::zero()) {
        sim.schedule_at(fault.at + fault.down_for, [topo, sess, cable] {
          topo->set_duplex_up(cable, true);
          sess->refresh();
        });
      }
    }
  }

  sim.run();

  if (!sim.auditor().ok()) {
    append_failure(out, std::string(tag) + ": " + sim.auditor().report());
  }
  if (m.faults.empty() && session.active_flows() != 0) {
    std::ostringstream os;
    os << tag << ": " << session.active_flows()
       << " flow(s) never completed on a fault-free scenario";
    append_failure(out, os.str());
  }
  check_lower_bounds(m, fct, 2e-9, tag, out);
}

/// Aggregation differential phase: the session workload + fault schedule
/// re-runs with macro-flow aggregation disabled (Aggregation::kPerFlow, the
/// preserved per-flow engine semantics). Both runs model the same max-min
/// allocation, so the oracles are strict: identical completion sets and
/// per-flow FCTs within the solver's documented kEps rounding contract
/// (plus nanosecond event quantization accumulated over reschedules).
void run_aggregate_phase(const Scenario& s, const std::vector<double>& agg_fct,
                         std::string& out) {
  constexpr double kAggRelTol = 1e-6;
  constexpr double kAggAbsSec = 1e-5;
  std::vector<double> per_flow_fct;
  run_session_phase(s, flowsim::Aggregation::kPerFlow, "aggregate[per-flow]",
                    per_flow_fct, out);
  for (std::size_t i = 0; i < agg_fct.size(); ++i) {
    const double a = agg_fct[i];
    const double p = per_flow_fct[i];
    if ((a < 0.0) != (p < 0.0)) {
      std::ostringstream os;
      os << "aggregate: flow " << i << " completion set mismatch: aggregated "
         << (a < 0.0 ? "stalled" : "finished") << " but per-flow "
         << (p < 0.0 ? "stalled" : "finished");
      append_failure(out, os.str());
      continue;
    }
    if (a < 0.0) continue;  // Stalled by a fault in both runs: no FCT.
    if (std::abs(a - p) > std::max(kAggAbsSec, kAggRelTol * p)) {
      std::ostringstream os;
      os << "aggregate: flow " << i << " fct diverges beyond the solver "
         << "tolerance: aggregated=" << a << " s vs per-flow=" << p << " s";
      append_failure(out, os.str());
    }
  }
}

/// BGP phase: originate host routes, replay the fault schedule as
/// control-plane events, require quiescence, and audit the FIBs for loops,
/// blackholes, and routes over down links.
void run_bgp_phase(const Scenario& s, const RunOptions& opts, std::string& out) {
  Materialized m = materialize(s);
  if (m.cluster.hosts.empty()) return;  // kRandom builds no BGP speakers.

  sim::Simulator sim;
  sim.auditor().enable();
  ctrl::BgpFabric bgp(m.cluster, sim);
  bgp.set_drop_withdrawals(opts.drop_withdrawals);
  bgp.originate_all_host_routes();
  sim.run();

  topo::Topology* topo = &m.cluster.topo;
  ctrl::BgpFabric* bgpp = &bgp;
  const auto notify_node_links = [topo, bgpp](NodeId node, bool up) {
    for (const LinkId l : topo->out_links(node)) {
      const topo::Link& lk = topo->link(l);
      if (lk.kind == topo::LinkKind::kAccess) {
        // on_access_* expects the NIC -> ToR direction.
        if (up) {
          bgpp->on_access_up(lk.reverse);
        } else {
          bgpp->on_access_down(lk.reverse);
        }
      } else if (lk.kind == topo::LinkKind::kFabric) {
        if (up) {
          bgpp->on_fabric_up(l);
        } else {
          bgpp->on_fabric_down(l);
        }
      }
    }
  };

  // Origination convergence has already advanced the clock, so fault times
  // are applied as offsets from the converged instant.
  const TimePoint base = sim.now();
  for (const Materialized::Fault& fault : m.faults) {
    const TimePoint at = base + fault.at.since_origin();
    sim.run_until(at);
    if (fault.kind == ScenarioFault::Kind::kTorCrash) {
      const NodeId tor = fault.tor;
      down_node_links(*topo, tor, false);
      notify_node_links(tor, false);
      if (fault.down_for > Duration::zero()) {
        sim.schedule_at(at + fault.down_for, [topo, tor, notify_node_links] {
          down_node_links(*topo, tor, true);
          notify_node_links(tor, true);
        });
      }
    } else {
      const LinkId cable = fault.cable;
      const topo::Link& lk = topo->link(cable);
      topo->set_duplex_up(cable, false);
      if (lk.kind == topo::LinkKind::kAccess) {
        bgp.on_access_down(cable);
      } else {
        bgp.on_fabric_down(cable);
      }
      if (fault.down_for > Duration::zero()) {
        const bool access = lk.kind == topo::LinkKind::kAccess;
        sim.schedule_at(at + fault.down_for, [topo, bgpp, cable, access] {
          topo->set_duplex_up(cable, true);
          if (access) {
            bgpp->on_access_up(cable);
          } else {
            bgpp->on_fabric_up(cable);
          }
        });
      }
    }
  }

  sim.run();
  if (!bgp.quiescent()) {
    append_failure(out, "bgp: not quiescent after the event queue drained");
  }
  bgp.audit_fib(sim.auditor());
  if (!sim.auditor().ok()) {
    append_failure(out, "bgp: " + sim.auditor().report());
  }
}

/// Fluid phase (fault-free scenarios only): same flows, tick engine.
void run_fluid_phase(const Scenario& s, const RunOptions& opts,
                     std::vector<double>& fct, std::string& out) {
  Materialized m = materialize(s);
  sim::Simulator sim;
  sim.auditor().enable();
  flowsim::FluidSimulator fluid(m.cluster.topo, sim);

  fct.assign(m.flows.size(), -1.0);
  sim::Simulator* simp = &sim;
  std::vector<double>* fcts = &fct;
  for (std::size_t i = 0; i < m.flows.size(); ++i) {
    const Materialized::Flow& f = m.flows[i];
    fluid.start_flow(f.path, f.cap, f.size, [simp, fcts, i](FlowId) {
      (*fcts)[i] = simp->now().since_origin().as_seconds();
    });
  }

  const TimePoint horizon = TimePoint::origin() + opts.horizon;
  while (fluid.active_flows() > 0 && sim.now() < horizon) {
    sim.run_until(std::min(horizon, sim.now() + Duration::millis(20)));
  }
  if (fluid.active_flows() != 0) {
    std::ostringstream os;
    os << "fluid: " << fluid.active_flows() << " flow(s) still active at the "
       << opts.horizon.as_seconds() << " s horizon";
    append_failure(out, os.str());
  } else {
    sim.run();  // Drain the disarming timer event.
  }

  if (!sim.auditor().ok()) {
    append_failure(out, "fluid: " + sim.auditor().report());
  }
  // Completion is detected at tick granularity; allow two ticks of slack.
  check_lower_bounds(m, fct, 2.0 * fluid.config().tick.as_seconds(), "fluid", out);
}

/// Packet phase (fault-free scenarios only). PFC lossless on Clos shapes;
/// lossy with timeout retransmission on random multigraphs, where cyclic
/// buffer dependencies make PFC deadlock a property of the topology rather
/// than a bug.
void run_packet_phase(const Scenario& s, const RunOptions& opts,
                      std::vector<double>& fct, std::string& out) {
  Materialized m = materialize(s);
  sim::Simulator sim;
  sim.auditor().enable();
  flowsim::PacketSimConfig cfg;
  cfg.pfc = m.lossless_safe;
  cfg.seed = s.seed ^ 0x5EEDF00DULL;
  flowsim::PacketSimulator packet(m.cluster.topo, sim, cfg);

  fct.assign(m.flows.size(), -1.0);
  sim::Simulator* simp = &sim;
  std::vector<double>* fcts = &fct;
  for (std::size_t i = 0; i < m.flows.size(); ++i) {
    const Materialized::Flow& f = m.flows[i];
    packet.start_flow(f.path, f.size, f.cap, [simp, fcts, i](FlowId) {
      (*fcts)[i] = simp->now().since_origin().as_seconds();
    });
  }

  const TimePoint horizon = TimePoint::origin() + opts.horizon;
  while (packet.active_flows() > 0 && sim.now() < horizon) {
    sim.run_until(std::min(horizon, sim.now() + Duration::millis(20)));
  }
  if (packet.active_flows() != 0) {
    std::ostringstream os;
    os << "packet: " << packet.active_flows() << " flow(s) still active at the "
       << opts.horizon.as_seconds() << " s horizon"
       << (cfg.pfc ? " (possible PFC deadlock)" : "");
    append_failure(out, os.str());
  } else {
    sim.run();  // Drain stale timers, then audit the byte ledger.
    packet.audit_quiescent();
  }

  if (!sim.auditor().ok()) {
    append_failure(out, "packet: " + sim.auditor().report());
  }
  check_lower_bounds(m, fct, 1e-6, "packet", out);
}

void check_agreement(const Materialized& m, const std::vector<double>& a,
                     const char* a_name, const std::vector<double>& b,
                     const char* b_name, std::string& out) {
  for (std::size_t i = 0; i < m.flows.size(); ++i) {
    if (a[i] < 0.0 || b[i] < 0.0) continue;
    const double hi = std::max(a[i], b[i]);
    const double lo = std::min(a[i], b[i]);
    if (hi > lo * kRelBand + kAbsBandSec) {
      std::ostringstream os;
      os << "cross-engine: flow " << i << " fct disagrees beyond the band: "
         << a_name << "=" << a[i] << " s vs " << b_name << "=" << b[i] << " s";
      append_failure(out, os.str());
    }
  }
}

/// One PDES execution of the scenario at a given shard count: merged
/// observables (completion CSV + canonical trace) and any auditor findings.
struct PdesRun {
  std::string bytes;
  std::string audit;
};

PdesRun run_pdes_at(const Scenario& s, int shards) {
  Materialized m = materialize(s);
  const topo::Topology& topo = m.cluster.topo;
  const topo::Partition part = topo::partition_cluster(m.cluster, shards);
  sim::ShardedSimulator sim{part.shards, part.lookahead};
  for (int i = 0; i < sim.shards(); ++i) sim.shard(i).auditor().enable();

  // Bound the event count on arbitrary fuzzed flow sizes: at most ~128
  // chunks per flow, floored at 4 KiB. Identical at every shard count.
  flowsim::ShardNetConfig cfg;
  std::int64_t max_bits = 0;
  for (const Materialized::Flow& f : m.flows) {
    max_bits = std::max(max_bits, f.size.as_bits());
  }
  cfg.chunk = DataSize::bits(std::max<std::int64_t>(4096 * 8, (max_bits + 127) / 128));
  flowsim::ShardedFlowNet net{topo, part, sim, cfg};
  net.enable_tracing(1u << 16);

  // The engine requires latency > 0 and capacity > 0 on every hop (the
  // PDES no-same-instant-forwarding contract); fuzzed topologies may
  // violate that, so such flows are skipped — deterministically, since the
  // filter depends only on materialize(), never on the decomposition.
  for (const Materialized::Flow& f : m.flows) {
    if (f.path.empty() || f.size.as_bits() <= 0 || f.cap.as_bits_per_sec() <= 0.0) {
      continue;
    }
    bool transportable = true;
    for (const LinkId l : f.path) {
      const topo::Link& lk = topo.link(l);
      if (lk.latency <= Duration::zero() || lk.capacity.as_bits_per_sec() <= 0.0) {
        transportable = false;
        break;
      }
    }
    if (!transportable) continue;
    net.start_flow(f.path, f.size, TimePoint::origin(), f.cap);
  }

  const auto flap = [&net](LinkId l, TimePoint at, Duration down_for) {
    net.fail_link(l, at);
    if (down_for > Duration::zero()) net.repair_link(l, at + down_for);
  };
  for (const Materialized::Fault& fault : m.faults) {
    if (fault.kind == ScenarioFault::Kind::kTorCrash) {
      for (const LinkId l : topo.out_links(fault.tor)) {
        flap(l, fault.at, fault.down_for);
        flap(topo.link(l).reverse, fault.at, fault.down_for);
      }
    } else {
      flap(fault.cable, fault.at, fault.down_for);
      flap(topo.link(fault.cable).reverse, fault.at, fault.down_for);
    }
  }

  sim.run();

  PdesRun r;
  std::ostringstream bytes;
  net.write_csv(bytes);
  bytes << "----\n";
  net.write_trace_csv(bytes);
  r.bytes = bytes.str();
  for (int i = 0; i < sim.shards(); ++i) {
    if (!sim.shard(i).auditor().ok()) {
      append_failure(r.audit, "shard " + std::to_string(i) + ": " +
                                  sim.shard(i).auditor().report());
    }
  }
  return r;
}

/// First line where two observable dumps diverge — shrink/debug breadcrumb.
std::string first_divergence(const std::string& a, const std::string& b) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  for (std::size_t n = 1;; ++n) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return "identical";
    if (la != lb || ga != gb) {
      std::ostringstream os;
      os << "line " << n << ": serial='" << (ga ? la : "<eof>") << "' vs sharded='"
         << (gb ? lb : "<eof>") << "'";
      return os.str();
    }
  }
}

/// PDES differential phase: the same workload + fault schedule runs on the
/// domain-decomposed engine at `shards` and at 1 shard (the serial
/// reference). Oracles: every shard's auditor clean in both runs, and the
/// merged completion CSV + canonical trace byte-identical.
void run_pdes_phase(const Scenario& s, int shards, std::string& out) {
  const PdesRun serial = run_pdes_at(s, 1);
  const PdesRun sharded = run_pdes_at(s, shards);
  if (!serial.audit.empty()) {
    append_failure(out, "pdes[1]: " + serial.audit);
  }
  if (!sharded.audit.empty()) {
    append_failure(out, "pdes[" + std::to_string(shards) + "]: " + sharded.audit);
  }
  if (serial.bytes != sharded.bytes) {
    append_failure(out, "pdes: " + std::to_string(shards) +
                            "-shard run diverges from the serial reference at " +
                            first_divergence(serial.bytes, sharded.bytes));
  }
}

/// Jobsmix phase: the scenario's job lines replay through the multi-tenant
/// cluster scheduler on a small HPN fabric, once per placement policy, with
/// the InvariantAuditor armed. Oracles:
///   * every policy's run is auditor-clean;
///   * a run is a pure function of its config (second run byte-identical);
///   * job accounting holds (start >= arrival, finish >= start, host counts
///     positive for placed jobs);
///   * fault-free runs complete every job with exactly its requested
///     iterations, identically across policies (scheduler equivalence).
void run_jobsmix_phase(const Scenario& s, std::string& out) {
  cluster::ClusterConfig base;
  base.scale = fabric::FabricScale{/*pods=*/1, /*segments_per_pod=*/2,
                                   /*hosts_per_segment=*/4, /*gpus_per_host=*/4};
  base.trace.seed = s.seed;
  base.audit = true;
  // Scenario faults double as cluster access flaps (bounded; the phase is
  // about scheduler reactions, not the fault schedule's details).
  base.faults = static_cast<int>(std::min<std::size_t>(s.faults.size(), 2));
  base.fault_down_for = Duration::millis(200);
  std::vector<cluster::JobSpec> specs;
  for (const ScenarioJob& j : s.jobs) {
    cluster::JobSpec spec;
    spec.kind = cluster::JobKind::kTraining;
    spec.arrival = TimePoint::origin() + Duration::nanos(j.arrival_ns);
    spec.hosts = static_cast<int>(j.hosts);  // clamped at admission
    spec.iterations = static_cast<int>(j.iters);
    specs.push_back(spec);
  }
  std::stable_sort(specs.begin(), specs.end(),
                   [](const cluster::JobSpec& a, const cluster::JobSpec& b) {
                     return a.arrival < b.arrival;
                   });
  // Ids are assigned in arrival order AFTER the sort, so `specs[id]` is the
  // spec of job `id` — the accounting oracle below indexes by that.
  for (std::size_t i = 0; i < specs.size(); ++i) specs[i].id = static_cast<int>(i);
  base.jobs = specs;

  for (const cluster::Policy policy :
       {cluster::Policy::kLocalityAware, cluster::Policy::kRandom,
        cluster::Policy::kFragMin}) {
    cluster::ClusterConfig cfg = base;
    cfg.policy = policy;
    const cluster::ClusterReport r = cluster::run_cluster(cfg);
    const std::string tag =
        "jobsmix[" + std::string{cluster::to_string(policy)} + "]";
    if (!r.audit_report.empty()) {
      append_failure(out, tag + ": " + r.audit_report);
    }
    if (r.jobs.size() != specs.size()) {
      append_failure(out, tag + ": " + std::to_string(r.jobs.size()) + " of " +
                              std::to_string(specs.size()) + " jobs accounted for");
      continue;
    }
    for (const cluster::JobStats& js : r.jobs) {
      if (js.start < js.arrival) {
        append_failure(out, tag + ": job " + std::to_string(js.id) +
                                " started before it arrived");
      }
      if (!js.aborted && js.finish < js.start) {
        append_failure(out, tag + ": job " + std::to_string(js.id) +
                                " finished before it started");
      }
      if (!js.aborted && js.hosts <= 0) {
        append_failure(out, tag + ": job " + std::to_string(js.id) +
                                " completed with no hosts");
      }
      if (base.faults == 0) {
        const cluster::JobSpec& spec = specs[static_cast<std::size_t>(js.id)];
        if (js.aborted || js.iterations != spec.iterations) {
          append_failure(out, tag + ": fault-free job " + std::to_string(js.id) +
                                  " ran " + std::to_string(js.iterations) + "/" +
                                  std::to_string(spec.iterations) + " iterations" +
                                  (js.aborted ? " and aborted" : ""));
        }
      }
    }
    const cluster::ClusterReport again = cluster::run_cluster(cfg);
    if (again.jct_csv() != r.jct_csv() ||
        again.summary_csv_row() != r.summary_csv_row()) {
      append_failure(out, tag + ": repeated run diverged — scheduler is not a "
                              "pure function of its config");
    }
  }
}

}  // namespace

RunResult run_scenario(const Scenario& scenario, const RunOptions& options) {
  std::string failure;
  std::vector<double> session_fct;
  run_session_phase(scenario, flowsim::Aggregation::kMacroFlows, "session",
                    session_fct, failure);
  run_bgp_phase(scenario, options, failure);
  if (!scenario.jobs.empty()) run_jobsmix_phase(scenario, failure);
  if (options.aggregate) run_aggregate_phase(scenario, session_fct, failure);
  if (options.shards >= 2) run_pdes_phase(scenario, options.shards, failure);

  if (scenario.faults.empty()) {
    // Cross-engine oracles need an undisturbed workload: fluid has no
    // link-repair semantics and lossy retransmission tails would swamp the
    // bands, so the finer engines only run the fault-free scenarios.
    std::vector<double> fluid_fct;
    std::vector<double> packet_fct;
    run_fluid_phase(scenario, options, fluid_fct, failure);
    run_packet_phase(scenario, options, packet_fct, failure);

    const Materialized m = materialize(scenario);
    if (m.lossless_safe) {
      check_agreement(m, session_fct, "session", fluid_fct, "fluid", failure);
      check_agreement(m, session_fct, "session", packet_fct, "packet", failure);
    }
  }

  RunResult r;
  r.ok = failure.empty();
  r.failure = std::move(failure);
  return r;
}

Scenario shrink(Scenario failing, const FailPredicate& still_fails, int max_evals) {
  int evals = 0;
  bool progressed = true;
  while (progressed && evals < max_evals) {
    progressed = false;
    for (const Scenario& cand : shrink_candidates(failing)) {
      if (++evals > max_evals) break;
      if (still_fails(cand)) {
        failing = cand;
        progressed = true;
        break;
      }
    }
  }
  return failing;
}

std::uint64_t sweep_seed(std::uint64_t master, int index) {
  constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
  return master ^ (kGolden * (static_cast<std::uint64_t>(index) + 1));
}

SweepResult run_sweep(const SweepOptions& options) {
  struct RunRecord {
    bool ok = true;
    TopologyKind topology = TopologyKind::kTinyClos;
    std::size_t flows = 0;
    std::size_t faults = 0;
    std::string detail;
    Scenario scenario;  ///< Kept only for failures (shrunk by the caller).
  };

  const int runs = std::max(0, options.runs);
  std::vector<RunRecord> records(static_cast<std::size_t>(runs));
  // Progress fires from whichever worker finishes a run, so it is
  // serialized here — callers get `done` strictly 1..runs and never need
  // their own locking.
  int done = 0;
  std::mutex progress_mu;

  exec::RunnerPool pool{options.jobs};
  pool.for_each(static_cast<std::size_t>(runs), [&](std::size_t i) {
    const std::uint64_t seed = sweep_seed(options.master_seed, static_cast<int>(i));
    Scenario s = random_scenario(seed);
    if (options.only_topology) s.topology = *options.only_topology;
    if (options.ensure_jobs) ensure_jobs(s);
    const RunResult r = run_scenario(s, options.run);
    RunRecord& rec = records[i];
    rec.ok = r.ok;
    rec.topology = s.topology;
    rec.flows = s.flows.size();
    rec.faults = s.faults.size();
    if (!r.ok) {
      rec.detail = r.failure;
      rec.scenario = s;
    }
    if (options.progress) {
      std::lock_guard<std::mutex> lock{progress_mu};
      options.progress(++done, runs);
    }
  });

  // Aggregate strictly by run index: same bytes at every job count.
  SweepResult result;
  result.runs = runs;
  std::ostringstream csv;
  csv << "run,seed,topology,flows,faults,ok\n";
  for (int i = 0; i < runs; ++i) {
    const RunRecord& rec = records[static_cast<std::size_t>(i)];
    csv << i << ',' << sweep_seed(options.master_seed, i) << ','
        << to_string(rec.topology) << ',' << rec.flows << ',' << rec.faults << ','
        << (rec.ok ? 1 : 0) << '\n';
    if (!rec.ok) {
      result.failures.push_back(SweepFailure{i, sweep_seed(options.master_seed, i),
                                             rec.scenario, rec.detail});
    }
  }
  result.csv = csv.str();
  return result;
}

ReplayOutcome replay_scenario_file(const std::string& path,
                                   const RunOptions& options) {
  std::ifstream in(path);
  if (!in.good()) return ReplayOutcome{ReplayOutcome::Status::kUnreadable, {}};
  std::stringstream buf;
  buf << in.rdbuf();
  const auto s = Scenario::from_text(buf.str());
  if (!s.has_value()) return ReplayOutcome{ReplayOutcome::Status::kParseError, {}};
  const RunResult r = run_scenario(*s, options);
  if (r.ok) return ReplayOutcome{ReplayOutcome::Status::kClean, {}};
  return ReplayOutcome{ReplayOutcome::Status::kReproduced, r.failure};
}

int replay_exit_code(const ReplayOutcome& outcome, bool expect_clean) {
  switch (outcome.status) {
    case ReplayOutcome::Status::kReproduced: return expect_clean ? 1 : 0;
    case ReplayOutcome::Status::kClean: return expect_clean ? 0 : 1;
    case ReplayOutcome::Status::kUnreadable:
    case ReplayOutcome::Status::kParseError: return 2;
  }
  return 2;
}

std::string write_repro(const Scenario& scenario, const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::ostringstream name;
  name << "repro_" << to_string(scenario.topology) << "_seed" << scenario.seed
       << ".scenario";
  const std::filesystem::path path = std::filesystem::path(dir) / name.str();
  std::ofstream os(path);
  HPN_CHECK(os.good());
  os << scenario.to_text();
  return path.string();
}

}  // namespace hpn::fuzz
