// hpnsim_fuzz: standalone scenario-fuzzing driver.
//
//   hpnsim_fuzz --runs 500 --jobs 4 --seed 1 --out tests/fuzz/regressions
//   hpnsim_fuzz --replay path/to/repro.scenario
//
// Scenario i draws from seed `master ^ golden*(i+1)`, so results are a
// function of (--seed, --runs) alone — sharding across --jobs threads never
// changes which scenarios run or what they contain. On failure the driver
// greedily shrinks the scenario and writes a `.scenario` repro file that
// replays with --replay.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tests/fuzz/fuzz_harness.h"
#include "tests/support/scenario.h"

namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

struct Args {
  int runs = 500;
  int jobs = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::uint64_t seed = 1;
  std::string out = "fuzz-repros";
  std::string replay;
  bool ok = true;
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        a.ok = false;
        return "0";
      }
      return argv[++i];
    };
    if (flag == "--runs") {
      a.runs = std::atoi(value());
    } else if (flag == "--jobs") {
      a.jobs = std::atoi(value());
    } else if (flag == "--seed") {
      a.seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--out") {
      a.out = value();
    } else if (flag == "--replay") {
      a.replay = value();
    } else {
      std::cerr << "unknown flag " << flag << "\n"
                << "usage: hpnsim_fuzz [--runs N] [--jobs N] [--seed S] "
                   "[--out DIR] [--replay FILE]\n";
      a.ok = false;
    }
  }
  if (a.runs < 1 || a.jobs < 1) a.ok = false;
  return a;
}

int replay_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto s = hpn::fuzz::Scenario::from_text(buf.str());
  if (!s.has_value()) {
    std::cerr << path << " is not a valid .scenario file\n";
    return 2;
  }
  const hpn::fuzz::RunResult r = hpn::fuzz::run_scenario(*s);
  if (r.ok) {
    std::cout << "replay clean: " << path << "\n";
    return 0;
  }
  std::cout << "replay FAILED: " << path << "\n" << r.failure << "\n";
  return 1;
}

struct Failure {
  hpn::fuzz::Scenario scenario;
  std::string detail;
};

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.ok) return 2;
  if (!args.replay.empty()) return replay_file(args.replay);

  std::mutex mu;
  std::vector<Failure> failures;
  std::atomic<int> done{0};

  const auto shard = [&](int shard_index) {
    for (int i = shard_index; i < args.runs; i += args.jobs) {
      const std::uint64_t scenario_seed =
          args.seed ^ (kGolden * (static_cast<std::uint64_t>(i) + 1));
      const hpn::fuzz::Scenario s = hpn::fuzz::random_scenario(scenario_seed);
      const hpn::fuzz::RunResult r = hpn::fuzz::run_scenario(s);
      const int finished = done.fetch_add(1) + 1;
      if (!r.ok) {
        const std::lock_guard<std::mutex> lock(mu);
        failures.push_back({s, r.failure});
        std::cerr << "run " << i << " (seed " << scenario_seed << ") FAILED:\n"
                  << r.failure << "\n";
      }
      if (finished % 100 == 0) {
        const std::lock_guard<std::mutex> lock(mu);
        std::cout << finished << "/" << args.runs << " scenarios done\n";
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(args.jobs));
  for (int j = 0; j < args.jobs; ++j) pool.emplace_back(shard, j);
  for (std::thread& t : pool) t.join();

  if (failures.empty()) {
    std::cout << "all " << args.runs << " scenarios clean (seed " << args.seed
              << ", " << args.jobs << " jobs)\n";
    return 0;
  }

  std::cout << failures.size() << " failing scenario(s); shrinking...\n";
  for (Failure& f : failures) {
    const hpn::fuzz::Scenario shrunk = hpn::fuzz::shrink(
        f.scenario,
        [](const hpn::fuzz::Scenario& c) { return !hpn::fuzz::run_scenario(c).ok; });
    const std::string path = hpn::fuzz::write_repro(shrunk, args.out);
    const hpn::fuzz::RunResult r = hpn::fuzz::run_scenario(shrunk);
    std::cout << "wrote " << path << "\n"
              << (r.failure.empty() ? f.detail : r.failure) << "\n";
  }
  std::cout << "replay any repro with: hpnsim_fuzz --replay <file>\n";
  return 1;
}
