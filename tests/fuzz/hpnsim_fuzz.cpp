// hpnsim_fuzz: standalone scenario-fuzzing driver.
//
//   hpnsim_fuzz --runs 500 --jobs 4 --seed 1 --out tests/fuzz/regressions
//   hpnsim_fuzz --replay path/to/repro.scenario [--expect-clean]
//   hpnsim_fuzz --runs 120 --jobs 8 --csv sweep.csv
//   hpnsim_fuzz --runs 250 --shards 4          # + PDES differential phase
//   hpnsim_fuzz --runs 250 --aggregate         # + macro-flow vs per-flow phase
//
// Scenario i draws from seed `master ^ golden*(i+1)`, so results are a
// function of (--seed, --runs) alone. Runs execute on an exec::RunnerPool
// (--jobs workers), and everything the driver emits — stdout ordering,
// repro file bytes, the --csv aggregate — is bit-identical regardless of
// --jobs: results are aggregated by run index after the pool settles, and
// only the progress ticker (stderr) follows completion order. On failure
// the driver greedily shrinks each scenario and writes a `.scenario` repro
// file that replays with --replay.
//
// --replay exits 0 when the repro still reproduces a violation and 1 when
// it runs clean (a stale repro must fail loudly, not silently pass);
// --expect-clean flips that for corpus entries whose bug has been fixed.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "tests/fuzz/fuzz_harness.h"
#include "tests/support/scenario.h"

namespace {

struct Args {
  int runs = 500;
  int jobs = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::uint64_t seed = 1;
  std::string out = "fuzz-repros";
  std::string csv;
  std::string replay;
  std::string topology;  ///< Force every scenario onto one topology kind.
  int shards = 0;        ///< >= 2 arms the PDES differential phase.
  bool aggregate = false;  ///< Arms the aggregated-vs-per-flow session phase.
  bool jobsmix = false;  ///< Guarantee a job mix: every scenario runs the
                         ///< cluster-scheduler phase.
  bool expect_clean = false;
  bool ok = true;
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        a.ok = false;
        return "0";
      }
      return argv[++i];
    };
    if (flag == "--runs") {
      a.runs = std::atoi(value());
    } else if (flag == "--jobs") {
      a.jobs = std::atoi(value());
    } else if (flag == "--seed") {
      a.seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--out") {
      a.out = value();
    } else if (flag == "--csv") {
      a.csv = value();
    } else if (flag == "--replay") {
      a.replay = value();
    } else if (flag == "--topology") {
      a.topology = value();
    } else if (flag == "--shards") {
      a.shards = std::atoi(value());
    } else if (flag == "--aggregate") {
      a.aggregate = true;
    } else if (flag == "--jobsmix") {
      a.jobsmix = true;
    } else if (flag == "--expect-clean") {
      a.expect_clean = true;
    } else {
      std::cerr << "unknown flag " << flag << "\n"
                << "usage: hpnsim_fuzz [--runs N] [--jobs N] [--seed S] "
                   "[--topology KIND] [--shards N] [--aggregate] [--jobsmix] "
                   "[--out DIR] [--csv FILE] [--replay FILE [--expect-clean]]\n";
      a.ok = false;
    }
  }
  if (a.runs < 1 || a.jobs < 1 || a.shards < 0 || a.shards == 1) a.ok = false;
  return a;
}

int replay_file(const std::string& path, bool expect_clean,
                const hpn::fuzz::RunOptions& run) {
  const hpn::fuzz::ReplayOutcome outcome =
      hpn::fuzz::replay_scenario_file(path, run);
  switch (outcome.status) {
    case hpn::fuzz::ReplayOutcome::Status::kUnreadable:
      std::cerr << "cannot read " << path << "\n";
      break;
    case hpn::fuzz::ReplayOutcome::Status::kParseError:
      std::cerr << path << " is not a valid .scenario file\n";
      break;
    case hpn::fuzz::ReplayOutcome::Status::kReproduced:
      std::cout << "replay reproduces a violation: " << path << "\n"
                << outcome.detail << "\n";
      break;
    case hpn::fuzz::ReplayOutcome::Status::kClean:
      std::cout << "replay clean: " << path
                << " no longer reproduces a violation\n";
      break;
  }
  return hpn::fuzz::replay_exit_code(outcome, expect_clean);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.ok) return 2;
  hpn::fuzz::RunOptions run;
  run.shards = args.shards;
  run.aggregate = args.aggregate;
  if (!args.replay.empty()) return replay_file(args.replay, args.expect_clean, run);

  hpn::fuzz::SweepOptions opts;
  opts.runs = args.runs;
  opts.jobs = args.jobs;
  opts.master_seed = args.seed;
  opts.run = run;
  opts.ensure_jobs = args.jobsmix;
  if (!args.topology.empty()) {
    const auto kind = hpn::fuzz::topology_kind_from(args.topology);
    if (!kind) {
      std::cerr << "unknown topology '" << args.topology << "'\n";
      return 2;
    }
    opts.only_topology = *kind;
  }
  // Progress goes to stderr: it follows completion order, so it is the one
  // stream that is allowed to differ between job counts.
  opts.progress = [](int done, int total) {
    if (done % 100 == 0 || done == total) {
      std::cerr << done << "/" << total << " scenarios done\n";
    }
  };

  const hpn::fuzz::SweepResult sweep = hpn::fuzz::run_sweep(opts);

  if (!args.csv.empty()) {
    std::ofstream os(args.csv);
    if (!os.good()) {
      std::cerr << "cannot write " << args.csv << "\n";
      return 2;
    }
    os << sweep.csv;
    std::cout << "[csv] " << args.csv << "\n";
  }

  if (sweep.ok()) {
    // The job count stays off stdout: stdout is bit-identical across --jobs.
    std::cout << "all " << args.runs << " scenarios clean (seed " << args.seed << ")\n";
    return 0;
  }

  std::cout << sweep.failures.size() << " failing scenario(s); shrinking...\n";
  for (const hpn::fuzz::SweepFailure& f : sweep.failures) {
    std::cout << "run " << f.index << " (seed " << f.seed << ") FAILED:\n"
              << f.detail << "\n";
    const hpn::fuzz::Scenario shrunk = hpn::fuzz::shrink(
        f.scenario, [&run](const hpn::fuzz::Scenario& c) {
          return !hpn::fuzz::run_scenario(c, run).ok;
        });
    const std::string path = hpn::fuzz::write_repro(shrunk, args.out);
    const hpn::fuzz::RunResult r = hpn::fuzz::run_scenario(shrunk, run);
    std::cout << "wrote " << path << "\n"
              << (r.failure.empty() ? f.detail : r.failure) << "\n";
  }
  std::cout << "replay any repro with: hpnsim_fuzz --replay <file>\n";
  return 1;
}
