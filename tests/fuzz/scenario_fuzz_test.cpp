// Scenario-fuzzing suite: format round-trip properties, shrinker soundness,
// a time-boxed randomized fuzz batch through all engines, and the auditor
// validation test (sabotaged BGP withdrawals must be caught and shrunk to a
// handful of nodes).
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "tests/fuzz/fuzz_harness.h"
#include "tests/support/scenario.h"

namespace hpn::fuzz {
namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

TEST(ScenarioFormat, RoundTripIsIdentityOnRandomScenarios) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario s = random_scenario(seed);
    const std::string text = s.to_text();
    const auto parsed = Scenario::from_text(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, s) << text;
    // Serialization is canonical: re-serializing gives identical bytes.
    EXPECT_EQ(parsed->to_text(), text);
  }
}

TEST(ScenarioFormat, RejectsMalformedInput) {
  EXPECT_FALSE(Scenario::from_text("").has_value());
  EXPECT_FALSE(Scenario::from_text("not-a-scenario\nend\n").has_value());
  // Missing "end" terminator (truncated file).
  EXPECT_FALSE(Scenario::from_text("hpnsim-scenario v1\nseed 1\n").has_value());
  // Unknown key.
  EXPECT_FALSE(
      Scenario::from_text("hpnsim-scenario v1\nbogus 3\nend\n").has_value());
  // Negative flow size.
  EXPECT_FALSE(
      Scenario::from_text("hpnsim-scenario v1\nflow 0 1 -5 10\nend\n").has_value());
  // Unknown fault kind.
  EXPECT_FALSE(
      Scenario::from_text("hpnsim-scenario v1\nfault meteor 0 0 0\nend\n").has_value());
}

TEST(ScenarioFormat, MaterializeIsDeterministic) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Scenario s = random_scenario(seed);
    const Materialized a = materialize(s);
    const Materialized b = materialize(s);
    ASSERT_EQ(a.cluster.topo.node_count(), b.cluster.topo.node_count());
    ASSERT_EQ(a.cluster.topo.link_count(), b.cluster.topo.link_count());
    ASSERT_EQ(a.flows.size(), b.flows.size());
    for (std::size_t i = 0; i < a.flows.size(); ++i) {
      EXPECT_EQ(a.flows[i].src, b.flows[i].src);
      EXPECT_EQ(a.flows[i].dst, b.flows[i].dst);
      ASSERT_EQ(a.flows[i].path.size(), b.flows[i].path.size());
      for (std::size_t h = 0; h < a.flows[i].path.size(); ++h) {
        EXPECT_EQ(a.flows[i].path[h], b.flows[i].path[h]);
      }
    }
    ASSERT_EQ(a.faults.size(), b.faults.size());
    for (std::size_t i = 0; i < a.faults.size(); ++i) {
      EXPECT_EQ(a.faults[i].at, b.faults[i].at);
      EXPECT_EQ(a.faults[i].cable, b.faults[i].cable);
      EXPECT_EQ(a.faults[i].tor, b.faults[i].tor);
    }
  }
}

// Fault times are int64 nanoseconds end to end: text serialization and
// materialize() must both preserve sub-microsecond values exactly (a fault
// landing on a PDES window edge is one lookahead-quantum wide — any rounding
// here would silently move it off the edge the fuzzer aimed at).
TEST(ScenarioFormat, FaultTimesRoundTripAtNanosecondPrecision) {
  const std::int64_t at_values[] = {0, 1, 7, 999, 1'001, 123'456,
                                    1'234'567, 999'999'999'999};
  Scenario s;
  s.seed = 11;
  s.topology = TopologyKind::kTinyClos;
  s.size_knob = 4;
  s.wiring = 2;
  for (const std::int64_t at : at_values) {
    s.faults.push_back({ScenarioFault::Kind::kLinkFlap, at, 0,
                        at % 2 == 0 ? at + 13 : 0});
  }
  const std::string text = s.to_text();
  const auto parsed = Scenario::from_text(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  EXPECT_EQ(*parsed, s);
  EXPECT_EQ(parsed->to_text(), text);

  const Materialized m = materialize(*parsed);
  ASSERT_EQ(m.faults.size(), std::size(at_values));
  for (std::size_t i = 0; i < m.faults.size(); ++i) {
    EXPECT_EQ(m.faults[i].at.since_origin().as_nanos(), at_values[i]);
    EXPECT_EQ(m.faults[i].down_for.as_nanos(), s.faults[i].down_for_ns);
  }
}

TEST(ScenarioShrink, EveryCandidateIsStrictlySmaller) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Scenario s = random_scenario(seed);
    const std::uint64_t w = scenario_weight(s);
    for (const Scenario& cand : shrink_candidates(s)) {
      EXPECT_LT(scenario_weight(cand), w) << s.to_text();
    }
  }
}

TEST(ScenarioShrink, GreedyShrinkTerminatesAtAFixpoint) {
  // With an always-failing predicate the shrinker must walk monotonically
  // down to a scenario none of whose candidates are accepted.
  const Scenario start = random_scenario(7);
  int evals = 0;
  const Scenario min = shrink(
      start, [&evals](const Scenario&) { ++evals; return true; }, 10'000);
  EXPECT_LT(evals, 10'000);  // terminated on its own, not the eval budget
  EXPECT_LE(scenario_weight(min), scenario_weight(start));
  for (const Scenario& cand : shrink_candidates(min)) {
    EXPECT_LT(scenario_weight(cand), scenario_weight(min));
  }
  // At the fixpoint everything droppable has been dropped.
  EXPECT_TRUE(min.faults.empty());
  EXPECT_LE(min.flows.size(), 1u);
  EXPECT_EQ(min.topology, TopologyKind::kTinyClos);
}

// Time-boxed fuzz batch: randomized scenarios through every engine with the
// auditor on and the cross-engine oracles armed. HPN_FUZZ_SMOKE_RUNS scales
// it up; the default stays inside the suite's 30 s budget.
TEST(FuzzSmoke, RandomScenariosUpholdInvariants) {
  const int runs = env_int("HPN_FUZZ_SMOKE_RUNS", 25);
  for (int i = 0; i < runs; ++i) {
    const Scenario s =
        random_scenario(std::uint64_t{0xF00D0000} + static_cast<std::uint64_t>(i));
    const RunResult r = run_scenario(s);
    EXPECT_TRUE(r.ok) << "scenario:\n" << s.to_text() << "failure:\n" << r.failure;
  }
}

// PDES differential batch: every scenario also runs on the domain-decomposed
// shardnet engine at 3 shards vs the serial reference, auditors armed per
// shard, merged observables byte-compared. Faulted scenarios stay in — the
// PDES phase replays the fault schedule on owner shards.
TEST(FuzzSmoke, PdesDifferentialBatchMatchesSerial) {
  const int runs = env_int("HPN_FUZZ_SMOKE_RUNS", 12);
  RunOptions opts;
  opts.shards = 3;
  for (int i = 0; i < runs; ++i) {
    const Scenario s =
        random_scenario(std::uint64_t{0x5A4D0000} + static_cast<std::uint64_t>(i));
    const RunResult r = run_scenario(s, opts);
    EXPECT_TRUE(r.ok) << "scenario:\n" << s.to_text() << "failure:\n" << r.failure;
  }
}

/// The acceptance fault: disable FIB withdrawal propagation and prove the
/// audit layer catches the stale routes, then shrink the repro to a
/// <= 8-node scenario and round-trip it through a .scenario file.
TEST(FuzzAudit, DroppedWithdrawalsAreCaughtAndShrunk) {
  // Tiny Clos, 4 hosts x 2 ToRs x 2 Aggs. Cables are ordered fabric first
  // (2 per Agg), then 2 access cables per host, so targets 4 and 5 are both
  // access links of host 0. Killing both revokes the prefix everywhere;
  // with WITHDRAWs dropped, the Aggs keep stale routes toward ToRs that no
  // longer have one.
  Scenario s;
  s.seed = 77;
  s.topology = TopologyKind::kTinyClos;
  s.size_knob = 4;  // hosts
  s.wiring = 2;     // aggs
  s.flows = {{0, 1, 65'536, 100.0}, {2, 3, 262'144, 100.0}, {1, 2, 2'048, 50.0}};
  s.faults = {
      {ScenarioFault::Kind::kLinkFail, 1'000'000, 4, 0},
      {ScenarioFault::Kind::kLinkFail, 1'000'000, 5, 0},
      // Decoy the shrinker should discard.
      {ScenarioFault::Kind::kLinkFlap, 500'000, 0, 100'000},
  };

  // Honest withdrawals: the same scenario is clean.
  const RunResult honest = run_scenario(s);
  ASSERT_TRUE(honest.ok) << honest.failure;

  RunOptions sabotage;
  sabotage.drop_withdrawals = true;
  const RunResult broken = run_scenario(s, sabotage);
  ASSERT_FALSE(broken.ok);
  EXPECT_NE(broken.failure.find("fib"), std::string::npos) << broken.failure;

  const Scenario shrunk = shrink(
      s, [&sabotage](const Scenario& c) { return !run_scenario(c, sabotage).ok; });
  EXPECT_LE(scenario_weight(shrunk), scenario_weight(s));
  const Materialized m = materialize(shrunk);
  EXPECT_LE(m.cluster.topo.node_count(), 8u) << shrunk.to_text();
  // The decoy flap is gone but the double access failure must survive.
  EXPECT_EQ(shrunk.faults.size(), 2u) << shrunk.to_text();

  // The shrunk repro replays from its .scenario file.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hpn_fuzz_repro_test").string();
  const std::string path = write_repro(shrunk, dir);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto reparsed = Scenario::from_text(buf.str());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, shrunk);
  EXPECT_FALSE(run_scenario(*reparsed, sabotage).ok);
  std::filesystem::remove_all(dir);
}

// Regression corpus: every shrunk .scenario repro committed under
// tests/fuzz/regressions/ must stay clean (violations fixed, not re-broken).
TEST(FuzzRegressions, CommittedReprosStayClean) {
  const std::filesystem::path dir = HPN_FUZZ_REGRESSION_DIR;
  if (!std::filesystem::exists(dir)) GTEST_SKIP() << "no regression corpus";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".scenario") continue;
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    const auto s = Scenario::from_text(buf.str());
    ASSERT_TRUE(s.has_value()) << entry.path();
    const RunResult r = run_scenario(*s);
    EXPECT_TRUE(r.ok) << entry.path() << "\n" << r.failure;
  }
}

}  // namespace
}  // namespace hpn::fuzz
