// The parallel-sweep determinism contract: a sweep's failures, repro bytes,
// and aggregated CSV are a function of (master seed, runs, options) alone —
// `--jobs 8` must be byte-identical to `--jobs 1`. Plus the --replay exit
// convention: a repro that no longer reproduces must be reported non-zero.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "tests/fuzz/fuzz_harness.h"
#include "tests/support/scenario.h"

namespace hpn::fuzz {
namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

void expect_identical(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.csv, b.csv);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].index, b.failures[i].index);
    EXPECT_EQ(a.failures[i].seed, b.failures[i].seed);
    EXPECT_EQ(a.failures[i].detail, b.failures[i].detail);
    EXPECT_EQ(a.failures[i].scenario, b.failures[i].scenario);
    // Repro files are to_text() bytes, so byte-identical repros too.
    EXPECT_EQ(a.failures[i].scenario.to_text(), b.failures[i].scenario.to_text());
  }
}

TEST(JobsEquivalence, CleanSweepIsJobsInvariant) {
  SweepOptions opts;
  opts.runs = env_int("HPN_FUZZ_EQUIV_RUNS", 12);
  opts.master_seed = 20260805;
  opts.jobs = 1;
  const SweepResult serial = run_sweep(opts);
  opts.jobs = 8;
  const SweepResult parallel = run_sweep(opts);
  expect_identical(serial, parallel);
  EXPECT_TRUE(serial.ok())
      << (serial.failures.empty() ? "" : serial.failures[0].detail);
}

TEST(JobsEquivalence, FailingSweepAggregatesIdenticallyAcrossJobs) {
  // Sabotage BGP withdrawals so a healthy fraction of the scenarios fail:
  // the equivalence claim has to hold for the failure path (violation set,
  // details, repro bytes), not just for all-clean sweeps.
  SweepOptions opts;
  opts.runs = env_int("HPN_FUZZ_EQUIV_RUNS", 12);
  opts.master_seed = 987654321;
  opts.run.drop_withdrawals = true;
  opts.jobs = 1;
  const SweepResult serial = run_sweep(opts);
  opts.jobs = 8;
  const SweepResult parallel = run_sweep(opts);
  expect_identical(serial, parallel);
#if defined(__GLIBCXX__)
  // Scenario *contents* depend on libstdc++'s distribution algorithms, so
  // only assert "the sabotage actually bit" where contents are pinned.
  EXPECT_FALSE(serial.ok());
#endif
}

TEST(JobsEquivalence, ProgressCallbackCountsEveryRun) {
  SweepOptions opts;
  opts.runs = 6;
  opts.master_seed = 3;
  opts.jobs = 4;
  // run_sweep serializes progress calls, so plain captures are safe and
  // `done` must arrive strictly 1..runs even with 4 workers finishing in
  // arbitrary order.
  int last_done = 0;
  int last_total = 0;
  bool monotone = true;
  opts.progress = [&](int done, int total) {
    monotone = monotone && done == last_done + 1;
    last_done = done;
    last_total = total;
  };
  run_sweep(opts);
  EXPECT_EQ(last_done, 6);
  EXPECT_EQ(last_total, 6);
  EXPECT_TRUE(monotone);
}

TEST(Replay, StaleReproIsReportedNonZero) {
  // The committed corpus entries are clean by design (their bugs are
  // fixed), which is exactly the "no longer reproduces" shape --replay must
  // flag: default convention exits non-zero, --expect-clean exits 0.
  const ReplayOutcome clean{ReplayOutcome::Status::kClean, {}};
  EXPECT_EQ(replay_exit_code(clean, /*expect_clean=*/false), 1);
  EXPECT_EQ(replay_exit_code(clean, /*expect_clean=*/true), 0);
  const ReplayOutcome repro{ReplayOutcome::Status::kReproduced, "detail"};
  EXPECT_EQ(replay_exit_code(repro, /*expect_clean=*/false), 0);
  EXPECT_EQ(replay_exit_code(repro, /*expect_clean=*/true), 1);
  EXPECT_EQ(replay_exit_code({ReplayOutcome::Status::kUnreadable, {}}, false), 2);
  EXPECT_EQ(replay_exit_code({ReplayOutcome::Status::kParseError, {}}, true), 2);
}

TEST(Replay, ScenarioFileRoundTripsThroughTheOracleBattery) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "hpn_replay_exit_test";
  std::filesystem::create_directories(dir);

  // A violation that reproduces from scenario text alone: a fault-free
  // flow far too large to finish inside the engines' 8 s horizon, so the
  // fluid and packet phases report it still active.
  Scenario stuck;
  stuck.seed = 424242;
  stuck.topology = TopologyKind::kTinyClos;
  stuck.size_knob = 2;
  stuck.wiring = 1;
  stuck.flows = {{0, 1, 1'000'000'000'000, 0.01}};
  const std::filesystem::path stuck_path = dir / "stuck.scenario";
  {
    std::ofstream os(stuck_path);
    os << stuck.to_text();
  }
  const ReplayOutcome reproduced = replay_scenario_file(stuck_path.string());
  EXPECT_EQ(reproduced.status, ReplayOutcome::Status::kReproduced);
  EXPECT_NE(reproduced.detail.find("still active"), std::string::npos)
      << reproduced.detail;

  // A clean scenario: tiny flow, completes everywhere.
  Scenario healthy = stuck;
  healthy.flows = {{0, 1, 65'536, 100.0}};
  const std::filesystem::path healthy_path = dir / "healthy.scenario";
  {
    std::ofstream os(healthy_path);
    os << healthy.to_text();
  }
  const ReplayOutcome clean = replay_scenario_file(healthy_path.string());
  EXPECT_EQ(clean.status, ReplayOutcome::Status::kClean);

  EXPECT_EQ(replay_scenario_file((dir / "missing.scenario").string()).status,
            ReplayOutcome::Status::kUnreadable);
  const std::filesystem::path garbage_path = dir / "garbage.scenario";
  {
    std::ofstream os(garbage_path);
    os << "not a scenario\n";
  }
  EXPECT_EQ(replay_scenario_file(garbage_path.string()).status,
            ReplayOutcome::Status::kParseError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hpn::fuzz
