#include "fault/failure_injector.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace hpn::fault {
namespace {

using topo::Cluster;
using topo::HpnConfig;

struct Rig {
  Cluster c = topo::build_hpn(HpnConfig::tiny());
  sim::Simulator s;
  routing::Router r{c.topo};
  ctrl::FabricController fabric{c, s, r};
};

TEST(FailureInjector, PlanDrawsScaleWithHorizon) {
  Rig rig;
  FailureInjector inj{rig.c, rig.s, rig.fabric, 42};
  // Tiny cluster (128 access links): a month sees roughly 0.057% x 128
  // link failures — usually none; a thousand months sees plenty.
  const auto long_plan = inj.draw_plan(Duration::hours(30.0 * 24.0 * 1000), Duration::minutes(5));
  int fails = 0, flaps = 0;
  for (const auto& e : long_plan) {
    fails += e.kind == InjectionPlanEntry::Kind::kLinkFail;
    flaps += e.kind == InjectionPlanEntry::Kind::kLinkFlap;
  }
  EXPECT_GT(fails, 10);
  EXPECT_GT(flaps, 10);
}

TEST(FailureInjector, DeterministicForSeed) {
  Rig a, b;
  FailureInjector ia{a.c, a.s, a.fabric, 7};
  FailureInjector ib{b.c, b.s, b.fabric, 7};
  const auto pa = ia.draw_plan(Duration::hours(24.0 * 365), Duration::minutes(1));
  const auto pb = ib.draw_plan(Duration::hours(24.0 * 365), Duration::minutes(1));
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].at, pb[i].at);
    EXPECT_EQ(pa[i].host, pb[i].host);
  }
}

TEST(FailureInjector, ScheduledFailureHitsFabric) {
  Rig rig;
  FailureInjector inj{rig.c, rig.s, rig.fabric, 1};
  std::vector<InjectionPlanEntry> plan{
      {InjectionPlanEntry::Kind::kLinkFail, TimePoint::at_nanos(Duration::seconds(5).as_nanos()),
       0, 0, 0, NodeId::invalid(), Duration::seconds(10)},
  };
  inj.schedule(plan);
  EXPECT_EQ(inj.injected_events(), 1);
  rig.s.run_until(TimePoint::at_nanos(Duration::seconds(6).as_nanos()));
  EXPECT_FALSE(rig.fabric.port_up(0, 0, 0));
  rig.s.run_until(TimePoint::at_nanos(Duration::seconds(16).as_nanos()));
  EXPECT_TRUE(rig.fabric.port_up(0, 0, 0));
}

TEST(FailureInjector, TorCrashScheduling) {
  Rig rig;
  FailureInjector inj{rig.c, rig.s, rig.fabric, 1};
  const NodeId tor = rig.c.hosts[0].nics[0].tor[0];
  std::vector<InjectionPlanEntry> plan{
      {InjectionPlanEntry::Kind::kTorCrash, TimePoint::at_nanos(Duration::seconds(1).as_nanos()),
       -1, -1, -1, tor, Duration::zero()},
  };
  inj.schedule(plan);
  rig.s.run_until(TimePoint::at_nanos(Duration::seconds(2).as_nanos()));
  EXPECT_FALSE(rig.fabric.port_up(0, 0, 0));
  EXPECT_FALSE(rig.fabric.host_isolated(0));  // dual-ToR: plane 1 alive
}

TEST(FailureInjector, FlapAutoRepairs) {
  Rig rig;
  FailureInjector inj{rig.c, rig.s, rig.fabric, 1};
  std::vector<InjectionPlanEntry> plan{
      {InjectionPlanEntry::Kind::kLinkFlap, TimePoint::at_nanos(Duration::seconds(1).as_nanos()),
       2, 1, 0, NodeId::invalid(), Duration::seconds(2)},
  };
  inj.schedule(plan);
  rig.s.run_until(TimePoint::at_nanos(Duration::millis(1500).as_nanos()));
  EXPECT_FALSE(rig.fabric.port_up(2, 1, 0));
  rig.s.run_until(TimePoint::at_nanos(Duration::seconds(4).as_nanos()));
  EXPECT_TRUE(rig.fabric.port_up(2, 1, 0));
}

}  // namespace
}  // namespace hpn::fault
