#include "fault/checkpoint.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace hpn::fault {
namespace {

TEST(Checkpoint, OverheadNearFivePercent) {
  // §2.3: even at 2-4h intervals the checkpoint overhead is "still around
  // 5%" counting the full pipeline stalls; our pure-write model lands at a
  // small single-digit fraction.
  CheckpointModel model;
  EXPECT_GT(model.overhead_fraction(), 0.0);
  EXPECT_LT(model.overhead_fraction(), 0.05);
}

TEST(Checkpoint, ShorterIntervalMoreOverhead) {
  CheckpointPolicy frequent;
  frequent.interval = Duration::minutes(30.0);
  CheckpointPolicy sparse;
  sparse.interval = Duration::hours(4.0);
  EXPECT_GT(CheckpointModel{frequent}.overhead_fraction(),
            CheckpointModel{sparse}.overhead_fraction());
}

TEST(Checkpoint, CrashCostMatchesPaperArithmetic) {
  // §2.3: "training costs are 20K dollars per hour for a training task
  // utilizing 3K GPUs, a failure could lead to a financial loss of 30K
  // dollars" — i.e. ~1.5h of lost progress (half of a ~3h interval).
  CheckpointModel model;
  const CrashCost cost = model.expected_crash_cost(3'000);
  EXPECT_NEAR(cost.rolled_back.as_seconds(), 1.5 * 3600.0, 1.0);
  EXPECT_NEAR(cost.dollars, 30'000.0, 6'000.0);
}

TEST(Checkpoint, CostScalesWithGpus) {
  CheckpointModel model;
  EXPECT_NEAR(model.expected_crash_cost(6'000).dollars,
              2.0 * model.expected_crash_cost(3'000).dollars, 1.0);
}

TEST(Checkpoint, GoodputDropsWithCrashRate) {
  CheckpointModel model;
  const double clean = model.goodput_fraction(0.0, 3'000);
  const double crashy = model.goodput_fraction(2.0, 3'000);  // §2.3: 1-2/month
  EXPECT_GT(clean, crashy);
  EXPECT_GT(crashy, 0.9);  // crashes cost hours, not days
  EXPECT_THROW((void)model.goodput_fraction(-1.0, 10), CheckError);
}

TEST(Checkpoint, ZeroGpusRejected) {
  CheckpointModel model;
  EXPECT_THROW((void)model.crash_cost(Duration::hours(1.0), 0), CheckError);
}

}  // namespace
}  // namespace hpn::fault
