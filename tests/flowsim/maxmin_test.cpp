#include "flowsim/maxmin.h"

#include <gtest/gtest.h>

#include "topo/topology.h"

namespace hpn::flowsim {
namespace {

using topo::LinkKind;
using topo::NodeKind;
using topo::Topology;

constexpr double kGbps = 1e9;

class MaxMinTest : public ::testing::Test {
 protected:
  Topology t;
  NodeId a{}, b{}, c{}, d{};
  LinkId ab{}, bc{}, cd{};

  void SetUp() override {
    a = t.add_node(NodeKind::kNic, "a");
    b = t.add_node(NodeKind::kTor, "b");
    c = t.add_node(NodeKind::kTor, "c");
    d = t.add_node(NodeKind::kNic, "d");
    ab = t.add_duplex_link(a, b, LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
             .forward;
    bc = t.add_duplex_link(b, c, LinkKind::kFabric, Bandwidth::gbps(40), Duration::micros(1))
             .forward;
    cd = t.add_duplex_link(c, d, LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
             .forward;
  }
};

TEST_F(MaxMinTest, SingleFlowTakesBottleneck) {
  std::vector<FlowDemand> flows{{.path = {ab, bc, cd}}};
  MaxMinSolver{t}.solve(flows);
  EXPECT_NEAR(flows[0].rate_bps, 40 * kGbps, 1);
}

TEST_F(MaxMinTest, SingleFlowRespectsCap) {
  std::vector<FlowDemand> flows{{.path = {ab, bc, cd}, .cap_bps = 10 * kGbps}};
  MaxMinSolver{t}.solve(flows);
  EXPECT_NEAR(flows[0].rate_bps, 10 * kGbps, 1);
}

TEST_F(MaxMinTest, TwoFlowsShareEvenly) {
  std::vector<FlowDemand> flows{{.path = {ab, bc}}, {.path = {ab, bc}}};
  MaxMinSolver{t}.solve(flows);
  EXPECT_NEAR(flows[0].rate_bps, 20 * kGbps, 1);
  EXPECT_NEAR(flows[1].rate_bps, 20 * kGbps, 1);
}

TEST_F(MaxMinTest, CappedFlowReleasesShare) {
  // A capped at 5G; B should pick up the remaining 35G of the 40G link.
  std::vector<FlowDemand> flows{{.path = {ab, bc}, .cap_bps = 5 * kGbps},
                                {.path = {ab, bc}}};
  MaxMinSolver{t}.solve(flows);
  EXPECT_NEAR(flows[0].rate_bps, 5 * kGbps, 1);
  EXPECT_NEAR(flows[1].rate_bps, 35 * kGbps, 1);
}

TEST_F(MaxMinTest, ParkingLotFairness) {
  // Long flow over both access links, two cross flows one each. The long
  // flow is bottlenecked on bc (40G shared with nothing else here): all
  // three contend only pairwise on ab / cd.
  std::vector<FlowDemand> flows{
      {.path = {ab, bc, cd}},  // long
      {.path = {ab}},          // cross on first hop
      {.path = {cd}},          // cross on last hop
  };
  MaxMinSolver{t}.solve(flows);
  // Long flow: min(100/2, 40, 100/2) = 40.
  EXPECT_NEAR(flows[0].rate_bps, 40 * kGbps, 1);
  EXPECT_NEAR(flows[1].rate_bps, 60 * kGbps, 1);
  EXPECT_NEAR(flows[2].rate_bps, 60 * kGbps, 1);
}

TEST_F(MaxMinTest, EmptyPathGetsCap) {
  std::vector<FlowDemand> flows{{.path = {}, .cap_bps = 7 * kGbps}};
  MaxMinSolver{t}.solve(flows);
  EXPECT_NEAR(flows[0].rate_bps, 7 * kGbps, 1);
}

TEST_F(MaxMinTest, ManyFlowsConserveCapacity) {
  std::vector<FlowDemand> flows;
  for (int i = 0; i < 64; ++i) flows.push_back({.path = {ab, bc, cd}});
  MaxMinSolver{t}.solve(flows);
  double total = 0;
  for (const auto& f : flows) {
    EXPECT_NEAR(f.rate_bps, 40 * kGbps / 64, 1);
    total += f.rate_bps;
  }
  EXPECT_NEAR(total, 40 * kGbps, 64);
}

TEST_F(MaxMinTest, UnequalBottlenecksWaterfill) {
  // f1 on ab only, f2 on ab+bc. f2 bottlenecked at bc (40), f1 then gets
  // the rest of ab (60).
  std::vector<FlowDemand> flows{{.path = {ab}}, {.path = {ab, bc}}};
  MaxMinSolver{t}.solve(flows);
  EXPECT_NEAR(flows[1].rate_bps, 40 * kGbps, 1);
  EXPECT_NEAR(flows[0].rate_bps, 60 * kGbps, 1);
}

TEST_F(MaxMinTest, NoFlowsIsNoOp) {
  std::vector<FlowDemand> flows;
  EXPECT_NO_THROW(MaxMinSolver{t}.solve(flows));
}

}  // namespace
}  // namespace hpn::flowsim
