// Incremental-consistency harness: after ANY sequence of link up/down
// flips, flow add/removes, reroutes and cap changes, an incremental
// resolve() must produce exactly the allocation a cold solve computes on
// the same state. Driven by a seeded fuzz loop over random multigraphs.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"
#include "flowsim/maxmin.h"
#include "tests/support/random_scenarios.h"
#include "tests/support/reference_maxmin.h"

namespace hpn::flowsim {
namespace {

namespace ts = testsupport;

constexpr double kRelTol = 1e-6;

struct ShadowFlow {
  IncrementalMaxMin::Handle handle;
  std::vector<LinkId> path;
  double cap_bps;
};

/// Cold-solves the shadow flow set and checks the incremental rates match.
void check_against_cold(const ts::RandomNet& net, IncrementalMaxMin& inc,
                        const std::vector<ShadowFlow>& shadow, bool also_reference) {
  std::vector<FlowDemand> cold;
  cold.reserve(shadow.size());
  for (const ShadowFlow& s : shadow) cold.push_back({.path = s.path, .cap_bps = s.cap_bps});
  MaxMinSolver{net.topo}.solve(cold);

  std::vector<double> got;
  got.reserve(shadow.size());
  for (const ShadowFlow& s : shadow) got.push_back(inc.rate(s.handle));
  ts::expect_rates_near(got, ts::rates_of(cold), kRelTol);

  if (also_reference) {
    std::vector<FlowDemand> ref = cold;
    ReferenceMaxMinSolver{net.topo}.solve(ref);
    ts::expect_rates_near(got, ts::rates_of(ref), kRelTol);
  }
}

void fuzz_trial(std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng{seed};
  ts::RandomNet net = ts::make_random_net(rng, 6, 20);
  IncrementalMaxMin inc{net.topo};
  std::vector<ShadowFlow> shadow;

  const auto add_one = [&] {
    FlowDemand f = ts::random_flow(net, rng);
    const auto h = inc.add_flow(f.path, f.cap_bps);
    shadow.push_back(ShadowFlow{h, std::move(f.path), f.cap_bps});
  };
  for (int i = 0; i < 8; ++i) add_one();

  const int ops = static_cast<int>(rng.uniform_int(40, 90));
  for (int op = 0; op < ops; ++op) {
    SCOPED_TRACE("op=" + std::to_string(op));
    const double dice = rng.uniform_real();
    if (dice < 0.35) {
      add_one();
    } else if (dice < 0.5 && !shadow.empty()) {
      const std::size_t i = rng.uniform_index(shadow.size());
      inc.remove_flow(shadow[i].handle);
      shadow[i] = shadow.back();
      shadow.pop_back();
    } else if (dice < 0.65 && !shadow.empty()) {
      // Reroute onto a fresh random walk.
      const std::size_t i = rng.uniform_index(shadow.size());
      std::vector<LinkId> path = ts::random_walk_path(net.topo, rng);
      inc.set_path(shadow[i].handle, path);
      shadow[i].path = std::move(path);
    } else if (dice < 0.75 && !shadow.empty()) {
      const std::size_t i = rng.uniform_index(shadow.size());
      const double cap = rng.bernoulli(0.3) ? std::numeric_limits<double>::infinity()
                                            : rng.uniform_real(1e9, 450e9);
      inc.set_cap(shadow[i].handle, cap);
      shadow[i].cap_bps = cap;
    } else {
      // Flip a random link; announce it either precisely or as an
      // anonymous "something changed" (the resolve-time diff must find it).
      const LinkId l = net.links[rng.uniform_index(net.links.size())];
      net.topo.set_link_up(l, !net.topo.is_up(l));
      if (rng.bernoulli(0.5)) {
        inc.notify_link_changed(l);
      } else {
        inc.notify_topology_changed();
      }
    }
    if (op % 3 == 0 || op == ops - 1) {
      inc.resolve();
      check_against_cold(net, inc, shadow, /*also_reference=*/op == ops - 1);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_EQ(inc.flow_count(), shadow.size());
}

TEST(IncrementalMaxMin, MatchesColdSolveUnderFuzzedMutation) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    fuzz_trial(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalMaxMin, QuiescentResolveIsFreeAndStable) {
  Rng rng{99};
  ts::RandomNet net = ts::make_random_net(rng, 8, 12);
  IncrementalMaxMin inc{net.topo};
  std::vector<ShadowFlow> shadow;
  for (int i = 0; i < 24; ++i) {
    FlowDemand f = ts::random_flow(net, rng);
    const auto h = inc.add_flow(f.path, f.cap_bps);
    shadow.push_back(ShadowFlow{h, std::move(f.path), f.cap_bps});
  }
  EXPECT_GT(inc.resolve(), 0u);
  std::vector<double> before;
  for (const ShadowFlow& s : shadow) before.push_back(inc.rate(s.handle));
  // Nothing changed: resolve must touch zero flows and keep rates.
  EXPECT_EQ(inc.resolve(), 0u);
  // An announced-but-unflipped topology change is also a no-op.
  inc.notify_topology_changed();
  EXPECT_EQ(inc.resolve(), 0u);
  std::vector<double> after;
  for (const ShadowFlow& s : shadow) after.push_back(inc.rate(s.handle));
  EXPECT_EQ(before, after);
}

TEST(IncrementalMaxMin, SingleFlipTouchesOnlyItsComponent) {
  // Two disjoint line networks inside one topology: flipping a link in one
  // must not re-rate flows in the other.
  topo::Topology t;
  const NodeId a0 = t.add_node(topo::NodeKind::kTor, "a0");
  const NodeId a1 = t.add_node(topo::NodeKind::kTor, "a1");
  const NodeId b0 = t.add_node(topo::NodeKind::kTor, "b0");
  const NodeId b1 = t.add_node(topo::NodeKind::kTor, "b1");
  const LinkId la = t.add_duplex_link(a0, a1, topo::LinkKind::kFabric,
                                      Bandwidth::gbps(100), Duration::micros(1))
                        .forward;
  const LinkId lb = t.add_duplex_link(b0, b1, topo::LinkKind::kFabric,
                                      Bandwidth::gbps(100), Duration::micros(1))
                        .forward;
  IncrementalMaxMin inc{t};
  const auto fa1 = inc.add_flow({la}, 200e9);
  const auto fa2 = inc.add_flow({la}, 200e9);
  const auto fb = inc.add_flow({lb}, 200e9);
  EXPECT_EQ(inc.resolve(), 3u);
  EXPECT_NEAR(inc.rate(fa1), 50e9, 1);
  EXPECT_NEAR(inc.rate(fb), 100e9, 1);

  t.set_link_up(la, false);
  inc.notify_link_changed(la);
  // Only the two flows on the A component are re-rated.
  EXPECT_EQ(inc.resolve(), 2u);
  EXPECT_EQ(inc.rate(fa1), 0.0);
  EXPECT_EQ(inc.rate(fa2), 0.0);
  EXPECT_NEAR(inc.rate(fb), 100e9, 1);

  t.set_link_up(la, true);
  inc.notify_topology_changed();
  EXPECT_EQ(inc.resolve(), 2u);
  EXPECT_NEAR(inc.rate(fa1), 50e9, 1);
  EXPECT_EQ(inc.stats().link_flips, 1u);  // only the anonymous flip is counted
}

}  // namespace
}  // namespace hpn::flowsim
