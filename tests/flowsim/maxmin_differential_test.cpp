// Differential harness: the rewritten dense/heap water-filling engine must
// be allocation-equivalent to the seed implementation (ReferenceMaxMinSolver)
// before it is allowed to replace it under every throughput bench. Each
// trial draws a random multigraph, a random flow set (ties, caps, host-local
// and stalled flows included) and asserts rate-for-rate agreement within
// 1e-6 relative.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "flowsim/maxmin.h"
#include "routing/router.h"
#include "tests/support/random_scenarios.h"
#include "tests/support/reference_maxmin.h"
#include "topo/builders.h"

namespace hpn::flowsim {
namespace {

namespace ts = testsupport;

constexpr double kRelTol = 1e-6;

void run_trial(std::uint64_t seed, bool with_failures) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               (with_failures ? " (with down links)" : ""));
  Rng rng{seed};
  ts::RandomNet net = ts::make_random_net(rng);
  if (with_failures) {
    ts::fail_random_links(net, rng, static_cast<int>(rng.uniform_int(1, 4)));
  }
  const int count = static_cast<int>(rng.uniform_int(1, 120));
  std::vector<FlowDemand> flows = ts::random_flows(net, rng, count);

  std::vector<FlowDemand> expected = flows;
  ReferenceMaxMinSolver{net.topo}.solve(expected);
  MaxMinSolver{net.topo}.solve(flows);
  ts::expect_rates_near(ts::rates_of(flows), ts::rates_of(expected), kRelTol);
}

TEST(MaxMinDifferential, AgreesWithReferenceOnRandomNets) {
  // >= 1000 seeded trials against the seed solver, all links up.
  for (std::uint64_t seed = 1; seed <= 700; ++seed) {
    run_trial(seed, /*with_failures=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MaxMinDifferential, AgreesWithReferenceUnderLinkFailures) {
  for (std::uint64_t seed = 1001; seed <= 1400; ++seed) {
    run_trial(seed, /*with_failures=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MaxMinDifferential, AgreesOnHpnClusterWithRoutedPaths) {
  // Realistic flavor: ECMP-routed paths over the tiny HPN build, random
  // access/fabric failures included.
  const topo::Cluster c = topo::build_hpn(topo::HpnConfig::tiny());
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("hpn seed=" + std::to_string(seed));
    Rng rng{seed * 7919};
    routing::Router r{c.topo};
    std::vector<FlowDemand> flows;
    const int gpus = c.gpu_count();
    while (flows.size() < 160) {
      const int a = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(gpus)));
      const int b = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(gpus)));
      if (a == b || c.nic_of(a).nic == c.nic_of(b).nic) continue;
      const routing::Path p = r.trace(
          c.nic_of(a).nic, c.nic_of(b).nic,
          routing::FiveTuple{.src_ip = static_cast<std::uint32_t>(a),
                             .dst_ip = static_cast<std::uint32_t>(b),
                             .src_port = static_cast<std::uint16_t>(rng.next_u64())});
      if (!p.valid()) continue;
      FlowDemand d;
      d.path = p.links;
      d.cap_bps = rng.bernoulli(0.5) ? 200e9 : rng.uniform_real(10e9, 400e9);
      flows.push_back(std::move(d));
    }
    // Fail a couple of links *after* routing: some paths now stall.
    topo::Topology& topo = const_cast<topo::Cluster&>(c).topo;
    std::vector<LinkId> failed;
    for (int k = 0; k < 2; ++k) {
      const LinkId l{static_cast<LinkId::underlying>(rng.uniform_index(topo.link_count()))};
      topo.set_link_up(l, false);
      failed.push_back(l);
    }

    std::vector<FlowDemand> expected = flows;
    ReferenceMaxMinSolver{topo}.solve(expected);
    MaxMinSolver{topo}.solve(flows);
    ts::expect_rates_near(ts::rates_of(flows), ts::rates_of(expected), kRelTol);

    for (const LinkId l : failed) topo.set_link_up(l, true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MaxMinDifferential, SolverScratchIsReusableAcrossSolves) {
  // One MaxMinSolver instance re-solving different flow sets must not leak
  // state between calls (the dense scratch is epoch-stamped, not cleared).
  Rng rng{4242};
  ts::RandomNet net = ts::make_random_net(rng, 8, 16);
  MaxMinSolver solver{net.topo};
  for (int round = 0; round < 50; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    std::vector<FlowDemand> flows =
        ts::random_flows(net, rng, static_cast<int>(rng.uniform_int(1, 60)));
    std::vector<FlowDemand> expected = flows;
    ReferenceMaxMinSolver{net.topo}.solve(expected);
    solver.solve(flows);
    ts::expect_rates_near(ts::rates_of(flows), ts::rates_of(expected), kRelTol);
  }
}

}  // namespace
}  // namespace hpn::flowsim
