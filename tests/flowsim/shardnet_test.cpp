#include "flowsim/shardnet.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/pdes.h"
#include "topo/partition.h"
#include "topo/topology.h"

namespace hpn::flowsim {
namespace {

using topo::LinkKind;
using topo::NodeKind;

/// A -> B -> C chain: 10 Gbps, 1 us latency per hop. With 1250-byte chunks
/// every chunk serializes in exactly 1 us, so completion times are exact.
struct Chain {
  topo::Topology topo;
  NodeId a, b, c;
  LinkId ab, bc, cb, ba;

  Chain() {
    a = topo.add_node(NodeKind::kHostProxy, "a");
    b = topo.add_node(NodeKind::kTor, "b");
    c = topo.add_node(NodeKind::kHostProxy, "c");
    const auto d1 = topo.add_duplex_link(a, b, LinkKind::kAccess,
                                         Bandwidth::gbps(10), Duration::micros(1));
    const auto d2 = topo.add_duplex_link(b, c, LinkKind::kAccess,
                                         Bandwidth::gbps(10), Duration::micros(1));
    ab = d1.forward;
    ba = d1.backward;
    bc = d2.forward;
    cb = d2.backward;
  }

  [[nodiscard]] topo::Partition split(std::vector<int> node_shard) const {
    topo::Partition p;
    p.shards = 1;
    for (int s : node_shard) p.shards = std::max(p.shards, s + 1);
    p.node_shard = std::move(node_shard);
    p.derive_links(topo);
    return p;
  }
};

ShardNetConfig chunk1250() {
  ShardNetConfig cfg;
  cfg.chunk = DataSize::bytes(1250);  // 10'000 bits = 1 us at 10 Gbps
  return cfg;
}

TEST(ShardedFlowNet, StoreAndForwardPipelineIsExact) {
  Chain chain;
  const topo::Partition p = chain.split({0, 0, 0});
  sim::ShardedSimulator sim{p.shards, p.lookahead};
  ShardedFlowNet net{chain.topo, p, sim, chunk1250()};
  // 4 chunks injected at line rate: chunk k departs hop1 at (k+1) us,
  // reaches B at (k+2) us, departs hop2 at (k+3) us, reaches C at (k+4) us.
  net.start_flow({chain.ab, chain.bc}, DataSize::bytes(5'000),
                 TimePoint::origin(), Bandwidth::gbps(10));
  sim.run();
  const auto results = net.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].finish.as_nanos(), 7'000);
  EXPECT_EQ(results[0].hops, 2u);
  EXPECT_EQ(net.chunk_hops(), 8u);
  EXPECT_EQ(net.completed(), 1u);
}

TEST(ShardedFlowNet, SameInstantContentionResolvesByFlowId) {
  Chain chain;
  const topo::Partition p = chain.split({0, 0, 0});
  sim::ShardedSimulator sim{p.shards, p.lookahead};
  ShardedFlowNet net{chain.topo, p, sim, chunk1250()};
  // Both single-chunk flows hit link ab at t=0; the pump transmits flow 0
  // first regardless of staging order.
  const FlowId f0 = net.start_flow({chain.ab, chain.bc}, DataSize::bytes(1'250),
                                   TimePoint::origin(), Bandwidth::gbps(10));
  const FlowId f1 = net.start_flow({chain.ab, chain.bc}, DataSize::bytes(1'250),
                                   TimePoint::origin(), Bandwidth::gbps(10));
  sim.run();
  const auto results = net.results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, f0);
  EXPECT_EQ(results[0].finish.as_nanos(), 4'000);
  EXPECT_EQ(results[1].id, f1);
  EXPECT_EQ(results[1].finish.as_nanos(), 5'000);
}

TEST(ShardedFlowNet, FaultParksChunksUntilRepair) {
  Chain chain;
  const topo::Partition p = chain.split({0, 0, 0});
  sim::ShardedSimulator sim{p.shards, p.lookahead};
  ShardedFlowNet net{chain.topo, p, sim, chunk1250()};
  net.enable_tracing();
  net.start_flow({chain.ab, chain.bc}, DataSize::bytes(5'000),
                 TimePoint::origin(), Bandwidth::gbps(10));
  // Chunks reach B from 2 us; the down bc link parks them until 10 us.
  net.fail_link(chain.bc, TimePoint::at_nanos(1'500));
  net.repair_link(chain.bc, TimePoint::at_nanos(10'000));
  sim.run();
  const auto results = net.results();
  ASSERT_EQ(results.size(), 1u);
  // Parked chunks restage at 10 us, serialize back to back (11..14 us) and
  // the last reaches C at 15 us.
  EXPECT_EQ(results[0].finish.as_nanos(), 15'000);
  std::ostringstream trace;
  net.write_trace_csv(trace);
  EXPECT_NE(trace.str().find("link_down"), std::string::npos);
  EXPECT_NE(trace.str().find("link_up"), std::string::npos);
}

TEST(ShardedFlowNet, ShardedRunMatchesSerialByteForByte) {
  auto run = [](const std::vector<int>& split, Duration lookahead_override,
                bool use_override) {
    Chain chain;
    const topo::Partition p = chain.split(split);
    const Duration la = use_override ? lookahead_override : p.lookahead;
    sim::ShardedSimulator sim{p.shards, la};
    ShardedFlowNet net{chain.topo, p, sim, chunk1250()};
    net.enable_tracing();
    net.start_flow({chain.ab, chain.bc}, DataSize::bytes(5'000),
                   TimePoint::origin(), Bandwidth::gbps(10));
    net.start_flow({chain.cb, chain.ba}, DataSize::bytes(3'750),
                   TimePoint::at_nanos(500), Bandwidth::gbps(10));
    net.start_flow({chain.ab, chain.bc}, DataSize::bytes(2'500),
                   TimePoint::at_nanos(1'000), Bandwidth::gbps(5));
    net.fail_link(chain.bc, TimePoint::at_nanos(2'500));
    net.repair_link(chain.bc, TimePoint::at_nanos(6'000));
    sim.run();
    std::ostringstream csv, trace;
    net.write_csv(csv);
    net.write_trace_csv(trace);
    return csv.str() + "|" + trace.str();
  };
  const std::string serial = run({0, 0, 0}, Duration::zero(), false);
  // Every split of the chain, with natural lookahead and with the
  // adversarial lockstep (lookahead 0) mode, must reproduce it exactly.
  EXPECT_EQ(run({0, 0, 1}, Duration::zero(), false), serial);
  EXPECT_EQ(run({0, 1, 1}, Duration::zero(), false), serial);
  EXPECT_EQ(run({0, 1, 2}, Duration::zero(), false), serial);
  EXPECT_EQ(run({0, 1, 2}, Duration::zero(), true), serial) << "lockstep mode";
  EXPECT_EQ(run({1, 0, 1}, Duration::micros(1), true), serial);
}

}  // namespace
}  // namespace hpn::flowsim
