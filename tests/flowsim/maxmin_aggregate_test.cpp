// Macro-flow aggregation battery: the aggregated engine must allocate
// exactly like the preserved per-flow engine (tests/support/
// reference_incremental.h) — bit-equal in kPerFlow mode, within the
// documented kEps contract in kMacroFlows mode — across fuzzed mutation
// sequences, every registry fabric, and the aggregation-specific edges
// (weighted fairness, demotion by cap/path divergence, duplicate-link
// paths, member-weighted accounting).
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fabric/fabric.h"
#include "flowsim/maxmin.h"
#include "tests/support/random_scenarios.h"
#include "tests/support/reference_incremental.h"

namespace hpn::flowsim {
namespace {

namespace ts = testsupport;

constexpr double kRelTol = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// The production engine and the preserved per-flow oracle, driven through
/// identical mutation sequences.
struct MirroredEngines {
  MirroredEngines(const topo::Topology& t, Aggregation mode)
      : agg{t, mode}, ref{t} {}

  struct Pair {
    IncrementalMaxMin::Handle a;
    ReferenceIncrementalMaxMin::Handle r;
    std::vector<LinkId> path;
    double cap_bps;
  };

  void add(const std::vector<LinkId>& path, double cap_bps) {
    flows.push_back(Pair{agg.add_flow(path, cap_bps), ref.add_flow(path, cap_bps),
                         path, cap_bps});
  }
  void remove(std::size_t i) {
    agg.remove_flow(flows[i].a);
    ref.remove_flow(flows[i].r);
    flows[i] = flows.back();
    flows.pop_back();
  }
  void set_path(std::size_t i, std::vector<LinkId> path) {
    agg.set_path(flows[i].a, path);
    ref.set_path(flows[i].r, path);
    flows[i].path = std::move(path);
  }
  void set_cap(std::size_t i, double cap) {
    agg.set_cap(flows[i].a, cap);
    ref.set_cap(flows[i].r, cap);
    flows[i].cap_bps = cap;
  }

  /// resolve() both and compare: member-weighted re-rate counts must agree
  /// exactly, rates bit-equal (per-flow mode) or within kRelTol.
  void resolve_and_compare(bool bit_equal) {
    EXPECT_EQ(agg.resolve(), ref.resolve());
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const double got = agg.rate(flows[i].a);
      const double want = ref.rate(flows[i].r);
      if (bit_equal) {
        EXPECT_EQ(got, want) << "flow " << i << " not bit-equal";
      } else {
        const double tol = std::max(1e-3, kRelTol * std::abs(want));
        EXPECT_NEAR(got, want, tol) << "flow " << i << " disagrees";
      }
    }
  }

  IncrementalMaxMin agg;
  ReferenceIncrementalMaxMin ref;
  std::vector<Pair> flows;
};

void mirrored_fuzz_trial(std::uint64_t seed, Aggregation mode) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng{seed};
  ts::RandomNet net = ts::make_random_net(rng, 6, 20);
  MirroredEngines m{net.topo, mode};

  const auto add_one = [&] {
    // Half the adds clone an existing flow's (path, cap) so real macro-flow
    // classes form; the rest draw fresh random walks.
    if (!m.flows.empty() && rng.bernoulli(0.5)) {
      const auto& donor = m.flows[rng.uniform_index(m.flows.size())];
      m.add(donor.path, donor.cap_bps);
      return;
    }
    FlowDemand f = ts::random_flow(net, rng);
    m.add(f.path, f.cap_bps);
  };
  for (int i = 0; i < 10; ++i) add_one();

  const int ops = static_cast<int>(rng.uniform_int(40, 90));
  for (int op = 0; op < ops; ++op) {
    SCOPED_TRACE("op=" + std::to_string(op));
    const double dice = rng.uniform_real();
    if (dice < 0.35) {
      add_one();
    } else if (dice < 0.5 && !m.flows.empty()) {
      m.remove(rng.uniform_index(m.flows.size()));
    } else if (dice < 0.62 && !m.flows.empty()) {
      m.set_path(rng.uniform_index(m.flows.size()),
                 ts::random_walk_path(net.topo, rng));
    } else if (dice < 0.68 && m.flows.size() >= 2) {
      // Converge one flow onto another's path: forms a class in-flight.
      const std::size_t i = rng.uniform_index(m.flows.size());
      const std::size_t j = rng.uniform_index(m.flows.size());
      m.set_path(i, m.flows[j].path);
    } else if (dice < 0.78 && !m.flows.empty()) {
      // Cap change — splits a member out of its class (demotion path).
      const std::size_t i = rng.uniform_index(m.flows.size());
      const double cap = rng.bernoulli(0.3) ? kInf : rng.uniform_real(1e9, 450e9);
      m.set_cap(i, cap);
    } else {
      const LinkId l = net.links[rng.uniform_index(net.links.size())];
      net.topo.set_link_up(l, !net.topo.is_up(l));
      if (rng.bernoulli(0.5)) {
        m.agg.notify_link_changed(l);
        m.ref.notify_link_changed(l);
      } else {
        m.agg.notify_topology_changed();
        m.ref.notify_topology_changed();
      }
    }
    if (op % 3 == 0 || op == ops - 1) {
      m.resolve_and_compare(/*bit_equal=*/mode == Aggregation::kPerFlow);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_EQ(m.agg.flow_count(), m.flows.size());
  EXPECT_EQ(m.agg.flow_count(), m.ref.flow_count());
}

TEST(MaxMinAggregate, PerFlowModeIsBitEqualToReference) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    mirrored_fuzz_trial(seed, Aggregation::kPerFlow);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MaxMinAggregate, MacroFlowsMatchReferenceUnderFuzzedMutation) {
  for (std::uint64_t seed = 101; seed <= 160; ++seed) {
    mirrored_fuzz_trial(seed, Aggregation::kMacroFlows);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Every registry fabric: collective-shaped flow sets (many members per
// (path, cap) class), link failures, both engines re-solved and compared.
TEST(MaxMinAggregate, MatchesReferenceOnEveryRegistryFabric) {
  fabric::FabricScale scale;
  scale.hosts_per_segment = 2;
  scale.gpus_per_host = 4;
  for (const fabric::Fabric* f : fabric::all_fabrics()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(std::string{f->name()} + " seed=" + std::to_string(seed));
      topo::Cluster cluster = f->build(scale);
      Rng rng{seed * 7919};
      MirroredEngines m{cluster.topo, Aggregation::kMacroFlows};

      // Collective-shaped load: a handful of distinct (path, cap) classes,
      // each with many members (channels x chunks in the real ccl layer).
      static constexpr double kCaps[] = {kInf, 200e9, 400e9};
      for (int klass = 0; klass < 24; ++klass) {
        const std::vector<LinkId> path = ts::random_walk_path(cluster.topo, rng);
        if (path.empty()) continue;
        const double cap = kCaps[rng.uniform_index(3)];
        const int members = static_cast<int>(rng.uniform_int(1, 8));
        for (int k = 0; k < members; ++k) m.add(path, cap);
      }
      m.resolve_and_compare(/*bit_equal=*/false);
      if (::testing::Test::HasFatalFailure()) return;
      EXPECT_GT(m.agg.aggregation().collapse(), 1.5)
          << "aggregation never engaged on " << f->name();

      // Fail a couple of links and re-solve.
      for (int i = 0; i < 2; ++i) {
        const LinkId l{static_cast<LinkId::underlying>(
            rng.uniform_index(cluster.topo.link_count()))};
        cluster.topo.set_link_up(l, false);
      }
      m.agg.notify_topology_changed();
      m.ref.notify_topology_changed();
      m.resolve_and_compare(/*bit_equal=*/false);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---- Aggregation-specific properties --------------------------------------

TEST(MaxMinAggregate, IdenticalFlowsShareOneItemAndSplitExactly) {
  topo::Topology t;
  const NodeId a = t.add_node(topo::NodeKind::kTor, "a");
  const NodeId b = t.add_node(topo::NodeKind::kTor, "b");
  const LinkId l = t.add_duplex_link(a, b, topo::LinkKind::kFabric,
                                     Bandwidth::gbps(100), Duration::micros(1))
                       .forward;
  IncrementalMaxMin inc{t};
  std::vector<IncrementalMaxMin::Handle> hs;
  for (int i = 0; i < 4; ++i) hs.push_back(inc.add_flow({l}, kInf));
  // Member-weighted accounting: 4 flows re-rated from 1 solver item.
  EXPECT_EQ(inc.resolve(), 4u);
  for (const auto h : hs) EXPECT_EQ(inc.rate(h), 25e9);
  EXPECT_EQ(inc.throughput_on(l), 100e9);

  const auto snap = inc.aggregation();
  EXPECT_EQ(snap.flows, 4u);
  EXPECT_EQ(snap.macro_flows, 1u);
  EXPECT_EQ(snap.multi_member, 1u);
  EXPECT_EQ(snap.members_max, 4u);
  EXPECT_EQ(snap.members_p50, 4u);
  EXPECT_DOUBLE_EQ(snap.collapse(), 4.0);
  EXPECT_EQ(inc.stats().macros_formed, 1u);
}

TEST(MaxMinAggregate, CapDivergenceDemotesOutOfTheMacroFlow) {
  topo::Topology t;
  const NodeId a = t.add_node(topo::NodeKind::kTor, "a");
  const NodeId b = t.add_node(topo::NodeKind::kTor, "b");
  const LinkId l = t.add_duplex_link(a, b, topo::LinkKind::kFabric,
                                     Bandwidth::gbps(90), Duration::micros(1))
                       .forward;
  IncrementalMaxMin inc{t};
  const auto h0 = inc.add_flow({l}, kInf);
  const auto h1 = inc.add_flow({l}, kInf);
  const auto h2 = inc.add_flow({l}, kInf);
  EXPECT_EQ(inc.resolve(), 3u);
  EXPECT_EQ(inc.aggregation().macro_flows, 1u);

  // Cap one member below its fair share: it must leave the class and the
  // other two absorb the slack (max-min: 10 + 40 + 40).
  inc.set_cap(h2, 10e9);
  EXPECT_EQ(inc.stats().demotions, 1u);
  EXPECT_EQ(inc.resolve(), 3u);
  EXPECT_NEAR(inc.rate(h2), 10e9, 1.0);
  EXPECT_NEAR(inc.rate(h0), 40e9, 1.0);
  EXPECT_NEAR(inc.rate(h1), 40e9, 1.0);
  EXPECT_EQ(inc.aggregation().macro_flows, 2u);

  // Restoring the exact cap re-joins the surviving class.
  inc.set_cap(h2, kInf);
  EXPECT_EQ(inc.resolve(), 3u);
  EXPECT_EQ(inc.aggregation().macro_flows, 1u);
  EXPECT_NEAR(inc.rate(h0), 30e9, 1.0);
  EXPECT_NEAR(inc.rate(h2), 30e9, 1.0);
}

TEST(MaxMinAggregate, DuplicateLinkPathsDrainPerOccurrence) {
  // A path that crosses the same link twice consumes two shares of it, and
  // two such flows must aggregate into one weight-2 item with the same
  // allocation the per-flow engine computes.
  topo::Topology t;
  const NodeId a = t.add_node(topo::NodeKind::kTor, "a");
  const NodeId b = t.add_node(topo::NodeKind::kTor, "b");
  const LinkId l = t.add_duplex_link(a, b, topo::LinkKind::kFabric,
                                     Bandwidth::gbps(100), Duration::micros(1))
                       .forward;
  IncrementalMaxMin inc{t};
  ReferenceIncrementalMaxMin ref{t};
  const auto h0 = inc.add_flow({l, l}, kInf);
  const auto h1 = inc.add_flow({l, l}, kInf);
  const auto r0 = ref.add_flow({l, l}, kInf);
  EXPECT_EQ(inc.resolve(), 2u);
  ref.resolve();
  EXPECT_EQ(inc.aggregation().macro_flows, 1u);
  // 100G / (2 flows x 2 occurrences) = 25G each.
  EXPECT_NEAR(inc.rate(h0), 25e9, 1.0);
  EXPECT_NEAR(inc.rate(h1), 25e9, 1.0);
  EXPECT_NEAR(ref.rate(r0), 50e9, 1.0);  // oracle sanity: alone it gets 50
  // Link load counts every traversal: 2 flows x 25G x 2 occurrences.
  EXPECT_NEAR(inc.throughput_on(l), 100e9, 1.0);
}

TEST(MaxMinAggregate, LinkLoadsNeverExceedCapacity) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng{seed * 31};
    ts::RandomNet net = ts::make_random_net(rng, 6, 16);
    IncrementalMaxMin inc{net.topo};
    std::vector<std::pair<IncrementalMaxMin::Handle, std::vector<LinkId>>> flows;
    for (int i = 0; i < 60; ++i) {
      FlowDemand f = ts::random_flow(net, rng);
      flows.emplace_back(inc.add_flow(f.path, f.cap_bps), f.path);
    }
    inc.resolve();
    // Conservation per link: sum of member rates over every occurrence.
    std::vector<double> load(net.topo.link_count(), 0.0);
    for (const auto& [h, path] : flows) {
      for (const LinkId l : path) load[l.index()] += inc.rate(h);
    }
    for (const LinkId l : net.links) {
      const double cap = net.topo.link(l).capacity.as_bits_per_sec();
      EXPECT_LE(load[l.index()], cap * (1.0 + kRelTol) + 1.0)
          << "link " << l.value() << " overcommitted";
    }
    // And per-flow rates never exceed their caps.
    for (const auto& [h, path] : flows) {
      EXPECT_LE(inc.rate(h), inc.cap(h) * (1.0 + kRelTol) + 1.0);
    }
  }
}

TEST(MaxMinAggregate, PathIdOverloadsSkipRehashing) {
  topo::Topology t;
  const NodeId a = t.add_node(topo::NodeKind::kTor, "a");
  const NodeId b = t.add_node(topo::NodeKind::kTor, "b");
  const LinkId l = t.add_duplex_link(a, b, topo::LinkKind::kFabric,
                                     Bandwidth::gbps(100), Duration::micros(1))
                       .forward;
  IncrementalMaxMin inc{t};
  const PathId p = inc.paths().intern(std::vector<LinkId>{l});
  const std::uint64_t lookups_before = inc.paths().lookups();
  const auto h0 = inc.add_flow(p, kInf);
  const auto h1 = inc.add_flow(p, kInf);
  EXPECT_EQ(inc.paths().lookups(), lookups_before);  // no rehash on the id path
  EXPECT_EQ(inc.path_id(h0), p);
  EXPECT_EQ(inc.resolve(), 2u);
  EXPECT_EQ(inc.rate(h0), inc.rate(h1));
  EXPECT_EQ(inc.path(h0), std::vector<LinkId>{l});
}

}  // namespace
}  // namespace hpn::flowsim
