#include "flowsim/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "topo/topology.h"

namespace hpn::flowsim {
namespace {

using topo::LinkKind;
using topo::NodeKind;
using topo::Topology;

class SessionTest : public ::testing::Test {
 protected:
  Topology t;
  sim::Simulator s;
  LinkId ab{}, bc{};

  void SetUp() override {
    const NodeId a = t.add_node(NodeKind::kNic, "a");
    const NodeId b = t.add_node(NodeKind::kTor, "b");
    const NodeId c = t.add_node(NodeKind::kNic, "c");
    ab = t.add_duplex_link(a, b, LinkKind::kAccess, Bandwidth::gbps(1), Duration::micros(1))
             .forward;
    bc = t.add_duplex_link(b, c, LinkKind::kAccess, Bandwidth::gbps(1), Duration::micros(1))
             .forward;
  }
};

TEST_F(SessionTest, SingleFlowFinishesAtExactTime) {
  FlowSession fs{t, s};
  TimePoint done = TimePoint::far_future();
  fs.start_flow({ab, bc}, DataSize::gigabytes(0.125) /* 1 Gbit */, Bandwidth::gbps(10),
                [&](FlowId) { done = s.now(); });
  s.run();
  EXPECT_NEAR((done - TimePoint::origin()).as_seconds(), 1.0, 1e-6);
  EXPECT_EQ(fs.active_flows(), 0u);
}

TEST_F(SessionTest, CapLimitsRate) {
  FlowSession fs{t, s};
  TimePoint done;
  fs.start_flow({ab}, DataSize::bits(500'000'000), Bandwidth::gbps(0.5),
                [&](FlowId) { done = s.now(); });
  s.run();
  EXPECT_NEAR((done - TimePoint::origin()).as_seconds(), 1.0, 1e-6);
}

TEST_F(SessionTest, TwoFlowsShareThenSpeedUp) {
  // A: 2 Gbit, B: 1 Gbit on a 1 Gbps link. Both run at 0.5 until B ends at
  // t=2s; A then runs at 1.0 and ends at t=3s.
  FlowSession fs{t, s};
  TimePoint a_done, b_done;
  const FlowId a = fs.start_flow({ab}, DataSize::bits(2'000'000'000), Bandwidth::gbps(10),
                                 [&](FlowId) { a_done = s.now(); });
  fs.start_flow({ab}, DataSize::bits(1'000'000'000), Bandwidth::gbps(10),
                [&](FlowId) { b_done = s.now(); });
  s.run_until(TimePoint::at_nanos(1'000'000'000));
  EXPECT_NEAR(fs.rate_of(a)->as_gbps(), 0.5, 1e-9);
  s.run();
  EXPECT_NEAR((b_done - TimePoint::origin()).as_seconds(), 2.0, 1e-6);
  EXPECT_NEAR((a_done - TimePoint::origin()).as_seconds(), 3.0, 1e-6);
}

TEST_F(SessionTest, ZeroSizeCompletesImmediately) {
  FlowSession fs{t, s};
  bool done = false;
  fs.start_flow({ab}, DataSize::zero(), Bandwidth::gbps(1), [&](FlowId) { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.now(), TimePoint::origin());
}

TEST_F(SessionTest, CompletionCanChainFlows) {
  FlowSession fs{t, s};
  TimePoint second_done;
  fs.start_flow({ab}, DataSize::bits(1'000'000'000), Bandwidth::gbps(10), [&](FlowId) {
    fs.start_flow({bc}, DataSize::bits(1'000'000'000), Bandwidth::gbps(10),
                  [&](FlowId) { second_done = s.now(); });
  });
  s.run();
  EXPECT_NEAR((second_done - TimePoint::origin()).as_seconds(), 2.0, 1e-6);
}

TEST_F(SessionTest, AbortStopsFlowWithoutCallback) {
  FlowSession fs{t, s};
  bool fired = false;
  const FlowId id =
      fs.start_flow({ab}, DataSize::gigabytes(100), Bandwidth::gbps(10), [&](FlowId) { fired = true; });
  s.schedule_after(Duration::seconds(1.0), [&] { EXPECT_TRUE(fs.abort_flow(id)); });
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(fs.active_flows(), 0u);
  EXPECT_FALSE(fs.abort_flow(id));
}

TEST_F(SessionTest, AbortFreesBandwidthForOthers) {
  FlowSession fs{t, s};
  TimePoint b_done;
  const FlowId a = fs.start_flow({ab}, DataSize::gigabytes(100), Bandwidth::gbps(10));
  fs.start_flow({ab}, DataSize::bits(1'500'000'000), Bandwidth::gbps(10),
                [&](FlowId) { b_done = s.now(); });
  // B runs at 0.5 for 1s (0.5 Gbit moved), then alone at 1.0 for 1s more.
  s.schedule_after(Duration::seconds(1.0), [&] { fs.abort_flow(a); });
  s.run();
  EXPECT_NEAR((b_done - TimePoint::origin()).as_seconds(), 2.0, 1e-6);
}

TEST_F(SessionTest, ThroughputOnLinkTracksRates) {
  FlowSession fs{t, s};
  fs.start_flow({ab, bc}, DataSize::gigabytes(10), Bandwidth::gbps(10));
  fs.start_flow({ab}, DataSize::gigabytes(10), Bandwidth::gbps(10));
  s.run_until(TimePoint::at_nanos(1000));
  EXPECT_NEAR(fs.throughput_on(ab).as_gbps(), 1.0, 1e-9);
  EXPECT_NEAR(fs.throughput_on(bc).as_gbps(), 0.5, 1e-9);
}

TEST_F(SessionTest, SimultaneousStartsBatchIntoOneAllocation) {
  FlowSession fs{t, s};
  std::vector<FlowId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(fs.start_flow({ab}, DataSize::gigabytes(1), Bandwidth::gbps(10)));
  }
  s.run_until(TimePoint::at_nanos(10));
  for (const FlowId id : ids) EXPECT_NEAR(fs.rate_of(id)->as_gbps(), 0.25, 1e-9);
}

TEST_F(SessionTest, DeliveredTotalAccumulates) {
  FlowSession fs{t, s};
  fs.start_flow({ab}, DataSize::bits(1'000'000'000), Bandwidth::gbps(10));
  s.run();
  EXPECT_NEAR(static_cast<double>(fs.delivered_total().as_bits()), 1e9, 1e3);
}

TEST_F(SessionTest, RateOfUnknownFlowIsNullopt) {
  FlowSession fs{t, s};
  EXPECT_FALSE(fs.rate_of(FlowId{404}).has_value());
  EXPECT_FALSE(fs.remaining_of(FlowId{404}).has_value());
}

}  // namespace
}  // namespace hpn::flowsim
// --- Tracing --------------------------------------------------------------------
namespace hpn::flowsim {
namespace {

TEST_F(SessionTest, TraceRecordsCompletedFlows) {
  FlowSession fs{t, s};
  fs.enable_tracing(true);
  fs.start_flow({ab}, DataSize::bits(1'000'000'000), Bandwidth::gbps(10));
  fs.start_flow({ab, bc}, DataSize::bits(500'000'000), Bandwidth::gbps(10));
  s.run();
  ASSERT_EQ(fs.trace().size(), 2u);
  for (const FlowRecord& r : fs.trace()) {
    EXPECT_FALSE(r.aborted);
    EXPECT_GT(r.fct().as_seconds(), 0.0);
    EXPECT_GT(r.average_rate().as_gbps(), 0.0);
    EXPECT_LE(r.average_rate().as_gbps(), 1.0 + 1e-6);
  }
}

TEST_F(SessionTest, TraceMarksAborted) {
  FlowSession fs{t, s};
  fs.enable_tracing(true);
  const FlowId id = fs.start_flow({ab}, DataSize::gigabytes(100), Bandwidth::gbps(10));
  s.run_until(TimePoint::at_nanos(1'000'000));
  fs.abort_flow(id);
  s.run();
  ASSERT_EQ(fs.trace().size(), 1u);
  EXPECT_TRUE(fs.trace()[0].aborted);
}

TEST_F(SessionTest, TraceCsvWellFormed) {
  FlowSession fs{t, s};
  fs.enable_tracing(true);
  fs.start_flow({ab}, DataSize::megabytes(10), Bandwidth::gbps(10));
  s.run();
  std::ostringstream os;
  fs.write_trace_csv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.substr(0, 2), "id");
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);  // header + 1 row
}

TEST_F(SessionTest, TracingOffByDefault) {
  FlowSession fs{t, s};
  fs.start_flow({ab}, DataSize::megabytes(1), Bandwidth::gbps(10));
  s.run();
  EXPECT_TRUE(fs.trace().empty());
}

}  // namespace
}  // namespace hpn::flowsim
