// Differential suite: the dense packet engine (flat LinkId-indexed ports,
// flow slot map, ring FIFOs, pooled events) must be *bit-identical* to the
// seed engine (tests/support/reference_packet.h) — same RNG draw sequence,
// same scheduled-event count, same delivered/ECN/PFC/drop counters, same
// per-flow completion nanoseconds. Any divergence is a bug in the rewrite,
// never a tolerance question.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "flowsim/packet.h"
#include "tests/support/reference_packet.h"
#include "tests/support/reference_simulator.h"
#include "topo/topology.h"

namespace hpn::flowsim {
namespace {

using topo::LinkKind;
using topo::NodeKind;
using topo::Topology;

/// Star through one ToR: n sender NICs -> ToR -> one destination NIC, plus
/// a victim NIC on its own egress (HoL coverage), all duplex.
struct StarTopo {
  Topology t;
  std::vector<LinkId> up;
  LinkId bottleneck{};
  LinkId victim_egress{};

  explicit StarTopo(int senders, Bandwidth rate = Bandwidth::gbps(100)) {
    const NodeId tor = t.add_node(NodeKind::kTor, "tor");
    const NodeId dst = t.add_node(NodeKind::kNic, "dst");
    const NodeId vic = t.add_node(NodeKind::kNic, "vic");
    for (int i = 0; i < senders; ++i) {
      const NodeId nic = t.add_node(NodeKind::kNic, "src" + std::to_string(i));
      up.push_back(
          t.add_duplex_link(nic, tor, LinkKind::kAccess, rate, Duration::micros(1)).forward);
    }
    bottleneck =
        t.add_duplex_link(tor, dst, LinkKind::kAccess, rate, Duration::micros(1)).forward;
    victim_egress =
        t.add_duplex_link(tor, vic, LinkKind::kAccess, rate, Duration::micros(1)).forward;
  }
};

/// Two-hop chain: NIC -> sw1 -> sw2 -> NIC, second hop slower (deep queue).
struct ChainTopo {
  Topology t;
  std::vector<LinkId> hops;

  ChainTopo() {
    const NodeId a = t.add_node(NodeKind::kNic, "a");
    const NodeId s1 = t.add_node(NodeKind::kTor, "s1");
    const NodeId s2 = t.add_node(NodeKind::kAgg, "s2");
    const NodeId b = t.add_node(NodeKind::kNic, "b");
    hops.push_back(t.add_duplex_link(a, s1, LinkKind::kAccess, Bandwidth::gbps(100),
                                     Duration::micros(1))
                       .forward);
    hops.push_back(t.add_duplex_link(s1, s2, LinkKind::kFabric, Bandwidth::gbps(100),
                                     Duration::micros(2))
                       .forward);
    hops.push_back(t.add_duplex_link(s2, b, LinkKind::kAccess, Bandwidth::gbps(40),
                                     Duration::micros(1))
                       .forward);
  }
};

struct FlowSpec {
  std::vector<LinkId> path;
  DataSize size;
  Bandwidth rate;
};

struct RunResult {
  std::uint64_t events = 0;  ///< Simulator events processed — a full-order proxy.
  std::uint64_t delivered = 0;
  std::uint64_t ecn = 0;
  std::size_t active = 0;
  std::vector<std::uint64_t> tx;     ///< Per measured link.
  std::vector<std::uint64_t> drops;
  std::vector<std::int64_t> paused_ns;
  std::vector<std::pair<std::uint32_t, std::int64_t>> completions;  ///< (flow, ns)

  bool operator==(const RunResult&) const = default;
};

template <typename Sim, typename Engine>
RunResult run_engine(const Topology& topo, const PacketSimConfig& cfg,
                     const std::vector<FlowSpec>& flows,
                     const std::vector<LinkId>& measured, Duration horizon) {
  Sim s;
  // The dense engine runs with the invariant audit armed (the reference
  // engine predates the auditor). Audit probes must not perturb the event
  // order, so the bit-identical comparison below doubles as proof that
  // enabling the auditor is observation-only.
  if constexpr (std::is_same_v<Sim, sim::Simulator>) s.auditor().enable();
  Engine eng{topo, s, cfg};
  RunResult r;
  for (const FlowSpec& f : flows) {
    eng.start_flow(f.path, f.size, f.rate, [&r, &s](FlowId id) {
      r.completions.emplace_back(id.value(), s.now().as_nanos());
    });
  }
  s.run_for(horizon);
  if constexpr (std::is_same_v<Sim, sim::Simulator>) {
    EXPECT_TRUE(s.auditor().ok()) << s.auditor().report();
  }
  r.events = s.processed_events();
  r.delivered = eng.packets_delivered();
  r.ecn = eng.ecn_marks();
  r.active = eng.active_flows();
  for (const LinkId l : measured) {
    r.tx.push_back(eng.tx_bytes_on(l));
    r.drops.push_back(eng.drops_on(l));
    r.paused_ns.push_back((eng.paused_time(l) - Duration::zero()).as_nanos());
  }
  return r;
}

void expect_identical(const Topology& topo, const PacketSimConfig& cfg,
                      const std::vector<FlowSpec>& flows,
                      const std::vector<LinkId>& measured, Duration horizon) {
  const RunResult dense =
      run_engine<sim::Simulator, PacketSimulator>(topo, cfg, flows, measured, horizon);
  const RunResult seed =
      run_engine<sim::testing::ReferenceSimulator, testing::ReferencePacketSimulator>(
          topo, cfg, flows, measured, horizon);
  EXPECT_EQ(dense.events, seed.events);
  EXPECT_EQ(dense.delivered, seed.delivered);
  EXPECT_EQ(dense.ecn, seed.ecn);
  EXPECT_EQ(dense.active, seed.active);
  EXPECT_EQ(dense.tx, seed.tx);
  EXPECT_EQ(dense.drops, seed.drops);
  EXPECT_EQ(dense.paused_ns, seed.paused_ns);
  EXPECT_EQ(dense.completions, seed.completions);
  EXPECT_GT(dense.events, 0u);
}

TEST(PacketDifferential, SingleFlowBitIdentical) {
  ChainTopo c;
  std::vector<FlowSpec> flows{{c.hops, DataSize::megabytes(5), Bandwidth::gbps(100)}};
  expect_identical(c.t, PacketSimConfig{}, flows, c.hops, Duration::millis(10));
}

TEST(PacketDifferential, PfcIncastBitIdentical) {
  // The fig13/14-style scenario: 8 senders into one egress, lossless. PFC
  // pause/resume, ECN marking, and DCQCN all exercise the RNG and the
  // paused-feeder sweep whose order the rewrite must preserve.
  StarTopo star{8};
  PacketSimConfig cfg;
  cfg.ecn_kmin = DataSize::kilobytes(10);
  cfg.ecn_kmax = DataSize::kilobytes(200);
  std::vector<FlowSpec> flows;
  for (const LinkId upl : star.up) {
    flows.push_back({{upl, star.bottleneck}, DataSize::megabytes(8), Bandwidth::gbps(100)});
  }
  flows.push_back({{star.up[0], star.victim_egress}, DataSize::megabytes(8),
                   Bandwidth::gbps(100)});
  std::vector<LinkId> measured = star.up;
  measured.push_back(star.bottleneck);
  measured.push_back(star.victim_egress);
  expect_identical(star.t, cfg, flows, measured, Duration::millis(8));
}

TEST(PacketDifferential, LossyDropsAndRetransmitsBitIdentical) {
  // Lossy mode with a small buffer: tail drops + go-back retransmission
  // timers. Exercises the drop path and late-duplicate handling.
  StarTopo star{6};
  PacketSimConfig cfg;
  cfg.pfc = false;
  cfg.port_buffer = DataSize::kilobytes(64);
  cfg.ecn_kmin = DataSize::kilobytes(8);
  cfg.ecn_kmax = DataSize::kilobytes(48);
  std::vector<FlowSpec> flows;
  for (const LinkId upl : star.up) {
    flows.push_back({{upl, star.bottleneck}, DataSize::megabytes(2), Bandwidth::gbps(100)});
  }
  std::vector<LinkId> measured = star.up;
  measured.push_back(star.bottleneck);
  expect_identical(star.t, cfg, flows, measured, Duration::millis(6));
}

TEST(PacketDifferential, FlowSlotRecyclingBitIdentical) {
  // Staggered short flows force completion + slot reuse while traffic is
  // in flight; FlowIds must stay stable and stats identical.
  ChainTopo c;
  std::vector<FlowSpec> flows;
  for (int i = 0; i < 12; ++i) {
    flows.push_back({c.hops, DataSize::kilobytes(64 + 32 * (i % 5)), Bandwidth::gbps(100)});
  }
  expect_identical(c.t, PacketSimConfig{}, flows, c.hops, Duration::millis(20));
}

class PacketDifferentialRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketDifferentialRandom, RandomizedScenariosBitIdentical) {
  Rng rng{GetParam()};
  StarTopo star{10, Bandwidth::gbps(50)};
  PacketSimConfig cfg;
  cfg.pfc = rng.bernoulli(0.5);
  cfg.port_buffer = DataSize::kilobytes(rng.uniform_int(96, 512));
  cfg.pfc_xoff = DataSize::kilobytes(64);
  cfg.pfc_xon = DataSize::kilobytes(32);
  cfg.ecn_kmin = DataSize::kilobytes(rng.uniform_int(4, 20));
  cfg.ecn_kmax = DataSize::kilobytes(rng.uniform_int(40, 90));
  cfg.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
  std::vector<FlowSpec> flows;
  const int n = static_cast<int>(rng.uniform_int(3, 10));
  for (int i = 0; i < n; ++i) {
    const auto src = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(star.up.size()) - 1));
    const LinkId egress = rng.bernoulli(0.8) ? star.bottleneck : star.victim_egress;
    flows.push_back({{star.up[src], egress},
                     DataSize::kilobytes(rng.uniform_int(100, 4'000)),
                     Bandwidth::gbps(static_cast<double>(rng.uniform_int(20, 50)))});
  }
  std::vector<LinkId> measured = star.up;
  measured.push_back(star.bottleneck);
  measured.push_back(star.victim_egress);
  expect_identical(star.t, cfg, flows, measured, Duration::millis(5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketDifferentialRandom,
                         ::testing::Values(3u, 11u, 29u, 101u, 4242u, 90210u));

}  // namespace
}  // namespace hpn::flowsim
