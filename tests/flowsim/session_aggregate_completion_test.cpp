// Regression battery for aggregation-aware completion (the macro-flow PR's
// session-layer gap): when several same-(path, cap) flows collapse into one
// macro-flow, each member still carries its own residual size, so members
// with staggered sizes (or staggered starts) must complete one by one at
// their exact per-flow instants — not in lockstep when the macro-flow's
// last member drains. Every case runs the same schedule through a
// kMacroFlows session and a kPerFlow session and requires the completion
// order and per-flow FCTs to agree.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"
#include "flowsim/session.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace hpn::flowsim {
namespace {

using topo::LinkKind;
using topo::NodeKind;
using topo::Topology;

constexpr double kRelTol = 1e-6;

/// One flow of the schedule: start instant, bits, source cap.
struct PlannedFlow {
  double start_s = 0.0;
  double bits = 0.0;
  double cap_gbps = 10.0;
};

/// One observed completion, keyed by schedule index.
struct Completion {
  std::size_t index = 0;
  double finish_s = 0.0;
};

/// Runs `plan` (all flows on `path`) under `mode` and returns completions
/// in the order the callbacks fired.
std::vector<Completion> run_plan(const Topology& t, const std::vector<LinkId>& path,
                                 const std::vector<PlannedFlow>& plan,
                                 Aggregation mode,
                                 IncrementalMaxMin::AggregationSnapshot* peak = nullptr) {
  sim::Simulator s;
  FlowSession fs{t, s, mode};
  std::vector<Completion> done;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const PlannedFlow& p = plan[i];
    s.schedule_at(TimePoint::origin() + Duration::seconds(p.start_s), [&, i, p] {
      fs.start_flow(path, DataSize::bits(static_cast<std::int64_t>(p.bits)),
                    Bandwidth::gbps(p.cap_gbps), [&, i](FlowId) {
                      done.push_back({i, (s.now() - TimePoint::origin()).as_seconds()});
                    });
      if (peak != nullptr && fs.active_flows() == plan.size()) {
        *peak = fs.solver_aggregation();
      }
    });
  }
  s.run();
  EXPECT_EQ(fs.active_flows(), 0u);
  return done;
}

void expect_same_completions(const std::vector<Completion>& agg,
                             const std::vector<Completion>& ref) {
  ASSERT_EQ(agg.size(), ref.size());
  for (std::size_t i = 0; i < agg.size(); ++i) {
    EXPECT_EQ(agg[i].index, ref[i].index) << "completion order diverges at " << i;
    EXPECT_NEAR(agg[i].finish_s, ref[i].finish_s,
                std::max(1e-9, kRelTol * ref[i].finish_s))
        << "flow " << agg[i].index << " FCT diverges";
  }
}

class AggregateCompletionTest : public ::testing::Test {
 protected:
  Topology t;
  std::vector<LinkId> path;

  void SetUp() override {
    const NodeId a = t.add_node(NodeKind::kNic, "a");
    const NodeId b = t.add_node(NodeKind::kTor, "b");
    const NodeId c = t.add_node(NodeKind::kNic, "c");
    path = {t.add_duplex_link(a, b, LinkKind::kAccess, Bandwidth::gbps(1),
                              Duration::micros(1))
                .forward,
            t.add_duplex_link(b, c, LinkKind::kAccess, Bandwidth::gbps(1),
                              Duration::micros(1))
                .forward};
  }
};

TEST_F(AggregateCompletionTest, StaggeredSizesCompleteIndividually) {
  // Four same-(path, cap) flows with sizes 0.25/0.5/0.75/1.0 Gbit on a
  // 1 Gbps path: one macro-flow of four members. Members must drain out one
  // at a time (4-way share, then 3-way, ...), not all at the last finish.
  std::vector<PlannedFlow> plan;
  for (int i = 1; i <= 4; ++i) plan.push_back({0.0, i * 0.25e9, 10.0});

  IncrementalMaxMin::AggregationSnapshot peak;
  const auto agg = run_plan(t, path, plan, Aggregation::kMacroFlows, &peak);
  ASSERT_EQ(agg.size(), 4u);

  // The class really formed — otherwise this test exercises nothing.
  EXPECT_EQ(peak.flows, 4u);
  EXPECT_EQ(peak.macro_flows, 1u);
  EXPECT_EQ(peak.members_max, 4u);

  // Smallest-first completion at distinct instants. Analytic schedule on a
  // 1 Gbps bottleneck: t1 = 4*0.25 = 1s, then 3-way for the next 0.25 Gbit
  // gap => t2 = 1.75s, t3 = 2.25s, t4 = 2.5s.
  const double expected[] = {1.0, 1.75, 2.25, 2.5};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(agg[i].index, i) << "members must finish smallest-first";
    EXPECT_NEAR(agg[i].finish_s, expected[i], kRelTol * expected[i]);
  }

  const auto ref = run_plan(t, path, plan, Aggregation::kPerFlow);
  expect_same_completions(agg, ref);
}

TEST_F(AggregateCompletionTest, StaggeredStartsCompleteIndividually) {
  // Equal sizes but staggered starts: residuals inside the macro-flow
  // differ because each member joined at a different instant.
  std::vector<PlannedFlow> plan;
  for (int i = 0; i < 4; ++i) plan.push_back({i * 0.1, 1.0e9, 10.0});

  const auto agg = run_plan(t, path, plan, Aggregation::kMacroFlows);
  ASSERT_EQ(agg.size(), 4u);
  // Earlier starters hold a head start forever under max-min sharing, so
  // completions come back in start order at strictly increasing instants.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(agg[i].index, i);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(agg[i].finish_s, agg[i - 1].finish_s + 1e-9)
        << "members completed in lockstep";
  }

  const auto ref = run_plan(t, path, plan, Aggregation::kPerFlow);
  expect_same_completions(agg, ref);
}

TEST_F(AggregateCompletionTest, FuzzedMixMatchesPerFlowEngine) {
  // Randomized schedules: clusters of same-cap clones (forming macro-flows)
  // plus odd-cap singletons, staggered sizes and starts. The aggregated
  // session must reproduce the per-flow engine's completion order and FCTs.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng{seed};
    std::vector<PlannedFlow> plan;
    const int clusters = static_cast<int>(rng.uniform_int(2, 4));
    for (int c = 0; c < clusters; ++c) {
      const double cap = rng.bernoulli(0.5) ? 10.0 : 2.0 + c;
      const int members = static_cast<int>(rng.uniform_int(2, 5));
      for (int m = 0; m < members; ++m) {
        plan.push_back({0.05 * static_cast<double>(rng.uniform_int(0, 10)),
                        1e8 * static_cast<double>(rng.uniform_int(1, 12)), cap});
      }
    }
    const auto agg = run_plan(t, path, plan, Aggregation::kMacroFlows);
    const auto ref = run_plan(t, path, plan, Aggregation::kPerFlow);
    expect_same_completions(agg, ref);
  }
}

}  // namespace
}  // namespace hpn::flowsim
