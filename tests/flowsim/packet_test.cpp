#include "flowsim/packet.h"

#include "flowsim/fluid.h"

#include <gtest/gtest.h>

#include "topo/topology.h"

namespace hpn::flowsim {
namespace {

using topo::LinkKind;
using topo::NodeKind;
using topo::Topology;

class PacketTest : public ::testing::Test {
 protected:
  Topology t;
  sim::Simulator s;
  LinkId ab{}, bc{}, db{};  // a->b (access), b->c (bottleneck), d->b (access)

  void SetUp() override {
    const NodeId a = t.add_node(NodeKind::kNic, "a");
    const NodeId b = t.add_node(NodeKind::kTor, "b");
    const NodeId c = t.add_node(NodeKind::kNic, "c");
    const NodeId d = t.add_node(NodeKind::kNic, "d");
    ab = t.add_duplex_link(a, b, LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
             .forward;
    bc = t.add_duplex_link(b, c, LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
             .forward;
    db = t.add_duplex_link(d, b, LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
             .forward;
  }
};

TEST_F(PacketTest, SingleFlowDeliversAllBytesAtLineRateish) {
  PacketSimulator ps{t, s};
  bool done = false;
  TimePoint end;
  // 10 MB at 100 Gbps ~ 0.8 ms + per-hop store-and-forward.
  ps.start_flow({ab, bc}, DataSize::megabytes(10), Bandwidth::gbps(100),
                [&](FlowId) { done = true; end = s.now(); });
  s.run_for(Duration::millis(20));
  ASSERT_TRUE(done);
  EXPECT_EQ(ps.active_flows(), 0u);
  const double achieved_gbps = 10.0 * 8.0 / end.since_origin().as_millis();
  EXPECT_GT(achieved_gbps, 60.0);
  EXPECT_LE(achieved_gbps, 101.0);
}

TEST_F(PacketTest, PacketAccountingExact) {
  PacketSimulator ps{t, s};
  ps.start_flow({ab, bc}, DataSize::bytes(4'096 * 10), Bandwidth::gbps(100));
  s.run_for(Duration::millis(5));
  EXPECT_EQ(ps.packets_delivered(), 10u);
}

TEST_F(PacketTest, DcqcnThrottlesIncast) {
  // Two 100G senders into one 100G egress: ECN marks must bring the
  // senders' aggregate rate near the bottleneck capacity.
  PacketSimulator ps{t, s};
  const FlowId f1 = ps.start_flow({ab, bc}, DataSize::megabytes(200), Bandwidth::gbps(100));
  const FlowId f2 = ps.start_flow({db, bc}, DataSize::megabytes(200), Bandwidth::gbps(100));
  s.run_for(Duration::millis(10));
  EXPECT_GT(ps.ecn_marks(), 0u);
  const double sum = ps.flow_rate(f1).as_gbps() + ps.flow_rate(f2).as_gbps();
  EXPECT_LT(sum, 140.0);
  EXPECT_GT(sum, 60.0);
}

TEST_F(PacketTest, PfcKeepsZeroLossUnderIncast) {
  PacketSimConfig cfg;
  cfg.pfc = true;
  PacketSimulator ps{t, s, cfg};
  int completed = 0;
  ps.start_flow({ab, bc}, DataSize::megabytes(20), Bandwidth::gbps(100),
                [&](FlowId) { ++completed; });
  ps.start_flow({db, bc}, DataSize::megabytes(20), Bandwidth::gbps(100),
                [&](FlowId) { ++completed; });
  s.run_for(Duration::millis(50));
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(ps.drops_on(bc), 0u);
}

TEST_F(PacketTest, PfcPausesUpstreamUnderPressure) {
  PacketSimConfig cfg;
  cfg.pfc = true;
  // Aggressive ECN off (kmin high) so PFC does the work.
  cfg.ecn_kmin = DataSize::megabytes(10);
  cfg.ecn_kmax = DataSize::megabytes(20);
  PacketSimulator ps{t, s, cfg};
  ps.start_flow({ab, bc}, DataSize::megabytes(50), Bandwidth::gbps(100));
  ps.start_flow({db, bc}, DataSize::megabytes(50), Bandwidth::gbps(100));
  s.run_for(Duration::millis(10));
  EXPECT_GT(ps.paused_time(ab).as_micros() + ps.paused_time(db).as_micros(), 10.0);
  EXPECT_EQ(ps.drops_on(bc), 0u);
}

TEST_F(PacketTest, LossyModeDropsAndRetransmitsToCompletion) {
  PacketSimConfig cfg;
  cfg.pfc = false;
  cfg.ecn_kmin = DataSize::megabytes(10);  // disable ECN: force drops
  cfg.ecn_kmax = DataSize::megabytes(20);
  cfg.port_buffer = DataSize::kilobytes(64);
  PacketSimulator ps{t, s, cfg};
  int completed = 0;
  ps.start_flow({ab, bc}, DataSize::megabytes(5), Bandwidth::gbps(100),
                [&](FlowId) { ++completed; });
  ps.start_flow({db, bc}, DataSize::megabytes(5), Bandwidth::gbps(100),
                [&](FlowId) { ++completed; });
  s.run_for(Duration::millis(100));
  EXPECT_GT(ps.drops_on(bc), 0u);
  EXPECT_EQ(completed, 2) << "retransmission must eventually deliver everything";
}

TEST_F(PacketTest, LosslessBeatsLossyOnCompletionTime) {
  auto run = [&](bool pfc) {
    Topology t2;
    const NodeId a = t2.add_node(NodeKind::kNic, "a");
    const NodeId b = t2.add_node(NodeKind::kTor, "b");
    const NodeId c = t2.add_node(NodeKind::kNic, "c");
    const NodeId d = t2.add_node(NodeKind::kNic, "d");
    const LinkId l_ab =
        t2.add_duplex_link(a, b, LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
            .forward;
    const LinkId l_bc =
        t2.add_duplex_link(b, c, LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
            .forward;
    const LinkId l_db =
        t2.add_duplex_link(d, b, LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
            .forward;
    sim::Simulator s2;
    PacketSimConfig cfg;
    cfg.pfc = pfc;
    cfg.ecn_kmin = DataSize::megabytes(10);  // no ECN: stress loss recovery
    cfg.ecn_kmax = DataSize::megabytes(20);
    cfg.port_buffer = DataSize::kilobytes(64);
    PacketSimulator ps{t2, s2, cfg};
    int completed = 0;
    TimePoint last;
    ps.start_flow({l_ab, l_bc}, DataSize::megabytes(5), Bandwidth::gbps(100),
                  [&](FlowId) { ++completed; last = s2.now(); });
    ps.start_flow({l_db, l_bc}, DataSize::megabytes(5), Bandwidth::gbps(100),
                  [&](FlowId) { ++completed; last = s2.now(); });
    s2.run_for(Duration::millis(200));
    EXPECT_EQ(completed, 2);
    return last.since_origin().as_millis();
  };
  EXPECT_LT(run(true), run(false));
}

TEST_F(PacketTest, HeadOfLineBlockingVictim) {
  // The PFC pathology: an incast on bc pauses ab (shared upstream port of
  // the victim's traffic through b)... the victim flow a->b->d' shares the
  // paused port ab even though its own egress is idle.
  const NodeId b = t.link(ab).dst;
  const NodeId e = t.add_node(NodeKind::kNic, "e");
  const LinkId be =
      t.add_duplex_link(b, e, LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
          .forward;
  PacketSimConfig cfg;
  cfg.pfc = true;
  cfg.ecn_kmin = DataSize::megabytes(10);  // let queues build to Xoff
  cfg.ecn_kmax = DataSize::megabytes(20);
  PacketSimulator ps{t, s, cfg};
  // Congest bc via ab (and db).
  ps.start_flow({ab, bc}, DataSize::megabytes(50), Bandwidth::gbps(100));
  ps.start_flow({db, bc}, DataSize::megabytes(50), Bandwidth::gbps(100));
  // Victim also rides ab but exits through the idle be port.
  TimePoint victim_done;
  bool done = false;
  ps.start_flow({ab, be}, DataSize::megabytes(2), Bandwidth::gbps(100),
                [&](FlowId) { done = true; victim_done = s.now(); });
  s.run_for(Duration::millis(50));
  ASSERT_TRUE(done);
  // Uncongested, 2MB takes ~0.17ms; HoL blocking must have cost visibly
  // more than that.
  EXPECT_GT(victim_done.since_origin().as_millis(), 0.5);
  EXPECT_GT(ps.paused_time(ab).as_micros(), 0.0);
}

}  // namespace
}  // namespace hpn::flowsim
// --- Cross-engine validation --------------------------------------------------
namespace hpn::flowsim {
namespace {

TEST(CrossEngine, PacketAndFluidAgreeOnEcnEquilibrium) {
  // Same 2-into-1 incast in the packet engine and the fluid engine: both
  // must (a) pin delivered rate at the bottleneck capacity and (b) hold a
  // standing ECN queue in the marking band.
  topo::Topology t;
  const NodeId a = t.add_node(topo::NodeKind::kNic, "a");
  const NodeId b = t.add_node(topo::NodeKind::kTor, "b");
  const NodeId c = t.add_node(topo::NodeKind::kNic, "c");
  const NodeId d = t.add_node(topo::NodeKind::kNic, "d");
  const LinkId ab =
      t.add_duplex_link(a, b, topo::LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
          .forward;
  const LinkId bc =
      t.add_duplex_link(b, c, topo::LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
          .forward;
  const LinkId db =
      t.add_duplex_link(d, b, topo::LinkKind::kAccess, Bandwidth::gbps(100), Duration::micros(1))
          .forward;

  // Packet engine.
  sim::Simulator s1;
  PacketSimConfig pcfg;
  pcfg.ecn_kmin = DataSize::kilobytes(10);
  pcfg.ecn_kmax = DataSize::megabytes(1);
  PacketSimulator ps{t, s1, pcfg};
  ps.start_flow({ab, bc}, DataSize::megabytes(500), Bandwidth::gbps(100));
  ps.start_flow({db, bc}, DataSize::megabytes(500), Bandwidth::gbps(100));
  s1.run_for(Duration::millis(20));
  const std::uint64_t tx0 = ps.tx_bytes_on(bc);
  double pkt_queue_kb = 0.0;  // peak over the window (queues oscillate)
  for (int i = 0; i < 10; ++i) {
    s1.run_for(Duration::millis(1));
    pkt_queue_kb = std::max(pkt_queue_kb, ps.queue_of(bc).as_kilobytes());
  }
  // bytes -> bits over a 10 ms window, in Gbps.
  const double pkt_rate_gbps = static_cast<double>(ps.tx_bytes_on(bc) - tx0) * 8.0 / 1e7;

  // Fluid engine, same scenario and ECN band.
  sim::Simulator s2;
  FluidConfig fcfg;
  fcfg.ecn_kmin = DataSize::kilobytes(10);
  fcfg.ecn_kmax = DataSize::megabytes(1);
  FluidSimulator fl{t, s2, fcfg};
  fl.start_flow({ab, bc}, Bandwidth::gbps(100));
  fl.start_flow({db, bc}, Bandwidth::gbps(100));
  s2.run_for(Duration::millis(200));
  const double fluid_rate_gbps = fl.delivered_rate(bc).as_gbps();
  const double fluid_queue_kb = fl.queue_of(bc).as_kilobytes();

  EXPECT_NEAR(pkt_rate_gbps, 100.0, 10.0);
  EXPECT_NEAR(fluid_rate_gbps, 100.0, 5.0);
  // Both hold a standing queue inside the marking band (order-of-magnitude
  // agreement is the goal — different control laws, same equilibrium zone).
  EXPECT_GT(pkt_queue_kb, 10.0);
  EXPECT_LT(pkt_queue_kb, 1'000.0);
  EXPECT_GT(fluid_queue_kb, 10.0);
  EXPECT_LT(fluid_queue_kb, 1'000.0);
}

}  // namespace
}  // namespace hpn::flowsim
